/**
 * @file
 * Netlist interchange command-line tool.
 *
 * Moves gate-level netlists across the system boundary in both
 * directions and runs the bespoke transformation on imported ones:
 *
 *   bespoke_io export  [--core default|extended] -o FILE
 *       Build the baseline core and write it (.v or .json by file
 *       extension).
 *   bespoke_io convert -i FILE -o FILE
 *       Import (validating), then re-export in the other format.
 *   bespoke_io hash    -i FILE | --core default|extended
 *       Print the canonical content hash.
 *   bespoke_io tailor  -i FILE --app NAME -o FILE
 *                      [--checkpoint-dir DIR] [--verify] [--threads N]
 *                      [--passes LIST] [--status-json FILE]
 *                      [--sat-depth N] [--sat-threads N]
 *       Import an external netlist, run activity analysis for the
 *       application on it, run the tailoring pass pipeline, re-size,
 *       and export the bespoke result, printing one summary line per
 *       pass (changes, gates, delta power, delta depth, wall time).
 *       --passes selects pipeline passes ("default", "rewrite-search",
 *       "clock-gating", "sat-never-toggle", "all", comma-separated;
 *       "all" does NOT include the opt-in SAT pass); --status-json
 *       writes the per-pass stats, rewrite count, clock-gating plan,
 *       and SAT never-toggle verdict counts plus solver counters
 *       (conflicts, propagations, learned/kept clauses, DB
 *       reductions) as JSON; --sat-depth bounds the SAT pass's
 *       unrolling envelope (0 = the analysis horizon); --sat-threads
 *       parallelizes the prover's candidate shards (0 = all hardware
 *       threads) with verdicts identical at any thread count.
 *       --verify additionally proves the result symbolically
 *       equivalent to the imported original for the application and
 *       cross-checks with a bounded CDCL miter (fixed shallow depth
 *       and conflict budget — use `prove` for deeper miters).
 *       --checkpoint-dir caches the analysis artifact keyed by
 *       (netlist hash, program hash, options hash).
 *   bespoke_io check   -i FILE --app NAME [--against FILE]
 *       Symbolic equivalence of an imported netlist against a freshly
 *       built baseline core (or a second imported file) for one
 *       application.
 *   bespoke_io prove   -i FILE --app NAME [--against FILE]
 *                      [--sat-depth N] [--sat-threads N]
 *       Independent SAT equivalence check (src/sat/): bounded miter
 *       over the CNF unrolling, incrementally deepened on one CDCL
 *       solver, with any witness confirmed by concrete 3-valued
 *       replay. Complements `check` — a completely separate prover
 *       over a different value domain. --sat-threads races the
 *       deterministic config portfolio (relevant only when the
 *       conflict budget can exhaust); the verdict is identical at any
 *       thread count. Prints solver counters (conflicts,
 *       propagations, learned/kept clauses, DB reductions).
 *   bespoke_io export-cnf --app NAME -o FILE[.cnf|.smt2]
 *                      [-i FILE] [--miter [--against FILE]]
 *                      [--sat-depth N]
 *       Dump the Tseitin CNF of the unrolled design (or, with
 *       --miter, of the equivalence miter between -i and the
 *       reference) as DIMACS or bit-blasted SMT2 for external
 *       solvers.
 *   bespoke_io batch   --jobs FILE [--job-threads N]
 *                      [--worker-threads N] [--checkpoint-dir DIR]
 *                      [--checkpoint-max-bytes N]
 *                      [--status-json FILE] [--progress]
 *       Run a queue of JSON job specs (DESIGN.md section 11)
 *       concurrently through the job scheduler. Every job runs to
 *       completion even when others fail; --status-json writes the
 *       full per-job result summary.
 *   bespoke_io serve   [batch flags except --jobs/--status-json]
 *                      [--max-queued N]
 *       Job server: one JSON job spec per stdin line, one JSON result
 *       line per completed job on stdout (completion order). Exits
 *       after EOF once the queue drains. --max-queued bounds the
 *       outstanding (queued + running) jobs; excess submissions get an
 *       immediate structured "rejected: backpressure" result line
 *       instead of buffering unbounded stdin input in memory.
 *
 * Exit codes: 0 success, 1 validation/equivalence/job failure
 * (the batch/serve queue always runs to completion first), 2 usage.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

#include "src/analysis/activity_analysis.hh"
#include "src/bespoke/checkpoint.hh"
#include "src/bespoke/equiv_check.hh"
#include "src/cpu/bsp430.hh"
#include "src/sat/cdcl.hh"
#include "src/sat/equiv_prover.hh"
#include "src/io/netlist_json.hh"
#include "src/io/verilog_import.hh"
#include "src/netlist/verilog_export.hh"
#include "src/service/job_scheduler.hh"
#include "src/timing/sta.hh"
#include "src/transform/bespoke_transform.hh"
#include "src/transform/pass_pipeline.hh"
#include "src/util/logging.hh"
#include "src/util/rng.hh"
#include "src/verify/runner.hh"
#include "src/workloads/workload.hh"

using namespace bespoke;

namespace
{

[[noreturn]] void
usage(const std::string &msg = "")
{
    if (!msg.empty())
        std::fprintf(stderr, "bespoke_io: %s\n", msg.c_str());
    std::fprintf(
        stderr,
        "usage:\n"
        "  bespoke_io export  [--core default|extended] -o FILE\n"
        "  bespoke_io convert -i FILE -o FILE\n"
        "  bespoke_io hash    -i FILE | --core default|extended\n"
        "  bespoke_io tailor  -i FILE --app NAME -o FILE\n"
        "                     [--checkpoint-dir DIR] [--verify]"
        " [--threads N]\n"
        "                     [--passes LIST] [--status-json FILE]"
        " [--sat-depth N]\n"
        "                     [--sat-threads N]\n"
        "  bespoke_io check   -i FILE --app NAME [--against FILE]\n"
        "  bespoke_io prove   -i FILE --app NAME [--against FILE]"
        " [--sat-depth N]\n"
        "                     [--sat-threads N]\n"
        "  bespoke_io export-cnf --app NAME -o FILE [-i FILE]"
        " [--miter]\n"
        "                     [--against FILE] [--sat-depth N]\n"
        "  bespoke_io batch   --jobs FILE [--job-threads N]"
        " [--worker-threads N]\n"
        "                     [--checkpoint-dir DIR]"
        " [--checkpoint-max-bytes N]\n"
        "                     [--status-json FILE] [--progress]\n"
        "  bespoke_io serve   [batch flags except --jobs/--status-json]"
        " [--max-queued N]\n"
        "formats are chosen by file extension: .v structural Verilog,"
        " .json canonical JSON\n");
    std::exit(2);
}

[[noreturn]] void
fail(const std::string &msg)
{
    std::fprintf(stderr, "bespoke_io: %s\n", msg.c_str());
    std::exit(1);
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) ==
               0;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fail("cannot read '" + path + "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Import a netlist from .v or .json, hard-failing with diagnostics. */
Netlist
importFile(const std::string &path)
{
    std::string text = readFile(path);
    if (endsWith(path, ".v")) {
        VerilogImportResult res = importVerilog(text);
        if (!res.ok)
            fail(res.format(path));
        return std::move(res.netlist);
    }
    NetlistJsonResult res = netlistFromJsonText(text);
    if (!res.ok)
        fail(path + ": " + res.error);
    return std::move(res.netlist);
}

void
exportFile(const Netlist &nl, const std::string &path,
           const std::string &module_name)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fail("cannot write '" + path + "'");
    if (endsWith(path, ".v"))
        exportVerilog(nl, module_name, out);
    else
        out << netlistToJsonText(nl) << "\n";
    if (!out)
        fail("write to '" + path + "' failed");
}

void
printStats(const char *label, const Netlist &nl)
{
    NetlistStats s = nl.stats();
    std::printf("%s: %zu cells (%zu flops), %.0f um^2, hash %016llx\n",
                label, s.numCells, s.numSequential, s.area,
                static_cast<unsigned long long>(nl.contentHash()));
}

struct Args
{
    std::string in;
    std::string out;
    std::string against;
    std::string app;
    std::string core;
    std::string checkpointDir;
    std::string jobs;
    std::string statusJson;
    std::string passes;
    bool verify = false;
    bool progress = false;
    bool miter = false;
    int threads = 1;
    int jobThreads = 1;
    int workerThreads = 0;
    int satDepth = 0;    ///< 0 = per-command default
    int satThreads = 1;  ///< 0 = all hardware threads
    size_t maxQueued = 0;
    uint64_t checkpointMaxBytes = 0;
};

Args
parseArgs(int argc, char **argv)
{
    Args a;
    for (int i = 2; i < argc; i++) {
        std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usage("flag '" + arg + "' needs a value");
            return argv[++i];
        };
        if (arg == "-i" || arg == "--in")
            a.in = value();
        else if (arg == "-o" || arg == "--out")
            a.out = value();
        else if (arg == "--against")
            a.against = value();
        else if (arg == "--app")
            a.app = value();
        else if (arg == "--core")
            a.core = value();
        else if (arg == "--checkpoint-dir")
            a.checkpointDir = value();
        else if (arg == "--checkpoint-max-bytes")
            a.checkpointMaxBytes =
                std::strtoull(value().c_str(), nullptr, 10);
        else if (arg == "--jobs")
            a.jobs = value();
        else if (arg == "--status-json")
            a.statusJson = value();
        else if (arg == "--passes")
            a.passes = value();
        else if (arg == "--verify")
            a.verify = true;
        else if (arg == "--progress")
            a.progress = true;
        else if (arg == "--miter")
            a.miter = true;
        else if (arg == "--sat-depth")
            a.satDepth = std::atoi(value().c_str());
        else if (arg == "--sat-threads")
            a.satThreads = std::atoi(value().c_str());
        else if (arg == "--max-queued")
            a.maxQueued = std::strtoull(value().c_str(), nullptr, 10);
        else if (arg == "--threads")
            a.threads = std::atoi(value().c_str());
        else if (arg == "--job-threads")
            a.jobThreads = std::atoi(value().c_str());
        else if (arg == "--worker-threads")
            a.workerThreads = std::atoi(value().c_str());
        else
            usage("unknown flag '" + arg + "'");
    }
    return a;
}

Netlist
buildCore(const std::string &core)
{
    CpuConfig cfg;
    if (core == "extended")
        cfg = CpuConfig::extended();
    else if (!core.empty() && core != "default")
        usage("--core must be 'default' or 'extended'");
    Netlist nl = buildBsp430(nullptr, cfg);
    sizeForLoads(nl);
    return nl;
}

int
cmdExport(const Args &a)
{
    if (a.out.empty())
        usage("export needs -o FILE");
    Netlist nl = buildCore(a.core);
    exportFile(nl, a.out, "bsp430_core");
    printStats(a.out.c_str(), nl);
    return 0;
}

int
cmdConvert(const Args &a)
{
    if (a.in.empty() || a.out.empty())
        usage("convert needs -i FILE and -o FILE");
    Netlist nl = importFile(a.in);
    exportFile(nl, a.out, "bespoke_core");
    printStats(a.out.c_str(), nl);
    return 0;
}

int
cmdHash(const Args &a)
{
    Netlist nl = a.in.empty() ? buildCore(a.core) : importFile(a.in);
    std::printf("%016llx\n",
                static_cast<unsigned long long>(nl.contentHash()));
    return 0;
}

/** Analysis with an optional checkpoint store in front of it. */
AnalysisResult
analyzeWithStore(const Netlist &nl, const AsmProgram &prog,
                 const AnalysisOptions &opts,
                 const CheckpointStore &store)
{
    CheckpointKey key{nl.contentHash(), hashProgram(prog),
                      hashAnalysisOptions(opts)};
    JsonValue doc;
    if (store.load(key, "analysis", &doc)) {
        AnalysisResult r;
        std::string err;
        if (analysisFromJson(doc, nl, &r, &err))
            return r;
        bespoke_warn("checkpoint: ", err, "; re-analyzing");
    }
    AnalysisResult r = analyzeActivity(nl, prog, opts);
    if (r.completed)
        store.save(key, "analysis", analysisToJson(r));
    return r;
}

/** Tailor-time replay providers over one application (2 runs, fixed
 *  seed), mirroring BespokeFlow::makePassEnv(). */
PassEnv
makeTailorEnv(const Workload &app)
{
    constexpr int kInputs = 2;
    constexpr uint64_t kSeed = 2024;
    PassEnv env;
    env.measureActivity = [&app](const Netlist &nl, ToggleCounter *tc) {
        std::shared_ptr<const SocContext> ctx = SocContext::make(nl);
        GateBatchObservers obs;
        obs.toggles = tc;
        Rng rng(kSeed);
        AsmProgram prog = app.assembleProgram();
        std::vector<WorkloadInput> in;
        for (int i = 0; i < kInputs; i++)
            in.push_back(app.genInput(rng));
        runWorkloadGateBatch(nl, app, prog, in, 0, obs, ctx);
    };
    env.measureDuty = [&app](const Netlist &nl,
                             const std::vector<GateId> &ids,
                             std::vector<uint64_t> *high,
                             uint64_t *cycles) {
        high->assign(ids.size(), 0);
        *cycles = 0;
        Rng rng(kSeed);
        AsmProgram prog = app.assembleProgram();
        auto per_cycle = [&](const GateSim &sim) {
            (*cycles)++;
            for (size_t k = 0; k < ids.size(); k++) {
                if (sim.value(ids[k]) != Logic::Zero)
                    (*high)[k]++;
            }
        };
        for (int i = 0; i < kInputs; i++) {
            WorkloadInput in = app.genInput(rng);
            runWorkloadGate(nl, app, prog, in, nullptr, nullptr,
                            per_cycle);
        }
    };
    return env;
}

/** One human-readable summary line per pipeline pass. */
void
printPassSummary(const PipelineReport &report)
{
    for (const PassStats &s : report.passes) {
        char dpower[32] = "-";
        char ddepth[32] = "-";
        if (s.powerBeforeUW >= 0 && s.powerAfterUW >= 0) {
            std::snprintf(dpower, sizeof(dpower), "%+.2f uW",
                          s.powerAfterUW - s.powerBeforeUW);
        }
        if (s.depthBeforePs >= 0 && s.depthAfterPs >= 0) {
            std::snprintf(ddepth, sizeof(ddepth), "%+.0f ps",
                          s.depthAfterPs - s.depthBeforePs);
        }
        std::printf("pass %-14s %5zu changes, %zu -> %zu gates,"
                    " dpower %s, ddepth %s, %.1f ms\n",
                    s.name.c_str(), s.changes, s.gatesBefore,
                    s.gatesAfter, dpower, ddepth, s.wallMs);
    }
    if (report.rewrittenInstances > 0) {
        std::printf("rewrite-search: %zu datapath instance(s)"
                    " restructured\n",
                    report.rewrittenInstances);
    }
    if (report.gating.candidateBanks > 0) {
        std::printf("clock-gating: %zu of %zu bank(s) gated"
                    " (%zu flops), %.2f uW clock power saved\n",
                    report.gating.banks.size(),
                    report.gating.candidateBanks,
                    report.gating.gatedFlops(),
                    report.gating.savedClockUW);
    }
    if (report.satCandidates > 0) {
        std::printf("sat never-toggle: %zu candidate(s), %zu proven,"
                    " %zu refuted, %zu undecided\n",
                    report.satCandidates, report.satProven,
                    report.satRefuted, report.satUnknown);
        std::printf("sat never-toggle: %zu shard(s), %llu conflicts,"
                    " %llu propagations, %llu learned (%llu kept),"
                    " %llu db reduction(s)\n",
                    report.satShards,
                    static_cast<unsigned long long>(report.satConflicts),
                    static_cast<unsigned long long>(
                        report.satPropagations),
                    static_cast<unsigned long long>(report.satLearned),
                    static_cast<unsigned long long>(report.satKept),
                    static_cast<unsigned long long>(
                        report.satReductions));
    }
}

/** The tailor run's per-pass stats and gating plan as JSON. */
JsonValue
tailorStatusJson(const Args &a, const CutStats &cut,
                 const PipelineReport &report, bool verified)
{
    JsonValue doc = JsonValue::object();
    doc.set("app", JsonValue::str(a.app));
    JsonValue jc = JsonValue::object();
    jc.set("gates_before",
           JsonValue::number(static_cast<double>(cut.gatesBefore)));
    jc.set("gates_cut_direct",
           JsonValue::number(static_cast<double>(cut.gatesCutDirect)));
    jc.set("gates_after",
           JsonValue::number(static_cast<double>(cut.gatesAfter)));
    doc.set("cut", std::move(jc));
    JsonValue passes = JsonValue::array();
    for (const PassStats &s : report.passes) {
        JsonValue jp = JsonValue::object();
        jp.set("name", JsonValue::str(s.name));
        jp.set("changes",
               JsonValue::number(static_cast<double>(s.changes)));
        jp.set("gates_before",
               JsonValue::number(static_cast<double>(s.gatesBefore)));
        jp.set("gates_after",
               JsonValue::number(static_cast<double>(s.gatesAfter)));
        jp.set("power_before_uw", JsonValue::number(s.powerBeforeUW));
        jp.set("power_after_uw", JsonValue::number(s.powerAfterUW));
        jp.set("depth_before_ps", JsonValue::number(s.depthBeforePs));
        jp.set("depth_after_ps", JsonValue::number(s.depthAfterPs));
        jp.set("wall_ms", JsonValue::number(s.wallMs));
        passes.push(std::move(jp));
    }
    doc.set("passes", std::move(passes));
    doc.set("rewritten_instances",
            JsonValue::number(
                static_cast<double>(report.rewrittenInstances)));
    JsonValue jg = JsonValue::object();
    jg.set("candidate_banks",
           JsonValue::number(
               static_cast<double>(report.gating.candidateBanks)));
    jg.set("gated_banks",
           JsonValue::number(
               static_cast<double>(report.gating.banks.size())));
    jg.set("gated_flops",
           JsonValue::number(
               static_cast<double>(report.gating.gatedFlops())));
    jg.set("saved_clock_uw",
           JsonValue::number(report.gating.savedClockUW));
    doc.set("gating", std::move(jg));
    JsonValue js = JsonValue::object();
    js.set("candidates",
           JsonValue::number(
               static_cast<double>(report.satCandidates)));
    js.set("proven",
           JsonValue::number(static_cast<double>(report.satProven)));
    js.set("refuted",
           JsonValue::number(static_cast<double>(report.satRefuted)));
    js.set("unknown",
           JsonValue::number(static_cast<double>(report.satUnknown)));
    js.set("shards",
           JsonValue::number(static_cast<double>(report.satShards)));
    js.set("conflicts",
           JsonValue::number(static_cast<double>(report.satConflicts)));
    js.set("propagations",
           JsonValue::number(
               static_cast<double>(report.satPropagations)));
    js.set("learned_clauses",
           JsonValue::number(static_cast<double>(report.satLearned)));
    js.set("kept_clauses",
           JsonValue::number(static_cast<double>(report.satKept)));
    js.set("db_reductions",
           JsonValue::number(
               static_cast<double>(report.satReductions)));
    js.set("restarts",
           JsonValue::number(static_cast<double>(report.satRestarts)));
    doc.set("sat_never_toggle", std::move(js));
    doc.set("verified", JsonValue::boolean(verified));
    return doc;
}

int
cmdTailor(const Args &a)
{
    if (a.in.empty() || a.out.empty() || a.app.empty())
        usage("tailor needs -i FILE, --app NAME, and -o FILE");
    PassPipelineOptions popts;
    std::string perr;
    if (!parsePassList(a.passes, &popts, &perr))
        usage("--passes: " + perr);
    popts.collectMetrics = true;
    if (a.satDepth > 0)
        popts.sat.depth = a.satDepth;
    popts.sat.threads = a.satThreads;
    Netlist original = importFile(a.in);
    printStats("imported", original);

    const Workload &app = workloadByName(a.app);
    AsmProgram prog = app.assembleProgram();
    AnalysisOptions opts;
    opts.threads = a.threads;
    CheckpointStore store(a.checkpointDir);

    AnalysisResult r = analyzeWithStore(original, prog, opts, store);
    if (!r.completed)
        fail("analysis hit its caps; the toggle set is incomplete");
    std::printf("analysis: %llu paths, %llu cycles, %zu cells provably"
                " untoggled\n",
                static_cast<unsigned long long>(r.pathsExplored),
                static_cast<unsigned long long>(r.cyclesSimulated),
                r.untoggledCells());

    CutStats cut;
    PipelineReport report;
    PassEnv env = makeTailorEnv(app);
    env.program = &prog;
    // Auto depth: the SAT pass's bounded proof covers exactly the
    // envelope the X-analysis explored.
    if (popts.satNeverToggle && popts.sat.depth == 0)
        popts.sat.depth = static_cast<int>(r.cyclesSimulated);
    Netlist bespoke_nl = runTailorPipeline(original, r.activity.get(),
                                           popts, env, &cut, &report);
    sizeForLoads(bespoke_nl);
    std::printf("cut: %zu -> %zu cells\n", cut.gatesBefore,
                cut.gatesAfter);
    printPassSummary(report);

    if (a.verify) {
        EquivResult eq =
            checkSymbolicEquivalence(original, bespoke_nl, prog, opts);
        if (!eq.equivalent || !eq.completed)
            fail("equivalence check failed: " + eq.firstMismatch);
        std::printf("verified: %llu outputs compared across %llu"
                    " paths\n",
                    static_cast<unsigned long long>(eq.outputsCompared),
                    static_cast<unsigned long long>(eq.pathsExplored));
        // Independent cross-check: the CDCL miter shares no code with
        // the symbolic engine. A confirmed SAT witness here means one
        // of the two provers is wrong — fail loudly. The miter stays
        // at its own shallow default depth with a finite conflict
        // budget: --sat-depth steers the pass's unrolling envelope,
        // and a deep miter over an aggressively cut design can be
        // intractable. Budget exhaustion degrades to Unknown, which
        // is reported but non-fatal — the symbolic proof above is
        // authoritative; `prove` exists for deeper explicit miters.
        sat::SatEquivOptions so;
        so.conflictBudget = 200000;
        sat::SatEquivResult sr =
            sat::proveEquivalentSat(original, bespoke_nl, prog, so);
        if (sr.verdict == sat::SatEquivVerdict::NotEquivalent)
            fail("SAT cross-check disagrees with the symbolic prover: " +
                 sr.detail);
        std::printf("sat cross-check (depth %d): %s\n", sr.depth,
                    sr.verdict == sat::SatEquivVerdict::Equivalent
                        ? "equivalent"
                        : sr.detail.c_str());
    }

    if (!a.statusJson.empty()) {
        std::ofstream os(a.statusJson);
        if (!os)
            fail("cannot write '" + a.statusJson + "'");
        os << tailorStatusJson(a, cut, report, a.verify).dump(2) << "\n";
        if (!os)
            fail("write to '" + a.statusJson + "' failed");
    }

    exportFile(bespoke_nl, a.out, "bespoke_" + a.app);
    printStats(a.out.c_str(), bespoke_nl);
    return 0;
}

int
cmdCheck(const Args &a)
{
    if (a.in.empty() || a.app.empty())
        usage("check needs -i FILE and --app NAME");
    Netlist candidate = importFile(a.in);
    Netlist reference =
        a.against.empty() ? buildCore(a.core) : importFile(a.against);

    const Workload &app = workloadByName(a.app);
    AsmProgram prog = app.assembleProgram();
    AnalysisOptions opts;
    opts.threads = a.threads;
    EquivResult eq =
        checkSymbolicEquivalence(reference, candidate, prog, opts);
    if (!eq.equivalent || !eq.completed)
        fail("NOT equivalent for '" + a.app + "': " + eq.firstMismatch);
    std::printf("equivalent for '%s': %llu outputs compared across"
                " %llu paths\n",
                a.app.c_str(),
                static_cast<unsigned long long>(eq.outputsCompared),
                static_cast<unsigned long long>(eq.pathsExplored));
    return 0;
}

int
cmdProve(const Args &a)
{
    if (a.in.empty() || a.app.empty())
        usage("prove needs -i FILE and --app NAME");
    Netlist candidate = importFile(a.in);
    Netlist reference =
        a.against.empty() ? buildCore(a.core) : importFile(a.against);

    const Workload &app = workloadByName(a.app);
    AsmProgram prog = app.assembleProgram();
    sat::SatEquivOptions so;
    if (a.satDepth > 0)
        so.depth = a.satDepth;
    // Finite (if generous) budget so a pathological miter fails with
    // an "undecided" diagnosis instead of spinning forever.
    so.conflictBudget = 5000000;
    so.threads = a.satThreads;
    sat::SatEquivResult sr =
        sat::proveEquivalentSat(reference, candidate, prog, so);
    std::printf("sat prove (depth %d): %llu vars, %llu conflicts\n",
                sr.depth, static_cast<unsigned long long>(sr.vars),
                static_cast<unsigned long long>(sr.conflicts));
    std::printf("sat prove: %llu chunk quer%s, %llu propagations,"
                " %llu learned (%llu kept), %llu db reduction(s),"
                " %llu restarts, config %d\n",
                static_cast<unsigned long long>(sr.queries),
                sr.queries == 1 ? "y" : "ies",
                static_cast<unsigned long long>(sr.propagations),
                static_cast<unsigned long long>(sr.learnedClauses),
                static_cast<unsigned long long>(sr.keptClauses),
                static_cast<unsigned long long>(sr.dbReductions),
                static_cast<unsigned long long>(sr.restarts),
                sr.config);
    if (sr.verdict == sat::SatEquivVerdict::Equivalent) {
        std::printf("equivalent for '%s': %s\n", a.app.c_str(),
                    sr.detail.c_str());
        return 0;
    }
    if (sr.verdict == sat::SatEquivVerdict::NotEquivalent)
        fail("NOT equivalent for '" + a.app + "': " + sr.detail);
    fail("undecided for '" + a.app + "': " + sr.detail);
}

int
cmdExportCnf(const Args &a)
{
    if (a.app.empty() || a.out.empty())
        usage("export-cnf needs --app NAME and -o FILE");
    if (a.miter && a.in.empty())
        usage("export-cnf --miter needs -i FILE (the candidate)");
    const Workload &app = workloadByName(a.app);
    AsmProgram prog = app.assembleProgram();
    int depth = a.satDepth > 0 ? a.satDepth : 8;

    sat::Cnf cnf;
    sat::UnrollOptions uo;
    Netlist leader;
    Netlist follower;
    if (a.miter) {
        leader = a.against.empty() ? buildCore(a.core)
                                   : importFile(a.against);
        follower = importFile(a.in);
    } else {
        leader = a.in.empty() ? buildCore(a.core) : importFile(a.in);
    }
    sat::SocUnroller un(leader, prog, cnf, uo);
    if (a.miter) {
        un.attachFollower(follower);
        sat::Lit bad = sat::encodeMiter(un, leader, follower, depth);
        cnf.comment("miter: reference vs '" + a.in + "' for app '" +
                    a.app + "', depth " +
                    std::to_string(depth));
        cnf.comment("satisfiable iff a shared output can diverge");
        cnf.unit(bad);
    } else {
        for (int f = 0; f < depth; f++)
            un.addFrame();
        cnf.comment("unrolling of app '" + a.app + "', depth " +
                    std::to_string(depth) + " (no property asserted)");
    }
    // Name the free variables so witnesses are readable.
    for (const sat::FreeVarInfo &fv : un.freeVars()) {
        const char *kind = nullptr;
        switch (fv.kind) {
          case sat::FreeVarInfo::Kind::GpioIn:   kind = "gpio_in"; break;
          case sat::FreeVarInfo::Kind::IrqExt:   kind = "irq_ext"; break;
          case sat::FreeVarInfo::Kind::RamInit:  kind = "ram_init"; break;
          case sat::FreeVarInfo::Kind::InitRdata: kind = "rdata0"; break;
          default: break;  // scratch kinds stay unnamed
        }
        if (!kind)
            continue;
        cnf.nameVar(fv.var, std::string(kind) + "[f" +
                                std::to_string(fv.frame) + ",i" +
                                std::to_string(fv.index) + ",b" +
                                std::to_string(fv.bit) + "]");
    }

    std::ofstream os(a.out, std::ios::binary);
    if (!os)
        fail("cannot write '" + a.out + "'");
    if (endsWith(a.out, ".smt2"))
        cnf.writeSmt2(os);
    else
        cnf.writeDimacs(os);
    if (!os)
        fail("write to '" + a.out + "' failed");
    std::printf("%s: %zu vars, %zu clauses, depth %d%s\n",
                a.out.c_str(), cnf.numVars(), cnf.numClauses(), depth,
                a.miter ? " (miter)" : "");
    return 0;
}

SchedulerOptions
schedulerOptions(const Args &a)
{
    SchedulerOptions sopts;
    sopts.jobThreads = a.jobThreads;
    sopts.workerThreads = a.workerThreads;
    sopts.checkpointDir = a.checkpointDir;
    sopts.checkpointMaxBytes = a.checkpointMaxBytes;
    if (a.progress) {
        sopts.progress = [](const JsonValue &ev) {
            std::fprintf(stderr, "%s\n", ev.dump().c_str());
        };
    }
    return sopts;
}

/**
 * Run the whole queue (failures included), write the status summary,
 * print one line per job, and map "any failure" to exit code 1.
 */
int
reportJobs(const std::vector<JobResult> &results, const Args &a)
{
    size_t failed = 0;
    JsonValue jobs = JsonValue::array();
    for (const JobResult &r : results) {
        if (!r.ok)
            failed++;
        jobs.push(r.toJson());
        std::printf("%-12s %-14s %s%s%s\n", r.id.c_str(),
                    r.kind.c_str(), r.ok ? "ok" : "FAILED",
                    r.ok ? "" : ": ", r.ok ? "" : r.error.c_str());
    }
    JsonValue status = JsonValue::object();
    status.set("total",
               JsonValue::number(static_cast<double>(results.size())));
    status.set("ok", JsonValue::number(
                         static_cast<double>(results.size() - failed)));
    status.set("failed",
               JsonValue::number(static_cast<double>(failed)));
    status.set("jobs", std::move(jobs));
    if (!a.statusJson.empty()) {
        std::ofstream os(a.statusJson);
        if (!os)
            fail("cannot write '" + a.statusJson + "'");
        os << status.dump(2) << "\n";
        if (!os)
            fail("write to '" + a.statusJson + "' failed");
    }
    std::printf("%zu job(s): %zu ok, %zu failed\n", results.size(),
                results.size() - failed, failed);
    return failed == 0 ? 0 : 1;
}

int
cmdBatch(const Args &a)
{
    if (a.jobs.empty())
        usage("batch needs --jobs FILE");
    std::string text = readFile(a.jobs);
    JsonValue doc;
    std::string err;
    if (!JsonValue::parse(text, doc, err))
        usage(a.jobs + ": " + err);
    const JsonValue *items = &doc;
    if (doc.isObject()) {
        items = doc.find("jobs");
        if (!items)
            usage(a.jobs + ": batch object needs a 'jobs' array");
    }
    if (!items->isArray())
        usage(a.jobs + ": batch file must be a JSON array of job "
                       "specs (or an object with a 'jobs' array)");

    // A spec that fails to parse becomes a failed result; the rest of
    // the queue still runs.
    std::vector<JobResult> invalid;
    std::vector<JobResult> results;
    {
        JobScheduler sched(schedulerOptions(a));
        for (size_t i = 0; i < items->items().size(); i++) {
            JobSpec spec;
            std::string perr;
            if (parseJobSpec(items->items()[i], &spec, &perr)) {
                sched.submit(std::move(spec));
            } else {
                JobResult bad;
                bad.id = "job-" + std::to_string(i);
                bad.kind = "invalid";
                bad.error = perr;
                bad.payload = JsonValue::object();
                invalid.push_back(std::move(bad));
            }
        }
        results = sched.finish();
    }
    for (JobResult &r : invalid)
        results.push_back(std::move(r));
    return reportJobs(results, a);
}

int
cmdServe(const Args &a)
{
    std::mutex out_m;
    SchedulerOptions sopts = schedulerOptions(a);
    sopts.maxQueued = a.maxQueued;
    sopts.onResult = [&out_m](const JobResult &r) {
        std::lock_guard<std::mutex> lk(out_m);
        std::printf("%s\n", r.toJson().dump().c_str());
        std::fflush(stdout);
    };
    JobScheduler sched(std::move(sopts));

    auto reply = [&out_m](const JobResult &r) {
        std::lock_guard<std::mutex> lk(out_m);
        std::printf("%s\n", r.toJson().dump().c_str());
        std::fflush(stdout);
    };

    size_t invalid = 0;
    size_t rejected = 0;
    size_t lineno = 0;
    std::string line;
    while (std::getline(std::cin, line)) {
        lineno++;
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        JsonValue doc;
        JobSpec spec;
        std::string err;
        if (!JsonValue::parse(line, doc, err) ||
            !parseJobSpec(doc, &spec, &err)) {
            JobResult bad;
            bad.id = "line-" + std::to_string(lineno);
            bad.kind = "invalid";
            bad.error = err;
            bad.payload = JsonValue::object();
            invalid++;
            reply(bad);
            continue;
        }
        // Bounded admission: a producer outrunning the runners gets a
        // structured rejection instead of queueing unbounded memory.
        std::string kind = spec.kind;
        std::string id = spec.id;
        if (!sched.trySubmit(std::move(spec))) {
            rejected++;
            reply(backpressureRejection(
                id, kind, a.maxQueued,
                "line-" + std::to_string(lineno)));
        }
    }
    sched.finish();
    return sched.failures() + invalid + rejected == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    std::string cmd = argv[1];
    Args a = parseArgs(argc, argv);
    if (cmd == "export")
        return cmdExport(a);
    if (cmd == "convert")
        return cmdConvert(a);
    if (cmd == "hash")
        return cmdHash(a);
    if (cmd == "tailor")
        return cmdTailor(a);
    if (cmd == "check")
        return cmdCheck(a);
    if (cmd == "prove")
        return cmdProve(a);
    if (cmd == "export-cnf")
        return cmdExportCnf(a);
    if (cmd == "batch")
        return cmdBatch(a);
    if (cmd == "serve")
        return cmdServe(a);
    usage("unknown command '" + cmd + "'");
}
