/**
 * @file
 * Scenario: hand the bespoke design to a physical-design / simulation
 * flow. Tailors a core to the TEA encryption firmware, writes the
 * result as structural Verilog (plus the behavioral cell library), and
 * dumps a VCD waveform of the first thousand cycles of execution for
 * inspection in GTKWave.
 *
 * Produces: bespoke_tea8.v, bespoke_cells.v, bespoke_tea8.vcd
 */

#include <cstdio>
#include <fstream>

#include "src/bespoke/flow.hh"
#include "src/netlist/verilog_export.hh"
#include "src/sim/vcd_writer.hh"
#include "src/util/logging.hh"
#include "src/verify/runner.hh"

using namespace bespoke;

int
main()
{
    setVerbose(false);
    const Workload &app = workloadByName("tea8");

    BespokeFlow flow;
    BespokeDesign design = flow.tailor(app);
    std::printf("tailored '%s': %zu cells, %.0f um^2\n",
                app.name.c_str(), design.metrics.gates,
                design.metrics.areaUm2);

    // 1. Structural Verilog + cell library.
    {
        std::ofstream v("bespoke_tea8.v");
        exportVerilog(design.netlist, "bespoke_tea8", v);
        std::ofstream lib("bespoke_cells.v");
        writeCellLibrary(lib);
    }
    std::printf("wrote bespoke_tea8.v and bespoke_cells.v\n");

    // 2. VCD waveform of a concrete run on the bespoke design.
    {
        AsmProgram prog = app.assembleProgram();
        Rng rng(42);
        WorkloadInput in = app.genInput(rng);
        Soc soc(design.netlist, prog, /*ram_unknown=*/false);
        soc.setGpioIn(SWord::of(in.gpioIn));
        soc.setIrqExt(Logic::Zero);
        for (size_t i = 0; i < in.ramWords.size(); i++) {
            soc.pokeRamWord(static_cast<uint16_t>(kInputBase + 2 * i),
                            SWord::of(in.ramWords[i]));
        }
        std::ofstream vcd_file("bespoke_tea8.vcd");
        VcdWriter vcd(design.netlist, vcd_file);
        for (int c = 0; c < 1000; c++) {
            soc.evalOnly();
            vcd.sample(soc.sim());
            soc.finishCycle();
        }
    }
    std::printf("wrote bespoke_tea8.vcd (1000 cycles; open with "
                "gtkwave)\n");
    return 0;
}
