/**
 * @file
 * Quickstart: tailor a bespoke processor to one application in ~30
 * lines of user code.
 *
 *   1. Pick an application (here: the FIR filter from the benchmark
 *      suite — any BSP430 binary works).
 *   2. Construct a BespokeFlow: this builds and sizes the baseline
 *      general-purpose bsp430 core.
 *   3. flow.tailor(app) runs the whole paper pipeline: symbolic gate
 *      activity analysis, cutting & stitching, re-synthesis, re-sizing,
 *      timing and power analysis.
 *   4. The returned design is a plain Netlist: inspect it, simulate
 *      it, or export its stats.
 *
 * Build & run:  ./examples/example_quickstart
 */

#include <cstdio>

#include "src/bespoke/flow.hh"
#include "src/util/logging.hh"

using namespace bespoke;

int
main()
{
    setVerbose(false);

    // 1. The application: a 4-tap FIR filter (paper Table 1).
    const Workload &app = workloadByName("intFilt");

    // 2. The baseline general-purpose core.
    BespokeFlow flow;
    std::printf("baseline core : %zu cells, %.0f um^2, %.1f MHz\n",
                flow.baseline().numCells(), flow.baseline().stats().area,
                1e6 / flow.clockPeriodPs());

    // 3. Tailor a bespoke processor to the application.
    BespokeDesign design = flow.tailor(app);
    DesignMetrics base = flow.measureBaseline({&app});

    // 4. Report what the application paid for vs. what it needs.
    std::printf("application   : %s (%s)\n", app.name.c_str(),
                app.description.c_str());
    std::printf("analysis      : %llu cycles symbolically simulated, "
                "%llu paths, %.2f s\n",
                static_cast<unsigned long long>(
                    design.analysis.cyclesSimulated),
                static_cast<unsigned long long>(
                    design.analysis.pathsExplored),
                design.analysis.seconds);
    std::printf("bespoke core  : %zu cells (%.1f%% fewer), "
                "%.0f um^2 (%.1f%% smaller)\n",
                design.metrics.gates,
                100.0 * (static_cast<double>(base.gates) -
                         static_cast<double>(design.metrics.gates)) /
                    static_cast<double>(base.gates),
                design.metrics.areaUm2,
                100.0 * (base.areaUm2 - design.metrics.areaUm2) /
                    base.areaUm2);
    std::printf("power         : %.1f uW -> %.1f uW at 1.0 V "
                "(%.1f%% lower)\n",
                base.powerNominal.totalUW(),
                design.metrics.powerNominal.totalUW(),
                100.0 * (base.powerNominal.totalUW() -
                         design.metrics.powerNominal.totalUW()) /
                    base.powerNominal.totalUW());
    std::printf("slack         : %.1f%% of the clock period exposed; "
                "Vmin %.2f V -> %.1f uW\n",
                100.0 * design.metrics.slackFraction,
                design.metrics.vmin,
                design.metrics.powerAtVmin.totalUW());
    std::printf("\nThe bespoke core still runs the unmodified binary "
                "with identical cycle timing.\n");
    return 0;
}
