/**
 * @file
 * Scenario: a chip maker amortizes one mask set over a product family
 * (paper Fig. 1 / Sec. 3.5): the same bespoke die must run three
 * different firmwares — a smart-tag (binSearch lookup), a data logger
 * (rle compression), and a crypto dongle (tea8). This example builds
 * the multi-application bespoke core, compares it with the per-app
 * cores and the full general-purpose core, and demonstrates the
 * support check for adding a fourth firmware later.
 */

#include <cstdio>

#include "src/bespoke/flow.hh"
#include "src/util/logging.hh"

using namespace bespoke;

int
main()
{
    setVerbose(false);
    BespokeFlow flow;

    const Workload &tag = workloadByName("binSearch");
    const Workload &logger = workloadByName("rle");
    const Workload &crypto = workloadByName("tea8");
    std::vector<const Workload *> family = {&tag, &logger, &crypto};

    DesignMetrics base = flow.measureBaseline(family);
    std::printf("general-purpose core: %zu cells, %.1f uW\n\n",
                base.gates, base.powerNominal.totalUW());

    // Per-application bespoke cores (one die per product).
    for (const Workload *w : family) {
        BespokeDesign d = flow.tailor(*w);
        std::printf("bespoke[%-9s]: %5zu cells (-%4.1f%%), %6.1f uW\n",
                    w->name.c_str(), d.metrics.gates,
                    100.0 * (static_cast<double>(base.gates) -
                             static_cast<double>(d.metrics.gates)) /
                        static_cast<double>(base.gates),
                    d.metrics.powerNominal.totalUW());
    }

    // One die for the whole family (union of required gates).
    BespokeDesign fam = flow.tailorMulti(family);
    std::printf("\nfamily die (3 apps): %zu cells (-%.1f%%), %.1f uW "
                "(-%.1f%%)\n",
                fam.metrics.gates,
                100.0 * (static_cast<double>(base.gates) -
                         static_cast<double>(fam.metrics.gates)) /
                    static_cast<double>(base.gates),
                fam.metrics.powerNominal.totalUW(),
                100.0 * (base.powerNominal.totalUW() -
                         fam.metrics.powerNominal.totalUW()) /
                    base.powerNominal.totalUW());

    // Can a NEW firmware ship on the already-taped-out family die?
    // Supported iff its required gates are a subset of the die's
    // (paper Sec. 3.5: "check whether a new software version can be
    // supported").
    for (const char *candidate : {"div", "FFT"}) {
        const Workload &w = workloadByName(candidate);
        AnalysisResult need = flow.analyze(w);
        size_t missing = 0;
        for (GateId i = 0; i < flow.baseline().size(); i++) {
            if (cellPseudo(flow.baseline().gate(i).type))
                continue;
            if (need.activity->toggled(i) &&
                !fam.analysis.activity->toggled(i)) {
                missing++;
            }
        }
        std::printf("in-field update '%s': %s (%zu gates missing)\n",
                    candidate,
                    missing == 0 ? "SUPPORTED on the family die"
                                 : "needs a respin",
                    missing);
    }
    return 0;
}
