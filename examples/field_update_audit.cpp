/**
 * @file
 * Scenario: before taping out a bespoke processor, a product team
 * audits how robust the design is to future bug-fix updates (paper
 * Sec. 5.3). The example generates emulated bug fixes (mutants) for
 * the shipped firmware, checks which ones the tailored die already
 * supports, and quantifies the cost of hardening the die to support
 * every anticipated fix.
 */

#include <cstdio>

#include "src/bespoke/flow.hh"
#include "src/util/logging.hh"
#include "src/mutation/mutation.hh"

using namespace bespoke;

int
main()
{
    setVerbose(false);
    const Workload &app = workloadByName("rle");

    BespokeFlow flow;
    BespokeDesign shipped = flow.tailor(app);
    DesignMetrics base = flow.measureBaseline({&app});
    std::printf("shipped die for '%s': %zu cells (baseline %zu)\n\n",
                app.name.c_str(), shipped.metrics.gates, base.gates);

    // Emulate the space of likely bug fixes.
    std::vector<Mutant> mutants = generateMutants(app);
    std::printf("anticipated fixes (mutants): %zu\n", mutants.size());

    AnalysisOptions mopts;
    mopts.maxTotalCycles = 4'000'000;
    mopts.maxPaths = 40'000;
    ActivityTracker hardened = *shipped.analysis.activity;
    int supported = 0, analyzed = 0;
    for (const Mutant &m : mutants) {
        AsmProgram prog = m.workload.assembleProgram();
        AnalysisResult r =
            analyzeActivity(flow.baseline(), prog, mopts);
        if (!r.completed) {
            std::printf("  line %3d %-4s -> %-4s  [%s]  divergent; "
                        "excluded\n",
                        m.sourceLine, m.from.c_str(), m.to.c_str(),
                        mutantTypeName(m.type));
            continue;
        }
        analyzed++;
        bool ok = mutantSupported(*shipped.analysis.activity,
                                  *r.activity);
        supported += ok;
        std::printf("  line %3d %-4s -> %-4s  [%s]  %s\n",
                    m.sourceLine, m.from.c_str(), m.to.c_str(),
                    mutantTypeName(m.type),
                    ok ? "supported as-is" : "needs extra gates");
        hardened.mergeFrom(*r.activity);
    }
    std::printf("\n%d of %d analyzable fixes deploy on the shipped "
                "die unchanged\n",
                supported, analyzed);

    // Harden the die to support every anticipated fix.
    Netlist hard_nl = cutAndStitch(flow.baseline(), hardened);
    sizeForLoads(hard_nl, flow.options().timing);
    DesignMetrics hm = flow.measure(hard_nl, {&app});
    std::printf("hardened die: %zu cells (+%.1f%% vs shipped, still "
                "-%.1f%% vs baseline)\n",
                hm.gates,
                100.0 * (static_cast<double>(hm.gates) -
                         static_cast<double>(shipped.metrics.gates)) /
                    static_cast<double>(shipped.metrics.gates),
                100.0 * (static_cast<double>(base.gates) -
                         static_cast<double>(hm.gates)) /
                    static_cast<double>(base.gates));
    return 0;
}
