/**
 * @file
 * Scenario: a battery-powered sensor node (the paper's motivating
 * IoT/wearable use case). The node firmware is a custom program — not
 * one of the benchmark suite — written here as BSP430 assembly: it
 * samples GPIO, filters with a moving average, thresholds, and raises
 * an alarm pattern on the output port.
 *
 * This example shows the full user journey for custom firmware:
 * write/assemble the program, define its input model, verify it on the
 * ISS, tailor a bespoke core, and cross-check the bespoke core against
 * the golden model on concrete inputs.
 */

#include <cstdio>

#include "src/bespoke/flow.hh"
#include "src/util/logging.hh"
#include "src/verify/runner.hh"

using namespace bespoke;

namespace
{

/** Firmware for the sensor node (see file header). */
const char *kFirmware = R"(
        .equ IN, 0x0300
        .equ OUT, 0x0400
        .org 0xf000
start:  mov #0x0a00, sp
        mov &0x0000, r10     ; alarm threshold from config pins
        clr r4               ; window sum
        clr r5               ; sample index
        clr r6               ; alarm count
sample: mov r5, r7
        rla r7
        mov IN(r7), r8       ; next sensor reading
        add r8, r4
        cmp #4, r5           ; first 4 samples just fill the window
        jl  nowin
        mov r5, r7
        sub #4, r7
        rla r7
        sub IN(r7), r4       ; slide the 4-sample window
        mov r4, r9
        rra r9
        rra r9               ; window average
        cmp r10, r9
        jl  nowin
        inc r6               ; above threshold: count an alarm
        mov #0xa5a5, &0x0002 ; alarm pattern on the port
nowin:  inc r5
        cmp #12, r5
        jnz sample
        mov r6, &OUT         ; alarms raised
        mov r4, &OUT+2       ; final window sum
halt:   jmp halt
        .org 0xfffe
        .word start
)";

Workload
sensorNodeWorkload()
{
    Workload w;
    w.name = "sensor-node";
    w.description = "moving-average threshold alarm firmware";
    w.source = kFirmware;
    w.cls = WorkloadClass::Extra;
    w.outputWords = 2;
    w.maxCycles = 40000;
    w.genInput = [](Rng &rng) {
        WorkloadInput in;
        for (int i = 0; i < 12; i++)
            in.ramWords.push_back(rng.below(2000));
        in.gpioIn = 500 + rng.below(1000);
        return in;
    };
    return w;
}

} // namespace

int
main()
{
    setVerbose(false);
    Workload node = sensorNodeWorkload();

    // Sanity-check the firmware on the golden-model ISS first.
    Rng rng(3);
    WorkloadInput in = node.genInput(rng);
    IssRun golden = runWorkloadIss(node, in);
    if (golden.result != StepResult::Halted) {
        std::fprintf(stderr, "firmware did not halt on the ISS\n");
        return 1;
    }
    std::printf("firmware OK on ISS: %llu instructions, %u alarms\n",
                static_cast<unsigned long long>(golden.instructions),
                golden.out[0]);

    // Tailor the node's processor.
    BespokeFlow flow;
    BespokeDesign design = flow.tailor(node);
    DesignMetrics base = flow.measureBaseline({&node});

    std::printf("bespoke sensor-node core: %zu -> %zu cells "
                "(-%.1f%%), power %.1f -> %.1f uW (-%.1f%%), "
                "Vmin %.2f V\n",
                base.gates, design.metrics.gates,
                100.0 * (static_cast<double>(base.gates) -
                         static_cast<double>(design.metrics.gates)) /
                    static_cast<double>(base.gates),
                base.powerNominal.totalUW(),
                design.metrics.powerNominal.totalUW(),
                100.0 * (base.powerNominal.totalUW() -
                         design.metrics.powerNominal.totalUW()) /
                    base.powerNominal.totalUW(),
                design.metrics.vmin);

    // Cross-check the bespoke core against the golden model on fresh
    // concrete inputs (paper Sec. 5.1, input-based verification).
    AsmProgram prog = node.assembleProgram();
    int checked = 0;
    for (int t = 0; t < 5; t++) {
        WorkloadInput vin = node.genInput(rng);
        IssRun ir = runWorkloadIss(node, vin);
        GateRun gr = runWorkloadGate(design.netlist, node, prog, vin);
        RunDiff diff = compareRuns(ir, gr, node);
        if (!diff.ok) {
            std::fprintf(stderr, "MISMATCH: %s\n", diff.detail.c_str());
            return 1;
        }
        checked++;
    }
    std::printf("bespoke core verified against the ISS on %d input "
                "sets\n",
                checked);
    return 0;
}
