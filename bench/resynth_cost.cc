/**
 * @file
 * Cost-driven re-synthesis: the pass pipeline's optional passes
 * (datapath rewrite search + activity-driven clock gating) against the
 * fixed-microarchitecture tailoring flow.
 *
 * For every benchmark the fixed flow cuts and re-synthesizes with the
 * datapath shapes the generator chose (one AdderKind everywhere); the
 * pipeline flow additionally re-scores every recorded adder / mux-tree
 * instance under the activity x timing cost model and plans ICGs for
 * rarely-written register banks. Reported power is the design's
 * activity-weighted total at its scaled Vmin, minus the clock-tree
 * power the gating plan removes; "verified" is the symbolic
 * equivalence of the optimized design against the baseline core, so
 * every power win in the table is a win on a provably equivalent
 * design.
 */

#include "bench/bench_common.hh"
#include "src/bespoke/equiv_check.hh"
#include "src/bespoke/flow.hh"

using namespace bespoke;

int
main(int argc, char **argv)
{
    setVerbose(false);
    BenchIO io(argc, argv, "resynth_cost");
    int inputs = io.quick() ? 1 : 2;

    banner("Cost-driven rewrite search + clock gating vs. fixed flow",
           "pass pipeline");

    FlowOptions fixed_opts;
    fixed_opts.analysis.threads = io.threads();
    fixed_opts.analysis.laneWidth = io.lanes();
    fixed_opts.analysis.planeBits = io.planeBits();
    fixed_opts.planeBits = io.planeBits();
    fixed_opts.checkpointDir = io.checkpointDir();
    fixed_opts.checkpointMaxBytes = io.checkpointMaxBytes();
    fixed_opts.powerInputsPerWorkload = inputs;

    FlowOptions opt_opts = fixed_opts;
    opt_opts.passes.rewriteSearch = true;
    opt_opts.passes.clockGating = true;

    BespokeFlow fixed_flow(fixed_opts);
    BespokeFlow opt_flow(opt_opts);
    double vnom = fixed_opts.power.voltage;

    size_t improved = 0;
    Table table({"benchmark", "fixed uW", "pipeline uW", "delta %",
                 "rewrites", "gated banks", "gated flops", "verified"});
    for (const Workload &w : workloads()) {
        BespokeDesign fixed = fixed_flow.tailor(w);
        BespokeDesign opt = opt_flow.tailor(w);

        double fixed_uw = fixed.metrics.powerAtVmin.totalUW();
        // The gating plan's savings are quoted at nominal voltage;
        // the gated design runs at the optimized design's Vmin.
        double vscale = (opt.metrics.vmin / vnom) *
                        (opt.metrics.vmin / vnom);
        double opt_uw = opt.metrics.powerAtVmin.totalUW() -
                        opt.pipeline.gating.savedClockUW * vscale;
        if (opt_uw < fixed_uw)
            improved++;

        EquivResult eq = checkSymbolicEquivalence(
            fixed_flow.baseline(), opt.netlist, w.assembleProgram());

        table.row()
            .add(w.name)
            .add(fixed_uw, 2)
            .add(opt_uw, 2)
            .add(100.0 * (opt_uw - fixed_uw) / fixed_uw, 2)
            .add(static_cast<long>(opt.pipeline.rewrittenInstances))
            .add(static_cast<long>(opt.pipeline.gating.banks.size()))
            .add(static_cast<long>(opt.pipeline.gating.gatedFlops()))
            .add(eq.equivalent && eq.completed ? "yes" : "NO");
    }
    io.table("resynth_cost", table,
             "Activity-weighted power at Vmin: fixed-shape tailoring "
             "vs. the cost-driven\npass pipeline (rewrite search + "
             "clock gating). Every optimized design is\nsymbolically "
             "equivalent to the baseline core for its application.");

    Table summary({"designs", "strictly lower power"});
    summary.row()
        .add(static_cast<long>(workloads().size()))
        .add(static_cast<long>(improved));
    io.table("summary", summary,
             "Benchmarks where the pipeline beats the fixed flow "
             "outright.");
    return io.finish();
}
