/**
 * @file
 * Cost-driven re-synthesis: the pass pipeline's optional passes
 * (datapath rewrite search + activity-driven clock gating) against the
 * fixed-microarchitecture tailoring flow.
 *
 * For every benchmark the fixed flow cuts and re-synthesizes with the
 * datapath shapes the generator chose (one AdderKind everywhere); the
 * pipeline flow additionally re-scores every recorded adder / mux-tree
 * instance under the activity x timing cost model and plans ICGs for
 * rarely-written register banks. Reported power is the design's
 * activity-weighted total at its scaled Vmin, minus the clock-tree
 * power the gating plan removes; "verified" is the symbolic
 * equivalence of the optimized design against the baseline core, so
 * every power win in the table is a win on a provably equivalent
 * design.
 *
 * The λ-sweep table walks the rewrite search's timing-penalty weight
 * over the tailored designs. Scoring — the expensive scratch-netlist
 * rebuild per (instance, variant) — runs exactly once per app via
 * scoreRewriteCandidates(); every λ row then re-combines the cached
 * (power, critical-path) pairs in O(#entries) arithmetic. The
 * pre-split implementation re-ran the rebuild per (λ, variant) pair,
 * making the sweep quadratic in practice.
 */

#include "bench/bench_common.hh"
#include "src/bespoke/equiv_check.hh"
#include "src/bespoke/flow.hh"
#include "src/sim/gate_sim.hh"
#include "src/util/rng.hh"
#include "src/verify/runner.hh"

using namespace bespoke;

namespace
{

/** Replay activity provider over one app, mirroring the flow's
 *  tailor-time convention (fixed seed, `inputs` runs). */
PassEnv
makeActivityEnv(const Workload &app, int inputs,
                const FlowOptions &fopts)
{
    PassEnv env;
    env.timing = &fopts.timing;
    env.power = &fopts.power;
    env.measureActivity = [&app, inputs](const Netlist &nl,
                                         ToggleCounter *tc) {
        std::shared_ptr<const SocContext> ctx = SocContext::make(nl);
        GateBatchObservers obs;
        obs.toggles = tc;
        Rng rng(2024);
        AsmProgram prog = app.assembleProgram();
        std::vector<WorkloadInput> in;
        for (int i = 0; i < inputs; i++)
            in.push_back(app.genInput(rng));
        runWorkloadGateBatch(nl, app, prog, in, 0, obs, ctx);
    };
    return env;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    BenchIO io(argc, argv, "resynth_cost");
    int inputs = io.quick() ? 1 : 2;

    banner("Cost-driven rewrite search + clock gating vs. fixed flow",
           "pass pipeline");

    FlowOptions fixed_opts;
    fixed_opts.analysis.threads = io.threads();
    fixed_opts.analysis.laneWidth = io.lanes();
    fixed_opts.analysis.planeBits = io.planeBits();
    fixed_opts.planeBits = io.planeBits();
    fixed_opts.checkpointDir = io.checkpointDir();
    fixed_opts.checkpointMaxBytes = io.checkpointMaxBytes();
    fixed_opts.powerInputsPerWorkload = inputs;

    FlowOptions opt_opts = fixed_opts;
    opt_opts.passes.rewriteSearch = true;
    opt_opts.passes.clockGating = true;

    BespokeFlow fixed_flow(fixed_opts);
    BespokeFlow opt_flow(opt_opts);
    double vnom = fixed_opts.power.voltage;

    size_t improved = 0;
    std::vector<std::pair<const Workload *, Netlist>> sweep_designs;
    Table table({"benchmark", "fixed uW", "pipeline uW", "delta %",
                 "rewrites", "gated banks", "gated flops", "verified"});
    for (const Workload &w : workloads()) {
        BespokeDesign fixed = fixed_flow.tailor(w);
        BespokeDesign opt = opt_flow.tailor(w);
        sweep_designs.emplace_back(&w, fixed.netlist);

        double fixed_uw = fixed.metrics.powerAtVmin.totalUW();
        // The gating plan's savings are quoted at nominal voltage;
        // the gated design runs at the optimized design's Vmin.
        double vscale = (opt.metrics.vmin / vnom) *
                        (opt.metrics.vmin / vnom);
        double opt_uw = opt.metrics.powerAtVmin.totalUW() -
                        opt.pipeline.gating.savedClockUW * vscale;
        if (opt_uw < fixed_uw)
            improved++;

        EquivResult eq = checkSymbolicEquivalence(
            fixed_flow.baseline(), opt.netlist, w.assembleProgram());

        table.row()
            .add(w.name)
            .add(fixed_uw, 2)
            .add(opt_uw, 2)
            .add(100.0 * (opt_uw - fixed_uw) / fixed_uw, 2)
            .add(static_cast<long>(opt.pipeline.rewrittenInstances))
            .add(static_cast<long>(opt.pipeline.gating.banks.size()))
            .add(static_cast<long>(opt.pipeline.gating.gatedFlops()))
            .add(eq.equivalent && eq.completed ? "yes" : "NO");
    }
    io.table("resynth_cost", table,
             "Activity-weighted power at Vmin: fixed-shape tailoring "
             "vs. the cost-driven\npass pipeline (rewrite search + "
             "clock gating). Every optimized design is\nsymbolically "
             "equivalent to the baseline core for its application.");

    Table summary({"designs", "strictly lower power"});
    summary.row()
        .add(static_cast<long>(workloads().size()))
        .add(static_cast<long>(improved));
    io.table("summary", summary,
             "Benchmarks where the pipeline beats the fixed flow "
             "outright.");

    // --- λ-sweep over cached variant scores. One scoring pass per
    // app (the expensive scratch rebuilds), then every λ value is a
    // pure re-combination of the cached (power, depth) pairs. ---
    const std::vector<double> lambdas = {0.0, 0.25, 0.5,
                                         1.0, 2.0,  4.0, 8.0};
    struct SweepAgg
    {
        size_t rewrites = 0;
        double bestCostUW = 0.0;  ///< sum of per-instance cost minima
    };
    std::vector<SweepAgg> agg(lambdas.size());
    size_t scored_entries = 0;
    auto t0 = std::chrono::steady_clock::now();
    for (auto &[w, nl] : sweep_designs) {
        PassEnv env = makeActivityEnv(*w, inputs, fixed_opts);
        PassContext ctx(env);
        ctx.bind(nl);
        RewriteSearchOptions ropts;
        std::vector<RewriteVariantScore> scores =
            scoreRewriteCandidates(nl, ctx, ropts);
        scored_entries += scores.size();
        double period = ctx.clockPeriodPs();
        for (size_t li = 0; li < lambdas.size(); li++) {
            ropts.lambdaUWPerPs = lambdas[li];
            agg[li].rewrites +=
                rewriteDecisionsAtLambda(scores, ropts, period).size();
            // Cost of the per-instance argmin configuration at this λ.
            size_t i = 0;
            while (i < scores.size()) {
                size_t j = i;
                double best = 0.0;
                for (; j < scores.size() &&
                       scores[j].inst == scores[i].inst;
                     j++) {
                    double c =
                        rewriteCostAt(scores[j], lambdas[li], period);
                    if (j == i || c < best)
                        best = c;
                }
                agg[li].bestCostUW += best;
                i = j;
            }
        }
    }
    double sweep_s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();

    Table sweep({"lambda uW/ps", "rewrites", "best-cost sum uW"});
    for (size_t li = 0; li < lambdas.size(); li++) {
        sweep.row()
            .add(lambdas[li], 2)
            .add(static_cast<long>(agg[li].rewrites))
            .add(agg[li].bestCostUW, 2);
    }
    io.table("lambda_sweep", sweep,
             "Rewrite decisions as the timing-penalty weight λ sweeps: "
             "one scoring pass\nper app, cached (power, depth) scores "
             "re-combined per λ.");
    io.counter("lambda_sweep_scored_entries",
               static_cast<double>(scored_entries));
    io.counter("lambda_sweep_seconds", sweep_s);
    return io.finish();
}
