/**
 * @file
 * Table 2: timing slack exposed by cutting & stitching, the resulting
 * minimum safe operating voltage (worst-case PVT guardband included),
 * the additional power savings from running at Vmin, and the total
 * power savings vs. the baseline. Paper: slack 18-46%, Vmin 0.60-0.92V,
 * total power savings 50-91.5% (65% average).
 */

#include "bench/bench_common.hh"
#include "src/bespoke/flow.hh"

using namespace bespoke;

int
main(int argc, char **argv)
{
    setVerbose(false);
    BenchIO io(argc, argv, "table2_slack");

    banner("Exploiting timing slack exposed by gate cutting",
           "Table 2");

    FlowOptions opts;
    opts.analysis.threads = io.threads();
    opts.checkpointDir = io.checkpointDir();
    opts.checkpointMaxBytes = io.checkpointMaxBytes();
    if (io.quick())
        opts.powerInputsPerWorkload = 1;
    BespokeFlow flow(opts);

    std::printf("Clock period: %.0f ps (%.1f MHz), nominal 1.00 V\n\n",
                flow.clockPeriodPs(), 1e6 / flow.clockPeriodPs());

    Table table({"benchmark", "timing slack %", "Vmin (V)",
                 "addl. savings from slack %", "total power savings %",
                 "freq. gain possible %"});
    double sum_total = 0;
    int n = 0;

    for (const Workload &w : workloads()) {
        DesignMetrics base = flow.measureBaseline({&w});
        BespokeDesign d = flow.tailor(w);
        double base_uw = base.powerNominal.totalUW();
        double nom_uw = d.metrics.powerNominal.totalUW();
        double vmin_uw = d.metrics.powerAtVmin.totalUW();
        double addl = savingsPct(nom_uw, vmin_uw);
        double total = savingsPct(base_uw, vmin_uw);
        double fgain =
            100.0 * (flow.clockPeriodPs() / d.metrics.criticalPathPs -
                     1.0);
        table.row()
            .add(w.name)
            .add(100.0 * d.metrics.slackFraction, 1)
            .add(d.metrics.vmin, 2)
            .add(addl, 1)
            .add(total, 1)
            .add(fgain, 1);
        sum_total += total;
        n++;
    }
    table.row()
        .add("AVERAGE")
        .add("")
        .add("")
        .add("")
        .add(sum_total / n, 1)
        .add("");
    io.metric("clock_period_ps", flow.clockPeriodPs());
    io.table("slack", table,
             "Slack exploitation via voltage scaling "
             "(alpha-power-law delay model, PVT margin applied).\n"
             "Paper: slack 17.9-45.7%, Vmin 0.60-0.92 V, total "
             "power savings 50-91.5% (65% avg),\nor alternatively "
             "+13% average frequency.");
    return io.finish();
}
