/**
 * @file
 * Figure 10: fraction of the processor's gates each benchmark can
 * toggle for ANY input (input-independent gate activity analysis),
 * broken down by module. This is the guaranteed-sound counterpart of
 * the profiled Fig. 2 numbers and directly determines what cutting &
 * stitching may remove.
 */

#include "bench/bench_common.hh"
#include "src/analysis/activity_analysis.hh"
#include "src/cpu/bsp430.hh"
#include "src/util/worker_pool.hh"

using namespace bespoke;

int
main(int argc, char **argv)
{
    setVerbose(false);
    BenchIO io(argc, argv, "fig10_usable_gates");

    banner("Input-independent usable-gate fractions per module",
           "Figure 10");

    Netlist nl = buildBsp430();
    double total = static_cast<double>(nl.numCells());

    std::vector<std::string> headers = {"benchmark", "usable %"};
    size_t module_cells[kNumModules] = {};
    for (GateId i = 0; i < nl.size(); i++) {
        const Gate &g = nl.gate(i);
        if (!cellPseudo(g.type))
            module_cells[static_cast<int>(g.module)]++;
    }
    for (int m = 0; m < kNumModules; m++) {
        if (module_cells[m] > 0)
            headers.push_back(moduleName(static_cast<Module>(m)));
    }
    Table table(headers);

    // First row: module shares of the baseline design (paper's
    // leftmost bar).
    table.row().add("(baseline share)").add(100.0, 1);
    for (int m = 0; m < kNumModules; m++) {
        if (module_cells[m] == 0)
            continue;
        table.add(100.0 * static_cast<double>(module_cells[m]) / total,
                  1);
    }

    // One task per benchmark on the shared pool; each analysis runs
    // serially inside its task, so the numbers are identical to the
    // historical one-app-at-a-time sweep (and to the committed
    // baselines) for any --threads value. Rows are emitted in workload
    // order after the pool drains.
    const std::vector<Workload> &apps = workloads();
    AnalysisOptions aopts;
    aopts.threads = 1;
    aopts.laneWidth = io.lanes();
    struct AppRow
    {
        size_t toggledPerModule[kNumModules] = {};
        size_t toggledTotal = 0;
        uint64_t gatesEvaluated = 0;
        uint64_t laneSweeps = 0;
        uint64_t laneCycles = 0;
        bool completed = false;
    };
    std::vector<AppRow> rows(apps.size());
    WorkerPool pool(io.threads());
    for (size_t a = 0; a < apps.size(); a++) {
        pool.post([&, a] {
            AnalysisResult r = analyzeActivity(nl, apps[a], aopts);
            AppRow &row = rows[a];
            row.completed = r.completed;
            row.gatesEvaluated = r.gatesEvaluated;
            row.laneSweeps = r.laneSweeps;
            row.laneCycles = r.laneCycles;
            for (GateId i = 0; i < nl.size(); i++) {
                const Gate &g = nl.gate(i);
                if (cellPseudo(g.type) || !r.activity->toggled(i))
                    continue;
                row.toggledPerModule[static_cast<int>(g.module)]++;
                row.toggledTotal++;
            }
        });
    }
    pool.drain();

    // Work counters (JSON only; --check ignores them, they vary with
    // --lanes while every percentage stays identical).
    uint64_t gates_evaluated = 0, lane_sweeps = 0, lane_cycles = 0;
    for (const AppRow &row : rows) {
        gates_evaluated += row.gatesEvaluated;
        lane_sweeps += row.laneSweeps;
        lane_cycles += row.laneCycles;
    }
    io.counter("gates_evaluated", static_cast<double>(gates_evaluated));
    io.counter("lane_width", io.lanes());
    io.counter("lane_sweeps", static_cast<double>(lane_sweeps));
    io.counter("lane_cycles", static_cast<double>(lane_cycles));
    if (lane_sweeps > 0) {
        io.counter("lanes_utilized_avg",
                   static_cast<double>(lane_cycles) /
                       static_cast<double>(lane_sweeps));
    }

    for (size_t a = 0; a < apps.size(); a++) {
        const AppRow &row = rows[a];
        if (!row.completed)
            bespoke_warn(apps[a].name, ": analysis hit caps");
        table.row().add(apps[a].name)
            .add(100.0 * static_cast<double>(row.toggledTotal) / total,
                 1);
        for (int m = 0; m < kNumModules; m++) {
            if (module_cells[m] == 0)
                continue;
            // Contribution of this module to the usable fraction
            // (stacked-bar component, as a % of all design gates).
            table.add(100.0 * static_cast<double>(
                                  row.toggledPerModule[m]) /
                          total,
                      1);
        }
    }
    io.table("usable_gates", table,
             "Gates toggleable by each benchmark (% of all cells; "
             "per-module stacked components).\nPaper: at most 57% "
             "usable; 11 of 15 benchmarks below 50%.");
    return io.finish();
}
