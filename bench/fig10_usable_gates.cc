/**
 * @file
 * Figure 10: fraction of the processor's gates each benchmark can
 * toggle for ANY input (input-independent gate activity analysis),
 * broken down by module. This is the guaranteed-sound counterpart of
 * the profiled Fig. 2 numbers and directly determines what cutting &
 * stitching may remove.
 */

#include "bench/bench_common.hh"
#include "src/analysis/activity_analysis.hh"
#include "src/cpu/bsp430.hh"

using namespace bespoke;

int
main(int argc, char **argv)
{
    setVerbose(false);
    BenchIO io(argc, argv, "fig10_usable_gates");

    banner("Input-independent usable-gate fractions per module",
           "Figure 10");

    Netlist nl = buildBsp430();
    double total = static_cast<double>(nl.numCells());

    std::vector<std::string> headers = {"benchmark", "usable %"};
    size_t module_cells[kNumModules] = {};
    for (GateId i = 0; i < nl.size(); i++) {
        const Gate &g = nl.gate(i);
        if (!cellPseudo(g.type))
            module_cells[static_cast<int>(g.module)]++;
    }
    for (int m = 0; m < kNumModules; m++) {
        if (module_cells[m] > 0)
            headers.push_back(moduleName(static_cast<Module>(m)));
    }
    Table table(headers);

    // First row: module shares of the baseline design (paper's
    // leftmost bar).
    table.row().add("(baseline share)").add(100.0, 1);
    for (int m = 0; m < kNumModules; m++) {
        if (module_cells[m] == 0)
            continue;
        table.add(100.0 * static_cast<double>(module_cells[m]) / total,
                  1);
    }

    AnalysisOptions aopts;
    aopts.threads = io.threads();
    for (const Workload &w : workloads()) {
        AnalysisResult r = analyzeActivity(nl, w, aopts);
        if (!r.completed)
            bespoke_warn(w.name, ": analysis hit caps");
        size_t toggled_per_module[kNumModules] = {};
        size_t toggled_total = 0;
        for (GateId i = 0; i < nl.size(); i++) {
            const Gate &g = nl.gate(i);
            if (cellPseudo(g.type) || !r.activity->toggled(i))
                continue;
            toggled_per_module[static_cast<int>(g.module)]++;
            toggled_total++;
        }
        table.row().add(w.name).add(
            100.0 * static_cast<double>(toggled_total) / total, 1);
        for (int m = 0; m < kNumModules; m++) {
            if (module_cells[m] == 0)
                continue;
            // Contribution of this module to the usable fraction
            // (stacked-bar component, as a % of all design gates).
            table.add(100.0 *
                          static_cast<double>(toggled_per_module[m]) /
                          total,
                      1);
        }
    }
    io.table("usable_gates", table,
             "Gates toggleable by each benchmark (% of all cells; "
             "per-module stacked components).\nPaper: at most 57% "
             "usable; 11 of 15 benchmarks below 50%.");
    return io.finish();
}
