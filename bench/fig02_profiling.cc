/**
 * @file
 * Figure 2: fraction of gates NOT toggled when each application runs
 * with many different concrete input sets (profiling). The bar is the
 * intersection across inputs (gates untoggled for every profiled
 * input); the interval is the per-input range. Shows why profiling
 * alone cannot drive gate removal: coverage varies with inputs.
 */

#include <memory>

#include "bench/bench_common.hh"
#include "src/cpu/bsp430.hh"
#include "src/verify/runner.hh"

using namespace bespoke;

int
main(int argc, char **argv)
{
    setVerbose(false);
    BenchIO io(argc, argv, "fig02_profiling");
    int num_inputs = io.quick() ? 3 : 8;

    banner("Profiled unused gates per application across input sets",
           "Figure 2");

    Netlist nl = buildBsp430();
    double total = static_cast<double>(nl.numCells());

    Table table({"benchmark", "inputs", "unused % (all inputs)",
                 "unused % min", "unused % max", "input variation %"});

    for (const Workload &w : workloads()) {
        AsmProgram prog = w.assembleProgram();
        Rng rng(42);

        // Union of toggled gates across inputs; its untoggled count is
        // the intersection of per-input unused sets (the paper's bar).
        std::unique_ptr<ActivityTracker> union_toggles;
        double min_pct = 100.0, max_pct = 0.0;
        for (int i = 0; i < num_inputs; i++) {
            WorkloadInput in = w.genInput(rng);
            ActivityTracker single(nl);
            GateRun run = runWorkloadGate(nl, w, prog, in, nullptr,
                                          &single);
            if (!run.halted)
                bespoke_warn(w.name, " did not halt while profiling");
            double pct = 100.0 *
                         static_cast<double>(
                             single.untoggledCellCount()) /
                         total;
            min_pct = std::min(min_pct, pct);
            max_pct = std::max(max_pct, pct);
            if (!union_toggles) {
                union_toggles =
                    std::make_unique<ActivityTracker>(single);
            } else {
                union_toggles->mergeFrom(single);
            }
        }
        double all_pct = 100.0 *
                         static_cast<double>(
                             union_toggles->untoggledCellCount()) /
                         total;
        table.row()
            .add(w.name)
            .add(num_inputs)
            .add(all_pct, 1)
            .add(min_pct, 1)
            .add(max_pct, 1)
            .add(max_pct - min_pct, 1);
    }
    io.table("profiled_unused", table,
             "Gates untoggled under profiling (paper: 30-60%, with "
             "up to 13% variation across inputs)");
    std::printf("Profiling cannot guarantee a gate is unusable: the "
                "unused set varies with inputs,\nmotivating the "
                "input-independent analysis of Fig. 10.\n");
    return io.finish();
}
