/**
 * @file
 * Table 1: the benchmark suite. Prints each workload's class and
 * description plus its maximum observed execution length in cycles on
 * the gate-level core across a set of random inputs (the paper reports
 * "Max Execution Length (cycles)" per benchmark).
 */

#include "bench/bench_common.hh"
#include "src/cpu/bsp430.hh"
#include "src/verify/runner.hh"

using namespace bespoke;

int
main(int argc, char **argv)
{
    setVerbose(false);
    BenchIO io(argc, argv, "table1_benchmarks");
    int inputs = io.quick() ? 2 : 6;

    banner("Benchmark suite and execution lengths", "Table 1");

    Netlist nl = buildBsp430();
    Table table({"class", "benchmark", "description",
                 "max exec length (cycles)", "instructions (ISS)"});

    auto cls_name = [](WorkloadClass c) {
        switch (c) {
          case WorkloadClass::Sensor:
            return "sensor";
          case WorkloadClass::Eembc:
            return "EEMBC";
          case WorkloadClass::Unit:
            return "unit";
          default:
            return "extra";
        }
    };

    auto report = [&](const Workload &w) {
        AsmProgram prog = w.assembleProgram();
        Rng rng(7);
        uint64_t max_cycles = 0, max_instr = 0;
        for (int i = 0; i < inputs; i++) {
            WorkloadInput in = w.genInput(rng);
            GateRun gr = runWorkloadGate(nl, w, prog, in);
            IssRun ir = runWorkloadIss(w, in);
            if (!gr.halted)
                bespoke_warn(w.name, " did not halt");
            max_cycles = std::max(max_cycles, gr.cycles);
            max_instr = std::max(max_instr, ir.instructions);
        }
        table.row()
            .add(cls_name(w.cls))
            .add(w.name)
            .add(w.description)
            .add(static_cast<long>(max_cycles))
            .add(static_cast<long>(max_instr));
    };

    for (const Workload &w : workloads())
        report(w);
    for (const Workload &w : extraWorkloads())
        report(w);

    io.table("benchmarks", table,
             "Paper Table 1 reports 210-1,167,298 cycles across "
             "the suite; our kernels use\nsmaller data sets (the "
             "symbolic analysis is exact regardless of input "
             "size).");
    return io.finish();
}
