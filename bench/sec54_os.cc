/**
 * @file
 * Section 5.4: bespoke processors for applications running with an
 * operating system. minios (our FreeRTOS substitution: a cooperative
 * two-task kernel with real context switching) is analyzed alone, with
 * each benchmark, and with all benchmarks together. Paper: 57% of
 * gates unusable by the OS alone (including the entire multiplier);
 * >=37% unused per app+OS; 27% unused with all 15 apps + OS.
 */

#include "bench/bench_common.hh"
#include "src/bespoke/flow.hh"

using namespace bespoke;

int
main(int argc, char **argv)
{
    setVerbose(false);
    BenchIO io(argc, argv, "sec54_os");
    bool quick = io.quick();

    banner("System code: bespoke design with an OS (minios)",
           "Section 5.4");

    FlowOptions opts;
    opts.analysis.threads = io.threads();
    opts.checkpointDir = io.checkpointDir();
    opts.checkpointMaxBytes = io.checkpointMaxBytes();
    BespokeFlow flow(opts);
    const Netlist &nl = flow.baseline();
    double total = static_cast<double>(nl.numCells());
    const Workload &os = workloadByName("minios");

    AnalysisResult os_act = flow.analyze(os);
    size_t mult_total = nl.moduleStats(Module::Mult).numCells;
    size_t mult_toggled = 0;
    for (GateId i = 0; i < nl.size(); i++) {
        if (!cellPseudo(nl.gate(i).type) &&
            nl.gate(i).module == Module::Mult &&
            os_act.activity->toggled(i)) {
            mult_toggled++;
        }
    }
    double os_unusable =
        100.0 *
        static_cast<double>(os_act.activity->untoggledCellCount()) /
        total;
    std::printf("minios alone: %.0f%% of gates unusable (%zu of %zu "
                "multiplier gates toggleable)\n\n",
                os_unusable, mult_toggled, mult_total);
    io.metric("os_unusable_pct", os_unusable);
    io.metric("mult_gates_toggled",
              static_cast<double>(mult_toggled));

    Table table({"configuration", "unused gates %", "gate savings %",
                 "area savings %"});
    ActivityTracker all_union = *os_act.activity;
    int count = 0;
    for (const Workload &w : workloads()) {
        if (quick && count >= 5)
            break;
        count++;
        AnalysisResult app = flow.analyze(w);
        ActivityTracker merged = *os_act.activity;
        merged.mergeFrom(*app.activity);
        all_union.mergeFrom(*app.activity);

        Netlist design = cutAndStitch(nl, merged);
        table.row()
            .add(w.name + " + minios")
            .add(100.0 *
                     static_cast<double>(merged.untoggledCellCount()) /
                     total,
                 1)
            .add(savingsPct(total,
                            static_cast<double>(design.numCells())),
                 1)
            .add(savingsPct(nl.stats().area, design.stats().area), 1);
    }
    Netlist all_design = cutAndStitch(nl, all_union);
    table.row()
        .add("ALL apps + minios")
        .add(100.0 *
                 static_cast<double>(all_union.untoggledCellCount()) /
                 total,
             1)
        .add(savingsPct(total,
                        static_cast<double>(all_design.numCells())),
             1)
        .add(savingsPct(nl.stats().area, all_design.stats().area), 1);
    io.table("os_codesign", table,
             "Applications co-analyzed with the minios kernel "
             "(union of toggleable gates).\nPaper: 37% unused worst "
             "case per app (49% avg); 27% unused with all 15 apps "
             "+ OS.");
    return io.finish();
}
