/**
 * @file
 * Tables 4 and 5: emulated in-field updates (mutants). Table 4 counts
 * mutants by type for the six benchmarks with the most mutants; Table
 * 5 reports the percentage of mutants whose gate requirements are
 * already covered by the bespoke design of the unmutated application
 * (i.e. bug-fix updates that deploy without a hardware respin).
 */

#include <algorithm>
#include <cmath>

#include "bench/bench_common.hh"
#include "src/bespoke/flow.hh"
#include "src/mutation/mutant_sweep.hh"
#include "src/mutation/mutation.hh"
#include "src/util/worker_pool.hh"

using namespace bespoke;

int
main(int argc, char **argv)
{
    setVerbose(false);
    BenchIO io(argc, argv, "table4_5_mutants");
    bool quick = io.quick();

    banner("Mutant generation and bespoke support for in-field fixes",
           "Tables 4 and 5");

    FlowOptions opts;
    opts.analysis.threads = io.threads();
    opts.analysis.laneWidth = io.lanes();
    opts.analysis.planeBits = io.planeBits();
    opts.checkpointDir = io.checkpointDir();
    opts.checkpointMaxBytes = io.checkpointMaxBytes();
    BespokeFlow flow(opts);

    // The paper's six mutant-rich benchmarks.
    const char *names[] = {"binSearch", "inSort", "rle",
                           "tea8",      "viterbi", "autocorr"};

    WorkerPool pool(io.threads());
    Table t4({"benchmark", "Type I", "Type II", "Type III", "total"});
    Table t5({"benchmark", "Type I supp. %", "Type II supp. %",
              "Type III supp. %", "total supp. %", "analyzed"});
    Table td({"benchmark", "swept", "detected", "detected %",
              "max |dP| %"});

    for (const char *name : names) {
        const Workload &w = workloadByName(name);
        std::vector<Mutant> mutants = generateMutants(w);
        if (quick && mutants.size() > 12)
            mutants.resize(12);

        int count[3] = {}, supported[3] = {}, analyzed[3] = {};
        for (const Mutant &m : mutants)
            count[static_cast<int>(m.type)]++;

        AnalysisResult base = flow.analyze(w);
        AnalysisOptions mopts = opts.analysis;
        mopts.maxTotalCycles = 4'000'000;
        mopts.maxPaths = 40'000;
        // One task per mutant; each analysis runs serially inside its
        // task so the per-mutant verdicts (and hence the committed
        // baselines) are --threads independent.
        mopts.threads = 1;
        enum : uint8_t { kSkipped, kAnalyzed, kSupported };
        std::vector<uint8_t> verdict(mutants.size(), kSkipped);
        for (size_t mi = 0; mi < mutants.size(); mi++) {
            pool.post([&, mi] {
                AsmProgram mp =
                    mutants[mi].workload.assembleProgram();
                AnalysisResult r =
                    analyzeActivity(flow.baseline(), mp, mopts);
                if (!r.completed)
                    return;  // divergent mutant: conservatively skipped
                verdict[mi] =
                    mutantSupported(*base.activity, *r.activity)
                        ? kSupported
                        : kAnalyzed;
            });
        }
        pool.drain();

        // Concrete differential sweep, lane-per-mutant: does the
        // mutant change observable behavior, and how far does it move
        // switching power? Values are lanes/plane-bits independent.
        MutantPlanePrep prep(flow.baseline(), w, mutants);
        MutantSweepOptions sopts;
        sopts.inputsPerMutant = quick ? 2 : 4;
        sopts.planeBits = io.planeBits();
        std::vector<MutantVerdict> dyn = mutantConcreteSweep(prep, sopts);
        int detected = 0;
        double max_dp = 0.0;
        for (const MutantVerdict &v : dyn) {
            if (v.detected)
                detected++;
            max_dp = std::max(max_dp, std::abs(v.powerDeltaPct));
        }
        td.row()
            .add(w.name)
            .add(static_cast<int>(dyn.size()))
            .add(detected)
            .add(dyn.empty() ? 0.0 : 100.0 * detected / dyn.size(), 1)
            .add(max_dp, 2);

        for (size_t mi = 0; mi < mutants.size(); mi++) {
            if (verdict[mi] == kSkipped)
                continue;
            int k = static_cast<int>(mutants[mi].type);
            analyzed[k]++;
            if (verdict[mi] == kSupported)
                supported[k]++;
        }

        t4.row()
            .add(w.name)
            .add(count[0])
            .add(count[1])
            .add(count[2])
            .add(count[0] + count[1] + count[2]);

        auto pct = [](int num, int den) {
            return den == 0 ? std::string("-")
                            : formatFixed(100.0 * num / den, 0);
        };
        int tot_supp = supported[0] + supported[1] + supported[2];
        int tot_ana = analyzed[0] + analyzed[1] + analyzed[2];
        t5.row()
            .add(w.name)
            .add(pct(supported[0], analyzed[0]))
            .add(pct(supported[1], analyzed[1]))
            .add(pct(supported[2], analyzed[2]))
            .add(pct(tot_supp, tot_ana))
            .add(tot_ana);
    }

    io.table("mutant_counts", t4,
             "Table 4: mutants by type (Type I: conditional-operator; "
             "Type II: computation-operator;\nType III: loop-condition "
             "operator). Paper totals: 15-83 per benchmark.");
    io.table("mutant_support", t5,
             "Table 5: mutants supported by the ORIGINAL application's "
             "bespoke design without any\nhardware change. Paper: "
             "25-100% per type, 70% of all mutants overall.");
    io.table("mutant_detection", td,
             "Concrete differential sweep (lane-per-mutant): mutants "
             "whose outputs/GPIO/halting\ndiffer from the base program "
             "on swept inputs, and the largest switching-power\nshift "
             "any mutant causes.");
    return io.finish();
}
