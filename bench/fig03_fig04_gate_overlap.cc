/**
 * @file
 * Figures 3 and 4: different applications leave different gates
 * unexercised, and even the SAME instruction mix in a different order
 * (intFilt vs. scrambled intFilt) leaves different gates unexercised.
 * The paper shows die plots; we report the per-module common/unique
 * untoggled-gate breakdown.
 */

#include "bench/bench_common.hh"
#include "src/analysis/activity_analysis.hh"
#include "src/cpu/bsp430.hh"

using namespace bespoke;

namespace
{

void
comparePair(BenchIO &io, const std::string &key, const Netlist &nl,
            const std::string &name_a, const std::string &name_b,
            const char *figure)
{
    AnalysisOptions aopts;
    aopts.threads = io.threads();
    AnalysisResult ra =
        analyzeActivity(nl, workloadByName(name_a), aopts);
    AnalysisResult rb =
        analyzeActivity(nl, workloadByName(name_b), aopts);

    size_t common = 0, only_a = 0, only_b = 0;
    size_t common_m[kNumModules] = {}, a_m[kNumModules] = {},
           b_m[kNumModules] = {};
    for (GateId i = 0; i < nl.size(); i++) {
        const Gate &g = nl.gate(i);
        if (cellPseudo(g.type))
            continue;
        bool ua = !ra.activity->toggled(i);
        bool ub = !rb.activity->toggled(i);
        int m = static_cast<int>(g.module);
        if (ua && ub) {
            common++;
            common_m[m]++;
        } else if (ua) {
            only_a++;
            a_m[m]++;
        } else if (ub) {
            only_b++;
            b_m[m]++;
        }
    }

    std::printf("\n--- %s: %s vs %s ---\n", figure, name_a.c_str(),
                name_b.c_str());
    Table t({"module", "untoggled by both",
             ("only " + name_a), ("only " + name_b)});
    for (int m = 0; m < kNumModules; m++) {
        if (common_m[m] + a_m[m] + b_m[m] == 0)
            continue;
        t.row()
            .add(moduleName(static_cast<Module>(m)))
            .add(static_cast<long>(common_m[m]))
            .add(static_cast<long>(a_m[m]))
            .add(static_cast<long>(b_m[m]));
    }
    t.row()
        .add("TOTAL")
        .add(static_cast<long>(common))
        .add(static_cast<long>(only_a))
        .add(static_cast<long>(only_b));
    io.table(key, t);
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    BenchIO io(argc, argv, "fig03_fig04_gate_overlap");

    banner("Unused-gate overlap between applications",
           "Figures 3 and 4");

    Netlist nl = buildBsp430();

    // Fig. 3: two different applications (FFT vs binSearch).
    comparePair(io, "fig3_two_apps", nl, "FFT", "binSearch",
                "Figure 3");

    // Fig. 4: the same instructions in a different order.
    comparePair(io, "fig4_scrambled", nl, "intFilt",
                "intFilt-scrambled", "Figure 4");

    std::printf(
        "\nEach pair leaves overlapping but DIFFERENT gates unused — "
        "including the\nscrambled twin with an identical instruction "
        "mix — so neither ISA-level nor\nprofile-based reasoning can "
        "identify removable gates; hardware/software\nco-analysis is "
        "required (paper Sec. 2).\n");
    return io.finish();
}
