/**
 * @file
 * Figure 13: bespoke processors supporting multiple applications. For
 * each N, bespoke designs are built for combinations of N of the 15
 * benchmarks (union of toggleable gates) and the normalized gate
 * count, area, and power ranges are reported. The paper enumerates all
 * combinations; we enumerate when feasible and sample otherwise (the
 * per-application activity analyses are reused across combinations).
 */

#include <algorithm>

#include "bench/bench_common.hh"
#include "src/bespoke/flow.hh"

using namespace bespoke;

int
main(int argc, char **argv)
{
    setVerbose(false);
    BenchIO io(argc, argv, "fig13_multiprogram");
    bool quick = io.quick();
    const int samples_per_n = quick ? 4 : 12;

    banner("Multi-program bespoke processors", "Figure 13");

    FlowOptions opts;
    opts.analysis.threads = io.threads();
    opts.checkpointDir = io.checkpointDir();
    opts.checkpointMaxBytes = io.checkpointMaxBytes();
    opts.powerInputsPerWorkload = 1;
    BespokeFlow flow(opts);
    const std::vector<Workload> &apps = workloads();
    const int num_apps = static_cast<int>(apps.size());

    // Per-application activities, computed once.
    std::vector<AnalysisResult> acts;
    for (const Workload &w : apps)
        acts.push_back(flow.analyze(w));

    // Baseline reference (power measured across all applications).
    std::vector<const Workload *> all_apps;
    for (const Workload &w : apps)
        all_apps.push_back(&w);
    DesignMetrics base = flow.measureBaseline(all_apps);

    Table table({"N programs", "combos", "gates min-max (norm.)",
                 "area min-max (norm.)", "power min-max (norm.)"});

    Rng rng(31415);
    for (int n = 1; n <= num_apps; n++) {
        // Choose combinations: exhaustive for n==1/n==15, random
        // samples otherwise.
        std::vector<std::vector<int>> combos;
        if (n == 1) {
            for (int i = 0; i < num_apps; i++)
                combos.push_back({i});
        } else if (n == num_apps) {
            std::vector<int> all(num_apps);
            for (int i = 0; i < num_apps; i++)
                all[i] = i;
            combos.push_back(all);
        } else {
            for (int s = 0; s < samples_per_n; s++) {
                std::vector<int> pool(num_apps);
                for (int i = 0; i < num_apps; i++)
                    pool[i] = i;
                for (int i = 0; i < n; i++) {
                    int j = i + static_cast<int>(
                                    rng.below(num_apps - i));
                    std::swap(pool[i], pool[j]);
                }
                combos.push_back(
                    std::vector<int>(pool.begin(), pool.begin() + n));
            }
        }

        double gmin = 1e18, gmax = 0, amin = 1e18, amax = 0;
        double pmin = 1e18, pmax = 0;
        for (const auto &combo : combos) {
            ActivityTracker merged = *acts[combo[0]].activity;
            std::vector<const Workload *> members;
            members.push_back(&apps[combo[0]]);
            for (size_t k = 1; k < combo.size(); k++) {
                merged.mergeFrom(*acts[combo[k]].activity);
                members.push_back(&apps[combo[k]]);
            }
            Netlist design = cutAndStitch(flow.baseline(), merged);
            sizeForLoads(design, opts.timing);
            DesignMetrics m = flow.measure(design, members);
            double g = static_cast<double>(m.gates) /
                       static_cast<double>(base.gates);
            double a = m.areaUm2 / base.areaUm2;
            double p = m.powerNominal.totalUW() /
                       base.powerNominal.totalUW();
            gmin = std::min(gmin, g);
            gmax = std::max(gmax, g);
            amin = std::min(amin, a);
            amax = std::max(amax, a);
            pmin = std::min(pmin, p);
            pmax = std::max(pmax, p);
        }
        table.row()
            .add(n)
            .add(static_cast<long>(combos.size()))
            .add(formatFixed(gmin, 2) + " - " + formatFixed(gmax, 2))
            .add(formatFixed(amin, 2) + " - " + formatFixed(amax, 2))
            .add(formatFixed(pmin, 2) + " - " + formatFixed(pmax, 2));
    }
    io.table("multiprogram", table,
             "Normalized to the baseline core (1.00). Paper: even "
             "10-program designs can save\n41% area / 20% power, "
             "and multi-program designs never exceed the "
             "baseline.");

    // Exhaustive enumeration over ALL 2^15-1 combinations (as in the
    // paper), on the usable-gate proxy: merging the per-application
    // toggle bitsets is cheap even for the full power set.
    if (!quick) {
        Table ex({"N programs", "combos",
                  "usable gates min-max (% of baseline)"});
        std::vector<double> nmin(num_apps + 1, 1e18);
        std::vector<double> nmax(num_apps + 1, 0.0);
        std::vector<uint64_t> ncount(num_apps + 1, 0);
        double total = static_cast<double>(base.gates);
        for (uint32_t mask = 1; mask < (1u << num_apps); mask++) {
            int n = __builtin_popcount(mask);
            ActivityTracker merged =
                *acts[__builtin_ctz(mask)].activity;
            for (int i = 0; i < num_apps; i++) {
                if ((mask & (1u << i)) &&
                    i != __builtin_ctz(mask)) {
                    merged.mergeFrom(*acts[i].activity);
                }
            }
            double usable =
                100.0 *
                (total - static_cast<double>(
                             merged.untoggledCellCount())) /
                total;
            nmin[n] = std::min(nmin[n], usable);
            nmax[n] = std::max(nmax[n], usable);
            ncount[n]++;
        }
        for (int n = 1; n <= num_apps; n++) {
            ex.row()
                .add(n)
                .add(static_cast<long>(ncount[n]))
                .add(formatFixed(nmin[n], 1) + " - " +
                     formatFixed(nmax[n], 1));
        }
        io.table("exhaustive", ex,
                 "Exhaustive sweep over all combinations (usable-gate "
                 "fraction before re-synthesis).");
    }
    return io.finish();
}
