/**
 * @file
 * Figure 14: bespoke processors designed to support ALL mutants of an
 * application (the union of the application's and every mutant's
 * toggleable gates), emulating guaranteed support for a class of
 * in-field bug fixes. Reports normalized gate count/area/power and the
 * gate-count overhead over the single-application bespoke design.
 */

#include "bench/bench_common.hh"
#include "src/bespoke/flow.hh"
#include "src/mutation/mutation.hh"

using namespace bespoke;

int
main(int argc, char **argv)
{
    setVerbose(false);
    BenchIO io(argc, argv, "fig14_mutant_designs");
    bool quick = io.quick();

    banner("Bespoke designs supporting all mutants (in-field updates)",
           "Figure 14");

    FlowOptions opts;
    opts.analysis.threads = io.threads();
    opts.checkpointDir = io.checkpointDir();
    opts.checkpointMaxBytes = io.checkpointMaxBytes();
    opts.powerInputsPerWorkload = 1;
    BespokeFlow flow(opts);

    const char *names[] = {"binSearch", "inSort", "rle",
                           "tea8",      "viterbi", "autocorr"};

    Table table({"benchmark", "mutants merged", "gates (norm.)",
                 "area (norm.)", "power (norm.)",
                 "gate overhead vs bespoke %"});

    for (const char *name : names) {
        const Workload &w = workloadByName(name);
        DesignMetrics base = flow.measureBaseline({&w});
        BespokeDesign plain = flow.tailor(w);

        std::vector<Mutant> mutants = generateMutants(w);
        if (quick && mutants.size() > 10)
            mutants.resize(10);

        ActivityTracker merged = *plain.analysis.activity;
        AnalysisOptions mopts = opts.analysis;
        mopts.maxTotalCycles = 4'000'000;
        mopts.maxPaths = 40'000;
        int merged_count = 0;
        for (const Mutant &m : mutants) {
            AsmProgram mp = m.workload.assembleProgram();
            AnalysisResult r =
                analyzeActivity(flow.baseline(), mp, mopts);
            if (!r.completed)
                continue;
            merged.mergeFrom(*r.activity);
            merged_count++;
        }

        Netlist design = cutAndStitch(flow.baseline(), merged);
        sizeForLoads(design, opts.timing);
        DesignMetrics m = flow.measure(design, {&w});

        table.row()
            .add(w.name)
            .add(merged_count)
            .add(static_cast<double>(m.gates) /
                     static_cast<double>(base.gates),
                 2)
            .add(m.areaUm2 / base.areaUm2, 2)
            .add(m.powerNominal.totalUW() /
                     base.powerNominal.totalUW(),
                 2)
            .add(100.0 *
                     (static_cast<double>(m.gates) -
                      static_cast<double>(plain.metrics.gates)) /
                     static_cast<double>(plain.metrics.gates),
                 1);
    }
    io.table("mutant_designs", table,
             "Designs supporting the app plus all its mutants, "
             "normalized to the baseline.\nPaper: 1-40% gate "
             "overhead; area savings remain 23-66%, power savings "
             "13-53%.");
    return io.finish();
}
