/**
 * @file
 * Figure 15: power savings of ORACULAR module-level power gating
 * (zero overhead, instant wake, per-module domains) compared against
 * bespoke tailoring. The paper shows gating saves <13% while bespoke
 * processors save at least 37% for the same applications.
 */

#include "bench/bench_common.hh"
#include "src/bespoke/flow.hh"
#include "src/gating/clock_gating.hh"
#include "src/gating/power_gating.hh"

using namespace bespoke;

int
main(int argc, char **argv)
{
    setVerbose(false);
    BenchIO io(argc, argv, "fig15_power_gating");
    int inputs = io.quick() ? 1 : 2;

    banner("Oracle module-level power gating vs. bespoke design",
           "Figure 15");

    FlowOptions opts;
    opts.analysis.threads = io.threads();
    opts.analysis.laneWidth = io.lanes();
    opts.analysis.planeBits = io.planeBits();
    opts.planeBits = io.planeBits();
    opts.checkpointDir = io.checkpointDir();
    opts.checkpointMaxBytes = io.checkpointMaxBytes();
    opts.powerInputsPerWorkload = inputs;
    BespokeFlow flow(opts);

    Table table({"benchmark", "oracle gating savings %",
                 "clock gating savings %", "bespoke power savings %",
                 "bespoke advantage (x)"});
    for (const Workload &w : workloads()) {
        GatingResult g = evaluateOracleGating(
            flow.baseline(), w, inputs, 77, opts.power, opts.timing,
            io.planeBits());
        // Realizable counterpart to the oracle: ICGs on rarely-written
        // register banks of the same baseline core, overhead included.
        ClockGatingReport cg = evaluateClockGating(
            flow.baseline(), w, inputs, 77, {}, opts.power);
        DesignMetrics base = flow.measureBaseline({&w});
        BespokeDesign d = flow.tailor(w);
        double base_uw = base.powerNominal.totalUW();
        double bespoke_save =
            savingsPct(base_uw, d.metrics.powerNominal.totalUW());
        table.row()
            .add(w.name)
            .add(g.savingsPercent(), 1)
            .add(100.0 * cg.savedClockUW / base_uw, 1)
            .add(bespoke_save, 1)
            .add(bespoke_save / std::max(g.savingsPercent(), 0.01), 1);
    }
    io.table("power_gating", table,
             "Oracular (zero-overhead, instant-wake) module power "
             "gating vs. realizable\nregister-bank clock gating "
             "(ICG overhead charged).\nPaper: gating saves <13% on "
             "every application; the minimum bespoke power\nreduction "
             "(37%) beats the maximum gating reduction.");
    return io.finish();
}
