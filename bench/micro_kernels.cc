/**
 * @file
 * Infrastructure microbenchmarks (google-benchmark): throughput of the
 * levelized three-valued simulator, the symbolic activity analysis,
 * STA, and cutting & stitching on the bsp430 core. These are not paper
 * results; they quantify the cost of the methodology itself (paper
 * Sec. 3.2 footnote: "complete analysis of our most complex benchmark
 * takes 3 hours" on the authors' infrastructure).
 */

#include <benchmark/benchmark.h>

#include "src/analysis/activity_analysis.hh"
#include "src/bespoke/flow.hh"
#include "src/cpu/bsp430.hh"
#include "src/sim/lane_sim.hh"
#include "src/verify/runner.hh"

namespace
{

using namespace bespoke;

const Netlist &
core()
{
    static Netlist nl = buildBsp430();
    return nl;
}

void
BM_GateSimCycle(benchmark::State &state)
{
    const Workload &w = workloadByName("intFilt");
    AsmProgram prog = w.assembleProgram();
    Soc soc(core(), prog, false);
    Rng rng(1);
    WorkloadInput in = w.genInput(rng);
    for (size_t i = 0; i < in.ramWords.size(); i++) {
        soc.pokeRamWord(static_cast<uint16_t>(kInputBase + 2 * i),
                        SWord::of(in.ramWords[i]));
    }
    soc.setGpioIn(SWord::of(0));
    soc.setIrqExt(Logic::Zero);
    for (auto _ : state)
        soc.cycle();
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(core().size()));
}
BENCHMARK(BM_GateSimCycle);

template <int W>
void
BM_LaneSimCycle(benchmark::State &state)
{
    // W concrete scenarios per sweep on the bit-plane engine; items
    // processed counts gate*lane evaluations (items/s = gate·lane/s),
    // so items/s here vs. BM_GateSimCycle is the raw per-scenario
    // speedup of plane packing (before the event-driven engine's
    // dirty-set advantage), and across widths it shows how multi-word
    // planes amortize the per-gate fixed costs — the widest plane
    // should clear at least twice the 64-bit plane's rate.
    const Workload &w = workloadByName("intFilt");
    AsmProgram prog = w.assembleProgram();
    std::shared_ptr<const SocContext> ctx = SocContext::make(core());
    LaneSocT<W> soc(ctx, prog);
    Soc seed(ctx, prog, /*ram_unknown=*/false);
    Rng rng(1);
    WorkloadInput in = w.genInput(rng);
    for (size_t i = 0; i < in.ramWords.size(); i++) {
        seed.pokeRamWord(static_cast<uint16_t>(kInputBase + 2 * i),
                         SWord::of(in.ramWords[i]));
    }
    for (int lane = 0; lane < W; lane++)
        soc.loadLane(lane, seed.sim().seqState(), seed.envState(), 0);
    soc.setGpioIn(SWord::of(0));
    soc.setIrqExt(Logic::Zero);
    using Mask = LaneMask<W>;
    for (auto _ : state) {
        soc.evalOnly();
        soc.finishCycle(laneOnes<Mask>());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(core().size()) * W);
}
BENCHMARK_TEMPLATE(BM_LaneSimCycle, 64);
BENCHMARK_TEMPLATE(BM_LaneSimCycle, 128);
BENCHMARK_TEMPLATE(BM_LaneSimCycle, 256);
BENCHMARK_TEMPLATE(BM_LaneSimCycle, 512);

void
BM_ActivityAnalysis(benchmark::State &state)
{
    const Workload &w = workloadByName("div");
    AsmProgram prog = w.assembleProgram();
    AnalysisOptions opts;
    opts.threads = static_cast<int>(state.range(0));
    opts.laneWidth = static_cast<int>(state.range(1));
    for (auto _ : state) {
        AnalysisResult r = analyzeActivity(core(), prog, opts);
        benchmark::DoNotOptimize(r.untoggledCells());
    }
}
BENCHMARK(BM_ActivityAnalysis)
    ->Args({1, 1})
    ->Args({1, 64})  // lane-batched frontier exploration
    ->Args({0, 1})   // threads 0 = one worker per hardware thread
    ->Args({0, 64})
    ->Unit(benchmark::kMillisecond);

void
BM_CutAndStitch(benchmark::State &state)
{
    const Workload &w = workloadByName("binSearch");
    AsmProgram prog = w.assembleProgram();
    AnalysisResult r = analyzeActivity(core(), prog);
    for (auto _ : state) {
        Netlist out = cutAndStitch(core(), *r.activity);
        benchmark::DoNotOptimize(out.numCells());
    }
}
BENCHMARK(BM_CutAndStitch)->Unit(benchmark::kMillisecond);

void
BM_StaticTiming(benchmark::State &state)
{
    for (auto _ : state) {
        TimingReport rep = analyzeTiming(core());
        benchmark::DoNotOptimize(rep.criticalPathPs);
    }
}
BENCHMARK(BM_StaticTiming)->Unit(benchmark::kMillisecond);

void
BM_Levelize(benchmark::State &state)
{
    for (auto _ : state) {
        auto order = core().levelize();
        benchmark::DoNotOptimize(order.size());
    }
}
BENCHMARK(BM_Levelize)->Unit(benchmark::kMillisecond);

void
BM_BuildCore(benchmark::State &state)
{
    for (auto _ : state) {
        Netlist nl = buildBsp430();
        benchmark::DoNotOptimize(nl.numCells());
    }
}
BENCHMARK(BM_BuildCore)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
