/**
 * @file
 * Section 5.3 (arbitrary in-field updates): overhead of adding
 * Turing-complete update support to a bespoke processor by
 * co-analyzing a subneg interpreter with the target application.
 * Paper: average area and power overheads of 8% and 10%; resulting
 * subneg-enhanced bespoke processors still save 56% area and 43% power
 * on average.
 */

#include "bench/bench_common.hh"
#include "src/bespoke/flow.hh"

using namespace bespoke;

int
main(int argc, char **argv)
{
    setVerbose(false);
    BenchIO io(argc, argv, "table_subneg_updates");
    bool quick = io.quick();

    banner("Turing-complete (subneg) update support overheads",
           "Section 5.3 / Figure 9");

    FlowOptions opts;
    opts.analysis.threads = io.threads();
    opts.checkpointDir = io.checkpointDir();
    opts.checkpointMaxBytes = io.checkpointMaxBytes();
    if (quick)
        opts.powerInputsPerWorkload = 1;
    BespokeFlow flow(opts);
    const Workload &subneg = workloadByName("subneg");

    Table table({"benchmark", "area ovh % (vs bespoke)",
                 "area ovh % (vs baseline)", "power ovh %",
                 "area savings %", "power savings %"});
    double sum_aovh = 0, sum_povh = 0, sum_as = 0, sum_ps = 0;
    double sum_bovh = 0;
    int n = 0;

    for (const Workload &w : workloads()) {
        DesignMetrics base = flow.measureBaseline({&w});
        BespokeDesign plain = flow.tailor(w);
        BespokeDesign enhanced = flow.tailorMulti({&w, &subneg});

        double aovh = 100.0 *
                      (enhanced.metrics.areaUm2 - plain.metrics.areaUm2) /
                      plain.metrics.areaUm2;
        double povh = 100.0 *
                      (enhanced.metrics.powerNominal.totalUW() -
                       plain.metrics.powerNominal.totalUW()) /
                      plain.metrics.powerNominal.totalUW();
        double as = savingsPct(base.areaUm2, enhanced.metrics.areaUm2);
        double ps = savingsPct(base.powerNominal.totalUW(),
                               enhanced.metrics.powerNominal.totalUW());
        double bovh = 100.0 *
                      (enhanced.metrics.areaUm2 - plain.metrics.areaUm2) /
                      base.areaUm2;
        table.row()
            .add(w.name)
            .add(aovh, 1)
            .add(bovh, 1)
            .add(povh, 1)
            .add(as, 1)
            .add(ps, 1);
        sum_bovh += bovh;
        sum_aovh += aovh;
        sum_povh += povh;
        sum_as += as;
        sum_ps += ps;
        n++;
    }
    table.row()
        .add("AVERAGE")
        .add(sum_aovh / n, 1)
        .add(sum_bovh / n, 1)
        .add(sum_povh / n, 1)
        .add(sum_as / n, 1)
        .add(sum_ps / n, 1);
    io.table("subneg_updates", table,
             "subneg-enhanced bespoke processors (co-analysis of "
             "the app with a subneg\ninterpreter whose program "
             "lives in all-X RAM). Paper: avg overhead 8% area /\n"
             "10% power; savings remain 56% area / 43% power.\n"
             "NOTE: the paper co-analyzes a minimal X-encoded "
             "subneg instruction pattern; our\nROM is concrete, so "
             "we co-analyze a full subneg *interpreter* (stronger\n"
             "guarantee: updates load into RAM without reflashing), "
             "which costs more gates.");
    return io.finish();
}
