/**
 * @file
 * Figure 12: benefit of fine-grained gate-level bespoke design over a
 * coarse-grained module-level bespoke design (an Xtensa-like flow that
 * can only drop entire modules in which no gate is usable). The paper
 * reports up to 75% additional power reduction (22% min, 35% average).
 */

#include "bench/bench_common.hh"
#include "src/bespoke/flow.hh"

using namespace bespoke;

int
main(int argc, char **argv)
{
    setVerbose(false);
    BenchIO io(argc, argv, "fig12_fine_vs_coarse");

    banner("Fine-grained (gate) vs. coarse-grained (module) bespoke",
           "Figure 12");

    FlowOptions opts;
    opts.analysis.threads = io.threads();
    opts.checkpointDir = io.checkpointDir();
    opts.checkpointMaxBytes = io.checkpointMaxBytes();
    if (io.quick())
        opts.powerInputsPerWorkload = 1;
    BespokeFlow flow(opts);

    Table table({"benchmark", "coarse gates", "fine gates",
                 "gate savings %", "area savings %", "power savings %"});
    double sum_power = 0;
    int n = 0;

    for (const Workload &w : workloads()) {
        BespokeDesign coarse = flow.tailorCoarse(w);
        BespokeDesign fine = flow.tailor(w);
        double gs = savingsPct(
            static_cast<double>(coarse.metrics.gates),
            static_cast<double>(fine.metrics.gates));
        double as =
            savingsPct(coarse.metrics.areaUm2, fine.metrics.areaUm2);
        double ps = savingsPct(coarse.metrics.powerNominal.totalUW(),
                               fine.metrics.powerNominal.totalUW());
        table.row()
            .add(w.name)
            .add(static_cast<long>(coarse.metrics.gates))
            .add(static_cast<long>(fine.metrics.gates))
            .add(gs, 1)
            .add(as, 1)
            .add(ps, 1);
        sum_power += ps;
        n++;
    }
    table.row()
        .add("AVERAGE")
        .add("")
        .add("")
        .add("")
        .add("")
        .add(sum_power / n, 1);
    io.table("fine_vs_coarse", table,
             "Savings of gate-level bespoke relative to "
             "module-level bespoke (paper: power up to 75%, min "
             "22%, avg 35%).");
    return io.finish();
}
