/**
 * @file
 * SAT never-toggle recovery over X-analysis pessimism (Fig. 10
 * companion): how many provably-constant gates the CNF/CDCL prover
 * recovers that the three-valued activity analysis left toggleable.
 *
 * The activity analysis is run in a reduced-precision configuration
 * (concreteVisits = 1: states widen at the first merge-point revisit)
 * so the widening pessimism the SAT pass exists to claw back is
 * actually present — at the default precision the small apps' analyses
 * are exact (zero merges or generous widening budgets) and the correct
 * recovery is zero, which demonstrates nothing. This mirrors the
 * paper-practical situation where the exploration budget binds before
 * the program's state space is exhausted and an exact backstop decides
 * the leftovers. See DESIGN.md section 13 for the envelope semantics.
 *
 * Table: per app, the merge count of the reduced analysis, SAT
 * candidates (replay-constant gates the cut left untouched), the
 * proven / refuted / unknown split at a fixed 30-cycle envelope (a
 * uniform bound keeps rows comparable; beyond the interrupt latency
 * the irq app's free-interrupt envelope starts legitimately refuting
 * almost everything, see EXPERIMENTS.md), plus solver observability:
 * conflicts and propagations (exact — solver work is deterministic
 * and thread-count-independent) and the SAT-pass wall time (volatile,
 * excluded from --check). --sat-threads parallelizes both the per-app
 * fan-out and each prover's candidate shards without moving any
 * checked value.
 *
 * Full mode additionally tailors the tractable-horizon apps with the
 * SAT pass at the analysis's own full horizon (the flow's auto depth)
 * and re-proves every recovered cut with BOTH independent equivalence
 * engines — the symbolic explorer at default precision and the SAT
 * miter — pinning that the recovered cuts are real.
 */

#include "bench/bench_common.hh"
#include "src/analysis/activity_analysis.hh"
#include "src/bespoke/equiv_check.hh"
#include "src/cpu/bsp430.hh"
#include "src/sat/equiv_prover.hh"
#include "src/sim/gate_sim.hh"
#include "src/transform/pass_pipeline.hh"
#include "src/util/rng.hh"
#include "src/util/worker_pool.hh"
#include "src/verify/runner.hh"

using namespace bespoke;

namespace
{

constexpr uint64_t kSeed = 2024;
constexpr int kInputs = 2;
constexpr int kTableDepth = 30;

/** Replay-measuring PassEnv over one app (the flow's providers). */
PassEnv
makeEnv(const Workload &app, const AsmProgram &prog, int plane_bits)
{
    PassEnv env;
    env.measureActivity = [&app, &prog, plane_bits](const Netlist &nl,
                                                    ToggleCounter *tc) {
        std::shared_ptr<const SocContext> ctx = SocContext::make(nl);
        GateBatchObservers obs;
        obs.toggles = tc;
        Rng rng(kSeed);
        std::vector<WorkloadInput> in;
        for (int i = 0; i < kInputs; i++)
            in.push_back(app.genInput(rng));
        runWorkloadGateBatch(nl, app, prog, in, plane_bits, obs, ctx);
    };
    env.measureDuty = [&app, &prog](const Netlist &nl,
                                    const std::vector<GateId> &ids,
                                    std::vector<uint64_t> *high,
                                    uint64_t *cycles) {
        high->assign(ids.size(), 0);
        *cycles = 0;
        Rng rng(kSeed);
        auto per_cycle = [&](const GateSim &sim) {
            (*cycles)++;
            for (size_t k = 0; k < ids.size(); k++)
                if (sim.value(ids[k]) != Logic::Zero)
                    (*high)[k]++;
        };
        for (int i = 0; i < kInputs; i++) {
            WorkloadInput in = app.genInput(rng);
            runWorkloadGate(nl, app, prog, in, nullptr, nullptr,
                            per_cycle);
        }
    };
    return env;
}

struct AppRow
{
    uint64_t merges = 0;
    size_t candidates = 0;
    size_t proven = 0;
    size_t refuted = 0;
    size_t unknown = 0;
    size_t cellsBase = 0;  ///< X-analysis cut only
    size_t cellsSat = 0;   ///< with the SAT pass
    /** Solver work (deterministic, thread-count-independent). */
    uint64_t conflicts = 0;
    uint64_t propagations = 0;
    /** Wall time of the SAT-pass pipeline run (volatile column). */
    double satMs = 0.0;
};

double
msSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    BenchIO io(argc, argv, "sat_recovery");

    banner("SAT never-toggle recovery over widened X-analysis",
           "Fig. 10 companion (exact backstop)");

    Netlist core = buildBsp430();
    const std::vector<Workload> &apps = workloads();

    AnalysisOptions aopts;
    aopts.threads = 1;
    // The analysis runs lane-batched by default: every checked value
    // except the merge count is lane-width independent (verdicts, cell
    // counts and candidate sets are pinned identical across widths by
    // tests), and the batched exploration is several times faster. The
    // merge count is an execution-strategy observable — how often the
    // explorer revisits a merge point depends on how many lanes arrive
    // together — so the goldens are recorded at this default.
    aopts.laneWidth = io.lanesOr(64);
    aopts.concreteVisits = 1;  // widen aggressively: see header comment

    std::vector<AppRow> rows(apps.size());
    // The per-app jobs are the outer parallelism; --sat-threads sizes
    // the pool too so a SAT-threaded run keeps every worker busy even
    // when --threads is left at 1 (each app's prover then shards its
    // candidates across the same workers it would otherwise idle).
    WorkerPool pool(std::max(io.threads(), io.satThreads()));
    for (size_t a = 0; a < apps.size(); a++) {
        pool.post([&, a] {
            const Workload &app = apps[a];
            AsmProgram prog = app.assembleProgram();
            AnalysisResult ar = analyzeActivity(core, app, aopts);
            AppRow &row = rows[a];
            row.merges = ar.merges;

            PassEnv env = makeEnv(app, prog, io.planeBits());
            env.program = &prog;
            PassPipelineOptions base;
            CutStats cut;
            Netlist base_nl = runTailorPipeline(
                core, ar.activity.get(), base, env, &cut);
            row.cellsBase = base_nl.numCells();

            PassPipelineOptions with_sat = base;
            with_sat.satNeverToggle = true;
            with_sat.sat.depth = kTableDepth;
            with_sat.sat.threads = io.satThreads();
            PipelineReport report;
            auto t0 = std::chrono::steady_clock::now();
            Netlist sat_nl =
                runTailorPipeline(core, ar.activity.get(), with_sat,
                                  env, &cut, &report);
            row.satMs = msSince(t0);
            row.cellsSat = sat_nl.numCells();
            row.candidates = report.satCandidates;
            row.proven = report.satProven;
            row.refuted = report.satRefuted;
            row.unknown = report.satUnknown;
            row.conflicts = report.satConflicts;
            row.propagations = report.satPropagations;
        });
    }
    pool.drain();

    // conflicts/propagations are exact columns: solver work is a pure
    // function of the sharded sessions, identical at any --sat-threads.
    // Only the wall-time column ("sat ms") is machine-dependent.
    Table table({"benchmark", "merges", "candidates", "recovered",
                 "refuted", "unknown", "cells x-only", "cells +sat",
                 "conflicts", "props", "sat ms"});
    size_t apps_recovering = 0;
    for (size_t a = 0; a < apps.size(); a++) {
        const AppRow &row = rows[a];
        if (row.proven > 0)
            apps_recovering++;
        table.row()
            .add(apps[a].name)
            .add(static_cast<double>(row.merges), 0)
            .add(static_cast<double>(row.candidates), 0)
            .add(static_cast<double>(row.proven), 0)
            .add(static_cast<double>(row.refuted), 0)
            .add(static_cast<double>(row.unknown), 0)
            .add(static_cast<double>(row.cellsBase), 0)
            .add(static_cast<double>(row.cellsSat), 0)
            .add(static_cast<double>(row.conflicts), 0)
            .add(static_cast<double>(row.propagations), 0)
            .add(row.satMs, 1);
    }
    io.table("sat_recovery", table,
             "Gates the SAT prover recovers beyond the widened "
             "X-analysis cut (30-cycle envelope, concreteVisits=1).",
             /*volatile_cols=*/{10});
    io.counter("apps_recovering",
               static_cast<double>(apps_recovering));

    if (!io.quick()) {
        // Full-horizon recovery, with both independent equivalence
        // engines re-proving every recovered cut. The symbolic engine
        // runs at DEFAULT precision — the strongest available
        // cross-check of cuts derived from the widened analysis plus
        // SAT; the miter depth is bounded (the solving path of the
        // SAT engine is pinned separately in tests/test_sat_equiv.cc).
        // The subset is the apps whose full analysis horizon stays
        // tractable to unroll and solve in minutes: viterbi and FFT
        // unroll to 12k/80k frames, irq's every-frame-free interrupt
        // envelope refutes candidates one witness at a time past its
        // dispatch latency, and the remaining mid-size apps each cost
        // minutes of pure solving. div is included deliberately even
        // though its full horizon exhausts the per-query conflict
        // budget: the golden pins that budget exhaustion degrades to
        // `unknown` (not cut), never to an unsound promotion.
        struct VRow
        {
            int horizon = 0;
            size_t proven = 0;
            size_t refuted = 0;
            size_t unknown = 0;
            bool symOk = false;
            bool satOk = false;
            uint64_t conflicts = 0;
            uint64_t propagations = 0;
            double satMs = 0.0;
        };
        const std::vector<std::string> verified_apps = {
            "mult", "binSearch", "div", "dbg", "convEn", "tea8"};
        std::vector<VRow> vrows(verified_apps.size());
        WorkerPool vpool(std::max(io.threads(), io.satThreads()));
        for (size_t v = 0; v < verified_apps.size(); v++) {
            vpool.post([&, v] {
                const Workload &app = workloadByName(verified_apps[v]);
                AsmProgram prog = app.assembleProgram();
                // Scalar analysis here, whatever --lanes says: the
                // horizon (cyclesSimulated) is an execution-strategy
                // observable — lane batching can roughly double
                // binSearch's — and this section pins the depth the
                // production flow's default scalar analysis
                // auto-resolves --sat-depth 0 to. The depth-30 table
                // above keeps the lane-batched default; its checked
                // values are horizon-independent.
                AnalysisOptions vaopts = aopts;
                vaopts.laneWidth = 1;
                AnalysisResult ar = analyzeActivity(core, app, vaopts);
                PassEnv env = makeEnv(app, prog, io.planeBits());
                env.program = &prog;
                PassPipelineOptions with_sat;
                with_sat.satNeverToggle = true;
                // The flow's auto depth: the analysis's own envelope.
                with_sat.sat.depth =
                    static_cast<int>(ar.cyclesSimulated);
                with_sat.sat.threads = io.satThreads();
                PipelineReport report;
                CutStats cut;
                auto t0 = std::chrono::steady_clock::now();
                Netlist sat_nl =
                    runTailorPipeline(core, ar.activity.get(),
                                      with_sat, env, &cut, &report);
                double sat_ms = msSince(t0);

                AnalysisOptions vopts;  // default precision
                vopts.threads = 1;
                EquivResult sym = checkSymbolicEquivalence(
                    core, sat_nl, prog, vopts);
                sat::SatEquivOptions seq;
                seq.depth = 16;
                seq.threads = io.satThreads();
                sat::SatEquivResult smt =
                    sat::proveEquivalentSat(core, sat_nl, prog, seq);

                VRow &row = vrows[v];
                row.horizon = with_sat.sat.depth;
                row.proven = report.satProven;
                row.refuted = report.satRefuted;
                row.unknown = report.satUnknown;
                row.conflicts = report.satConflicts;
                row.propagations = report.satPropagations;
                row.satMs = sat_ms;
                row.symOk = sym.equivalent && sym.completed;
                row.satOk =
                    smt.verdict == sat::SatEquivVerdict::Equivalent;
                std::fprintf(stderr,
                             "verified %s: horizon %d, %zu proven, "
                             "sym %d, sat %d\n",
                             verified_apps[v].c_str(), row.horizon,
                             row.proven, (int)row.symOk,
                             (int)row.satOk);
            });
        }
        vpool.drain();

        Table vt({"benchmark", "horizon", "recovered", "refuted",
                  "unknown", "sym equiv", "sat equiv", "conflicts",
                  "props", "sat ms"});
        for (size_t v = 0; v < verified_apps.size(); v++) {
            const VRow &row = vrows[v];
            vt.row()
                .add(verified_apps[v])
                .add(static_cast<double>(row.horizon), 0)
                .add(static_cast<double>(row.proven), 0)
                .add(static_cast<double>(row.refuted), 0)
                .add(static_cast<double>(row.unknown), 0)
                .add(row.symOk ? 1.0 : 0.0, 0)
                .add(row.satOk ? 1.0 : 0.0, 0)
                .add(static_cast<double>(row.conflicts), 0)
                .add(static_cast<double>(row.propagations), 0)
                .add(row.satMs, 1);
        }
        io.table("sat_recovery_verified", vt,
                 "Full-horizon recovery with every recovered cut "
                 "re-proved by both independent equivalence engines.",
                 /*volatile_cols=*/{9});
    }
    return io.finish();
}
