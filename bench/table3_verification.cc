/**
 * @file
 * Table 3 + Section 5.1: verification of bespoke processors.
 *
 * Method 1 (exhaustive): input-independent symbolic co-simulation of
 * the original and bespoke designs, comparing outputs every cycle and
 * data memory at every path end.
 *
 * Method 2 (input-based): coverage-directed input generation (KLEE
 * substitute) and concrete gate-level runs on the bespoke design
 * checked against the ISS oracle; reports line/branch/branch-direction
 * coverage and the fraction of bespoke gates exercised.
 */

#include <chrono>

#include "bench/bench_common.hh"
#include "src/bespoke/equiv_check.hh"
#include "src/bespoke/flow.hh"
#include "src/verify/coverage_gen.hh"
#include "src/verify/runner.hh"

using namespace bespoke;

int
main(int argc, char **argv)
{
    setVerbose(false);
    BenchIO io(argc, argv, "table3_verification");
    bool quick = io.quick();

    banner("Verification runtime and coverage", "Table 3 / Sec. 5.1");

    FlowOptions opts;
    opts.analysis.threads = io.threads();
    opts.analysis.laneWidth = io.lanes();
    opts.analysis.planeBits = io.planeBits();
    opts.checkpointDir = io.checkpointDir();
    opts.checkpointMaxBytes = io.checkpointMaxBytes();
    opts.powerInputsPerWorkload = 1;
    BespokeFlow flow(opts);

    Table table({"benchmark", "X-based sim (s)", "equiv ok",
                 "inputs", "per-input sim (s)", "line %", "br %",
                 "br dir %", "gate %", "outputs ok"});

    for (const Workload &w : workloads()) {
        BespokeDesign d = flow.tailor(w);
        AsmProgram prog = w.assembleProgram();

        // Method 1: symbolic equivalence (X-based simulation).
        auto t0 = std::chrono::steady_clock::now();
        EquivResult eq =
            checkSymbolicEquivalence(flow.baseline(), d.netlist, prog);
        double x_secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();

        // Method 2: input-based simulations with generated inputs.
        CoverageInputs cov = generateCoverageInputs(
            w, quick ? 24 : 128, quick ? 6 : 12);
        ToggleCounter toggles(d.netlist);
        bool outputs_ok = true;
        t0 = std::chrono::steady_clock::now();
        // Gate-level runs batch lane-parallel; every scenario feeds
        // the one shared toggle counter (ingested in input order, so
        // the counts equal the historical sequential loop's). The ISS
        // oracle stays scalar — it is not a gate simulation.
        std::vector<GateScenario> scen(cov.inputs.size());
        for (size_t i = 0; i < cov.inputs.size(); i++)
            scen[i] = {&prog, &cov.inputs[i], &toggles};
        std::vector<GateRun> grs =
            runScenarioGateBatch(d.netlist, w, scen, io.planeBits());
        for (size_t i = 0; i < cov.inputs.size(); i++) {
            IssRun ir = runWorkloadIss(w, cov.inputs[i]);
            RunDiff diff = compareRuns(ir, grs[i], w);
            outputs_ok &= diff.ok;
        }
        double per_input_secs =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count() /
            static_cast<double>(cov.inputs.size());

        // Gate coverage: bespoke cells exercised by the runs.
        size_t exercised = 0, cells = 0;
        for (GateId i = 0; i < d.netlist.size(); i++) {
            if (cellPseudo(d.netlist.gate(i).type))
                continue;
            cells++;
            if (toggles.count(i) > 0)
                exercised++;
        }

        table.row()
            .add(w.name)
            .add(x_secs, 2)
            .add(eq.equivalent && eq.completed ? "yes" : "NO")
            .add(static_cast<long>(cov.inputs.size()))
            .add(per_input_secs, 3)
            .add(cov.linePct, 0)
            .add(cov.branchPct, 0)
            .add(cov.branchDirPct, 0)
            .add(100.0 * static_cast<double>(exercised) /
                     static_cast<double>(cells),
                 0);
        table.add(outputs_ok ? "yes" : "NO");
    }
    // Columns 1 and 4 hold measured wall-clock seconds.
    io.table("verification", table,
             "Two-pronged verification (paper Sec. 5.1). Paper: "
             "X-based runtimes within an order of\nmagnitude of one "
             "input-based simulation; 78% of bespoke gates "
             "exercised on average\n(multiplier-heavy benchmarks "
             "lower).",
             {1, 4});
    return io.finish();
}
