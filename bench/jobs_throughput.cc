/**
 * @file
 * Job-scheduler throughput: jobs/min on a mixed queue.
 *
 * Exercises the serving layer end to end the way `bespoke_io batch`
 * does: a queue of tailor jobs (every paper benchmark) plus one
 * mutant-sweep job, run concurrently on 4 runner threads with analysis
 * workers leased from a shared budget and stage artifacts in a shared
 * checkpoint store. The queue runs twice against the same store —
 * cold (every stage computed) and warm (every flow stage a checkpoint
 * hit) — which is the dedup path repeated and resumed batches take.
 *
 * Deterministic results (per-job ok + payload summaries, and
 * warm == cold payload equality) are pinned by the golden baselines;
 * throughput (jobs/min, wall seconds, warm hit counts) is recorded as
 * counters/volatile columns, never diffed.
 */

#include <unistd.h>

#include <filesystem>

#include "bench/bench_common.hh"
#include "src/service/job_scheduler.hh"

using namespace bespoke;

namespace
{

/** One queue of specs: every selected workload tailored + one sweep. */
std::vector<JobSpec>
buildQueue(bool quick)
{
    std::vector<JobSpec> queue;
    size_t limit = quick ? 6 : workloads().size();
    size_t n = 0;
    for (const Workload &w : workloads()) {
        if (n++ == limit)
            break;
        JobSpec spec;
        spec.id = "tailor-" + w.name;
        spec.kind = "tailor";
        spec.apps = {w.name};
        queue.push_back(std::move(spec));
    }
    JobSpec sweep;
    sweep.id = "sweep-mult";
    sweep.kind = "mutant_sweep";
    sweep.apps = {"mult"};
    sweep.maxMutants = quick ? 6 : 24;
    sweep.inputsPerMutant = 2;
    queue.push_back(std::move(sweep));
    return queue;
}

std::vector<JobResult>
runQueue(const std::vector<JobSpec> &queue, const std::string &dir,
         int worker_threads, double *seconds)
{
    SchedulerOptions sopts;
    sopts.jobThreads = 4;
    sopts.workerThreads = worker_threads;
    sopts.checkpointDir = dir;
    sopts.flow.powerInputsPerWorkload = 1;
    JobScheduler sched(std::move(sopts));
    auto t0 = std::chrono::steady_clock::now();
    for (const JobSpec &spec : queue)
        sched.submit(spec);
    std::vector<JobResult> results = sched.finish();
    *seconds = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
    return results;
}

/** Deterministic one-cell summary of a job's payload. */
std::string
resultCell(const JobResult &r)
{
    if (!r.ok)
        return "error: " + r.error;
    if (r.kind == "mutant_sweep") {
        const JsonValue *d = r.payload.find("detected");
        const JsonValue *m = r.payload.find("mutants");
        return formatFixed(d->asNumber(), 0) + "/" +
               formatFixed(m->asNumber(), 0) + " detected";
    }
    const JsonValue *g = r.payload.find("gates_after");
    const JsonValue *p = r.payload.find("power_vmin_uw");
    return formatFixed(g->asNumber(), 0) + " gates, " +
           formatFixed(p->asNumber(), 2) + " uW";
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    BenchIO io(argc, argv, "jobs_throughput");
    banner("Tailoring job scheduler throughput",
           "the Fig. 5 flow as a service");

    std::string dir = std::filesystem::temp_directory_path() /
                      ("bespoke_jobs_throughput_" +
                       std::to_string(static_cast<long>(getpid())));
    std::filesystem::remove_all(dir);

    std::vector<JobSpec> queue = buildQueue(io.quick());
    double cold_secs = 0.0, warm_secs = 0.0;
    std::vector<JobResult> cold =
        runQueue(queue, dir, io.threads(), &cold_secs);
    std::vector<JobResult> warm =
        runQueue(queue, dir, io.threads(), &warm_secs);
    std::filesystem::remove_all(dir);

    Table table({"job", "kind", "ok", "result", "cold (s)",
                 "warm (s)"});
    size_t ok_count = 0;
    size_t warm_matches = 0;
    size_t warm_hits = 0;
    for (size_t i = 0; i < cold.size(); i++) {
        const JobResult &r = cold[i];
        ok_count += r.ok;
        warm_matches += warm[i].deterministicJson().dump() ==
                        r.deterministicJson().dump();
        warm_hits += warm[i].checkpointHits;
        table.row()
            .add(r.id)
            .add(r.kind)
            .add(r.ok ? "yes" : "no")
            .add(resultCell(r))
            .add(r.seconds, 3)
            .add(warm[i].seconds, 3);
    }
    // Wall-clock columns are machine speed, not results.
    io.table("jobs", table, "Mixed job queue (cold vs warm store)",
             {4, 5});

    io.metric("jobs_total", static_cast<double>(cold.size()));
    io.metric("jobs_ok", static_cast<double>(ok_count));
    // Warm results must be bit-identical to cold ones: same payloads,
    // recomputed nothing (pinned exactly — a dedup regression flips it).
    io.metric("warm_matches_cold", static_cast<double>(warm_matches));

    io.counter("cold_seconds", cold_secs);
    io.counter("warm_seconds", warm_secs);
    io.counter("jobs_per_min_cold", 60.0 * cold.size() / cold_secs);
    io.counter("jobs_per_min_warm", 60.0 * warm.size() / warm_secs);
    io.counter("warm_checkpoint_hits",
               static_cast<double>(warm_hits));

    std::printf("\ncold: %.2fs (%.1f jobs/min)   warm: %.2fs "
                "(%.1f jobs/min)\n",
                cold_secs, 60.0 * cold.size() / cold_secs, warm_secs,
                60.0 * warm.size() / warm_secs);
    return io.finish();
}
