/**
 * @file
 * Extension experiment (beyond the paper's tables): the more
 * over-provisioned the general-purpose IP, the more a bespoke design
 * saves. We compare tailoring the same applications on the default
 * core vs. the extended core (adds a Timer_A-style timer and a UART
 * transmitter): for apps that use neither peripheral the bespoke
 * design is essentially unchanged while the baseline grew, so savings
 * rise — the paper's core argument, made quantitative on our own IP.
 */

#include "bench/bench_common.hh"
#include "src/analysis/activity_analysis.hh"
#include "src/cpu/bsp430.hh"
#include "src/timing/sta.hh"
#include "src/transform/bespoke_transform.hh"

using namespace bespoke;

namespace
{

struct CoreCtx
{
    Netlist netlist;
    explicit CoreCtx(const CpuConfig &cfg)
        : netlist(buildBsp430(nullptr, cfg))
    {
        sizeForLoads(netlist);
    }
};

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    BenchIO io(argc, argv, "ext_core_overprovisioning");
    bool quick = io.quick();

    banner("Bespoke savings grow with IP over-provisioning",
           "extension of Sec. 2's argument");

    CoreCtx base(CpuConfig{});
    CoreCtx ext(CpuConfig::extended());
    std::printf("default core: %zu cells; extended core (+timer, "
                "+uart): %zu cells\n\n",
                base.netlist.numCells(), ext.netlist.numCells());
    io.metric("default_core_cells",
              static_cast<double>(base.netlist.numCells()));
    io.metric("extended_core_cells",
              static_cast<double>(ext.netlist.numCells()));

    Table table({"benchmark", "bespoke cells (default core)",
                 "savings %", "bespoke cells (extended core)",
                 "savings %"});

    std::vector<std::string> names = {"binSearch", "div", "intFilt",
                                      "tea8", "convEn", "dbg"};
    if (quick)
        names.resize(2);
    AnalysisOptions aopts;
    aopts.threads = io.threads();
    for (const std::string &name : names) {
        const Workload &w = workloadByName(name);
        AnalysisResult rb = analyzeActivity(base.netlist, w, aopts);
        AnalysisResult re = analyzeActivity(ext.netlist, w, aopts);
        Netlist db = cutAndStitch(base.netlist, *rb.activity);
        Netlist de = cutAndStitch(ext.netlist, *re.activity);
        table.row()
            .add(w.name)
            .add(static_cast<long>(db.numCells()))
            .add(savingsPct(
                     static_cast<double>(base.netlist.numCells()),
                     static_cast<double>(db.numCells())),
                 1)
            .add(static_cast<long>(de.numCells()))
            .add(savingsPct(
                     static_cast<double>(ext.netlist.numCells()),
                     static_cast<double>(de.numCells())),
                 1);
    }

    // The peripheral-using apps, for contrast.
    for (const char *name : {"uartTx", "timerTick"}) {
        const Workload &w = workloadByName(name);
        AnalysisResult re = analyzeActivity(ext.netlist, w, aopts);
        Netlist de = cutAndStitch(ext.netlist, *re.activity);
        table.row()
            .add(w.name)
            .add("-")
            .add("-")
            .add(static_cast<long>(de.numCells()))
            .add(savingsPct(
                     static_cast<double>(ext.netlist.numCells()),
                     static_cast<double>(de.numCells())),
                 1);
    }
    io.table("overprovisioning", table,
             "Tailored gate counts on both cores. Unused "
             "peripherals are stripped entirely\n(the bespoke "
             "design is nearly identical on both cores), so the "
             "richer the IP, the\nlarger the relative savings.");
    return io.finish();
}
