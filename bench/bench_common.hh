/**
 * @file
 * Shared helpers for the per-figure/table benchmark harnesses. Each
 * binary regenerates one table or figure of the paper (see DESIGN.md's
 * per-experiment index) and prints the corresponding rows/series.
 *
 * Pass --quick (or set BESPOKE_QUICK=1) to trade coverage for speed
 * (fewer inputs/samples); the default settings regenerate the full
 * experiment.
 */

#ifndef BESPOKE_BENCH_BENCH_COMMON_HH
#define BESPOKE_BENCH_BENCH_COMMON_HH

#include <cstdlib>
#include <cstring>
#include <string>

#include "src/util/logging.hh"
#include "src/util/table.hh"
#include "src/workloads/workload.hh"

namespace bespoke
{

/** True if --quick was passed or BESPOKE_QUICK is set. */
inline bool
quickMode(int argc, char **argv)
{
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--quick") == 0)
            return true;
    }
    const char *env = std::getenv("BESPOKE_QUICK");
    return env && env[0] == '1';
}

/** Percentage reduction of `value` relative to `base`. */
inline double
savingsPct(double base, double value)
{
    return 100.0 * (base - value) / base;
}

/** Standard banner so bench output is self-describing. */
inline void
banner(const std::string &what, const std::string &paper_ref)
{
    std::printf("==============================================================\n");
    std::printf("%s\n", what.c_str());
    std::printf("(reproduces %s of 'Bespoke Processors', ISCA 2017)\n",
                paper_ref.c_str());
    std::printf("==============================================================\n");
}

} // namespace bespoke

#endif // BESPOKE_BENCH_BENCH_COMMON_HH
