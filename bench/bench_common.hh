/**
 * @file
 * Shared helpers for the per-figure/table benchmark harnesses. Each
 * binary regenerates one table or figure of the paper (see DESIGN.md's
 * per-experiment index) and prints the corresponding rows/series.
 *
 * Flags (also see EXPERIMENTS.md "Golden baselines"):
 *   --quick          fewer inputs/samples (or set BESPOKE_QUICK=1)
 *   --json PATH      also write results as machine-readable JSON
 *   --check [PATH]   diff results against a golden baseline JSON and
 *                    exit nonzero on mismatch; without PATH the file is
 *                    $BESPOKE_BASELINE_DIR/<bench>.<mode>.json
 *   --threads N      analysis/sweep worker threads (0 = all cores;
 *                    default 1). Table values are thread-count
 *                    independent, so baselines recorded at --threads 1
 *                    stay valid.
 *   --sat-threads N  SAT prover worker threads (candidate shards and
 *                    portfolio races; 0 = all cores, default 1).
 *                    Verdicts are bit-identical at any value — only
 *                    wall time moves.
 *   --lanes N        LaneSim batch width for the activity analysis
 *                    (1..64, default 1 = scalar). Like --threads, the
 *                    table values are lane-width independent.
 *   --plane-bits W   bit-plane word width for lane-batched replays
 *                    (64/128/256/512; default 0 = resolvePlaneBits,
 *                    i.e. BESPOKE_PLANE_BITS or 64). Execution
 *                    strategy only — table values are identical at
 *                    every width.
 *   --checkpoint-dir DIR  persist flow stage artifacts in DIR and
 *                    reuse them on later runs (content-hashed keys;
 *                    see src/bespoke/checkpoint.hh). Results are
 *                    identical with or without it.
 *   --checkpoint-max-bytes N  cap the checkpoint store at N bytes;
 *                    each save evicts least-recently-used artifacts
 *                    until it fits (0 = no cap, the default).
 *
 * Table values are compared exactly (they are deterministic); wall
 * clock is compared against a tolerance band (current must stay below
 * BESPOKE_BENCH_WALL_TOL x baseline, default 5x, 0 disables) so a
 * gross simulator perf regression fails CI without machine-speed
 * flakiness. Columns registered as volatile (e.g. measured seconds
 * inside a table) are recorded in the JSON but excluded from the diff.
 */

#ifndef BESPOKE_BENCH_BENCH_COMMON_HH
#define BESPOKE_BENCH_BENCH_COMMON_HH

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/util/json.hh"
#include "src/util/logging.hh"
#include "src/util/table.hh"
#include "src/workloads/workload.hh"

namespace bespoke
{

/** True if --quick was passed or BESPOKE_QUICK is set. */
inline bool
quickMode(int argc, char **argv)
{
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--quick") == 0)
            return true;
    }
    const char *env = std::getenv("BESPOKE_QUICK");
    return env && env[0] == '1';
}

/** Percentage reduction of `value` relative to `base`. */
inline double
savingsPct(double base, double value)
{
    return 100.0 * (base - value) / base;
}

/** Standard banner so bench output is self-describing. */
inline void
banner(const std::string &what, const std::string &paper_ref)
{
    std::printf("==============================================================\n");
    std::printf("%s\n", what.c_str());
    std::printf("(reproduces %s of 'Bespoke Processors', ISCA 2017)\n",
                paper_ref.c_str());
    std::printf("==============================================================\n");
}

/**
 * Per-binary result recorder: prints tables as before, collects them
 * (plus scalar metrics and wall clock) into a JSON document, and in
 * --check mode diffs the document against a committed golden baseline.
 */
class BenchIO
{
  public:
    BenchIO(int argc, char **argv, std::string name)
        : name_(std::move(name)), quick_(quickMode(argc, argv)),
          start_(std::chrono::steady_clock::now())
    {
        for (int i = 1; i < argc; i++) {
            std::string arg = argv[i];
            auto take_path = [&](const char *flag,
                                 std::string &dst) -> bool {
                std::string eq = std::string(flag) + "=";
                if (arg.rfind(eq, 0) == 0) {
                    dst = arg.substr(eq.size());
                    return true;
                }
                if (arg != flag)
                    return false;
                if (i + 1 < argc && argv[i + 1][0] != '-')
                    dst = argv[++i];
                else
                    dst = kAutoPath;
                return true;
            };
            if (arg == "--quick")
                continue;
            if (take_path("--json", jsonPath_)) {
                if (jsonPath_ == kAutoPath)
                    die("--json requires a path");
                continue;
            }
            if (take_path("--check", checkPath_)) {
                checkMode_ = true;
                continue;
            }
            std::string tval;
            if (take_path("--threads", tval)) {
                char *end = nullptr;
                long v = tval == kAutoPath
                             ? -1
                             : std::strtol(tval.c_str(), &end, 10);
                if (v < 0 || (end && *end != '\0'))
                    die("--threads needs a non-negative integer");
                threads_ = static_cast<int>(v);
                continue;
            }
            std::string sval;
            if (take_path("--sat-threads", sval)) {
                char *end = nullptr;
                long v = sval == kAutoPath
                             ? -1
                             : std::strtol(sval.c_str(), &end, 10);
                if (v < 0 || (end && *end != '\0'))
                    die("--sat-threads needs a non-negative integer");
                satThreads_ = static_cast<int>(v);
                continue;
            }
            std::string lval;
            if (take_path("--lanes", lval)) {
                char *end = nullptr;
                long v = lval == kAutoPath
                             ? -1
                             : std::strtol(lval.c_str(), &end, 10);
                if (v < 1 || v > 64 || (end && *end != '\0'))
                    die("--lanes needs an integer in [1, 64]");
                lanes_ = static_cast<int>(v);
                lanesSet_ = true;
                continue;
            }
            std::string pval;
            if (take_path("--plane-bits", pval)) {
                char *end = nullptr;
                long v = pval == kAutoPath
                             ? -1
                             : std::strtol(pval.c_str(), &end, 10);
                if ((end && *end != '\0') ||
                    (v != 64 && v != 128 && v != 256 && v != 512))
                    die("--plane-bits needs 64, 128, 256, or 512");
                planeBits_ = static_cast<int>(v);
                continue;
            }
            if (take_path("--checkpoint-dir", checkpointDir_)) {
                if (checkpointDir_ == kAutoPath)
                    die("--checkpoint-dir requires a path");
                continue;
            }
            std::string cval;
            if (take_path("--checkpoint-max-bytes", cval)) {
                char *end = nullptr;
                long long v =
                    cval == kAutoPath
                        ? -1
                        : std::strtoll(cval.c_str(), &end, 10);
                if (v < 0 || (end && *end != '\0'))
                    die("--checkpoint-max-bytes needs a non-negative "
                        "integer");
                checkpointMaxBytes_ = static_cast<uint64_t>(v);
                continue;
            }
            die("unknown bench flag '" + arg +
                "' (expected --quick, --json PATH, --check [PATH], "
                "--threads N, --sat-threads N, --lanes N, "
                "--plane-bits W, --checkpoint-dir DIR, "
                "--checkpoint-max-bytes N)");
        }
        if (checkMode_ && checkPath_ == kAutoPath) {
            const char *dir = std::getenv("BESPOKE_BASELINE_DIR");
            if (!dir) {
                die("--check without a path needs "
                    "BESPOKE_BASELINE_DIR to be set");
            }
            checkPath_ = std::string(dir) + "/" + name_ + "." + mode() +
                         ".json";
        }
    }

    bool quick() const { return quick_; }
    const std::string &name() const { return name_; }
    /** --threads value for AnalysisOptions::threads (default 1). */
    int threads() const { return threads_; }
    /** --sat-threads value for the SAT prover layer (default 1). */
    int satThreads() const { return satThreads_; }
    /** --lanes value for AnalysisOptions::laneWidth (default 1). */
    int lanes() const { return lanes_; }
    /**
     * --lanes if given explicitly, else a bench-chosen default. For a
     * bench whose checked values are lane-width independent this picks
     * the fast batched analysis path by default while keeping --lanes 1
     * reachable for A/B runs.
     */
    int lanesOr(int def) const { return lanesSet_ ? lanes_ : def; }
    /** --plane-bits value for batched replays (0 = resolve default). */
    int planeBits() const { return planeBits_; }
    /** --checkpoint-dir value for FlowOptions::checkpointDir ("" off). */
    const std::string &checkpointDir() const { return checkpointDir_; }
    /** --checkpoint-max-bytes for FlowOptions::checkpointMaxBytes. */
    uint64_t checkpointMaxBytes() const { return checkpointMaxBytes_; }

    /**
     * Print a table and record it under `key`. Columns listed in
     * `volatile_cols` (0-based) hold machine-dependent measurements;
     * they are emitted to JSON but skipped by --check.
     */
    void
    table(const std::string &key, const Table &t,
          const std::string &title = "",
          std::vector<int> volatile_cols = {})
    {
        t.print(title);
        JsonValue jt = JsonValue::object();
        JsonValue headers = JsonValue::array();
        for (const std::string &h : t.headers())
            headers.push(JsonValue::str(h));
        jt.set("headers", std::move(headers));
        JsonValue rows = JsonValue::array();
        for (const auto &row : t.rows()) {
            JsonValue jr = JsonValue::array();
            for (const std::string &cell : row)
                jr.push(JsonValue::str(cell));
            rows.push(std::move(jr));
        }
        jt.set("rows", std::move(rows));
        if (!volatile_cols.empty()) {
            JsonValue vc = JsonValue::array();
            for (int c : volatile_cols)
                vc.push(JsonValue::number(c));
            jt.set("volatile_cols", std::move(vc));
        }
        bespoke_assert(!tables_.find(key), "duplicate bench table key ",
                       key);
        tables_.set(key, std::move(jt));
        volatileCols_.emplace_back(key, std::move(volatile_cols));
    }

    /** Record a scalar result compared exactly by --check. */
    void
    metric(const std::string &key, double value)
    {
        metrics_.set(key, JsonValue::number(value));
    }

    /**
     * Record an informational counter (work done, not results
     * computed: gate evaluations, lane utilization, ...). Counters go
     * to the JSON document but are never compared by --check — they
     * legitimately vary with --threads/--lanes while every table and
     * metric stays identical.
     */
    void
    counter(const std::string &key, double value)
    {
        counters_.set(key, JsonValue::number(value));
    }

    /**
     * Write JSON / run the baseline diff as requested; returns the
     * process exit code (0 ok, 1 baseline mismatch).
     */
    int
    finish()
    {
        double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
        JsonValue doc = JsonValue::object();
        doc.set("bench", JsonValue::str(name_));
        doc.set("mode", JsonValue::str(mode()));
        doc.set("wall_seconds", JsonValue::number(wall));
        doc.set("tables", std::move(tables_));
        doc.set("metrics", std::move(metrics_));
        doc.set("counters", std::move(counters_));

        if (!jsonPath_.empty()) {
            std::ofstream os(jsonPath_);
            if (!os)
                die("cannot write " + jsonPath_);
            os << doc.dump(2);
        }
        if (!checkMode_)
            return 0;
        return check(doc) ? 0 : 1;
    }

  private:
    static constexpr const char *kAutoPath = "\x01auto";

    [[noreturn]] static void
    die(const std::string &msg)
    {
        std::fprintf(stderr, "bench: %s\n", msg.c_str());
        std::exit(2);
    }

    std::string mode() const { return quick_ ? "quick" : "full"; }

    void
    mismatch(const std::string &what)
    {
        std::fprintf(stderr, "BASELINE MISMATCH [%s]: %s\n",
                     name_.c_str(), what.c_str());
        ok_ = false;
    }

    bool
    checkTable(const std::string &key, const JsonValue &cur,
               const JsonValue &base)
    {
        std::set<int> vol;
        for (const auto &[k, cols] : volatileCols_) {
            if (k == key) {
                vol.insert(cols.begin(), cols.end());
                break;
            }
        }
        const JsonValue *ch = cur.find("headers");
        const JsonValue *bh = base.find("headers");
        if (!bh || bh->dump() != ch->dump()) {
            mismatch("table '" + key + "' headers differ");
            return false;
        }
        const JsonValue *cr = cur.find("rows");
        const JsonValue *br = base.find("rows");
        if (!br || br->items().size() != cr->items().size()) {
            mismatch("table '" + key + "': baseline has " +
                     std::to_string(br ? br->items().size() : 0) +
                     " rows, current run has " +
                     std::to_string(cr->items().size()));
            return false;
        }
        bool table_ok = true;
        for (size_t r = 0; r < cr->items().size(); r++) {
            const auto &crow = cr->items()[r].items();
            const auto &brow = br->items()[r].items();
            size_t ncols = std::max(crow.size(), brow.size());
            for (size_t c = 0; c < ncols; c++) {
                if (vol.count(static_cast<int>(c)))
                    continue;
                std::string cv =
                    c < crow.size() ? crow[c].asString() : "<missing>";
                std::string bv =
                    c < brow.size() ? brow[c].asString() : "<missing>";
                if (cv == bv)
                    continue;
                std::string col =
                    c < ch->items().size() ? ch->items()[c].asString()
                                           : std::to_string(c);
                mismatch("table '" + key + "' row " + std::to_string(r) +
                         " col '" + col + "': baseline='" + bv +
                         "' current='" + cv + "'");
                table_ok = false;
            }
        }
        return table_ok;
    }

    bool
    check(const JsonValue &doc)
    {
        std::ifstream is(checkPath_);
        if (!is) {
            die("baseline file '" + checkPath_ +
                "' not found; regenerate it with --json (see "
                "EXPERIMENTS.md)");
        }
        std::stringstream buf;
        buf << is.rdbuf();
        JsonValue base;
        std::string err;
        if (!JsonValue::parse(buf.str(), base, err))
            die("cannot parse baseline " + checkPath_ + ": " + err);

        auto base_str = [&](const char *key) -> std::string {
            const JsonValue *v = base.find(key);
            return v && v->isString() ? v->asString() : "";
        };
        if (base_str("bench") != name_)
            mismatch("baseline is for bench '" + base_str("bench") + "'");
        if (base_str("mode") != mode()) {
            mismatch("baseline was recorded in '" + base_str("mode") +
                     "' mode but this run is '" + mode() +
                     "' (pass/drop --quick to match)");
        }

        const JsonValue *btabs = base.find("tables");
        const JsonValue *ctabs = doc.find("tables");
        for (const auto &[key, cur] : ctabs->members()) {
            const JsonValue *b = btabs ? btabs->find(key) : nullptr;
            if (!b) {
                mismatch("table '" + key + "' missing from baseline");
                continue;
            }
            checkTable(key, cur, *b);
        }
        if (btabs) {
            for (const auto &[key, unused] : btabs->members()) {
                (void)unused;
                if (!ctabs->find(key))
                    mismatch("baseline table '" + key +
                             "' not produced by this run");
            }
        }

        const JsonValue *bmet = base.find("metrics");
        const JsonValue *cmet = doc.find("metrics");
        for (const auto &[key, cur] : cmet->members()) {
            const JsonValue *b = bmet ? bmet->find(key) : nullptr;
            if (!b) {
                mismatch("metric '" + key + "' missing from baseline");
            } else if (b->asNumber() != cur.asNumber()) {
                mismatch("metric '" + key + "': baseline=" +
                         std::to_string(b->asNumber()) + " current=" +
                         std::to_string(cur.asNumber()));
            }
        }

        double tol = 5.0;
        if (const char *env = std::getenv("BESPOKE_BENCH_WALL_TOL"))
            tol = std::strtod(env, nullptr);
        const JsonValue *bwall = base.find("wall_seconds");
        double cwall = doc.find("wall_seconds")->asNumber();
        if (tol > 0 && bwall && bwall->isNumber()) {
            // Floor tiny baselines so scheduler noise cannot trip the
            // band on sub-100ms benches.
            double limit = std::max(bwall->asNumber(), 0.1) * tol;
            if (cwall > limit) {
                mismatch("wall clock " + formatFixed(cwall, 2) +
                         "s exceeds tolerance band " +
                         formatFixed(limit, 2) + "s (baseline " +
                         formatFixed(bwall->asNumber(), 2) + "s x " +
                         formatFixed(tol, 1) + ")");
            }
        }

        if (ok_) {
            std::printf("\nbaseline check OK against %s "
                        "(wall %.2fs)\n", checkPath_.c_str(), cwall);
        }
        return ok_;
    }

    std::string name_;
    bool quick_;
    int threads_ = 1;
    int satThreads_ = 1;
    bool checkMode_ = false;
    bool ok_ = true;
    std::string jsonPath_, checkPath_, checkpointDir_;
    uint64_t checkpointMaxBytes_ = 0;
    int lanes_ = 1;
    bool lanesSet_ = false;
    int planeBits_ = 0;
    JsonValue tables_ = JsonValue::object();
    JsonValue metrics_ = JsonValue::object();
    JsonValue counters_ = JsonValue::object();
    std::vector<std::pair<std::string, std::vector<int>>> volatileCols_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace bespoke

#endif // BESPOKE_BENCH_BENCH_COMMON_HH
