/**
 * @file
 * Figure 11: reduction in gate count, area, and power of each bespoke
 * processor relative to the baseline general-purpose core. The paper
 * reports area savings of 46-92% (62% average) and power savings of
 * 37-74% (50% average).
 */

#include "bench/bench_common.hh"
#include "src/bespoke/flow.hh"

using namespace bespoke;

int
main(int argc, char **argv)
{
    setVerbose(false);
    BenchIO io(argc, argv, "fig11_savings");

    banner("Bespoke gate/area/power savings vs. baseline core",
           "Figure 11");

    FlowOptions opts;
    opts.analysis.threads = io.threads();
    opts.analysis.laneWidth = io.lanes();
    opts.analysis.planeBits = io.planeBits();
    opts.planeBits = io.planeBits();
    opts.checkpointDir = io.checkpointDir();
    opts.checkpointMaxBytes = io.checkpointMaxBytes();
    if (io.quick())
        opts.powerInputsPerWorkload = 1;
    BespokeFlow flow(opts);

    Table table({"benchmark", "gate savings %", "area savings %",
                 "power savings %", "gates", "area um2", "power uW"});
    double sum_gate = 0, sum_area = 0, sum_power = 0;
    int n = 0;

    for (const Workload &w : workloads()) {
        DesignMetrics base = flow.measureBaseline({&w});
        BespokeDesign d = flow.tailor(w);
        double gs = savingsPct(static_cast<double>(base.gates),
                               static_cast<double>(d.metrics.gates));
        double as = savingsPct(base.areaUm2, d.metrics.areaUm2);
        double ps = savingsPct(base.powerNominal.totalUW(),
                               d.metrics.powerNominal.totalUW());
        table.row()
            .add(w.name)
            .add(gs, 1)
            .add(as, 1)
            .add(ps, 1)
            .add(static_cast<long>(d.metrics.gates))
            .add(d.metrics.areaUm2, 0)
            .add(d.metrics.powerNominal.totalUW(), 1);
        sum_gate += gs;
        sum_area += as;
        sum_power += ps;
        n++;
    }
    table.row()
        .add("AVERAGE")
        .add(sum_gate / n, 1)
        .add(sum_area / n, 1)
        .add(sum_power / n, 1)
        .add("")
        .add("")
        .add("");
    io.table("savings", table,
             "Savings relative to the baseline bsp430 core "
             "(paper: area 46-92%, avg 62%; power 37-74%, avg "
             "50%).");
    return io.finish();
}
