/**
 * @file
 * Ablation studies of this implementation's own design choices (called
 * out in DESIGN.md):
 *
 *  1. `concreteVisits` — how long the analysis explores concretely
 *     before conservative widening begins. Trades analysis runtime
 *     against precision (more untoggled gates found). The paper's
 *     multi-hour analyses sit at the high-precision end.
 *
 *  2. Re-synthesis after cutting — the paper notes that cutting alone
 *     is not enough: constant propagation and dead-logic sweeping
 *     after cutting remove substantially more gates.
 *
 *  3. Load-based drive re-sizing after cutting — the paper's
 *     "replace faster cells with smaller, lower power versions".
 */

#include "bench/bench_common.hh"
#include "src/analysis/activity_analysis.hh"
#include "src/bespoke/flow.hh"
#include "src/cpu/bsp430.hh"
#include "src/transform/rewrite.hh"

using namespace bespoke;

int
main(int argc, char **argv)
{
    setVerbose(false);
    BenchIO io(argc, argv, "ablation_analysis");
    bool quick = io.quick();

    banner("Ablations of the reproduction's design choices",
           "methodology (DESIGN.md)");

    Netlist baseline = buildBsp430();
    sizeForLoads(baseline);
    double total = static_cast<double>(baseline.numCells());

    // ------------------------------------------------------ ablation 1
    {
        Table t({"benchmark", "concreteVisits", "untoggled %",
                 "cycles simulated", "paths", "runtime (s)"});
        std::vector<const char *> names =
            quick ? std::vector<const char *>{"div", "rle"}
                  : std::vector<const char *>{"div", "rle", "inSort",
                                              "tHold"};
        for (const char *name : names) {
            const Workload &w = workloadByName(name);
            for (int visits : {4, 16, 64, 256}) {
                AnalysisOptions opts;
                opts.threads = io.threads();
                opts.concreteVisits = visits;
                AnalysisResult r =
                    analyzeActivity(baseline, w, opts);
                t.row()
                    .add(w.name)
                    .add(visits)
                    .add(100.0 *
                             static_cast<double>(r.untoggledCells()) /
                             total,
                         1)
                    .add(static_cast<long>(r.cyclesSimulated))
                    .add(static_cast<long>(r.pathsExplored))
                    .add(r.seconds, 2);
            }
        }
        // Column 5 is measured runtime.
        io.table("concrete_visits", t,
                 "Ablation 1: concrete-exploration budget before "
                 "widening. More budget = more\nproven-constant gates "
                 "(never fewer), at higher analysis cost.",
                 {5});
    }

    // ------------------------------------------------ ablations 2 & 3
    {
        Table t({"benchmark", "cells: cut only", "+ resynthesis",
                 "resynth extra %", "power: no resize uW",
                 "+ resize uW"});
        FlowOptions fopts;
        fopts.analysis.threads = io.threads();
        fopts.powerInputsPerWorkload = 1;
        BespokeFlow flow(fopts);
        std::vector<const char *> names =
            quick ? std::vector<const char *>{"binSearch"}
                  : std::vector<const char *>{"binSearch", "intFilt",
                                              "tea8", "dbg"};
        for (const char *name : names) {
            const Workload &w = workloadByName(name);
            AnalysisResult r = flow.analyze(w);

            // Cut WITHOUT re-synthesis: constants tied, nothing else.
            Rewriter rw(flow.baseline());
            for (GateId i = 0; i < flow.baseline().size(); i++) {
                const Gate &g = flow.baseline().gate(i);
                if (cellPseudo(g.type) || g.type == CellType::TIE0 ||
                    g.type == CellType::TIE1) {
                    continue;
                }
                if (!r.activity->toggled(i)) {
                    rw.makeConstant(i, r.activity->initialValue(i) ==
                                           Logic::One);
                }
            }
            Netlist cut_only = rw.compact().netlist;

            // Full pipeline, with and without the re-sizing pass.
            BespokeDesign full = flow.tailor(w);
            Netlist no_resize =
                cutAndStitch(flow.baseline(), *r.activity);
            // (drive strengths inherited from the sized baseline)
            DesignMetrics m_no_resize =
                flow.measure(no_resize, {&w});

            double extra =
                100.0 *
                (static_cast<double>(cut_only.numCells()) -
                 static_cast<double>(full.metrics.gates)) /
                static_cast<double>(cut_only.numCells());
            t.row()
                .add(w.name)
                .add(static_cast<long>(cut_only.numCells()))
                .add(static_cast<long>(full.metrics.gates))
                .add(extra, 1)
                .add(m_no_resize.powerNominal.totalUW(), 1)
                .add(full.metrics.powerNominal.totalUW(), 1);
        }
        io.table("resynth_resize", t,
                 "Ablations 2-3: re-synthesis removes additional gates "
                 "beyond the direct cut\n(floating outputs, constant "
                 "cones); re-sizing after cutting recovers the power\n"
                 "the baseline spent driving now-removed fanout.");
    }
    return io.finish();
}
