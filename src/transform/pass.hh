/**
 * @file
 * Transform pass framework: the interface every netlist transform pass
 * implements plus the shared analysis context passes draw from.
 *
 * A pass expresses its effect as Rewriter marks against the pipeline's
 * current working netlist; the pipeline owns compaction, dead sweeping,
 * and analysis invalidation between passes. Passes that must *grow* the
 * netlist first (e.g. the datapath rewrite search, which appends a
 * rebuilt block and then aliases the old block's outputs onto it) do so
 * in prepare(), which runs before the pipeline constructs the Rewriter.
 *
 * PassContext carries the expensive shared analyses — measured toggle
 * activity and the per-gate arrival/required/slack query — computed
 * lazily on first use and dropped whenever the netlist changes, so a
 * pipeline of passes that never ask for timing never pays for it.
 */

#ifndef BESPOKE_TRANSFORM_PASS_HH
#define BESPOKE_TRANSFORM_PASS_HH

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/power/power_model.hh"
#include "src/sim/gate_sim.hh"
#include "src/timing/sta.hh"
#include "src/transform/rewrite.hh"

namespace bespoke
{

struct AsmProgram;

/**
 * Everything the caller supplies to a pass pipeline: model parameters,
 * the clock budget, and replay callbacks for activity measurement. All
 * members are optional; passes that need an absent provider are
 * skipped (reported as zero-change).
 */
struct PassEnv
{
    /** Timing model; null = library defaults. */
    const TimingParams *timing = nullptr;
    /** Power model; null = library defaults. */
    const PowerParams *power = nullptr;
    /** Program image, for passes that reason about the full SoC (the
     *  SAT never-toggle prover); null = those passes are skipped. */
    const AsmProgram *program = nullptr;
    /**
     * Clock period budget (ps) for timing-aware passes. 0 = derive
     * from the working netlist's own critical path with the flow's
     * 2% margin.
     */
    double clockPeriodPs = 0.0;
    /**
     * Replay the representative workloads on `nl`, accumulating toggle
     * counts into `tc` (constructed for `nl` by the context). The
     * rewrite search scores candidates with these activities.
     */
    std::function<void(const Netlist &nl, ToggleCounter *tc)>
        measureActivity;
    /**
     * Count, for each gate in `ids`, the number of replay cycles in
     * which its value was 1 or X (X counts as high: a net that may be
     * high cannot justify gating). Writes the total observed cycle
     * count to *cycles. Used for clock-gating enable duty.
     */
    std::function<void(const Netlist &nl, const std::vector<GateId> &ids,
                       std::vector<uint64_t> *high, uint64_t *cycles)>
        measureDuty;
};

/**
 * Lazily-computed shared analyses over the pipeline's current netlist.
 * bind() points the context at a (new) working netlist and drops every
 * cached analysis; activity() and timingQuery() compute on first use.
 */
class PassContext
{
  public:
    explicit PassContext(const PassEnv &env) : env_(env) {}

    /** Rebind to the current working netlist, invalidating caches. */
    void bind(const Netlist &nl);
    /** Drop cached analyses (netlist contents changed in place). */
    void invalidate();

    const PassEnv &env() const { return env_; }
    const Netlist &netlist() const;
    const TimingParams &timing() const;
    const PowerParams &power() const;

    bool hasActivity() const { return bool(env_.measureActivity); }
    /** Measured toggle counts for the bound netlist (lazy; panics
     *  without an activity provider — check hasActivity()). */
    const ToggleCounter &activity();
    /** Per-gate toggle density alpha = count/cycles (lazy). */
    const std::vector<double> &densities();

    /** Clock period budget (env value or derived; lazy). */
    double clockPeriodPs();
    /** Arrival/required/slack query at the budget period (lazy). */
    const TimingQuery &timingQuery();

  private:
    const PassEnv &env_;
    const Netlist *nl_ = nullptr;
    std::optional<ToggleCounter> activity_;
    std::vector<double> densities_;
    std::unique_ptr<TimingQuery> timingQuery_;
    double periodPs_ = 0.0;
};

/** Per-pass outcome, for reports and the tailor CLI summary. */
struct PassStats
{
    std::string name;
    size_t changes = 0;        ///< rewrite marks applied (0 = no-op)
    size_t gatesBefore = 0;    ///< real cells before the pass
    size_t gatesAfter = 0;     ///< real cells after compaction
    /** Activity-weighted power before/after (µW; -1 = not measured). */
    double powerBeforeUW = -1.0;
    double powerAfterUW = -1.0;
    /** Critical path before/after (ps; -1 = not measured). */
    double depthBeforePs = -1.0;
    double depthAfterPs = -1.0;
    double wallMs = 0.0;
};

/**
 * One transform pass. The pipeline drives each pass as:
 *   prepare(working, ctx)      — optional netlist growth
 *   Rewriter rw(working); n = run(rw, ctx)
 *   if (n) working = rw.compact() [+ sweepDead when sweeps() is true]
 *   finish(working, ctx)       — optional post-compaction fixup
 * Analyses in ctx are invalidated whenever the netlist changes.
 */
class TransformPass
{
  public:
    virtual ~TransformPass() = default;

    virtual const char *name() const = 0;

    /** Grow or annotate the working netlist before marking. */
    virtual void prepare(Netlist & /*nl*/, PassContext & /*ctx*/) {}

    /** Apply rewrite marks; return the number of marks made. */
    virtual size_t run(Rewriter &rw, PassContext &ctx) = 0;

    /** Post-compaction hook (e.g. instance-table fixup). */
    virtual void finish(Netlist & /*nl*/, PassContext & /*ctx*/) {}

    /** Whether the pipeline should sweep dead logic after this pass. */
    virtual bool sweeps() const { return true; }
};

} // namespace bespoke

#endif // BESPOKE_TRANSFORM_PASS_HH
