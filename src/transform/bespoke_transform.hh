/**
 * @file
 * Cutting & stitching and re-synthesis (paper Section 3.2).
 *
 * cutAndStitch() removes every gate the activity analysis proved
 * untoggleable, ties each of its fanout pins to the proven constant
 * value, and then re-synthesizes: constant propagation (gates with
 * constant inputs fold or shrink to simpler cells), removal of
 * floating-output logic (toggled gates whose outputs can no longer
 * reach a state element or port), and fixpoint iteration of both.
 */

#ifndef BESPOKE_TRANSFORM_BESPOKE_TRANSFORM_HH
#define BESPOKE_TRANSFORM_BESPOKE_TRANSFORM_HH

#include "src/sim/gate_sim.hh"
#include "src/transform/rewrite.hh"

namespace bespoke
{

/** Statistics from one cut-and-stitch invocation. */
struct CutStats
{
    size_t gatesBefore = 0;
    size_t gatesCutDirect = 0;   ///< untoggled gates removed
    size_t gatesAfter = 0;       ///< after full re-synthesis
};

/**
 * Produce the bespoke netlist for the activity result. The tracker's
 * netlist must be `src`.
 */
Netlist cutAndStitch(const Netlist &src, const ActivityTracker &activity,
                     CutStats *stats = nullptr);

/**
 * Re-synthesis only: constant propagation + dead sweep + buffer strip
 * to fixpoint. Exposed separately for tests and for the coarse-grained
 * module-removal baseline.
 */
Netlist resynthesize(const Netlist &src);

/**
 * Coarse-grained module-level bespoke baseline (paper Fig. 12): remove
 * whole modules in which *no* gate is toggleable, tying module outputs
 * to their constants; modules with any toggleable gate are kept intact.
 * Mirrors an Xtensa-like configuration flow.
 */
Netlist cutWholeModules(const Netlist &src,
                        const ActivityTracker &activity,
                        CutStats *stats = nullptr);

} // namespace bespoke

#endif // BESPOKE_TRANSFORM_BESPOKE_TRANSFORM_HH
