/**
 * @file
 * Netlist rewriting: the machinery behind cutting & stitching and
 * re-synthesis (paper Sec. 3.2).
 *
 * Netlist construction is append-only, so every transform builds a new
 * netlist via a Rewriter: passes mark gates as aliased (output equals
 * another gate's output), constant (output tied to 0/1), or dead, and
 * compact() emits the surviving gates with pins remapped. Port pseudo-
 * gates keep their names, so environments and analyses that look up
 * ports by name work on transformed designs unchanged.
 */

#ifndef BESPOKE_TRANSFORM_REWRITE_HH
#define BESPOKE_TRANSFORM_REWRITE_HH

#include <vector>

#include "src/netlist/netlist.hh"

namespace bespoke
{

/** Result of a rewrite: the new netlist plus an old-id -> new-id map. */
struct RewriteResult
{
    Netlist netlist;
    /** kNoGate for dropped gates; constants map to shared tie cells. */
    std::vector<GateId> map;

    /** Remap an old gate id (kNoGate if it was dropped). */
    GateId remap(GateId old_id) const { return map[old_id]; }
};

/**
 * Accumulates rewrite marks against a source netlist, then emits the
 * rewritten copy. Marks compose: an aliased gate may alias a constant
 * gate; resolution follows chains.
 */
class Rewriter
{
  public:
    explicit Rewriter(const Netlist &src);

    const Netlist &source() const { return src_; }

    /** Mark: this gate's output is the constant value; gate dropped. */
    void makeConstant(GateId id, bool value);
    /**
     * Mark: this gate's output equals target's output; gate dropped.
     * Self-aliases and alias cycles (following earlier alias marks from
     * `target` back to `id`) are rejected deterministically at mark
     * time, so a bad pass fails at the offending makeAlias() call
     * instead of at some later resolve() that happens to walk the loop.
     */
    void makeAlias(GateId id, GateId target);
    /** Replace the gate's cell (same output net), e.g. XOR2 -> INV. */
    void replaceCell(GateId id, CellType type, GateId in0,
                     GateId in1 = kNoGate, GateId in2 = kNoGate);
    /** Mark a gate dead (no fanout use); it is simply dropped. */
    void kill(GateId id);
    /** Change drive strength in the output netlist. */
    void setDrive(GateId id, Drive drive);

    bool isConstant(GateId id) const;
    /** True once replaceCell() was applied (one rewrite per round). */
    bool hasReplacement(GateId id) const { return hasReplace_[id]; }
    bool constantValue(GateId id) const;
    bool isDropped(GateId id) const;

    /**
     * Resolve a gate id through alias/constant chains. Returns either a
     * surviving source gate id (isConst == false) or a constant
     * (isConst == true, value set). A chain that ends at a Dead mark
     * resolves to constant 0 with viaDead set: passes may query such
     * nets transiently, but compact() rejects any *live* pin that
     * resolves through a Dead gate — killing a gate that still has live
     * readers is a pass bug, not an implicit constant-0.
     */
    struct Resolved
    {
        bool isConst;
        bool value;
        GateId gate;
        bool viaDead = false;
    };
    Resolved resolve(GateId id) const;

    /** Emit the rewritten netlist. */
    RewriteResult compact() const;

  private:
    enum class Mark : uint8_t
    {
        Keep,
        Const0,
        Const1,
        Alias,
        Dead,
    };

    const Netlist &src_;
    std::vector<Mark> marks_;
    std::vector<GateId> aliasTarget_;
    std::vector<Gate> replaced_;      ///< cell replacements (by id)
    std::vector<uint8_t> hasReplace_;
    std::vector<Drive> drives_;
};

/**
 * Remove BUF cells by rewiring their fanouts to their inputs. Used to
 * clean up generator scaffolding and post-optimization chains.
 */
RewriteResult stripBuffers(const Netlist &src);

/**
 * Remove gates with no path to any OUTPUT port or live flop; iterates
 * until closed (a flop whose Q feeds nothing is dead, which can kill
 * its fanin cone).
 */
RewriteResult sweepDead(const Netlist &src);

} // namespace bespoke

#endif // BESPOKE_TRANSFORM_REWRITE_HH
