#include "src/transform/rewrite.hh"

#include "src/util/logging.hh"

namespace bespoke
{

Rewriter::Rewriter(const Netlist &src)
    : src_(src), marks_(src.size(), Mark::Keep),
      aliasTarget_(src.size(), kNoGate), replaced_(src.size()),
      hasReplace_(src.size(), 0), drives_(src.size())
{
    for (GateId i = 0; i < src.size(); i++)
        drives_[i] = src.gate(i).drive;
}

void
Rewriter::makeConstant(GateId id, bool value)
{
    bespoke_assert(!cellPseudo(src_.gate(id).type),
                   "cannot constant-fold a port");
    marks_[id] = value ? Mark::Const1 : Mark::Const0;
}

void
Rewriter::makeAlias(GateId id, GateId target)
{
    bespoke_assert(id != target, "self-alias on gate ", id);
    // Reject cycles at mark time: walk existing alias marks from the
    // target; reaching `id` means this mark would close a loop.
    GateId cur = target;
    while (marks_[cur] == Mark::Alias) {
        bespoke_assert(cur != id, "alias cycle: gate ", id,
                       " -> ", target, " closes a loop");
        cur = aliasTarget_[cur];
    }
    bespoke_assert(cur != id, "alias cycle: gate ", id, " -> ", target,
                   " closes a loop");
    marks_[id] = Mark::Alias;
    aliasTarget_[id] = target;
}

void
Rewriter::replaceCell(GateId id, CellType type, GateId in0, GateId in1,
                      GateId in2)
{
    Gate g = src_.gate(id);
    g.type = type;
    g.in = {in0, in1, in2};
    replaced_[id] = g;
    hasReplace_[id] = 1;
}

void
Rewriter::kill(GateId id)
{
    marks_[id] = Mark::Dead;
}

void
Rewriter::setDrive(GateId id, Drive drive)
{
    drives_[id] = drive;
}

bool
Rewriter::isConstant(GateId id) const
{
    return resolve(id).isConst;
}

bool
Rewriter::constantValue(GateId id) const
{
    Resolved r = resolve(id);
    bespoke_assert(r.isConst);
    return r.value;
}

bool
Rewriter::isDropped(GateId id) const
{
    return marks_[id] != Mark::Keep;
}

Rewriter::Resolved
Rewriter::resolve(GateId id) const
{
    GateId cur = id;
    for (size_t hops = 0; hops <= src_.size(); hops++) {
        switch (marks_[cur]) {
          case Mark::Const0:
            return {true, false, kNoGate, false};
          case Mark::Const1:
            return {true, true, kNoGate, false};
          case Mark::Alias:
            cur = aliasTarget_[cur];
            break;
          case Mark::Dead: {
            // A killed TIE still resolves to its constant (no
            // information lives in the cell); anything else resolves
            // as constant 0 with viaDead set so compact() can reject
            // live readers of a killed gate.
            CellType t = hasReplace_[cur] ? replaced_[cur].type
                                          : src_.gate(cur).type;
            if (t == CellType::TIE0)
                return {true, false, kNoGate, false};
            if (t == CellType::TIE1)
                return {true, true, kNoGate, false};
            return {true, false, kNoGate, true};
          }
          default: {
            // TIE cells resolve to constants so compact() can share.
            CellType t = hasReplace_[cur] ? replaced_[cur].type
                                          : src_.gate(cur).type;
            if (t == CellType::TIE0)
                return {true, false, kNoGate, false};
            if (t == CellType::TIE1)
                return {true, true, kNoGate, false};
            return {false, false, cur, false};
          }
        }
    }
    bespoke_panic("alias cycle at gate ", id);
}

RewriteResult
Rewriter::compact() const
{
    RewriteResult out;
    out.map.assign(src_.size(), kNoGate);

    // First materialize all surviving gates (pins wired in pass 2,
    // since fanins may resolve to gates created later in the order).
    struct Pending
    {
        GateId oldId;
        GateId newId;
        Gate def;
    };
    std::vector<Pending> pending;

    for (GateId i = 0; i < src_.size(); i++) {
        if (marks_[i] != Mark::Keep)
            continue;
        Gate def = hasReplace_[i] ? replaced_[i] : src_.gate(i);
        if (def.type == CellType::TIE0 || def.type == CellType::TIE1)
            continue;  // re-created on demand as shared ties
        def.drive = drives_[i];

        GateId nid;
        // Preserve port identity (names) for INPUT/OUTPUT pseudo-gates.
        const std::string &nm = src_.name(i);
        if (def.type == CellType::INPUT) {
            nid = out.netlist.addInput(nm, def.module);
        } else {
            // Create with dummy fanin; rewired below.
            GateId dummy = 0;  // patched in pass 2
            int n = cellNumInputs(def.type);
            nid = out.netlist.addGate(def.type, def.module,
                                      n > 0 ? dummy : kNoGate,
                                      n > 1 ? dummy : kNoGate,
                                      n > 2 ? dummy : kNoGate);
            out.netlist.gateRef(nid).drive = def.drive;
            if (cellSequential(def.type))
                out.netlist.setResetValue(nid, def.resetValue);
            if (!nm.empty())
                out.netlist.setName(nid, nm);
        }
        out.map[i] = nid;
        pending.push_back({i, nid, def});
    }

    // Second pass: wire fanins through resolution.
    for (const Pending &p : pending) {
        int n = cellNumInputs(p.def.type);
        for (int pin = 0; pin < n; pin++) {
            GateId old_in = p.def.in[pin];
            Resolved r = resolve(old_in);
            GateId src_new;
            if (r.isConst) {
                bespoke_assert(!r.viaDead, "live gate ", p.oldId,
                               " pin ", pin, " reads killed gate ",
                               old_in);
                src_new = out.netlist.tie(r.value,
                                          src_.gate(p.oldId).module);
            } else {
                src_new = out.map[r.gate];
                bespoke_assert(src_new != kNoGate,
                               "live gate ", p.oldId, " pin ", pin,
                               " reads dropped gate ", r.gate);
            }
            out.netlist.setFanin(p.newId, pin, src_new);
        }
        // Inputs were registered by addInput; outputs need explicit
        // registration under their preserved names.
        if (p.def.type == CellType::OUTPUT)
            out.netlist.registerPort(src_.name(p.oldId), p.newId);
    }

    // Carry datapath instance metadata across the rewrite. An instance
    // survives when its operands are still expressible (surviving net or
    // constant) and at least one result net survives; otherwise it is
    // dropped — conservative, since the rewrite search only acts on
    // instances it can fully reconstruct.
    for (const DatapathInstance &inst : src_.instances()) {
        DatapathInstance ni;
        ni.kind = inst.kind;
        ni.module = inst.module;
        ni.variant = inst.variant;
        ni.shape = inst.shape;
        bool inputs_ok = true;
        for (GateId in : inst.inputs) {
            if (in == kNoGate) {
                inputs_ok = false;
                break;
            }
            Resolved r = resolve(in);
            if (r.viaDead) {
                inputs_ok = false;
                break;
            }
            // A constant operand may only reference a tie the compacted
            // netlist already has: minting one here would grow the gate
            // set for metadata's sake and break the pipeline's
            // bit-identity with the pre-pass flow.
            GateId nid = r.isConst
                             ? out.netlist.findTie(r.value, inst.module)
                             : out.map[r.gate];
            if (nid == kNoGate) {
                inputs_ok = false;
                break;
            }
            ni.inputs.push_back(nid);
        }
        if (!inputs_ok)
            continue;
        size_t live_outputs = 0;
        for (GateId o : inst.outputs) {
            GateId nid = kNoGate;
            if (o != kNoGate) {
                Resolved r = resolve(o);
                if (!r.isConst)
                    nid = out.map[r.gate];
            }
            if (nid != kNoGate)
                live_outputs++;
            ni.outputs.push_back(nid);
        }
        if (live_outputs > 0)
            out.netlist.addInstance(std::move(ni));
    }

    return out;
}

RewriteResult
stripBuffers(const Netlist &src)
{
    Rewriter rw(src);
    for (GateId i = 0; i < src.size(); i++) {
        if (src.gate(i).type == CellType::BUF)
            rw.makeAlias(i, src.gate(i).in[0]);
    }
    return rw.compact();
}

RewriteResult
sweepDead(const Netlist &src)
{
    // Liveness: OUTPUT ports are roots; a gate is live if some live
    // gate reads it. Flops keep themselves alive only through their
    // fanout like any other gate.
    std::vector<uint8_t> live(src.size(), 0);
    std::vector<GateId> work;
    for (GateId i = 0; i < src.size(); i++) {
        if (src.gate(i).type == CellType::OUTPUT) {
            live[i] = 1;
            work.push_back(i);
        }
    }
    while (!work.empty()) {
        GateId id = work.back();
        work.pop_back();
        const Gate &g = src.gate(id);
        for (int p = 0; p < g.numInputs(); p++) {
            GateId in = g.in[p];
            if (!live[in]) {
                live[in] = 1;
                work.push_back(in);
            }
        }
    }
    Rewriter rw(src);
    for (GateId i = 0; i < src.size(); i++) {
        if (!live[i] && !cellPseudo(src.gate(i).type))
            rw.kill(i);
    }
    return rw.compact();
}

} // namespace bespoke
