#include "src/transform/pass_pipeline.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <set>

#include "src/builder/net_builder.hh"
#include "src/isa/assembler.hh"
#include "src/sat/never_toggle.hh"
#include "src/util/logging.hh"

namespace bespoke
{

namespace
{

uint64_t
fnv64(uint64_t h, uint64_t v)
{
    for (int i = 0; i < 8; i++) {
        h ^= (v >> (i * 8)) & 0xff;
        h *= 1099511628211ull;
    }
    return h;
}

uint64_t
fnvDouble(uint64_t h, double v)
{
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    return fnv64(h, bits);
}

double
nowMs()
{
    using namespace std::chrono;
    return duration<double, std::milli>(
               steady_clock::now().time_since_epoch())
        .count();
}

/**
 * The legacy re-synthesis fixpoint, verbatim: constant propagation to a
 * local fixpoint on one Rewriter, compact, dead sweep, repeat while the
 * design shrinks. Bit-identical to the pre-pipeline resynthesize().
 */
size_t
resynthFixpoint(Netlist &current)
{
    size_t total_marks = 0;
    while (true) {
        size_t before = current.numCells();
        {
            Rewriter rw(current);
            size_t total = 0;
            while (true) {
                size_t c = constantFoldOnce(rw);
                total += c;
                if (c == 0)
                    break;
            }
            total_marks += total;
            if (total > 0)
                current = rw.compact().netlist;
        }
        current = sweepDead(current).netlist;
        if (current.numCells() >= before)
            break;
    }
    return total_marks;
}

/** Transition-density propagation factor per cell type. */
double
densityFactor(CellType t)
{
    switch (t) {
      case CellType::INV:
      case CellType::BUF:
      case CellType::XOR2:
      case CellType::XNOR2:
        return 1.0;
      case CellType::AND2:
      case CellType::OR2:
      case CellType::NAND2:
      case CellType::NOR2:
      case CellType::MUX2:
        return 0.5;
      case CellType::AOI21:
      case CellType::OAI21:
        return 0.4;
      case CellType::AND3:
      case CellType::OR3:
      case CellType::NAND3:
      case CellType::NOR3:
        return 0.25;
      default:
        return 0.5;
    }
}

/**
 * Fill unknown entries (< 0) of a per-gate density vector by forward
 * propagation: a gate's estimated toggle density is a cell-dependent
 * fraction of the sum of its fanin densities, clamped to [0, 1]. Known
 * (measured) entries are left untouched, so estimation error is
 * confined to the freshly built gates — and since every candidate
 * microarchitecture of an instance is scored through this same
 * estimator (including a rebuild of the current shape), the comparison
 * between shapes is unbiased by it.
 */
void
propagateDensities(const Netlist &nl, std::vector<double> *d)
{
    for (GateId i : nl.levelize()) {
        if ((*d)[i] >= 0.0)
            continue;
        const Gate &g = nl.gate(i);
        if (g.type == CellType::OUTPUT) {
            double v = (*d)[g.in[0]];
            (*d)[i] = v >= 0.0 ? v : 0.0;
            continue;
        }
        double sum = 0.0;
        int n = g.numInputs();
        for (int p = 0; p < n; p++) {
            double v = (*d)[g.in[p]];
            if (v >= 0.0)
                sum += v;
        }
        (*d)[i] = std::min(1.0, densityFactor(g.type) * sum);
    }
    // Remaining unknowns are sources created by the rebuild (shared
    // ties): they never toggle.
    for (double &v : *d) {
        if (v < 0.0)
            v = 0.0;
    }
}

/** Activity-weighted power (µW) from a density vector. */
double
powerFromDensities(const Netlist &nl, const std::vector<double> &d,
                   const PowerParams &power, const TimingParams &timing,
                   double *criticalPs)
{
    constexpr uint64_t kCycles = 1u << 20;
    ToggleCounter tc(nl);
    ToggleCounter::RunTrace trace;
    trace.first.assign(nl.size(), 0);
    trace.last = trace.first;
    trace.cycles = kCycles;
    tc.ingestRun(trace);
    std::vector<uint64_t> counts(nl.size(), 0);
    for (GateId i = 0; i < nl.size(); i++) {
        double v = std::clamp(d[i], 0.0, 1.0);
        counts[i] = static_cast<uint64_t>(
            std::llround(v * static_cast<double>(kCycles)));
    }
    tc.addCounts(counts);
    TimingReport tr = analyzeTiming(nl, timing);
    if (criticalPs)
        *criticalPs = tr.criticalPathPs;
    return computePower(nl, tc, power, timing).totalUW();
}

/** A (old output net, rebuilt net) stitch point. */
using AliasPairs = std::vector<std::pair<GateId, GateId>>;

/** MuxTree variant encoding. */
constexpr uint8_t kMuxLsbFirst = 0;
constexpr uint8_t kMuxMsbFirst = 1;

/**
 * Append a rebuilt copy of `inst` in the given variant to `work`,
 * returning the old-output -> new-net stitch pairs. False when the
 * instance is not reconstructible (lost operands, odd shape) or the
 * variant does not apply.
 */
bool
rebuildInstance(Netlist &work, const DatapathInstance &inst,
                uint8_t variant, AliasPairs *pairs)
{
    for (GateId in : inst.inputs) {
        if (in == kNoGate)
            return false;
    }
    std::set<GateId> operand_set(inst.inputs.begin(), inst.inputs.end());
    auto pair_up = [&](GateId old_out, GateId new_net) {
        if (old_out == kNoGate || old_out == new_net)
            return;
        // Never alias a port pseudo-gate or a tie (they must survive
        // as-is), and never alias an operand net onto the new block —
        // the block reads it, so that alias would close a loop.
        CellType t = work.gate(old_out).type;
        if (cellPseudo(t) || t == CellType::TIE0 || t == CellType::TIE1)
            return;
        if (operand_set.count(old_out))
            return;
        pairs->push_back({old_out, new_net});
    };

    NetBuilder nb(work, inst.module);
    if (inst.kind == InstanceKind::Adder) {
        if (inst.shape.size() != 1)
            return false;
        size_t w = inst.shape[0];
        if (w == 0 || inst.inputs.size() != 2 * w + 1 ||
            inst.outputs.size() != 2 * w) {
            return false;
        }
        if (variant > static_cast<uint8_t>(AdderKind::CarrySelect))
            return false;
        Bus a(inst.inputs.begin(), inst.inputs.begin() + w);
        Bus b(inst.inputs.begin() + w, inst.inputs.begin() + 2 * w);
        GateId cin = inst.inputs[2 * w];
        nb.setAdderKind(static_cast<AdderKind>(variant));
        AddResult r = nb.adder(a, b, cin);
        for (size_t i = 0; i < w; i++)
            pair_up(inst.outputs[i], r.sum[i]);
        for (size_t i = 0; i < w; i++)
            pair_up(inst.outputs[w + i], r.carries[i]);
        return true;
    }

    // MuxTree. Restructuring is only sound for full trees (every
    // select value addresses a distinct recorded choice); partial
    // trees use the pass-through tail rule and keep their shape.
    if (inst.shape.size() != 3)
        return false;
    size_t s = inst.shape[0], c = inst.shape[1], wd = inst.shape[2];
    if (s == 0 || c < 2 || wd == 0 ||
        inst.inputs.size() != s + c * wd || inst.outputs.size() != wd) {
        return false;
    }
    Bus sel(inst.inputs.begin(), inst.inputs.begin() + s);
    std::vector<Bus> choices(c);
    for (size_t k = 0; k < c; k++) {
        choices[k].assign(inst.inputs.begin() + s + k * wd,
                          inst.inputs.begin() + s + (k + 1) * wd);
    }
    Bus out;
    if (variant == kMuxLsbFirst) {
        out = nb.muxTree(sel, choices);  // records the instance itself
    } else if (variant == kMuxMsbFirst) {
        if (s >= 32 || c != (1ull << s))
            return false;
        // Halve the choice set per level from the top select bit:
        // next[i] = sel[bit] ? level[i + half] : level[i], which picks
        // choices[sel] for a full tree just like the LSB-first order
        // but pairs distant choices instead of adjacent ones.
        std::vector<Bus> level = choices;
        for (size_t bit = s; bit-- > 0 && level.size() > 1;) {
            size_t half = level.size() / 2;
            std::vector<Bus> next(half);
            for (size_t i = 0; i < half; i++)
                next[i] = nb.muxBus(sel[bit], level[i], level[i + half]);
            level = std::move(next);
        }
        out = level[0];
        DatapathInstance ni;
        ni.kind = InstanceKind::MuxTree;
        ni.module = inst.module;
        ni.variant = kMuxMsbFirst;
        ni.shape = inst.shape;
        ni.inputs = inst.inputs;
        ni.outputs = out;
        work.addInstance(std::move(ni));
    } else {
        return false;
    }
    for (size_t i = 0; i < wd; i++)
        pair_up(inst.outputs[i], out[i]);
    return true;
}

/**
 * Drop stale duplicate instance entries: committing a rewrite leaves
 * the original entry aliased onto the rebuilt nets next to the freshly
 * recorded entry for the same block. The two entries need not have
 * identical live-output sets — output nets that died before the rewrite
 * stay kNoGate in the old entry while the rebuilt one re-creates them —
 * so match on *overlap*: every net has exactly one driver, hence two
 * entries sharing any live output describe the same block, and the
 * later entry is the one whose variant matches the gates present.
 */
void
dedupInstances(Netlist &nl)
{
    std::vector<DatapathInstance> &insts = nl.instancesRef();
    std::set<GateId> seen;
    std::vector<DatapathInstance> kept;
    for (size_t k = insts.size(); k-- > 0;) {
        bool stale = false;
        for (GateId o : insts[k].outputs) {
            if (o != kNoGate && seen.count(o)) {
                stale = true;
                break;
            }
        }
        if (stale)
            continue;
        for (GateId o : insts[k].outputs) {
            if (o != kNoGate)
                seen.insert(o);
        }
        kept.push_back(std::move(insts[k]));
    }
    std::reverse(kept.begin(), kept.end());
    insts = std::move(kept);
}

/** The variants worth rebuilding for one recorded instance (empty =
 *  the instance is not reconstructible under these options). */
std::vector<uint8_t>
variantsFor(const DatapathInstance &inst,
            const RewriteSearchOptions &opts)
{
    if (inst.kind == InstanceKind::Adder) {
        if (inst.shape.size() == 1 &&
            inst.shape[0] >= opts.minAdderWidth) {
            return {static_cast<uint8_t>(AdderKind::Ripple),
                    static_cast<uint8_t>(AdderKind::CarryLookahead),
                    static_cast<uint8_t>(AdderKind::CarrySelect)};
        }
    } else if (inst.shape.size() == 3 && inst.shape[0] >= 2 &&
               inst.shape[0] < 32 &&
               inst.shape[1] == (1ull << inst.shape[0])) {
        return {kMuxLsbFirst, kMuxMsbFirst};
    }
    return {};
}

/**
 * Rebuild `inst` as `variant` on a scratch copy of `base`, stitch,
 * compact, and measure the λ-independent score pair: activity-weighted
 * power at vmin (µW) and the critical path (ps). λ enters only at
 * recombination time (rewriteCostAt), so a λ-sweep pays for this
 * rebuild exactly once per (instance, variant).
 */
bool
scoreVariant(const Netlist &base, const std::vector<double> &baseDensity,
             const DatapathInstance &inst, uint8_t variant,
             PassContext &ctx, double *power_term, double *critical_ps)
{
    Netlist work = base;
    AliasPairs pairs;
    if (!rebuildInstance(work, inst, variant, &pairs) || pairs.empty())
        return false;
    Rewriter rw(work);
    std::set<GateId> seen;
    for (auto [o, nn] : pairs) {
        if (seen.insert(o).second)
            rw.makeAlias(o, nn);
    }
    RewriteResult rr = rw.compact();
    RewriteResult rr2 = sweepDead(rr.netlist);
    Netlist cand = std::move(rr2.netlist);

    std::vector<double> d(cand.size(), -1.0);
    for (GateId i = 0; i < base.size(); i++) {
        GateId m = rr.map[i];
        if (m == kNoGate)
            continue;
        m = rr2.map[m];
        if (m == kNoGate)
            continue;
        d[m] = baseDensity[i];
    }
    propagateDensities(cand, &d);
    sizeForLoads(cand, ctx.timing());

    double critical = 0.0;
    double nominal_uw = powerFromDensities(cand, d, ctx.power(),
                                           ctx.timing(), &critical);
    double period = ctx.clockPeriodPs();
    double vmin = critical > 0.0
                      ? vminForPeriod(critical, period, ctx.timing())
                      : ctx.timing().vMinFloor;
    double v2 =
        (vmin * vmin) / (ctx.power().voltage * ctx.power().voltage);
    *power_term = nominal_uw * v2;
    *critical_ps = critical;
    return true;
}

/**
 * The cost-driven datapath rewrite search (pipeline tentpole). For
 * every reconstructible DatapathInstance, every applicable variant is
 * rebuilt on a scratch copy, stitched, compacted, and scored:
 *     cost = total power at vmin(depth, budget)
 *          + lambda x max(0, depth - budget)
 * with measured toggle densities for surviving gates and propagated
 * estimates for rebuilt ones. The argmin variant is committed only
 * when it strictly beats the rebuilt current shape. Scoring and the
 * λ-dependent decision are split (scoreRewriteCandidates /
 * rewriteDecisionsAtLambda) so λ-sweeps reuse one scoring pass.
 */
class RewriteSearchPass : public TransformPass
{
  public:
    explicit RewriteSearchPass(const RewriteSearchOptions &opts)
        : opts_(opts)
    {}

    const char *name() const override { return "rewrite-search"; }
    size_t rewritten() const { return rewritten_; }

    void
    prepare(Netlist &nl, PassContext &ctx) override
    {
        double period = ctx.clockPeriodPs();

        // Decide on a frozen copy: every instance is scored against
        // the same base so decisions are order-independent.
        const Netlist base = nl;
        std::vector<RewriteVariantScore> scores =
            scoreRewriteCandidates(base, ctx, opts_);
        std::vector<std::pair<size_t, uint8_t>> decisions =
            rewriteDecisionsAtLambda(scores, opts_, period);

        // Commit every winner on the real working netlist; the
        // pipeline compacts once after run() applies the stitches.
        for (auto [k, variant] : decisions) {
            AliasPairs pairs;
            if (!rebuildInstance(nl, base.instances()[k], variant,
                                 &pairs)) {
                continue;
            }
            bool any = false;
            for (auto [o, nn] : pairs) {
                if (!aliased_.count(o)) {
                    aliased_.insert(o);
                    pending_.push_back({o, nn});
                    any = true;
                }
            }
            if (any)
                rewritten_++;
        }
    }

    size_t
    run(Rewriter &rw, PassContext & /*ctx*/) override
    {
        for (auto [o, nn] : pending_)
            rw.makeAlias(o, nn);
        return pending_.size();
    }

    void
    finish(Netlist &nl, PassContext & /*ctx*/) override
    {
        dedupInstances(nl);
    }

  private:
    RewriteSearchOptions opts_;
    AliasPairs pending_;
    std::set<GateId> aliased_;
    size_t rewritten_ = 0;
};

/**
 * SAT never-toggle proving pass: pick up the gates the X-propagating
 * analysis left toggleable but the measured replay never saw move,
 * and ask the CDCL prover (src/sat/never_toggle) whether any reachable
 * input/cycle combination can flip them. Proven gates are tied to
 * their constant exactly like the cut pass would have done — the SAT
 * proof alone justifies the rewrite (its envelope covers every real
 * execution); the measured evidence only selects candidates.
 */
class SatNeverTogglePass : public TransformPass
{
  public:
    static constexpr int kMaxSatFrames = 100000;

    explicit SatNeverTogglePass(const SatNeverToggleOptions &opts)
        : opts_(opts)
    {}

    const char *name() const override { return "sat-never-toggle"; }

    size_t
    run(Rewriter &rw, PassContext &ctx) override
    {
        const PassEnv &env = ctx.env();
        if (!env.program || !ctx.hasActivity() || opts_.depth <= 0)
            return 0;
        // Unrolling memory grows with the horizon; an analysis that
        // explored millions of cycles is out of the prover's reach.
        if (opts_.depth > kMaxSatFrames) {
            bespoke_warn("sat-never-toggle: horizon ", opts_.depth,
                         " frames exceeds the ", kMaxSatFrames,
                         "-frame cap; pass skipped");
            return 0;
        }
        const Netlist &nl = ctx.netlist();
        const ToggleCounter &tc = ctx.activity();
        if (tc.cycles() == 0)
            return 0;
        std::vector<GateId> ids;
        for (GateId i = 0; i < nl.size(); i++) {
            const Gate &g = nl.gate(i);
            if (cellPseudo(g.type) || g.type == CellType::TIE0 ||
                g.type == CellType::TIE1) {
                continue;
            }
            if (tc.count(i) == 0)
                ids.push_back(i);
        }
        if (ids.empty())
            return 0;
        // Observed constant value. A zero-toggle gate held exactly one
        // value for the whole replay — the counter bumps on within-run
        // transitions AND cross-run boundary transitions, so count == 0
        // really means one value across every observed cycle, and that
        // value is the counter's last observation. Zero pins the
        // candidate at 0; One/X is ambiguous between always-1 and
        // always-X — an always-X gate may well be the X-pessimism
        // victim this pass exists for (really constant 0, but 3-valued
        // propagation can't see it), so try both polarities there. At
        // most one polarity survives the base stage; a wrong guess is
        // simply refuted and costs one query. (Earlier revisions ran a
        // second, duty-measuring replay to recover the same polarity —
        // a full extra simulation of the workload per design.)
        std::vector<sat::NeverToggleCandidate> cands;
        for (GateId id : ids) {
            if (tc.lastValue(id) == Logic::Zero) {
                cands.push_back({id, false});
            } else {
                cands.push_back({id, true});
                cands.push_back({id, false});
            }
        }
        if (cands.empty())
            return 0;
        sat::NeverToggleOptions no;
        no.mode = opts_.induction
                      ? sat::NeverToggleOptions::Mode::Induction
                      : sat::NeverToggleOptions::Mode::BoundedEnvelope;
        no.depth = opts_.depth;
        no.conflictBudget = opts_.conflictBudget;
        no.romMux = opts_.romMux;
        no.threads = opts_.threads;
        candidates_ = cands.size();
        sat::NeverToggleResult res =
            sat::proveNeverToggling(nl, *env.program, cands, no);
        proven_ = res.proven.size();
        refuted_ = res.refuted.size();
        unknown_ = res.unknown.size();
        stats_ = res.stats;
        for (const sat::NeverToggleCandidate &c : res.proven)
            rw.makeConstant(c.gate, c.value);
        return res.proven.size();
    }

    size_t candidates() const { return candidates_; }
    size_t proven() const { return proven_; }
    size_t refuted() const { return refuted_; }
    size_t unknown() const { return unknown_; }
    const sat::NeverToggleStats &stats() const { return stats_; }

  private:
    SatNeverToggleOptions opts_;
    size_t candidates_ = 0;
    size_t proven_ = 0;
    size_t refuted_ = 0;
    size_t unknown_ = 0;
    sat::NeverToggleStats stats_;
};

void
snapshotMetrics(const Netlist &nl, const PassEnv &env,
                const TimingParams &timing, const PowerParams &power,
                double *power_uw, double *depth_ps)
{
    TimingReport tr = analyzeTiming(nl, timing);
    *depth_ps = tr.criticalPathPs;
    *power_uw = -1.0;
    if (env.measureActivity && nl.numCells() > 0) {
        ToggleCounter tc(nl);
        env.measureActivity(nl, &tc);
        if (tc.cycles() > 0)
            *power_uw = computePower(nl, tc, power, timing).totalUW();
    }
}

} // namespace

std::vector<RewriteVariantScore>
scoreRewriteCandidates(const Netlist &nl, PassContext &ctx,
                       const RewriteSearchOptions &opts)
{
    const std::vector<double> &density = ctx.densities();
    std::vector<RewriteVariantScore> out;
    for (size_t k = 0; k < nl.instances().size(); k++) {
        const DatapathInstance &inst = nl.instances()[k];
        for (uint8_t v : variantsFor(inst, opts)) {
            RewriteVariantScore s;
            s.inst = k;
            s.variant = v;
            s.isCurrent = v == inst.variant;
            if (!scoreVariant(nl, density, inst, v, ctx, &s.powerTermUW,
                              &s.criticalPs)) {
                continue;
            }
            out.push_back(s);
        }
    }
    return out;
}

std::vector<std::pair<size_t, uint8_t>>
rewriteDecisionsAtLambda(const std::vector<RewriteVariantScore> &scores,
                         const RewriteSearchOptions &opts,
                         double period_ps)
{
    std::vector<std::pair<size_t, uint8_t>> out;
    size_t i = 0;
    while (i < scores.size()) {
        // One instance's contiguous group of scored variants.
        size_t j = i;
        bool have_current = false, have_best = false;
        double current_cost = 0.0, best_cost = 0.0;
        size_t best_at = i;
        for (; j < scores.size() && scores[j].inst == scores[i].inst;
             j++) {
            double cost =
                rewriteCostAt(scores[j], opts.lambdaUWPerPs, period_ps);
            if (scores[j].isCurrent) {
                current_cost = cost;
                have_current = true;
            }
            if (!have_best || cost < best_cost) {
                best_cost = cost;
                best_at = j;
                have_best = true;
            }
        }
        if (have_current && have_best && !scores[best_at].isCurrent &&
            best_cost < current_cost * (1.0 - opts.minGainFraction)) {
            out.emplace_back(scores[best_at].inst,
                             scores[best_at].variant);
        }
        i = j;
    }
    return out;
}

size_t
constantFoldOnce(Rewriter &rw)
{
    const Netlist &nl = rw.source();
    size_t changed = 0;

    for (GateId i = 0; i < nl.size(); i++) {
        const Gate &g = nl.gate(i);
        if (cellPseudo(g.type) || rw.isDropped(i) ||
            rw.hasReplacement(i)) {
            continue;
        }
        if (g.type == CellType::TIE0 || g.type == CellType::TIE1)
            continue;

        int n = g.numInputs();
        // Resolve inputs through prior marks.
        bool in_const[3] = {false, false, false};
        bool in_val[3] = {false, false, false};
        GateId in_gate[3] = {kNoGate, kNoGate, kNoGate};
        int num_const = 0;
        for (int p = 0; p < n; p++) {
            Rewriter::Resolved r = rw.resolve(g.in[p]);
            in_const[p] = r.isConst;
            in_val[p] = r.value;
            in_gate[p] = r.gate;
            if (r.isConst)
                num_const++;
        }

        auto mkconst = [&](bool v) {
            rw.makeConstant(i, v);
            changed++;
        };
        auto mkalias = [&](GateId t) {
            rw.makeAlias(i, t);
            changed++;
        };
        auto mkcell = [&](CellType t, GateId a, GateId b = kNoGate,
                          GateId c = kNoGate) {
            rw.replaceCell(i, t, a, b, c);
            changed++;
        };

        // Sequential cells.
        if (g.type == CellType::DFF || g.type == CellType::DFFE) {
            bool has_en = g.type == CellType::DFFE;
            if (in_const[0] && in_val[0] == g.resetValue) {
                // D is the reset value: Q can never change.
                mkconst(g.resetValue);
            } else if (has_en && in_const[1] && !in_val[1]) {
                // Enable tied low: Q holds the reset value forever.
                mkconst(g.resetValue);
            } else if (has_en && in_const[1] && in_val[1]) {
                mkcell(CellType::DFF, g.in[0]);
            }
            continue;
        }

        // Fully constant combinational gates fold outright.
        if (num_const == n && n > 0) {
            Logic in[3];
            for (int p = 0; p < n; p++)
                in[p] = logicOf(in_val[p]);
            Logic out = evalCell(g.type, in);
            bespoke_assert(out != Logic::X);
            mkconst(out == Logic::One);
            continue;
        }

        switch (g.type) {
          case CellType::INV:
            if (in_const[0])
                mkconst(!in_val[0]);
            break;
          case CellType::BUF:
            mkalias(g.in[0]);
            break;
          case CellType::AND2:
            if ((in_const[0] && !in_val[0]) ||
                (in_const[1] && !in_val[1])) {
                mkconst(false);
            } else if (in_const[0]) {
                mkalias(g.in[1]);
            } else if (in_const[1]) {
                mkalias(g.in[0]);
            } else if (in_gate[0] == in_gate[1]) {
                mkalias(g.in[0]);
            }
            break;
          case CellType::OR2:
            if ((in_const[0] && in_val[0]) ||
                (in_const[1] && in_val[1])) {
                mkconst(true);
            } else if (in_const[0]) {
                mkalias(g.in[1]);
            } else if (in_const[1]) {
                mkalias(g.in[0]);
            } else if (in_gate[0] == in_gate[1]) {
                mkalias(g.in[0]);
            }
            break;
          case CellType::NAND2:
            if ((in_const[0] && !in_val[0]) ||
                (in_const[1] && !in_val[1])) {
                mkconst(true);
            } else if (in_const[0]) {
                mkcell(CellType::INV, g.in[1]);
            } else if (in_const[1]) {
                mkcell(CellType::INV, g.in[0]);
            } else if (in_gate[0] == in_gate[1]) {
                mkcell(CellType::INV, g.in[0]);
            }
            break;
          case CellType::NOR2:
            if ((in_const[0] && in_val[0]) ||
                (in_const[1] && in_val[1])) {
                mkconst(false);
            } else if (in_const[0]) {
                mkcell(CellType::INV, g.in[1]);
            } else if (in_const[1]) {
                mkcell(CellType::INV, g.in[0]);
            } else if (in_gate[0] == in_gate[1]) {
                mkcell(CellType::INV, g.in[0]);
            }
            break;
          case CellType::XOR2:
            if (in_const[0]) {
                if (in_val[0])
                    mkcell(CellType::INV, g.in[1]);
                else
                    mkalias(g.in[1]);
            } else if (in_const[1]) {
                if (in_val[1])
                    mkcell(CellType::INV, g.in[0]);
                else
                    mkalias(g.in[0]);
            } else if (in_gate[0] == in_gate[1]) {
                mkconst(false);
            }
            break;
          case CellType::XNOR2:
            if (in_const[0]) {
                if (in_val[0])
                    mkalias(g.in[1]);
                else
                    mkcell(CellType::INV, g.in[1]);
            } else if (in_const[1]) {
                if (in_val[1])
                    mkalias(g.in[0]);
                else
                    mkcell(CellType::INV, g.in[0]);
            } else if (in_gate[0] == in_gate[1]) {
                mkconst(true);
            }
            break;
          case CellType::AND3:
          case CellType::OR3:
          case CellType::NAND3:
          case CellType::NOR3: {
            bool is_and = g.type == CellType::AND3 ||
                          g.type == CellType::NAND3;
            bool inverting = g.type == CellType::NAND3 ||
                             g.type == CellType::NOR3;
            bool absorbing = !is_and;  // OR absorbs 1, AND absorbs 0
            // Absorbing constant present?
            bool absorbed = false;
            for (int p = 0; p < 3; p++) {
                if (in_const[p] && in_val[p] == absorbing)
                    absorbed = true;
            }
            if (absorbed) {
                mkconst(inverting ? !absorbing : absorbing);
                break;
            }
            // Drop identity constants.
            GateId live[3];
            int m = 0;
            for (int p = 0; p < 3; p++) {
                if (!in_const[p])
                    live[m++] = g.in[p];
            }
            if (m == 2) {
                CellType two = is_and
                                   ? (inverting ? CellType::NAND2
                                                : CellType::AND2)
                                   : (inverting ? CellType::NOR2
                                                : CellType::OR2);
                mkcell(two, live[0], live[1]);
            } else if (m == 1) {
                if (inverting)
                    mkcell(CellType::INV, live[0]);
                else
                    mkalias(live[0]);
            }
            break;
          }
          case CellType::MUX2:
            // in0 = a0, in1 = a1, in2 = sel
            if (in_const[2]) {
                mkalias(in_val[2] ? g.in[1] : g.in[0]);
            } else if (in_gate[0] == in_gate[1] && !in_const[0] &&
                       !in_const[1]) {
                mkalias(g.in[0]);
            } else if (in_const[0] && in_const[1]) {
                if (in_val[0] == in_val[1]) {
                    mkconst(in_val[0]);
                } else if (!in_val[0] && in_val[1]) {
                    mkalias(g.in[2]);  // sel ? 1 : 0 == sel
                } else {
                    mkcell(CellType::INV, g.in[2]);
                }
            } else if (in_const[0] && !in_val[0]) {
                mkcell(CellType::AND2, g.in[2], g.in[1]);
            } else if (in_const[1] && in_val[1]) {
                mkcell(CellType::OR2, g.in[2], g.in[0]);
            }
            break;
          case CellType::AOI21:
            // !((in0 & in1) | in2)
            if (in_const[2] && in_val[2]) {
                mkconst(false);
            } else if (in_const[2]) {
                mkcell(CellType::NAND2, g.in[0], g.in[1]);
            } else if ((in_const[0] && !in_val[0]) ||
                       (in_const[1] && !in_val[1])) {
                mkcell(CellType::INV, g.in[2]);
            } else if (in_const[0] && in_val[0]) {
                mkcell(CellType::NOR2, g.in[1], g.in[2]);
            } else if (in_const[1] && in_val[1]) {
                mkcell(CellType::NOR2, g.in[0], g.in[2]);
            }
            break;
          case CellType::OAI21:
            // !((in0 | in1) & in2)
            if (in_const[2] && !in_val[2]) {
                mkconst(true);
            } else if (in_const[2]) {
                mkcell(CellType::NOR2, g.in[0], g.in[1]);
            } else if ((in_const[0] && in_val[0]) ||
                       (in_const[1] && in_val[1])) {
                mkcell(CellType::INV, g.in[2]);
            } else if (in_const[0] && !in_val[0]) {
                mkcell(CellType::NAND2, g.in[1], g.in[2]);
            } else if (in_const[1] && !in_val[1]) {
                mkcell(CellType::NAND2, g.in[0], g.in[2]);
            }
            break;
          default:
            break;
        }
    }
    return changed;
}

uint64_t
hashPassPipelineOptions(const PassPipelineOptions &opts)
{
    uint64_t h = 1469598103934665603ull;
    h = fnv64(h, opts.constantFold);
    h = fnv64(h, opts.moduleCut);
    h = fnv64(h, opts.rewriteSearch);
    h = fnv64(h, opts.clockGating);
    h = fnv64(h, opts.rewrite.minAdderWidth);
    h = fnvDouble(h, opts.rewrite.lambdaUWPerPs);
    h = fnvDouble(h, opts.rewrite.minGainFraction);
    h = fnvDouble(h, opts.gating.maxDuty);
    h = fnv64(h, opts.gating.minBankBits);
    h = fnvDouble(h, opts.gating.icgFlopEquivalents);
    h = fnv64(h, opts.satNeverToggle);
    h = fnv64(h, static_cast<uint64_t>(opts.sat.depth));
    h = fnv64(h, opts.sat.conflictBudget);
    h = fnv64(h, opts.sat.romMux);
    h = fnv64(h, opts.sat.induction);
    // sat.threads is deliberately NOT hashed: the prover's verdicts
    // are bit-identical at any thread count, so checkpoints produced
    // at different --sat-threads values are interchangeable.
    return h;
}

bool
parsePassList(const std::string &list, PassPipelineOptions *opts,
              std::string *err)
{
    // Pass selection always starts from the default configuration;
    // only the knob sub-structs carry over from the caller's struct.
    opts->constantFold = true;
    opts->rewriteSearch = false;
    opts->clockGating = false;
    opts->satNeverToggle = false;
    size_t pos = 0;
    while (pos <= list.size()) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos)
            comma = list.size();
        std::string name = list.substr(pos, comma - pos);
        // Trim surrounding blanks.
        while (!name.empty() && name.front() == ' ')
            name.erase(name.begin());
        while (!name.empty() && name.back() == ' ')
            name.pop_back();
        if (name.empty() || name == "default") {
            // Keep current settings.
        } else if (name == "none") {
            opts->constantFold = false;
        } else if (name == "constant-fold") {
            opts->constantFold = true;
        } else if (name == "rewrite-search") {
            opts->rewriteSearch = true;
        } else if (name == "clock-gating") {
            opts->clockGating = true;
        } else if (name == "sat-never-toggle" ||
                   name == "sat_never_toggle") {
            opts->satNeverToggle = true;
        } else if (name == "all") {
            opts->constantFold = true;
            opts->rewriteSearch = true;
            opts->clockGating = true;
        } else {
            if (err)
                *err = "unknown pass '" + name + "'";
            return false;
        }
        pos = comma + 1;
    }
    return true;
}

Netlist
runTailorPipeline(const Netlist &src, const ActivityTracker *activity,
                  const PassPipelineOptions &opts, const PassEnv &env,
                  CutStats *stats, PipelineReport *report)
{
    PassContext ctx(env);
    Netlist current = src;
    size_t cut_direct = 0;
    const TimingParams &timing = ctx.timing();
    const PowerParams &power = ctx.power();

    auto record = [&](const char *name, size_t changes,
                      size_t gates_before, double t0, double pb,
                      double db) {
        if (!report)
            return;
        PassStats st;
        st.name = name;
        st.changes = changes;
        st.gatesBefore = gates_before;
        st.gatesAfter = current.numCells();
        st.wallMs = nowMs() - t0;
        st.powerBeforeUW = pb;
        st.depthBeforePs = db;
        if (opts.collectMetrics) {
            snapshotMetrics(current, env, timing, power,
                            &st.powerAfterUW, &st.depthAfterPs);
        }
        report->passes.push_back(std::move(st));
    };
    auto before_metrics = [&](double *pb, double *db) {
        *pb = -1.0;
        *db = -1.0;
        if (report && opts.collectMetrics)
            snapshotMetrics(current, env, timing, power, pb, db);
    };

    // Cut pass: tie every gate the activity analysis proved
    // untoggleable (or, at module granularity, every gate of a fully
    // idle module) to its proven constant.
    if (activity) {
        bespoke_assert(&activity->netlist() == &src,
                       "activity tracker is for a different netlist");
        double pb, db;
        before_metrics(&pb, &db);
        double t0 = nowMs();
        size_t before_cells = current.numCells();
        Rewriter rw(current);
        if (!opts.moduleCut) {
            for (GateId i = 0; i < src.size(); i++) {
                const Gate &g = src.gate(i);
                if (cellPseudo(g.type))
                    continue;
                if (g.type == CellType::TIE0 ||
                    g.type == CellType::TIE1) {
                    continue;
                }
                if (!activity->toggled(i)) {
                    Logic v = activity->initialValue(i);
                    bespoke_assert(isKnown(v));
                    rw.makeConstant(i, knownValue(v));
                    cut_direct++;
                }
            }
        } else {
            bool module_used[kNumModules] = {};
            for (GateId i = 0; i < src.size(); i++) {
                const Gate &g = src.gate(i);
                if (cellPseudo(g.type) || g.type == CellType::TIE0 ||
                    g.type == CellType::TIE1) {
                    continue;
                }
                if (activity->toggled(i))
                    module_used[static_cast<int>(g.module)] = true;
            }
            for (GateId i = 0; i < src.size(); i++) {
                const Gate &g = src.gate(i);
                if (cellPseudo(g.type) || g.type == CellType::TIE0 ||
                    g.type == CellType::TIE1) {
                    continue;
                }
                if (!module_used[static_cast<int>(g.module)]) {
                    Logic v = activity->initialValue(i);
                    rw.makeConstant(i, v == Logic::One);
                    cut_direct++;
                }
            }
        }
        current = rw.compact().netlist;
        record(opts.moduleCut ? "cut-modules" : "cut-constants",
               cut_direct, before_cells, t0, pb, db);
    }

    // Constant folding + dead sweep to fixpoint (legacy re-synthesis;
    // bit-identical to the pre-pipeline flow by construction).
    if (opts.constantFold) {
        double pb, db;
        before_metrics(&pb, &db);
        double t0 = nowMs();
        size_t before_cells = current.numCells();
        size_t marks = resynthFixpoint(current);
        record("constant-fold", marks, before_cells, t0, pb, db);
    }

    // SAT never-toggle proving: exact recovery of cut opportunities
    // X-pessimism left behind. Runs before the rewrite search so
    // promoted constants shrink its search space.
    if (opts.satNeverToggle && env.program && env.measureActivity &&
        env.measureDuty)
    {
        double pb, db;
        before_metrics(&pb, &db);
        double t0 = nowMs();
        size_t before_cells = current.numCells();
        SatNeverTogglePass pass(opts.sat);
        ctx.bind(current);
        Rewriter rw(current);
        size_t n = pass.run(rw, ctx);
        if (n > 0) {
            current = rw.compact().netlist;
            current = sweepDead(current).netlist;
            ctx.invalidate();
        }
        if (report) {
            report->satCandidates = pass.candidates();
            report->satProven = pass.proven();
            report->satRefuted = pass.refuted();
            report->satUnknown = pass.unknown();
            const sat::NeverToggleStats &st = pass.stats();
            report->satConflicts = st.baseConflicts + st.stepConflicts;
            report->satPropagations = st.propagations;
            report->satLearned = st.learnedClauses;
            report->satKept = st.keptClauses;
            report->satReductions = st.dbReductions;
            report->satRestarts = st.restarts;
            report->satShards = st.shards;
        }
        // Promoted constants fold onward exactly like cut gates.
        if (opts.constantFold && n > 0)
            resynthFixpoint(current);
        record("sat-never-toggle", n, before_cells, t0, pb, db);
    }

    // Cost-driven datapath rewrite search.
    if (opts.rewriteSearch && env.measureActivity) {
        double pb, db;
        before_metrics(&pb, &db);
        double t0 = nowMs();
        size_t before_cells = current.numCells();
        RewriteSearchPass pass(opts.rewrite);
        ctx.bind(current);
        pass.prepare(current, ctx);
        ctx.invalidate();
        Rewriter rw(current);
        size_t n = pass.run(rw, ctx);
        if (n > 0) {
            current = rw.compact().netlist;
            if (pass.sweeps())
                current = sweepDead(current).netlist;
            ctx.invalidate();
        }
        pass.finish(current, ctx);
        if (report)
            report->rewrittenInstances = pass.rewritten();
        // Rebuilt blocks can fold against constant operands.
        if (opts.constantFold && n > 0)
            resynthFixpoint(current);
        record("rewrite-search", n, before_cells, t0, pb, db);
    }

    // Clock-gating planning: annotation only, netlist unchanged.
    if (opts.clockGating && env.measureDuty && report) {
        double pb, db;
        before_metrics(&pb, &db);
        double t0 = nowMs();
        size_t before_cells = current.numCells();
        std::vector<EnableBank> banks = enumerateEnableBanks(current);
        size_t gated = 0;
        if (!banks.empty()) {
            std::vector<GateId> ids;
            for (const EnableBank &b : banks)
                ids.push_back(b.enable);
            std::vector<uint64_t> high;
            uint64_t cycles = 0;
            env.measureDuty(current, ids, &high, &cycles);
            if (cycles > 0) {
                report->gating = planClockGating(banks, high, cycles,
                                                opts.gating, power);
                gated = report->gating.banks.size();
            }
        }
        record("clock-gating", gated, before_cells, t0, pb, db);
    }

    current.validate();
    if (stats) {
        stats->gatesBefore = src.numCells();
        stats->gatesCutDirect = cut_direct;
        stats->gatesAfter = current.numCells();
    }
    return current;
}

} // namespace bespoke
