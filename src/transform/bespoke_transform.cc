#include "src/transform/bespoke_transform.hh"

#include "src/util/logging.hh"

namespace bespoke
{

namespace
{

/**
 * One constant-propagation / simplification sweep. Returns the number
 * of gates changed. Operates in topological-ish order by iterating
 * until quiescent within the pass (resolve() chases chains, so order
 * only affects how many outer iterations are needed).
 */
size_t
constantPass(Rewriter &rw)
{
    const Netlist &nl = rw.source();
    size_t changed = 0;

    for (GateId i = 0; i < nl.size(); i++) {
        const Gate &g = nl.gate(i);
        if (cellPseudo(g.type) || rw.isDropped(i) ||
            rw.hasReplacement(i)) {
            continue;
        }
        if (g.type == CellType::TIE0 || g.type == CellType::TIE1)
            continue;

        int n = g.numInputs();
        // Resolve inputs through prior marks.
        bool in_const[3] = {false, false, false};
        bool in_val[3] = {false, false, false};
        GateId in_gate[3] = {kNoGate, kNoGate, kNoGate};
        int num_const = 0;
        for (int p = 0; p < n; p++) {
            Rewriter::Resolved r = rw.resolve(g.in[p]);
            in_const[p] = r.isConst;
            in_val[p] = r.value;
            in_gate[p] = r.gate;
            if (r.isConst)
                num_const++;
        }

        auto mkconst = [&](bool v) {
            rw.makeConstant(i, v);
            changed++;
        };
        auto mkalias = [&](GateId t) {
            rw.makeAlias(i, t);
            changed++;
        };
        auto mkcell = [&](CellType t, GateId a, GateId b = kNoGate,
                          GateId c = kNoGate) {
            rw.replaceCell(i, t, a, b, c);
            changed++;
        };

        // Sequential cells.
        if (g.type == CellType::DFF || g.type == CellType::DFFE) {
            bool has_en = g.type == CellType::DFFE;
            if (in_const[0] && in_val[0] == g.resetValue) {
                // D is the reset value: Q can never change.
                mkconst(g.resetValue);
            } else if (has_en && in_const[1] && !in_val[1]) {
                // Enable tied low: Q holds the reset value forever.
                mkconst(g.resetValue);
            } else if (has_en && in_const[1] && in_val[1]) {
                mkcell(CellType::DFF, g.in[0]);
            }
            continue;
        }

        // Fully constant combinational gates fold outright.
        if (num_const == n && n > 0) {
            Logic in[3];
            for (int p = 0; p < n; p++)
                in[p] = logicOf(in_val[p]);
            Logic out = evalCell(g.type, in);
            bespoke_assert(out != Logic::X);
            mkconst(out == Logic::One);
            continue;
        }

        switch (g.type) {
          case CellType::INV:
            if (in_const[0])
                mkconst(!in_val[0]);
            break;
          case CellType::BUF:
            mkalias(g.in[0]);
            break;
          case CellType::AND2:
            if ((in_const[0] && !in_val[0]) ||
                (in_const[1] && !in_val[1])) {
                mkconst(false);
            } else if (in_const[0]) {
                mkalias(g.in[1]);
            } else if (in_const[1]) {
                mkalias(g.in[0]);
            } else if (in_gate[0] == in_gate[1]) {
                mkalias(g.in[0]);
            }
            break;
          case CellType::OR2:
            if ((in_const[0] && in_val[0]) ||
                (in_const[1] && in_val[1])) {
                mkconst(true);
            } else if (in_const[0]) {
                mkalias(g.in[1]);
            } else if (in_const[1]) {
                mkalias(g.in[0]);
            } else if (in_gate[0] == in_gate[1]) {
                mkalias(g.in[0]);
            }
            break;
          case CellType::NAND2:
            if ((in_const[0] && !in_val[0]) ||
                (in_const[1] && !in_val[1])) {
                mkconst(true);
            } else if (in_const[0]) {
                mkcell(CellType::INV, g.in[1]);
            } else if (in_const[1]) {
                mkcell(CellType::INV, g.in[0]);
            } else if (in_gate[0] == in_gate[1]) {
                mkcell(CellType::INV, g.in[0]);
            }
            break;
          case CellType::NOR2:
            if ((in_const[0] && in_val[0]) ||
                (in_const[1] && in_val[1])) {
                mkconst(false);
            } else if (in_const[0]) {
                mkcell(CellType::INV, g.in[1]);
            } else if (in_const[1]) {
                mkcell(CellType::INV, g.in[0]);
            } else if (in_gate[0] == in_gate[1]) {
                mkcell(CellType::INV, g.in[0]);
            }
            break;
          case CellType::XOR2:
            if (in_const[0]) {
                if (in_val[0])
                    mkcell(CellType::INV, g.in[1]);
                else
                    mkalias(g.in[1]);
            } else if (in_const[1]) {
                if (in_val[1])
                    mkcell(CellType::INV, g.in[0]);
                else
                    mkalias(g.in[0]);
            } else if (in_gate[0] == in_gate[1]) {
                mkconst(false);
            }
            break;
          case CellType::XNOR2:
            if (in_const[0]) {
                if (in_val[0])
                    mkalias(g.in[1]);
                else
                    mkcell(CellType::INV, g.in[1]);
            } else if (in_const[1]) {
                if (in_val[1])
                    mkalias(g.in[0]);
                else
                    mkcell(CellType::INV, g.in[0]);
            } else if (in_gate[0] == in_gate[1]) {
                mkconst(true);
            }
            break;
          case CellType::AND3:
          case CellType::OR3:
          case CellType::NAND3:
          case CellType::NOR3: {
            bool is_and = g.type == CellType::AND3 ||
                          g.type == CellType::NAND3;
            bool inverting = g.type == CellType::NAND3 ||
                             g.type == CellType::NOR3;
            bool absorbing = !is_and;  // OR absorbs 1, AND absorbs 0
            // Absorbing constant present?
            bool absorbed = false;
            for (int p = 0; p < 3; p++) {
                if (in_const[p] && in_val[p] == absorbing)
                    absorbed = true;
            }
            if (absorbed) {
                mkconst(inverting ? !absorbing : absorbing);
                break;
            }
            // Drop identity constants.
            GateId live[3];
            int m = 0;
            for (int p = 0; p < 3; p++) {
                if (!in_const[p])
                    live[m++] = g.in[p];
            }
            if (m == 2) {
                CellType two = is_and
                                   ? (inverting ? CellType::NAND2
                                                : CellType::AND2)
                                   : (inverting ? CellType::NOR2
                                                : CellType::OR2);
                mkcell(two, live[0], live[1]);
            } else if (m == 1) {
                if (inverting)
                    mkcell(CellType::INV, live[0]);
                else
                    mkalias(live[0]);
            }
            break;
          }
          case CellType::MUX2:
            // in0 = a0, in1 = a1, in2 = sel
            if (in_const[2]) {
                mkalias(in_val[2] ? g.in[1] : g.in[0]);
            } else if (in_gate[0] == in_gate[1] && !in_const[0] &&
                       !in_const[1]) {
                mkalias(g.in[0]);
            } else if (in_const[0] && in_const[1]) {
                if (in_val[0] == in_val[1]) {
                    mkconst(in_val[0]);
                } else if (!in_val[0] && in_val[1]) {
                    mkalias(g.in[2]);  // sel ? 1 : 0 == sel
                } else {
                    mkcell(CellType::INV, g.in[2]);
                }
            } else if (in_const[0] && !in_val[0]) {
                mkcell(CellType::AND2, g.in[2], g.in[1]);
            } else if (in_const[1] && in_val[1]) {
                mkcell(CellType::OR2, g.in[2], g.in[0]);
            }
            break;
          case CellType::AOI21:
            // !((in0 & in1) | in2)
            if (in_const[2] && in_val[2]) {
                mkconst(false);
            } else if (in_const[2]) {
                mkcell(CellType::NAND2, g.in[0], g.in[1]);
            } else if ((in_const[0] && !in_val[0]) ||
                       (in_const[1] && !in_val[1])) {
                mkcell(CellType::INV, g.in[2]);
            } else if (in_const[0] && in_val[0]) {
                mkcell(CellType::NOR2, g.in[1], g.in[2]);
            } else if (in_const[1] && in_val[1]) {
                mkcell(CellType::NOR2, g.in[0], g.in[2]);
            }
            break;
          case CellType::OAI21:
            // !((in0 | in1) & in2)
            if (in_const[2] && !in_val[2]) {
                mkconst(true);
            } else if (in_const[2]) {
                mkcell(CellType::NOR2, g.in[0], g.in[1]);
            } else if ((in_const[0] && in_val[0]) ||
                       (in_const[1] && in_val[1])) {
                mkcell(CellType::INV, g.in[2]);
            } else if (in_const[0] && !in_val[0]) {
                mkcell(CellType::NAND2, g.in[1], g.in[2]);
            } else if (in_const[1] && !in_val[1]) {
                mkcell(CellType::NAND2, g.in[0], g.in[2]);
            }
            break;
          default:
            break;
        }
    }
    return changed;
}

} // namespace

Netlist
resynthesize(const Netlist &src)
{
    Netlist current = src;  // working copy
    while (true) {
        size_t before = current.numCells();
        // Constant propagation to local fixpoint.
        {
            Rewriter rw(current);
            size_t total = 0;
            while (true) {
                size_t c = constantPass(rw);
                total += c;
                if (c == 0)
                    break;
            }
            if (total > 0)
                current = rw.compact().netlist;
        }
        // Remove logic that can no longer reach a port or flop.
        current = sweepDead(current).netlist;
        if (current.numCells() >= before)
            break;
    }
    current.validate();
    return current;
}

Netlist
cutAndStitch(const Netlist &src, const ActivityTracker &activity,
             CutStats *stats)
{
    bespoke_assert(&activity.netlist() == &src,
                   "activity tracker is for a different netlist");
    Rewriter rw(src);
    size_t cut = 0;
    for (GateId i = 0; i < src.size(); i++) {
        const Gate &g = src.gate(i);
        if (cellPseudo(g.type))
            continue;
        if (g.type == CellType::TIE0 || g.type == CellType::TIE1)
            continue;
        if (!activity.toggled(i)) {
            Logic v = activity.initialValue(i);
            bespoke_assert(isKnown(v));
            rw.makeConstant(i, knownValue(v));
            cut++;
        }
    }
    Netlist after_cut = rw.compact().netlist;
    Netlist result = resynthesize(after_cut);
    if (stats) {
        stats->gatesBefore = src.numCells();
        stats->gatesCutDirect = cut;
        stats->gatesAfter = result.numCells();
    }
    return result;
}

Netlist
cutWholeModules(const Netlist &src, const ActivityTracker &activity,
                CutStats *stats)
{
    bool module_used[kNumModules] = {};
    for (GateId i = 0; i < src.size(); i++) {
        const Gate &g = src.gate(i);
        if (cellPseudo(g.type) || g.type == CellType::TIE0 ||
            g.type == CellType::TIE1) {
            continue;
        }
        if (activity.toggled(i))
            module_used[static_cast<int>(g.module)] = true;
    }
    Rewriter rw(src);
    size_t cut = 0;
    for (GateId i = 0; i < src.size(); i++) {
        const Gate &g = src.gate(i);
        if (cellPseudo(g.type) || g.type == CellType::TIE0 ||
            g.type == CellType::TIE1) {
            continue;
        }
        if (!module_used[static_cast<int>(g.module)]) {
            Logic v = activity.initialValue(i);
            rw.makeConstant(i, v == Logic::One);
            cut++;
        }
    }
    Netlist after_cut = rw.compact().netlist;
    Netlist result = resynthesize(after_cut);
    if (stats) {
        stats->gatesBefore = src.numCells();
        stats->gatesCutDirect = cut;
        stats->gatesAfter = result.numCells();
    }
    return result;
}

} // namespace bespoke
