#include "src/transform/bespoke_transform.hh"

#include "src/transform/pass_pipeline.hh"

namespace bespoke
{

// The historical entry points are thin wrappers over the pass pipeline
// (src/transform/pass_pipeline): the default pipeline configuration is
// the exact cut + constant-fold + dead-sweep fixpoint these functions
// always ran, so existing callers and baselines are unaffected.

Netlist
resynthesize(const Netlist &src)
{
    PassPipelineOptions opts;
    PassEnv env;
    return runTailorPipeline(src, nullptr, opts, env);
}

Netlist
cutAndStitch(const Netlist &src, const ActivityTracker &activity,
             CutStats *stats)
{
    PassPipelineOptions opts;
    PassEnv env;
    return runTailorPipeline(src, &activity, opts, env, stats);
}

Netlist
cutWholeModules(const Netlist &src, const ActivityTracker &activity,
                CutStats *stats)
{
    PassPipelineOptions opts;
    opts.moduleCut = true;
    PassEnv env;
    return runTailorPipeline(src, &activity, opts, env, stats);
}

} // namespace bespoke
