/**
 * @file
 * The tailoring pass pipeline: cutting & stitching, re-synthesis, the
 * cost-driven datapath rewrite search, and clock-gating planning, as a
 * configurable sequence of TransformPass stages over one working
 * netlist.
 *
 * The default configuration (constant folding only) reproduces the
 * original monolithic cutAndStitch()/resynthesize() flow bit-
 * identically: the fixpoint group below runs the exact same mark /
 * compact / sweep sequence the monolith ran, so every committed bench
 * baseline is unchanged until the optional passes are switched on.
 *
 * Optional passes:
 *  - rewrite-search: for every recorded DatapathInstance (adders, mux
 *    trees; see NetBuilder), enumerate alternative microarchitectures
 *    (ripple / carry-lookahead / carry-select; LSB-first / MSB-first
 *    mux pairing), score each candidate with
 *        cost = power(activity, vmin(depth)) +
 *               lambda x max(0, depth - clock budget)
 *    and commit the argmin when it strictly beats the current shape.
 *    Functional equivalence is structural (all shapes compute the same
 *    words) and additionally pinned by the flow's --verify equivalence
 *    check on every emitted design.
 *  - clock-gating: plan ICGs for DFFE banks with rare write enables
 *    (src/gating/clock_gating.hh); annotation-only, the netlist is
 *    unchanged.
 *  - sat-never-toggle: prove, by CDCL k-induction over the unrolled
 *    design (src/sat/never_toggle.hh), that gates the X-propagating
 *    activity analysis left toggleable can in fact never leave their
 *    observed constant value; proven gates are promoted into the cut
 *    set. Needs the program image (PassEnv::program) and an activity
 *    provider; skipped (zero-change) without them.
 */

#ifndef BESPOKE_TRANSFORM_PASS_PIPELINE_HH
#define BESPOKE_TRANSFORM_PASS_PIPELINE_HH

#include <algorithm>
#include <string>
#include <utility>

#include "src/gating/clock_gating.hh"
#include "src/transform/bespoke_transform.hh"
#include "src/transform/pass.hh"

namespace bespoke
{

/** Knobs of the cost-driven datapath rewrite search. */
struct RewriteSearchOptions
{
    /** Ignore adder instances narrower than this. */
    size_t minAdderWidth = 8;
    /** Cost penalty (µW per ps) for exceeding the clock budget. */
    double lambdaUWPerPs = 1.0;
    /** Commit only when the winner is at least this fraction cheaper. */
    double minGainFraction = 1e-3;
};

/**
 * One λ-independent (instance, variant) rewrite score. λ never enters
 * the expensive scratch-netlist rebuild: the cost at any λ recombines
 * from the cached pair as
 *     cost(λ) = powerTermUW + λ x max(0, criticalPs - period)
 * so a λ-sweep costs one scoring pass plus O(#entries) arithmetic per
 * λ value (bench/resynth_cost was quadratic here before).
 */
struct RewriteVariantScore
{
    size_t inst = 0;         ///< index into netlist instances()
    uint8_t variant = 0;
    bool isCurrent = false;  ///< the instance's existing shape
    /** Activity-weighted power of the rebuilt design at vmin, µW. */
    double powerTermUW = 0.0;
    /** Critical path of the rebuilt design, ps. */
    double criticalPs = 0.0;
};

/** Cost of one cached entry at a given λ and clock budget. */
inline double
rewriteCostAt(const RewriteVariantScore &s, double lambda_uw_per_ps,
              double period_ps)
{
    return s.powerTermUW +
           lambda_uw_per_ps * std::max(0.0, s.criticalPs - period_ps);
}

/**
 * Score every enumerable (instance, variant) pair of `nl` once.
 * Entries come out grouped by instance in instance-table order. `ctx`
 * must be bound to `nl` (densities and timing are read from it);
 * opts.lambdaUWPerPs is ignored — λ only enters at recombination time.
 */
std::vector<RewriteVariantScore>
scoreRewriteCandidates(const Netlist &nl, PassContext &ctx,
                       const RewriteSearchOptions &opts);

/**
 * Re-combine cached scores at one λ: the (instance, variant) winners
 * that strictly beat the instance's current shape by at least
 * opts.minGainFraction — exactly the commit rule the rewrite-search
 * pass applies.
 */
std::vector<std::pair<size_t, uint8_t>>
rewriteDecisionsAtLambda(const std::vector<RewriteVariantScore> &scores,
                         const RewriteSearchOptions &opts,
                         double period_ps);

/** Knobs of the SAT never-toggle proving pass. */
struct SatNeverToggleOptions
{
    /**
     * Unrolling depth in frames. 0 = auto: the flow resolves it to the
     * activity analysis's full cycle horizon, making the bounded SAT
     * proof cover exactly the envelope the X-analysis proves its own
     * constants over. The pass is skipped if 0 reaches it unresolved.
     */
    int depth = 0;
    /** Per-query CDCL conflict budget (0 = unlimited). */
    uint64_t conflictBudget = 50000;
    /** Exact ROM mux for symbolic-address reads. */
    bool romMux = true;
    /** Require an unbounded k-induction proof on top of the bounded
     *  envelope proof (rarely succeeds; see src/sat/never_toggle.hh). */
    bool induction = false;
    /** Worker threads for the prover's sharded candidate partition
     *  (1 = serial, 0 = all hardware threads). Verdicts are identical
     *  at any value, so this is NOT part of the checkpoint hash. */
    int threads = 1;
};

/** Which passes run, and their knobs. */
struct PassPipelineOptions
{
    /** Constant propagation + dead sweep to fixpoint (the legacy
     *  re-synthesis loop). Off only for tests. */
    bool constantFold = true;
    /** Cut at module granularity instead of per gate (Fig. 12). */
    bool moduleCut = false;
    bool rewriteSearch = false;
    bool clockGating = false;
    bool satNeverToggle = false;
    /** Collect per-pass power/depth numbers (costs extra analyses). */
    bool collectMetrics = false;
    RewriteSearchOptions rewrite;
    ClockGatingOptions gating;
    SatNeverToggleOptions sat;
};

/** Hash of every behavior-relevant pipeline option (checkpoint keys). */
uint64_t hashPassPipelineOptions(const PassPipelineOptions &opts);

/**
 * Parse a comma-separated pass list into options: "default" (or "")
 * = constant folding only; names "constant-fold", "rewrite-search",
 * "clock-gating", "sat-never-toggle" (alias "sat_never_toggle") enable
 * individual passes; "all" enables every cost-driven pass but NOT the
 * SAT pass, which stays opt-in (solver time is unbounded in principle
 * and existing "all" baselines must not shift). Unknown names fail
 * with *err set. Parsed lists always start from the default
 * configuration (constant folding stays on unless the list is exactly
 * "none").
 */
bool parsePassList(const std::string &list, PassPipelineOptions *opts,
                   std::string *err);

/** What the pipeline did, for reports and the tailor CLI. */
struct PipelineReport
{
    std::vector<PassStats> passes;
    /** Datapath instances whose shape the rewrite search changed. */
    size_t rewrittenInstances = 0;
    /** Clock-gating plan (empty unless the pass ran). */
    ClockGatingReport gating;
    /** SAT never-toggle pass outcome (zero unless the pass ran). */
    size_t satCandidates = 0;
    size_t satProven = 0;
    size_t satRefuted = 0;
    size_t satUnknown = 0;
    /** Solver-side observability, summed over the prover's candidate
     *  shards (thread-count-independent, like the verdicts). */
    uint64_t satConflicts = 0;
    uint64_t satPropagations = 0;
    uint64_t satLearned = 0;      ///< learned clauses ever recorded
    uint64_t satKept = 0;         ///< learned clauses live at the end
    uint64_t satReductions = 0;   ///< clause-database reductions
    uint64_t satRestarts = 0;
    size_t satShards = 0;         ///< candidate partition size
};

/**
 * One constant-propagation / simplification sweep over the rewriter's
 * source netlist; returns the number of gates changed. The body of the
 * ConstantFoldPass, exposed for the fixpoint driver and tests.
 */
size_t constantFoldOnce(Rewriter &rw);

/**
 * Run the tailoring pipeline. `activity` selects the cut pass (null =
 * re-synthesis only, e.g. for already-cut or imported designs); the
 * env's providers feed the optional cost-driven passes. Stats and the
 * report are optional outputs.
 */
Netlist runTailorPipeline(const Netlist &src,
                          const ActivityTracker *activity,
                          const PassPipelineOptions &opts,
                          const PassEnv &env, CutStats *stats = nullptr,
                          PipelineReport *report = nullptr);

} // namespace bespoke

#endif // BESPOKE_TRANSFORM_PASS_PIPELINE_HH
