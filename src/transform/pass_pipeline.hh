/**
 * @file
 * The tailoring pass pipeline: cutting & stitching, re-synthesis, the
 * cost-driven datapath rewrite search, and clock-gating planning, as a
 * configurable sequence of TransformPass stages over one working
 * netlist.
 *
 * The default configuration (constant folding only) reproduces the
 * original monolithic cutAndStitch()/resynthesize() flow bit-
 * identically: the fixpoint group below runs the exact same mark /
 * compact / sweep sequence the monolith ran, so every committed bench
 * baseline is unchanged until the optional passes are switched on.
 *
 * Optional passes:
 *  - rewrite-search: for every recorded DatapathInstance (adders, mux
 *    trees; see NetBuilder), enumerate alternative microarchitectures
 *    (ripple / carry-lookahead / carry-select; LSB-first / MSB-first
 *    mux pairing), score each candidate with
 *        cost = power(activity, vmin(depth)) +
 *               lambda x max(0, depth - clock budget)
 *    and commit the argmin when it strictly beats the current shape.
 *    Functional equivalence is structural (all shapes compute the same
 *    words) and additionally pinned by the flow's --verify equivalence
 *    check on every emitted design.
 *  - clock-gating: plan ICGs for DFFE banks with rare write enables
 *    (src/gating/clock_gating.hh); annotation-only, the netlist is
 *    unchanged.
 *  - sat-never-toggle: prove, by CDCL k-induction over the unrolled
 *    design (src/sat/never_toggle.hh), that gates the X-propagating
 *    activity analysis left toggleable can in fact never leave their
 *    observed constant value; proven gates are promoted into the cut
 *    set. Needs the program image (PassEnv::program) and an activity
 *    provider; skipped (zero-change) without them.
 */

#ifndef BESPOKE_TRANSFORM_PASS_PIPELINE_HH
#define BESPOKE_TRANSFORM_PASS_PIPELINE_HH

#include <string>

#include "src/gating/clock_gating.hh"
#include "src/transform/bespoke_transform.hh"
#include "src/transform/pass.hh"

namespace bespoke
{

/** Knobs of the cost-driven datapath rewrite search. */
struct RewriteSearchOptions
{
    /** Ignore adder instances narrower than this. */
    size_t minAdderWidth = 8;
    /** Cost penalty (µW per ps) for exceeding the clock budget. */
    double lambdaUWPerPs = 1.0;
    /** Commit only when the winner is at least this fraction cheaper. */
    double minGainFraction = 1e-3;
};

/** Knobs of the SAT never-toggle proving pass. */
struct SatNeverToggleOptions
{
    /**
     * Unrolling depth in frames. 0 = auto: the flow resolves it to the
     * activity analysis's full cycle horizon, making the bounded SAT
     * proof cover exactly the envelope the X-analysis proves its own
     * constants over. The pass is skipped if 0 reaches it unresolved.
     */
    int depth = 0;
    /** Per-query CDCL conflict budget (0 = unlimited). */
    uint64_t conflictBudget = 50000;
    /** Exact ROM mux for symbolic-address reads. */
    bool romMux = true;
    /** Require an unbounded k-induction proof on top of the bounded
     *  envelope proof (rarely succeeds; see src/sat/never_toggle.hh). */
    bool induction = false;
};

/** Which passes run, and their knobs. */
struct PassPipelineOptions
{
    /** Constant propagation + dead sweep to fixpoint (the legacy
     *  re-synthesis loop). Off only for tests. */
    bool constantFold = true;
    /** Cut at module granularity instead of per gate (Fig. 12). */
    bool moduleCut = false;
    bool rewriteSearch = false;
    bool clockGating = false;
    bool satNeverToggle = false;
    /** Collect per-pass power/depth numbers (costs extra analyses). */
    bool collectMetrics = false;
    RewriteSearchOptions rewrite;
    ClockGatingOptions gating;
    SatNeverToggleOptions sat;
};

/** Hash of every behavior-relevant pipeline option (checkpoint keys). */
uint64_t hashPassPipelineOptions(const PassPipelineOptions &opts);

/**
 * Parse a comma-separated pass list into options: "default" (or "")
 * = constant folding only; names "constant-fold", "rewrite-search",
 * "clock-gating", "sat-never-toggle" (alias "sat_never_toggle") enable
 * individual passes; "all" enables every cost-driven pass but NOT the
 * SAT pass, which stays opt-in (solver time is unbounded in principle
 * and existing "all" baselines must not shift). Unknown names fail
 * with *err set. Parsed lists always start from the default
 * configuration (constant folding stays on unless the list is exactly
 * "none").
 */
bool parsePassList(const std::string &list, PassPipelineOptions *opts,
                   std::string *err);

/** What the pipeline did, for reports and the tailor CLI. */
struct PipelineReport
{
    std::vector<PassStats> passes;
    /** Datapath instances whose shape the rewrite search changed. */
    size_t rewrittenInstances = 0;
    /** Clock-gating plan (empty unless the pass ran). */
    ClockGatingReport gating;
    /** SAT never-toggle pass outcome (zero unless the pass ran). */
    size_t satCandidates = 0;
    size_t satProven = 0;
    size_t satRefuted = 0;
    size_t satUnknown = 0;
};

/**
 * One constant-propagation / simplification sweep over the rewriter's
 * source netlist; returns the number of gates changed. The body of the
 * ConstantFoldPass, exposed for the fixpoint driver and tests.
 */
size_t constantFoldOnce(Rewriter &rw);

/**
 * Run the tailoring pipeline. `activity` selects the cut pass (null =
 * re-synthesis only, e.g. for already-cut or imported designs); the
 * env's providers feed the optional cost-driven passes. Stats and the
 * report are optional outputs.
 */
Netlist runTailorPipeline(const Netlist &src,
                          const ActivityTracker *activity,
                          const PassPipelineOptions &opts,
                          const PassEnv &env, CutStats *stats = nullptr,
                          PipelineReport *report = nullptr);

} // namespace bespoke

#endif // BESPOKE_TRANSFORM_PASS_PIPELINE_HH
