#include "src/transform/pass.hh"

#include "src/util/logging.hh"

namespace bespoke
{

void
PassContext::bind(const Netlist &nl)
{
    nl_ = &nl;
    invalidate();
}

void
PassContext::invalidate()
{
    activity_.reset();
    densities_.clear();
    timingQuery_.reset();
    periodPs_ = 0.0;
}

const Netlist &
PassContext::netlist() const
{
    bespoke_assert(nl_, "PassContext not bound to a netlist");
    return *nl_;
}

const TimingParams &
PassContext::timing() const
{
    static const TimingParams kDefault;
    return env_.timing ? *env_.timing : kDefault;
}

const PowerParams &
PassContext::power() const
{
    static const PowerParams kDefault;
    return env_.power ? *env_.power : kDefault;
}

const ToggleCounter &
PassContext::activity()
{
    bespoke_assert(hasActivity(),
                   "pass requires an activity provider in PassEnv");
    if (!activity_) {
        activity_.emplace(netlist());
        env_.measureActivity(netlist(), &*activity_);
    }
    return *activity_;
}

const std::vector<double> &
PassContext::densities()
{
    if (densities_.empty()) {
        const ToggleCounter &tc = activity();
        double cycles = static_cast<double>(tc.cycles());
        bespoke_assert(cycles > 0, "activity provider observed 0 cycles");
        densities_.resize(netlist().size());
        for (GateId i = 0; i < netlist().size(); i++)
            densities_[i] = static_cast<double>(tc.count(i)) / cycles;
    }
    return densities_;
}

double
PassContext::clockPeriodPs()
{
    if (periodPs_ > 0.0)
        return periodPs_;
    if (env_.clockPeriodPs > 0.0) {
        periodPs_ = env_.clockPeriodPs;
    } else {
        // The flow's convention: the original design's critical path
        // with a 2% margin defines the clock. Standalone pipelines
        // derive the budget from the netlist they were given.
        TimingReport rep = analyzeTiming(netlist(), timing());
        bespoke_assert(rep.criticalPathPs > 0,
                       "cannot derive a clock period from an empty design");
        periodPs_ = rep.criticalPathPs * 1.02;
    }
    return periodPs_;
}

const TimingQuery &
PassContext::timingQuery()
{
    if (!timingQuery_) {
        timingQuery_ = std::make_unique<TimingQuery>(
            netlist(), clockPeriodPs(), timing());
    }
    return *timingQuery_;
}

} // namespace bespoke
