/**
 * @file
 * Structural netlist builder: the repository's "synthesis front-end"
 * (DESIGN.md inventory item #4).
 *
 * The paper's flow starts from a gate-level netlist produced by a
 * commercial RTL synthesis tool; here the same role is played by a
 * structural builder that maps word-level constructs (buses, adders,
 * muxes, decoders, register banks) directly onto standard cells from
 * src/netlist/cell_library. Every emitted gate is labeled with the
 * builder's *current module* (setModule), which is what the paper's
 * per-module area/power breakdowns (Figs. 3, 4, 10, 11) and the
 * power-gating baseline (Fig. 15) aggregate over.
 *
 * Conventions:
 *  - A Bus is a plain vector of net ids, LSB-first: bus[0] is bit 0.
 *  - Multiplexer polarity follows the MUX2 cell: mux2(sel, a0, a1)
 *    yields a0 when sel=0 and a1 when sel=1; muxBus/muxTree likewise.
 *  - Datapath blocks are ripple-carry: gate count matters more than
 *    logic depth for the paper's area/power study, and the STA pass
 *    (src/timing) measures whatever depth results.
 *  - The builder only appends gates; feedback must go through flops
 *    (see the placeholder-binding pattern in src/cpu/bsp430.cc).
 */

#ifndef BESPOKE_BUILDER_NET_BUILDER_HH
#define BESPOKE_BUILDER_NET_BUILDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/netlist/netlist.hh"

namespace bespoke
{

/** A word-level signal: driving net ids, LSB-first. */
using Bus = std::vector<GateId>;

/**
 * Adder microarchitecture. Ripple is the default (minimum gate count;
 * see the file comment — the paper's study optimizes area, not speed).
 * CarryLookahead computes carries in 4-bit lookahead groups chained at
 * the group level: roughly half the logic depth of ripple on 16 bits
 * for ~1.4x the cells, for consumers that need the critical path down.
 * CarrySelect duplicates the sum logic of every 4-bit group past the
 * first for both possible carry-ins and picks the real future with a
 * mux chain: the carry path advances one mux per group, trading more
 * area than lookahead (~1.8x ripple) for mux-speed carries.
 */
enum class AdderKind : uint8_t
{
    Ripple,
    CarryLookahead,
    CarrySelect,
};

/**
 * Result of an addition-family block. `carries[i]` is the carry *out*
 * of bit position i (so byte-mode consumers read carries[7]);
 * `carryOut` equals carries.back(). For subtractor() the carry-out is
 * the *no-borrow* flag (1 iff a >= b), matching MSP430 SUB/CMP carry
 * semantics.
 */
struct AddResult
{
    Bus sum;
    Bus carries;
    GateId carryOut = kNoGate;
};

/**
 * Emits standard cells into a Netlist under a current module label.
 * Cheap value-semantics-free facade: holds only a reference to the
 * netlist plus the label, so generators may create several.
 */
class NetBuilder
{
  public:
    explicit NetBuilder(Netlist &netlist, Module module = Module::Glue)
        : nl_(netlist), module_(module)
    {}

    /** @name Module labeling */
    /// @{
    /** All subsequently emitted gates carry this module label. */
    void setModule(Module m) { module_ = m; }
    Module module() const { return module_; }
    /// @}

    /** @name Datapath configuration */
    /// @{
    /** Adder style used by adder()/subtractor() from now on. */
    void setAdderKind(AdderKind k) { adderKind_ = k; }
    AdderKind adderKind() const { return adderKind_; }
    /// @}

    /** @name Constants */
    /// @{
    /** Shared constant-0 driver for the current module. */
    GateId tie0() { return nl_.tie(false, module_); }
    /** Shared constant-1 driver for the current module. */
    GateId tie1() { return nl_.tie(true, module_); }
    /** `width`-bit constant; bit i of `value` drives bus[i]. */
    Bus busConst(uint32_t value, int width);
    /// @}

    /** @name Gate primitives */
    /// @{
    GateId buf(GateId a);
    GateId inv(GateId a);
    GateId and2(GateId a, GateId b);
    GateId and3(GateId a, GateId b, GateId c);
    GateId and4(GateId a, GateId b, GateId c, GateId d);
    GateId or2(GateId a, GateId b);
    GateId or3(GateId a, GateId b, GateId c);
    GateId or4(GateId a, GateId b, GateId c, GateId d);
    GateId nand2(GateId a, GateId b);
    GateId nand3(GateId a, GateId b, GateId c);
    GateId nor2(GateId a, GateId b);
    GateId nor3(GateId a, GateId b, GateId c);
    GateId xor2(GateId a, GateId b);
    GateId xnor2(GateId a, GateId b);
    /** out = !((a & b) | c) */
    GateId aoi21(GateId a, GateId b, GateId c);
    /** out = !((a | b) & c) */
    GateId oai21(GateId a, GateId b, GateId c);
    /** 2:1 mux: sel=0 -> a0, sel=1 -> a1. */
    GateId mux2(GateId sel, GateId a0, GateId a1);
    /// @}

    /** @name Ports */
    /// @{
    /** Primary-input bus named "name[0]".."name[width-1]". */
    Bus inputBus(const std::string &name, int width);
    /** Primary-output bus named "name[0]".."name[width-1]". */
    void outputBus(const std::string &name, const Bus &bus);
    /// @}

    /** @name Bitwise bus operations */
    /// @{
    Bus invBus(const Bus &a);
    Bus andBus(const Bus &a, const Bus &b);
    Bus orBus(const Bus &a, const Bus &b);
    Bus xorBus(const Bus &a, const Bus &b);
    /** AND every bit with `enable` (0 clears the whole bus). */
    Bus maskBus(const Bus &a, GateId enable);
    /** Truncate, or zero-extend with the module's tie0. */
    Bus resize(const Bus &a, int width);
    /// @}

    /** @name Bus rearrangement (pure wiring, no gates) */
    /// @{
    /** Bits [start, start+count) of `a`. */
    static Bus slice(const Bus &a, int start, int count);
    /** `lo` in the low bits, `hi` above it (LSB-first append). */
    static Bus concat(const Bus &lo, const Bus &hi);
    /// @}

    /** @name Datapath blocks */
    /// @{
    /**
     * Adder; operands must be the same width. The microarchitecture
     * follows adderKind() (ripple-carry by default); both kinds
     * produce the same sums, carries, and X-monotone behavior.
     */
    AddResult adder(const Bus &a, const Bus &b, GateId carryIn);
    /** a - b as a + ~b + 1; carryOut = no-borrow (a >= b). */
    AddResult subtractor(const Bus &a, const Bus &b);
    /** a + 1 (half-adder chain; ~2 cells/bit). */
    AddResult incrementer(const Bus &a);
    /** 1 iff a == b (equal widths required). */
    GateId equal(const Bus &a, const Bus &b);
    /** 1 iff a == value (value must fit in a's width). */
    GateId equalsConst(const Bus &a, uint32_t value);
    /** 1 iff every bit of a is 0. */
    GateId isZero(const Bus &a);
    /** OR-reduction of all bits. */
    GateId reduceOr(const Bus &a);
    /** AND-reduction of all bits. */
    GateId reduceAnd(const Bus &a);
    /** Per-bit 2:1 mux: sel=0 -> a0, sel=1 -> a1. */
    Bus muxBus(GateId sel, const Bus &a0, const Bus &a1);
    /**
     * N:1 mux over equal-width choices, `sel` binary (LSB-first).
     * The choice count need not be a power of two; a select value
     * >= choices.size() returns one of the existing choices
     * (unspecified which — callers must not rely on it).
     */
    Bus muxTree(const Bus &sel, const std::vector<Bus> &choices);
    /**
     * As above, but every select value >= choices.size() yields
     * `dflt` (the choice list is padded with it up to 2^sel.size()).
     */
    Bus muxTree(const Bus &sel, const std::vector<Bus> &choices,
                const Bus &dflt);
    /** Binary -> one-hot: 2^sel.size() outputs. */
    Bus decoder(const Bus &sel);
    /** Logical/funnel shift right by one; msbIn fills the top bit. */
    Bus shiftRight1(const Bus &a, GateId msbIn);
    /** Shift left by one; lsbIn fills bit 0. */
    Bus shiftLeft1(const Bus &a, GateId lsbIn);
    /// @}

    /** @name Sequential helpers */
    /// @{
    /** D flip-flop, loads every cycle. */
    GateId dff(GateId d, bool resetValue = false);
    /** Enabled flip-flop: enable low holds state. */
    GateId dffe(GateId d, GateId en, bool resetValue = false);
    /**
     * Bank of DFFEs sharing one enable; bit i of `resetValue` is the
     * reset value of bus[i]. Returns the Q bus.
     */
    Bus regBus(const Bus &d, GateId en, uint32_t resetValue);
    /** Bank of always-loading DFFs. Returns the Q bus. */
    Bus regBusAlways(const Bus &d, uint32_t resetValue);
    /// @}

    Netlist &netlist() { return nl_; }

  private:
    GateId emit(CellType type, GateId in0 = kNoGate,
                GateId in1 = kNoGate, GateId in2 = kNoGate);

    AddResult adderRipple(const Bus &a, const Bus &b, GateId carryIn);
    AddResult adderCla(const Bus &a, const Bus &b, GateId carryIn);
    AddResult adderCsel(const Bus &a, const Bus &b, GateId carryIn);

    Netlist &nl_;
    Module module_;
    AdderKind adderKind_ = AdderKind::Ripple;
};

} // namespace bespoke

#endif // BESPOKE_BUILDER_NET_BUILDER_HH
