#include "src/builder/net_builder.hh"

#include <algorithm>

#include "src/util/logging.hh"

namespace bespoke
{

GateId
NetBuilder::emit(CellType type, GateId in0, GateId in1, GateId in2)
{
    return nl_.addGate(type, module_, in0, in1, in2);
}

// ----------------------------------------------------------------------
// Constants
// ----------------------------------------------------------------------

Bus
NetBuilder::busConst(uint32_t value, int width)
{
    bespoke_assert(width > 0 && width <= 32);
    bespoke_assert(width == 32 || (value >> width) == 0,
                   "constant ", value, " does not fit in ", width,
                   " bits");
    Bus bus(static_cast<size_t>(width));
    for (int i = 0; i < width; i++)
        bus[static_cast<size_t>(i)] = (value >> i) & 1 ? tie1() : tie0();
    return bus;
}

// ----------------------------------------------------------------------
// Gate primitives
// ----------------------------------------------------------------------

GateId NetBuilder::buf(GateId a) { return emit(CellType::BUF, a); }
GateId NetBuilder::inv(GateId a) { return emit(CellType::INV, a); }

GateId
NetBuilder::and2(GateId a, GateId b)
{
    return emit(CellType::AND2, a, b);
}

GateId
NetBuilder::and3(GateId a, GateId b, GateId c)
{
    return emit(CellType::AND3, a, b, c);
}

GateId
NetBuilder::and4(GateId a, GateId b, GateId c, GateId d)
{
    return and2(and2(a, b), and2(c, d));
}

GateId
NetBuilder::or2(GateId a, GateId b)
{
    return emit(CellType::OR2, a, b);
}

GateId
NetBuilder::or3(GateId a, GateId b, GateId c)
{
    return emit(CellType::OR3, a, b, c);
}

GateId
NetBuilder::or4(GateId a, GateId b, GateId c, GateId d)
{
    return or2(or2(a, b), or2(c, d));
}

GateId
NetBuilder::nand2(GateId a, GateId b)
{
    return emit(CellType::NAND2, a, b);
}

GateId
NetBuilder::nand3(GateId a, GateId b, GateId c)
{
    return emit(CellType::NAND3, a, b, c);
}

GateId
NetBuilder::nor2(GateId a, GateId b)
{
    return emit(CellType::NOR2, a, b);
}

GateId
NetBuilder::nor3(GateId a, GateId b, GateId c)
{
    return emit(CellType::NOR3, a, b, c);
}

GateId
NetBuilder::xor2(GateId a, GateId b)
{
    return emit(CellType::XOR2, a, b);
}

GateId
NetBuilder::xnor2(GateId a, GateId b)
{
    return emit(CellType::XNOR2, a, b);
}

GateId
NetBuilder::aoi21(GateId a, GateId b, GateId c)
{
    return emit(CellType::AOI21, a, b, c);
}

GateId
NetBuilder::oai21(GateId a, GateId b, GateId c)
{
    return emit(CellType::OAI21, a, b, c);
}

GateId
NetBuilder::mux2(GateId sel, GateId a0, GateId a1)
{
    return emit(CellType::MUX2, a0, a1, sel);
}

// ----------------------------------------------------------------------
// Ports
// ----------------------------------------------------------------------

Bus
NetBuilder::inputBus(const std::string &name, int width)
{
    bespoke_assert(width > 0);
    Bus bus(static_cast<size_t>(width));
    for (int i = 0; i < width; i++) {
        bus[static_cast<size_t>(i)] =
            nl_.addInput(name + "[" + std::to_string(i) + "]", module_);
    }
    return bus;
}

void
NetBuilder::outputBus(const std::string &name, const Bus &bus)
{
    bespoke_assert(!bus.empty());
    for (size_t i = 0; i < bus.size(); i++) {
        nl_.addOutput(name + "[" + std::to_string(i) + "]", bus[i],
                      module_);
    }
}

// ----------------------------------------------------------------------
// Bitwise bus operations
// ----------------------------------------------------------------------

Bus
NetBuilder::invBus(const Bus &a)
{
    Bus out(a.size());
    for (size_t i = 0; i < a.size(); i++)
        out[i] = inv(a[i]);
    return out;
}

Bus
NetBuilder::andBus(const Bus &a, const Bus &b)
{
    bespoke_assert(a.size() == b.size());
    Bus out(a.size());
    for (size_t i = 0; i < a.size(); i++)
        out[i] = and2(a[i], b[i]);
    return out;
}

Bus
NetBuilder::orBus(const Bus &a, const Bus &b)
{
    bespoke_assert(a.size() == b.size());
    Bus out(a.size());
    for (size_t i = 0; i < a.size(); i++)
        out[i] = or2(a[i], b[i]);
    return out;
}

Bus
NetBuilder::xorBus(const Bus &a, const Bus &b)
{
    bespoke_assert(a.size() == b.size());
    Bus out(a.size());
    for (size_t i = 0; i < a.size(); i++)
        out[i] = xor2(a[i], b[i]);
    return out;
}

Bus
NetBuilder::maskBus(const Bus &a, GateId enable)
{
    Bus out(a.size());
    for (size_t i = 0; i < a.size(); i++)
        out[i] = and2(a[i], enable);
    return out;
}

Bus
NetBuilder::resize(const Bus &a, int width)
{
    bespoke_assert(width > 0);
    size_t w = static_cast<size_t>(width);
    if (w <= a.size())
        return Bus(a.begin(), a.begin() + static_cast<long>(w));
    Bus out = a;
    while (out.size() < w)
        out.push_back(tie0());
    return out;
}

// ----------------------------------------------------------------------
// Bus rearrangement
// ----------------------------------------------------------------------

Bus
NetBuilder::slice(const Bus &a, int start, int count)
{
    bespoke_assert(start >= 0 && count > 0 &&
                   static_cast<size_t>(start + count) <= a.size(),
                   "slice [", start, ", ", start + count,
                   ") of a ", a.size(), "-bit bus");
    return Bus(a.begin() + start, a.begin() + start + count);
}

Bus
NetBuilder::concat(const Bus &lo, const Bus &hi)
{
    Bus out = lo;
    out.insert(out.end(), hi.begin(), hi.end());
    return out;
}

// ----------------------------------------------------------------------
// Datapath blocks
// ----------------------------------------------------------------------

AddResult
NetBuilder::adder(const Bus &a, const Bus &b, GateId carryIn)
{
    bespoke_assert(!a.empty() && a.size() == b.size());
    AddResult r;
    switch (adderKind_) {
    case AdderKind::CarryLookahead:
        r = adderCla(a, b, carryIn);
        break;
    case AdderKind::CarrySelect:
        r = adderCsel(a, b, carryIn);
        break;
    default:
        r = adderRipple(a, b, carryIn);
        break;
    }
    DatapathInstance inst;
    inst.kind = InstanceKind::Adder;
    inst.module = module_;
    inst.variant = static_cast<uint8_t>(adderKind_);
    inst.shape = {static_cast<uint32_t>(a.size())};
    inst.inputs = a;
    inst.inputs.insert(inst.inputs.end(), b.begin(), b.end());
    inst.inputs.push_back(carryIn);
    inst.outputs = r.sum;
    inst.outputs.insert(inst.outputs.end(), r.carries.begin(),
                        r.carries.end());
    nl_.addInstance(std::move(inst));
    return r;
}

AddResult
NetBuilder::adderRipple(const Bus &a, const Bus &b, GateId carryIn)
{
    AddResult r;
    r.sum.resize(a.size());
    r.carries.resize(a.size());
    GateId carry = carryIn;
    for (size_t i = 0; i < a.size(); i++) {
        GateId p = xor2(a[i], b[i]);
        r.sum[i] = xor2(p, carry);
        // carry-out = a&b | p&carry (majority).
        carry = or2(and2(a[i], b[i]), and2(p, carry));
        r.carries[i] = carry;
    }
    r.carryOut = carry;
    return r;
}

AddResult
NetBuilder::adderCla(const Bus &a, const Bus &b, GateId carryIn)
{
    // Classic 4-bit-group carry lookahead, groups rippled: within a
    // group every carry is a two-level sum of products of the
    // propagate/generate terms and the group carry-in, so the carry
    // chain advances four bits per group hop instead of one per bit.
    size_t n = a.size();
    AddResult r;
    r.sum.resize(n);
    r.carries.resize(n);
    Bus p(n), g(n);
    for (size_t i = 0; i < n; i++) {
        p[i] = xor2(a[i], b[i]);
        g[i] = and2(a[i], b[i]);
    }
    GateId cin = carryIn;  // carry into the current group
    for (size_t base = 0; base < n; base += 4) {
        size_t k = std::min<size_t>(4, n - base);
        const GateId *gp = &g[base], *pp = &p[base];
        // c1 = g0 | p0 cin
        r.carries[base] = or2(gp[0], and2(pp[0], cin));
        if (k > 1) {
            // c2 = g1 | p1 g0 | p1 p0 cin
            r.carries[base + 1] =
                or3(gp[1], and2(pp[1], gp[0]),
                    and3(pp[1], pp[0], cin));
        }
        if (k > 2) {
            // c3 = g2 | p2 g1 | p2 p1 g0 | p2 p1 p0 cin
            r.carries[base + 2] =
                or4(gp[2], and2(pp[2], gp[1]),
                    and3(pp[2], pp[1], gp[0]),
                    and4(pp[2], pp[1], pp[0], cin));
        }
        if (k > 3) {
            // c4 = G | P cin with the group generate
            // G = g3 | p3 g2 | p3 p2 g1 | p3 p2 p1 g0 and the group
            // propagate P = p3 p2 p1 p0.
            GateId bigG =
                or4(gp[3], and2(pp[3], gp[2]),
                    and3(pp[3], pp[2], gp[1]),
                    and4(pp[3], pp[2], pp[1], gp[0]));
            GateId bigP = and4(pp[3], pp[2], pp[1], pp[0]);
            r.carries[base + 3] = or2(bigG, and2(bigP, cin));
        }
        // Sums use the lookahead carries, not a rippled chain.
        r.sum[base] = xor2(p[base], cin);
        for (size_t j = 1; j < k; j++)
            r.sum[base + j] = xor2(p[base + j], r.carries[base + j - 1]);
        cin = r.carries[base + k - 1];
    }
    r.carryOut = r.carries[n - 1];
    return r;
}

AddResult
NetBuilder::adderCsel(const Bus &a, const Bus &b, GateId carryIn)
{
    // Duplicated-sum carry select in 4-bit groups. The first group
    // ripples from the true carry-in; every later group ripples its
    // sums and carries twice, once assuming carry-in 0 and once
    // assuming carry-in 1 (sharing the propagate/generate terms), and
    // the previous group's resolved carry mux-selects the real future.
    // The resolved carry chain therefore advances one MUX2 per group
    // hop. X-monotonicity is inherited from the primitives: a known
    // select picks a fully computed branch, and MUX2 with an X select
    // still resolves when both speculative branches agree.
    size_t n = a.size();
    AddResult r;
    r.sum.resize(n);
    r.carries.resize(n);
    GateId cin = carryIn;  // resolved carry into the current group
    for (size_t base = 0; base < n; base += 4) {
        size_t k = std::min<size_t>(4, n - base);
        if (base == 0) {
            GateId carry = cin;
            for (size_t j = 0; j < k; j++) {
                GateId p = xor2(a[j], b[j]);
                r.sum[j] = xor2(p, carry);
                carry = or2(and2(a[j], b[j]), and2(p, carry));
                r.carries[j] = carry;
            }
            cin = carry;
            continue;
        }
        GateId c0 = tie0(), c1 = tie1();
        GateId sum0[4], sum1[4], car0[4], car1[4];
        for (size_t j = 0; j < k; j++) {
            GateId p = xor2(a[base + j], b[base + j]);
            GateId g = and2(a[base + j], b[base + j]);
            sum0[j] = xor2(p, c0);
            c0 = or2(g, and2(p, c0));
            car0[j] = c0;
            sum1[j] = xor2(p, c1);
            c1 = or2(g, and2(p, c1));
            car1[j] = c1;
        }
        for (size_t j = 0; j < k; j++) {
            r.sum[base + j] = mux2(cin, sum0[j], sum1[j]);
            r.carries[base + j] = mux2(cin, car0[j], car1[j]);
        }
        cin = r.carries[base + k - 1];
    }
    r.carryOut = r.carries[n - 1];
    return r;
}

AddResult
NetBuilder::subtractor(const Bus &a, const Bus &b)
{
    return adder(a, invBus(b), tie1());
}

AddResult
NetBuilder::incrementer(const Bus &a)
{
    bespoke_assert(!a.empty());
    AddResult r;
    r.sum.resize(a.size());
    r.carries.resize(a.size());
    GateId carry = tie1();
    for (size_t i = 0; i < a.size(); i++) {
        r.sum[i] = xor2(a[i], carry);
        carry = and2(a[i], carry);
        r.carries[i] = carry;
    }
    r.carryOut = carry;
    return r;
}

GateId
NetBuilder::equal(const Bus &a, const Bus &b)
{
    bespoke_assert(!a.empty() && a.size() == b.size());
    Bus eq(a.size());
    for (size_t i = 0; i < a.size(); i++)
        eq[i] = xnor2(a[i], b[i]);
    return reduceAnd(eq);
}

GateId
NetBuilder::equalsConst(const Bus &a, uint32_t value)
{
    bespoke_assert(!a.empty() && a.size() <= 32);
    bespoke_assert(a.size() == 32 || (value >> a.size()) == 0,
                   "constant ", value, " does not fit in ", a.size(),
                   " bits");
    Bus match(a.size());
    for (size_t i = 0; i < a.size(); i++)
        match[i] = (value >> i) & 1 ? a[i] : inv(a[i]);
    return reduceAnd(match);
}

GateId
NetBuilder::isZero(const Bus &a)
{
    return inv(reduceOr(a));
}

GateId
NetBuilder::reduceOr(const Bus &a)
{
    bespoke_assert(!a.empty());
    // Balanced pairwise tree keeps the depth logarithmic.
    Bus level = a;
    while (level.size() > 1) {
        Bus next;
        size_t i = 0;
        for (; i + 3 <= level.size(); i += 3)
            next.push_back(or3(level[i], level[i + 1], level[i + 2]));
        if (i + 2 <= level.size()) {
            next.push_back(or2(level[i], level[i + 1]));
            i += 2;
        }
        if (i < level.size())
            next.push_back(level[i]);
        level = next;
    }
    return level[0];
}

GateId
NetBuilder::reduceAnd(const Bus &a)
{
    bespoke_assert(!a.empty());
    Bus level = a;
    while (level.size() > 1) {
        Bus next;
        size_t i = 0;
        for (; i + 3 <= level.size(); i += 3)
            next.push_back(and3(level[i], level[i + 1], level[i + 2]));
        if (i + 2 <= level.size()) {
            next.push_back(and2(level[i], level[i + 1]));
            i += 2;
        }
        if (i < level.size())
            next.push_back(level[i]);
        level = next;
    }
    return level[0];
}

Bus
NetBuilder::muxBus(GateId sel, const Bus &a0, const Bus &a1)
{
    bespoke_assert(a0.size() == a1.size());
    Bus out(a0.size());
    for (size_t i = 0; i < a0.size(); i++)
        out[i] = mux2(sel, a0[i], a1[i]);
    return out;
}

Bus
NetBuilder::muxTree(const Bus &sel, const std::vector<Bus> &choices)
{
    bespoke_assert(!sel.empty() && !choices.empty());
    bespoke_assert(sel.size() >= 32 ||
                   choices.size() <= (1ull << sel.size()),
                   choices.size(), " choices need more than ",
                   sel.size(), " select bits");
    size_t width = choices[0].size();
    for (const Bus &c : choices)
        bespoke_assert(c.size() == width, "muxTree width mismatch");
    // Pair adjacent choices level by level, consuming select bits from
    // the LSB. An odd tail passes through unchanged, which makes
    // non-power-of-two choice counts work without padding gates.
    std::vector<Bus> level = choices;
    for (size_t s = 0; s < sel.size() && level.size() > 1; s++) {
        std::vector<Bus> next;
        for (size_t i = 0; i + 1 < level.size(); i += 2)
            next.push_back(muxBus(sel[s], level[i], level[i + 1]));
        if (level.size() % 2)
            next.push_back(level.back());
        level = next;
    }
    if (choices.size() > 1) {
        DatapathInstance inst;
        inst.kind = InstanceKind::MuxTree;
        inst.module = module_;
        inst.shape = {static_cast<uint32_t>(sel.size()),
                      static_cast<uint32_t>(choices.size()),
                      static_cast<uint32_t>(width)};
        inst.inputs = sel;
        for (const Bus &c : choices)
            inst.inputs.insert(inst.inputs.end(), c.begin(), c.end());
        inst.outputs = level[0];
        nl_.addInstance(std::move(inst));
    }
    return level[0];
}

Bus
NetBuilder::muxTree(const Bus &sel, const std::vector<Bus> &choices,
                    const Bus &dflt)
{
    bespoke_assert(!sel.empty() && !choices.empty());
    bespoke_assert(sel.size() < 32,
                   "default-choice muxTree select too wide");
    size_t slots = 1ull << sel.size();
    bespoke_assert(choices.size() <= slots, choices.size(),
                   " choices need more than ", sel.size(),
                   " select bits");
    bespoke_assert(dflt.size() == choices[0].size(),
                   "muxTree default width mismatch");
    // Padding to a full power of two makes every out-of-range select
    // value hit the default; the pass-through tail rule in the
    // no-default overload never applies to a full tree.
    std::vector<Bus> padded = choices;
    padded.resize(slots, dflt);
    return muxTree(sel, padded);
}

Bus
NetBuilder::decoder(const Bus &sel)
{
    bespoke_assert(!sel.empty() && sel.size() < 16);
    Bus nsel = invBus(sel);
    size_t n = 1ull << sel.size();
    Bus out(n);
    for (size_t v = 0; v < n; v++) {
        Bus lits(sel.size());
        for (size_t i = 0; i < sel.size(); i++)
            lits[i] = (v >> i) & 1 ? sel[i] : nsel[i];
        out[v] = reduceAnd(lits);
    }
    return out;
}

Bus
NetBuilder::shiftRight1(const Bus &a, GateId msbIn)
{
    bespoke_assert(!a.empty());
    Bus out(a.size());
    for (size_t i = 0; i + 1 < a.size(); i++)
        out[i] = a[i + 1];
    out[a.size() - 1] = msbIn;
    return out;
}

Bus
NetBuilder::shiftLeft1(const Bus &a, GateId lsbIn)
{
    bespoke_assert(!a.empty());
    Bus out(a.size());
    out[0] = lsbIn;
    for (size_t i = 1; i < a.size(); i++)
        out[i] = a[i - 1];
    return out;
}

// ----------------------------------------------------------------------
// Sequential helpers
// ----------------------------------------------------------------------

GateId
NetBuilder::dff(GateId d, bool resetValue)
{
    GateId q = emit(CellType::DFF, d);
    nl_.setResetValue(q, resetValue);
    return q;
}

GateId
NetBuilder::dffe(GateId d, GateId en, bool resetValue)
{
    GateId q = emit(CellType::DFFE, d, en);
    nl_.setResetValue(q, resetValue);
    return q;
}

Bus
NetBuilder::regBus(const Bus &d, GateId en, uint32_t resetValue)
{
    bespoke_assert(!d.empty() && d.size() <= 32);
    Bus q(d.size());
    for (size_t i = 0; i < d.size(); i++)
        q[i] = dffe(d[i], en, (resetValue >> i) & 1);
    return q;
}

Bus
NetBuilder::regBusAlways(const Bus &d, uint32_t resetValue)
{
    bespoke_assert(!d.empty() && d.size() <= 32);
    Bus q(d.size());
    for (size_t i = 0; i < d.size(); i++)
        q[i] = dff(d[i], (resetValue >> i) & 1);
    return q;
}

} // namespace bespoke
