/**
 * @file
 * Oracular module-level power-gating baseline (paper Fig. 15).
 *
 * Models an idealized power-gating scheme with zero overhead: each
 * openMSP430-style module has its own power domain, and in any cycle in
 * which none of the module's gates toggle, the module dissipates no
 * power at all (no leakage, no clock power) and wakes instantly. Real
 * power gating is strictly worse (isolation cells, retention, wake
 * latency), so this is an upper bound on what power gating could save —
 * which the paper shows is far below bespoke tailoring.
 */

#ifndef BESPOKE_GATING_POWER_GATING_HH
#define BESPOKE_GATING_POWER_GATING_HH

#include <array>

#include "src/power/power_model.hh"
#include "src/workloads/workload.hh"

namespace bespoke
{

struct GatingResult
{
    double baselineUW = 0.0;
    double gatedUW = 0.0;
    /** Fraction of cycles each module spent fully idle. */
    std::array<double, kNumModules> idleFraction = {};

    double
    savingsPercent() const
    {
        return 100.0 * (baselineUW - gatedUW) / baselineUW;
    }
};

/**
 * Evaluate oracle power gating for one workload on a netlist. The
 * concrete runs replay lane-parallel through the batched gate runner;
 * results are bit-identical at any plane width.
 * @param inputs number of concrete input sets to average over.
 * @param plane_bits lane-plane width (0 = resolvePlaneBits default).
 */
GatingResult evaluateOracleGating(const Netlist &netlist,
                                  const Workload &w, int inputs,
                                  uint64_t seed,
                                  const PowerParams &power = {},
                                  const TimingParams &timing = {},
                                  int plane_bits = 0);

} // namespace bespoke

#endif // BESPOKE_GATING_POWER_GATING_HH
