#include "src/gating/power_gating.hh"

#include "src/util/logging.hh"
#include "src/verify/runner.hh"

namespace bespoke
{

GatingResult
evaluateOracleGating(const Netlist &nl, const Workload &w, int inputs,
                     uint64_t seed, const PowerParams &power,
                     const TimingParams &timing, int plane_bits)
{
    // Per-cycle module activity plus aggregate toggles for the power
    // model, collected lane-parallel by the batched runner.
    ToggleCounter toggles(nl);
    ModuleIdleCounts idle;
    GateBatchObservers obs;
    obs.toggles = &toggles;
    obs.moduleIdle = &idle;

    AsmProgram prog = w.assembleProgram();
    Rng rng(seed);
    std::vector<WorkloadInput> in;
    for (int i = 0; i < inputs; i++)
        in.push_back(w.genInput(rng));
    std::vector<GateRun> runs =
        runWorkloadGateBatch(nl, w, prog, in, plane_bits, obs);
    for (const GateRun &run : runs) {
        if (!run.halted)
            bespoke_warn("gating run of ", w.name, " did not halt");
    }
    const std::array<uint64_t, kNumModules> &idle_cycles = idle.idle;
    const uint64_t total_cycles = idle.totalCycles;
    bespoke_assert(total_cycles > 0);

    PowerReport base = computePower(nl, toggles, power, timing);

    GatingResult res;
    res.baselineUW = base.totalUW();

    // Per-module static power (leakage + clock) that gating can remove
    // during idle cycles; switching power is already zero when a
    // module does not toggle.
    double saved = 0.0;
    double f_hz = power.frequencyMHz * 1e6;
    double v2 = power.voltage * power.voltage;
    for (int m = 0; m < kNumModules; m++) {
        NetlistStats s = nl.moduleStats(static_cast<Module>(m));
        double leak_uw = s.leakage * 1e-3 * v2;
        double clk_uw = 0.5 * 2.0 * power.clockPinCap *
                        power.clockTreeFactor *
                        static_cast<double>(s.numSequential) * v2 *
                        f_hz * 1e-9;
        double idle_frac = static_cast<double>(idle_cycles[m]) /
                           static_cast<double>(total_cycles);
        res.idleFraction[m] = idle_frac;
        saved += idle_frac * (leak_uw + clk_uw);
    }
    res.gatedUW = res.baselineUW - saved;
    return res;
}

} // namespace bespoke
