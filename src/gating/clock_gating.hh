/**
 * @file
 * Activity-driven clock gating for register banks with rare writes.
 *
 * The bsp430 generator emits register banks as DFFE cells sharing one
 * enable net (NetBuilder::regBus), and the cell library has no
 * structural clock nets — the global clock is implicit. An inserted
 * integrated clock gate (ICG) therefore changes no gate-level function
 * at all: a DFFE whose clock is gated while EN is low latches exactly
 * what the ungated DFFE latches. Clock gating here is *planned* as an
 * annotation — which enable-grouped banks are worth gating and how much
 * clock-tree power that saves — and reported next to the paper's
 * oracle module power-gating baseline (Fig. 15), which it lower-bounds
 * structurally: the oracle assumes zero overhead and full module
 * shut-off, the ICG plan pays a per-gate overhead and only stops the
 * clock pins it covers.
 *
 * Power model: every flop's clock pin costs
 * clockPinCap x clockTreeFactor x V^2 x f (the "2 transitions per
 * cycle" clock term in computePower()). Gating a bank of B flops whose
 * enable is high a fraction d of cycles saves (1-d) x B pin-costs and
 * pays icgFlopEquivalents pin-costs for the ICG cell and its always-on
 * clock input.
 */

#ifndef BESPOKE_GATING_CLOCK_GATING_HH
#define BESPOKE_GATING_CLOCK_GATING_HH

#include <vector>

#include "src/power/power_model.hh"
#include "src/workloads/workload.hh"

namespace bespoke
{

/** Thresholds for accepting a bank into the gating plan. */
struct ClockGatingOptions
{
    /** Gate only banks whose enable duty is at or below this. */
    double maxDuty = 0.25;
    /** Minimum flops sharing the enable to justify an ICG. */
    size_t minBankBits = 4;
    /** ICG overhead, in units of one flop's clock-pin power. */
    double icgFlopEquivalents = 1.5;
};

/** A DFFE register bank: flops sharing one enable net. */
struct EnableBank
{
    GateId enable = kNoGate;
    std::vector<GateId> flops;
};

/** One bank accepted into the gating plan. */
struct GatedBank
{
    GateId enable = kNoGate;
    size_t flops = 0;
    double duty = 0.0;     ///< fraction of cycles enable was 1 or X
    double savedUW = 0.0;  ///< net clock power saved at nominal V
};

struct ClockGatingReport
{
    std::vector<GatedBank> banks;
    /** Enable-grouped banks examined (incl. rejected ones). */
    size_t candidateBanks = 0;
    /** Net clock power saved at nominal voltage (µW). Scale by
     *  (V/Vnominal)^2 for a design operating at V. */
    double savedClockUW = 0.0;
    uint64_t cyclesObserved = 0;

    size_t gatedFlops() const
    {
        size_t n = 0;
        for (const GatedBank &b : banks)
            n += b.flops;
        return n;
    }
};

/** Clock power of one flop's clock pin at nominal voltage (µW). */
double perFlopClockUW(const PowerParams &power = {});

/**
 * Group DFFE cells by their enable net. Banks are returned in
 * ascending enable-id order, flops in ascending id order, so the plan
 * is deterministic for a given netlist.
 */
std::vector<EnableBank> enumerateEnableBanks(const Netlist &netlist);

/**
 * Decide which banks to gate given measured enable duty.
 * `enableHigh[k]` = cycles in which banks[k].enable was 1 or X (X is
 * conservatively high: a maybe-writing bank cannot be gated), out of
 * `cycles` observed cycles.
 */
ClockGatingReport planClockGating(const std::vector<EnableBank> &banks,
                                  const std::vector<uint64_t> &enableHigh,
                                  uint64_t cycles,
                                  const ClockGatingOptions &opts = {},
                                  const PowerParams &power = {});

/**
 * Measure enable duty by concrete replay and plan gating in one step:
 * runs `inputs` random inputs of the workload on the netlist, counting
 * per-cycle enable values. Convenience wrapper for benches and tests.
 */
ClockGatingReport evaluateClockGating(const Netlist &netlist,
                                      const Workload &w, int inputs,
                                      uint64_t seed,
                                      const ClockGatingOptions &opts = {},
                                      const PowerParams &power = {});

} // namespace bespoke

#endif // BESPOKE_GATING_CLOCK_GATING_HH
