#include "src/gating/clock_gating.hh"

#include <algorithm>
#include <map>

#include "src/util/logging.hh"
#include "src/verify/runner.hh"

namespace bespoke
{

double
perFlopClockUW(const PowerParams &power)
{
    // One clock pin, two transitions per cycle (the clock term in
    // computePower() divided by the flop count).
    double v2 = power.voltage * power.voltage;
    double f_hz = power.frequencyMHz * 1e6;
    return 0.5 * 2.0 * power.clockPinCap * power.clockTreeFactor * v2 *
           f_hz * 1e-9;
}

std::vector<EnableBank>
enumerateEnableBanks(const Netlist &nl)
{
    std::map<GateId, std::vector<GateId>> by_enable;
    for (GateId i = 0; i < nl.size(); i++) {
        const Gate &g = nl.gate(i);
        if (g.type == CellType::DFFE)
            by_enable[g.in[1]].push_back(i);
    }
    std::vector<EnableBank> banks;
    for (auto &[en, flops] : by_enable) {
        EnableBank b;
        b.enable = en;
        b.flops = std::move(flops);
        banks.push_back(std::move(b));
    }
    return banks;
}

ClockGatingReport
planClockGating(const std::vector<EnableBank> &banks,
                const std::vector<uint64_t> &enableHigh, uint64_t cycles,
                const ClockGatingOptions &opts, const PowerParams &power)
{
    bespoke_assert(enableHigh.size() == banks.size(),
                   "duty vector does not match bank list");
    bespoke_assert(cycles > 0, "no cycles observed for gating plan");

    ClockGatingReport rep;
    rep.candidateBanks = banks.size();
    rep.cyclesObserved = cycles;
    double per_flop = perFlopClockUW(power);
    for (size_t k = 0; k < banks.size(); k++) {
        const EnableBank &b = banks[k];
        double duty = static_cast<double>(enableHigh[k]) /
                      static_cast<double>(cycles);
        if (b.flops.size() < opts.minBankBits || duty > opts.maxDuty)
            continue;
        double saved =
            ((1.0 - duty) * static_cast<double>(b.flops.size()) -
             opts.icgFlopEquivalents) *
            per_flop;
        if (saved <= 0.0)
            continue;
        GatedBank gb;
        gb.enable = b.enable;
        gb.flops = b.flops.size();
        gb.duty = duty;
        gb.savedUW = saved;
        rep.savedClockUW += saved;
        rep.banks.push_back(gb);
    }
    return rep;
}

ClockGatingReport
evaluateClockGating(const Netlist &nl, const Workload &w, int inputs,
                    uint64_t seed, const ClockGatingOptions &opts,
                    const PowerParams &power)
{
    std::vector<EnableBank> banks = enumerateEnableBanks(nl);
    std::vector<uint64_t> high(banks.size(), 0);
    uint64_t cycles = 0;

    if (!banks.empty()) {
        AsmProgram prog = w.assembleProgram();
        Rng rng(seed);
        auto per_cycle = [&](const GateSim &sim) {
            cycles++;
            for (size_t k = 0; k < banks.size(); k++) {
                Logic v = sim.value(banks[k].enable);
                if (v != Logic::Zero)
                    high[k]++;  // X counts as high (cannot gate)
            }
        };
        for (int i = 0; i < inputs; i++) {
            WorkloadInput in = w.genInput(rng);
            GateRun run = runWorkloadGate(nl, w, prog, in, nullptr,
                                          nullptr, per_cycle);
            if (!run.halted)
                bespoke_warn("clock-gating run of ", w.name,
                             " did not halt");
        }
    }
    if (cycles == 0) {
        ClockGatingReport rep;
        rep.candidateBanks = banks.size();
        return rep;
    }
    return planClockGating(banks, high, cycles, opts, power);
}

} // namespace bespoke
