/**
 * @file
 * Multi-word lane planes: the storage + Kleene algebra behind the
 * width-generic bit-plane simulator (LaneSimT<W>).
 *
 * A "plane" holds one bit per lane for one net. At W = 64 lanes a
 * plane is a plain uint64_t (the historical LaneSim layout, and still
 * the fastest choice when few lanes are occupied); wider widths use
 * Plane<W>, a fixed array of W/64 words with the same bitwise algebra
 * so template code written against operators compiles for both. The
 * width is selected by LaneMask<W>.
 *
 * A three-valued signal is two planes — val and known — kept in the
 * canonical form val ⊆ known (an X lane has val bit 0), exactly like
 * SWord. The Kleene connectives (pNot/pAnd/.../pMux) are generic over
 * the mask type and preserve that invariant; their correctness is
 * pinned per lane against the scalar truth tables by
 * tests/test_plane_x.cc and end-to-end by tests/diff_harness.hh.
 */

#ifndef BESPOKE_SIM_PLANE_HH
#define BESPOKE_SIM_PLANE_HH

#include <array>
#include <bit>
#include <cstdint>
#include <type_traits>
#include <utility>

namespace bespoke
{

/** Fixed-width multi-word lane plane (W a multiple of 64, W > 64). */
template <int W>
struct Plane
{
    static_assert(W > 64 && W % 64 == 0,
                  "Plane<W> is for widths above one word; 64-lane "
                  "planes are plain uint64_t");
    static constexpr int kWords = W / 64;

    std::array<uint64_t, kWords> w{};

    friend constexpr Plane operator~(const Plane &a)
    {
        Plane r;
        for (int i = 0; i < kWords; i++)
            r.w[i] = ~a.w[i];
        return r;
    }
    friend constexpr Plane operator&(const Plane &a, const Plane &b)
    {
        Plane r;
        for (int i = 0; i < kWords; i++)
            r.w[i] = a.w[i] & b.w[i];
        return r;
    }
    friend constexpr Plane operator|(const Plane &a, const Plane &b)
    {
        Plane r;
        for (int i = 0; i < kWords; i++)
            r.w[i] = a.w[i] | b.w[i];
        return r;
    }
    friend constexpr Plane operator^(const Plane &a, const Plane &b)
    {
        Plane r;
        for (int i = 0; i < kWords; i++)
            r.w[i] = a.w[i] ^ b.w[i];
        return r;
    }
    Plane &operator&=(const Plane &o)
    {
        for (int i = 0; i < kWords; i++)
            w[i] &= o.w[i];
        return *this;
    }
    Plane &operator|=(const Plane &o)
    {
        for (int i = 0; i < kWords; i++)
            w[i] |= o.w[i];
        return *this;
    }
    Plane &operator^=(const Plane &o)
    {
        for (int i = 0; i < kWords; i++)
            w[i] ^= o.w[i];
        return *this;
    }
    friend constexpr bool operator==(const Plane &a, const Plane &b)
    {
        return a.w == b.w;
    }
};

/** Mask type for a W-lane plane: uint64_t at 64, Plane<W> above. */
template <int W>
struct LaneMaskSel
{
    using type = Plane<W>;
};
template <>
struct LaneMaskSel<64>
{
    using type = uint64_t;
};
template <int W>
using LaneMask = typename LaneMaskSel<W>::type;

/** @name Generic lane-mask helpers (uint64_t and Plane<W> overloads) */
/// @{
inline bool
laneAny(uint64_t m)
{
    return m != 0;
}
template <int W>
inline bool
laneAny(const Plane<W> &m)
{
    for (int i = 0; i < Plane<W>::kWords; i++) {
        if (m.w[i])
            return true;
    }
    return false;
}

inline int
laneCount(uint64_t m)
{
    return std::popcount(m);
}
template <int W>
inline int
laneCount(const Plane<W> &m)
{
    int n = 0;
    for (int i = 0; i < Plane<W>::kWords; i++)
        n += std::popcount(m.w[i]);
    return n;
}

inline bool
laneTest(uint64_t m, int lane)
{
    return (m >> lane) & 1;
}
template <int W>
inline bool
laneTest(const Plane<W> &m, int lane)
{
    return (m.w[lane >> 6] >> (lane & 63)) & 1;
}

inline void
laneSet(uint64_t &m, int lane)
{
    m |= 1ull << lane;
}
template <int W>
inline void
laneSet(Plane<W> &m, int lane)
{
    m.w[lane >> 6] |= 1ull << (lane & 63);
}

inline void
laneClear(uint64_t &m, int lane)
{
    m &= ~(1ull << lane);
}
template <int W>
inline void
laneClear(Plane<W> &m, int lane)
{
    m.w[lane >> 6] &= ~(1ull << (lane & 63));
}

/** Invoke f(lane) for every set lane, in ascending lane order. */
template <class F>
inline void
forEachLane(uint64_t m, F &&f)
{
    while (m) {
        f(std::countr_zero(m));
        m &= m - 1;
    }
}
template <int W, class F>
inline void
forEachLane(const Plane<W> &m, F &&f)
{
    for (int i = 0; i < Plane<W>::kWords; i++) {
        uint64_t word = m.w[i];
        while (word) {
            f(64 * i + std::countr_zero(word));
            word &= word - 1;
        }
    }
}

/**
 * Word j (lanes 64j..64j+63) of a mask, by reference. Lets width-
 * generic kernels run their lane math on plain uint64_t words — the
 * compiler keeps word temporaries in registers, where whole-Plane
 * temporaries of the 256/512-bit widths would spill.
 */
inline uint64_t &
planeWord(uint64_t &m, int)
{
    return m;
}
inline const uint64_t &
planeWord(const uint64_t &m, int)
{
    return m;
}
template <int W>
inline uint64_t &
planeWord(Plane<W> &m, int j)
{
    return m.w[j];
}
template <int W>
inline const uint64_t &
planeWord(const Plane<W> &m, int j)
{
    return m.w[j];
}

/** All-lanes-set / no-lanes-set constants for a mask type. */
template <class M>
struct MaskConst;
template <>
struct MaskConst<uint64_t>
{
    static constexpr uint64_t ones() { return ~0ull; }
    static constexpr uint64_t zero() { return 0; }
};
template <int W>
struct MaskConst<Plane<W>>
{
    static constexpr Plane<W> ones()
    {
        Plane<W> p;
        for (int i = 0; i < Plane<W>::kWords; i++)
            p.w[i] = ~0ull;
        return p;
    }
    static constexpr Plane<W> zero() { return Plane<W>{}; }
};
template <class M>
constexpr M
laneOnes()
{
    return MaskConst<M>::ones();
}
/// @}

/**
 * One three-valued signal as W (val, known) lane bits: v is exactly
 * "known One", k & ~v is exactly "known Zero", ~k is X.
 */
template <class M>
struct PlanesT
{
    M v;  ///< known-One lanes (always a subset of k)
    M k;  ///< known lanes
};

// Kleene connectives on lane planes. Every op keeps the canonical
// invariant v ⊆ k, which the correctness of the compositions relies
// on. These are the same formulas the 64-lane engine shipped with,
// lifted over the generic mask type.

template <class M>
inline PlanesT<M>
pNot(const PlanesT<M> &a)
{
    return {a.k & ~a.v, a.k};
}

template <class M>
inline PlanesT<M>
pAnd(const PlanesT<M> &a, const PlanesT<M> &b)
{
    // Known when both are known, or either side is a known Zero.
    return {a.v & b.v, (a.k & b.k) | (a.k & ~a.v) | (b.k & ~b.v)};
}

template <class M>
inline PlanesT<M>
pOr(const PlanesT<M> &a, const PlanesT<M> &b)
{
    // Known when both are known, or either side is a known One.
    return {a.v | b.v, (a.k & b.k) | a.v | b.v};
}

template <class M>
inline PlanesT<M>
pXor(const PlanesT<M> &a, const PlanesT<M> &b)
{
    M k = a.k & b.k;
    return {(a.v ^ b.v) & k, k};
}

template <class M>
inline PlanesT<M>
pXnor(const PlanesT<M> &a, const PlanesT<M> &b)
{
    M k = a.k & b.k;
    return {~(a.v ^ b.v) & k, k};
}

/** logicMux semantics: sel X yields a0 when a0 == a1 and both known. */
template <class M>
inline PlanesT<M>
pMux(const PlanesT<M> &a0, const PlanesT<M> &a1, const PlanesT<M> &sel)
{
    M sel1 = sel.v;
    M sel0 = sel.k & ~sel.v;
    M eq = a0.k & a1.k & ~(a0.v ^ a1.v);
    M k = (sel1 & a1.k) | (sel0 & a0.k) | (~sel.k & eq);
    M v = (sel1 & a1.v) | (sel0 & a0.v) | (~sel.k & eq & a0.v);
    return {v, k};
}

/** Plane widths the lane engine is instantiated for. */
constexpr bool
validPlaneBits(int bits)
{
    return bits == 64 || bits == 128 || bits == 256 || bits == 512;
}
constexpr int kMaxPlaneBits = 512;

/**
 * Dispatch f(std::integral_constant<int, W>{}) on a runtime width.
 * `bits` must satisfy validPlaneBits (callers validate flag/env input
 * before reaching here); invalid widths fall back to 64 lanes.
 */
template <class F>
decltype(auto)
withPlaneBits(int bits, F &&f)
{
    switch (bits) {
    case 128:
        return f(std::integral_constant<int, 128>{});
    case 256:
        return f(std::integral_constant<int, 256>{});
    case 512:
        return f(std::integral_constant<int, 512>{});
    default:
        return f(std::integral_constant<int, 64>{});
    }
}

} // namespace bespoke

#endif // BESPOKE_SIM_PLANE_HH
