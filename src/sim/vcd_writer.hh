/**
 * @file
 * VCD (Value Change Dump) waveform writer for gate-level simulations.
 *
 * Attach a VcdWriter to a GateSim and call sample() once per cycle:
 * every named port (grouped into buses) plus any explicitly watched
 * internal nets are dumped, X values included, viewable in GTKWave or
 * any other VCD viewer. Useful for debugging workloads and bespoke
 * designs alike.
 */

#ifndef BESPOKE_SIM_VCD_WRITER_HH
#define BESPOKE_SIM_VCD_WRITER_HH

#include <ostream>
#include <string>
#include <vector>

#include "src/sim/gate_sim.hh"

namespace bespoke
{

class VcdWriter
{
  public:
    /**
     * @param netlist design being observed
     * @param os      stream receiving VCD text (kept by reference)
     * @param top     scope name in the VCD hierarchy
     */
    VcdWriter(const Netlist &netlist, std::ostream &os,
              const std::string &top = "bespoke");

    /** Also dump an internal net under the given display name. */
    void watch(GateId id, const std::string &name);
    /** Watch a whole internal bus (LSB-first ids). */
    void watchBus(const std::vector<GateId> &ids,
                  const std::string &name);

    /** Write the header; called automatically by the first sample(). */
    void writeHeader();

    /** Record the current simulator values at the next timestamp. */
    void sample(const GateSim &sim);

  private:
    struct Signal
    {
        std::string name;
        std::vector<GateId> bits;  ///< LSB first; scalar = 1 entry
        std::string code;          ///< VCD identifier code
        std::string last;          ///< last emitted value string
    };

    static std::string codeFor(size_t index);
    static char vcdChar(Logic v);

    const Netlist &nl_;
    std::ostream &os_;
    std::string top_;
    std::vector<Signal> signals_;
    bool headerWritten_ = false;
    uint64_t time_ = 0;
};

} // namespace bespoke

#endif // BESPOKE_SIM_VCD_WRITER_HH
