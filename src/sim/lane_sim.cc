#include "src/sim/lane_sim.hh"

#include <cstdlib>
#include <cstring>
#include "src/isa/isa.hh"
#include "src/util/logging.hh"

namespace bespoke
{

namespace
{

/**
 * Widest uint64 SIMD block one native vector register holds under the
 * enabled ISA. The eval kernel slices multi-word planes into blocks of
 * this many words; each block's temporaries are exactly one register,
 * so the kernel neither spills (whole-Plane temporaries at 256/512
 * bits overflow the register file) nor leaves lanes on the table when
 * BESPOKE_ENABLE_AVX2 / _AVX512 widen the vector unit.
 */
#if defined(__AVX512F__)
constexpr int kNativeVecWords = 8;
#elif defined(__AVX2__)
constexpr int kNativeVecWords = 4;
#else
constexpr int kNativeVecWords = 2;
#endif

/**
 * A block of NW lane words as a GCC vector: the bitwise Kleene plane
 * ops (pAnd & co.) instantiate directly over it, and codegen is one
 * SIMD op per connective independent of the optimizer's autovectorizer
 * mood. NW = 1 degrades to plain uint64_t (the 64-lane plane).
 */
template <int NW>
struct VecWords
{
    typedef uint64_t type __attribute__((vector_size(8 * NW)));
};
template <>
struct VecWords<1>
{
    using type = uint64_t;
};

} // namespace

template <int W>
LaneSimT<W>::LaneSimT(const Netlist &netlist,
                      std::shared_ptr<const SimPrep> prep)
    : nl_(netlist), prep_(std::move(prep)),
      val_(netlist.size()), known_(netlist.size()),
      forceMask_(netlist.size()), forceVal_(netlist.size())
{
    if (!prep_)
        prep_ = std::make_shared<const SimPrep>(netlist);
    bespoke_assert(prep_->isComb.size() == netlist.size(),
                   "SimPrep was built for a different netlist");
}

template <int W>
void
LaneSimT<W>::reset()
{
    const Mask ones = laneOnes<Mask>();
    const uint8_t *op = prep_->opcode.data();
    for (GateId i = 0; i < nl_.size(); i++) {
        switch (static_cast<CellType>(op[i])) {
          case CellType::TIE0:
            val_[i] = Mask{};
            known_[i] = ones;
            break;
          case CellType::TIE1:
            val_[i] = ones;
            known_[i] = ones;
            break;
          default:
            val_[i] = Mask{};
            known_[i] = Mask{};
        }
    }
    for (GateId id : prep_->seqIds) {
        bool rv = nl_.gate(id).resetValue;
        val_[id] = rv ? ones : Mask{};
        known_[id] = ones;
    }
    clearAllForces();
}

template <int W>
void
LaneSimT<W>::setInput(GateId id, int lane, Logic v)
{
    bespoke_assert(nl_.gate(id).type == CellType::INPUT,
                   "setInput on non-input gate ", id);
    if (v == Logic::X) {
        laneClear(val_[id], lane);
        laneClear(known_[id], lane);
    } else {
        laneSet(known_[id], lane);
        if (v == Logic::One)
            laneSet(val_[id], lane);
        else
            laneClear(val_[id], lane);
    }
}

template <int W>
void
LaneSimT<W>::setInputAll(GateId id, Logic v)
{
    bespoke_assert(nl_.gate(id).type == CellType::INPUT,
                   "setInput on non-input gate ", id);
    if (v == Logic::X) {
        val_[id] = Mask{};
        known_[id] = Mask{};
    } else {
        known_[id] = laneOnes<Mask>();
        val_[id] = v == Logic::One ? laneOnes<Mask>() : Mask{};
    }
}

template <int W>
void
LaneSimT<W>::setInputPlanes(GateId id, const Mask &val, const Mask &known)
{
    bespoke_assert(nl_.gate(id).type == CellType::INPUT,
                   "setInput on non-input gate ", id);
    bespoke_assert(!laneAny(val & ~known),
                   "val plane not masked by known");
    val_[id] = val;
    known_[id] = known;
}

template <int W>
SWord
LaneSimT<W>::busWord(const std::vector<GateId> &bus_ids, int lane) const
{
    bespoke_assert(bus_ids.size() <= 16);
    SWord w;
    for (size_t i = 0; i < bus_ids.size(); i++)
        w.setBit(static_cast<int>(i), value(bus_ids[i], lane));
    return w;
}

template <int W>
void
LaneSimT<W>::evalComb()
{
    // The lane math runs on native-vector-sized blocks of words
    // (PlanesT over a GCC vector type): block temporaries are single
    // registers at every width, where whole-Plane expression
    // temporaries of the 256/512-bit widths would spill to the stack
    // and erase the amortization wide planes exist for.
    constexpr int kWords = W / 64;
    constexpr int kBlock =
        kWords < kNativeVecWords ? kWords : kNativeVecWords;
    constexpr int kBlocks = kWords / kBlock;
    using V = typename VecWords<kBlock>::type;
    using P = PlanesT<V>;
    const uint32_t *fanin = prep_->fanin.data();
    const GateId *order = prep_->order.data();
    Mask *val = val_.data();
    Mask *known = known_.data();

    auto loadv = [](const Mask &m, int blk) -> V {
        V v;
        std::memcpy(&v, reinterpret_cast<const uint64_t *>(&m) +
                            static_cast<size_t>(blk) * kBlock,
                    sizeof(V));
        return v;
    };
    auto storev = [](Mask &m, int blk, V v) {
        std::memcpy(reinterpret_cast<uint64_t *>(&m) +
                        static_cast<size_t>(blk) * kBlock,
                    &v, sizeof(V));
    };

    // One dispatch per same-opcode segment; the per-gate loops stay
    // branch-free (the force-overlay test folds to a constant false
    // while no forces are active). Values and evaluation order are
    // identical to a per-gate switch over `order`.
#define BESPOKE_EVAL_RUN(expr)                                        \
    for (size_t i = pos; i < end; i++) {                              \
        const GateId id = order[i];                                   \
        const uint32_t *f = &fanin[3 * id];                           \
        (void)f;                                                      \
        const bool forced = anyForce_ && laneAny(forceMask_[id]);     \
        for (int j = 0; j < kBlocks; j++) {                           \
            auto get = [&](uint32_t g) -> P {                         \
                return {loadv(val[g], j), loadv(known[g], j)};        \
            };                                                        \
            (void)get;                                                \
            P out = (expr);                                           \
            if (forced) {                                             \
                const V fm = loadv(forceMask_[id], j);                \
                out.v = (out.v & ~fm) |                               \
                        (loadv(forceVal_[id], j) & fm);               \
                out.k |= fm;                                          \
            }                                                         \
            storev(val[id], j, out.v);                                \
            storev(known[id], j, out.k);                              \
        }                                                             \
    }                                                                 \
    break;

    size_t pos = 0;
    for (const SimPrep::EvalRun &run : prep_->evalRuns) {
        const size_t end = pos + run.len;
        switch (static_cast<CellType>(run.op)) {
          case CellType::OUTPUT:
          case CellType::BUF:
            BESPOKE_EVAL_RUN(get(f[0]))
          case CellType::INV:
            BESPOKE_EVAL_RUN(pNot(get(f[0])))
          case CellType::AND2:
            BESPOKE_EVAL_RUN(pAnd(get(f[0]), get(f[1])))
          case CellType::AND3:
            BESPOKE_EVAL_RUN(
                pAnd(pAnd(get(f[0]), get(f[1])), get(f[2])))
          case CellType::OR2:
            BESPOKE_EVAL_RUN(pOr(get(f[0]), get(f[1])))
          case CellType::OR3:
            BESPOKE_EVAL_RUN(
                pOr(pOr(get(f[0]), get(f[1])), get(f[2])))
          case CellType::NAND2:
            BESPOKE_EVAL_RUN(pNot(pAnd(get(f[0]), get(f[1]))))
          case CellType::NAND3:
            BESPOKE_EVAL_RUN(
                pNot(pAnd(pAnd(get(f[0]), get(f[1])), get(f[2]))))
          case CellType::NOR2:
            BESPOKE_EVAL_RUN(pNot(pOr(get(f[0]), get(f[1]))))
          case CellType::NOR3:
            BESPOKE_EVAL_RUN(
                pNot(pOr(pOr(get(f[0]), get(f[1])), get(f[2]))))
          case CellType::XOR2:
            BESPOKE_EVAL_RUN(pXor(get(f[0]), get(f[1])))
          case CellType::XNOR2:
            BESPOKE_EVAL_RUN(pXnor(get(f[0]), get(f[1])))
          case CellType::MUX2:
            BESPOKE_EVAL_RUN(
                pMux(get(f[0]), get(f[1]), get(f[2])))
          case CellType::AOI21:
            BESPOKE_EVAL_RUN(
                pNot(pOr(pAnd(get(f[0]), get(f[1])), get(f[2]))))
          case CellType::OAI21:
            BESPOKE_EVAL_RUN(
                pNot(pAnd(pOr(get(f[0]), get(f[1])), get(f[2]))))
          case CellType::TIE0:
            BESPOKE_EVAL_RUN((P{V{}, ~V{}}))
          case CellType::TIE1:
            BESPOKE_EVAL_RUN((P{~V{}, ~V{}}))
          default:
            bespoke_fatal("non-combinational cell in eval order");
        }
        pos = end;
    }
#undef BESPOKE_EVAL_RUN
    gateVisitsTotal_ += prep_->order.size();
}

template <int W>
void
LaneSimT<W>::latchSequential()
{
    using P = PlanesT<Mask>;
    // Two passes, like GateSim: all D inputs are read before any Q
    // changes so direct Q->D wires see the pre-edge value.
    size_t n = prep_->seqIds.size();
    latchNext_.resize(n);
    std::vector<P> &next = latchNext_;
    for (size_t i = 0; i < n; i++) {
        GateId id = prep_->seqIds[i];
        const uint32_t *f = &prep_->fanin[3 * id];
        P d = {val_[f[0]], known_[f[0]]};
        if (static_cast<CellType>(prep_->opcode[id]) == CellType::DFF) {
            next[i] = d;
        } else {
            P q = {val_[id], known_[id]};
            P en = {val_[f[1]], known_[f[1]]};
            next[i] = pMux(q, d, en);
        }
    }
    for (size_t i = 0; i < n; i++) {
        GateId id = prep_->seqIds[i];
        val_[id] = next[i].v;
        known_[id] = next[i].k;
    }
}

template <int W>
void
LaneSimT<W>::force(GateId id, const Mask &lanes, const Mask &value)
{
    if (!laneAny(lanes))
        return;
    if (!laneAny(forceMask_[id]) && !laneAny(forceVal_[id]))
        forcedIds_.push_back(id);
    forceMask_[id] |= lanes;
    forceVal_[id] = (forceVal_[id] & ~lanes) | (value & lanes);
    anyForce_ = true;
}

template <int W>
void
LaneSimT<W>::clearForces(const Mask &lanes)
{
    size_t keep = 0;
    for (size_t i = 0; i < forcedIds_.size(); i++) {
        GateId id = forcedIds_[i];
        forceMask_[id] &= ~lanes;
        forceVal_[id] &= forceMask_[id];
        if (laneAny(forceMask_[id]))
            forcedIds_[keep++] = id;
        else
            forceVal_[id] = Mask{};
    }
    forcedIds_.resize(keep);
    anyForce_ = !forcedIds_.empty();
}

template <int W>
void
LaneSimT<W>::restoreSeqLane(int lane, const SeqState &s)
{
    bespoke_assert(s.size() == prep_->seqIds.size());
    for (size_t i = 0; i < s.size(); i++) {
        GateId id = prep_->seqIds[i];
        Logic v = static_cast<Logic>(s[i]);
        if (v == Logic::X) {
            laneClear(val_[id], lane);
            laneClear(known_[id], lane);
        } else {
            laneSet(known_[id], lane);
            if (v == Logic::One)
                laneSet(val_[id], lane);
            else
                laneClear(val_[id], lane);
        }
    }
}

template <int W>
SeqState
LaneSimT<W>::seqStateLane(int lane) const
{
    SeqState s(prep_->seqIds.size());
    for (size_t i = 0; i < s.size(); i++)
        s[i] = static_cast<uint8_t>(value(prep_->seqIds[i], lane));
    return s;
}

template <int W>
void
LaneSimT<W>::laneValues(int lane, std::vector<uint8_t> &out) const
{
    out.resize(nl_.size());
    for (GateId id = 0; id < nl_.size(); id++)
        out[id] = static_cast<uint8_t>(value(id, lane));
}

template <int W>
void
ActivityTracker::observe(const LaneSimT<W> &sim, LaneMask<W> lanes)
{
    using Mask = LaneMask<W>;
    bespoke_assert(initialCaptured_);
    if (!laneAny(lanes))
        return;
    uint8_t *tog = toggled_.data();
    if (!lanePendingValid_) {
        lanePending_.clear();
        for (size_t i = 0; i < toggled_.size(); i++) {
            if (!tog[i])
                lanePending_.push_back(static_cast<uint32_t>(i));
        }
        lanePendingValid_ = true;
    }
    const uint8_t *init = initial_.data();
    size_t keep = 0;
    for (uint32_t i : lanePending_) {
        if (tog[i])
            continue;  // set through the scalar path meanwhile
        // Broadcast the scalar initial Logic to planes; a lane has
        // toggled iff its (val, known) pair differs from it. (Gates
        // whose initial value was X are pre-marked by captureInitial
        // and never enter the pending list.)
        Mask iv = init[i] == static_cast<uint8_t>(Logic::One)
                      ? laneOnes<Mask>()
                      : Mask{};
        Mask ik = init[i] == static_cast<uint8_t>(Logic::X)
                      ? Mask{}
                      : laneOnes<Mask>();
        Mask diff = (sim.valPlane(i) ^ iv) |
                    (sim.knownPlane(i) ^ ik);
        if (laneAny(diff & lanes))
            tog[i] = 1;
        else
            lanePending_[keep++] = i;
    }
    lanePending_.resize(keep);
}

template <int W>
LaneSocT<W>::LaneSocT(std::shared_ptr<const SocContext> ctx,
                      const AsmProgram &prog)
    : ctx_(std::move(ctx)), prog_(prog),
      sim_(ctx_->netlist, ctx_->prep), env_(kLanes),
      lastFetchPc_(kLanes, 0),
      progLane_(kLanes, &prog_),
      gpioV_(ctx_->pGpioIn.size()), gpioK_(ctx_->pGpioIn.size())
{
    sim_.reset();
    for (EnvState &e : env_) {
        e.ram.assign(kRamSize / 2, SWord::allX());
        e.rdata = SWord::allX();
    }
    setGpioIn(SWord::allX());
    setIrqExt(Logic::X);
}

template <int W>
void
LaneSocT<W>::setGpioIn(SWord w)
{
    for (size_t b = 0; b < gpioV_.size(); b++) {
        Logic v = w.bit(static_cast<int>(b));
        gpioV_[b] = v == Logic::One ? laneOnes<Mask>() : Mask{};
        gpioK_[b] = v == Logic::X ? Mask{} : laneOnes<Mask>();
    }
}

template <int W>
void
LaneSocT<W>::setGpioInLane(int lane, SWord w)
{
    for (size_t b = 0; b < gpioV_.size(); b++) {
        Logic v = w.bit(static_cast<int>(b));
        if (v == Logic::X) {
            laneClear(gpioV_[b], lane);
            laneClear(gpioK_[b], lane);
        } else {
            laneSet(gpioK_[b], lane);
            if (v == Logic::One)
                laneSet(gpioV_[b], lane);
            else
                laneClear(gpioV_[b], lane);
        }
    }
}

template <int W>
void
LaneSocT<W>::setIrqExt(Logic v)
{
    irqV_ = v == Logic::One ? laneOnes<Mask>() : Mask{};
    irqK_ = v == Logic::X ? Mask{} : laneOnes<Mask>();
}

template <int W>
void
LaneSocT<W>::setIrqExtLane(int lane, Logic v)
{
    if (v == Logic::X) {
        laneClear(irqV_, lane);
        laneClear(irqK_, lane);
    } else {
        laneSet(irqK_, lane);
        if (v == Logic::One)
            laneSet(irqV_, lane);
        else
            laneClear(irqV_, lane);
    }
}

template <int W>
void
LaneSocT<W>::loadLane(int lane, const SeqState &seq, const EnvState &env,
                      uint16_t last_fetch_pc)
{
    sim_.restoreSeqLane(lane, seq);
    env_[lane] = env;
    lastFetchPc_[lane] = last_fetch_pc;
}

template <int W>
void
LaneSocT<W>::evalOnly()
{
    // GPIO / IRQ planes are maintained by the setters; per-lane memory
    // read data is transposed into planes every cycle. The transpose
    // runs word-major, accumulating each 64-lane group in registers —
    // a read-modify-write of a W-bit plane per lane bit would dominate
    // the cycle at the wide plane widths.
    for (size_t b = 0; b < gpioV_.size(); b++)
        sim_.setInputPlanes(ctx_->pGpioIn[b], gpioV_[b], gpioK_[b]);
    sim_.setInputPlanes(ctx_->pIrqExt, irqV_, irqK_);
    const size_t dbits = ctx_->pMemRdata.size();
    bespoke_assert(dbits <= 16);
    constexpr int kWords = W / 64;
    std::array<Mask, 16> rv{}, rk{};
    for (int j = 0; j < kWords; j++) {
        uint64_t vw[16] = {}, kw[16] = {};
        for (int l = 0; l < 64; l++) {
            const SWord rd = env_[64 * j + l].rdata;
            for (size_t b = 0; b < dbits; b++) {
                vw[b] |= static_cast<uint64_t>((rd.val >> b) & 1) << l;
                kw[b] |= static_cast<uint64_t>((rd.known >> b) & 1)
                         << l;
            }
        }
        for (size_t b = 0; b < dbits; b++) {
            planeWord(rv[b], j) = vw[b];
            planeWord(rk[b], j) = kw[b];
        }
    }
    for (size_t b = 0; b < dbits; b++)
        sim_.setInputPlanes(ctx_->pMemRdata[b], rv[b], rk[b]);
    sim_.evalComb();
}

template <int W>
void
LaneSocT<W>::finishCycle(const Mask &lanes)
{
    // Plane-level skip masks: lanes whose memory port is provably idle
    // (en = wen0 = wen1 = 0) need no per-lane sampling at all, and
    // lanes that are definitely not writing skip the wdata bus
    // transpose — reads (every fetch is one) only need the address.
    const std::vector<Mask> &vp = sim_.valPlanes();
    const std::vector<Mask> &kp = sim_.knownPlanes();
    auto zeroMask = [&](GateId id) { return kp[id] & ~vp[id]; };
    const Mask wzero =
        zeroMask(ctx_->pMemWen0) & zeroMask(ctx_->pMemWen1);
    const Mask idle = zeroMask(ctx_->pMemEn) & wzero;
    const Mask active = lanes & ~idle;
    const size_t abits = ctx_->pMemAddr.size();
    const size_t dbits = ctx_->pMemWdata.size();
    bespoke_assert(abits <= 16 && dbits <= 16);
    constexpr int kWords = W / 64;
    for (int j = 0; j < kWords; j++) {
        const uint64_t aw = planeWord(active, j);
        if (!aw)
            continue;
        // Hoist word j of every bus plane once per 64-lane group; the
        // per-lane bus transpose then reads registers instead of
        // re-indexing W-bit planes bit by bit.
        uint64_t av[16], ak[16], dv[16] = {}, dk[16] = {};
        for (size_t b = 0; b < abits; b++) {
            av[b] = planeWord(vp[ctx_->pMemAddr[b]], j);
            ak[b] = planeWord(kp[ctx_->pMemAddr[b]], j);
        }
        const uint64_t wz = planeWord(wzero, j);
        if (aw & ~wz) {
            for (size_t b = 0; b < dbits; b++) {
                dv[b] = planeWord(vp[ctx_->pMemWdata[b]], j);
                dk[b] = planeWord(kp[ctx_->pMemWdata[b]], j);
            }
        }
        const uint64_t env = planeWord(vp[ctx_->pMemEn], j);
        const uint64_t enk = planeWord(kp[ctx_->pMemEn], j);
        const uint64_t w0v = planeWord(vp[ctx_->pMemWen0], j);
        const uint64_t w0k = planeWord(kp[ctx_->pMemWen0], j);
        const uint64_t w1v = planeWord(vp[ctx_->pMemWen1], j);
        const uint64_t w1k = planeWord(kp[ctx_->pMemWen1], j);
        auto logicAt = [](uint64_t v, uint64_t k, int l) {
            if (!((k >> l) & 1))
                return Logic::X;
            return ((v >> l) & 1) ? Logic::One : Logic::Zero;
        };
        uint64_t rem = aw;
        while (rem) {
            const int l = std::countr_zero(rem);
            rem &= rem - 1;
            const int lane = 64 * j + l;
            SWord addr, wdata;
            for (size_t b = 0; b < abits; b++) {
                addr.val |=
                    static_cast<uint16_t>(((av[b] >> l) & 1) << b);
                addr.known |=
                    static_cast<uint16_t>(((ak[b] >> l) & 1) << b);
            }
            if (!((wz >> l) & 1)) {
                for (size_t b = 0; b < dbits; b++) {
                    wdata.val |=
                        static_cast<uint16_t>(((dv[b] >> l) & 1) << b);
                    wdata.known |=
                        static_cast<uint16_t>(((dk[b] >> l) & 1) << b);
                }
            }
            sampleMemory(env_[lane], *progLane_[lane],
                         logicAt(env, enk, l), logicAt(w0v, w0k, l),
                         logicAt(w1v, w1k, l), addr, wdata);
        }
    }
    sim_.latchSequential();
}

template class LaneSimT<64>;
template class LaneSimT<128>;
template class LaneSimT<256>;
template class LaneSimT<512>;
template class LaneSocT<64>;
template class LaneSocT<128>;
template class LaneSocT<256>;
template class LaneSocT<512>;
template void ActivityTracker::observe<64>(const LaneSimT<64> &,
                                           LaneMask<64>);
template void ActivityTracker::observe<128>(const LaneSimT<128> &,
                                            LaneMask<128>);
template void ActivityTracker::observe<256>(const LaneSimT<256> &,
                                            LaneMask<256>);
template void ActivityTracker::observe<512>(const LaneSimT<512> &,
                                            LaneMask<512>);

} // namespace bespoke
