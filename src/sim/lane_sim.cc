#include "src/sim/lane_sim.hh"

#include "src/isa/isa.hh"
#include "src/util/logging.hh"

namespace bespoke
{

namespace
{

/** One three-valued signal as 64 (val, known) lane bits. */
struct Planes
{
    uint64_t v;  ///< known-One lanes (always a subset of k)
    uint64_t k;  ///< known lanes
};

// Kleene connectives on bit planes. Every op keeps the canonical
// invariant v ⊆ k (an X lane has v = 0), which the correctness of
// the compositions below relies on: v is exactly "known One" and
// k & ~v is exactly "known Zero".

inline Planes
pNot(Planes a)
{
    return {a.k & ~a.v, a.k};
}

inline Planes
pAnd(Planes a, Planes b)
{
    // Known when both are known, or either side is a known Zero.
    return {a.v & b.v,
            (a.k & b.k) | (a.k & ~a.v) | (b.k & ~b.v)};
}

inline Planes
pOr(Planes a, Planes b)
{
    // Known when both are known, or either side is a known One.
    return {a.v | b.v, (a.k & b.k) | a.v | b.v};
}

inline Planes
pXor(Planes a, Planes b)
{
    uint64_t k = a.k & b.k;
    return {(a.v ^ b.v) & k, k};
}

inline Planes
pXnor(Planes a, Planes b)
{
    uint64_t k = a.k & b.k;
    return {~(a.v ^ b.v) & k, k};
}

/** logicMux semantics: sel X yields a0 when a0 == a1 and both known. */
inline Planes
pMux(Planes a0, Planes a1, Planes sel)
{
    uint64_t sel1 = sel.v;
    uint64_t sel0 = sel.k & ~sel.v;
    uint64_t eq = a0.k & a1.k & ~(a0.v ^ a1.v);
    uint64_t k = (sel1 & a1.k) | (sel0 & a0.k) | (~sel.k & eq);
    uint64_t v = (sel1 & a1.v) | (sel0 & a0.v) | (~sel.k & eq & a0.v);
    return {v, k};
}

} // namespace

LaneSim::LaneSim(const Netlist &netlist,
                 std::shared_ptr<const SimPrep> prep)
    : nl_(netlist), prep_(std::move(prep)),
      val_(netlist.size(), 0), known_(netlist.size(), 0),
      forceMask_(netlist.size(), 0), forceVal_(netlist.size(), 0)
{
    if (!prep_)
        prep_ = std::make_shared<const SimPrep>(netlist);
    bespoke_assert(prep_->isComb.size() == netlist.size(),
                   "SimPrep was built for a different netlist");
}

void
LaneSim::reset()
{
    const uint8_t *op = prep_->opcode.data();
    for (GateId i = 0; i < nl_.size(); i++) {
        switch (static_cast<CellType>(op[i])) {
          case CellType::TIE0:
            val_[i] = 0;
            known_[i] = ~0ull;
            break;
          case CellType::TIE1:
            val_[i] = ~0ull;
            known_[i] = ~0ull;
            break;
          default:
            val_[i] = 0;
            known_[i] = 0;
        }
    }
    for (GateId id : prep_->seqIds) {
        bool rv = nl_.gate(id).resetValue;
        val_[id] = rv ? ~0ull : 0;
        known_[id] = ~0ull;
    }
    clearAllForces();
}

void
LaneSim::setInput(GateId id, int lane, Logic v)
{
    bespoke_assert(nl_.gate(id).type == CellType::INPUT,
                   "setInput on non-input gate ", id);
    uint64_t m = 1ull << lane;
    if (v == Logic::X) {
        val_[id] &= ~m;
        known_[id] &= ~m;
    } else {
        known_[id] |= m;
        if (v == Logic::One)
            val_[id] |= m;
        else
            val_[id] &= ~m;
    }
}

void
LaneSim::setInputAll(GateId id, Logic v)
{
    bespoke_assert(nl_.gate(id).type == CellType::INPUT,
                   "setInput on non-input gate ", id);
    if (v == Logic::X) {
        val_[id] = 0;
        known_[id] = 0;
    } else {
        known_[id] = ~0ull;
        val_[id] = v == Logic::One ? ~0ull : 0;
    }
}

void
LaneSim::setInputPlanes(GateId id, uint64_t val, uint64_t known)
{
    bespoke_assert(nl_.gate(id).type == CellType::INPUT,
                   "setInput on non-input gate ", id);
    bespoke_assert((val & ~known) == 0, "val plane not masked by known");
    val_[id] = val;
    known_[id] = known;
}

SWord
LaneSim::busWord(const std::vector<GateId> &bus_ids, int lane) const
{
    bespoke_assert(bus_ids.size() <= 16);
    SWord w;
    for (size_t i = 0; i < bus_ids.size(); i++)
        w.setBit(static_cast<int>(i), value(bus_ids[i], lane));
    return w;
}

void
LaneSim::evalComb()
{
    const uint8_t *op = prep_->opcode.data();
    const uint32_t *fanin = prep_->fanin.data();
    uint64_t *val = val_.data();
    uint64_t *known = known_.data();

    auto get = [&](uint32_t id) -> Planes {
        return {val[id], known[id]};
    };

    for (GateId id : prep_->order) {
        const uint32_t *f = &fanin[3 * id];
        Planes a = get(f[0]);
        Planes out;
        switch (static_cast<CellType>(op[id])) {
          case CellType::OUTPUT:
          case CellType::BUF:
            out = a;
            break;
          case CellType::INV:
            out = pNot(a);
            break;
          case CellType::AND2:
            out = pAnd(a, get(f[1]));
            break;
          case CellType::AND3:
            out = pAnd(pAnd(a, get(f[1])), get(f[2]));
            break;
          case CellType::OR2:
            out = pOr(a, get(f[1]));
            break;
          case CellType::OR3:
            out = pOr(pOr(a, get(f[1])), get(f[2]));
            break;
          case CellType::NAND2:
            out = pNot(pAnd(a, get(f[1])));
            break;
          case CellType::NAND3:
            out = pNot(pAnd(pAnd(a, get(f[1])), get(f[2])));
            break;
          case CellType::NOR2:
            out = pNot(pOr(a, get(f[1])));
            break;
          case CellType::NOR3:
            out = pNot(pOr(pOr(a, get(f[1])), get(f[2])));
            break;
          case CellType::XOR2:
            out = pXor(a, get(f[1]));
            break;
          case CellType::XNOR2:
            out = pXnor(a, get(f[1]));
            break;
          case CellType::MUX2:
            out = pMux(a, get(f[1]), get(f[2]));
            break;
          case CellType::AOI21:
            out = pNot(pOr(pAnd(a, get(f[1])), get(f[2])));
            break;
          case CellType::OAI21:
            out = pNot(pAnd(pOr(a, get(f[1])), get(f[2])));
            break;
          case CellType::TIE0:
            out = {0, ~0ull};
            break;
          case CellType::TIE1:
            out = {~0ull, ~0ull};
            break;
          default:
            bespoke_fatal("non-combinational cell in eval order");
        }
        if (anyForce_ && forceMask_[id]) {
            uint64_t fm = forceMask_[id];
            out.v = (out.v & ~fm) | (forceVal_[id] & fm);
            out.k |= fm;
        }
        val[id] = out.v;
        known[id] = out.k;
    }
    gateVisitsTotal_ += prep_->order.size();
}

void
LaneSim::latchSequential()
{
    // Two passes, like GateSim: all D inputs are read before any Q
    // changes so direct Q->D wires see the pre-edge value.
    size_t n = prep_->seqIds.size();
    std::vector<Planes> next(n);
    for (size_t i = 0; i < n; i++) {
        GateId id = prep_->seqIds[i];
        const uint32_t *f = &prep_->fanin[3 * id];
        Planes d = {val_[f[0]], known_[f[0]]};
        if (static_cast<CellType>(prep_->opcode[id]) == CellType::DFF) {
            next[i] = d;
        } else {
            Planes q = {val_[id], known_[id]};
            Planes en = {val_[f[1]], known_[f[1]]};
            next[i] = pMux(q, d, en);
        }
    }
    for (size_t i = 0; i < n; i++) {
        GateId id = prep_->seqIds[i];
        val_[id] = next[i].v;
        known_[id] = next[i].k;
    }
}

void
LaneSim::force(GateId id, uint64_t lanes, uint64_t value)
{
    if (!lanes)
        return;
    if (!forceMask_[id] && !forceVal_[id])
        forcedIds_.push_back(id);
    forceMask_[id] |= lanes;
    forceVal_[id] = (forceVal_[id] & ~lanes) | (value & lanes);
    anyForce_ = true;
}

void
LaneSim::clearForces(uint64_t lanes)
{
    size_t keep = 0;
    for (size_t i = 0; i < forcedIds_.size(); i++) {
        GateId id = forcedIds_[i];
        forceMask_[id] &= ~lanes;
        forceVal_[id] &= forceMask_[id];
        if (forceMask_[id])
            forcedIds_[keep++] = id;
        else
            forceVal_[id] = 0;
    }
    forcedIds_.resize(keep);
    anyForce_ = !forcedIds_.empty();
}

void
LaneSim::restoreSeqLane(int lane, const SeqState &s)
{
    bespoke_assert(s.size() == prep_->seqIds.size());
    uint64_t m = 1ull << lane;
    for (size_t i = 0; i < s.size(); i++) {
        GateId id = prep_->seqIds[i];
        Logic v = static_cast<Logic>(s[i]);
        if (v == Logic::X) {
            val_[id] &= ~m;
            known_[id] &= ~m;
        } else {
            known_[id] |= m;
            if (v == Logic::One)
                val_[id] |= m;
            else
                val_[id] &= ~m;
        }
    }
}

SeqState
LaneSim::seqStateLane(int lane) const
{
    SeqState s(prep_->seqIds.size());
    for (size_t i = 0; i < s.size(); i++)
        s[i] = static_cast<uint8_t>(value(prep_->seqIds[i], lane));
    return s;
}

void
ActivityTracker::observe(const LaneSim &sim, uint64_t lanes)
{
    bespoke_assert(initialCaptured_);
    if (!lanes)
        return;
    size_t n = toggled_.size();
    const uint8_t *init = initial_.data();
    uint8_t *tog = toggled_.data();
    for (size_t i = 0; i < n; i++) {
        // Broadcast the scalar initial Logic to planes; a lane has
        // toggled iff its (val, known) pair differs from it. Gates
        // whose initial value was X are pre-marked by captureInitial,
        // so the extra work here for them is harmless.
        uint64_t iv = init[i] == static_cast<uint8_t>(Logic::One)
                          ? ~0ull
                          : 0;
        uint64_t ik = init[i] == static_cast<uint8_t>(Logic::X)
                          ? 0
                          : ~0ull;
        uint64_t diff = (sim.valPlane(static_cast<GateId>(i)) ^ iv) |
                        (sim.knownPlane(static_cast<GateId>(i)) ^ ik);
        tog[i] |= (diff & lanes) != 0;
    }
}

LaneSoc::LaneSoc(std::shared_ptr<const SocContext> ctx,
                 const AsmProgram &prog)
    : ctx_(std::move(ctx)), prog_(prog),
      sim_(ctx_->netlist, ctx_->prep)
{
    sim_.reset();
    for (EnvState &e : env_) {
        e.ram.assign(kRamSize / 2, SWord::allX());
        e.rdata = SWord::allX();
    }
}

void
LaneSoc::loadLane(int lane, const SeqState &seq, const EnvState &env,
                  uint16_t last_fetch_pc)
{
    sim_.restoreSeqLane(lane, seq);
    env_[lane] = env;
    lastFetchPc_[lane] = last_fetch_pc;
}

void
LaneSoc::evalOnly()
{
    // Uniform pins once, per-lane memory read data transposed into
    // planes bit by bit.
    for (size_t b = 0; b < ctx_->pGpioIn.size(); b++)
        sim_.setInputAll(ctx_->pGpioIn[b], gpioIn_.bit(static_cast<int>(b)));
    sim_.setInputAll(ctx_->pIrqExt, irqExt_);
    for (size_t b = 0; b < ctx_->pMemRdata.size(); b++) {
        uint16_t m = static_cast<uint16_t>(1u << b);
        uint64_t v = 0, k = 0;
        for (int lane = 0; lane < kLanes; lane++) {
            const SWord &rd = env_[lane].rdata;
            if (rd.known & m) {
                k |= 1ull << lane;
                if (rd.val & m)
                    v |= 1ull << lane;
            }
        }
        sim_.setInputPlanes(ctx_->pMemRdata[b], v, k);
    }
    sim_.evalComb();
}

void
LaneSoc::finishCycle(uint64_t lanes)
{
    for (int lane = 0; lane < kLanes; lane++) {
        if (!(lanes & (1ull << lane)))
            continue;
        Logic en = sim_.value(ctx_->pMemEn, lane);
        Logic wen0 = sim_.value(ctx_->pMemWen0, lane);
        Logic wen1 = sim_.value(ctx_->pMemWen1, lane);
        if (en == Logic::Zero && wen0 == Logic::Zero &&
            wen1 == Logic::Zero) {
            continue;
        }
        sampleMemory(env_[lane], prog_, en, wen0, wen1,
                     sim_.busWord(ctx_->pMemAddr, lane),
                     sim_.busWord(ctx_->pMemWdata, lane));
    }
    sim_.latchSequential();
}

} // namespace bespoke
