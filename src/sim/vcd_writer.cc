#include "src/sim/vcd_writer.hh"

#include <map>

#include "src/util/logging.hh"

namespace bespoke
{

namespace
{

/** Split "name[3]" into ("name", 3); scalars return -1. */
std::pair<std::string, int>
splitName(const std::string &name)
{
    size_t open = name.rfind('[');
    if (open == std::string::npos || name.back() != ']')
        return {name, -1};
    return {name.substr(0, open),
            std::stoi(name.substr(open + 1, name.size() - open - 2))};
}

} // namespace

VcdWriter::VcdWriter(const Netlist &netlist, std::ostream &os,
                     const std::string &top)
    : nl_(netlist), os_(os), top_(top)
{
    // Collect ports into bus signals.
    std::map<std::string, std::map<int, GateId>> groups;
    for (const auto &[name, id] : nl_.ports()) {
        auto [base, idx] = splitName(name);
        groups[base][idx < 0 ? 0 : idx] = id;
    }
    for (const auto &[base, bits] : groups) {
        Signal s;
        s.name = base;
        int width = bits.rbegin()->first + 1;
        s.bits.assign(static_cast<size_t>(width), kNoGate);
        for (const auto &[idx, id] : bits)
            s.bits[static_cast<size_t>(idx)] = id;
        signals_.push_back(std::move(s));
    }
}

void
VcdWriter::watch(GateId id, const std::string &name)
{
    bespoke_assert(!headerWritten_, "watch() after the header");
    Signal s;
    s.name = name;
    s.bits = {id};
    signals_.push_back(std::move(s));
}

void
VcdWriter::watchBus(const std::vector<GateId> &ids,
                    const std::string &name)
{
    bespoke_assert(!headerWritten_, "watchBus() after the header");
    Signal s;
    s.name = name;
    s.bits = ids;
    signals_.push_back(std::move(s));
}

std::string
VcdWriter::codeFor(size_t index)
{
    // Printable identifier codes: base-94 over '!'..'~'.
    std::string code;
    do {
        code += static_cast<char>('!' + index % 94);
        index /= 94;
    } while (index > 0);
    return code;
}

char
VcdWriter::vcdChar(Logic v)
{
    switch (v) {
      case Logic::Zero:
        return '0';
      case Logic::One:
        return '1';
      default:
        return 'x';
    }
}

void
VcdWriter::writeHeader()
{
    bespoke_assert(!headerWritten_);
    os_ << "$date bespoke-processors simulation $end\n";
    os_ << "$timescale 10ns $end\n";  // one tick per 100 MHz cycle
    os_ << "$scope module " << top_ << " $end\n";
    for (size_t i = 0; i < signals_.size(); i++) {
        signals_[i].code = codeFor(i);
        os_ << "$var wire " << signals_[i].bits.size() << " "
            << signals_[i].code << " " << signals_[i].name;
        if (signals_[i].bits.size() > 1)
            os_ << " [" << signals_[i].bits.size() - 1 << ":0]";
        os_ << " $end\n";
    }
    os_ << "$upscope $end\n$enddefinitions $end\n";
    headerWritten_ = true;
}

void
VcdWriter::sample(const GateSim &sim)
{
    if (!headerWritten_)
        writeHeader();
    bool any = false;
    std::string out;
    for (Signal &s : signals_) {
        std::string value;
        if (s.bits.size() == 1) {
            value = std::string(1, vcdChar(sim.value(s.bits[0])));
        } else {
            value = "b";
            for (size_t b = s.bits.size(); b-- > 0;)
                value += vcdChar(sim.value(s.bits[b]));
            value += " ";
        }
        if (value != s.last) {
            out += value + s.code + "\n";
            s.last = value;
        }
    }
    if (!out.empty() || time_ == 0) {
        os_ << "#" << time_ << "\n" << out;
        any = true;
    }
    (void)any;
    time_++;
}

} // namespace bespoke
