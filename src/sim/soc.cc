#include "src/sim/soc.hh"

#include "src/isa/isa.hh"
#include "src/util/logging.hh"

namespace bespoke
{

EnvState
EnvState::merge(const EnvState &a, const EnvState &b)
{
    bespoke_assert(a.ram.size() == b.ram.size());
    EnvState m;
    m.ram.resize(a.ram.size());
    for (size_t i = 0; i < a.ram.size(); i++)
        m.ram[i] = SWord::merge(a.ram[i], b.ram[i]);
    m.rdata = SWord::merge(a.rdata, b.rdata);
    return m;
}

bool
EnvState::substateOf(const EnvState &c) const
{
    if (ram.size() != c.ram.size())
        return false;
    if (!rdata.substateOf(c.rdata))
        return false;
    for (size_t i = 0; i < ram.size(); i++) {
        if (!ram[i].substateOf(c.ram[i]))
            return false;
    }
    return true;
}

Soc::Soc(const Netlist &netlist, const AsmProgram &prog, bool ram_unknown,
         GateSim::EvalMode sim_mode)
    : nl_(netlist), prog_(prog), sim_(netlist, sim_mode),
      ramUnknown_(ram_unknown)
{
    pMemRdata_ = nl_.bus("mem_rdata", 16);
    pGpioIn_ = nl_.bus("gpio_in", 16);
    pMemAddr_ = nl_.bus("mem_addr", 16);
    pMemWdata_ = nl_.bus("mem_wdata", 16);
    pPcOut_ = nl_.bus("pc_out", 16);
    pGpioOut_ = nl_.bus("gpio_out", 16);
    pIrqExt_ = nl_.port("irq_ext");
    pMemEn_ = nl_.port("mem_en");
    pMemWen0_ = nl_.port("mem_wen[0]");
    pMemWen1_ = nl_.port("mem_wen[1]");
    pStFetch_ = nl_.port("st_fetch");
    pCtlXfer_ = nl_.port("ctl_xfer");
    pDecBranch_ = nl_.port("dec_branch");
    pDecIrq0_ = nl_.port("dec_irq0");
    pDecIrq1_ = nl_.port("dec_irq1");
    decBranchSrc_ = nl_.gate(pDecBranch_).in[0];
    decIrq0Src_ = nl_.gate(pDecIrq0_).in[0];
    decIrq1Src_ = nl_.gate(pDecIrq1_).in[0];
    reset();
}

void
Soc::reset()
{
    sim_.reset();
    env_.ram.assign(kRamSize / 2,
                    ramUnknown_ ? SWord::allX() : SWord::of(0));
    env_.rdata = SWord::allX();
    cycles_ = 0;
    driveInputs();
    sim_.evalComb();
}

void
Soc::driveInputs()
{
    sim_.setInputWord(pMemRdata_, env_.rdata);
    sim_.setInputWord(pGpioIn_, gpioIn_);
    sim_.setInput(pIrqExt_, irqExt_);
}

void
Soc::sampleMemoryRequest()
{
    Logic en = sim_.value(pMemEn_);
    Logic wen0 = sim_.value(pMemWen0_);
    Logic wen1 = sim_.value(pMemWen1_);
    if (en == Logic::Zero && wen0 == Logic::Zero && wen1 == Logic::Zero)
        return;

    SWord addr = sim_.busWord(pMemAddr_);
    SWord wdata = sim_.busWord(pMemWdata_);

    // --- Writes (byte lanes) ---
    auto lane_write = [&](SWord &word, Logic wen, int lane) {
        if (wen == Logic::Zero)
            return;
        SWord neww = word;
        for (int b = 0; b < 8; b++) {
            int bit = lane * 8 + b;
            neww.setBit(bit, wdata.bit(bit));
        }
        if (wen == Logic::One) {
            word = neww;
        } else {
            word = SWord::merge(word, neww);  // may or may not write
        }
    };

    bool any_write = wen0 != Logic::Zero || wen1 != Logic::Zero;
    if (any_write && en != Logic::Zero) {
        if (addr.anyX()) {
            // Unknown destination: every RAM word may have been
            // (partially) overwritten.
            for (SWord &w : env_.ram) {
                SWord neww0 = w, neww1 = w;
                lane_write(neww0, Logic::X, 0);
                lane_write(neww1, Logic::X, 1);
                w = SWord::merge(neww0, neww1);
            }
        } else {
            uint16_t a = addr.val;
            if (isRamAddr(a)) {
                SWord &w = env_.ram[(a - kRamBase) >> 1];
                lane_write(w, wen0, 0);
                lane_write(w, wen1, 1);
            } else if (isPeriphAddr(a)) {
                // Peripheral registers live inside the netlist.
            } else {
                bespoke_warn("write to ROM/unmapped address 0x",
                             std::hex, a, " ignored");
            }
        }
    }

    // --- Reads (synchronous; data presented next cycle) ---
    bool is_read = en != Logic::Zero && !(wen0 == Logic::One ||
                                          wen1 == Logic::One);
    if (is_read) {
        SWord data = SWord::allX();
        if (addr.anyX()) {
            data = SWord::allX();
        } else {
            uint16_t a = static_cast<uint16_t>(addr.val & ~1u);
            if (isRomAddr(a)) {
                data = SWord::of(prog_.romWord(a));
            } else if (isRamAddr(a)) {
                data = env_.ram[(a - kRamBase) >> 1];
            } else if (isPeriphAddr(a)) {
                data = SWord::allX();  // routed inside the netlist
            } else {
                data = SWord::allX();
            }
        }
        if (en == Logic::X) {
            // Request may or may not have happened: hold vs new data.
            env_.rdata = SWord::merge(env_.rdata, data);
        } else {
            env_.rdata = data;
        }
    }
}

void
Soc::evalOnly()
{
    driveInputs();
    sim_.evalComb();
}

void
Soc::finishCycle()
{
    sampleMemoryRequest();
    sim_.latchSequential();
    cycles_++;
}

void
Soc::cycle(const std::function<void()> &after_eval)
{
    evalOnly();
    if (after_eval)
        after_eval();
    finishCycle();
}

SWord
Soc::gpioOut() const
{
    return sim_.busWord(pGpioOut_);
}

SWord
Soc::pc() const
{
    return sim_.busWord(pPcOut_);
}

Logic
Soc::stFetch() const
{
    return sim_.value(pStFetch_);
}

Logic
Soc::ctlXfer() const
{
    return sim_.value(pCtlXfer_);
}

Logic
Soc::decBranch() const
{
    return sim_.value(pDecBranch_);
}

Logic
Soc::decIrq0() const
{
    return sim_.value(pDecIrq0_);
}

Logic
Soc::decIrq1() const
{
    return sim_.value(pDecIrq1_);
}

SWord
Soc::ramWord(uint16_t byte_addr) const
{
    bespoke_assert(isRamAddr(byte_addr));
    return env_.ram[(byte_addr - kRamBase) >> 1];
}

void
Soc::pokeRamWord(uint16_t byte_addr, SWord w)
{
    bespoke_assert(isRamAddr(byte_addr));
    env_.ram[(byte_addr - kRamBase) >> 1] = w;
}

} // namespace bespoke
