#include "src/sim/soc.hh"

#include "src/isa/isa.hh"
#include "src/util/logging.hh"

namespace bespoke
{

EnvState
EnvState::merge(const EnvState &a, const EnvState &b)
{
    bespoke_assert(a.ram.size() == b.ram.size());
    EnvState m;
    m.ram.resize(a.ram.size());
    for (size_t i = 0; i < a.ram.size(); i++)
        m.ram[i] = SWord::merge(a.ram[i], b.ram[i]);
    m.rdata = SWord::merge(a.rdata, b.rdata);
    return m;
}

bool
EnvState::substateOf(const EnvState &c) const
{
    if (ram.size() != c.ram.size())
        return false;
    if (!rdata.substateOf(c.rdata))
        return false;
    for (size_t i = 0; i < ram.size(); i++) {
        if (!ram[i].substateOf(c.ram[i]))
            return false;
    }
    return true;
}

Soc::Soc(const Netlist &netlist, const AsmProgram &prog, bool ram_unknown,
         GateSim::EvalMode sim_mode)
    : Soc(SocContext::make(netlist), prog, ram_unknown, sim_mode)
{
}

Soc::Soc(std::shared_ptr<const SocContext> ctx, const AsmProgram &prog,
         bool ram_unknown, GateSim::EvalMode sim_mode)
    : ctx_(std::move(ctx)), nl_(ctx_->netlist), prog_(prog),
      sim_(ctx_->netlist, sim_mode, ctx_->prep),
      ramUnknown_(ram_unknown)
{
    reset();
}

void
Soc::reset()
{
    sim_.reset();
    env_.ram.assign(kRamSize / 2,
                    ramUnknown_ ? SWord::allX() : SWord::of(0));
    env_.rdata = SWord::allX();
    cycles_ = 0;
    driveInputs();
    sim_.evalComb();
}

void
Soc::driveInputs()
{
    sim_.setInputWord(ctx_->pMemRdata, env_.rdata);
    sim_.setInputWord(ctx_->pGpioIn, gpioIn_);
    sim_.setInput(ctx_->pIrqExt, irqExt_);
}

void
Soc::sampleMemoryRequest()
{
    Logic en = sim_.value(ctx_->pMemEn);
    Logic wen0 = sim_.value(ctx_->pMemWen0);
    Logic wen1 = sim_.value(ctx_->pMemWen1);
    if (en == Logic::Zero && wen0 == Logic::Zero && wen1 == Logic::Zero)
        return;

    // wdata only matters when a write may happen; reads (the common
    // case — every fetch is one) skip the 16-bit bus transpose.
    SWord wdata;
    if (wen0 != Logic::Zero || wen1 != Logic::Zero)
        wdata = sim_.busWord(ctx_->pMemWdata);
    sampleMemory(env_, prog_, en, wen0, wen1,
                 sim_.busWord(ctx_->pMemAddr), wdata);
}

void
sampleMemory(EnvState &env, const AsmProgram &prog, Logic en,
             Logic wen0, Logic wen1, SWord addr, SWord wdata)
{
    if (en == Logic::Zero && wen0 == Logic::Zero && wen1 == Logic::Zero)
        return;

    // --- Writes (byte lanes) ---
    // Whole-byte copy with word-level mask ops: replacing the byte
    // lane of `word` with wdata's bits is a (val, known) blend under
    // the byte mask, and a may-write (wen = X) merges that blend with
    // the unwritten word. Equivalent to bit-by-bit setBit/merge but
    // O(1) per word — the X-address smear below applies this to every
    // RAM word per cycle, which is the hot path for runs that spin
    // with unknown store addresses.
    auto lane_write = [&](SWord &word, Logic wen, int lane) {
        if (wen == Logic::Zero)
            return;
        const uint16_t bm = static_cast<uint16_t>(0xffu << (lane * 8));
        SWord neww(
            static_cast<uint16_t>((word.val & ~bm) | (wdata.val & bm)),
            static_cast<uint16_t>((word.known & ~bm) |
                                  (wdata.known & bm)));
        if (wen == Logic::One) {
            word = neww;
        } else {
            word = SWord::merge(word, neww);  // may or may not write
        }
    };

    bool any_write = wen0 != Logic::Zero || wen1 != Logic::Zero;
    if (any_write && en != Logic::Zero) {
        if (addr.anyX()) {
            // Unknown destination: every RAM word may have been
            // (partially) overwritten.
            for (SWord &w : env.ram) {
                SWord neww0 = w, neww1 = w;
                lane_write(neww0, Logic::X, 0);
                lane_write(neww1, Logic::X, 1);
                w = SWord::merge(neww0, neww1);
            }
        } else {
            uint16_t a = addr.val;
            if (isRamAddr(a)) {
                SWord &w = env.ram[(a - kRamBase) >> 1];
                lane_write(w, wen0, 0);
                lane_write(w, wen1, 1);
            } else if (isPeriphAddr(a)) {
                // Peripheral registers live inside the netlist.
            } else {
                bespoke_warn("write to ROM/unmapped address 0x",
                             std::hex, a, " ignored");
            }
        }
    }

    // --- Reads (synchronous; data presented next cycle) ---
    bool is_read = en != Logic::Zero && !(wen0 == Logic::One ||
                                          wen1 == Logic::One);
    if (is_read) {
        SWord data = SWord::allX();
        if (addr.anyX()) {
            data = SWord::allX();
        } else {
            uint16_t a = static_cast<uint16_t>(addr.val & ~1u);
            if (isRomAddr(a)) {
                data = SWord::of(prog.romWord(a));
            } else if (isRamAddr(a)) {
                data = env.ram[(a - kRamBase) >> 1];
            } else if (isPeriphAddr(a)) {
                data = SWord::allX();  // routed inside the netlist
            } else {
                data = SWord::allX();
            }
        }
        if (en == Logic::X) {
            // Request may or may not have happened: hold vs new data.
            env.rdata = SWord::merge(env.rdata, data);
        } else {
            env.rdata = data;
        }
    }
}

void
Soc::evalOnly()
{
    driveInputs();
    sim_.evalComb();
}

void
Soc::finishCycle()
{
    sampleMemoryRequest();
    sim_.latchSequential();
    cycles_++;
}

void
Soc::cycle(const std::function<void()> &after_eval)
{
    evalOnly();
    if (after_eval)
        after_eval();
    finishCycle();
}

SWord
Soc::gpioOut() const
{
    return sim_.busWord(ctx_->pGpioOut);
}

SWord
Soc::pc() const
{
    return sim_.busWord(ctx_->pPcOut);
}

Logic
Soc::stFetch() const
{
    return sim_.value(ctx_->pStFetch);
}

Logic
Soc::ctlXfer() const
{
    return sim_.value(ctx_->pCtlXfer);
}

Logic
Soc::decBranch() const
{
    return sim_.value(ctx_->pDecBranch);
}

Logic
Soc::decIrq0() const
{
    return sim_.value(ctx_->pDecIrq0);
}

Logic
Soc::decIrq1() const
{
    return sim_.value(ctx_->pDecIrq1);
}

SWord
Soc::ramWord(uint16_t byte_addr) const
{
    bespoke_assert(isRamAddr(byte_addr));
    return env_.ram[(byte_addr - kRamBase) >> 1];
}

void
Soc::pokeRamWord(uint16_t byte_addr, SWord w)
{
    bespoke_assert(isRamAddr(byte_addr));
    env_.ram[(byte_addr - kRamBase) >> 1] = w;
}

} // namespace bespoke
