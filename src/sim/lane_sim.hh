/**
 * @file
 * 64-lane bit-plane packed gate simulator.
 *
 * LaneSim evaluates up to 64 *independent scenarios* of one netlist
 * per gate visit. Each net stores two uint64_t bit planes — val and
 * known — with lane i in bit i; a lane's three-valued signal is
 * decoded as X when its known bit is 0, else its val bit (val is kept
 * masked by known, the same canonical form SWord uses). All cell
 * functions are composed from bitwise plane operations implementing
 * exact Kleene semantics, so every lane is bit-identical to a scalar
 * GateSim run of the same scenario (pinned by tests/test_lane_sim.cc).
 *
 * Unlike GateSim there is no event-driven mode: one full topological
 * sweep evaluates all 64 lanes at once, so the per-lane cost of a
 * sweep is 1/64th of a scalar full pass — far below the event-driven
 * scalar cost whenever a handful of lanes are occupied. Callers batch
 * scenarios (activity-analysis frontier states, workload replays)
 * onto lanes and mask out finished lanes.
 *
 * Forcing supports per-lane masks: force(id, lanes, value) overrides
 * the gate's output only in the given lanes, and clearForces(lanes)
 * releases only those lanes — the lane-parallel analogue of the
 * scalar force()/clearForces() used for execution-tree forks.
 */

#ifndef BESPOKE_SIM_LANE_SIM_HH
#define BESPOKE_SIM_LANE_SIM_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/isa/assembler.hh"
#include "src/sim/gate_sim.hh"
#include "src/sim/soc.hh"

namespace bespoke
{

class LaneSim
{
  public:
    static constexpr int kLanes = 64;

    explicit LaneSim(const Netlist &netlist,
                     std::shared_ptr<const SimPrep> prep = nullptr);

    const Netlist &netlist() const { return nl_; }
    const std::shared_ptr<const SimPrep> &prep() const { return prep_; }

    /** Reset every lane: ties driven, flops at reset value, rest X. */
    void reset();

    /** @name Value access */
    /// @{
    void setInput(GateId id, int lane, Logic v);
    /** Drive one input to the same value in every lane. */
    void setInputAll(GateId id, Logic v);
    /** Drive one input's raw planes (val must be masked by known). */
    void setInputPlanes(GateId id, uint64_t val, uint64_t known);
    Logic value(GateId id, int lane) const
    {
        uint64_t m = 1ull << lane;
        if (!(known_[id] & m))
            return Logic::X;
        return (val_[id] & m) ? Logic::One : Logic::Zero;
    }
    /** Collect a bus into one lane's symbolic word (LSB-first ids). */
    SWord busWord(const std::vector<GateId> &bus_ids, int lane) const;
    uint64_t valPlane(GateId id) const { return val_[id]; }
    uint64_t knownPlane(GateId id) const { return known_[id]; }
    /** Lanes where the net is known One. */
    uint64_t oneMask(GateId id) const { return val_[id]; }
    /** Lanes where the net is X. */
    uint64_t xMask(GateId id) const { return ~known_[id]; }
    /// @}

    /** @name Cycle phases (all lanes at once) */
    /// @{
    void evalComb();
    void latchSequential();
    /// @}

    /** @name Per-lane forcing */
    /// @{
    /** Override a net in the given lanes; value bit i is the forced
     *  value of lane i (bits outside `lanes` are ignored). */
    void force(GateId id, uint64_t lanes, uint64_t value);
    /** Release forces in the given lanes only. */
    void clearForces(uint64_t lanes);
    void clearAllForces() { clearForces(~0ull); }
    /// @}

    /** @name Per-lane sequential state */
    /// @{
    /** Load a scalar SeqState snapshot into one lane. */
    void restoreSeqLane(int lane, const SeqState &s);
    SeqState seqStateLane(int lane) const;
    const std::vector<GateId> &seqIds() const { return prep_->seqIds; }
    /// @}

    /** Lifetime gate visits (each visit evaluates all 64 lanes). */
    uint64_t gateVisitsTotal() const { return gateVisitsTotal_; }

  private:
    const Netlist &nl_;
    std::shared_ptr<const SimPrep> prep_;
    std::vector<uint64_t> val_;    ///< lane val plane per net
    std::vector<uint64_t> known_;  ///< lane known plane per net
    std::vector<uint64_t> forceMask_;  ///< lanes forced per net
    std::vector<uint64_t> forceVal_;   ///< forced values per net
    std::vector<GateId> forcedIds_;
    bool anyForce_ = false;
    uint64_t gateVisitsTotal_ = 0;
};

/**
 * Lane-parallel SoC: LaneSim plus one behavioral environment (RAM,
 * memory read port, last fetch PC) per lane, sharing one program ROM.
 * The scenario loaded into a lane is a full MachineState, exactly the
 * currency of the activity-analysis frontier. GPIO and the IRQ line
 * are uniform across lanes (the analysis drives them identically).
 *
 * Memory behavior per lane is delegated to the same sampleMemory()
 * helper the scalar Soc uses, so symbolic-address conservatism is
 * identical by construction.
 */
class LaneSoc
{
  public:
    static constexpr int kLanes = LaneSim::kLanes;

    LaneSoc(std::shared_ptr<const SocContext> ctx,
            const AsmProgram &prog);

    LaneSim &sim() { return sim_; }
    const LaneSim &sim() const { return sim_; }

    void setGpioIn(SWord w) { gpioIn_ = w; }
    void setIrqExt(Logic v) { irqExt_ = v; }

    /** @name Lane lifecycle */
    /// @{
    /** Load one scenario (the fields of a MachineState) into a lane. */
    void loadLane(int lane, const SeqState &seq, const EnvState &env,
                  uint16_t last_fetch_pc);
    const EnvState &envLane(int lane) const { return env_[lane]; }
    SeqState seqLane(int lane) const
    {
        return sim_.seqStateLane(lane);
    }
    uint16_t lastFetchPc(int lane) const { return lastFetchPc_[lane]; }
    void setLastFetchPc(int lane, uint16_t pc)
    {
        lastFetchPc_[lane] = pc;
    }
    /// @}

    /** @name Cycle phases */
    /// @{
    /** Drive all lanes' inputs and evaluate (no latch). */
    void evalOnly();
    /** Sample memory requests for the given lanes, then latch. */
    void finishCycle(uint64_t lanes);
    /// @}

    /** @name Lane-vector observability */
    /// @{
    uint64_t stFetchOneMask() const
    {
        return sim_.oneMask(ctx_->pStFetch);
    }
    uint64_t decisionXMask() const
    {
        return sim_.xMask(ctx_->pDecIrq0) | sim_.xMask(ctx_->pDecIrq1) |
               sim_.xMask(ctx_->pDecBranch);
    }
    uint64_t ctlXferOneMask() const
    {
        return sim_.oneMask(ctx_->pCtlXfer);
    }
    uint64_t ctlXferXMask() const { return sim_.xMask(ctx_->pCtlXfer); }
    SWord pc(int lane) const
    {
        return sim_.busWord(ctx_->pPcOut, lane);
    }
    /// @}

  private:
    std::shared_ptr<const SocContext> ctx_;
    const AsmProgram &prog_;
    LaneSim sim_;
    std::array<EnvState, kLanes> env_;
    std::array<uint16_t, kLanes> lastFetchPc_{};
    SWord gpioIn_ = SWord::allX();
    Logic irqExt_ = Logic::X;
};

} // namespace bespoke

#endif // BESPOKE_SIM_LANE_SIM_HH
