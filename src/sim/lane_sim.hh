/**
 * @file
 * Width-generic lane-parallel bit-plane gate simulator.
 *
 * LaneSimT<W> evaluates up to W *independent scenarios* of one netlist
 * per gate visit. Each net stores two lane planes — val and known —
 * with lane i in bit i; a lane's three-valued signal is decoded as X
 * when its known bit is 0, else its val bit (val is kept masked by
 * known, the same canonical form SWord uses). All cell functions are
 * composed from bitwise plane operations implementing exact Kleene
 * semantics (src/sim/plane.hh), so every lane is bit-identical to a
 * scalar GateSim run of the same scenario (pinned by
 * tests/test_lane_sim.cc and the tests/diff_harness.hh lockstep
 * fixture at every width).
 *
 * Supported widths are 64/128/256/512 (explicitly instantiated in
 * lane_sim.cc; select a runtime width with withPlaneBits). At W = 64
 * the plane is one uint64_t — the historical LaneSim, still available
 * under that alias. Wider planes amortize the per-gate fixed costs
 * (dispatch, fanin indexing, force checks) over W/64 words, which is
 * where the gate·lane/s win comes from (bench/micro_kernels.cc tells
 * the story across widths).
 *
 * Unlike GateSim there is no event-driven mode: one full topological
 * sweep evaluates all W lanes at once, so the per-lane cost of a
 * sweep is 1/W of a scalar full pass — far below the event-driven
 * scalar cost whenever a handful of lanes are occupied. Callers batch
 * scenarios (activity-analysis frontier states, workload replays,
 * mutants) onto lanes and mask out finished lanes.
 *
 * Forcing supports per-lane masks: force(id, lanes, value) overrides
 * the gate's output only in the given lanes, and clearForces(lanes)
 * releases only those lanes — the lane-parallel analogue of the
 * scalar force()/clearForces() used for execution-tree forks.
 */

#ifndef BESPOKE_SIM_LANE_SIM_HH
#define BESPOKE_SIM_LANE_SIM_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/isa/assembler.hh"
#include "src/sim/gate_sim.hh"
#include "src/sim/plane.hh"
#include "src/sim/soc.hh"

namespace bespoke
{

template <int W>
class LaneSimT
{
  public:
    static constexpr int kLanes = W;
    using Mask = LaneMask<W>;

    explicit LaneSimT(const Netlist &netlist,
                      std::shared_ptr<const SimPrep> prep = nullptr);

    const Netlist &netlist() const { return nl_; }
    const std::shared_ptr<const SimPrep> &prep() const { return prep_; }

    /** Reset every lane: ties driven, flops at reset value, rest X. */
    void reset();

    /** @name Value access */
    /// @{
    void setInput(GateId id, int lane, Logic v);
    /** Drive one input to the same value in every lane. */
    void setInputAll(GateId id, Logic v);
    /** Drive one input's raw planes (val must be masked by known). */
    void setInputPlanes(GateId id, const Mask &val, const Mask &known);
    Logic value(GateId id, int lane) const
    {
        if (!laneTest(known_[id], lane))
            return Logic::X;
        return laneTest(val_[id], lane) ? Logic::One : Logic::Zero;
    }
    /** Collect a bus into one lane's symbolic word (LSB-first ids). */
    SWord busWord(const std::vector<GateId> &bus_ids, int lane) const;
    const Mask &valPlane(GateId id) const { return val_[id]; }
    const Mask &knownPlane(GateId id) const { return known_[id]; }
    /** Raw plane arrays (one mask per net), for bulk observers. */
    const std::vector<Mask> &valPlanes() const { return val_; }
    const std::vector<Mask> &knownPlanes() const { return known_; }
    /** Lanes where the net is known One. */
    const Mask &oneMask(GateId id) const { return val_[id]; }
    /** Lanes where the net is X. */
    Mask xMask(GateId id) const { return ~known_[id]; }
    /// @}

    /** @name Cycle phases (all lanes at once) */
    /// @{
    void evalComb();
    void latchSequential();
    /// @}

    /** @name Per-lane forcing */
    /// @{
    /** Override a net in the given lanes; value bit i is the forced
     *  value of lane i (bits outside `lanes` are ignored). */
    void force(GateId id, const Mask &lanes, const Mask &value);
    /** Release forces in the given lanes only. */
    void clearForces(const Mask &lanes);
    void clearAllForces() { clearForces(laneOnes<Mask>()); }
    /// @}

    /** @name Per-lane sequential state */
    /// @{
    /** Load a scalar SeqState snapshot into one lane. */
    void restoreSeqLane(int lane, const SeqState &s);
    SeqState seqStateLane(int lane) const;
    const std::vector<GateId> &seqIds() const { return prep_->seqIds; }
    /// @}

    /** Extract one lane's full value vector (byte-coded Logic per
     *  gate), the currency of ToggleCounter run traces. */
    void laneValues(int lane, std::vector<uint8_t> &out) const;

    /** Lifetime gate visits (each visit evaluates all W lanes). */
    uint64_t gateVisitsTotal() const { return gateVisitsTotal_; }

  private:
    const Netlist &nl_;
    std::shared_ptr<const SimPrep> prep_;
    std::vector<Mask> val_;    ///< lane val plane per net
    std::vector<Mask> known_;  ///< lane known plane per net
    std::vector<Mask> forceMask_;  ///< lanes forced per net
    std::vector<Mask> forceVal_;   ///< forced values per net
    std::vector<GateId> forcedIds_;
    bool anyForce_ = false;
    uint64_t gateVisitsTotal_ = 0;
    /** latchSequential pre-edge scratch (avoids a per-cycle alloc). */
    std::vector<PlanesT<Mask>> latchNext_;
};

/** The historical 64-lane engine (single-word planes). */
using LaneSim = LaneSimT<64>;

/**
 * Lane-parallel SoC: LaneSimT plus one behavioral environment (RAM,
 * memory read port, last fetch PC) per lane. The scenario loaded into
 * a lane is a full MachineState, exactly the currency of the
 * activity-analysis frontier. GPIO and the IRQ line default to
 * uniform values (the activity analysis drives them identically), but
 * support per-lane overrides for scenario batching (verify runs with
 * distinct inputs per lane); the program ROM is shared unless a lane
 * is given its own image (mutant-per-lane sweeps).
 *
 * Memory behavior per lane is delegated to the same sampleMemory()
 * helper the scalar Soc uses, so symbolic-address conservatism is
 * identical by construction.
 */
template <int W>
class LaneSocT
{
  public:
    static constexpr int kLanes = W;
    using Mask = LaneMask<W>;

    LaneSocT(std::shared_ptr<const SocContext> ctx,
             const AsmProgram &prog);

    LaneSimT<W> &sim() { return sim_; }
    const LaneSimT<W> &sim() const { return sim_; }

    void setGpioIn(SWord w);
    void setIrqExt(Logic v);
    /** Per-lane overrides (scenario batching). */
    void setGpioInLane(int lane, SWord w);
    void setIrqExtLane(int lane, Logic v);
    /** Give one lane its own program ROM (mutant overlays). The image
     *  must outlive the LaneSoc; null restores the shared program. */
    void setProgLane(int lane, const AsmProgram *prog)
    {
        progLane_[lane] = prog ? prog : &prog_;
    }
    const AsmProgram &progForLane(int lane) const
    {
        return *progLane_[lane];
    }

    /** @name Lane lifecycle */
    /// @{
    /** Load one scenario (the fields of a MachineState) into a lane. */
    void loadLane(int lane, const SeqState &seq, const EnvState &env,
                  uint16_t last_fetch_pc);
    const EnvState &envLane(int lane) const { return env_[lane]; }
    SeqState seqLane(int lane) const
    {
        return sim_.seqStateLane(lane);
    }
    uint16_t lastFetchPc(int lane) const { return lastFetchPc_[lane]; }
    void setLastFetchPc(int lane, uint16_t pc)
    {
        lastFetchPc_[lane] = pc;
    }
    /// @}

    /** @name Cycle phases */
    /// @{
    /** Drive all lanes' inputs and evaluate (no latch). */
    void evalOnly();
    /** Sample memory requests for the given lanes, then latch. */
    void finishCycle(const Mask &lanes);
    /// @}

    /** @name Lane-vector observability */
    /// @{
    const Mask &stFetchOneMask() const
    {
        return sim_.oneMask(ctx_->pStFetch);
    }
    Mask decisionXMask() const
    {
        return sim_.xMask(ctx_->pDecIrq0) | sim_.xMask(ctx_->pDecIrq1) |
               sim_.xMask(ctx_->pDecBranch);
    }
    const Mask &ctlXferOneMask() const
    {
        return sim_.oneMask(ctx_->pCtlXfer);
    }
    Mask ctlXferXMask() const { return sim_.xMask(ctx_->pCtlXfer); }
    SWord pc(int lane) const
    {
        return sim_.busWord(ctx_->pPcOut, lane);
    }
    SWord gpioOut(int lane) const
    {
        return sim_.busWord(ctx_->pGpioOut, lane);
    }
    /// @}

  private:
    std::shared_ptr<const SocContext> ctx_;
    const AsmProgram &prog_;
    LaneSimT<W> sim_;
    std::vector<EnvState> env_;
    std::vector<uint16_t> lastFetchPc_;
    std::vector<const AsmProgram *> progLane_;
    /** GPIO / IRQ input planes, maintained by the setters so evalOnly
     *  pays no per-cycle transpose for them (rdata, which changes
     *  every cycle, is transposed on the fly). */
    std::vector<Mask> gpioV_, gpioK_;
    Mask irqV_{}, irqK_{};
};

/** The historical 64-lane SoC (single-word planes). */
using LaneSoc = LaneSocT<64>;

} // namespace bespoke

#endif // BESPOKE_SIM_LANE_SIM_HH
