#include "src/sim/sim_context.hh"

#include <algorithm>

#include "src/util/logging.hh"

namespace bespoke
{

SimPrep::SimPrep(const Netlist &netlist)
    : order(netlist.levelize()), seqIds(netlist.sequentialIds())
{
    const std::vector<Gate> &gates = netlist.gates();
    size_t n = netlist.size();
    isComb.assign(n, 0);
    for (GateId id : order)
        isComb[id] = 1;

    // Topological levels: sources (INPUT/TIE/DFF/DFFE) are level 0,
    // a combinational gate is one past its deepest combinational fanin.
    level.assign(n, 0);
    uint32_t max_level = 0;
    for (GateId id : order) {
        const Gate &g = gates[id];
        uint32_t lvl = 0;
        int ni = g.numInputs();
        for (int p = 0; p < ni; p++)
            lvl = std::max(lvl, level[g.in[p]]);
        level[id] = lvl + 1;
        max_level = std::max(max_level, lvl + 1);
    }
    numLevels = max_level + 1;

    // CSR fanout lists restricted to combinational consumers; source
    // cells re-read their fanins only at latch time and need no events.
    foHead.assign(n + 1, 0);
    for (GateId id : order) {
        const Gate &g = gates[id];
        int ni = g.numInputs();
        for (int p = 0; p < ni; p++)
            foHead[g.in[p] + 1]++;
    }
    for (size_t i = 0; i < n; i++)
        foHead[i + 1] += foHead[i];
    foData.resize(foHead[n]);
    std::vector<uint32_t> cursor(foHead.begin(), foHead.end() - 1);
    for (GateId id : order) {
        const Gate &g = gates[id];
        int ni = g.numInputs();
        for (int p = 0; p < ni; p++)
            foData[cursor[g.in[p]]++] = id;
    }

    // Compiled eval program: opcode byte + padded fanin triple per
    // gate. Pins past the cell's fanin count repeat pin 0 (any valid
    // net id works — the truth table is insensitive to them), keeping
    // the evaluation loop free of a per-gate fanin-count branch.
    opcode.resize(n);
    fanin.resize(3 * n);
    for (GateId id = 0; id < n; id++) {
        const Gate &g = gates[id];
        opcode[id] = static_cast<uint8_t>(g.type);
        int ni = g.numInputs();
        for (int p = 0; p < 3; p++)
            fanin[3 * id + p] = p < ni ? g.in[p] : (ni ? g.in[0] : id);
    }

    // Kleene truth tables, one 27-entry row per cell type (padded to
    // 32 so the row index is a shift). Rows are filled by exhaustive
    // calls to the reference evalCell(), so the table-driven kernel
    // cannot diverge from the switch-based semantics. Sequential and
    // INPUT pseudo-cells never reach the eval loop; their rows are X.
    lut.assign(static_cast<size_t>(kNumCellTypes) << kLutShift,
               static_cast<uint8_t>(Logic::X));
    for (int t = 0; t < kNumCellTypes; t++) {
        CellType type = static_cast<CellType>(t);
        if (type == CellType::INPUT || cellSequential(type))
            continue;
        for (int a = 0; a < 3; a++) {
            for (int b = 0; b < 3; b++) {
                for (int c = 0; c < 3; c++) {
                    Logic in[3] = {static_cast<Logic>(a),
                                   static_cast<Logic>(b),
                                   static_cast<Logic>(c)};
                    lut[(static_cast<size_t>(t) << kLutShift) |
                        static_cast<size_t>(a * 9 + b * 3 + c)] =
                        static_cast<uint8_t>(evalCell(type, in));
                }
            }
        }
    }

    // Level buckets over the evaluation order. levelize() emits gates
    // in breadth-first (level-ascending) order; assert that here since
    // the bucketed kernels depend on it.
    levelHead.assign(numLevels + 1, 0);
    for (GateId id : order)
        levelHead[level[id] + 1]++;
    for (uint32_t l = 0; l < numLevels; l++)
        levelHead[l + 1] += levelHead[l];
    {
        uint32_t prev = 0;
        for (GateId id : order) {
            bespoke_assert(level[id] >= prev,
                           "levelize() order is not level-grouped");
            prev = level[id];
        }
    }

    // Within a level no gate reads another's output, so each bucket
    // can be reordered without changing any evaluated value. Sort
    // buckets by opcode (gate id as the deterministic tie-break): the
    // eval kernels' per-gate dispatch then sees long same-opcode runs
    // instead of a random sequence, which the branch predictor
    // rewards, most visibly on the multi-word plane kernels.
    for (uint32_t l = 0; l < numLevels; l++) {
        std::sort(order.begin() + levelHead[l],
                  order.begin() + levelHead[l + 1],
                  [&](GateId a, GateId b) {
                      return opcode[a] != opcode[b]
                                 ? opcode[a] < opcode[b]
                                 : a < b;
                  });
    }

    // Segment the sorted order into same-opcode runs (never crossing
    // a level boundary) for the once-per-segment plane dispatch.
    for (uint32_t l = 0; l < numLevels; l++) {
        uint32_t i = levelHead[l];
        const uint32_t end = levelHead[l + 1];
        while (i < end) {
            const uint8_t op = opcode[order[i]];
            uint32_t j = i + 1;
            while (j < end && opcode[order[j]] == op)
                j++;
            evalRuns.push_back({op, j - i});
            i = j;
        }
    }
}

SocContext::SocContext(const Netlist &nl)
    : netlist(nl), prep(std::make_shared<const SimPrep>(nl))
{
    pMemRdata = nl.bus("mem_rdata", 16);
    pGpioIn = nl.bus("gpio_in", 16);
    pMemAddr = nl.bus("mem_addr", 16);
    pMemWdata = nl.bus("mem_wdata", 16);
    pPcOut = nl.bus("pc_out", 16);
    pGpioOut = nl.bus("gpio_out", 16);
    pIrqExt = nl.port("irq_ext");
    pMemEn = nl.port("mem_en");
    pMemWen0 = nl.port("mem_wen[0]");
    pMemWen1 = nl.port("mem_wen[1]");
    pStFetch = nl.port("st_fetch");
    pCtlXfer = nl.port("ctl_xfer");
    pDecBranch = nl.port("dec_branch");
    pDecIrq0 = nl.port("dec_irq0");
    pDecIrq1 = nl.port("dec_irq1");
    decBranchSrc = nl.gate(pDecBranch).in[0];
    decIrq0Src = nl.gate(pDecIrq0).in[0];
    decIrq1Src = nl.gate(pDecIrq1).in[0];

    // Locate the PC flops through the pc_out port; the activity
    // analysis patches these SeqState slots when it enumerates the
    // concrete candidates of a partially-known fetch PC.
    pcSeqIndex.assign(16, -1);
    for (int b = 0; b < 16; b++) {
        GateId src = nl.gate(pPcOut[b]).in[0];
        for (size_t i = 0; i < prep->seqIds.size(); i++) {
            if (prep->seqIds[i] == src) {
                pcSeqIndex[b] = static_cast<int>(i);
                break;
            }
        }
    }
}

} // namespace bespoke
