#include "src/sim/sim_context.hh"

#include <algorithm>

#include "src/util/logging.hh"

namespace bespoke
{

SimPrep::SimPrep(const Netlist &netlist)
    : order(netlist.levelize()), seqIds(netlist.sequentialIds())
{
    const std::vector<Gate> &gates = netlist.gates();
    size_t n = netlist.size();
    isComb.assign(n, 0);
    for (GateId id : order)
        isComb[id] = 1;

    // Topological levels: sources (INPUT/TIE/DFF/DFFE) are level 0,
    // a combinational gate is one past its deepest combinational fanin.
    level.assign(n, 0);
    uint32_t max_level = 0;
    for (GateId id : order) {
        const Gate &g = gates[id];
        uint32_t lvl = 0;
        int ni = g.numInputs();
        for (int p = 0; p < ni; p++)
            lvl = std::max(lvl, level[g.in[p]]);
        level[id] = lvl + 1;
        max_level = std::max(max_level, lvl + 1);
    }
    numLevels = max_level + 1;

    // CSR fanout lists restricted to combinational consumers; source
    // cells re-read their fanins only at latch time and need no events.
    foHead.assign(n + 1, 0);
    for (GateId id : order) {
        const Gate &g = gates[id];
        int ni = g.numInputs();
        for (int p = 0; p < ni; p++)
            foHead[g.in[p] + 1]++;
    }
    for (size_t i = 0; i < n; i++)
        foHead[i + 1] += foHead[i];
    foData.resize(foHead[n]);
    std::vector<uint32_t> cursor(foHead.begin(), foHead.end() - 1);
    for (GateId id : order) {
        const Gate &g = gates[id];
        int ni = g.numInputs();
        for (int p = 0; p < ni; p++)
            foData[cursor[g.in[p]]++] = id;
    }
}

SocContext::SocContext(const Netlist &nl)
    : netlist(nl), prep(std::make_shared<const SimPrep>(nl))
{
    pMemRdata = nl.bus("mem_rdata", 16);
    pGpioIn = nl.bus("gpio_in", 16);
    pMemAddr = nl.bus("mem_addr", 16);
    pMemWdata = nl.bus("mem_wdata", 16);
    pPcOut = nl.bus("pc_out", 16);
    pGpioOut = nl.bus("gpio_out", 16);
    pIrqExt = nl.port("irq_ext");
    pMemEn = nl.port("mem_en");
    pMemWen0 = nl.port("mem_wen[0]");
    pMemWen1 = nl.port("mem_wen[1]");
    pStFetch = nl.port("st_fetch");
    pCtlXfer = nl.port("ctl_xfer");
    pDecBranch = nl.port("dec_branch");
    pDecIrq0 = nl.port("dec_irq0");
    pDecIrq1 = nl.port("dec_irq1");
    decBranchSrc = nl.gate(pDecBranch).in[0];
    decIrq0Src = nl.gate(pDecIrq0).in[0];
    decIrq1Src = nl.gate(pDecIrq1).in[0];

    // Locate the PC flops through the pc_out port; the activity
    // analysis patches these SeqState slots when it enumerates the
    // concrete candidates of a partially-known fetch PC.
    pcSeqIndex.assign(16, -1);
    for (int b = 0; b < 16; b++) {
        GateId src = nl.gate(pPcOut[b]).in[0];
        for (size_t i = 0; i < prep->seqIds.size(); i++) {
            if (prep->seqIds[i] == src) {
                pcSeqIndex[b] = static_cast<int>(i);
                break;
            }
        }
    }
}

} // namespace bespoke
