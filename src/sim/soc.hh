/**
 * @file
 * SoC environment: the bsp430 netlist plus behavioral program ROM and
 * data RAM, stepped cycle by cycle.
 *
 * The memories are synchronous with one cycle of read latency, exactly
 * what the core's FSM expects. RAM contents are three-valued words: the
 * symbolic activity analysis starts RAM fully unknown (paper Algorithm
 * 1 line 2, "initialize all memory cells ... to X"), while concrete
 * verification runs start it zeroed to match the ISS.
 *
 * Conservative handling of symbolic addresses:
 *  - read with any X address bit  -> returns all-X data;
 *  - write with any X address bit -> every RAM word is widened by
 *    merging with the written data (the write may have landed anywhere).
 */

#ifndef BESPOKE_SIM_SOC_HH
#define BESPOKE_SIM_SOC_HH

#include <functional>
#include <vector>

#include "src/isa/assembler.hh"
#include "src/sim/gate_sim.hh"

namespace bespoke
{

/** Behavioral memory + pin state; snapshot/restore for tree forking. */
struct EnvState
{
    std::vector<SWord> ram;   ///< one SWord per RAM word
    SWord rdata;              ///< currently driven memory read data

    bool operator==(const EnvState &) const = default;

    /** Widen toward the most conservative common state. */
    static EnvState merge(const EnvState &a, const EnvState &b);
    /** True if this state is covered by the conservative state c. */
    bool substateOf(const EnvState &c) const;
};

/**
 * One memory-port transaction against a behavioral environment: the
 * shared core of Soc::sampleMemoryRequest(), also applied per lane by
 * LaneSoc so scalar and lane-parallel memory semantics (including the
 * conservative symbolic-address handling) cannot diverge.
 */
void sampleMemory(EnvState &env, const AsmProgram &prog, Logic en,
                  Logic wen0, Logic wen1, SWord addr, SWord wdata);

class Soc
{
  public:
    /**
     * @param netlist   the core (original or bespoke); looked-up ports
     *                  must exist (see bsp430.hh)
     * @param prog      program ROM image
     * @param ram_unknown start RAM at X (symbolic) instead of 0
     * @param sim_mode  gate evaluator strategy (event-driven unless
     *                  BESPOKE_FULL_EVAL=1 is set)
     */
    Soc(const Netlist &netlist, const AsmProgram &prog, bool ram_unknown,
        GateSim::EvalMode sim_mode = GateSim::defaultMode());

    /**
     * Construct from a pre-built shared context (port ids + simulator
     * prep resolved once per netlist). This is the cheap constructor
     * the parallel activity analysis uses to stamp out one Soc per
     * worker; behavior is identical to the netlist constructor.
     */
    Soc(std::shared_ptr<const SocContext> ctx, const AsmProgram &prog,
        bool ram_unknown,
        GateSim::EvalMode sim_mode = GateSim::defaultMode());

    /** The shared per-netlist context this Soc runs on. */
    const std::shared_ptr<const SocContext> &context() const
    {
        return ctx_;
    }

    GateSim &sim() { return sim_; }
    const GateSim &sim() const { return sim_; }

    /** Reset the core and environment (cycle 0 inputs driven). */
    void reset();

    /**
     * Advance one clock cycle: drive inputs, evaluate, let the
     * environment sample the memory request, latch flops.
     * Observers that need post-eval values (activity trackers) can pass
     * a callback invoked between evaluation and latching.
     */
    void cycle(const std::function<void()> &after_eval = nullptr);

    /** Evaluate combinational logic with current inputs (no latch). */
    void evalOnly();

    /** Finish the current cycle after evalOnly(): sample and latch. */
    void finishCycle();

    /** @name Environment controls */
    /// @{
    void setGpioIn(SWord w) { gpioIn_ = w; }
    void setIrqExt(Logic v) { irqExt_ = v; }
    /// @}

    /** @name Observability */
    /// @{
    SWord gpioOut() const;
    SWord pc() const;
    Logic stFetch() const;
    Logic ctlXfer() const;
    Logic decBranch() const;
    Logic decIrq0() const;
    Logic decIrq1() const;
    /** Net driving a decision output port (target for force()). */
    GateId decBranchNet() const { return ctx_->decBranchSrc; }
    GateId decIrq0Net() const { return ctx_->decIrq0Src; }
    GateId decIrq1Net() const { return ctx_->decIrq1Src; }
    SWord ramWord(uint16_t byte_addr) const;
    void pokeRamWord(uint16_t byte_addr, SWord w);
    const std::vector<SWord> &ram() const { return env_.ram; }
    uint64_t cyclesRun() const { return cycles_; }
    /// @}

    /** @name State snapshot (machine = flops + environment) */
    /// @{
    EnvState envState() const { return env_; }
    void restoreEnvState(const EnvState &s) { env_ = s; }
    /// @}

  private:
    void driveInputs();
    void sampleMemoryRequest();

    /** Shared immutable port ids + simulator prep for the netlist. */
    std::shared_ptr<const SocContext> ctx_;
    const Netlist &nl_;
    const AsmProgram &prog_;
    GateSim sim_;
    bool ramUnknown_;

    EnvState env_;
    SWord gpioIn_ = SWord::allX();
    Logic irqExt_ = Logic::X;
    uint64_t cycles_ = 0;
};

} // namespace bespoke

#endif // BESPOKE_SIM_SOC_HH
