/**
 * @file
 * Immutable per-netlist simulation context, shareable across threads.
 *
 * Building a GateSim used to recompute the levelized evaluation order
 * and the event-propagation structures (topological levels, fanout
 * CSR) from scratch, and every Soc re-resolved its port ids. That was
 * fine when one simulator lived for a whole analysis, but the parallel
 * path-exploration engine constructs one Soc per worker; the read-only
 * prep is hoisted here so N workers share one copy.
 *
 * Everything in this file is computed once from a const Netlist and
 * never mutated afterwards, so concurrent readers need no locking. The
 * context holds a reference to the netlist: the netlist must outlive
 * every context/simulator built on it (same rule GateSim always had).
 */

#ifndef BESPOKE_SIM_SIM_CONTEXT_HH
#define BESPOKE_SIM_SIM_CONTEXT_HH

#include <memory>
#include <vector>

#include "src/netlist/netlist.hh"

namespace bespoke
{

/**
 * Evaluation-order and event-propagation data for one netlist (the
 * part of GateSim's setup that does not depend on simulator state).
 *
 * Beyond the order/levels/fanout CSR, the prep carries a *compiled
 * eval program*: a flat SoA image of the combinational netlist that
 * the simulators execute without touching Netlist at all. Per gate
 * there is one opcode byte (the CellType) and three fanin net ids
 * (unused pins padded with pin 0 so the inner loop is branch-free);
 * the cell functions themselves are folded into a 27-entry lookup
 * table per opcode (3 Kleene values ^ 3 pins, padded to 32 entries so
 * the row index is a shift). The tables are built by exhaustively
 * calling evalCell(), so table-driven evaluation is bit-identical to
 * the switch-based reference by construction.
 */
struct SimPrep
{
    explicit SimPrep(const Netlist &netlist);

    std::vector<GateId> order;    ///< combinational topological order
    std::vector<GateId> seqIds;   ///< DFF/DFFE ids, SeqState order
    std::vector<uint32_t> level;  ///< topological level per comb gate
    std::vector<uint8_t> isComb;  ///< 1 if the gate appears in order
    std::vector<uint32_t> foHead; ///< CSR index into foData (size n+1)
    std::vector<GateId> foData;   ///< combinational consumers per net
    uint32_t numLevels = 1;       ///< bucket count (max level + 1)

    /** @name Compiled eval program */
    /// @{
    /** CellType per gate, the opcode of the eval program. */
    std::vector<uint8_t> opcode;
    /** 3 fanin net ids per gate, flat at fanin[3*id]; pins beyond the
     *  cell's fanin count repeat pin 0 (the LUT ignores them). */
    std::vector<uint32_t> fanin;
    /** Kleene truth tables: lut[(op << kLutShift) | (a*9 + b*3 + c)]
     *  with a/b/c the byte-coded Logic values of pins 0..2. */
    std::vector<uint8_t> lut;
    static constexpr int kLutShift = 5;  ///< 27 entries padded to 32
    /** CSR over `order` by topological level: gates of level l occupy
     *  order[levelHead[l] .. levelHead[l+1]). Levels 0 (sources) are
     *  empty; size numLevels + 1. */
    std::vector<uint32_t> levelHead;
    /**
     * Same-opcode segments of `order` (which is opcode-sorted within
     * each level): run r covers order[pos .. pos+len) where pos is the
     * running sum of earlier lengths, and every gate in it has opcode
     * `op`. Lets plane evaluation dispatch once per segment and run a
     * tight per-opcode loop instead of switching per gate. Runs never
     * span a level boundary.
     */
    struct EvalRun
    {
        uint8_t op;
        uint32_t len;
    };
    std::vector<EvalRun> evalRuns;
    /// @}
};

/**
 * SimPrep plus the resolved bsp430 port/bus ids a Soc needs, and the
 * PC-flop index map the activity analysis uses to enumerate symbolic
 * fetch addresses. Requires the standard core ports (see bsp430.hh);
 * valid on original and transformed netlists alike.
 */
struct SocContext
{
    explicit SocContext(const Netlist &netlist);

    /** Build a shareable context (the common spelling at call sites). */
    static std::shared_ptr<const SocContext> make(const Netlist &netlist)
    {
        return std::make_shared<const SocContext>(netlist);
    }

    const Netlist &netlist;
    std::shared_ptr<const SimPrep> prep;

    // Port / bus ids (names as in bsp430.hh).
    std::vector<GateId> pMemRdata, pGpioIn, pMemAddr, pMemWdata;
    std::vector<GateId> pPcOut, pGpioOut;
    GateId pIrqExt, pMemEn, pMemWen0, pMemWen1;
    GateId pStFetch, pCtlXfer, pDecBranch, pDecIrq0, pDecIrq1;
    GateId decBranchSrc, decIrq0Src, decIrq1Src;

    /**
     * For each pc_out bit, the index of its driving flop in SeqState
     * order, or -1 if the bit is not driven by a flop (in which case
     * the analysis cannot enumerate an X value for it).
     */
    std::vector<int> pcSeqIndex;
};

} // namespace bespoke

#endif // BESPOKE_SIM_SIM_CONTEXT_HH
