#include "src/sim/gate_sim.hh"

#include "src/util/logging.hh"

namespace bespoke
{

GateSim::GateSim(const Netlist &netlist)
    : nl_(netlist), order_(netlist.levelize()),
      seqIds_(netlist.sequentialIds()),
      val_(netlist.size(), static_cast<uint8_t>(Logic::X))
{
}

void
GateSim::reset()
{
    for (GateId i = 0; i < nl_.size(); i++) {
        switch (nl_.gate(i).type) {
          case CellType::TIE0:
            val_[i] = static_cast<uint8_t>(Logic::Zero);
            break;
          case CellType::TIE1:
            val_[i] = static_cast<uint8_t>(Logic::One);
            break;
          default:
            val_[i] = static_cast<uint8_t>(Logic::X);
        }
    }
    for (GateId id : seqIds_) {
        val_[id] = static_cast<uint8_t>(
            logicOf(nl_.gate(id).resetValue));
    }
    clearForces();
}

void
GateSim::setInput(GateId id, Logic v)
{
    bespoke_assert(nl_.gate(id).type == CellType::INPUT,
                   "setInput on non-input gate ", id);
    val_[id] = static_cast<uint8_t>(v);
}

void
GateSim::setInputWord(const std::vector<GateId> &bus_ids, SWord w)
{
    bespoke_assert(bus_ids.size() <= 16);
    for (size_t i = 0; i < bus_ids.size(); i++)
        setInput(bus_ids[i], w.bit(static_cast<int>(i)));
}

SWord
GateSim::busWord(const std::vector<GateId> &bus_ids) const
{
    bespoke_assert(bus_ids.size() <= 16);
    SWord w;
    for (size_t i = 0; i < bus_ids.size(); i++)
        w.setBit(static_cast<int>(i), value(bus_ids[i]));
    return w;
}

void
GateSim::evalComb()
{
    const std::vector<Gate> &gates = nl_.gates();
    Logic in[3];
    for (GateId id : order_) {
        const Gate &g = gates[id];
        int n = g.numInputs();
        for (int p = 0; p < n; p++)
            in[p] = static_cast<Logic>(val_[g.in[p]]);
        Logic out = evalCell(g.type, in);
        if (anyForce_ && forced_[id])
            out = static_cast<Logic>(forced_[id] - 1);
        val_[id] = static_cast<uint8_t>(out);
    }
}

void
GateSim::latchSequential()
{
    const std::vector<Gate> &gates = nl_.gates();
    // Two passes so all D inputs are read before any Q changes; D nets
    // can be other flops' Q only through combinational gates, but a
    // direct Q->D wire is legal and must see the pre-edge value.
    std::vector<uint8_t> next(seqIds_.size());
    for (size_t i = 0; i < seqIds_.size(); i++) {
        GateId id = seqIds_[i];
        const Gate &g = gates[id];
        Logic d = static_cast<Logic>(val_[g.in[0]]);
        Logic q = static_cast<Logic>(val_[id]);
        Logic out;
        if (g.type == CellType::DFF) {
            out = d;
        } else {
            Logic en = static_cast<Logic>(val_[g.in[1]]);
            out = logicMux(en, q, d);
        }
        next[i] = static_cast<uint8_t>(out);
    }
    for (size_t i = 0; i < seqIds_.size(); i++)
        val_[seqIds_[i]] = next[i];
}

void
GateSim::force(GateId id, Logic v)
{
    bespoke_assert(v != Logic::X, "cannot force X");
    if (forced_.empty())
        forced_.resize(nl_.size(), 0);
    forced_[id] = static_cast<uint8_t>(v) + 1;
    anyForce_ = true;
}

void
GateSim::clearForces()
{
    if (anyForce_)
        std::fill(forced_.begin(), forced_.end(), 0);
    anyForce_ = false;
}

SeqState
GateSim::seqState() const
{
    SeqState s(seqIds_.size());
    for (size_t i = 0; i < seqIds_.size(); i++)
        s[i] = val_[seqIds_[i]];
    return s;
}

void
GateSim::restoreSeqState(const SeqState &s)
{
    bespoke_assert(s.size() == seqIds_.size());
    for (size_t i = 0; i < seqIds_.size(); i++)
        val_[seqIds_[i]] = s[i];
}

ActivityTracker::ActivityTracker(const Netlist &netlist)
    : nl_(&netlist), initial_(netlist.size(),
                             static_cast<uint8_t>(Logic::X)),
      toggled_(netlist.size(), 0)
{
}

void
ActivityTracker::captureInitial(const GateSim &sim)
{
    bespoke_assert(!initialCaptured_, "initial state captured twice");
    initial_ = sim.values();
    // A gate whose reset-time value is already X has no proven constant
    // value and must be treated as toggleable.
    for (size_t i = 0; i < initial_.size(); i++) {
        if (initial_[i] == static_cast<uint8_t>(Logic::X))
            toggled_[i] = 1;
    }
    initialCaptured_ = true;
}

void
ActivityTracker::observe(const GateSim &sim)
{
    bespoke_assert(initialCaptured_);
    const std::vector<uint8_t> &v = sim.values();
    for (size_t i = 0; i < v.size(); i++)
        toggled_[i] |= (v[i] != initial_[i]);
}

size_t
ActivityTracker::untoggledCellCount() const
{
    size_t n = 0;
    for (GateId i = 0; i < nl_->size(); i++) {
        if (!cellPseudo(nl_->gate(i).type) && !toggled_[i])
            n++;
    }
    return n;
}

void
ActivityTracker::mergeFrom(const ActivityTracker &other)
{
    bespoke_assert(other.nl_ == nl_ &&
                   other.toggled_.size() == toggled_.size(),
                   "merging trackers from different netlists");
    for (size_t i = 0; i < toggled_.size(); i++)
        toggled_[i] |= other.toggled_[i];
}

ToggleCounter::ToggleCounter(const Netlist &netlist)
    : last_(netlist.size(), 0), counts_(netlist.size(), 0)
{
}

void
ToggleCounter::observe(const GateSim &sim)
{
    const std::vector<uint8_t> &v = sim.values();
    if (first_) {
        last_ = v;
        first_ = false;
        cycles_++;
        return;
    }
    for (size_t i = 0; i < v.size(); i++) {
        counts_[i] += (v[i] != last_[i]);
        last_[i] = v[i];
    }
    cycles_++;
}

} // namespace bespoke
