#include "src/sim/gate_sim.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "src/util/logging.hh"

namespace bespoke
{

namespace
{

/**
 * 0x01 in every byte position of `x` holding a nonzero byte. Lets the
 * per-cycle observers compare gate-value arrays eight gates at a time
 * instead of byte-by-byte (the compiler does not vectorize the branchy
 * originals, and these loops run once per simulated cycle).
 */
inline uint64_t
nonzeroBytes(uint64_t x)
{
    uint64_t hi =
        ((x & 0x7f7f7f7f7f7f7f7fULL) + 0x7f7f7f7f7f7f7f7fULL) | x;
    return (hi >> 7) & 0x0101010101010101ULL;
}

} // namespace

GateSim::EvalMode
GateSim::defaultMode()
{
    const char *env = std::getenv("BESPOKE_FULL_EVAL");
    return (env && env[0] == '1') ? EvalMode::FullEval
                                  : EvalMode::EventDriven;
}

GateSim::GateSim(const Netlist &netlist, EvalMode mode,
                 std::shared_ptr<const SimPrep> prep)
    : nl_(netlist), mode_(mode), prep_(std::move(prep)),
      val_(netlist.size(), static_cast<uint8_t>(Logic::X)),
      forced_(netlist.size(), 0)
{
    if (!prep_)
        prep_ = std::make_shared<const SimPrep>(netlist);
    bespoke_assert(prep_->isComb.size() == netlist.size(),
                   "SimPrep was built for a different netlist");

    if (mode_ == EvalMode::FullEval)
        return;
    buckets_.resize(prep_->numLevels);
    queued_.assign(netlist.size(), 0);
}

void
GateSim::markDirty(GateId id)
{
    if (!prep_->isComb[id] || queued_[id])
        return;
    queued_[id] = 1;
    buckets_[prep_->level[id]].push_back(id);
}

void
GateSim::markFanoutsDirty(GateId id)
{
    const SimPrep &p = *prep_;
    for (uint32_t i = p.foHead[id]; i < p.foHead[id + 1]; i++)
        markDirty(p.foData[i]);
}

void
GateSim::reset()
{
    for (GateId i = 0; i < nl_.size(); i++) {
        switch (nl_.gate(i).type) {
          case CellType::TIE0:
            val_[i] = static_cast<uint8_t>(Logic::Zero);
            break;
          case CellType::TIE1:
            val_[i] = static_cast<uint8_t>(Logic::One);
            break;
          default:
            val_[i] = static_cast<uint8_t>(Logic::X);
        }
    }
    for (GateId id : prep_->seqIds) {
        val_[id] = static_cast<uint8_t>(
            logicOf(nl_.gate(id).resetValue));
    }
    clearForces();
    if (mode_ == EvalMode::EventDriven) {
        // Every combinational value is stale; the next evalComb() runs
        // one full topological pass and drains any queued leftovers.
        fullPassPending_ = true;
    }
}

void
GateSim::setInput(GateId id, Logic v)
{
    bespoke_assert(nl_.gate(id).type == CellType::INPUT,
                   "setInput on non-input gate ", id);
    uint8_t nv = static_cast<uint8_t>(v);
    if (val_[id] == nv)
        return;
    val_[id] = nv;
    if (mode_ == EvalMode::EventDriven)
        markFanoutsDirty(id);
}

void
GateSim::setInputWord(const std::vector<GateId> &bus_ids, SWord w)
{
    bespoke_assert(bus_ids.size() <= 16);
    for (size_t i = 0; i < bus_ids.size(); i++)
        setInput(bus_ids[i], w.bit(static_cast<int>(i)));
}

SWord
GateSim::busWord(const std::vector<GateId> &bus_ids) const
{
    bespoke_assert(bus_ids.size() <= 16);
    SWord w;
    for (size_t i = 0; i < bus_ids.size(); i++)
        w.setBit(static_cast<int>(i), value(bus_ids[i]));
    return w;
}

void
GateSim::evalCombFull()
{
    // Compiled eval program: one table lookup per gate, no Netlist
    // access, no per-cell branching. The force check is hoisted out of
    // the common (no active forces) sweep.
    const uint8_t *lut = prep_->lut.data();
    const uint32_t *fanin = prep_->fanin.data();
    const uint8_t *op = prep_->opcode.data();
    uint8_t *val = val_.data();
    if (!anyForce_) {
        for (GateId id : prep_->order) {
            const uint32_t *f = &fanin[3 * id];
            unsigned idx = val[f[0]] * 9u + val[f[1]] * 3u + val[f[2]];
            val[id] = lut[(static_cast<unsigned>(op[id])
                           << SimPrep::kLutShift) |
                          idx];
        }
    } else {
        const uint8_t *forced = forced_.data();
        for (GateId id : prep_->order) {
            const uint32_t *f = &fanin[3 * id];
            unsigned idx = val[f[0]] * 9u + val[f[1]] * 3u + val[f[2]];
            uint8_t out = lut[(static_cast<unsigned>(op[id])
                               << SimPrep::kLutShift) |
                              idx];
            if (forced[id])
                out = forced[id] - 1;
            val[id] = out;
        }
    }
    gatesEvaluated_ = prep_->order.size();
    gatesEvaluatedTotal_ += prep_->order.size();
}

void
GateSim::evalCombEvent()
{
    if (fullPassPending_) {
        evalCombFull();
        for (std::vector<GateId> &bucket : buckets_) {
            for (GateId id : bucket)
                queued_[id] = 0;
            bucket.clear();
        }
        fullPassPending_ = false;
        return;
    }

    const uint8_t *lut = prep_->lut.data();
    const uint32_t *fanin = prep_->fanin.data();
    const uint8_t *op = prep_->opcode.data();
    uint8_t *val = val_.data();
    uint64_t evaluated = 0;
    for (std::vector<GateId> &bucket : buckets_) {
        // markFanoutsDirty() only appends to strictly higher levels
        // (consumers sit at least one level above their producer), so
        // this bucket is complete when the sweep reaches it.
        for (GateId id : bucket) {
            queued_[id] = 0;
            uint8_t nv;
            if (anyForce_ && forced_[id]) {
                nv = forced_[id] - 1;
            } else {
                const uint32_t *f = &fanin[3 * id];
                unsigned idx =
                    val[f[0]] * 9u + val[f[1]] * 3u + val[f[2]];
                nv = lut[(static_cast<unsigned>(op[id])
                          << SimPrep::kLutShift) |
                         idx];
            }
            evaluated++;
            if (val[id] != nv) {
                val[id] = nv;
                markFanoutsDirty(id);
            }
        }
        bucket.clear();
    }
    gatesEvaluated_ = evaluated;
    gatesEvaluatedTotal_ += evaluated;
}

void
GateSim::evalComb()
{
    if (mode_ == EvalMode::FullEval)
        evalCombFull();
    else
        evalCombEvent();
}

void
GateSim::latchSequential()
{
    const std::vector<Gate> &gates = nl_.gates();
    // Two passes so all D inputs are read before any Q changes; D nets
    // can be other flops' Q only through combinational gates, but a
    // direct Q->D wire is legal and must see the pre-edge value.
    std::vector<uint8_t> next(prep_->seqIds.size());
    for (size_t i = 0; i < prep_->seqIds.size(); i++) {
        GateId id = prep_->seqIds[i];
        const Gate &g = gates[id];
        Logic d = static_cast<Logic>(val_[g.in[0]]);
        Logic q = static_cast<Logic>(val_[id]);
        Logic out;
        if (g.type == CellType::DFF) {
            out = d;
        } else {
            Logic en = static_cast<Logic>(val_[g.in[1]]);
            out = logicMux(en, q, d);
        }
        next[i] = static_cast<uint8_t>(out);
    }
    bool event = mode_ == EvalMode::EventDriven;
    for (size_t i = 0; i < prep_->seqIds.size(); i++) {
        GateId id = prep_->seqIds[i];
        if (val_[id] == next[i])
            continue;
        val_[id] = next[i];
        if (event)
            markFanoutsDirty(id);
    }
}

void
GateSim::force(GateId id, Logic v)
{
    bespoke_assert(v != Logic::X, "cannot force X");
    uint8_t coded = static_cast<uint8_t>(v) + 1;
    if (forced_[id] == coded)
        return;
    if (forced_[id] == 0)
        forcedIds_.push_back(id);
    forced_[id] = coded;
    anyForce_ = true;
    if (mode_ == EvalMode::EventDriven)
        markDirty(id);
}

void
GateSim::clearForces()
{
    bool event = mode_ == EvalMode::EventDriven;
    for (GateId id : forcedIds_) {
        forced_[id] = 0;
        // The gate's output reverts to its combinational function on
        // the next evalComb(); re-evaluate it even though no fanin
        // changed.
        if (event)
            markDirty(id);
    }
    forcedIds_.clear();
    anyForce_ = false;
}

SeqState
GateSim::seqState() const
{
    SeqState s(prep_->seqIds.size());
    for (size_t i = 0; i < prep_->seqIds.size(); i++)
        s[i] = val_[prep_->seqIds[i]];
    return s;
}

void
GateSim::restoreSeqState(const SeqState &s)
{
    bespoke_assert(s.size() == prep_->seqIds.size());
    bool event = mode_ == EvalMode::EventDriven;
    for (size_t i = 0; i < prep_->seqIds.size(); i++) {
        GateId id = prep_->seqIds[i];
        if (val_[id] == s[i])
            continue;
        val_[id] = s[i];
        if (event)
            markFanoutsDirty(id);
    }
}

ActivityTracker::ActivityTracker(const Netlist &netlist)
    : nl_(&netlist), initial_(netlist.size(),
                             static_cast<uint8_t>(Logic::X)),
      toggled_(netlist.size(), 0)
{
}

void
ActivityTracker::captureInitial(const GateSim &sim)
{
    bespoke_assert(!initialCaptured_, "initial state captured twice");
    initial_ = sim.values();
    // A gate whose reset-time value is already X has no proven constant
    // value and must be treated as toggleable.
    for (size_t i = 0; i < initial_.size(); i++) {
        if (initial_[i] == static_cast<uint8_t>(Logic::X))
            toggled_[i] = 1;
    }
    initialCaptured_ = true;
}

void
ActivityTracker::observe(const GateSim &sim)
{
    bespoke_assert(initialCaptured_);
    const std::vector<uint8_t> &v = sim.values();
    const uint8_t *vp = v.data();
    const uint8_t *ip = initial_.data();
    uint8_t *tp = toggled_.data();
    const size_t n = v.size();
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        uint64_t xv, xi;
        std::memcpy(&xv, vp + i, 8);
        std::memcpy(&xi, ip + i, 8);
        const uint64_t d = nonzeroBytes(xv ^ xi);
        if (!d)
            continue;
        uint64_t xt;
        std::memcpy(&xt, tp + i, 8);
        xt |= d;
        std::memcpy(tp + i, &xt, 8);
    }
    for (; i < n; i++)
        tp[i] |= (vp[i] != ip[i]);
}

size_t
ActivityTracker::untoggledCellCount() const
{
    size_t n = 0;
    for (GateId i = 0; i < nl_->size(); i++) {
        if (!cellPseudo(nl_->gate(i).type) && !toggled_[i])
            n++;
    }
    return n;
}

void
ActivityTracker::mergeFrom(const ActivityTracker &other)
{
    bespoke_assert(other.nl_ == nl_ &&
                   other.toggled_.size() == toggled_.size(),
                   "merging trackers from different netlists");
    for (size_t i = 0; i < toggled_.size(); i++)
        toggled_[i] |= other.toggled_[i];
}

void
ActivityTracker::restore(std::vector<uint8_t> initial,
                         std::vector<uint8_t> toggled)
{
    bespoke_assert(initial.size() == nl_->size() &&
                   toggled.size() == nl_->size(),
                   "restoring tracker state of the wrong size");
    initial_ = std::move(initial);
    toggled_ = std::move(toggled);
    initialCaptured_ = true;
    // Restored toggle bits may be 0 where the list assumed 1.
    lanePendingValid_ = false;
}

ToggleCounter::ToggleCounter(const Netlist &netlist)
    : last_(netlist.size(), 0), counts_(netlist.size(), 0)
{
}

void
ToggleCounter::observe(const GateSim &sim)
{
    const std::vector<uint8_t> &v = sim.values();
    if (first_) {
        last_ = v;
        first_ = false;
        cycles_++;
        return;
    }
    const uint8_t *vp = v.data();
    uint8_t *lp = last_.data();
    const size_t n = v.size();
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        uint64_t xv, xl;
        std::memcpy(&xv, vp + i, 8);
        std::memcpy(&xl, lp + i, 8);
        if (xv == xl)
            continue;
        for (size_t b = i; b < i + 8; b++)
            counts_[b] += (vp[b] != lp[b]);
        std::memcpy(lp + i, &xv, 8);
    }
    for (; i < n; i++) {
        counts_[i] += (vp[i] != lp[i]);
        lp[i] = vp[i];
    }
    cycles_++;
}

void
ToggleCounter::ingestRun(const RunTrace &tr)
{
    if (tr.cycles == 0)
        return;  // never observed: a shared counter would not move
    bespoke_assert(tr.first.size() == counts_.size() &&
                       tr.last.size() == counts_.size(),
                   "run trace size mismatch");
    if (!first_) {
        // The transition a shared counter counts when this run's first
        // observe lands right after the previous run's last one.
        for (size_t i = 0; i < counts_.size(); i++)
            counts_[i] += (tr.first[i] != last_[i]);
    }
    last_ = tr.last;
    first_ = false;
    cycles_ += tr.cycles;
}

void
ToggleCounter::addCounts(const std::vector<uint64_t> &add)
{
    bespoke_assert(add.size() == counts_.size(), "count size mismatch");
    for (size_t i = 0; i < add.size(); i++)
        counts_[i] += add[i];
}

} // namespace bespoke
