/**
 * @file
 * Levelized three-valued gate-level simulator.
 *
 * Evaluation model: one implicit global clock. Each cycle,
 *   1. the environment drives primary inputs (setInput),
 *   2. evalComb() evaluates combinational gates,
 *   3. the environment samples outputs (memory models, trackers),
 *   4. latchSequential() updates every DFF/DFFE from its D/EN values.
 *
 * Values are Kleene 0/1/X. The simulator supports *forcing* a net to a
 * concrete value for one evaluation, which the activity analysis uses to
 * fork the execution tree when a control decision is X (paper Sec. 3.1).
 *
 * Two evaluation strategies produce bit-identical values:
 *
 *  - EventDriven (default): per-net fanout lists plus a dirty set held
 *    in per-topological-level buckets. Value changes at sources (primary
 *    inputs, flop outputs at latch time, state restores) and force() /
 *    clearForces() calls seed the dirty set; evalComb() re-evaluates
 *    only gates whose fanins changed, sweeping buckets in ascending
 *    level order so every gate is visited at most once per eval.
 *  - FullEval: the original re-evaluate-everything-in-topological-order
 *    loop. Kept as a cross-check oracle and escape hatch; select it
 *    with the constructor flag or by setting BESPOKE_FULL_EVAL=1 in the
 *    environment (which flips the default for every simulator in the
 *    process, including the ones inside Soc and the activity analysis).
 *
 * Toggle semantics follow the paper: a gate "toggles" if its stable
 * per-cycle output ever differs from its reset-time value or ever
 * becomes X (an X output means some input assignment toggles it).
 */

#ifndef BESPOKE_SIM_GATE_SIM_HH
#define BESPOKE_SIM_GATE_SIM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "src/logic/logic.hh"
#include "src/netlist/netlist.hh"
#include "src/sim/plane.hh"
#include "src/sim/sim_context.hh"

namespace bespoke
{

template <int W>
class LaneSimT;
using LaneSim = LaneSimT<64>;

/** Snapshot of all sequential state (one byte-coded Logic per flop). */
using SeqState = std::vector<uint8_t>;

class GateSim
{
  public:
    enum class EvalMode : uint8_t
    {
        EventDriven,  ///< re-evaluate only gates with changed fanins
        FullEval,     ///< re-evaluate every gate each evalComb()
    };

    /** EventDriven unless BESPOKE_FULL_EVAL=1 is set in the environment. */
    static EvalMode defaultMode();

    /**
     * @param prep shared evaluation-order/fanout prep for this netlist;
     *        built on the spot when null. Pass one SimPrep to many
     *        simulators (e.g. one per analysis worker) to amortize it.
     */
    explicit GateSim(const Netlist &netlist,
                     EvalMode mode = defaultMode(),
                     std::shared_ptr<const SimPrep> prep = nullptr);

    const Netlist &netlist() const { return nl_; }
    EvalMode mode() const { return mode_; }
    const std::shared_ptr<const SimPrep> &prep() const { return prep_; }

    /** Reset all flops to their reset values and all inputs to X. */
    void reset();

    /** @name Value access */
    /// @{
    void setInput(GateId id, Logic v);
    /** Drive a 16-wide input bus from a symbolic word. */
    void setInputWord(const std::vector<GateId> &bus_ids, SWord w);
    Logic value(GateId id) const
    {
        return static_cast<Logic>(val_[id]);
    }
    /** Collect a bus into a symbolic word (LSB-first ids). */
    SWord busWord(const std::vector<GateId> &bus_ids) const;
    /// @}

    /** @name Cycle phases */
    /// @{
    void evalComb();
    void latchSequential();
    /// @}

    /** @name Forcing (execution-tree forks) */
    /// @{
    /** Override a net's value; takes effect on the next evalComb(). */
    void force(GateId id, Logic v);
    void clearForces();
    /// @}

    /** @name Sequential state snapshot / restore */
    /// @{
    SeqState seqState() const;
    void restoreSeqState(const SeqState &s);
    /** Ids of flops, in SeqState order. */
    const std::vector<GateId> &seqIds() const { return prep_->seqIds; }
    /// @}

    /** Raw value array (one Logic per gate), for trackers. */
    const std::vector<uint8_t> &values() const { return val_; }

    /** Gates evaluated by the last evalComb() (perf introspection). */
    uint64_t gatesEvaluated() const { return gatesEvaluated_; }

    /** Lifetime gate-evaluation count across every evalComb(). */
    uint64_t gatesEvaluatedTotal() const { return gatesEvaluatedTotal_; }

  private:
    void evalCombFull();
    void evalCombEvent();
    /** Queue a combinational gate for re-evaluation (dedup'd). */
    void markDirty(GateId id);
    /** Queue all combinational consumers of a changed net. */
    void markFanoutsDirty(GateId id);

    const Netlist &nl_;
    EvalMode mode_;
    /** Shared read-only evaluation order / levels / fanout CSR. */
    std::shared_ptr<const SimPrep> prep_;
    std::vector<uint8_t> val_;     ///< Logic per gate output
    std::vector<uint8_t> forced_;  ///< 0 = none, else Logic value + 1
    std::vector<GateId> forcedIds_;  ///< gates with forced_ set
    bool anyForce_ = false;

    // Event-driven mutable state (unused in FullEval mode).
    std::vector<std::vector<GateId>> buckets_;  ///< dirty set per level
    std::vector<uint8_t> queued_;   ///< dirty-set membership flag
    bool fullPassPending_ = true;   ///< first eval after reset is full
    uint64_t gatesEvaluated_ = 0;
    uint64_t gatesEvaluatedTotal_ = 0;
};

/**
 * Tracks which gates have toggled relative to their reset-time values,
 * across an arbitrary set of simulated execution paths (observations
 * accumulate; they are never reset by state restores). Result feeds the
 * cutting & stitching transform.
 */
class ActivityTracker
{
  public:
    explicit ActivityTracker(const Netlist &netlist);

    /** Record reset-time values; called once after reset + first eval. */
    void captureInitial(const GateSim &sim);

    /** Accumulate toggles from the sim's current values. */
    void observe(const GateSim &sim);

    /**
     * Lane-vectorized observation: accumulate toggles from every lane
     * in `lanes` at once (defined in lane_sim.cc; instantiated for
     * every supported plane width).
     */
    template <int W>
    void observe(const LaneSimT<W> &sim, LaneMask<W> lanes);

    bool initialCaptured() const { return initialCaptured_; }
    bool toggled(GateId id) const { return toggled_[id] != 0; }
    /** Reset-time value (the proven constant for untoggled gates). */
    Logic initialValue(GateId id) const
    {
        return static_cast<Logic>(initial_[id]);
    }
    /** Number of real cells that never toggled. */
    size_t untoggledCellCount() const;
    /** Merge another tracker's observations (multi-app designs). */
    void mergeFrom(const ActivityTracker &other);

    /**
     * Rebuild a finished tracker from checkpointed state: one byte-coded
     * Logic per gate for the reset-time values and one 0/1 flag per gate
     * for the toggle set. Sizes must match the netlist.
     */
    void restore(std::vector<uint8_t> initial,
                 std::vector<uint8_t> toggled);

    const Netlist &netlist() const { return *nl_; }

  private:
    const Netlist *nl_;
    std::vector<uint8_t> initial_;
    std::vector<uint8_t> toggled_;
    bool initialCaptured_ = false;
    /**
     * Gates not yet marked toggled, maintained only by the lane
     * observe path (the scalar observe's flat byte loop vectorizes and
     * needs no skip list; the plane diff per gate does not). Lazily
     * rebuilt; may hold stale ids whose toggle bit was set through the
     * scalar path or mergeFrom — those are dropped on sight, so the
     * list is an invariant superset of the untoggled set.
     */
    std::vector<uint32_t> lanePending_;
    bool lanePendingValid_ = false;
};

/**
 * Counts per-gate output transitions during concrete simulation; the
 * dynamic-power model consumes these (toggles x net capacitance).
 */
class ToggleCounter
{
  public:
    explicit ToggleCounter(const Netlist &netlist);

    /** Call once per cycle after evalComb+latch; diffs against last. */
    void observe(const GateSim &sim);

    /**
     * Everything one simulated run contributes to a shared counter,
     * decomposed so lane-batched runners can replay it exactly: the
     * full value vectors at the run's first and last observe, and how
     * many times it was observed. Per-gate within-run transition
     * counts are order-independent sums and travel separately
     * (addCounts).
     */
    struct RunTrace
    {
        std::vector<uint8_t> first;  ///< values at the first observe
        std::vector<uint8_t> last;   ///< values at the last observe
        uint64_t cycles = 0;         ///< observes in this run
    };

    /**
     * Ingest one completed run's boundary contribution, exactly as if
     * the run's observes had been issued here in sequence: when a
     * previous run (or scalar observe) already primed the counter,
     * the transition between its final values and this run's first
     * values is counted — the same cross-run boundary transitions a
     * shared counter sees when runs are replayed back to back. Runs
     * must be ingested in their original sequential order; a run with
     * zero observes contributes nothing. Within-run transition counts
     * are NOT added here — pair with addCounts().
     */
    void ingestRun(const RunTrace &tr);

    /** Add pre-summed per-gate transition counts (order-free). */
    void addCounts(const std::vector<uint64_t> &add);

    uint64_t count(GateId id) const { return counts_[id]; }
    uint64_t cycles() const { return cycles_; }

    /**
     * The gate's value at the most recent observe. For a gate with
     * count() == 0 this is the ONE value it held across every observed
     * cycle (within-run transitions and cross-run boundary transitions
     * both bump count(), so zero means literally constant) — which is
     * what the SAT never-toggle pass keys its candidate polarity on,
     * replacing a whole duty-measuring replay. Meaningless before the
     * first observe (all gates read as Zero).
     */
    Logic lastValue(GateId id) const
    {
        return static_cast<Logic>(last_[id]);
    }

  private:
    std::vector<uint8_t> last_;
    std::vector<uint64_t> counts_;
    uint64_t cycles_ = 0;
    bool first_ = true;
};

} // namespace bespoke

#endif // BESPOKE_SIM_GATE_SIM_HH
