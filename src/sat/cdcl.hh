/**
 * @file
 * Self-contained CDCL SAT solver (MiniSat lineage): two-watched-literal
 * propagation, first-UIP conflict-clause learning with local clause
 * minimization, EVSIDS decision activities with phase saving, Luby
 * restarts, and an assumption interface for incremental per-gate
 * queries with failed-assumption cores.
 *
 * The solver is strictly deterministic: no randomness, all tie-breaks
 * by variable index, single-threaded. Two identical clause/solve
 * sequences produce identical verdicts, models, cores, and statistics
 * on any machine — the SAT pass's verdicts are checkpointed and diffed
 * bit-for-bit in CI, so this is a contract, not an aspiration.
 *
 * Learned clauses are kept for the lifetime of the solver (no database
 * reduction); callers bound runaway queries with the per-solve conflict
 * budget instead, which returns Unknown rather than thrashing.
 */

#ifndef BESPOKE_SAT_CDCL_HH
#define BESPOKE_SAT_CDCL_HH

#include <cstdint>
#include <vector>

#include "src/sat/cnf.hh"

namespace bespoke::sat
{

enum class SolveResult : uint8_t
{
    Sat,
    Unsat,
    Unknown,  ///< conflict budget exhausted
};

class CdclSolver : public CnfSink
{
  public:
    CdclSolver();

    Var newVar() override;
    void addClause(const Lit *lits, size_t n) override;
    using CnfSink::addClause;

    /** False once the clause set is unsatisfiable outright. */
    bool okay() const { return ok_; }

    /**
     * Solve under the given assumptions. conflict_budget 0 = no limit;
     * otherwise the solve returns Unknown after that many conflicts.
     * The solver state (learned clauses, activities) persists across
     * calls, so related queries get incrementally cheaper.
     */
    SolveResult solve(const std::vector<Lit> &assumptions = {},
                      uint64_t conflict_budget = 0);

    /** After Sat: value of a literal in the found model. */
    bool modelValue(Lit l) const;

    /**
     * After an assumption-driven Unsat: a subset of the assumptions
     * that is already jointly inconsistent with the clauses (sorted by
     * literal code). Empty when the clause set is unsatisfiable on its
     * own.
     */
    const std::vector<Lit> &failedAssumptions() const { return core_; }

    size_t numVars() const { return nVars_; }
    uint64_t conflicts() const { return conflicts_; }
    uint64_t decisions() const { return decisions_; }
    uint64_t propagations() const { return propagations_; }

  private:
    using CRef = uint32_t;
    static constexpr CRef kNoReason = 0xffffffffu;

    struct Watch
    {
        CRef cref;
        Lit blocker;
    };

    // Values: 0 = false, 1 = true, 2 = unassigned.
    uint8_t value(Lit l) const
    {
        uint8_t a = assign_[l.var()];
        return a == 2 ? 2 : static_cast<uint8_t>(a ^ (l.code & 1u));
    }

    size_t decisionLevel() const { return trailLim_.size(); }
    CRef allocClause(const std::vector<Lit> &lits, bool learned);
    void attachClause(CRef cref);
    void uncheckedEnqueue(Lit p, CRef from);
    CRef propagate();
    void cancelUntil(size_t level);
    void analyze(CRef confl, std::vector<Lit> *out_learnt,
                 size_t *out_btlevel);
    void analyzeFinal(Lit p);
    Lit pickBranchLit();
    void bumpVar(Var v);
    void decayVarActivity();

    // Heap of unassigned decision candidates ordered by (activity
    // descending, index ascending).
    bool heapLess(Var a, Var b) const;
    void heapPercolateUp(size_t i);
    void heapPercolateDown(size_t i);
    void heapInsert(Var v);
    Var heapRemoveMin();

    bool ok_ = true;
    Var nVars_ = 0;

    /** Clause arena: [size<<1 | learned][lits...]. */
    std::vector<uint32_t> arena_;
    std::vector<std::vector<Watch>> watches_;  ///< by literal code

    std::vector<uint8_t> assign_;  ///< 0/1/2 per var
    std::vector<uint32_t> level_;
    std::vector<CRef> reason_;
    std::vector<Lit> trail_;
    std::vector<size_t> trailLim_;
    size_t qhead_ = 0;

    std::vector<double> activity_;
    double varInc_ = 1.0;
    std::vector<uint8_t> phase_;  ///< saved polarity (last value)
    std::vector<uint8_t> seen_;   ///< analyze scratch

    std::vector<Var> heap_;
    std::vector<int32_t> heapPos_;  ///< -1 = not in heap

    std::vector<uint8_t> model_;
    std::vector<Lit> core_;

    uint64_t conflicts_ = 0;
    uint64_t decisions_ = 0;
    uint64_t propagations_ = 0;
};

} // namespace bespoke::sat

#endif // BESPOKE_SAT_CDCL_HH
