/**
 * @file
 * Self-contained CDCL SAT solver (MiniSat lineage): two-watched-literal
 * propagation, first-UIP conflict-clause learning with local clause
 * minimization, EVSIDS decision activities with phase saving, Luby
 * restarts, and an assumption interface for incremental per-gate
 * queries with failed-assumption cores.
 *
 * The solver is strictly deterministic: no randomness, all tie-breaks
 * by variable index, single-threaded. Two identical clause/solve
 * sequences produce identical verdicts, models, cores, and statistics
 * on any machine — the SAT pass's verdicts are checkpointed and diffed
 * bit-for-bit in CI, so this is a contract, not an aspiration.
 * `CdclConfig` permutes the search (branching order, restart schedule,
 * initial phase) for portfolio solving; every config is individually
 * deterministic.
 *
 * Incrementality. Learned clauses, activities, and phases persist
 * across solve() calls, so related queries get cheaper. Long sessions
 * stay bounded by deterministic LBD-based clause-database reduction:
 * once the live learned set passes a (growing) limit, the lowest-value
 * half — ordered by (LBD, size, age), glue (LBD <= 2) and locked
 * clauses always kept — is dropped and the arena compacted. Consecutive
 * solves that share an assumption prefix keep the propagated trail of
 * the shared prefix in place instead of re-propagating it (trail
 * saving); adding a clause invalidates the saved prefix. Callers bound
 * runaway queries with the per-solve conflict budget, which returns
 * Unknown rather than thrashing.
 */

#ifndef BESPOKE_SAT_CDCL_HH
#define BESPOKE_SAT_CDCL_HH

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/sat/cnf.hh"

namespace bespoke::sat
{

enum class SolveResult : uint8_t
{
    Sat,
    Unsat,
    Unknown,  ///< conflict budget exhausted (or externally stopped)
};

/**
 * Deterministic search-permutation knobs for portfolio solving. The
 * default config is the historical solver behaviour; any other config
 * is an equally deterministic but differently-ordered search of the
 * same space, so a portfolio member's verdict is a pure function of
 * (clauses, assumptions, config).
 */
struct CdclConfig
{
    /** Base of the Luby restart schedule (conflicts). */
    int restartFirst = 100;
    /** Initial saved phase for fresh variables. */
    bool initPhase = false;
    /**
     * 0 keeps the index-ordered initial branching order; any other
     * value seeds a deterministic hash that perturbs initial variable
     * activities, permuting the branching order.
     */
    uint32_t orderSeed = 0;
    /** EVSIDS decay factor. */
    double varDecay = 0.95;
};

class CdclSolver : public CnfSink
{
  public:
    explicit CdclSolver(const CdclConfig &config = CdclConfig());

    Var newVar() override;
    void addClause(const Lit *lits, size_t n) override;
    using CnfSink::addClause;

    /** False once the clause set is unsatisfiable outright. */
    bool okay() const { return ok_; }

    /**
     * Solve under the given assumptions. conflict_budget 0 = no limit;
     * otherwise the solve returns Unknown after that many conflicts.
     * The solver state (learned clauses, activities, saved trail)
     * persists across calls, so related queries get incrementally
     * cheaper.
     */
    SolveResult solve(const std::vector<Lit> &assumptions = {},
                      uint64_t conflict_budget = 0);

    /** After Sat: value of a literal in the found model. */
    bool modelValue(Lit l) const;

    /**
     * After an assumption-driven Unsat: a subset of the assumptions
     * that is already jointly inconsistent with the clauses (sorted by
     * literal code). Empty when the clause set is unsatisfiable on its
     * own.
     */
    const std::vector<Lit> &failedAssumptions() const { return core_; }

    /**
     * Cooperative cancellation for portfolio racing: when the pointed-to
     * flag becomes true, in-flight solves return Unknown at the next
     * conflict. A cancelled result must be discarded by the caller —
     * determinism only covers uncancelled runs.
     */
    void setStopFlag(const std::atomic<bool> *stop) { stop_ = stop; }

    size_t numVars() const { return nVars_; }
    uint64_t conflicts() const { return conflicts_; }
    uint64_t decisions() const { return decisions_; }
    uint64_t propagations() const { return propagations_; }
    uint64_t restarts() const { return restarts_; }
    /** Learned clauses ever recorded (including unit learnts). */
    uint64_t learnedClauses() const { return learnedTotal_; }
    /** Learned clauses currently live in the database. */
    uint64_t keptClauses() const { return learned_.size(); }
    /** Clause-database reductions performed. */
    uint64_t dbReductions() const { return reductions_; }
    /** Learned clauses dropped by database reductions. */
    uint64_t removedClauses() const { return removed_; }

  private:
    using CRef = uint32_t;
    static constexpr CRef kNoReason = 0xffffffffu;

    struct Watch
    {
        CRef cref;
        Lit blocker;
    };

    // Values: 0 = false, 1 = true, 2 = unassigned.
    uint8_t value(Lit l) const
    {
        uint8_t a = assign_[l.var()];
        return a == 2 ? 2 : static_cast<uint8_t>(a ^ (l.code & 1u));
    }

    size_t decisionLevel() const { return trailLim_.size(); }
    CRef allocClause(const std::vector<Lit> &lits, bool learned,
                     uint32_t lbd);
    void attachClause(CRef cref);
    void uncheckedEnqueue(Lit p, CRef from);
    CRef propagate();
    void cancelUntil(size_t level);
    void analyze(CRef confl, std::vector<Lit> *out_learnt,
                 size_t *out_btlevel, uint32_t *out_lbd);
    void analyzeFinal(Lit p);
    Lit pickBranchLit();
    void bumpVar(Var v);
    void decayVarActivity();
    void reduceDB();
    void invalidateSavedTrail();

    // Heap of unassigned decision candidates ordered by (activity
    // descending, index ascending).
    bool heapLess(Var a, Var b) const;
    void heapPercolateUp(size_t i);
    void heapPercolateDown(size_t i);
    void heapInsert(Var v);
    Var heapRemoveMin();

    CdclConfig cfg_;
    bool ok_ = true;
    Var nVars_ = 0;

    /** Clause arena: [size<<1 | learned][lbd][lits...]. */
    std::vector<uint32_t> arena_;
    std::vector<std::vector<Watch>> watches_;  ///< by literal code

    std::vector<uint8_t> assign_;  ///< 0/1/2 per var
    std::vector<uint32_t> level_;
    std::vector<CRef> reason_;
    std::vector<Lit> trail_;
    std::vector<size_t> trailLim_;
    size_t qhead_ = 0;

    std::vector<double> activity_;
    double varInc_ = 1.0;
    std::vector<uint8_t> phase_;  ///< saved polarity (last value)
    std::vector<uint8_t> seen_;   ///< analyze scratch

    std::vector<Var> heap_;
    std::vector<int32_t> heapPos_;  ///< -1 = not in heap

    std::vector<uint8_t> model_;
    std::vector<Lit> core_;

    /**
     * Assumption prefix whose decision levels are still on the trail
     * from the previous solve (trail saving). Invariant between
     * solves: decisionLevel() == savedAssumptions_.size() and level
     * i+1 is the propagated decision for savedAssumptions_[i].
     */
    std::vector<Lit> savedAssumptions_;

    /** Live learned clauses, in arena order. */
    std::vector<CRef> learned_;
    size_t reduceLimit_ = 2000;

    const std::atomic<bool> *stop_ = nullptr;

    uint64_t conflicts_ = 0;
    uint64_t decisions_ = 0;
    uint64_t propagations_ = 0;
    uint64_t restarts_ = 0;
    uint64_t learnedTotal_ = 0;
    uint64_t reductions_ = 0;
    uint64_t removed_ = 0;
};

} // namespace bespoke::sat

#endif // BESPOKE_SAT_CDCL_HH
