/**
 * @file
 * Independent bounded equivalence checking of original vs bespoke
 * netlists by SAT, as a cross-check on the symbolic equivalence engine
 * (src/bespoke/equiv_check). The two provers share no simulation code:
 * this one lowers both designs into one CNF miter (src/sat/encode, the
 * follower sharing the leader's inputs and memory bus) and asks a CDCL
 * solver whether any frame can make a shared OUTPUT port differ.
 *
 * The verdict is *bounded*: UNSAT means no divergence is reachable
 * within `depth` cycles of reset under the abstract memory envelope —
 * strictly stronger than the measured evidence, weaker than the
 * symbolic engine's unbounded exploration. A SAT answer yields a
 * concrete input witness (gpio/irq per frame) which is replayed on the
 * real three-valued simulator; only a replay where both designs hold
 * *known, differing* output values confirms inequivalence (an X in the
 * original cannot witness a mismatch — same rule as the symbolic
 * engine). An unconfirmed witness downgrades the verdict to Unknown,
 * because the abstraction (free RAM image, havocked words) may have
 * invented it.
 *
 * Incrementality and the portfolio. The prover deepens ONE solver's
 * frame chain chunk by chunk (8, 16, 32, ... frames); each chunk's
 * divergence disjunction is solved as an assumption, so an UNSAT chunk
 * leaves the solver (learned clauses, activities, phases) primed for
 * the next, and a SAT chunk short-circuits with a witness at the
 * shallowest depth that has one. When a conflict budget is set, a
 * budget-exhausted session is retried under deterministically permuted
 * solver configs (a fixed-priority portfolio — the winner is the
 * lowest-index decisive attempt, identical at any thread count; see
 * src/sat/portfolio.hh).
 *
 * encodeMiter() is exposed separately so `bespoke_io export-cnf` can
 * dump the identical formula as DIMACS/SMT2 for third-party solvers.
 */

#ifndef BESPOKE_SAT_EQUIV_PROVER_HH
#define BESPOKE_SAT_EQUIV_PROVER_HH

#include <string>
#include <vector>

#include "src/isa/assembler.hh"
#include "src/netlist/netlist.hh"
#include "src/sat/cnf.hh"
#include "src/sat/encode.hh"

namespace bespoke::sat
{

struct SatEquivOptions
{
    /** Frames to unroll from reset. */
    int depth = 24;
    /** Solver conflict budget (0 = unlimited). */
    uint64_t conflictBudget = 0;
    /** Exact ROM mux for symbolic-address reads. */
    bool romMux = true;
    /** Worker threads for racing portfolio attempts (1 = sequential
     *  with first-decisive early exit, 0 = all hardware threads). The
     *  verdict is identical at any value. */
    int threads = 1;
    /** Portfolio attempts when a conflict budget can exhaust (ignored
     *  when conflictBudget == 0: config 0 is then always decisive). */
    int portfolio = 4;
};

enum class SatEquivVerdict : uint8_t
{
    Equivalent,     ///< UNSAT: no divergence within the bound
    NotEquivalent,  ///< SAT and the witness replays concretely
    Unknown,        ///< budget exhausted, or witness did not confirm
};

struct SatEquivResult
{
    SatEquivVerdict verdict = SatEquivVerdict::Unknown;
    int depth = 0;
    uint64_t conflicts = 0;
    uint64_t clauses = 0;
    uint64_t vars = 0;
    uint64_t propagations = 0;
    uint64_t learnedClauses = 0;  ///< learned clauses ever recorded
    uint64_t keptClauses = 0;     ///< learned clauses live at the end
    uint64_t dbReductions = 0;    ///< clause-database reductions
    uint64_t restarts = 0;
    uint64_t queries = 0;         ///< chunk queries issued
    int config = 0;               ///< winning portfolio config index
    /** SAT only: per-frame gpio_in / irq_ext extracted from the model. */
    std::vector<uint16_t> witnessGpio;
    std::vector<bool> witnessIrq;
    bool witnessConfirmed = false;
    std::string detail;  ///< human-readable mismatch / status
};

/**
 * Encode the miter property into `sink` via an unroller already holding
 * leader + follower: unrolls `depth` frames and returns a literal that
 * is true iff some shared OUTPUT port differs in some frame (folded to
 * kFalse when the designs are structurally identical under encoding).
 */
Lit encodeMiter(SocUnroller &un, const Netlist &original,
                const Netlist &bespoke_nl, int depth);

/**
 * Bounded SAT equivalence check of `bespoke_nl` against `original` for
 * this program, with concrete witness confirmation.
 */
SatEquivResult proveEquivalentSat(const Netlist &original,
                                  const Netlist &bespoke_nl,
                                  const AsmProgram &prog,
                                  const SatEquivOptions &opts = {});

} // namespace bespoke::sat

#endif // BESPOKE_SAT_EQUIV_PROVER_HH
