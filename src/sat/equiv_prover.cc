#include "src/sat/equiv_prover.hh"

#include <algorithm>
#include <sstream>

#include "src/sat/cdcl.hh"
#include "src/sat/portfolio.hh"
#include "src/sim/soc.hh"
#include "src/util/logging.hh"

namespace bespoke::sat
{

namespace
{

/** Shared OUTPUT ports, by name, present in both designs. */
std::vector<std::pair<GateId, GateId>>
sharedOutputs(const Netlist &a, const Netlist &b,
              std::vector<std::string> *names = nullptr)
{
    // Sorted by name: variable numbering (and so solver behavior) must
    // not depend on hash-map iteration order.
    std::vector<std::string> sorted;
    for (const auto &[name, id] : a.ports()) {
        if (a.gate(id).type == CellType::OUTPUT && b.hasPort(name))
            sorted.push_back(name);
    }
    std::sort(sorted.begin(), sorted.end());
    std::vector<std::pair<GateId, GateId>> out;
    for (const std::string &name : sorted) {
        out.emplace_back(a.port(name), b.port(name));
        if (names)
            names->push_back(name);
    }
    return out;
}

/** Incremental deepening schedule: 8, 16, 32, ..., depth. */
std::vector<int>
miterChunks(int depth)
{
    std::vector<int> out;
    int d = std::min(depth, 8);
    for (;;) {
        out.push_back(d);
        if (d >= depth)
            break;
        d = std::min(depth, d * 2);
    }
    return out;
}

/**
 * One full bounded-miter session under one solver config: the frame
 * chain is extended chunk by chunk on a single solver, each chunk's
 * "some shared output differs in these frames" disjunction solved as
 * an assumption (so an UNSAT chunk does not poison later ones). A SAT
 * chunk short-circuits with a witness at the shallowest depth that has
 * one — the common inequivalent case never pays for the full-depth
 * encoding. `budget_out` reports whether the session died of conflict
 * budget (or cancellation) rather than reaching a real verdict.
 */
SatEquivResult
runMiterSession(const Netlist &original, const Netlist &bespoke_nl,
                const AsmProgram &prog, const SatEquivOptions &opts,
                const CdclConfig &config, const std::atomic<bool> *stop,
                bool *budget_out)
{
    SatEquivResult res;
    res.depth = opts.depth;
    *budget_out = false;

    CdclSolver solver(config);
    solver.setStopFlag(stop);
    UnrollOptions uo;
    uo.fromReset = true;
    uo.romMux = opts.romMux;
    SocUnroller un(original, prog, solver, uo);
    un.attachFollower(bespoke_nl);
    auto ports = sharedOutputs(original, bespoke_nl);
    Tseitin ts(solver);

    auto finish_stats = [&] {
        res.vars = solver.numVars();
        res.conflicts = solver.conflicts();
        res.propagations = solver.propagations();
        res.learnedClauses = solver.learnedClauses();
        res.keptClauses = solver.keptClauses();
        res.dbReductions = solver.dbReductions();
        res.restarts = solver.restarts();
    };

    int encoded = 0;
    bool sat_at = false;
    int sat_depth = 0;
    for (int target : miterChunks(opts.depth)) {
        std::vector<Lit> bad;
        while (encoded < target) {
            un.addFrame();
            for (const auto &[ida, idb] : ports) {
                Lit x = ts.xorL(un.gateAt(ida, encoded),
                                un.followerGateAt(idb, encoded));
                if (x != kFalse)
                    bad.push_back(x);
            }
            encoded++;
        }
        Lit chunk_bad = ts.orL(std::move(bad));
        if (chunk_bad == kFalse)
            continue;  // these frames folded identical at encode time
        res.queries++;
        SolveResult r = solver.solve({chunk_bad}, opts.conflictBudget);
        if (r == SolveResult::Unsat)
            continue;
        if (r == SolveResult::Unknown) {
            finish_stats();
            res.verdict = SatEquivVerdict::Unknown;
            res.detail = "conflict budget exhausted";
            *budget_out = true;
            return res;
        }
        sat_at = true;
        sat_depth = target;
        break;
    }
    finish_stats();
    if (!sat_at) {
        res.verdict = SatEquivVerdict::Equivalent;
        std::ostringstream os;
        os << "UNSAT: no output divergence within " << opts.depth
           << " cycles of reset";
        if (res.queries == 0)
            res.detail = "miter folded to constant-false at encode time";
        else
            res.detail = os.str();
        return res;
    }

    // --- SAT: extract the input witness from the model. ---
    res.witnessGpio.assign(opts.depth, 0);
    res.witnessIrq.assign(opts.depth, false);
    std::vector<std::pair<uint32_t, uint16_t>> ramInit;  // word idx, val
    uint16_t rdataInit = 0;
    for (const FreeVarInfo &fv : un.freeVars()) {
        bool v = solver.modelValue(mkLit(fv.var));
        switch (fv.kind) {
          case FreeVarInfo::Kind::GpioIn:
            if (v && fv.frame < opts.depth) {
                res.witnessGpio[fv.frame] = static_cast<uint16_t>(
                    res.witnessGpio[fv.frame] | (1u << fv.bit));
            }
            break;
          case FreeVarInfo::Kind::IrqExt:
            if (fv.frame < opts.depth)
                res.witnessIrq[fv.frame] = v;
            break;
          case FreeVarInfo::Kind::RamInit:
            if (ramInit.empty() || ramInit.back().first != fv.index)
                ramInit.emplace_back(fv.index, 0);
            if (v) {
                ramInit.back().second = static_cast<uint16_t>(
                    ramInit.back().second | (1u << fv.bit));
            }
            break;
          case FreeVarInfo::Kind::InitRdata:
            if (v)
                rdataInit = static_cast<uint16_t>(rdataInit
                                                  | (1u << fv.bit));
            break;
          default:
            break;  // InitFlop absent (fromReset); MemFresh unreplayable
        }
    }

    // --- Confirm by concrete replay on the three-valued simulator. ---
    std::vector<std::string> names;
    auto named_ports = sharedOutputs(original, bespoke_nl, &names);
    Soc socA(original, prog, /*ram_unknown=*/true);
    Soc socB(bespoke_nl, prog, /*ram_unknown=*/true);
    socA.reset();
    socB.reset();
    {
        // Seed the witness's choice of initial RAM image and held
        // rdata; everything else stays X and the known-and-differ rule
        // below filters any output it reaches.
        EnvState ea = socA.envState(), eb = socB.envState();
        for (const auto &[wi, val] : ramInit)
            ea.ram[wi] = eb.ram[wi] = SWord::of(val);
        ea.rdata = eb.rdata = SWord::of(rdataInit);
        socA.restoreEnvState(ea);
        socB.restoreEnvState(eb);
    }
    for (int f = 0; f < sat_depth && !res.witnessConfirmed; f++) {
        socA.setGpioIn(SWord::of(res.witnessGpio[f]));
        socB.setGpioIn(SWord::of(res.witnessGpio[f]));
        Logic irq = res.witnessIrq[f] ? Logic::One : Logic::Zero;
        socA.setIrqExt(irq);
        socB.setIrqExt(irq);
        socA.evalOnly();
        socB.evalOnly();
        for (size_t p = 0; p < named_ports.size(); p++) {
            Logic va = socA.sim().value(named_ports[p].first);
            Logic vb = socB.sim().value(named_ports[p].second);
            if (isKnown(va) && isKnown(vb) && va != vb) {
                res.witnessConfirmed = true;
                std::ostringstream os;
                os << "witness replay: output '" << names[p]
                   << "' differs at cycle " << f << " (original="
                   << logicChar(va) << " bespoke=" << logicChar(vb)
                   << ")";
                res.detail = os.str();
                break;
            }
        }
        socA.finishCycle();
        socB.finishCycle();
    }
    if (res.witnessConfirmed) {
        res.verdict = SatEquivVerdict::NotEquivalent;
    } else {
        res.verdict = SatEquivVerdict::Unknown;
        res.detail = "SAT under the abstract memory envelope, but the "
                     "witness did not reproduce on concrete replay";
    }
    return res;
}

} // namespace

Lit
encodeMiter(SocUnroller &un, const Netlist &original,
            const Netlist &bespoke_nl, int depth)
{
    bespoke_assert(depth >= 1);
    auto ports = sharedOutputs(original, bespoke_nl);
    Tseitin ts(un.sink());
    std::vector<Lit> bad;
    for (int f = 0; f < depth; f++) {
        un.addFrame();
        for (const auto &[ida, idb] : ports) {
            Lit x = ts.xorL(un.gateAt(ida, f), un.followerGateAt(idb, f));
            if (x != kFalse)
                bad.push_back(x);
        }
    }
    return ts.orL(std::move(bad));
}

SatEquivResult
proveEquivalentSat(const Netlist &original, const Netlist &bespoke_nl,
                   const AsmProgram &prog, const SatEquivOptions &opts)
{
    // A deterministic portfolio over permuted solver configs. An
    // attempt is "decisive" unless it died of conflict budget (or was
    // cancelled); the winner is the lowest-index decisive attempt, a
    // pure function of the problem — identical at any thread count
    // (see src/sat/portfolio.hh). With an unlimited budget config 0 is
    // always decisive and the portfolio collapses to the single
    // default-config session.
    int attempts = std::max(1, opts.portfolio);
    if (opts.conflictBudget == 0)
        attempts = 1;
    int threads = resolveSatThreads(opts.threads);
    std::vector<SatEquivResult> results(attempts);
    std::vector<uint8_t> budget_died(attempts, 0);
    int winner = runPortfolio(
        attempts, threads,
        [&](int i, const std::atomic<bool> *stop) {
            bool budget = false;
            results[i] =
                runMiterSession(original, bespoke_nl, prog, opts,
                                portfolioConfig(i), stop, &budget);
            budget_died[i] = budget ? 1 : 0;
            return !budget;
        });
    SatEquivResult res =
        winner >= 0 ? std::move(results[winner]) : std::move(results[0]);
    res.config = winner >= 0 ? winner : 0;
    return res;
}

} // namespace bespoke::sat
