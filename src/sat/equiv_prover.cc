#include "src/sat/equiv_prover.hh"

#include <algorithm>
#include <sstream>

#include "src/sat/cdcl.hh"
#include "src/sim/soc.hh"
#include "src/util/logging.hh"

namespace bespoke::sat
{

namespace
{

/** Shared OUTPUT ports, by name, present in both designs. */
std::vector<std::pair<GateId, GateId>>
sharedOutputs(const Netlist &a, const Netlist &b,
              std::vector<std::string> *names = nullptr)
{
    // Sorted by name: variable numbering (and so solver behavior) must
    // not depend on hash-map iteration order.
    std::vector<std::string> sorted;
    for (const auto &[name, id] : a.ports()) {
        if (a.gate(id).type == CellType::OUTPUT && b.hasPort(name))
            sorted.push_back(name);
    }
    std::sort(sorted.begin(), sorted.end());
    std::vector<std::pair<GateId, GateId>> out;
    for (const std::string &name : sorted) {
        out.emplace_back(a.port(name), b.port(name));
        if (names)
            names->push_back(name);
    }
    return out;
}

} // namespace

Lit
encodeMiter(SocUnroller &un, const Netlist &original,
            const Netlist &bespoke_nl, int depth)
{
    bespoke_assert(depth >= 1);
    auto ports = sharedOutputs(original, bespoke_nl);
    Tseitin ts(un.sink());
    std::vector<Lit> bad;
    for (int f = 0; f < depth; f++) {
        un.addFrame();
        for (const auto &[ida, idb] : ports) {
            Lit x = ts.xorL(un.gateAt(ida, f), un.followerGateAt(idb, f));
            if (x != kFalse)
                bad.push_back(x);
        }
    }
    return ts.orL(std::move(bad));
}

SatEquivResult
proveEquivalentSat(const Netlist &original, const Netlist &bespoke_nl,
                   const AsmProgram &prog, const SatEquivOptions &opts)
{
    SatEquivResult res;
    res.depth = opts.depth;

    CdclSolver solver;
    UnrollOptions uo;
    uo.fromReset = true;
    uo.romMux = opts.romMux;
    SocUnroller un(original, prog, solver, uo);
    un.attachFollower(bespoke_nl);
    Lit bad = encodeMiter(un, original, bespoke_nl, opts.depth);
    res.vars = solver.numVars();

    if (bad == kFalse) {
        res.verdict = SatEquivVerdict::Equivalent;
        res.detail = "miter folded to constant-false at encode time";
        return res;
    }
    solver.unit(bad);
    SolveResult r = solver.solve({}, opts.conflictBudget);
    res.conflicts = solver.conflicts();
    if (r == SolveResult::Unsat) {
        res.verdict = SatEquivVerdict::Equivalent;
        std::ostringstream os;
        os << "UNSAT: no output divergence within " << opts.depth
           << " cycles of reset";
        res.detail = os.str();
        return res;
    }
    if (r == SolveResult::Unknown) {
        res.verdict = SatEquivVerdict::Unknown;
        res.detail = "conflict budget exhausted";
        return res;
    }

    // --- SAT: extract the input witness from the model. ---
    res.witnessGpio.assign(opts.depth, 0);
    res.witnessIrq.assign(opts.depth, false);
    std::vector<std::pair<uint32_t, uint16_t>> ramInit;  // word idx, val
    uint16_t rdataInit = 0;
    for (const FreeVarInfo &fv : un.freeVars()) {
        bool v = solver.modelValue(mkLit(fv.var));
        switch (fv.kind) {
          case FreeVarInfo::Kind::GpioIn:
            if (v && fv.frame < opts.depth) {
                res.witnessGpio[fv.frame] = static_cast<uint16_t>(
                    res.witnessGpio[fv.frame] | (1u << fv.bit));
            }
            break;
          case FreeVarInfo::Kind::IrqExt:
            if (fv.frame < opts.depth)
                res.witnessIrq[fv.frame] = v;
            break;
          case FreeVarInfo::Kind::RamInit:
            if (ramInit.empty() || ramInit.back().first != fv.index)
                ramInit.emplace_back(fv.index, 0);
            if (v) {
                ramInit.back().second = static_cast<uint16_t>(
                    ramInit.back().second | (1u << fv.bit));
            }
            break;
          case FreeVarInfo::Kind::InitRdata:
            if (v)
                rdataInit = static_cast<uint16_t>(rdataInit
                                                  | (1u << fv.bit));
            break;
          default:
            break;  // InitFlop absent (fromReset); MemFresh unreplayable
        }
    }

    // --- Confirm by concrete replay on the three-valued simulator. ---
    std::vector<std::string> names;
    auto ports = sharedOutputs(original, bespoke_nl, &names);
    Soc socA(original, prog, /*ram_unknown=*/true);
    Soc socB(bespoke_nl, prog, /*ram_unknown=*/true);
    socA.reset();
    socB.reset();
    {
        // Seed the witness's choice of initial RAM image and held
        // rdata; everything else stays X and the known-and-differ rule
        // below filters any output it reaches.
        EnvState ea = socA.envState(), eb = socB.envState();
        for (const auto &[wi, val] : ramInit)
            ea.ram[wi] = eb.ram[wi] = SWord::of(val);
        ea.rdata = eb.rdata = SWord::of(rdataInit);
        socA.restoreEnvState(ea);
        socB.restoreEnvState(eb);
    }
    for (int f = 0; f < opts.depth && !res.witnessConfirmed; f++) {
        socA.setGpioIn(SWord::of(res.witnessGpio[f]));
        socB.setGpioIn(SWord::of(res.witnessGpio[f]));
        Logic irq = res.witnessIrq[f] ? Logic::One : Logic::Zero;
        socA.setIrqExt(irq);
        socB.setIrqExt(irq);
        socA.evalOnly();
        socB.evalOnly();
        for (size_t p = 0; p < ports.size(); p++) {
            Logic va = socA.sim().value(ports[p].first);
            Logic vb = socB.sim().value(ports[p].second);
            if (isKnown(va) && isKnown(vb) && va != vb) {
                res.witnessConfirmed = true;
                std::ostringstream os;
                os << "witness replay: output '" << names[p]
                   << "' differs at cycle " << f << " (original="
                   << logicChar(va) << " bespoke=" << logicChar(vb)
                   << ")";
                res.detail = os.str();
                break;
            }
        }
        socA.finishCycle();
        socB.finishCycle();
    }
    if (res.witnessConfirmed) {
        res.verdict = SatEquivVerdict::NotEquivalent;
    } else {
        res.verdict = SatEquivVerdict::Unknown;
        res.detail = "SAT under the abstract memory envelope, but the "
                     "witness did not reproduce on concrete replay";
    }
    return res;
}

} // namespace bespoke::sat
