#include "src/sat/cnf.hh"

#include <ostream>

#include "src/util/logging.hh"

namespace bespoke::sat
{

Cnf::Cnf()
{
    Var t = newVar();
    bespoke_assert(t == 0);
    unit(kTrue);
}

void
Cnf::addClause(const Lit *lits, size_t n)
{
    clauseStart_.push_back(static_cast<uint32_t>(lits_.size()));
    clauseLen_.push_back(static_cast<uint32_t>(n));
    for (size_t i = 0; i < n; i++) {
        bespoke_assert(lits[i].var() < numVars_);
        lits_.push_back(lits[i]);
    }
}

const Lit *
Cnf::clauseLits(size_t i) const
{
    return lits_.data() + clauseStart_[i];
}

size_t
Cnf::clauseSize(size_t i) const
{
    return clauseLen_[i];
}

void
Cnf::nameVar(Var v, const std::string &name)
{
    varNames_.emplace_back(v, name);
}

void
Cnf::writeDimacs(std::ostream &os) const
{
    for (const std::string &c : comments_)
        os << "c " << c << "\n";
    for (const auto &[v, name] : varNames_)
        os << "c var " << (v + 1) << " = " << name << "\n";
    os << "p cnf " << numVars_ << " " << numClauses() << "\n";
    for (size_t i = 0; i < numClauses(); i++) {
        const Lit *ls = clauseLits(i);
        for (size_t j = 0; j < clauseSize(i); j++) {
            int64_t dv = static_cast<int64_t>(ls[j].var()) + 1;
            os << (ls[j].negated() ? -dv : dv) << " ";
        }
        os << "0\n";
    }
}

void
Cnf::writeSmt2(std::ostream &os) const
{
    for (const std::string &c : comments_)
        os << "; " << c << "\n";
    for (const auto &[v, name] : varNames_)
        os << "; v" << v << " = " << name << "\n";
    os << "(set-logic QF_UF)\n";
    for (Var v = 0; v < numVars_; v++)
        os << "(declare-const v" << v << " Bool)\n";
    for (size_t i = 0; i < numClauses(); i++) {
        const Lit *ls = clauseLits(i);
        os << "(assert (or";
        if (clauseSize(i) == 0)
            os << " false";
        for (size_t j = 0; j < clauseSize(i); j++) {
            if (ls[j].negated())
                os << " (not v" << ls[j].var() << ")";
            else
                os << " v" << ls[j].var();
        }
        os << "))\n";
    }
    os << "(check-sat)\n";
}

} // namespace bespoke::sat
