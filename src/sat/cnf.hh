/**
 * @file
 * CNF layer of the SAT subsystem: literals, the clause-sink interface
 * the Tseitin encoder targets, and a plain clause container with
 * DIMACS and bit-blasted SMT2 export.
 *
 * Variable 0 is reserved as the constant-true variable: every sink
 * asserts the unit clause {+0} on construction, so the encoders can
 * fold constants by handing out the literals kTrue / kFalse without a
 * side channel. DIMACS export shifts variables to the 1-based numbering
 * the format requires; the reserved unit clause travels with the file,
 * so external solvers (minisat, z3) see exactly the same formula.
 */

#ifndef BESPOKE_SAT_CNF_HH
#define BESPOKE_SAT_CNF_HH

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace bespoke::sat
{

using Var = uint32_t;

/** A literal: variable index with a sign, packed as var*2 + negated. */
struct Lit
{
    uint32_t code = 0;

    constexpr Lit() = default;
    constexpr explicit Lit(uint32_t c) : code(c) {}

    constexpr Var var() const { return code >> 1; }
    constexpr bool negated() const { return (code & 1u) != 0; }
    constexpr Lit operator~() const { return Lit(code ^ 1u); }
    constexpr bool operator==(const Lit &) const = default;
    constexpr bool operator<(const Lit &o) const { return code < o.code; }
};

constexpr Lit mkLit(Var v, bool negated = false)
{
    return Lit((v << 1) | (negated ? 1u : 0u));
}

/** Literals of the reserved constant variable. */
constexpr Lit kTrue = mkLit(0, false);
constexpr Lit kFalse = mkLit(0, true);

/** True for kTrue/kFalse (encode-time constants). */
constexpr bool isConstLit(Lit l)
{
    return l.var() == 0;
}

/**
 * Destination for generated clauses. Implemented by the CDCL solver
 * (solve as you encode) and by Cnf (collect for export). newVar() hands
 * out consecutive indices starting at 1; var 0 pre-exists.
 */
class CnfSink
{
  public:
    virtual ~CnfSink() = default;

    virtual Var newVar() = 0;
    virtual void addClause(const Lit *lits, size_t n) = 0;

    void unit(Lit a) { addClause(&a, 1); }
    void binary(Lit a, Lit b)
    {
        Lit c[2] = {a, b};
        addClause(c, 2);
    }
    void ternary(Lit a, Lit b, Lit c)
    {
        Lit d[3] = {a, b, c};
        addClause(d, 3);
    }
    void clause(const std::vector<Lit> &lits)
    {
        addClause(lits.data(), lits.size());
    }
};

/**
 * Clause container for export and tests. Stores clauses verbatim (no
 * simplification beyond what the encoder folded).
 */
class Cnf : public CnfSink
{
  public:
    Cnf();

    Var newVar() override { return numVars_++; }
    void addClause(const Lit *lits, size_t n) override;

    size_t numVars() const { return numVars_; }
    size_t numClauses() const { return clauseStart_.size(); }

    /** Lits of clause i. */
    const Lit *clauseLits(size_t i) const;
    size_t clauseSize(size_t i) const;

    /** Free-form comment lines emitted at the top of both exports. */
    void comment(const std::string &line) { comments_.push_back(line); }
    /** Name a variable for export comments ("c var 12 = ..."). */
    void nameVar(Var v, const std::string &name);

    /** DIMACS CNF ("p cnf V C"; variables shifted to 1-based). */
    void writeDimacs(std::ostream &os) const;

    /**
     * Bit-blasted SMT2: one Bool constant per variable, one assert per
     * clause, then (check-sat). sat from z3 = satisfiable CNF.
     */
    void writeSmt2(std::ostream &os) const;

  private:
    Var numVars_ = 0;
    std::vector<Lit> lits_;
    std::vector<uint32_t> clauseStart_;
    std::vector<uint32_t> clauseLen_;
    std::vector<std::string> comments_;
    std::vector<std::pair<Var, std::string>> varNames_;
};

} // namespace bespoke::sat

#endif // BESPOKE_SAT_CNF_HH
