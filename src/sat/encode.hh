/**
 * @file
 * Tseitin CNF encoding of the netlist's 2-valued projection, plus the
 * bounded sequential unroller with the SoC memory model folded in.
 *
 * The combinational encoder lowers every cell type the simulator knows
 * to clauses over literals, folding encode-time constants on the way
 * (an AND with a constant-0 input never allocates a variable). Because
 * constants are just literals of the reserved variable 0 (src/sat/cnf),
 * ROM contents and flop reset values enter the formula as folded
 * constants / unit-strength facts rather than decision work.
 *
 * The unroller replays Soc's cycle contract exactly (drive inputs,
 * eval, sample memory, latch): per frame it allocates free variables
 * for gpio_in / irq_ext, threads mem_rdata from a 2-valued memory
 * model, and computes next-state literals for every flop. The memory
 * model mirrors sampleMemory() (src/sim/soc.cc): byte-lane writes,
 * synchronous reads with rdata hold, ROM reads folded exactly at
 * encode-time-constant addresses and lowered to a ROM-content mux when
 * the address goes symbolic, RAM tracked word-by-word with
 * read-consistent fresh variables for unknown initial contents, and a
 * conservative havoc (every word forgotten) when a write address goes
 * symbolic. Everything the model cannot pin down becomes a fresh free
 * variable, so the encoding over-approximates the real behavior
 * envelope: an UNSAT answer is a proof about the real system, a SAT
 * witness may need concrete replay to confirm.
 */

#ifndef BESPOKE_SAT_ENCODE_HH
#define BESPOKE_SAT_ENCODE_HH

#include <array>
#include <memory>
#include <vector>

#include "src/isa/assembler.hh"
#include "src/netlist/netlist.hh"
#include "src/sat/cnf.hh"
#include "src/sim/sim_context.hh"

namespace bespoke::sat
{

/**
 * Combinational Tseitin helpers over a sink, with encode-time constant
 * folding (inputs equal to kTrue/kFalse, repeated or complementary
 * inputs). All emitted variable numbers depend only on the call
 * sequence, never on addresses or hashes: encoding is deterministic.
 */
class Tseitin
{
  public:
    explicit Tseitin(CnfSink &sink) : sink_(sink) {}

    CnfSink &sink() { return sink_; }

    /** A fresh unconstrained variable, as a positive literal. */
    Lit fresh() { return mkLit(sink_.newVar()); }

    Lit andL(std::vector<Lit> ins);
    Lit orL(std::vector<Lit> ins);
    Lit andL(Lit a, Lit b) { return andL(std::vector<Lit>{a, b}); }
    Lit orL(Lit a, Lit b) { return orL(std::vector<Lit>{a, b}); }
    Lit xorL(Lit a, Lit b);
    /** out = sel ? a1 : a0 (MUX2 pin convention). */
    Lit muxL(Lit sel, Lit a0, Lit a1);

  private:
    CnfSink &sink_;
};

/**
 * Encode one combinational frame of a netlist. `vals` must hold the
 * literals of every source gate (INPUT, DFF, DFFE; TIE cells are
 * filled here) and is completed for every combinational gate and
 * OUTPUT pseudo-gate, in the given levelize() order.
 */
void encodeCombFrame(const Netlist &nl, const std::vector<GateId> &order,
                     Tseitin &ts, std::vector<Lit> *vals);

/** Where a free (unconstrained) variable in the unrolling came from. */
struct FreeVarInfo
{
    enum class Kind : uint8_t
    {
        GpioIn,     ///< gpio_in bit `index`, at `frame`
        IrqExt,     ///< irq_ext, at `frame`
        OtherInput, ///< unclassified INPUT port (gate id `index`)
        InitFlop,   ///< frame-0 flop value (gate id `index`)
        InitRdata,  ///< frame-0 mem_rdata hold register bit `index`
        RamInit,    ///< initial RAM word `index` (word idx), bit `bit`
        MemFresh,   ///< unconstrained memory read bit (periph/havoc)
    };
    Kind kind;
    int frame;
    uint32_t index;
    uint32_t bit;
    Var var;
};

struct UnrollOptions
{
    /** Frame 0 from reset state (true) or fully free state (false,
     *  for induction-step queries). */
    bool fromReset = true;
    /** Lower symbolic-address ROM reads to an exact ROM-content mux
     *  instead of fresh free variables. */
    bool romMux = true;
};

/**
 * Bounded unrolling of one SoC netlist (plus, optionally, a second
 * "follower" netlist sharing the same inputs and memory bus — the
 * miter configuration). The leader's memory port drives the memory
 * model; both designs see the same mem_rdata.
 */
class SocUnroller
{
  public:
    SocUnroller(const Netlist &nl, const AsmProgram &prog, CnfSink &sink,
                const UnrollOptions &opts);

    /** Attach the miter follower. Must precede the first addFrame(). */
    void attachFollower(const Netlist &other);

    /** Encode one more frame; frames() grows by one. */
    void addFrame();
    int frames() const { return frames_; }

    /** The sink all clauses go to (for property encoding on top). */
    CnfSink &sink() { return ts_.sink(); }

    /** Literal of a leader gate's output in frame f. */
    Lit gateAt(GateId id, int f) const { return leader_.vals[f][id]; }
    /** Literal of a follower gate's output in frame f. */
    Lit followerGateAt(GateId id, int f) const
    {
        return follower_->vals[f][id];
    }

    const SocContext &ctx() const { return *leaderCtx_; }
    const SocContext &followerCtx() const { return *followerCtx_; }

    /** Every free variable allocated so far, in allocation order. */
    const std::vector<FreeVarInfo> &freeVars() const { return free_; }

  private:
    struct Design
    {
        const Netlist *nl = nullptr;
        std::shared_ptr<const SocContext> ctx;
        std::vector<GateId> order;     ///< levelize()
        std::vector<GateId> seqIds;
        std::vector<std::vector<Lit>> vals;  ///< per frame, per gate
        std::vector<Lit> nextState;    ///< per seqIds entry
    };

    /** Per-word tracked RAM state. */
    struct MemWord
    {
        enum class St : uint8_t
        {
            Init,      ///< untouched initial contents (free, consistent)
            Tracked,   ///< bits[] hold the current word
            Untracked, ///< unknown (post-havoc): fresh on every read
        };
        St st = St::Init;
        std::array<Lit, 16> bits{};
    };

    Lit freeVar(FreeVarInfo::Kind kind, int frame, uint32_t index,
                uint32_t bit);
    void initDesign(Design *d, const Netlist &nl);
    void driveAndEval(Design *d, int frame,
                      const std::array<Lit, 16> &gpio, Lit irq);
    void trackWord(uint32_t word_idx);
    std::array<Lit, 16> readData(const std::array<Lit, 16> &addr);
    std::array<Lit, 16> romMuxRead(const std::array<Lit, 16> &addr);
    void stepMemory(const Design &d, int frame);

    const AsmProgram &prog_;
    Tseitin ts_;
    UnrollOptions opts_;
    Design leader_;
    std::unique_ptr<Design> follower_;
    std::shared_ptr<const SocContext> leaderCtx_;
    std::shared_ptr<const SocContext> followerCtx_;

    int frames_ = 0;
    std::vector<FreeVarInfo> free_;

    // Memory model state (leader-driven).
    std::vector<MemWord> ram_;
    std::array<Lit, 16> rdata_{};
    bool havocked_ = false;
};

} // namespace bespoke::sat

#endif // BESPOKE_SAT_ENCODE_HH
