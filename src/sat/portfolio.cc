#include "src/sat/portfolio.hh"

#include <algorithm>

#include "src/util/worker_pool.hh"

namespace bespoke::sat
{

CdclConfig
portfolioConfig(int index)
{
    CdclConfig cfg;
    switch (index & 3) {
    case 0:
        break;  // the default search order
    case 1:
        cfg.restartFirst = 50;
        cfg.initPhase = true;
        cfg.orderSeed = 0x9e3779b9u;
        break;
    case 2:
        cfg.restartFirst = 200;
        cfg.orderSeed = 0x85ebca6bu;
        cfg.varDecay = 0.85;
        break;
    default:
        cfg.restartFirst = 150;
        cfg.initPhase = true;
        cfg.orderSeed = 0xc2b2ae35u;
        cfg.varDecay = 0.99;
        break;
    }
    // Indices past the base table keep permuting the branching order.
    if (index >= 4)
        cfg.orderSeed ^= 0x27d4eb2fu * static_cast<uint32_t>(index);
    return cfg;
}

std::vector<std::pair<size_t, size_t>>
shardRanges(size_t n, size_t min_per_shard, size_t max_shards)
{
    std::vector<std::pair<size_t, size_t>> out;
    if (n == 0)
        return out;
    if (min_per_shard == 0)
        min_per_shard = 1;
    size_t shards = (n + min_per_shard - 1) / min_per_shard;
    shards = std::max<size_t>(1, std::min(shards, max_shards));
    size_t base = n / shards, extra = n % shards;
    size_t begin = 0;
    for (size_t s = 0; s < shards; s++) {
        size_t len = base + (s < extra ? 1 : 0);
        out.emplace_back(begin, begin + len);
        begin += len;
    }
    return out;
}

int
runPortfolio(
    int attempts, int threads,
    const std::function<bool(int, const std::atomic<bool> *)> &try_one)
{
    if (attempts <= 0)
        return -1;
    if (threads <= 1 || attempts == 1) {
        // Sequential schedule: first decisive attempt in index order —
        // by construction the same winner the parallel race picks.
        for (int i = 0; i < attempts; i++) {
            if (try_one(i, nullptr))
                return i;
        }
        return -1;
    }
    std::vector<std::atomic<bool>> stops(attempts);
    std::vector<uint8_t> decisive(attempts, 0);
    for (auto &s : stops)
        s.store(false, std::memory_order_relaxed);
    // Lowest decisive index seen so far; attempts above it are
    // cancelled, attempts below it still run to completion so the
    // winner is the true index-order minimum.
    std::atomic<int> best(attempts);
    {
        WorkerPool pool(std::min(threads, attempts));
        for (int i = 0; i < attempts; i++) {
            pool.post([&, i] {
                if (best.load(std::memory_order_acquire) < i)
                    return;  // a lower index already won
                if (try_one(i, &stops[i])) {
                    decisive[i] = 1;
                    int cur = best.load(std::memory_order_acquire);
                    while (i < cur &&
                           !best.compare_exchange_weak(
                               cur, i, std::memory_order_acq_rel)) {
                    }
                    for (int k = i + 1; k < attempts; k++)
                        stops[k].store(true, std::memory_order_release);
                }
            });
        }
        pool.drain();
    }
    for (int i = 0; i < attempts; i++) {
        if (decisive[i])
            return i;
    }
    return -1;
}

int
resolveSatThreads(int requested)
{
    return requested <= 0 ? WorkerPool::defaultThreadCount() : requested;
}

} // namespace bespoke::sat
