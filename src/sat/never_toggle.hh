/**
 * @file
 * Exact never-toggle proving: given gates the measured activity left at
 * a constant observed value, decide by SAT whether any reachable
 * input/cycle combination can make the net take the other value.
 *
 * Two proof modes over the unrolled SoC (src/sat/encode):
 *
 * BoundedEnvelope (the tailoring default): one unrolling of `depth`
 * frames from reset; per candidate, a Tseitin disjunction "differs
 * from the observed constant in some frame" solved under a single
 * assumption. UNSAT proves the net holds its constant for the entire
 * checked horizon under EVERY input sequence — when `depth` covers the
 * application's analysis envelope (AnalysisResult::cyclesSimulated,
 * the same bounded exploration the X-analysis itself proves constants
 * over), this is exactly the X-analysis's own claim, minus its
 * 3-valued pessimism. SAT means some input sequence flips the net
 * inside the horizon: refuted outright.
 *
 * Induction additionally runs a van Eijk-style mutual k-induction for
 * an unbounded proof: from a fully free state, `depth`+1 frames; every
 * base-surviving candidate i gets an activation literal a_i with
 * binary clauses a_i -> (gate_i == v_i) in frames 0..depth-1, and the
 * query "all survivors assumed, candidate i differs at frame `depth`"
 * is solved per candidate. Candidates refuted (or timed out) are
 * removed from the assumption set and the fixpoint restarts, because
 * earlier UNSAT answers may have leaned on them. Induction proofs are
 * depth-independent but much rarer: constancy that depends on
 * reachability invariants (RAM contents, loaded registers) is not
 * inductive in the candidate set alone.
 *
 * Incrementality and parallelism. The base case deepens one unrolling
 * chunk by chunk (8, 16, 32, ... frames) on a single solver: shallow
 * chunks refute cheap counterexamples on small formulas, and the final
 * full-depth UNSAT reuses every learned clause, activity, and phase
 * the shallow queries produced. The induction stage attaches its
 * free-state unrolling to the SAME solver instead of rebuilding one at
 * the stage boundary, and its per-candidate queries share an
 * activation-literal assumption prefix the solver's saved trail skips
 * re-propagating. With `threads` > 1 the candidate set is partitioned
 * into contiguous shards (shard count a function of the candidate
 * count only, never the thread count — see src/sat/portfolio.hh) that
 * run as independent deterministic sessions on a WorkerPool, so
 * verdicts are bit-identical at any thread count. Sharded induction is
 * sound but weaker: each shard's mutual-assumption set is restricted
 * to its own candidates.
 *
 * Soundness notes: a candidate whose per-frame equality literal folds
 * to constant-false in the step case is dropped and never encoded —
 * emitting the then-unsatisfiable activation literal into the shared
 * assumption set would make every other query trivially UNSAT. The
 * encoding over-approximates the real reachable envelope (free inputs
 * each frame, free initial RAM, exact ROM), so UNSAT verdicts are
 * proofs over a superset of real executions; and every cut the
 * tailoring pass derives from them is additionally re-proved by both
 * equivalence checkers (symbolic and SAT miter).
 */

#ifndef BESPOKE_SAT_NEVER_TOGGLE_HH
#define BESPOKE_SAT_NEVER_TOGGLE_HH

#include <vector>

#include "src/isa/assembler.hh"
#include "src/netlist/netlist.hh"

namespace bespoke::sat
{

struct NeverToggleOptions
{
    /**
     * BoundedEnvelope: proven = UNSAT over `depth` frames from reset;
     * `depth` must cover the application's full analysis horizon for
     * the verdict to match the X-analysis's claim. Induction: proven
     * additionally requires the k-induction step (unbounded, but
     * reachability-dependent constants rarely pass).
     */
    enum class Mode
    {
        BoundedEnvelope,
        Induction
    };
    Mode mode = Mode::BoundedEnvelope;
    /** Unrolling depth: base case checks frames 0..depth-1 from reset,
     *  the step case assumes depth frames and checks the next. */
    int depth = 6;
    /** Per-query conflict budget (0 = unlimited). Budget exhaustion
     *  classifies the candidate as unknown, never as proven. */
    uint64_t conflictBudget = 50000;
    /** Model ROM reads at symbolic addresses exactly (mux over the
     *  image) instead of as free variables. */
    bool romMux = true;
    /** Worker threads for the sharded candidate partition (1 = serial,
     *  0 = all hardware threads). Verdicts are identical at any value. */
    int threads = 1;
};

/** A net plus the constant value measurement says it is stuck at. */
struct NeverToggleCandidate
{
    GateId gate;
    bool value;
};

struct NeverToggleStats
{
    uint64_t baseConflicts = 0;
    uint64_t stepConflicts = 0;
    uint64_t queries = 0;
    int rounds = 0;  ///< fixpoint sweeps in the step case (summed over shards)
    uint64_t propagations = 0;
    uint64_t learnedClauses = 0;  ///< learned clauses ever recorded
    uint64_t keptClauses = 0;     ///< learned clauses live at the end
    uint64_t dbReductions = 0;    ///< clause-database reductions
    uint64_t restarts = 0;
    size_t shards = 0;  ///< candidate partition size (thread-independent)
};

struct NeverToggleResult
{
    /** Proven: no input sequence can flip the net within the checked
     *  envelope (BoundedEnvelope) / ever (Induction). */
    std::vector<NeverToggleCandidate> proven;
    /** Refuted in the base case: the abstract envelope reaches the
     *  opposite value from reset within `depth` cycles. */
    std::vector<GateId> refuted;
    /** Not decided: budget exhausted or the induction failed. */
    std::vector<GateId> unknown;
    NeverToggleStats stats;
};

NeverToggleResult
proveNeverToggling(const Netlist &nl, const AsmProgram &prog,
                   const std::vector<NeverToggleCandidate> &candidates,
                   const NeverToggleOptions &opts = {});

} // namespace bespoke::sat

#endif // BESPOKE_SAT_NEVER_TOGGLE_HH
