#include "src/sat/encode.hh"

#include <algorithm>

#include "src/isa/isa.hh"
#include "src/util/logging.hh"

namespace bespoke::sat
{

Lit
Tseitin::andL(std::vector<Lit> ins)
{
    std::sort(ins.begin(), ins.end());
    std::vector<Lit> xs;
    xs.reserve(ins.size());
    for (Lit l : ins) {
        if (l == kTrue)
            continue;
        if (l == kFalse)
            return kFalse;
        if (!xs.empty() && xs.back() == l)
            continue;
        if (!xs.empty() && xs.back() == ~l)
            return kFalse;  // x AND NOT x
        xs.push_back(l);
    }
    if (xs.empty())
        return kTrue;
    if (xs.size() == 1)
        return xs[0];
    Lit g = fresh();
    std::vector<Lit> big;
    big.reserve(xs.size() + 1);
    big.push_back(g);
    for (Lit x : xs) {
        sink_.binary(~g, x);
        big.push_back(~x);
    }
    sink_.clause(big);
    return g;
}

Lit
Tseitin::orL(std::vector<Lit> ins)
{
    for (Lit &l : ins)
        l = ~l;
    return ~andL(std::move(ins));
}

Lit
Tseitin::xorL(Lit a, Lit b)
{
    if (a == kTrue)
        return ~b;
    if (a == kFalse)
        return b;
    if (b == kTrue)
        return ~a;
    if (b == kFalse)
        return a;
    if (a == b)
        return kFalse;
    if (a == ~b)
        return kTrue;
    Lit g = fresh();
    sink_.ternary(~g, a, b);
    sink_.ternary(~g, ~a, ~b);
    sink_.ternary(g, ~a, b);
    sink_.ternary(g, a, ~b);
    return g;
}

Lit
Tseitin::muxL(Lit sel, Lit a0, Lit a1)
{
    if (sel == kTrue)
        return a1;
    if (sel == kFalse)
        return a0;
    if (a0 == a1)
        return a0;
    if (a0 == ~a1)
        return xorL(sel, a0);  // sel=0 -> a0, sel=1 -> ~a0
    if (a1 == kTrue)
        return orL(sel, a0);
    if (a1 == kFalse)
        return andL(~sel, a0);
    if (a0 == kTrue)
        return orL(~sel, a1);
    if (a0 == kFalse)
        return andL(sel, a1);
    Lit g = fresh();
    sink_.ternary(~sel, ~a1, g);
    sink_.ternary(~sel, a1, ~g);
    sink_.ternary(sel, ~a0, g);
    sink_.ternary(sel, a0, ~g);
    return g;
}

void
encodeCombFrame(const Netlist &nl, const std::vector<GateId> &order,
                Tseitin &ts, std::vector<Lit> *vals)
{
    bespoke_assert(vals->size() == nl.size());
    std::vector<Lit> &v = *vals;
    for (GateId id = 0; id < nl.size(); id++) {
        CellType t = nl.gate(id).type;
        if (t == CellType::TIE0)
            v[id] = kFalse;
        else if (t == CellType::TIE1)
            v[id] = kTrue;
    }
    for (GateId id : order) {
        const Gate &g = nl.gate(id);
        Lit a = g.in[0] != kNoGate ? v[g.in[0]] : kFalse;
        Lit b = g.in[1] != kNoGate ? v[g.in[1]] : kFalse;
        Lit c = g.in[2] != kNoGate ? v[g.in[2]] : kFalse;
        switch (g.type) {
          case CellType::OUTPUT:
          case CellType::BUF:
            v[id] = a;
            break;
          case CellType::INV:
            v[id] = ~a;
            break;
          case CellType::AND2:
            v[id] = ts.andL(a, b);
            break;
          case CellType::AND3:
            v[id] = ts.andL({a, b, c});
            break;
          case CellType::OR2:
            v[id] = ts.orL(a, b);
            break;
          case CellType::OR3:
            v[id] = ts.orL({a, b, c});
            break;
          case CellType::NAND2:
            v[id] = ~ts.andL(a, b);
            break;
          case CellType::NAND3:
            v[id] = ~ts.andL({a, b, c});
            break;
          case CellType::NOR2:
            v[id] = ~ts.orL(a, b);
            break;
          case CellType::NOR3:
            v[id] = ~ts.orL({a, b, c});
            break;
          case CellType::XOR2:
            v[id] = ts.xorL(a, b);
            break;
          case CellType::XNOR2:
            v[id] = ~ts.xorL(a, b);
            break;
          case CellType::MUX2:
            v[id] = ts.muxL(c, a, b);
            break;
          case CellType::AOI21:
            v[id] = ~ts.orL(ts.andL(a, b), c);
            break;
          case CellType::OAI21:
            v[id] = ~ts.andL(ts.orL(a, b), c);
            break;
          default:
            bespoke_panic("encodeCombFrame: unexpected cell in order: ",
                          static_cast<int>(g.type));
        }
    }
}

SocUnroller::SocUnroller(const Netlist &nl, const AsmProgram &prog,
                         CnfSink &sink, const UnrollOptions &opts)
    : prog_(prog), ts_(sink), opts_(opts)
{
    leaderCtx_ = SocContext::make(nl);
    leader_.ctx = leaderCtx_;
    initDesign(&leader_, nl);
    ram_.assign(kRamSize / 2, MemWord{});
}

void
SocUnroller::attachFollower(const Netlist &other)
{
    bespoke_assert(frames_ == 0,
                   "attachFollower must precede the first addFrame");
    follower_ = std::make_unique<Design>();
    followerCtx_ = SocContext::make(other);
    follower_->ctx = followerCtx_;
    initDesign(follower_.get(), other);
}

void
SocUnroller::initDesign(Design *d, const Netlist &nl)
{
    d->nl = &nl;
    d->order = nl.levelize();
    d->seqIds = nl.sequentialIds();
}

Lit
SocUnroller::freeVar(FreeVarInfo::Kind kind, int frame, uint32_t index,
                     uint32_t bit)
{
    Var v = ts_.sink().newVar();
    free_.push_back({kind, frame, index, bit, v});
    return mkLit(v);
}

void
SocUnroller::driveAndEval(Design *d, int frame,
                          const std::array<Lit, 16> &gpio, Lit irq)
{
    const SocContext &c = *d->ctx;
    d->vals.emplace_back(d->nl->size(), kFalse);
    std::vector<Lit> &v = d->vals.back();
    for (size_t i = 0; i < d->seqIds.size(); i++)
        v[d->seqIds[i]] = d->nextState[i];
    std::vector<uint8_t> covered(d->nl->size(), 0);
    for (int b = 0; b < 16; b++) {
        v[c.pMemRdata[b]] = rdata_[b];
        v[c.pGpioIn[b]] = gpio[b];
        covered[c.pMemRdata[b]] = 1;
        covered[c.pGpioIn[b]] = 1;
    }
    v[c.pIrqExt] = irq;
    covered[c.pIrqExt] = 1;
    for (GateId id : d->nl->inputIds()) {
        if (!covered[id])
            v[id] = freeVar(FreeVarInfo::Kind::OtherInput, frame, id, 0);
    }
    encodeCombFrame(*d->nl, d->order, ts_, &v);
}

void
SocUnroller::trackWord(uint32_t word_idx)
{
    MemWord &w = ram_[word_idx];
    if (w.st == MemWord::St::Tracked)
        return;
    // A word in Init or Untracked state holds some definite but unknown
    // value; materializing it as fresh variables keeps repeated reads
    // consistent (and replayable as initial contents when pre-havoc).
    FreeVarInfo::Kind kind = w.st == MemWord::St::Init
                                 ? FreeVarInfo::Kind::RamInit
                                 : FreeVarInfo::Kind::MemFresh;
    for (uint32_t b = 0; b < 16; b++)
        w.bits[b] = freeVar(kind, frames_, word_idx, b);
    w.st = MemWord::St::Tracked;
}

std::array<Lit, 16>
SocUnroller::romMuxRead(const std::array<Lit, 16> &addr)
{
    // Word index = addr bits 11..1 (bit 0 ignored: word-aligned reads,
    // top nibble pinned to 0xF by the caller's isRom guard). The ROM
    // image defaults to 0xff fill, so only words differing from 0xffff
    // need a comparator; result bit b is the NOR of the address
    // comparators of words whose bit b is zero.
    std::vector<std::vector<Lit>> zeros(16);
    for (uint32_t k = 0; k < kRomSize / 2; k++) {
        uint16_t w = prog_.romWord(static_cast<uint16_t>(kRomBase + 2 * k));
        if (w == 0xffff)
            continue;
        std::vector<Lit> conj;
        conj.reserve(11);
        for (int bi = 0; bi < 11; bi++) {
            Lit abit = addr[1 + bi];
            conj.push_back(((k >> bi) & 1) ? abit : ~abit);
        }
        Lit eq = ts_.andL(std::move(conj));
        for (int b = 0; b < 16; b++) {
            if (!((w >> b) & 1))
                zeros[b].push_back(eq);
        }
    }
    std::array<Lit, 16> out;
    for (int b = 0; b < 16; b++)
        out[b] = ~ts_.orL(std::move(zeros[b]));
    return out;
}

std::array<Lit, 16>
SocUnroller::readData(const std::array<Lit, 16> &addr)
{
    bool addr_const = true;
    uint16_t a = 0;
    for (int b = 0; b < 16; b++) {
        if (!isConstLit(addr[b])) {
            addr_const = false;
            break;
        }
        if (addr[b] == kTrue)
            a = static_cast<uint16_t>(a | (1u << b));
    }
    std::array<Lit, 16> data;
    if (addr_const) {
        a = static_cast<uint16_t>(a & ~1u);
        if (isRomAddr(a)) {
            uint16_t w = prog_.romWord(a);
            for (int b = 0; b < 16; b++)
                data[b] = ((w >> b) & 1) ? kTrue : kFalse;
        } else if (isRamAddr(a)) {
            uint32_t wi = (a - kRamBase) >> 1;
            trackWord(wi);
            data = ram_[wi].bits;
        } else {
            // Peripheral space is routed inside the netlist; the
            // simulator presents X — model as unconstrained.
            for (int b = 0; b < 16; b++)
                data[b] = freeVar(FreeVarInfo::Kind::MemFresh, frames_,
                                  a, b);
        }
    } else if (opts_.romMux) {
        Lit isrom =
            ts_.andL({addr[15], addr[14], addr[13], addr[12]});
        std::array<Lit, 16> rom = romMuxRead(addr);
        for (int b = 0; b < 16; b++) {
            Lit f = freeVar(FreeVarInfo::Kind::MemFresh, frames_,
                            0xffffffffu, b);
            data[b] = ts_.muxL(isrom, f, rom[b]);
        }
    } else {
        for (int b = 0; b < 16; b++)
            data[b] = freeVar(FreeVarInfo::Kind::MemFresh, frames_,
                              0xffffffffu, b);
    }
    return data;
}

void
SocUnroller::stepMemory(const Design &d, int frame)
{
    const SocContext &c = *d.ctx;
    const std::vector<Lit> &v = d.vals[frame];
    Lit en = v[c.pMemEn];
    Lit wen0 = v[c.pMemWen0];
    Lit wen1 = v[c.pMemWen1];
    std::array<Lit, 16> addr, wdata;
    for (int b = 0; b < 16; b++) {
        addr[b] = v[c.pMemAddr[b]];
        wdata[b] = v[c.pMemWdata[b]];
    }
    Lit wl0 = ts_.andL(en, wen0);
    Lit wl1 = ts_.andL(en, wen1);

    bool addr_const = true;
    uint16_t a = 0;
    for (int b = 0; b < 16; b++) {
        if (!isConstLit(addr[b])) {
            addr_const = false;
            break;
        }
        if (addr[b] == kTrue)
            a = static_cast<uint16_t>(a | (1u << b));
    }

    // --- Writes (byte lanes), mirroring sampleMemory(). ---
    if (wl0 != kFalse || wl1 != kFalse) {
        if (!addr_const) {
            // Unknown destination: every word may have been written.
            for (MemWord &w : ram_)
                w.st = MemWord::St::Untracked;
            havocked_ = true;
        } else if (isRamAddr(a)) {
            uint32_t wi = (a - kRamBase) >> 1;
            if (wl0 == kTrue && wl1 == kTrue) {
                ram_[wi].bits = wdata;
                ram_[wi].st = MemWord::St::Tracked;
            } else {
                trackWord(wi);
                MemWord &w = ram_[wi];
                for (int lane = 0; lane < 2; lane++) {
                    Lit wl = lane ? wl1 : wl0;
                    if (wl == kFalse)
                        continue;
                    for (int b = lane * 8; b < lane * 8 + 8; b++) {
                        w.bits[b] = wl == kTrue
                                        ? wdata[b]
                                        : ts_.muxL(wl, w.bits[b],
                                                   wdata[b]);
                    }
                }
            }
        }
        // Peripheral registers live inside the netlist; ROM/unmapped
        // writes are ignored — exactly the simulator's behavior.
    }

    // --- Reads (synchronous, data presented next cycle). ---
    Lit r = ts_.andL({en, ~wen0, ~wen1});
    if (r == kFalse)
        return;  // rdata holds
    std::array<Lit, 16> data = readData(addr);
    for (int b = 0; b < 16; b++)
        rdata_[b] = ts_.muxL(r, rdata_[b], data[b]);
}

void
SocUnroller::addFrame()
{
    int f = frames_;
    if (f == 0) {
        for (uint32_t b = 0; b < 16; b++)
            rdata_[b] = freeVar(FreeVarInfo::Kind::InitRdata, 0, 0, b);
        Design *designs[2] = {&leader_, follower_.get()};
        for (Design *d : designs) {
            if (!d)
                continue;
            d->nextState.resize(d->seqIds.size());
            for (size_t i = 0; i < d->seqIds.size(); i++) {
                GateId id = d->seqIds[i];
                if (opts_.fromReset) {
                    d->nextState[i] =
                        d->nl->gate(id).resetValue ? kTrue : kFalse;
                } else {
                    d->nextState[i] = freeVar(
                        FreeVarInfo::Kind::InitFlop, 0, id, 0);
                }
            }
        }
    }
    std::array<Lit, 16> gpio;
    for (uint32_t b = 0; b < 16; b++)
        gpio[b] = freeVar(FreeVarInfo::Kind::GpioIn, f, 0, b);
    Lit irq = freeVar(FreeVarInfo::Kind::IrqExt, f, 0, 0);

    driveAndEval(&leader_, f, gpio, irq);
    if (follower_)
        driveAndEval(follower_.get(), f, gpio, irq);

    stepMemory(leader_, f);

    Design *designs[2] = {&leader_, follower_.get()};
    for (Design *d : designs) {
        if (!d)
            continue;
        const std::vector<Lit> &v = d->vals[f];
        for (size_t i = 0; i < d->seqIds.size(); i++) {
            GateId id = d->seqIds[i];
            const Gate &g = d->nl->gate(id);
            Lit dv = v[g.in[0]];
            Lit q = v[id];
            d->nextState[i] = g.type == CellType::DFF
                                  ? dv
                                  : ts_.muxL(v[g.in[1]], q, dv);
        }
    }
    frames_++;
}

} // namespace bespoke::sat
