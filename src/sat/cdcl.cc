#include "src/sat/cdcl.hh"

#include <algorithm>
#include <cmath>

#include "src/util/logging.hh"

namespace bespoke::sat
{

namespace
{

constexpr double kActivityLimit = 1e100;
constexpr Lit kLitUndef = Lit(0xffffffffu);

/** Learned clauses added between database reductions. */
constexpr size_t kReduceInc = 1000;

/** Luby restart sequence: 1 1 2 1 1 2 4 ... (scaled by y^seq). */
double
luby(double y, int x)
{
    int size, seq;
    for (size = 1, seq = 0; size < x + 1; seq++, size = 2 * size + 1) {}
    while (size - 1 != x) {
        size = (size - 1) >> 1;
        seq--;
        x = x % size;
    }
    return std::pow(y, seq);
}

enum SearchStatus
{
    kSearchRestart,
    kSearchSat,
    kSearchUnsat,
    kSearchBudget,
};

} // namespace

CdclSolver::CdclSolver(const CdclConfig &config) : cfg_(config)
{
    Var t = newVar();
    bespoke_assert(t == 0);
    unit(kTrue);
}

Var
CdclSolver::newVar()
{
    Var v = nVars_++;
    assign_.push_back(2);
    level_.push_back(0);
    reason_.push_back(kNoReason);
    // A nonzero order seed perturbs initial activities with a
    // deterministic hash, permuting the portfolio member's branching
    // order while keeping every tie-break reproducible.
    double a0 = 0.0;
    if (cfg_.orderSeed != 0) {
        uint32_t h = (v * 2654435761u) ^ (cfg_.orderSeed * 2246822519u);
        a0 = 1e-6 * static_cast<double>(h & 1023u);
    }
    activity_.push_back(a0);
    phase_.push_back(cfg_.initPhase ? 1 : 0);
    seen_.push_back(0);
    heapPos_.push_back(-1);
    watches_.emplace_back();
    watches_.emplace_back();
    heapInsert(v);
    return v;
}

void
CdclSolver::invalidateSavedTrail()
{
    cancelUntil(0);
    savedAssumptions_.clear();
}

void
CdclSolver::addClause(const Lit *lits, size_t n)
{
    // New constraints invalidate the saved assumption-prefix trail:
    // the kept propagations may be incomplete under the new clause.
    invalidateSavedTrail();
    if (!ok_)
        return;
    std::vector<Lit> cs(lits, lits + n);
    std::sort(cs.begin(), cs.end());
    std::vector<Lit> out;
    out.reserve(cs.size());
    for (size_t i = 0; i < cs.size(); i++) {
        Lit l = cs[i];
        bespoke_assert(l.var() < nVars_, "literal for unknown variable");
        if (i + 1 < cs.size()) {
            if (cs[i + 1] == l)
                continue;  // duplicate
            if (cs[i + 1] == ~l)
                return;  // tautology
        }
        uint8_t v = value(l);
        if (v == 1)
            return;  // already satisfied at level 0
        if (v == 0)
            continue;  // already false at level 0: drop literal
        out.push_back(l);
    }
    if (out.empty()) {
        ok_ = false;
        return;
    }
    if (out.size() == 1) {
        uncheckedEnqueue(out[0], kNoReason);
        if (propagate() != kNoReason)
            ok_ = false;
        return;
    }
    CRef cref = allocClause(out, false, 0);
    attachClause(cref);
}

CdclSolver::CRef
CdclSolver::allocClause(const std::vector<Lit> &lits, bool learned,
                        uint32_t lbd)
{
    CRef cref = static_cast<CRef>(arena_.size());
    arena_.push_back(static_cast<uint32_t>(lits.size() << 1) |
                     (learned ? 1u : 0u));
    arena_.push_back(lbd);
    for (Lit l : lits)
        arena_.push_back(l.code);
    return cref;
}

void
CdclSolver::attachClause(CRef cref)
{
    Lit c0(arena_[cref + 2]);
    Lit c1(arena_[cref + 3]);
    watches_[(~c0).code].push_back({cref, c1});
    watches_[(~c1).code].push_back({cref, c0});
}

void
CdclSolver::uncheckedEnqueue(Lit p, CRef from)
{
    Var v = p.var();
    bespoke_assert(assign_[v] == 2);
    assign_[v] = p.negated() ? 0 : 1;
    level_[v] = static_cast<uint32_t>(decisionLevel());
    reason_[v] = from;
    trail_.push_back(p);
}

CdclSolver::CRef
CdclSolver::propagate()
{
    CRef confl = kNoReason;
    while (qhead_ < trail_.size()) {
        Lit p = trail_[qhead_++];
        propagations_++;
        std::vector<Watch> &ws = watches_[p.code];
        size_t i = 0, j = 0;
        while (i < ws.size()) {
            Watch w = ws[i];
            if (value(w.blocker) == 1) {
                ws[j++] = ws[i++];
                continue;
            }
            CRef cref = w.cref;
            uint32_t size = arena_[cref] >> 1;
            uint32_t *lits = &arena_[cref + 2];
            Lit false_lit = ~p;
            if (Lit(lits[0]) == false_lit)
                std::swap(lits[0], lits[1]);
            bespoke_assert(Lit(lits[1]) == false_lit);
            i++;
            // The other watched literal may already satisfy the clause.
            Lit first(lits[0]);
            Watch nw{cref, first};
            if (first != w.blocker && value(first) == 1) {
                ws[j++] = nw;
                continue;
            }
            // Look for a non-false literal to watch instead.
            bool moved = false;
            for (uint32_t k = 2; k < size; k++) {
                if (value(Lit(lits[k])) != 0) {
                    std::swap(lits[1], lits[k]);
                    watches_[(~Lit(lits[1])).code].push_back(nw);
                    moved = true;
                    break;
                }
            }
            if (moved)
                continue;
            // Clause is unit or conflicting under the current trail.
            ws[j++] = nw;
            if (value(first) == 0) {
                confl = cref;
                qhead_ = trail_.size();
                while (i < ws.size())
                    ws[j++] = ws[i++];
            } else {
                uncheckedEnqueue(first, cref);
            }
        }
        ws.resize(j);
    }
    return confl;
}

void
CdclSolver::cancelUntil(size_t target_level)
{
    if (decisionLevel() <= target_level)
        return;
    size_t lim = trailLim_[target_level];
    for (size_t i = trail_.size(); i-- > lim;) {
        Var v = trail_[i].var();
        phase_[v] = assign_[v];
        assign_[v] = 2;
        reason_[v] = kNoReason;
        if (heapPos_[v] < 0)
            heapInsert(v);
    }
    trail_.resize(lim);
    trailLim_.resize(target_level);
    qhead_ = lim;
}

void
CdclSolver::analyze(CRef confl, std::vector<Lit> *out_learnt,
                    size_t *out_btlevel, uint32_t *out_lbd)
{
    out_learnt->clear();
    out_learnt->push_back(kLitUndef);  // slot for the asserting literal
    std::vector<Var> to_clear;
    size_t index = trail_.size();
    Lit p = kLitUndef;
    int pathc = 0;
    CRef cr = confl;
    do {
        bespoke_assert(cr != kNoReason);
        uint32_t size = arena_[cr] >> 1;
        const uint32_t *lits = &arena_[cr + 2];
        // For reason clauses, lits[0] is the implied literal (== p).
        for (uint32_t k = (p == kLitUndef) ? 0 : 1; k < size; k++) {
            Lit q(lits[k]);
            Var v = q.var();
            if (!seen_[v] && level_[v] > 0) {
                seen_[v] = 1;
                to_clear.push_back(v);
                bumpVar(v);
                if (level_[v] >= decisionLevel())
                    pathc++;
                else
                    out_learnt->push_back(q);
            }
        }
        while (!seen_[trail_[--index].var()]) {}
        p = trail_[index];
        cr = reason_[p.var()];
        seen_[p.var()] = 0;
        pathc--;
    } while (pathc > 0);
    (*out_learnt)[0] = ~p;

    // Local minimization: a literal is redundant when its reason is
    // subsumed by the clause itself (every antecedent is marked or at
    // level 0).
    size_t w = 1;
    for (size_t k = 1; k < out_learnt->size(); k++) {
        Lit l = (*out_learnt)[k];
        CRef r = reason_[l.var()];
        bool removable = false;
        if (r != kNoReason) {
            removable = true;
            uint32_t size = arena_[r] >> 1;
            const uint32_t *lits = &arena_[r + 2];
            for (uint32_t m = 1; m < size; m++) {
                Var v = Lit(lits[m]).var();
                if (!seen_[v] && level_[v] > 0) {
                    removable = false;
                    break;
                }
            }
        }
        if (!removable)
            (*out_learnt)[w++] = l;
    }
    out_learnt->resize(w);
    for (Var v : to_clear)
        seen_[v] = 0;

    // Literal block distance: distinct decision levels in the clause.
    std::vector<uint32_t> levels;
    levels.reserve(out_learnt->size());
    for (Lit l : *out_learnt)
        levels.push_back(level_[l.var()]);
    std::sort(levels.begin(), levels.end());
    *out_lbd = static_cast<uint32_t>(
        std::unique(levels.begin(), levels.end()) - levels.begin());

    if (out_learnt->size() == 1) {
        *out_btlevel = 0;
    } else {
        size_t maxi = 1;
        for (size_t k = 2; k < out_learnt->size(); k++) {
            if (level_[(*out_learnt)[k].var()] >
                level_[(*out_learnt)[maxi].var()]) {
                maxi = k;
            }
        }
        std::swap((*out_learnt)[1], (*out_learnt)[maxi]);
        *out_btlevel = level_[(*out_learnt)[1].var()];
    }
}

void
CdclSolver::analyzeFinal(Lit p)
{
    core_.clear();
    core_.push_back(p);
    if (decisionLevel() == 0) {
        return;
    }
    std::vector<Var> to_clear;
    seen_[p.var()] = 1;
    to_clear.push_back(p.var());
    for (size_t i = trail_.size(); i-- > trailLim_[0];) {
        Var x = trail_[i].var();
        if (!seen_[x])
            continue;
        if (reason_[x] == kNoReason) {
            bespoke_assert(level_[x] > 0);
            core_.push_back(trail_[i]);  // an assumption decision
        } else {
            CRef r = reason_[x];
            uint32_t size = arena_[r] >> 1;
            const uint32_t *lits = &arena_[r + 2];
            for (uint32_t m = 1; m < size; m++) {
                Var v = Lit(lits[m]).var();
                if (level_[v] > 0 && !seen_[v]) {
                    seen_[v] = 1;
                    to_clear.push_back(v);
                }
            }
        }
        seen_[x] = 0;
    }
    for (Var v : to_clear)
        seen_[v] = 0;
    std::sort(core_.begin(), core_.end());
    core_.erase(std::unique(core_.begin(), core_.end()), core_.end());
}

Lit
CdclSolver::pickBranchLit()
{
    while (!heap_.empty()) {
        Var v = heapRemoveMin();
        if (assign_[v] == 2) {
            decisions_++;
            return mkLit(v, phase_[v] == 0);
        }
    }
    return kLitUndef;
}

void
CdclSolver::bumpVar(Var v)
{
    activity_[v] += varInc_;
    if (activity_[v] > kActivityLimit) {
        for (Var u = 0; u < nVars_; u++)
            activity_[u] *= 1e-100;
        varInc_ *= 1e-100;
    }
    if (heapPos_[v] >= 0)
        heapPercolateUp(static_cast<size_t>(heapPos_[v]));
}

void
CdclSolver::decayVarActivity()
{
    varInc_ /= cfg_.varDecay;
}

void
CdclSolver::reduceDB()
{
    bespoke_assert(decisionLevel() == 0,
                   "database reduction requires a quiescent trail");
    // A clause is locked while it is the reason of a trail assignment.
    auto locked = [&](CRef cr) {
        Var v = Lit(arena_[cr + 2]).var();
        return assign_[v] != 2 && reason_[v] == cr;
    };
    // Glue (LBD <= 2) and locked clauses are always kept; the rest are
    // ranked by (LBD, size, youth) and the worse half dropped. Every
    // ordering key is deterministic, so the surviving database — and
    // with it every later verdict — is reproducible.
    std::vector<CRef> cand;
    for (CRef cr : learned_) {
        if (arena_[cr + 1] <= 2 || locked(cr))
            continue;
        cand.push_back(cr);
    }
    std::sort(cand.begin(), cand.end(), [&](CRef a, CRef b) {
        uint32_t la = arena_[a + 1], lb = arena_[b + 1];
        if (la != lb)
            return la < lb;
        uint32_t sa = arena_[a] >> 1, sb = arena_[b] >> 1;
        if (sa != sb)
            return sa < sb;
        return a > b;  // prefer younger among equals
    });
    std::vector<CRef> dropped(cand.begin() + cand.size() / 2,
                              cand.end());
    reduceLimit_ += kReduceInc;
    if (dropped.empty())
        return;
    std::sort(dropped.begin(), dropped.end());
    removed_ += dropped.size();

    // Compact the arena, remembering old->new positions of survivors.
    std::vector<uint32_t> next;
    next.reserve(arena_.size());
    std::vector<std::pair<CRef, CRef>> remap;
    learned_.clear();
    size_t pos = 0, di = 0;
    while (pos < arena_.size()) {
        CRef old = static_cast<CRef>(pos);
        uint32_t header = arena_[pos];
        uint32_t size = header >> 1;
        bool is_learned = (header & 1u) != 0;
        size_t words = 2 + size;
        while (di < dropped.size() && dropped[di] < old)
            di++;
        if (is_learned && di < dropped.size() && dropped[di] == old) {
            pos += words;
            continue;
        }
        CRef fresh = static_cast<CRef>(next.size());
        for (size_t k = 0; k < words; k++)
            next.push_back(arena_[pos + k]);
        remap.emplace_back(old, fresh);
        if (is_learned)
            learned_.push_back(fresh);
        pos += words;
    }
    arena_ = std::move(next);

    auto relocate = [&](CRef old) {
        auto it = std::lower_bound(
            remap.begin(), remap.end(), std::make_pair(old, CRef(0)),
            [](const std::pair<CRef, CRef> &x,
               const std::pair<CRef, CRef> &y) { return x.first < y.first; });
        bespoke_assert(it != remap.end() && it->first == old,
                       "reason clause dropped by reduction");
        return it->second;
    };
    for (Lit l : trail_) {
        Var v = l.var();
        if (reason_[v] != kNoReason)
            reason_[v] = relocate(reason_[v]);
    }
    for (std::vector<Watch> &ws : watches_)
        ws.clear();
    pos = 0;
    while (pos < arena_.size()) {
        attachClause(static_cast<CRef>(pos));
        pos += 2 + (arena_[pos] >> 1);
    }
    reductions_++;
}

bool
CdclSolver::heapLess(Var a, Var b) const
{
    if (activity_[a] != activity_[b])
        return activity_[a] > activity_[b];
    return a < b;
}

void
CdclSolver::heapPercolateUp(size_t i)
{
    Var v = heap_[i];
    while (i > 0) {
        size_t parent = (i - 1) >> 1;
        if (!heapLess(v, heap_[parent]))
            break;
        heap_[i] = heap_[parent];
        heapPos_[heap_[i]] = static_cast<int32_t>(i);
        i = parent;
    }
    heap_[i] = v;
    heapPos_[v] = static_cast<int32_t>(i);
}

void
CdclSolver::heapPercolateDown(size_t i)
{
    Var v = heap_[i];
    for (;;) {
        size_t child = 2 * i + 1;
        if (child >= heap_.size())
            break;
        if (child + 1 < heap_.size() &&
            heapLess(heap_[child + 1], heap_[child])) {
            child++;
        }
        if (!heapLess(heap_[child], v))
            break;
        heap_[i] = heap_[child];
        heapPos_[heap_[i]] = static_cast<int32_t>(i);
        i = child;
    }
    heap_[i] = v;
    heapPos_[v] = static_cast<int32_t>(i);
}

void
CdclSolver::heapInsert(Var v)
{
    heap_.push_back(v);
    heapPos_[v] = static_cast<int32_t>(heap_.size() - 1);
    heapPercolateUp(heap_.size() - 1);
}

Var
CdclSolver::heapRemoveMin()
{
    Var v = heap_[0];
    heapPos_[v] = -1;
    Var last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
        heap_[0] = last;
        heapPos_[last] = 0;
        heapPercolateDown(0);
    }
    return v;
}

SolveResult
CdclSolver::solve(const std::vector<Lit> &assumptions,
                  uint64_t conflict_budget)
{
    core_.clear();
    model_.clear();
    if (!ok_) {
        invalidateSavedTrail();
        return SolveResult::Unsat;
    }
    for (Lit a : assumptions)
        bespoke_assert(a.var() < nVars_, "assumption for unknown variable");
    // Trail saving: the decision levels of the assumption prefix shared
    // with the previous solve stay on the trail, their propagations
    // intact; only the divergent suffix is re-decided.
    size_t shared = 0;
    while (shared < savedAssumptions_.size() &&
           shared < assumptions.size() &&
           savedAssumptions_[shared] == assumptions[shared]) {
        shared++;
    }
    cancelUntil(shared);
    uint64_t budget_end =
        conflict_budget ? conflicts_ + conflict_budget : 0;

    auto search = [&](int64_t nof_conflicts) -> int {
        int64_t conflictc = 0;
        for (;;) {
            CRef confl = propagate();
            if (confl != kNoReason) {
                conflicts_++;
                conflictc++;
                if (decisionLevel() == 0) {
                    ok_ = false;
                    core_.clear();
                    return kSearchUnsat;
                }
                std::vector<Lit> learnt;
                size_t btlevel;
                uint32_t lbd = 0;
                analyze(confl, &learnt, &btlevel, &lbd);
                cancelUntil(btlevel);
                learnedTotal_++;
                if (learnt.size() == 1) {
                    uncheckedEnqueue(learnt[0], kNoReason);
                } else {
                    CRef cr = allocClause(learnt, true, lbd);
                    attachClause(cr);
                    learned_.push_back(cr);
                    uncheckedEnqueue(learnt[0], cr);
                }
                decayVarActivity();
            } else {
                if (budget_end && conflicts_ >= budget_end)
                    return kSearchBudget;
                if (stop_ && stop_->load(std::memory_order_relaxed))
                    return kSearchBudget;
                if (conflictc >= nof_conflicts) {
                    cancelUntil(0);
                    return kSearchRestart;
                }
                Lit next = kLitUndef;
                while (decisionLevel() < assumptions.size()) {
                    Lit p = assumptions[decisionLevel()];
                    uint8_t v = value(p);
                    if (v == 1) {
                        // Already true: dummy decision level keeps the
                        // assumption <-> level mapping aligned.
                        trailLim_.push_back(trail_.size());
                    } else if (v == 0) {
                        analyzeFinal(p);
                        return kSearchUnsat;
                    } else {
                        next = p;
                        break;
                    }
                }
                if (next == kLitUndef) {
                    next = pickBranchLit();
                    if (next == kLitUndef) {
                        model_.assign(assign_.begin(), assign_.end());
                        return kSearchSat;
                    }
                }
                trailLim_.push_back(trail_.size());
                uncheckedEnqueue(next, kNoReason);
            }
        }
    };

    SolveResult result = SolveResult::Unknown;
    for (int restarts = 0;; restarts++) {
        int64_t nof = static_cast<int64_t>(luby(2.0, restarts) *
                                           cfg_.restartFirst);
        int r = search(nof);
        if (r == kSearchRestart) {
            restarts_++;
            if (learned_.size() >= reduceLimit_)
                reduceDB();
            continue;
        }
        if (r == kSearchSat)
            result = SolveResult::Sat;
        else if (r == kSearchUnsat)
            result = SolveResult::Unsat;
        else
            result = SolveResult::Unknown;
        break;
    }
    // Keep the assumption-prefix trail for the next solve. Invariant:
    // at any exit point the first min(decisionLevel, |assumptions|)
    // decision levels are exactly the leading assumptions.
    size_t keep = std::min(decisionLevel(), assumptions.size());
    cancelUntil(keep);
    savedAssumptions_.assign(assumptions.begin(),
                             assumptions.begin() + keep);
    return result;
}

bool
CdclSolver::modelValue(Lit l) const
{
    bespoke_assert(!model_.empty(), "modelValue before a Sat solve");
    uint8_t a = model_[l.var()];
    bespoke_assert(a != 2);
    return (a ^ (l.code & 1u)) == 1;
}

} // namespace bespoke::sat
