#include "src/sat/never_toggle.hh"

#include <utility>

#include "src/sat/cdcl.hh"
#include "src/sat/encode.hh"
#include "src/util/logging.hh"

namespace bespoke::sat
{

namespace
{

/** Literal that is true iff `gate` differs from `value` in frame f. */
Lit
differsAt(const SocUnroller &un, GateId gate, bool value, int f)
{
    Lit l = un.gateAt(gate, f);
    return value ? ~l : l;
}

} // namespace

NeverToggleResult
proveNeverToggling(const Netlist &nl, const AsmProgram &prog,
                   const std::vector<NeverToggleCandidate> &candidates,
                   const NeverToggleOptions &opts)
{
    bespoke_assert(opts.depth >= 1);
    NeverToggleResult res;
    if (candidates.empty())
        return res;

    // --- Stage 1: base case, bounded check from reset. ---
    enum class Verdict : uint8_t { Pending, Alive, Refuted, Unknown };
    std::vector<Verdict> verdict(candidates.size(), Verdict::Pending);
    std::vector<size_t> alive;
    {
        CdclSolver solver;
        UnrollOptions uo;
        uo.fromReset = true;
        uo.romMux = opts.romMux;
        SocUnroller un(nl, prog, solver, uo);
        for (int f = 0; f < opts.depth; f++)
            un.addFrame();
        Tseitin ts(solver);
        // One "differs somewhere in the envelope" literal per
        // candidate. Most fold at encode time.
        std::vector<Lit> diff(candidates.size(), kFalse);
        for (size_t i = 0; i < candidates.size(); i++) {
            const NeverToggleCandidate &c = candidates[i];
            std::vector<Lit> diffs;
            for (int f = 0; f < opts.depth; f++)
                diffs.push_back(differsAt(un, c.gate, c.value, f));
            Lit b = ts.orL(std::move(diffs));
            if (b == kFalse)
                verdict[i] = Verdict::Alive;  // structurally constant
            else if (b == kTrue)
                verdict[i] = Verdict::Refuted;
            else
                diff[i] = b;
        }
        // Counterexample-guided waves over the whole pending set: each
        // query asks "can ANY pending candidate leave its constant?".
        // A model is a concrete input/cycle trace and refutes every
        // pending candidate it drives off its value (at least one per
        // wave, so the loop terminates); the final UNSAT answer proves
        // all remaining candidates in a single query. This replaces
        // one solve per candidate with one per distinct witness.
        std::vector<size_t> pending;
        for (size_t i = 0; i < candidates.size(); i++) {
            if (verdict[i] == Verdict::Pending)
                pending.push_back(i);
        }
        while (!pending.empty()) {
            std::vector<Lit> ds;
            ds.reserve(pending.size());
            for (size_t i : pending)
                ds.push_back(diff[i]);
            Lit any = ts.orL(std::move(ds));
            res.stats.queries++;
            SolveResult r = solver.solve({any}, opts.conflictBudget);
            if (r == SolveResult::Unsat) {
                for (size_t i : pending)
                    verdict[i] = Verdict::Alive;
                break;
            }
            if (r == SolveResult::Unknown) {
                // Budget exhaustion is conservative: nothing pending
                // may be promoted to proven.
                for (size_t i : pending)
                    verdict[i] = Verdict::Unknown;
                break;
            }
            std::vector<size_t> next;
            for (size_t i : pending) {
                if (solver.modelValue(diff[i]))
                    verdict[i] = Verdict::Refuted;
                else
                    next.push_back(i);
            }
            bespoke_assert(next.size() < pending.size(),
                           "SAT wave refuted nothing");
            pending = std::move(next);
        }
        for (size_t i = 0; i < candidates.size(); i++) {
            if (verdict[i] == Verdict::Alive)
                alive.push_back(i);
            else if (verdict[i] == Verdict::Refuted)
                res.refuted.push_back(candidates[i].gate);
            else if (verdict[i] == Verdict::Unknown)
                res.unknown.push_back(candidates[i].gate);
        }
        res.stats.baseConflicts = solver.conflicts();
    }
    if (opts.mode == NeverToggleOptions::Mode::BoundedEnvelope) {
        // Base-stage UNSAT is the proof: the net holds its constant
        // for every input sequence across the whole checked horizon.
        for (size_t i : alive)
            res.proven.push_back(candidates[i]);
        return res;
    }
    if (alive.empty())
        return res;

    // --- Stage 2: mutual induction from a free state. ---
    CdclSolver solver;
    UnrollOptions uo;
    uo.fromReset = false;
    uo.romMux = opts.romMux;
    SocUnroller un(nl, prog, solver, uo);
    for (int f = 0; f <= opts.depth; f++)
        un.addFrame();
    Tseitin ts(solver);

    std::vector<Lit> act(candidates.size(), kFalse);
    std::vector<Lit> check(candidates.size(), kFalse);
    std::vector<size_t> survivors;
    for (size_t i : alive) {
        const NeverToggleCandidate &c = candidates[i];
        Lit a = ts.fresh();
        bool dropped = false;
        for (int f = 0; f < opts.depth; f++) {
            Lit eq = ~differsAt(un, c.gate, c.value, f);
            if (eq == kFalse) {
                // The hypothesis is unsatisfiable in this frame; the
                // candidate cannot be assumed. Never encode {~a}: a
                // false activation literal in the shared assumption
                // set would make every query vacuously UNSAT.
                dropped = true;
                break;
            }
            if (eq == kTrue)
                continue;
            solver.binary(~a, eq);
        }
        if (dropped) {
            res.unknown.push_back(c.gate);
            continue;
        }
        act[i] = a;
        check[i] = differsAt(un, c.gate, c.value, opts.depth);
        survivors.push_back(i);
    }

    bool changed = true;
    while (changed && !survivors.empty()) {
        changed = false;
        res.stats.rounds++;
        std::vector<size_t> next;
        for (size_t k = 0; k < survivors.size(); k++) {
            size_t i = survivors[k];
            if (check[i] == kFalse) {
                next.push_back(i);  // holds at frame depth outright
                continue;
            }
            std::vector<Lit> assumps;
            assumps.reserve(survivors.size() + 1);
            for (size_t j : survivors)
                assumps.push_back(act[j]);
            assumps.push_back(check[i]);
            res.stats.queries++;
            SolveResult r = solver.solve(assumps, opts.conflictBudget);
            if (r == SolveResult::Unsat) {
                next.push_back(i);
            } else {
                // Induction failed (or budget ran out): not proven.
                // Removing i weakens every earlier UNSAT that assumed
                // it, so the fixpoint loop runs another round.
                res.unknown.push_back(candidates[i].gate);
                changed = true;
            }
        }
        survivors = std::move(next);
    }
    res.stats.stepConflicts = solver.conflicts();

    for (size_t i : survivors)
        res.proven.push_back(candidates[i]);
    return res;
}

} // namespace bespoke::sat
