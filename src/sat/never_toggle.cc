#include "src/sat/never_toggle.hh"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/sat/cdcl.hh"
#include "src/sat/encode.hh"
#include "src/sat/portfolio.hh"
#include "src/util/logging.hh"
#include "src/util/worker_pool.hh"

namespace bespoke::sat
{

namespace
{

/** Candidates per shard before the partition splits (see portfolio.hh:
 *  the shard count is a function of the candidate count only). The
 *  shard cap matches the flow's 4-thread design point: every shard
 *  re-encodes the frame chain, so extra shards beyond the worker count
 *  are pure redundant encoding work. */
constexpr size_t kMinPerShard = 256;
constexpr size_t kMaxShards = 4;

/** Literal that is true iff `gate` differs from `value` in frame f. */
Lit
differsAt(const SocUnroller &un, GateId gate, bool value, int f)
{
    Lit l = un.gateAt(gate, f);
    return value ? ~l : l;
}

/**
 * Incremental deepening schedule: 8, 16, 32, ..., depth. Shallow
 * chunks refute cheap counterexamples on small formulas before the
 * full-depth encoding exists; the solver (learned clauses, activities,
 * phases) is shared across all chunks, so the final full-depth UNSAT
 * starts from everything the shallow queries taught it.
 */
std::vector<int>
chunkSchedule(int depth)
{
    std::vector<int> out;
    int d = std::min(depth, 8);
    for (;;) {
        out.push_back(d);
        if (d >= depth)
            break;
        d = std::min(depth, d * 2);
    }
    return out;
}

enum class Verdict : uint8_t
{
    Pending,
    Refuted,
    Unknown,
};

struct ShardOutcome
{
    /** Per local candidate: 0 proven, 1 refuted, 2 unknown. */
    std::vector<uint8_t> v;
    NeverToggleStats stats;
};

/**
 * Prove one contiguous candidate shard end to end on ONE solver: the
 * bounded base case is deepened chunk by chunk on a single unrolling,
 * and the optional induction stage attaches its free-state unrolling
 * to the same solver instead of rebuilding it, keeping the learned
 * clause database, activities, and phases across the stage boundary.
 */
ShardOutcome
runShard(const Netlist &nl, const AsmProgram &prog,
         const NeverToggleCandidate *cands, size_t n,
         const NeverToggleOptions &opts)
{
    ShardOutcome out;
    out.v.assign(n, 0);
    NeverToggleStats &st = out.stats;
    std::vector<Verdict> verdict(n, Verdict::Pending);
    auto solver = std::make_unique<CdclSolver>();

    // --- Stage 1: base case, bounded check from reset, incrementally
    // deepened over the chunk schedule. Runs the schedule to completion
    // and returns true, or returns false the moment a wave query
    // exhausts its conflict budget (leaving the undecided candidates
    // Pending — the caller decides whether to retry or demote them). ---
    auto runBase = [&](CdclSolver &s,
                       const std::vector<int> &schedule) -> bool {
        UnrollOptions uo;
        uo.fromReset = true;
        uo.romMux = opts.romMux;
        SocUnroller un(nl, prog, s, uo);
        Tseitin ts(s);
        // Per candidate: "differs somewhere in frames [0, encoded)".
        // Extended in place as the frame chain grows; most fold.
        std::vector<Lit> diff(n, kFalse);
        int encoded = 0;
        for (int target : schedule) {
            int prev = encoded;
            while (encoded < target) {
                un.addFrame();
                encoded++;
            }
            std::vector<size_t> pending;
            for (size_t i = 0; i < n; i++) {
                if (verdict[i] != Verdict::Pending)
                    continue;
                std::vector<Lit> ds;
                ds.reserve(static_cast<size_t>(target - prev) + 1);
                ds.push_back(diff[i]);
                for (int f = prev; f < target; f++)
                    ds.push_back(
                        differsAt(un, cands[i].gate, cands[i].value, f));
                Lit b = ts.orL(std::move(ds));
                if (b == kTrue) {
                    verdict[i] = Verdict::Refuted;
                    continue;
                }
                diff[i] = b;
                if (b != kFalse)
                    pending.push_back(i);
            }
            // Counterexample-guided waves over the pending set at this
            // horizon: each query asks "can ANY pending candidate leave
            // its constant within the frames encoded so far?". A model
            // refutes every pending candidate it drives off its value;
            // the UNSAT answer clears the whole horizon and the
            // survivors go deeper.
            while (!pending.empty()) {
                std::vector<Lit> ds;
                ds.reserve(pending.size());
                for (size_t i : pending)
                    ds.push_back(diff[i]);
                Lit any = ts.orL(std::move(ds));
                st.queries++;
                SolveResult r = s.solve({any}, opts.conflictBudget);
                if (r == SolveResult::Unsat)
                    break;
                if (r == SolveResult::Unknown)
                    return false;
                std::vector<size_t> next;
                for (size_t i : pending) {
                    if (s.modelValue(diff[i]))
                        verdict[i] = Verdict::Refuted;
                    else
                        next.push_back(i);
                }
                bespoke_assert(next.size() < pending.size(),
                               "SAT wave refuted nothing");
                pending = std::move(next);
            }
        }
        return true;
    };

    std::vector<size_t> alive;
    {
        bool done = runBase(*solver, chunkSchedule(opts.depth));
        if (!done) {
            // Budget exhaustion mid-schedule. The incremental session's
            // carried-over heuristic state (activities, saved phases,
            // learned-clause focus from the shallow horizons) can make
            // a deep UNSAT *harder* than a cold start, so before
            // demoting the survivors retry them once the way the
            // pre-incremental engine solved everything: a fresh solver
            // encoding the final depth directly. The re-encode is paid
            // only on this path; verdicts stay deterministic either
            // way. The abandoned session's work still shows up in the
            // counters (kept clauses excepted — they died with it).
            st.baseConflicts += solver->conflicts();
            st.propagations += solver->propagations();
            st.learnedClauses += solver->learnedClauses();
            st.dbReductions += solver->dbReductions();
            st.restarts += solver->restarts();
            solver = std::make_unique<CdclSolver>();
            done = runBase(*solver, {opts.depth});
        }
        if (!done) {
            // Budget exhaustion is conservative: nothing still pending
            // may be promoted to proven.
            for (size_t i = 0; i < n; i++) {
                if (verdict[i] == Verdict::Pending)
                    verdict[i] = Verdict::Unknown;
            }
        }
        for (size_t i = 0; i < n; i++) {
            if (verdict[i] == Verdict::Pending)
                alive.push_back(i);
        }
        st.baseConflicts += solver->conflicts();
    }

    // --- Stage 2: mutual induction from a free state. The SAME solver
    // carries over; only the free-state unrolling is new. ---
    const uint64_t base_end_conflicts = solver->conflicts();
    if (opts.mode == NeverToggleOptions::Mode::Induction &&
        !alive.empty())
    {
        UnrollOptions uo;
        uo.fromReset = false;
        uo.romMux = opts.romMux;
        SocUnroller un(nl, prog, *solver, uo);
        for (int f = 0; f <= opts.depth; f++)
            un.addFrame();
        Tseitin ts(*solver);

        std::vector<Lit> act(n, kFalse);
        std::vector<Lit> check(n, kFalse);
        std::vector<size_t> survivors;
        for (size_t i : alive) {
            const NeverToggleCandidate &c = cands[i];
            Lit a = ts.fresh();
            bool dropped = false;
            for (int f = 0; f < opts.depth; f++) {
                Lit eq = ~differsAt(un, c.gate, c.value, f);
                if (eq == kFalse) {
                    // The hypothesis is unsatisfiable in this frame;
                    // the candidate cannot be assumed. Never encode
                    // {~a}: a false activation literal in the shared
                    // assumption set would make every query vacuously
                    // UNSAT.
                    dropped = true;
                    break;
                }
                if (eq == kTrue)
                    continue;
                solver->binary(~a, eq);
            }
            if (dropped) {
                verdict[i] = Verdict::Unknown;
                continue;
            }
            act[i] = a;
            check[i] = differsAt(un, c.gate, c.value, opts.depth);
            survivors.push_back(i);
        }

        bool changed = true;
        while (changed && !survivors.empty()) {
            changed = false;
            st.rounds++;
            std::vector<size_t> next;
            for (size_t k = 0; k < survivors.size(); k++) {
                size_t i = survivors[k];
                if (check[i] == kFalse) {
                    next.push_back(i);  // holds at frame depth outright
                    continue;
                }
                // Queries within a round share the activation-literal
                // assumption prefix, so the solver's saved trail skips
                // re-propagating it between consecutive candidates.
                std::vector<Lit> assumps;
                assumps.reserve(survivors.size() + 1);
                for (size_t j : survivors)
                    assumps.push_back(act[j]);
                assumps.push_back(check[i]);
                st.queries++;
                SolveResult r =
                    solver->solve(assumps, opts.conflictBudget);
                if (r == SolveResult::Unsat) {
                    next.push_back(i);
                } else {
                    // Induction failed (or budget ran out): not proven.
                    // Removing i weakens every earlier UNSAT that
                    // assumed it, so the fixpoint loop runs another
                    // round.
                    verdict[i] = Verdict::Unknown;
                    changed = true;
                }
            }
            survivors = std::move(next);
        }
        // Survivors stay Pending == proven; the rest were marked.
        st.stepConflicts = solver->conflicts() - base_end_conflicts;
    }

    for (size_t i = 0; i < n; i++) {
        if (verdict[i] == Verdict::Refuted)
            out.v[i] = 1;
        else if (verdict[i] == Verdict::Unknown)
            out.v[i] = 2;
    }
    st.propagations += solver->propagations();
    st.learnedClauses += solver->learnedClauses();
    st.keptClauses = solver->keptClauses();
    st.dbReductions += solver->dbReductions();
    st.restarts += solver->restarts();
    return out;
}

} // namespace

NeverToggleResult
proveNeverToggling(const Netlist &nl, const AsmProgram &prog,
                   const std::vector<NeverToggleCandidate> &candidates,
                   const NeverToggleOptions &opts)
{
    bespoke_assert(opts.depth >= 1);
    NeverToggleResult res;
    if (candidates.empty())
        return res;

    // The partition is a function of the candidate count only, so the
    // merged verdicts are bit-identical at any thread count; each shard
    // is a self-contained deterministic session.
    std::vector<std::pair<size_t, size_t>> ranges =
        shardRanges(candidates.size(), kMinPerShard, kMaxShards);
    int threads = resolveSatThreads(opts.threads);
    std::vector<ShardOutcome> outs(ranges.size());
    auto run_one = [&](size_t s) {
        outs[s] = runShard(nl, prog, candidates.data() + ranges[s].first,
                           ranges[s].second - ranges[s].first, opts);
    };
    if (threads <= 1 || ranges.size() == 1) {
        for (size_t s = 0; s < ranges.size(); s++)
            run_one(s);
    } else {
        WorkerPool pool(
            std::min<int>(threads, static_cast<int>(ranges.size())));
        for (size_t s = 0; s < ranges.size(); s++)
            pool.post([&, s] { run_one(s); });
        pool.drain();
    }

    for (size_t s = 0; s < ranges.size(); s++) {
        const ShardOutcome &o = outs[s];
        for (size_t k = 0; k < o.v.size(); k++) {
            size_t i = ranges[s].first + k;
            if (o.v[k] == 0)
                res.proven.push_back(candidates[i]);
            else if (o.v[k] == 1)
                res.refuted.push_back(candidates[i].gate);
            else
                res.unknown.push_back(candidates[i].gate);
        }
        res.stats.baseConflicts += o.stats.baseConflicts;
        res.stats.stepConflicts += o.stats.stepConflicts;
        res.stats.queries += o.stats.queries;
        res.stats.rounds += o.stats.rounds;
        res.stats.propagations += o.stats.propagations;
        res.stats.learnedClauses += o.stats.learnedClauses;
        res.stats.keptClauses += o.stats.keptClauses;
        res.stats.dbReductions += o.stats.dbReductions;
        res.stats.restarts += o.stats.restarts;
    }
    res.stats.shards = ranges.size();
    return res;
}

} // namespace bespoke::sat
