/**
 * @file
 * Deterministic portfolio and partitioning helpers for parallel SAT.
 *
 * Two orthogonal parallelization shapes, both with thread-count-
 * independent verdicts (the reproducibility discipline the analysis
 * engines established):
 *
 * 1. Config portfolio (`runPortfolio`): N attempts of the same
 *    problem, each a differently-permuted but individually
 *    deterministic CDCL search (`portfolioConfig`). The winner is the
 *    LOWEST-INDEX decisive attempt — a pure function of the problem,
 *    not of wall-clock order. Sequential execution scans configs in
 *    index order and stops at the first decisive one; parallel
 *    execution races all configs and cancels only attempts with an
 *    index HIGHER than a decisive finisher, then waits for every
 *    lower-index attempt, so both schedules pick the identical winner
 *    (and its model/stats). The race only buys wall time when config 0
 *    is indecisive (conflict-budget exhaustion) — that is the point:
 *    a budgeted Unknown gets N deterministic chances instead of one.
 *
 * 2. Candidate partitioning (`shardRanges`): a pending candidate set
 *    is split into contiguous shards whose count depends ONLY on the
 *    candidate count, never on the thread count; shards then run as
 *    self-contained deterministic sessions on a `WorkerPool` and merge
 *    in index order. Verdicts are bit-identical at any `--sat-threads`.
 */

#ifndef BESPOKE_SAT_PORTFOLIO_HH
#define BESPOKE_SAT_PORTFOLIO_HH

#include <cstddef>
#include <atomic>
#include <functional>
#include <utility>
#include <vector>

#include "src/sat/cdcl.hh"

namespace bespoke::sat
{

/**
 * Deterministic portfolio member configs. Index 0 is the default
 * solver (the historical search order); higher indices permute the
 * restart schedule, initial phase, and branching order.
 */
CdclConfig portfolioConfig(int index);

/**
 * Fixed partition of [0, n) into contiguous shards. The shard count is
 * ceil(n / min_per_shard) capped at max_shards — a function of n only,
 * so partition-dependent verdicts cannot depend on the thread count.
 */
std::vector<std::pair<size_t, size_t>>
shardRanges(size_t n, size_t min_per_shard, size_t max_shards);

/**
 * Run up to `attempts` deterministic tries of one problem and return
 * the index of the lowest decisive attempt, or -1 if every attempt was
 * indecisive. `try_one(index, stop)` must be a pure function of the
 * index (plus the shared problem), returning true when decisive; it
 * should poll `stop` (via CdclSolver::setStopFlag) so a decisive
 * lower-index finisher can cancel it — a cancelled attempt simply
 * reports indecisive and its result is never read.
 *
 * `threads` <= 1 runs sequentially with first-decisive early exit;
 * both schedules return the same winner by construction.
 */
int runPortfolio(
    int attempts, int threads,
    const std::function<bool(int, const std::atomic<bool> *)> &try_one);

/** Resolve a --sat-threads-style knob: <= 0 means all hardware threads. */
int resolveSatThreads(int requested);

} // namespace bespoke::sat

#endif // BESPOKE_SAT_PORTFOLIO_HH
