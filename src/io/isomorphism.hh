/**
 * @file
 * Structural isomorphism check between two netlists.
 *
 * Two netlists are isomorphic when a gate-id bijection exists that
 * preserves cell types, drive strengths, module labels (of real
 * cells), reset values, fanin edges with pin order, and the port
 * name -> gate bindings. This is the identity the interchange round
 * trip must preserve: `import(export(N))` renumbers gates but may not
 * change the design.
 *
 * The check compares the two canonical orders (Netlist::
 * canonicalOrder()): the port-anchored canonical form is a complete
 * invariant for the netlists this system produces, so equality of the
 * canonical sequences both decides isomorphism and yields the witness
 * bijection. Consistent with Netlist::contentHash(), module labels of
 * INPUT/OUTPUT pseudo-gates are not part of the identity.
 */

#ifndef BESPOKE_IO_ISOMORPHISM_HH
#define BESPOKE_IO_ISOMORPHISM_HH

#include <string>

#include "src/netlist/netlist.hh"

namespace bespoke
{

struct IsoResult
{
    bool isomorphic = false;
    /** First structural difference, empty when isomorphic. */
    std::string why;
};

IsoResult netlistIsomorphic(const Netlist &a, const Netlist &b);

} // namespace bespoke

#endif // BESPOKE_IO_ISOMORPHISM_HH
