#include "src/io/isomorphism.hh"

#include <algorithm>
#include <sstream>
#include <vector>

namespace bespoke
{

namespace
{

std::string
describeGate(const Netlist &nl, GateId id)
{
    std::ostringstream os;
    os << cellName(nl.gate(id).type, nl.gate(id).drive) << " #" << id;
    const std::string &name = nl.name(id);
    if (!name.empty())
        os << " ('" << name << "')";
    return os.str();
}

} // namespace

IsoResult
netlistIsomorphic(const Netlist &a, const Netlist &b)
{
    IsoResult res;
    auto fail = [&](const std::string &why) {
        res.isomorphic = false;
        res.why = why;
        return res;
    };

    if (a.size() != b.size())
        return fail("gate counts differ: " + std::to_string(a.size()) +
                    " vs " + std::to_string(b.size()));

    // Port sets must agree by name and direction.
    std::vector<std::pair<std::string, GateId>> pa(a.ports().begin(),
                                                   a.ports().end());
    std::vector<std::pair<std::string, GateId>> pb(b.ports().begin(),
                                                   b.ports().end());
    std::sort(pa.begin(), pa.end());
    std::sort(pb.begin(), pb.end());
    if (pa.size() != pb.size())
        return fail("port counts differ: " + std::to_string(pa.size()) +
                    " vs " + std::to_string(pb.size()));
    for (size_t i = 0; i < pa.size(); i++) {
        if (pa[i].first != pb[i].first)
            return fail("port name mismatch: '" + pa[i].first +
                        "' vs '" + pb[i].first + "'");
        CellType ta = a.gate(pa[i].second).type;
        CellType tb = b.gate(pb[i].second).type;
        if (ta != tb)
            return fail("port '" + pa[i].first +
                        "' changed direction");
    }

    // Compare the canonical sequences; equal sequences give the
    // witness bijection order_a[i] <-> order_b[i].
    std::vector<GateId> oa = a.canonicalOrder();
    std::vector<GateId> ob = b.canonicalOrder();
    std::vector<uint32_t> posa(a.size()), posb(b.size());
    for (size_t i = 0; i < oa.size(); i++)
        posa[oa[i]] = static_cast<uint32_t>(i);
    for (size_t i = 0; i < ob.size(); i++)
        posb[ob[i]] = static_cast<uint32_t>(i);

    for (size_t i = 0; i < oa.size(); i++) {
        const Gate &ga = a.gate(oa[i]);
        const Gate &gb = b.gate(ob[i]);
        std::string where = "canonical slot " + std::to_string(i) +
                            " (" + describeGate(a, oa[i]) + " vs " +
                            describeGate(b, ob[i]) + "): ";
        if (ga.type != gb.type)
            return fail(where + "cell types differ");
        if (ga.drive != gb.drive)
            return fail(where + "drive strengths differ");
        bool pseudo = cellPseudo(ga.type);
        if (!pseudo && ga.module != gb.module)
            return fail(where + "module labels differ (" +
                        moduleName(ga.module) + " vs " +
                        moduleName(gb.module) + ")");
        if (ga.resetValue != gb.resetValue)
            return fail(where + "reset values differ");
        for (int p = 0; p < ga.numInputs(); p++) {
            if (posa[ga.in[p]] != posb[gb.in[p]])
                return fail(where + "pin " + std::to_string(p) +
                            " is wired to different logic");
        }
    }

    // Port bindings must map to the same canonical slots.
    for (size_t i = 0; i < pa.size(); i++) {
        if (posa[pa[i].second] != posb[pb[i].second])
            return fail("port '" + pa[i].first +
                        "' binds to different logic");
    }

    res.isomorphic = true;
    return res;
}

} // namespace bespoke
