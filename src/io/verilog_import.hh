/**
 * @file
 * Structural Verilog importer.
 *
 * Parses the gate-level subset that exportVerilog() emits, plus the
 * common structural idioms of synthesis tool output (Yosys-style):
 *
 *  - one `module` per file, ANSI (`input wire [15:0] a` in the header)
 *    or non-ANSI (names in the header, directions declared in the
 *    body) port declarations;
 *  - `wire` declarations, scalar or `[msb:0]` vectors, with optional
 *    scalar initializer (`wire n5 = in[3];`);
 *  - `assign lhs = rhs;` where both sides are single bits (a scalar
 *    net, one bit of a vector, or a 1-bit constant on the right);
 *  - cell instantiations by library name with named port connections
 *    (`NAND2_X1 u12 (.A(n1), .B(n2), .Y(n3));`), an optional
 *    `#(.RVAL(1'b0))` parameter on sequential cells, and an optional
 *    `(* bespoke_module = "alu" *)` attribute carrying the module
 *    label (defaults to glue; other attributes are skipped);
 *  - escaped identifiers (`\foo[3] `, backslash to the next
 *    whitespace) anywhere a name may appear. `\name ` and `name` are
 *    the same identifier per the standard, and an escaped identifier
 *    never matches a keyword. A scalar escaped net spelled like a bit
 *    of a coexisting vector (`\v[3] ` next to `wire [7:0] v`) is
 *    rejected — the two would alias one net — while the common
 *    Yosys flattening idiom (`wire \cnt[3] ;` with no vector `cnt`)
 *    imports as an ordinary scalar.
 *
 * The clock and reset are implicit in the netlist model: the nets
 * feeding DFF/DFFE `.CLK`/`.RSTN` pins (and any scalar input ports
 * named `clk`/`rst_n`) are recognized as the single global clock and
 * reset, must be scalar input ports, and do not become INPUT
 * pseudo-gates; using them as data is an error.
 *
 * Everything else is a hard error with a line/column diagnostic:
 * unknown cells or pins, arity mismatches (missing, duplicate, or
 * unconnected pins), undriven or multiply-driven nets, undeclared
 * nets, out-of-range bit selects, combinational loops, constants
 * other than 1 bit wide, concatenations, and positional connections.
 */

#ifndef BESPOKE_IO_VERILOG_IMPORT_HH
#define BESPOKE_IO_VERILOG_IMPORT_HH

#include <string>

#include "src/netlist/netlist.hh"

namespace bespoke
{

struct VerilogImportResult
{
    bool ok = false;
    Netlist netlist;
    /** Module name from the `module` header. */
    std::string moduleName;
    /** Diagnostic without position prefix; empty when ok. */
    std::string error;
    /** 1-based error position; 0 when not tied to a location. */
    int line = 0;
    int col = 0;

    /** "file.v:12:5: message" (or just the message at position 0). */
    std::string format(const std::string &filename) const
    {
        if (line == 0)
            return filename + ": " + error;
        return filename + ":" + std::to_string(line) + ":" +
               std::to_string(col) + ": " + error;
    }
};

/** Import one structural Verilog module from `text`. */
VerilogImportResult importVerilog(const std::string &text);

} // namespace bespoke

#endif // BESPOKE_IO_VERILOG_IMPORT_HH
