/**
 * @file
 * Canonical JSON netlist interchange format.
 *
 * The JSON form is an *exact* representation: gate ids are preserved,
 * so `netlistFromJson(netlistToJson(N))` reproduces N bit for bit
 * (same ids, same ports, same debug names). This exactness is what
 * flow checkpointing relies on — analysis artifacts (untoggled-gate
 * sets, toggle counts) are indexed by gate id and must survive a
 * save/load round trip unchanged.
 *
 * Serialization order is deterministic: gates in id order, ports and
 * debug names sorted by name/id, so dumping the same netlist twice
 * yields byte-identical text. The document embeds
 * `Netlist::contentHash()` (which is *renumbering*-invariant, unlike
 * the id-exact JSON) and loading verifies it, so a truncated or
 * hand-edited file is rejected instead of silently corrupting a
 * downstream flow stage.
 *
 * Schema (DESIGN.md section 8 has the full specification):
 * {
 *   "format": "bespoke-netlist", "version": 1,
 *   "content_hash": "<16 hex digits>",
 *   "gates": [[type, drive, module, resetValue, [fanins...]], ...],
 *   "ports": [["name", gateId], ...],
 *   "names": [[gateId, "debug name"], ...]   // non-port names only
 * }
 */

#ifndef BESPOKE_IO_NETLIST_JSON_HH
#define BESPOKE_IO_NETLIST_JSON_HH

#include <string>

#include "src/netlist/netlist.hh"
#include "src/util/json.hh"

namespace bespoke
{

/** Serialize a netlist to its canonical JSON document. */
JsonValue netlistToJson(const Netlist &nl);

/** netlistToJson() dumped as pretty-printed text. */
std::string netlistToJsonText(const Netlist &nl);

/**
 * Rebuild a netlist from its JSON document. Malformed documents
 * (unknown cell/module names, bad arities, dangling fanin ids, a
 * content hash that does not match the rebuilt netlist) fail with
 * `ok = false` and a diagnostic message; nothing is fatal so callers
 * can surface the error with file context.
 */
struct NetlistJsonResult
{
    bool ok = false;
    Netlist netlist;
    std::string error;
};

NetlistJsonResult netlistFromJson(const JsonValue &doc);

/** Parse JSON text, then netlistFromJson(). */
NetlistJsonResult netlistFromJsonText(const std::string &text);

} // namespace bespoke

#endif // BESPOKE_IO_NETLIST_JSON_HH
