#include "src/io/verilog_import.hh"

#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/util/logging.hh"

namespace bespoke
{

namespace
{

/**
 * Internal control flow: the parser and builder throw ImportError and
 * importVerilog() converts it into the result struct. The exception
 * never escapes this translation unit.
 */
struct ImportError
{
    std::string msg;
    int line = 0;
    int col = 0;
};

[[noreturn]] void
failAt(int line, int col, std::string msg)
{
    throw ImportError{std::move(msg), line, col};
}

// ---------------------------------------------------------------- lexer

enum class Tok : uint8_t
{
    Ident,
    Number,
    String,
    Punct,
    End,
};

struct Token
{
    Tok kind = Tok::End;
    std::string text;
    /**
     * True for `\escaped ` identifiers. The backslash is stripped from
     * `text` (the standard makes `\foo ` and `foo` the same
     * identifier) but the flag keeps escaped identifiers from matching
     * keywords: `\module ` is an ordinary name, never a keyword.
     */
    bool escaped = false;
    int line = 1;
    int col = 1;
};

/** Token text as the user wrote it (backslash restored), for errors. */
std::string
shown(const Token &t)
{
    return t.escaped ? "\\" + t.text : t.text;
}

std::vector<Token>
lex(const std::string &text)
{
    std::vector<Token> toks;
    size_t i = 0;
    int line = 1, col = 1;
    auto step = [&](size_t n) {
        for (size_t k = 0; k < n; k++) {
            if (text[i] == '\n') {
                line++;
                col = 1;
            } else {
                col++;
            }
            i++;
        }
    };
    auto isIdentStart = [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
               c == '_';
    };
    auto isIdentChar = [&](char c) {
        return isIdentStart(c) || (c >= '0' && c <= '9') || c == '$';
    };

    while (i < text.size()) {
        char c = text[i];
        if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
            step(1);
            continue;
        }
        if (c == '/' && i + 1 < text.size() && text[i + 1] == '/') {
            while (i < text.size() && text[i] != '\n')
                step(1);
            continue;
        }
        if (c == '/' && i + 1 < text.size() && text[i + 1] == '*') {
            int sl = line, sc = col;
            step(2);
            while (i + 1 < text.size() &&
                   !(text[i] == '*' && text[i + 1] == '/'))
                step(1);
            if (i + 1 >= text.size())
                failAt(sl, sc, "unterminated block comment");
            step(2);
            continue;
        }

        Token t;
        t.line = line;
        t.col = col;

        if (isIdentStart(c)) {
            size_t start = i;
            while (i < text.size() && isIdentChar(text[i]))
                step(1);
            t.kind = Tok::Ident;
            t.text = text.substr(start, i - start);
            toks.push_back(std::move(t));
            continue;
        }
        if (c == '\\') {
            // Escaped identifier: backslash to the next whitespace.
            step(1);
            size_t start = i;
            while (i < text.size() && text[i] != ' ' &&
                   text[i] != '\t' && text[i] != '\r' &&
                   text[i] != '\n')
                step(1);
            if (i == start)
                failAt(t.line, t.col, "empty escaped identifier");
            t.kind = Tok::Ident;
            t.escaped = true;
            t.text = text.substr(start, i - start);
            toks.push_back(std::move(t));
            continue;
        }
        if (c >= '0' && c <= '9') {
            // Decimal integer, optionally a based literal: 1'b0.
            size_t start = i;
            while (i < text.size() &&
                   ((text[i] >= '0' && text[i] <= '9') ||
                    text[i] == '_'))
                step(1);
            if (i < text.size() && text[i] == '\'') {
                step(1);
                if (i < text.size() &&
                    (text[i] == 's' || text[i] == 'S'))
                    step(1);
                if (i >= text.size())
                    failAt(t.line, t.col, "truncated based literal");
                step(1); // base character
                while (i < text.size() &&
                       (isIdentChar(text[i]) ||
                        (text[i] >= '0' && text[i] <= '9')))
                    step(1);
            }
            t.kind = Tok::Number;
            t.text = text.substr(start, i - start);
            toks.push_back(std::move(t));
            continue;
        }
        if (c == '"') {
            step(1);
            std::string s;
            while (i < text.size() && text[i] != '"') {
                if (text[i] == '\\' && i + 1 < text.size()) {
                    step(1);
                    s += text[i];
                    step(1);
                } else {
                    s += text[i];
                    step(1);
                }
            }
            if (i >= text.size())
                failAt(t.line, t.col, "unterminated string");
            step(1);
            t.kind = Tok::String;
            t.text = std::move(s);
            toks.push_back(std::move(t));
            continue;
        }
        // Punctuation; "(*" and "*)" are single attribute tokens.
        if (c == '(' && i + 1 < text.size() && text[i + 1] == '*') {
            t.kind = Tok::Punct;
            t.text = "(*";
            step(2);
            toks.push_back(std::move(t));
            continue;
        }
        if (c == '*' && i + 1 < text.size() && text[i + 1] == ')') {
            t.kind = Tok::Punct;
            t.text = "*)";
            step(2);
            toks.push_back(std::move(t));
            continue;
        }
        static const char punct[] = "()[]{},;:.#=*";
        if (std::string(punct).find(c) != std::string::npos) {
            t.kind = Tok::Punct;
            t.text = std::string(1, c);
            step(1);
            toks.push_back(std::move(t));
            continue;
        }
        failAt(line, col,
               "unexpected character '" + std::string(1, c) + "'");
    }
    Token end;
    end.kind = Tok::End;
    end.text = "<eof>";
    end.line = line;
    end.col = col;
    toks.push_back(std::move(end));
    return toks;
}

// --------------------------------------------------- parsed structures

/** One bit: a scalar net or one slice of a vector; idx -1 = scalar. */
struct BitRef
{
    std::string base;
    int idx = -1;
    int line = 0;
    int col = 0;

    std::string key() const
    {
        return idx < 0 ? base
                       : base + "[" + std::to_string(idx) + "]";
    }
};

/** A pin/assign expression: a bit reference or a 1-bit constant. */
struct Expr
{
    bool isConst = false;
    bool cval = false;
    BitRef bit;
    int line = 0;
    int col = 0;
};

struct PortDecl
{
    std::string base;
    bool isInput = false;
    bool dirKnown = false;
    int width = 0; ///< 0 = scalar
    int line = 0;
    int col = 0;
};

struct Connection
{
    std::string pin;
    Expr expr;
    int line = 0;
    int col = 0;
};

struct Instance
{
    std::string cell;
    std::string name;
    std::string moduleAttr; ///< empty = no bespoke_module attribute
    int moduleAttrLine = 0;
    int moduleAttrCol = 0;
    bool hasRval = false;
    bool rval = false;
    std::vector<Connection> conns;
    int line = 0;
    int col = 0;
};

struct Assign
{
    BitRef lhs;
    Expr rhs;
};

struct WireDecl
{
    int width = 0; ///< 0 = scalar
    int line = 0;
    int col = 0;
};

struct Design
{
    std::string moduleName;
    std::vector<PortDecl> ports;              ///< header order
    std::map<std::string, size_t> portIndex;  ///< base -> ports index
    std::unordered_map<std::string, WireDecl> wires;
    std::vector<Assign> assigns;
    std::vector<Instance> instances;
};

// --------------------------------------------------------------- parser

class Parser
{
  public:
    explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

    Design parse()
    {
        expectKeyword("module");
        design_.moduleName = expect(Tok::Ident, "module name").text;
        if (peekPunct("("))
            parseHeader();
        expectPunct(";");
        parseBody();
        const Token &t = peek();
        if (t.kind != Tok::End)
            failAt(t.line, t.col,
                   "unexpected content after endmodule (one module "
                   "per file)");
        return std::move(design_);
    }

  private:
    const Token &peek() const { return toks_[pos_]; }
    const Token &get() { return toks_[pos_++]; }

    bool peekPunct(const std::string &p) const
    {
        return peek().kind == Tok::Punct && peek().text == p;
    }
    bool peekKeyword(const std::string &k) const
    {
        return peek().kind == Tok::Ident && !peek().escaped &&
               peek().text == k;
    }
    bool acceptPunct(const std::string &p)
    {
        if (!peekPunct(p))
            return false;
        pos_++;
        return true;
    }

    const Token &expect(Tok kind, const std::string &what)
    {
        const Token &t = get();
        if (t.kind != kind)
            failAt(t.line, t.col,
                   "expected " + what + ", got '" + shown(t) + "'");
        return t;
    }
    void expectPunct(const std::string &p)
    {
        const Token &t = get();
        if (t.kind != Tok::Punct || t.text != p)
            failAt(t.line, t.col,
                   "expected '" + p + "', got '" + shown(t) + "'");
    }
    void expectKeyword(const std::string &k)
    {
        const Token &t = get();
        if (t.kind != Tok::Ident || t.escaped || t.text != k)
            failAt(t.line, t.col,
                   "expected '" + k + "', got '" + shown(t) + "'");
    }

    /** stoi with the failure turned into a diagnostic. */
    int intTok(const Token &t)
    {
        try {
            return std::stoi(t.text);
        } catch (...) {
            failAt(t.line, t.col,
                   "number '" + t.text + "' out of range");
        }
    }

    /** Evaluate a 1-bit constant literal: 1'b0, 1'b1, 0, 1. */
    bool constBit(const Token &t)
    {
        const std::string &s = t.text;
        size_t q = s.find('\'');
        std::string value = s;
        if (q != std::string::npos) {
            std::string width = s.substr(0, q);
            if (width != "1")
                failAt(t.line, t.col,
                       "only 1-bit constants are supported, got '" +
                           s + "'");
            size_t v = q + 1;
            if (v < s.size() && (s[v] == 's' || s[v] == 'S'))
                v++;
            v++; // base character
            value = s.substr(v);
        }
        if (value == "0")
            return false;
        if (value == "1")
            return true;
        failAt(t.line, t.col,
               "unsupported constant '" + s + "' (only 0 and 1)");
    }

    /** `[msb:0]` range; returns width = msb + 1. */
    int parseRange()
    {
        expectPunct("[");
        const Token &msb = expect(Tok::Number, "range msb");
        expectPunct(":");
        const Token &lsb = expect(Tok::Number, "range lsb");
        expectPunct("]");
        if (lsb.text != "0")
            failAt(lsb.line, lsb.col,
                   "unsupported range (only [msb:0])");
        int m = intTok(msb);
        if (m < 0)
            failAt(msb.line, msb.col, "bad range msb");
        return m + 1;
    }

    Expr parseExpr()
    {
        Expr e;
        const Token &t = peek();
        e.line = t.line;
        e.col = t.col;
        if (t.kind == Tok::Number) {
            get();
            e.isConst = true;
            e.cval = constBit(t);
            return e;
        }
        if (peekPunct("{"))
            failAt(t.line, t.col, "concatenations are not supported");
        const Token &id = expect(Tok::Ident, "net name");
        e.bit.base = id.text;
        e.bit.line = id.line;
        e.bit.col = id.col;
        if (acceptPunct("[")) {
            const Token &n = expect(Tok::Number, "bit index");
            e.bit.idx = intTok(n);
            if (acceptPunct(":"))
                failAt(n.line, n.col,
                       "part selects are not supported");
            expectPunct("]");
        }
        return e;
    }

    BitRef parseLhs()
    {
        Expr e = parseExpr();
        if (e.isConst)
            failAt(e.line, e.col, "constant on the left of '='");
        return e.bit;
    }

    void parseHeader()
    {
        expectPunct("(");
        if (acceptPunct(")"))
            return;
        bool haveDir = false;
        bool isInput = false;
        int width = 0;
        do {
            const Token &t = peek();
            if (peekKeyword("input") || peekKeyword("output")) {
                isInput = peekKeyword("input");
                haveDir = true;
                width = 0;
                get();
                if (peekKeyword("wire") || peekKeyword("reg"))
                    get();
                if (peekPunct("["))
                    width = parseRange();
            } else if (peekKeyword("inout")) {
                failAt(t.line, t.col, "inout ports are not supported");
            }
            const Token &name = expect(Tok::Ident, "port name");
            PortDecl p;
            p.base = name.text;
            p.isInput = isInput;
            p.dirKnown = haveDir;
            p.width = width;
            p.line = name.line;
            p.col = name.col;
            addPort(p);
        } while (acceptPunct(","));
        expectPunct(")");
    }

    void addPort(const PortDecl &p)
    {
        if (design_.portIndex.count(p.base))
            failAt(p.line, p.col, "duplicate port '" + p.base + "'");
        design_.portIndex[p.base] = design_.ports.size();
        design_.ports.push_back(p);
    }

    /** Body `input`/`output` declaration (non-ANSI style). */
    void parseDirDecl()
    {
        const Token &dir = get();
        bool isInput = dir.text == "input";
        if (peekKeyword("wire") || peekKeyword("reg"))
            get();
        int width = 0;
        if (peekPunct("["))
            width = parseRange();
        do {
            const Token &name = expect(Tok::Ident, "port name");
            auto it = design_.portIndex.find(name.text);
            if (it == design_.portIndex.end())
                failAt(name.line, name.col,
                       "'" + name.text +
                           "' is not in the module port list");
            PortDecl &p = design_.ports[it->second];
            if (p.dirKnown)
                failAt(name.line, name.col,
                       "port '" + name.text + "' declared twice");
            p.isInput = isInput;
            p.dirKnown = true;
            p.width = width;
        } while (acceptPunct(","));
        expectPunct(";");
    }

    void parseWireDecl()
    {
        get(); // "wire"
        int width = 0;
        if (peekPunct("["))
            width = parseRange();
        do {
            const Token &name = expect(Tok::Ident, "wire name");
            if (design_.wires.count(name.text) ||
                design_.portIndex.count(name.text))
                failAt(name.line, name.col,
                       "'" + name.text + "' is already declared");
            design_.wires[name.text] = {width, name.line, name.col};
            if (acceptPunct("=")) {
                if (width != 0)
                    failAt(name.line, name.col,
                           "initializer on a vector wire");
                Assign a;
                a.lhs.base = name.text;
                a.lhs.line = name.line;
                a.lhs.col = name.col;
                a.rhs = parseExpr();
                design_.assigns.push_back(std::move(a));
            }
        } while (acceptPunct(","));
        expectPunct(";");
    }

    void parseAssign()
    {
        get(); // "assign"
        Assign a;
        a.lhs = parseLhs();
        expectPunct("=");
        a.rhs = parseExpr();
        expectPunct(";");
        design_.assigns.push_back(std::move(a));
    }

    /** `(* name = value, ... *)`; only bespoke_module is retained. */
    void parseAttributes()
    {
        get(); // "(*"
        do {
            const Token &name = expect(Tok::Ident, "attribute name");
            std::string value;
            bool isString = false;
            if (acceptPunct("=")) {
                const Token &v = get();
                if (v.kind == Tok::String) {
                    value = v.text;
                    isString = true;
                } else if (v.kind == Tok::Number ||
                           v.kind == Tok::Ident) {
                    value = v.text;
                } else {
                    failAt(v.line, v.col, "bad attribute value");
                }
            }
            if (name.text == "bespoke_module") {
                if (!isString)
                    failAt(name.line, name.col,
                           "bespoke_module expects a string value");
                pendingModule_ = value;
                pendingModuleLine_ = name.line;
                pendingModuleCol_ = name.col;
            }
            // Other attributes (Yosys src/keep/...) are skipped.
        } while (acceptPunct(","));
        expectPunct("*)");
    }

    void parseInstance()
    {
        Instance inst;
        const Token &cell = get();
        inst.cell = cell.text;
        inst.line = cell.line;
        inst.col = cell.col;
        inst.moduleAttr = std::move(pendingModule_);
        inst.moduleAttrLine = pendingModuleLine_;
        inst.moduleAttrCol = pendingModuleCol_;
        pendingModule_.clear();

        if (acceptPunct("#")) {
            expectPunct("(");
            do {
                expectPunct(".");
                const Token &pname =
                    expect(Tok::Ident, "parameter name");
                expectPunct("(");
                const Token &pval =
                    expect(Tok::Number, "parameter value");
                expectPunct(")");
                if (pname.text != "RVAL")
                    failAt(pname.line, pname.col,
                           "unknown parameter '" + pname.text + "'");
                inst.hasRval = true;
                inst.rval = constBit(pval);
            } while (acceptPunct(","));
            expectPunct(")");
        }

        inst.name = expect(Tok::Ident, "instance name").text;
        expectPunct("(");
        if (!acceptPunct(")")) {
            do {
                const Token &dot = peek();
                if (dot.kind == Tok::End)
                    failAt(dot.line, dot.col,
                           "unexpected end of file");
                if (!acceptPunct("."))
                    failAt(dot.line, dot.col,
                           "positional connections are not supported "
                           "(use .PIN(net))");
                const Token &pin = expect(Tok::Ident, "pin name");
                expectPunct("(");
                if (peekPunct(")"))
                    failAt(pin.line, pin.col,
                           "pin '" + pin.text + "' of '" + inst.name +
                               "' is unconnected");
                Connection c;
                c.pin = pin.text;
                c.line = pin.line;
                c.col = pin.col;
                c.expr = parseExpr();
                expectPunct(")");
                inst.conns.push_back(std::move(c));
            } while (acceptPunct(","));
            expectPunct(")");
        }
        expectPunct(";");
        design_.instances.push_back(std::move(inst));
    }

    void parseBody()
    {
        for (;;) {
            const Token &t = peek();
            if (t.kind == Tok::End)
                failAt(t.line, t.col, "missing endmodule");
            if (peekKeyword("endmodule")) {
                get();
                return;
            }
            if (peekPunct(";")) {
                get();
                continue;
            }
            if (peekPunct("(*")) {
                parseAttributes();
                continue;
            }
            if (peekKeyword("input") || peekKeyword("output")) {
                parseDirDecl();
                continue;
            }
            if (peekKeyword("inout"))
                failAt(t.line, t.col, "inout ports are not supported");
            if (peekKeyword("wire")) {
                parseWireDecl();
                continue;
            }
            if (peekKeyword("assign")) {
                parseAssign();
                continue;
            }
            if (peekKeyword("reg") || peekKeyword("always") ||
                peekKeyword("initial") || peekKeyword("parameter") ||
                peekKeyword("function") || peekKeyword("generate"))
                failAt(t.line, t.col,
                       "behavioral construct '" + t.text +
                           "' (structural netlists only)");
            if (t.kind == Tok::Ident) {
                parseInstance();
                continue;
            }
            failAt(t.line, t.col, "unexpected '" + t.text + "'");
        }
    }

    std::vector<Token> toks_;
    size_t pos_ = 0;
    Design design_;
    std::string pendingModule_;
    int pendingModuleLine_ = 0;
    int pendingModuleCol_ = 0;
};

// -------------------------------------------------------------- builder

/** Pin interface of a library cell as it appears in Verilog. */
struct PinInterface
{
    std::vector<const char *> inputs; ///< in pin order
    const char *output;
    bool clocked;
};

PinInterface
pinInterface(CellType type)
{
    switch (type) {
      case CellType::TIE0:
      case CellType::TIE1:
        return {{}, "Y", false};
      case CellType::MUX2:
        return {{"A", "B", "S"}, "Y", false};
      case CellType::DFF:
        return {{"D"}, "Q", true};
      case CellType::DFFE:
        return {{"D", "EN"}, "Q", true};
      default: {
        PinInterface pi{{"A", "B", "C"}, "Y", false};
        pi.inputs.resize(cellNumInputs(type));
        return pi;
      }
    }
}

class Builder
{
  public:
    explicit Builder(Design design) : d_(std::move(design)) {}

    Netlist build()
    {
        checkDecls();
        findClockNets();
        createInputs();
        createInstances();
        applyAssigns();
        resolveFanins();
        createOutputs();

        GateId loop_gate = kNoGate;
        if (nl_.hasCombLoop(&loop_gate))
            failAt(0, 0,
                   "combinational loop through cell '" +
                       nl_.name(loop_gate) + "'");
        return std::move(nl_);
    }

  private:
    struct Driver
    {
        enum Kind : uint8_t
        {
            FromGate,
            FromAlias,
            FromConst,
        };
        Kind kind = FromGate;
        GateId gate = kNoGate;
        std::string alias;
        bool cval = false;
        int line = 0; ///< where this driver was declared
    };

    void checkDecls()
    {
        for (const PortDecl &p : d_.ports) {
            if (!p.dirKnown)
                failAt(p.line, p.col,
                       "port '" + p.base +
                           "' has no input/output declaration");
            checkEscapedCollision(p.base, p.line, p.col);
        }
        for (const auto &[name, w] : d_.wires)
            checkEscapedCollision(name, w.line, w.col);
    }

    /**
     * Nets are keyed by name, with bit b of vector v keyed "v[b]" — the
     * one spelling an escaped identifier can also take (Yosys emits
     * `wire \cnt[3] ;` for flattened single bits). A scalar `\v[b] `
     * next to a vector `v` wide enough to contain bit b would silently
     * share a driver slot, so that pairing is rejected here; an escaped
     * `\cnt[3] ` with no such vector stays an ordinary scalar net.
     * Order-independent (runs after the whole module is parsed).
     */
    void checkEscapedCollision(const std::string &name, int line,
                               int col)
    {
        size_t open = name.find('[');
        if (open == std::string::npos || open == 0 ||
            name.back() != ']')
            return;
        std::string idx = name.substr(open + 1,
                                      name.size() - open - 2);
        if (idx.empty() || idx.size() > 9 ||
            idx.find_first_not_of("0123456789") != std::string::npos)
            return;
        std::string base = name.substr(0, open);
        int width = declaredWidth(base);
        if (width > 0 && std::stoi(idx) < width)
            failAt(line, col,
                   "escaped net '\\" + name + "' collides with bit " +
                       idx + " of vector '" + base + "'");
    }

    /** Declared width of a net base; -1 when undeclared. */
    int declaredWidth(const std::string &base) const
    {
        auto pit = d_.portIndex.find(base);
        if (pit != d_.portIndex.end())
            return d_.ports[pit->second].width;
        auto wit = d_.wires.find(base);
        if (wit != d_.wires.end())
            return wit->second.width;
        return -1;
    }

    /** Validate a bit reference against the declarations. */
    void checkBit(const BitRef &b) const
    {
        int width = declaredWidth(b.base);
        if (width < 0)
            failAt(b.line, b.col,
                   "'" + b.base + "' is not declared");
        if (width == 0 && b.idx >= 0)
            failAt(b.line, b.col,
                   "bit select on scalar net '" + b.base + "'");
        if (width > 0 && b.idx < 0)
            failAt(b.line, b.col,
                   "vector net '" + b.base + "' used without a bit "
                   "select");
        if (b.idx >= width && width > 0)
            failAt(b.line, b.col,
                   "bit " + std::to_string(b.idx) + " out of range "
                   "for '" + b.base + "[" + std::to_string(width - 1) +
                   ":0]'");
    }

    bool isScalarInputPort(const std::string &base) const
    {
        auto it = d_.portIndex.find(base);
        return it != d_.portIndex.end() &&
               d_.ports[it->second].isInput &&
               d_.ports[it->second].width == 0;
    }

    /**
     * Identify the global clock/reset nets: whatever feeds the
     * .CLK/.RSTN pins, plus scalar input ports named clk/rst_n (so a
     * flopless design still round-trips; the exporter always emits
     * them). These never become INPUT gates.
     */
    void findClockNets()
    {
        if (isScalarInputPort("clk"))
            clkNet_ = "clk";
        if (isScalarInputPort("rst_n"))
            rstNet_ = "rst_n";
        for (const Instance &inst : d_.instances) {
            for (const Connection &c : inst.conns) {
                if (c.pin != "CLK" && c.pin != "RSTN")
                    continue;
                if (c.expr.isConst)
                    failAt(c.line, c.col,
                           "pin '" + c.pin +
                               "' tied to a constant");
                checkBit(c.expr.bit);
                if (!isScalarInputPort(c.expr.bit.base))
                    failAt(c.expr.bit.line, c.expr.bit.col,
                           "pin '" + c.pin + "' must connect to a "
                           "scalar input port");
                std::string &net =
                    c.pin == "CLK" ? clkNet_ : rstNet_;
                if (net.empty()) {
                    net = c.expr.bit.base;
                } else if (net != c.expr.bit.base) {
                    failAt(c.expr.bit.line, c.expr.bit.col,
                           "second " +
                               std::string(c.pin == "CLK"
                                               ? "clock"
                                               : "reset") +
                               " net '" + c.expr.bit.base +
                               "' (already using '" + net +
                               "'; the netlist model has a single "
                               "global clock)");
                }
            }
        }
    }

    bool isClockNet(const std::string &base) const
    {
        return base == clkNet_ || base == rstNet_;
    }

    void setDriver(const BitRef &b, Driver drv)
    {
        checkBit(b);
        if (isClockNet(b.base))
            failAt(b.line, b.col,
                   "clock/reset net '" + b.base +
                       "' cannot be driven");
        std::string key = b.key();
        auto it = drivers_.find(key);
        if (it != drivers_.end())
            failAt(b.line, b.col,
                   "net '" + key + "' is multiply driven (first "
                   "driver at line " +
                       std::to_string(it->second.line) + ")");
        drivers_[key] = std::move(drv);
    }

    void createInputs()
    {
        for (const PortDecl &p : d_.ports) {
            if (!p.isInput || isClockNet(p.base))
                continue;
            for (int b = 0; b < std::max(p.width, 1); b++) {
                std::string name =
                    p.width > 0
                        ? p.base + "[" + std::to_string(b) + "]"
                        : p.base;
                GateId id = nl_.addInput(name);
                Driver drv;
                drv.kind = Driver::FromGate;
                drv.gate = id;
                drv.line = p.line;
                drivers_[name] = std::move(drv);
            }
        }
    }

    void createInstances()
    {
        for (const Instance &inst : d_.instances) {
            CellType type;
            Drive drive;
            if (!cellByName(inst.cell, &type, &drive))
                failAt(inst.line, inst.col,
                       "unknown cell '" + inst.cell + "'");
            if (cellPseudo(type))
                failAt(inst.line, inst.col,
                       "'" + inst.cell + "' is not instantiable");

            Module module = Module::Glue;
            if (!inst.moduleAttr.empty() &&
                !moduleByName(inst.moduleAttr, &module))
                failAt(inst.moduleAttrLine, inst.moduleAttrCol,
                       "unknown module label '" + inst.moduleAttr +
                           "'");

            bool seq = cellSequential(type);
            if (inst.hasRval && !seq)
                failAt(inst.line, inst.col,
                       "RVAL parameter on combinational cell '" +
                           inst.cell + "'");

            PinInterface pi = pinInterface(type);
            int nin = static_cast<int>(pi.inputs.size());

            // Create the gate with each required pin pointing at
            // itself; resolveFanins() rewires every one (a missing
            // connection is an error below, so none survive).
            GateId self = static_cast<GateId>(nl_.size());
            GateId ph[3] = {kNoGate, kNoGate, kNoGate};
            for (int p = 0; p < nin; p++)
                ph[p] = self;
            GateId id = nl_.addGate(type, module, ph[0], ph[1], ph[2]);
            nl_.gateRef(id).drive = drive;
            nl_.setName(id, inst.name);
            if (inst.hasRval)
                nl_.setResetValue(id, inst.rval);

            std::vector<bool> pinSeen(nin, false);
            bool outSeen = false, clkSeen = false, rstSeen = false;
            for (const Connection &c : inst.conns) {
                if (c.pin == "CLK" || c.pin == "RSTN") {
                    bool &flag = c.pin == "CLK" ? clkSeen : rstSeen;
                    if (!pi.clocked)
                        failAt(c.line, c.col,
                               "pin '" + c.pin +
                                   "' on combinational cell '" +
                                   inst.cell + "'");
                    if (flag)
                        failAt(c.line, c.col,
                               "pin '" + c.pin + "' connected twice");
                    flag = true;
                    continue; // net checked by findClockNets()
                }
                if (c.pin == pi.output) {
                    if (outSeen)
                        failAt(c.line, c.col,
                               "pin '" + c.pin + "' connected twice");
                    outSeen = true;
                    if (c.expr.isConst)
                        failAt(c.line, c.col,
                               "output pin '" + c.pin +
                                   "' tied to a constant");
                    Driver drv;
                    drv.kind = Driver::FromGate;
                    drv.gate = id;
                    drv.line = c.line;
                    setDriver(c.expr.bit, std::move(drv));
                    continue;
                }
                int pin = -1;
                for (int p = 0; p < nin; p++) {
                    if (c.pin == pi.inputs[p])
                        pin = p;
                }
                if (pin < 0)
                    failAt(c.line, c.col,
                           "cell '" + inst.cell + "' has no pin '" +
                               c.pin + "'");
                if (pinSeen[pin])
                    failAt(c.line, c.col,
                           "pin '" + c.pin + "' connected twice");
                pinSeen[pin] = true;
                if (!c.expr.isConst) {
                    checkBit(c.expr.bit);
                    if (isClockNet(c.expr.bit.base))
                        failAt(c.expr.bit.line, c.expr.bit.col,
                               "clock/reset net '" +
                                   c.expr.bit.base +
                                   "' used as data");
                }
                fanins_.push_back({id, pin, c.expr});
            }

            for (int p = 0; p < nin; p++) {
                if (!pinSeen[p])
                    failAt(inst.line, inst.col,
                           "cell '" + inst.cell + "' instance '" +
                               inst.name + "': pin '" +
                               pi.inputs[p] + "' is not connected");
            }
            if (!outSeen)
                failAt(inst.line, inst.col,
                       "instance '" + inst.name + "': output pin '" +
                           std::string(pi.output) +
                           "' is not connected");
            if (pi.clocked && !clkSeen)
                failAt(inst.line, inst.col,
                       "instance '" + inst.name +
                           "': pin 'CLK' is not connected");
            if (pi.clocked && !rstSeen)
                failAt(inst.line, inst.col,
                       "instance '" + inst.name +
                           "': pin 'RSTN' is not connected");
        }
    }

    void applyAssigns()
    {
        for (const Assign &a : d_.assigns) {
            Driver drv;
            drv.line = a.lhs.line;
            if (a.rhs.isConst) {
                drv.kind = Driver::FromConst;
                drv.cval = a.rhs.cval;
            } else {
                checkBit(a.rhs.bit);
                if (isClockNet(a.rhs.bit.base))
                    failAt(a.rhs.bit.line, a.rhs.bit.col,
                           "clock/reset net '" + a.rhs.bit.base +
                               "' used as data");
                drv.kind = Driver::FromAlias;
                drv.alias = a.rhs.bit.key();
            }
            setDriver(a.lhs, std::move(drv));
        }
    }

    /**
     * Resolve a net to its driving gate, following assign/alias
     * chains; rewrites the chain to FromGate afterwards so long
     * chains resolve once.
     */
    GateId resolveKey(const std::string &key, int line, int col)
    {
        std::vector<std::string> chain;
        std::string cur = key;
        for (;;) {
            auto it = drivers_.find(cur);
            if (it == drivers_.end())
                failAt(line, col,
                       "net '" + cur + "' is undriven" +
                           (cur == key ? ""
                                       : " (reached through '" + key +
                                             "')"));
            Driver &drv = it->second;
            if (drv.kind == Driver::FromGate)
                return compress(chain, drv.gate);
            if (drv.kind == Driver::FromConst)
                return compress(chain, nl_.tie(drv.cval));
            for (const std::string &seen : chain) {
                if (seen == cur)
                    failAt(line, col,
                           "assignment cycle through net '" + cur +
                               "'");
            }
            chain.push_back(cur);
            cur = drv.alias;
        }
    }

    GateId compress(const std::vector<std::string> &chain, GateId id)
    {
        for (const std::string &key : chain) {
            Driver &drv = drivers_[key];
            drv.kind = Driver::FromGate;
            drv.gate = id;
        }
        return id;
    }

    void resolveFanins()
    {
        for (const PendingFanin &f : fanins_) {
            GateId src =
                f.expr.isConst
                    ? nl_.tie(f.expr.cval)
                    : resolveKey(f.expr.bit.key(), f.expr.bit.line,
                                 f.expr.bit.col);
            nl_.setFanin(f.gate, f.pin, src);
        }
    }

    void createOutputs()
    {
        for (const PortDecl &p : d_.ports) {
            if (p.isInput)
                continue;
            for (int b = 0; b < std::max(p.width, 1); b++) {
                std::string name =
                    p.width > 0
                        ? p.base + "[" + std::to_string(b) + "]"
                        : p.base;
                GateId src = resolveKey(name, p.line, p.col);
                nl_.addOutput(name, src);
            }
        }
    }

    struct PendingFanin
    {
        GateId gate;
        int pin;
        Expr expr;
    };

    Design d_;
    Netlist nl_;
    std::unordered_map<std::string, Driver> drivers_;
    std::vector<PendingFanin> fanins_;
    std::string clkNet_;
    std::string rstNet_;
};

} // namespace

VerilogImportResult
importVerilog(const std::string &text)
{
    VerilogImportResult res;
    try {
        Parser parser(lex(text));
        Design design = parser.parse();
        res.moduleName = design.moduleName;
        Builder builder(std::move(design));
        res.netlist = builder.build();
        res.ok = true;
    } catch (const ImportError &e) {
        res.ok = false;
        res.error = e.msg;
        res.line = e.line;
        res.col = e.col;
    }
    return res;
}

} // namespace bespoke
