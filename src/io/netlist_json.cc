#include "src/io/netlist_json.hh"

#include <algorithm>
#include <cstdio>

#include "src/util/logging.hh"

namespace bespoke
{

namespace
{

std::string
hashHex(uint64_t h)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

const char *kDriveNames[3] = {"X1", "X2", "X4"};

} // namespace

JsonValue
netlistToJson(const Netlist &nl)
{
    JsonValue doc = JsonValue::object();
    doc.set("format", JsonValue::str("bespoke-netlist"));
    doc.set("version", JsonValue::number(1));
    doc.set("content_hash", JsonValue::str(hashHex(nl.contentHash())));

    JsonValue gates = JsonValue::array();
    for (GateId i = 0; i < nl.size(); i++) {
        const Gate &g = nl.gate(i);
        JsonValue jg = JsonValue::array();
        jg.push(JsonValue::str(cellParams(g.type).name));
        jg.push(JsonValue::str(kDriveNames[static_cast<int>(g.drive)]));
        jg.push(JsonValue::str(moduleName(g.module)));
        jg.push(JsonValue::number(g.resetValue ? 1 : 0));
        JsonValue fanins = JsonValue::array();
        for (int p = 0; p < g.numInputs(); p++)
            fanins.push(JsonValue::number(g.in[p]));
        jg.push(std::move(fanins));
        gates.push(std::move(jg));
    }
    doc.set("gates", std::move(gates));

    std::vector<std::pair<std::string, GateId>> ports(nl.ports().begin(),
                                                      nl.ports().end());
    std::sort(ports.begin(), ports.end());
    JsonValue jports = JsonValue::array();
    for (const auto &[name, id] : ports) {
        JsonValue jp = JsonValue::array();
        jp.push(JsonValue::str(name));
        jp.push(JsonValue::number(id));
        jports.push(std::move(jp));
    }
    doc.set("ports", std::move(jports));

    // Debug names of non-port gates (port names live in "ports").
    std::vector<std::pair<GateId, std::string>> names;
    for (const auto &[id, name] : nl.gateNames()) {
        if (!nl.hasPort(name) || nl.port(name) != id)
            names.emplace_back(id, name);
    }
    std::sort(names.begin(), names.end());
    JsonValue jnames = JsonValue::array();
    for (const auto &[id, name] : names) {
        JsonValue jn = JsonValue::array();
        jn.push(JsonValue::number(id));
        jn.push(JsonValue::str(name));
        jnames.push(std::move(jn));
    }
    doc.set("names", std::move(jnames));

    // Datapath instance side-table (omitted when empty so documents
    // without instances stay byte-identical to format version 1 output).
    // Raw gate ids are valid here because the loader is id-exact.
    if (!nl.instances().empty()) {
        JsonValue jinsts = JsonValue::array();
        for (const DatapathInstance &inst : nl.instances()) {
            JsonValue ji = JsonValue::array();
            ji.push(JsonValue::str(instanceKindName(inst.kind)));
            ji.push(JsonValue::str(moduleName(inst.module)));
            ji.push(JsonValue::number(inst.variant));
            auto ids = [](const std::vector<GateId> &v) {
                JsonValue ja = JsonValue::array();
                for (GateId id : v)
                    ja.push(JsonValue::number(
                        id == kNoGate ? -1.0 : static_cast<double>(id)));
                return ja;
            };
            JsonValue jshape = JsonValue::array();
            for (uint32_t s : inst.shape)
                jshape.push(JsonValue::number(s));
            ji.push(std::move(jshape));
            ji.push(ids(inst.inputs));
            ji.push(ids(inst.outputs));
            jinsts.push(std::move(ji));
        }
        doc.set("instances", std::move(jinsts));
    }
    return doc;
}

std::string
netlistToJsonText(const Netlist &nl)
{
    return netlistToJson(nl).dump(1);
}

NetlistJsonResult
netlistFromJson(const JsonValue &doc)
{
    NetlistJsonResult res;
    auto fail = [&](const std::string &msg) -> NetlistJsonResult & {
        res.ok = false;
        res.error = msg;
        return res;
    };

    if (!doc.isObject())
        return fail("netlist JSON: top level is not an object");
    const JsonValue *fmt = doc.find("format");
    if (!fmt || !fmt->isString() || fmt->asString() != "bespoke-netlist")
        return fail("netlist JSON: missing format \"bespoke-netlist\"");
    const JsonValue *ver = doc.find("version");
    if (!ver || !ver->isNumber() || ver->asNumber() != 1)
        return fail("netlist JSON: unsupported version");

    const JsonValue *gates = doc.find("gates");
    if (!gates || !gates->isArray())
        return fail("netlist JSON: missing \"gates\" array");
    size_t n = gates->items().size();

    for (size_t i = 0; i < n; i++) {
        const JsonValue &jg = gates->items()[i];
        std::string at = "gate " + std::to_string(i) + ": ";
        if (!jg.isArray() || jg.items().size() != 5)
            return fail(at + "expected [type, drive, module, rv, fanins]");
        const auto &f = jg.items();
        if (!f[0].isString() || !f[1].isString() || !f[2].isString() ||
            !f[3].isNumber() || !f[4].isArray())
            return fail(at + "malformed fields");

        CellType type;
        Drive drive;
        std::string cname = f[0].asString();
        std::string dname = f[1].asString();
        // The JSON format keeps type and drive separate; reassemble
        // the library name for the shared reverse lookup.
        std::string full = cname;
        if (cname != "INPUT" && cname != "OUTPUT" && cname != "TIE0" &&
            cname != "TIE1")
            full += "_" + dname;
        if (!cellByName(full, &type, &drive))
            return fail(at + "unknown cell '" + cname + "' drive '" +
                        dname + "'");
        if (cname == "INPUT" || cname == "OUTPUT" || cname == "TIE0" ||
            cname == "TIE1") {
            if (dname != "X1")
                return fail(at + "cell '" + cname +
                            "' cannot carry drive '" + dname + "'");
        }

        Module module;
        if (!moduleByName(f[2].asString(), &module))
            return fail(at + "unknown module '" + f[2].asString() + "'");

        double rv = f[3].asNumber();
        if (rv != 0 && rv != 1)
            return fail(at + "reset value must be 0 or 1");
        if (rv == 1 && !cellSequential(type))
            return fail(at + "reset value on non-sequential cell");

        const auto &fanins = f[4].items();
        int want = cellNumInputs(type);
        if (static_cast<int>(fanins.size()) != want)
            return fail(at + "cell '" + full + "' takes " +
                        std::to_string(want) + " fanins, got " +
                        std::to_string(fanins.size()));
        GateId in[3] = {kNoGate, kNoGate, kNoGate};
        for (int p = 0; p < want; p++) {
            if (!fanins[p].isNumber())
                return fail(at + "fanin is not a gate id");
            double v = fanins[p].asNumber();
            if (v < 0 || v >= static_cast<double>(n) ||
                v != static_cast<double>(static_cast<GateId>(v)))
                return fail(at + "fanin id " + std::to_string(v) +
                            " out of range");
            in[p] = static_cast<GateId>(v);
        }

        GateId id = res.netlist.addGate(type, module, in[0], in[1], in[2]);
        bespoke_assert(id == i);
        res.netlist.gateRef(id).drive = drive;
        if (rv == 1)
            res.netlist.setResetValue(id, true);
    }

    const JsonValue *ports = doc.find("ports");
    if (!ports || !ports->isArray())
        return fail("netlist JSON: missing \"ports\" array");
    for (const JsonValue &jp : ports->items()) {
        if (!jp.isArray() || jp.items().size() != 2 ||
            !jp.items()[0].isString() || !jp.items()[1].isNumber())
            return fail("netlist JSON: malformed port entry");
        const std::string &name = jp.items()[0].asString();
        double v = jp.items()[1].asNumber();
        if (v < 0 || v >= static_cast<double>(n))
            return fail("port '" + name + "': gate id out of range");
        GateId id = static_cast<GateId>(v);
        CellType t = res.netlist.gate(id).type;
        if (!cellPseudo(t))
            return fail("port '" + name +
                        "' does not name an INPUT/OUTPUT gate");
        if (res.netlist.hasPort(name))
            return fail("duplicate port '" + name + "'");
        res.netlist.registerPort(name, id);
    }
    for (GateId i = 0; i < res.netlist.size(); i++) {
        if (cellPseudo(res.netlist.gate(i).type) &&
            res.netlist.name(i).empty())
            return fail("gate " + std::to_string(i) +
                        " is INPUT/OUTPUT but has no port entry");
    }

    if (const JsonValue *names = doc.find("names")) {
        if (!names->isArray())
            return fail("netlist JSON: \"names\" is not an array");
        for (const JsonValue &jn : names->items()) {
            if (!jn.isArray() || jn.items().size() != 2 ||
                !jn.items()[0].isNumber() || !jn.items()[1].isString())
                return fail("netlist JSON: malformed name entry");
            double v = jn.items()[0].asNumber();
            if (v < 0 || v >= static_cast<double>(n))
                return fail("name entry: gate id out of range");
            res.netlist.setName(static_cast<GateId>(v),
                                jn.items()[1].asString());
        }
    }

    if (const JsonValue *insts = doc.find("instances")) {
        if (!insts->isArray())
            return fail("netlist JSON: \"instances\" is not an array");
        for (size_t k = 0; k < insts->items().size(); k++) {
            const JsonValue &ji = insts->items()[k];
            std::string at = "instance " + std::to_string(k) + ": ";
            if (!ji.isArray() || ji.items().size() != 6)
                return fail(at + "expected [kind, module, variant, "
                                 "shape, inputs, outputs]");
            const auto &f = ji.items();
            if (!f[0].isString() || !f[1].isString() ||
                !f[2].isNumber() || !f[3].isArray() || !f[4].isArray() ||
                !f[5].isArray())
                return fail(at + "malformed fields");
            DatapathInstance inst;
            if (!instanceKindByName(f[0].asString(), &inst.kind))
                return fail(at + "unknown kind '" + f[0].asString() +
                            "'");
            if (!moduleByName(f[1].asString(), &inst.module))
                return fail(at + "unknown module '" + f[1].asString() +
                            "'");
            double var = f[2].asNumber();
            if (var < 0 || var > 255 ||
                var != static_cast<double>(static_cast<uint8_t>(var)))
                return fail(at + "variant out of range");
            inst.variant = static_cast<uint8_t>(var);
            for (const JsonValue &js : f[3].items()) {
                if (!js.isNumber() || js.asNumber() < 0)
                    return fail(at + "malformed shape entry");
                inst.shape.push_back(
                    static_cast<uint32_t>(js.asNumber()));
            }
            auto readIds = [&](const JsonValue &ja,
                               std::vector<GateId> *out) {
                for (const JsonValue &je : ja.items()) {
                    if (!je.isNumber())
                        return false;
                    double v = je.asNumber();
                    if (v == -1) {
                        out->push_back(kNoGate);
                        continue;
                    }
                    if (v < 0 || v >= static_cast<double>(n) ||
                        v != static_cast<double>(static_cast<GateId>(v)))
                        return false;
                    out->push_back(static_cast<GateId>(v));
                }
                return true;
            };
            if (!readIds(f[4], &inst.inputs))
                return fail(at + "bad input gate id");
            if (!readIds(f[5], &inst.outputs))
                return fail(at + "bad output gate id");
            res.netlist.addInstance(std::move(inst));
        }
    }

    GateId loop_gate = kNoGate;
    if (res.netlist.hasCombLoop(&loop_gate))
        return fail("combinational loop involving gate " +
                    std::to_string(loop_gate));

    const JsonValue *hash = doc.find("content_hash");
    if (!hash || !hash->isString())
        return fail("netlist JSON: missing \"content_hash\"");
    std::string actual = hashHex(res.netlist.contentHash());
    if (hash->asString() != actual)
        return fail("content hash mismatch: document says " +
                    hash->asString() + " but the netlist hashes to " +
                    actual + " (truncated or edited file?)");

    res.ok = true;
    return res;
}

NetlistJsonResult
netlistFromJsonText(const std::string &text)
{
    JsonValue doc;
    std::string err;
    if (!JsonValue::parse(text, doc, err)) {
        NetlistJsonResult res;
        res.error = "netlist JSON: " + err;
        return res;
    }
    return netlistFromJson(doc);
}

} // namespace bespoke
