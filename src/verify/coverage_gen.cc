#include "src/verify/coverage_gen.hh"

#include <algorithm>
#include <set>

#include "src/util/logging.hh"

namespace bespoke
{

namespace
{

/** Everything the greedy reduction needs to know about one candidate. */
struct ScoredCandidate
{
    WorkloadInput input;
    bool halted = false;
    std::set<uint16_t> executedPCs;
    /** addr -> (taken seen, not-taken seen) */
    std::vector<std::pair<uint16_t, std::pair<bool, bool>>> branchDirs;
};

/**
 * Score one candidate on the ISS. Pure map step: candidates are
 * scored independently of each other, so a batch can be evaluated in
 * any order (or lane/thread-parallel) without affecting selection.
 */
ScoredCandidate
scoreCandidate(const Workload &w, WorkloadInput in)
{
    ScoredCandidate c;
    c.input = std::move(in);
    IssRun run = runWorkloadIss(w, c.input);
    c.halted = run.result == StepResult::Halted;
    if (!c.halted)
        return c;
    c.executedPCs = std::move(run.executedPCs);
    for (const auto &[addr, dirs] : run.branchDirs)
        c.branchDirs.emplace_back(addr, dirs);
    return c;
}

} // namespace

CoverageInputs
generateCoverageInputs(const Workload &w, int max_inputs, int plateau,
                       uint64_t seed)
{
    AsmProgram prog = w.assembleProgram();

    // Total line / branch universe.
    std::set<int> all_lines;
    for (const auto &[addr, line] : prog.addrToLine)
        all_lines.insert(line);
    size_t total_branches = prog.condBranchAddrs.size();

    std::set<int> covered_lines;
    std::set<uint16_t> covered_branches;
    std::set<uint32_t> covered_dirs;  // addr*2 + taken?

    CoverageInputs result;
    Rng rng(seed);
    int since_progress = 0;

    // Candidates are drawn and scored a lane-batch at a time (the
    // resolved plane width), then reduced strictly in draw order with
    // the same greedy accounting the historical one-at-a-time loop
    // used. Selection therefore depends only on (seed, max_inputs,
    // plateau) — never on the batch width, lane count, or thread
    // count used to score a batch. Candidates scored past the stop
    // point are discarded unseen.
    const int batch_width = resolvePlaneBits(0);
    bool stopped = false;
    while (!stopped && result.totalGenerated < max_inputs) {
        const int chunk = std::min(
            batch_width, max_inputs - result.totalGenerated);
        std::vector<ScoredCandidate> batch;
        batch.reserve(static_cast<size_t>(chunk));
        for (int i = 0; i < chunk; i++)
            batch.push_back(scoreCandidate(w, w.genInput(rng)));

        for (ScoredCandidate &c : batch) {
            result.totalGenerated++;
            if (!c.halted) {
                bespoke_warn("coverage input did not halt for ",
                             w.name);
                continue;
            }

            size_t before =
                covered_lines.size() + covered_dirs.size();
            for (uint16_t pc : c.executedPCs) {
                auto it = prog.addrToLine.find(pc);
                if (it != prog.addrToLine.end())
                    covered_lines.insert(it->second);
            }
            for (const auto &[addr, dirs] : c.branchDirs) {
                covered_branches.insert(addr);
                if (dirs.first)
                    covered_dirs.insert(addr * 2u);
                if (dirs.second)
                    covered_dirs.insert(addr * 2u + 1u);
            }
            size_t after =
                covered_lines.size() + covered_dirs.size();
            if (after > before || result.inputs.empty()) {
                result.inputs.push_back(std::move(c.input));
                since_progress = 0;
            } else if (++since_progress >= plateau) {
                stopped = true;
                break;
            }
        }
    }

    result.linePct = all_lines.empty()
                         ? 100.0
                         : 100.0 * static_cast<double>(
                               covered_lines.size()) /
                               static_cast<double>(all_lines.size());
    result.branchPct =
        total_branches == 0
            ? 100.0
            : 100.0 * static_cast<double>(covered_branches.size()) /
                  static_cast<double>(total_branches);
    result.branchDirPct =
        total_branches == 0
            ? 100.0
            : 100.0 * static_cast<double>(covered_dirs.size()) /
                  static_cast<double>(2 * total_branches);
    return result;
}

} // namespace bespoke
