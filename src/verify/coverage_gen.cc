#include "src/verify/coverage_gen.hh"

#include <set>

#include "src/util/logging.hh"

namespace bespoke
{

CoverageInputs
generateCoverageInputs(const Workload &w, int max_inputs, int plateau,
                       uint64_t seed)
{
    AsmProgram prog = w.assembleProgram();

    // Total line / branch universe.
    std::set<int> all_lines;
    for (const auto &[addr, line] : prog.addrToLine)
        all_lines.insert(line);
    size_t total_branches = prog.condBranchAddrs.size();

    std::set<int> covered_lines;
    std::set<uint16_t> covered_branches;
    std::set<uint32_t> covered_dirs;  // addr*2 + taken?

    CoverageInputs result;
    Rng rng(seed);
    int since_progress = 0;

    while (result.totalGenerated < max_inputs &&
           since_progress < plateau) {
        WorkloadInput in = w.genInput(rng);
        result.totalGenerated++;
        IssRun run = runWorkloadIss(w, in);
        if (run.result != StepResult::Halted) {
            bespoke_warn("coverage input did not halt for ", w.name);
            continue;
        }

        size_t before = covered_lines.size() + covered_dirs.size();
        for (uint16_t pc : run.executedPCs) {
            auto it = prog.addrToLine.find(pc);
            if (it != prog.addrToLine.end())
                covered_lines.insert(it->second);
        }
        for (const auto &[addr, dirs] : run.branchDirs) {
            covered_branches.insert(addr);
            if (dirs.first)
                covered_dirs.insert(addr * 2u);
            if (dirs.second)
                covered_dirs.insert(addr * 2u + 1u);
        }
        size_t after = covered_lines.size() + covered_dirs.size();
        if (after > before || result.inputs.empty()) {
            result.inputs.push_back(in);
            since_progress = 0;
        } else {
            since_progress++;
        }
    }

    result.linePct = all_lines.empty()
                         ? 100.0
                         : 100.0 * static_cast<double>(
                               covered_lines.size()) /
                               static_cast<double>(all_lines.size());
    result.branchPct =
        total_branches == 0
            ? 100.0
            : 100.0 * static_cast<double>(covered_branches.size()) /
                  static_cast<double>(total_branches);
    result.branchDirPct =
        total_branches == 0
            ? 100.0
            : 100.0 * static_cast<double>(covered_dirs.size()) /
                  static_cast<double>(2 * total_branches);
    return result;
}

} // namespace bespoke
