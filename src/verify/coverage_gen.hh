/**
 * @file
 * Coverage-directed input generation (KLEE substitute, paper Table 3).
 *
 * The paper uses KLEE to generate inputs that exercise as many control
 * paths as possible for input-based verification. We substitute a
 * coverage-feedback loop over the ISS: random inputs are generated
 * until `plateau` consecutive inputs add no new line or branch-
 * direction coverage; inputs that added coverage are kept.
 */

#ifndef BESPOKE_VERIFY_COVERAGE_GEN_HH
#define BESPOKE_VERIFY_COVERAGE_GEN_HH

#include "src/verify/runner.hh"

namespace bespoke
{

struct CoverageInputs
{
    std::vector<WorkloadInput> inputs;   ///< coverage-adding inputs
    int totalGenerated = 0;              ///< inputs tried
    double linePct = 0.0;                ///< code lines executed
    double branchPct = 0.0;              ///< cond branches executed
    double branchDirPct = 0.0;           ///< branch directions covered
};

CoverageInputs generateCoverageInputs(const Workload &w,
                                      int max_inputs = 256,
                                      int plateau = 12,
                                      uint64_t seed = 7);

} // namespace bespoke

#endif // BESPOKE_VERIFY_COVERAGE_GEN_HH
