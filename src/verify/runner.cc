#include "src/verify/runner.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>

#include "src/sim/lane_sim.hh"
#include "src/util/logging.hh"

namespace bespoke
{

namespace
{

/** Instruction count / cycle at which the single IRQ pulse lands. */
constexpr uint64_t kIrqAtInstruction = 20;
constexpr uint64_t kIrqAtCycle = 200;
constexpr uint64_t kIrqPulseCycles = 4;

} // namespace

std::vector<uint16_t>
haltAddresses(const AsmProgram &prog)
{
    std::vector<uint16_t> addrs;
    const uint16_t halt_word = encodeJump(JumpCond::JMP, -1);
    for (const auto &[addr, line] : prog.addrToLine) {
        if (prog.romWord(addr) == halt_word)
            addrs.push_back(addr);
    }
    return addrs;
}

IssRun
runWorkloadIss(const Workload &w, const WorkloadInput &input,
               uint64_t max_steps)
{
    AsmProgram prog = w.assembleProgram();
    Iss iss(prog);
    iss.setGpioIn(input.gpioIn);
    for (size_t i = 0; i < input.ramWords.size(); i++) {
        iss.pokeWord(static_cast<uint16_t>(kInputBase + 2 * i),
                     input.ramWords[i]);
    }
    for (auto [addr, value] : input.extraRam)
        iss.pokeWord(addr, value);

    IssRun r;
    for (uint64_t n = 0; n < max_steps; n++) {
        if (w.usesIrq && n == kIrqAtInstruction)
            iss.raiseExternalIrq();
        r.result = iss.step();
        if (r.result != StepResult::Ok)
            break;
    }
    r.instructions = iss.instructionsRetired();
    for (int i = 0; i < w.outputWords; i++) {
        r.out.push_back(iss.readWord(
            static_cast<uint16_t>(kOutputBase + 2 * i)));
    }
    r.gpioOut = iss.gpioOut();
    r.executedPCs = iss.executedPCs();
    r.branchDirs = iss.branchDirections();
    r.ram.assign(iss.ram().begin(), iss.ram().end());
    return r;
}

GateRun
runWorkloadGate(const Netlist &netlist, const Workload &w,
                const AsmProgram &prog, const WorkloadInput &input,
                ToggleCounter *toggles, ActivityTracker *activity,
                const std::function<void(const GateSim &)> &per_cycle,
                std::shared_ptr<const SocContext> ctx)
{
    if (!ctx)
        ctx = SocContext::make(netlist);
    Soc soc(std::move(ctx), prog, /*ram_unknown=*/false);
    soc.setGpioIn(SWord::of(input.gpioIn));
    soc.setIrqExt(Logic::Zero);
    for (size_t i = 0; i < input.ramWords.size(); i++) {
        soc.pokeRamWord(static_cast<uint16_t>(kInputBase + 2 * i),
                        SWord::of(input.ramWords[i]));
    }
    for (auto [addr, value] : input.extraRam)
        soc.pokeRamWord(addr, SWord::of(value));

    std::vector<uint16_t> halts = haltAddresses(prog);
    std::sort(halts.begin(), halts.end());
    auto is_halt_pc = [&](SWord pc) {
        return pc.fullyKnown() &&
               std::binary_search(halts.begin(), halts.end(), pc.val);
    };

    GateRun r;
    if (activity && !activity->initialCaptured())
        activity->captureInitial(soc.sim());

    for (uint64_t c = 0; c < w.maxCycles; c++) {
        if (w.usesIrq) {
            bool pulse = c >= kIrqAtCycle &&
                         c < kIrqAtCycle + kIrqPulseCycles;
            soc.setIrqExt(pulse ? Logic::One : Logic::Zero);
        }
        soc.evalOnly();
        if (soc.stFetch() == Logic::One && is_halt_pc(soc.pc())) {
            r.halted = true;
            break;
        }
        if (toggles)
            toggles->observe(soc.sim());
        if (activity)
            activity->observe(soc.sim());
        if (per_cycle)
            per_cycle(soc.sim());
        soc.finishCycle();
        r.cycles = c + 1;
    }

    for (int i = 0; i < w.outputWords; i++) {
        r.out.push_back(soc.ramWord(
            static_cast<uint16_t>(kOutputBase + 2 * i)));
    }
    r.gpioOut = soc.gpioOut();
    r.ram = soc.ram();
    return r;
}

int
resolvePlaneBits(int plane_bits)
{
    if (plane_bits <= 0) {
        if (const char *env = std::getenv("BESPOKE_PLANE_BITS"))
            plane_bits = std::atoi(env);
    }
    return validPlaneBits(plane_bits) ? plane_bits : 64;
}

namespace
{

/** Mirror of Soc::pokeRamWord against a bare environment. */
void
pokeEnvWord(EnvState &env, uint16_t byte_addr, SWord w)
{
    bespoke_assert(isRamAddr(byte_addr));
    env.ram[(byte_addr - kRamBase) >> 1] = w;
}

SWord
envWord(const EnvState &env, uint16_t byte_addr)
{
    bespoke_assert(isRamAddr(byte_addr));
    return env.ram[(byte_addr - kRamBase) >> 1];
}

/**
 * Scalar fallback: the scenarios one by one through runWorkloadGate,
 * per-scenario counters and module-idle tracking fed through the
 * per-cycle hook. This path defines the semantics the lane path must
 * reproduce bit for bit.
 */
std::vector<GateRun>
runScenariosScalar(const Netlist &nl, const Workload &w,
                   const std::vector<GateScenario> &scenarios,
                   const GateBatchObservers &obs,
                   std::shared_ptr<const SocContext> ctx)
{
    std::vector<GateRun> out;
    out.reserve(scenarios.size());
    std::vector<uint8_t> last;
    for (const GateScenario &s : scenarios) {
        bool first = true;
        std::function<void(const GateSim &)> per_cycle;
        if (s.toggles || obs.moduleIdle) {
            per_cycle = [&](const GateSim &sim) {
                if (s.toggles)
                    s.toggles->observe(sim);
                if (!obs.moduleIdle)
                    return;
                const std::vector<uint8_t> &v = sim.values();
                if (first) {
                    last = v;
                    first = false;
                    return;
                }
                bool active[kNumModules] = {};
                for (GateId i = 0; i < nl.size(); i++) {
                    if (v[i] != last[i])
                        active[static_cast<int>(nl.gate(i).module)] =
                            true;
                    last[i] = v[i];
                }
                for (int m = 0; m < kNumModules; m++) {
                    if (!active[m])
                        obs.moduleIdle->idle[m]++;
                }
                obs.moduleIdle->totalCycles++;
            };
        }
        out.push_back(runWorkloadGate(nl, w, *s.prog, *s.input,
                                      obs.toggles, obs.activity,
                                      per_cycle, ctx));
    }
    return out;
}

/** Decode one lane of (val, known) planes into byte-coded Logic. */
template <class Mask>
void
extractLane(const std::vector<Mask> &val, const std::vector<Mask> &known,
            int lane, std::vector<uint8_t> &out)
{
    size_t n = val.size();
    out.resize(n);
    for (size_t i = 0; i < n; i++) {
        if (!laneTest(known[i], lane))
            out[i] = static_cast<uint8_t>(Logic::X);
        else
            out[i] = static_cast<uint8_t>(laneTest(val[i], lane)
                                              ? Logic::One
                                              : Logic::Zero);
    }
}

/** IRQ pulse schedule shared with the scalar path. */
constexpr uint64_t kBatchIrqAtCycle = 200;
constexpr uint64_t kBatchIrqPulseCycles = 4;

/**
 * Straggler handoff threshold: once this few lanes remain active, the
 * full plane sweep (every gate, every word, every cycle) costs more
 * than continuing each survivor on the event-driven scalar simulator,
 * which only revisits gates whose fanins changed — for a mutant
 * spinning in a tight loop until the cycle cap, that is a handful of
 * gates per cycle instead of the whole netlist. The threshold depends
 * on whether observers are attached: toggle/idle observation costs a
 * full n-gate byte diff per scalar cycle, which the plane path
 * amortizes across every lane per word — so with observers a handoff
 * only pays once fewer lanes remain than half the plane's word count
 * (never, at one word). Observer-free runs keep the fixed threshold.
 */
constexpr size_t kScalarHandoffLanes = 8;

size_t
scalarHandoffLimit(bool observing, size_t plane_words)
{
    return observing ? plane_words / 2 : kScalarHandoffLanes;
}

template <int W>
std::vector<GateRun>
runScenariosLanes(const Netlist &nl, const Workload &w,
                  const std::vector<GateScenario> &scenarios,
                  const GateBatchObservers &obs,
                  std::shared_ptr<const SocContext> ctx)
{
    using Mask = LaneMask<W>;
    const size_t n = nl.size();
    const size_t total = scenarios.size();

    // Fresh-Soc seed state (program-independent: the reset eval never
    // touches the ROM) shared by every lane; also the initial-value
    // capture point, identical to the scalar path's.
    Soc seed(ctx, *scenarios[0].prog, /*ram_unknown=*/false);
    const SeqState seed_seq = seed.sim().seqState();
    const EnvState seed_env = seed.envState();
    if (obs.activity && !obs.activity->initialCaptured())
        obs.activity->captureInitial(seed.sim());

    // Halt addresses per distinct program image.
    std::map<const AsmProgram *, std::vector<uint16_t>> halts_by_prog;
    for (const GateScenario &s : scenarios) {
        auto [it, fresh] = halts_by_prog.try_emplace(s.prog);
        if (fresh) {
            it->second = haltAddresses(*s.prog);
            std::sort(it->second.begin(), it->second.end());
        }
    }

    const bool count_toggles =
        obs.toggles ||
        std::any_of(scenarios.begin(), scenarios.end(),
                    [](const GateScenario &s) { return s.toggles; });
    const bool observing =
        count_toggles || obs.activity || obs.moduleIdle;

    std::vector<GateRun> out(total);
    std::vector<uint64_t> shared_counts;
    if (obs.toggles)
        shared_counts.assign(n, 0);

    for (size_t base = 0; base < total; base += W) {
        const size_t lanes_used = std::min<size_t>(W, total - base);
        LaneSocT<W> soc(ctx, *scenarios[base].prog);
        soc.setIrqExt(Logic::Zero);

        Mask active{};
        std::vector<const std::vector<uint16_t> *> halts(lanes_used);
        std::vector<uint64_t> completed(lanes_used, 0);
        std::vector<ToggleCounter::RunTrace> trace(lanes_used);
        // Per-scenario within-run counts, gate-major [gate * S + lane].
        std::vector<uint64_t> lane_counts;
        Mask lane_tog_mask{};
        for (size_t l = 0; l < lanes_used; l++) {
            const GateScenario &s = scenarios[base + l];
            const WorkloadInput &in = *s.input;
            EnvState env = seed_env;
            for (size_t i = 0; i < in.ramWords.size(); i++) {
                pokeEnvWord(env,
                            static_cast<uint16_t>(kInputBase + 2 * i),
                            SWord::of(in.ramWords[i]));
            }
            for (auto [addr, value] : in.extraRam)
                pokeEnvWord(env, addr, SWord::of(value));
            soc.loadLane(static_cast<int>(l), seed_seq, env, 0);
            soc.setGpioInLane(static_cast<int>(l),
                              SWord::of(in.gpioIn));
            soc.setProgLane(static_cast<int>(l), s.prog);
            halts[l] = &halts_by_prog[s.prog];
            laneSet(active, static_cast<int>(l));
            if (s.toggles)
                laneSet(lane_tog_mask, static_cast<int>(l));
        }
        if (laneAny(lane_tog_mask))
            lane_counts.assign(n * lanes_used, 0);

        // Last-observed planes + first-observe tracking for the
        // boundary-exact toggle accounting.
        std::vector<Mask> last_v, last_k;
        Mask seen{};
        if (count_toggles || obs.moduleIdle) {
            last_v.assign(n, Mask{});
            last_k.assign(n, Mask{});
        }

        auto retire = [&](int lane, bool halted, uint64_t cycles) {
            const GateScenario &s = scenarios[base + lane];
            GateRun &r = out[base + lane];
            r.halted = halted;
            r.cycles = cycles;
            for (int i = 0; i < w.outputWords; i++) {
                r.out.push_back(envWord(
                    soc.envLane(lane),
                    static_cast<uint16_t>(kOutputBase + 2 * i)));
            }
            r.gpioOut = soc.gpioOut(lane);
            r.ram = soc.envLane(lane).ram;
            if ((obs.toggles || s.toggles) && laneTest(seen, lane)) {
                extractLane(last_v, last_k, lane,
                            trace[lane].last);
            }
            laneClear(active, lane);
        };

        // Continue one straggler lane to completion on the scalar
        // event-driven simulator, reproducing every observer update
        // the lane path would have made. The lane's machine state
        // (flops + environment) transfers exactly; combinational
        // values are recomputed by the next eval, so the scalar run
        // is bit-identical from cycle c0 on.
        auto scalar_continue = [&](int lane, uint64_t c0) {
            const GateScenario &s = scenarios[base + lane];
            Soc ssoc(ctx, soc.progForLane(lane), /*ram_unknown=*/false);
            ssoc.sim().restoreSeqState(soc.seqLane(lane));
            ssoc.restoreEnvState(soc.envLane(lane));
            ssoc.setGpioIn(SWord::of(s.input->gpioIn));
            ssoc.setIrqExt(Logic::Zero);
            const std::vector<uint16_t> &h = *halts[lane];
            const bool track = obs.toggles || s.toggles;
            bool lane_seen = laneTest(seen, lane);
            std::vector<uint8_t> last;
            if ((count_toggles || obs.moduleIdle) && lane_seen)
                extractLane(last_v, last_k, lane, last);

            bool halted = false;
            uint64_t cycles = completed[lane];
            for (uint64_t c = c0; c < w.maxCycles; c++) {
                if (w.usesIrq) {
                    bool pulse =
                        c >= kBatchIrqAtCycle &&
                        c < kBatchIrqAtCycle + kBatchIrqPulseCycles;
                    ssoc.setIrqExt(pulse ? Logic::One : Logic::Zero);
                }
                ssoc.evalOnly();
                if (ssoc.stFetch() == Logic::One) {
                    SWord pc = ssoc.pc();
                    if (pc.fullyKnown() &&
                        std::binary_search(h.begin(), h.end(),
                                           pc.val)) {
                        halted = true;
                        break;
                    }
                }
                if (observing) {
                    if (count_toggles || obs.moduleIdle) {
                        const std::vector<uint8_t> &v =
                            ssoc.sim().values();
                        if (!lane_seen) {
                            if (track)
                                trace[lane].first = v;
                            last = v;
                            lane_seen = true;
                        } else {
                            bool mod_act[kNumModules] = {};
                            // Eight-gate block skip: an event-driven
                            // cycle changes few gates, so most blocks
                            // compare equal in one 64-bit op.
                            for (size_t g0 = 0; g0 < n; g0 += 8) {
                                const size_t ge = std::min(g0 + 8, n);
                                if (ge - g0 == 8) {
                                    uint64_t xv, xl;
                                    std::memcpy(&xv, v.data() + g0, 8);
                                    std::memcpy(&xl, last.data() + g0,
                                                8);
                                    if (xv == xl)
                                        continue;
                                }
                                for (size_t g = g0; g < ge; g++) {
                                    if (v[g] == last[g])
                                        continue;
                                    last[g] = v[g];
                                    if (obs.toggles)
                                        shared_counts[g]++;
                                    if (s.toggles)
                                        lane_counts[g * lanes_used +
                                                    lane]++;
                                    if (obs.moduleIdle) {
                                        mod_act[static_cast<int>(
                                            nl.gate(g).module)] = true;
                                    }
                                }
                            }
                            if (obs.moduleIdle) {
                                for (int m = 0; m < kNumModules; m++) {
                                    if (!mod_act[m])
                                        obs.moduleIdle->idle[m]++;
                                }
                                obs.moduleIdle->totalCycles++;
                            }
                        }
                        trace[lane].cycles++;
                    }
                    if (obs.activity)
                        obs.activity->observe(ssoc.sim());
                }
                ssoc.finishCycle();
                cycles = c + 1;
            }

            GateRun &r = out[base + lane];
            r.halted = halted;
            r.cycles = cycles;
            for (int i = 0; i < w.outputWords; i++) {
                r.out.push_back(ssoc.ramWord(
                    static_cast<uint16_t>(kOutputBase + 2 * i)));
            }
            r.gpioOut = ssoc.gpioOut();
            r.ram = ssoc.ram();
            if (track && lane_seen)
                trace[lane].last = last;
            laneClear(active, lane);
        };

        const size_t handoff_limit =
            scalarHandoffLimit(observing, static_cast<size_t>(W) / 64);
        for (uint64_t c = 0; c < w.maxCycles; c++) {
            const size_t live = laneCount(active);
            if (live == 0)
                break;
            if (live <= handoff_limit && live < lanes_used) {
                std::vector<int> rem;
                forEachLane(active,
                            [&](int lane) { rem.push_back(lane); });
                for (int lane : rem)
                    scalar_continue(lane, c);
                break;
            }
            if (w.usesIrq) {
                bool pulse = c >= kBatchIrqAtCycle &&
                             c < kBatchIrqAtCycle + kBatchIrqPulseCycles;
                soc.setIrqExt(pulse ? Logic::One : Logic::Zero);
            }
            soc.evalOnly();

            Mask fetch = soc.stFetchOneMask() & active;
            forEachLane(fetch, [&](int lane) {
                SWord pc = soc.pc(lane);
                const std::vector<uint16_t> &h = *halts[lane];
                if (pc.fullyKnown() &&
                    std::binary_search(h.begin(), h.end(), pc.val)) {
                    retire(lane, /*halted=*/true, completed[lane]);
                }
            });
            if (!laneAny(active))
                break;

            if (observing) {
                const Mask obs_mask = active;
                const Mask cnt_mask = obs_mask & seen;
                if (count_toggles || obs.moduleIdle) {
                    const std::vector<Mask> &vp = soc.sim().valPlanes();
                    const std::vector<Mask> &kp =
                        soc.sim().knownPlanes();
                    Mask mod_active[kNumModules] = {};
                    const Mask lane_cnt = cnt_mask & lane_tog_mask;
                    for (size_t g = 0; g < n; g++) {
                        Mask diff =
                            ((vp[g] ^ last_v[g]) | (kp[g] ^ last_k[g])) &
                            cnt_mask;
                        last_v[g] = vp[g];
                        last_k[g] = kp[g];
                        if (!laneAny(diff))
                            continue;
                        if (obs.toggles)
                            shared_counts[g] += laneCount(diff);
                        if (obs.moduleIdle) {
                            mod_active[static_cast<int>(
                                nl.gate(g).module)] |= diff;
                        }
                        if (laneAny(diff & lane_cnt)) {
                            forEachLane(diff & lane_cnt, [&](int lane) {
                                lane_counts[g * lanes_used + lane]++;
                            });
                        }
                    }
                    if (obs.moduleIdle) {
                        for (int m = 0; m < kNumModules; m++) {
                            obs.moduleIdle->idle[m] += laneCount(
                                cnt_mask & ~mod_active[m]);
                        }
                        obs.moduleIdle->totalCycles +=
                            laneCount(cnt_mask);
                    }
                    // First observe of a lane primes its last-planes
                    // (copied above) without counting.
                    forEachLane(obs_mask & ~seen, [&](int lane) {
                        if (obs.toggles ||
                            scenarios[base + lane].toggles) {
                            extractLane(vp, kp, lane,
                                        trace[lane].first);
                        }
                    });
                    forEachLane(obs_mask, [&](int lane) {
                        trace[lane].cycles++;
                    });
                    seen |= obs_mask;
                }
                if (obs.activity)
                    obs.activity->observe(soc.sim(), obs_mask);
            }

            soc.finishCycle(active);
            forEachLane(active, [&](int lane) {
                completed[lane] = c + 1;
            });
        }
        forEachLane(active, [&](int lane) {
            retire(lane, /*halted=*/false, completed[lane]);
        });

        // Replay each run's boundary contribution in sequential order;
        // the order-free within-run sums follow.
        std::vector<uint64_t> col;
        for (size_t l = 0; l < lanes_used; l++) {
            const GateScenario &s = scenarios[base + l];
            if (obs.toggles)
                obs.toggles->ingestRun(trace[l]);
            if (s.toggles) {
                s.toggles->ingestRun(trace[l]);
                col.assign(n, 0);
                for (size_t g = 0; g < n; g++)
                    col[g] = lane_counts[g * lanes_used + l];
                s.toggles->addCounts(col);
            }
        }
    }
    if (obs.toggles)
        obs.toggles->addCounts(shared_counts);
    return out;
}

} // namespace

std::vector<GateRun>
runScenarioGateBatch(const Netlist &netlist, const Workload &w,
                     const std::vector<GateScenario> &scenarios,
                     int plane_bits, const GateBatchObservers &obs,
                     std::shared_ptr<const SocContext> ctx)
{
    if (scenarios.empty())
        return {};
    if (!ctx)
        ctx = SocContext::make(netlist);
    if (scenarios.size() < kMinLaneBatch)
        return runScenariosScalar(netlist, w, scenarios, obs, ctx);
    // Never sweep wider planes than the batch can fill: a 13-scenario
    // batch on 256-bit planes would pay 4 words per gate for one
    // word's worth of lanes. Results are width-independent, so this
    // is purely an execution-cost decision.
    int width_bits = resolvePlaneBits(plane_bits);
    while (width_bits > 64 &&
           scenarios.size() <= static_cast<size_t>(width_bits) / 2)
        width_bits /= 2;
    return withPlaneBits(
        width_bits, [&](auto width) {
            return runScenariosLanes<decltype(width)::value>(
                netlist, w, scenarios, obs, std::move(ctx));
        });
}

std::vector<GateRun>
runWorkloadGateBatch(const Netlist &netlist, const Workload &w,
                     const AsmProgram &prog,
                     const std::vector<WorkloadInput> &inputs,
                     int plane_bits, const GateBatchObservers &obs,
                     std::shared_ptr<const SocContext> ctx)
{
    std::vector<GateScenario> scenarios(inputs.size());
    for (size_t i = 0; i < inputs.size(); i++) {
        scenarios[i].prog = &prog;
        scenarios[i].input = &inputs[i];
    }
    return runScenarioGateBatch(netlist, w, scenarios, plane_bits, obs,
                                std::move(ctx));
}

RunDiff
compareRuns(const IssRun &iss, const GateRun &gate, const Workload &w)
{
    RunDiff d;
    std::ostringstream os;
    if (iss.result != StepResult::Halted) {
        d.ok = false;
        os << "ISS did not halt; ";
    }
    if (!gate.halted) {
        d.ok = false;
        os << "gate-level run did not halt; ";
    }
    for (int i = 0; i < w.outputWords; i++) {
        SWord g = gate.out[i];
        if (!g.fullyKnown() || g.val != iss.out[i]) {
            d.ok = false;
            os << "out[" << i << "]: iss=0x" << std::hex << iss.out[i]
               << " gate=" << g.toString() << std::dec << "; ";
        }
    }
    if (!gate.gpioOut.fullyKnown() ||
        gate.gpioOut.val != iss.gpioOut) {
        d.ok = false;
        os << "gpio_out mismatch; ";
    }
    // Full RAM equivalence. Skipped for IRQ workloads: the interrupt
    // lands at different dynamic points on the ISS (instruction-based
    // schedule) vs. gate level (cycle-based schedule), so the stack
    // residue differs even though the architectural outputs match.
    if (w.usesIrq) {
        d.detail = os.str();
        return d;
    }
    for (size_t i = 0; i < gate.ram.size(); i++) {
        SWord g = gate.ram[i];
        uint16_t expect = static_cast<uint16_t>(
            iss.ram[2 * i] | (iss.ram[2 * i + 1] << 8));
        if (!g.fullyKnown() || g.val != expect) {
            d.ok = false;
            os << "ram[0x" << std::hex << (kRamBase + 2 * i)
               << "]: iss=0x" << expect << " gate=" << g.toString()
               << std::dec << "; ";
            break;  // one RAM diff is enough detail
        }
    }
    d.detail = os.str();
    return d;
}

} // namespace bespoke
