#include "src/verify/runner.hh"

#include <algorithm>
#include <sstream>

#include "src/util/logging.hh"

namespace bespoke
{

namespace
{

/** Instruction count / cycle at which the single IRQ pulse lands. */
constexpr uint64_t kIrqAtInstruction = 20;
constexpr uint64_t kIrqAtCycle = 200;
constexpr uint64_t kIrqPulseCycles = 4;

} // namespace

std::vector<uint16_t>
haltAddresses(const AsmProgram &prog)
{
    std::vector<uint16_t> addrs;
    const uint16_t halt_word = encodeJump(JumpCond::JMP, -1);
    for (const auto &[addr, line] : prog.addrToLine) {
        if (prog.romWord(addr) == halt_word)
            addrs.push_back(addr);
    }
    return addrs;
}

IssRun
runWorkloadIss(const Workload &w, const WorkloadInput &input,
               uint64_t max_steps)
{
    AsmProgram prog = w.assembleProgram();
    Iss iss(prog);
    iss.setGpioIn(input.gpioIn);
    for (size_t i = 0; i < input.ramWords.size(); i++) {
        iss.pokeWord(static_cast<uint16_t>(kInputBase + 2 * i),
                     input.ramWords[i]);
    }
    for (auto [addr, value] : input.extraRam)
        iss.pokeWord(addr, value);

    IssRun r;
    for (uint64_t n = 0; n < max_steps; n++) {
        if (w.usesIrq && n == kIrqAtInstruction)
            iss.raiseExternalIrq();
        r.result = iss.step();
        if (r.result != StepResult::Ok)
            break;
    }
    r.instructions = iss.instructionsRetired();
    for (int i = 0; i < w.outputWords; i++) {
        r.out.push_back(iss.readWord(
            static_cast<uint16_t>(kOutputBase + 2 * i)));
    }
    r.gpioOut = iss.gpioOut();
    r.executedPCs = iss.executedPCs();
    r.branchDirs = iss.branchDirections();
    r.ram.assign(iss.ram().begin(), iss.ram().end());
    return r;
}

GateRun
runWorkloadGate(const Netlist &netlist, const Workload &w,
                const AsmProgram &prog, const WorkloadInput &input,
                ToggleCounter *toggles, ActivityTracker *activity,
                const std::function<void(const GateSim &)> &per_cycle,
                std::shared_ptr<const SocContext> ctx)
{
    if (!ctx)
        ctx = SocContext::make(netlist);
    Soc soc(std::move(ctx), prog, /*ram_unknown=*/false);
    soc.setGpioIn(SWord::of(input.gpioIn));
    soc.setIrqExt(Logic::Zero);
    for (size_t i = 0; i < input.ramWords.size(); i++) {
        soc.pokeRamWord(static_cast<uint16_t>(kInputBase + 2 * i),
                        SWord::of(input.ramWords[i]));
    }
    for (auto [addr, value] : input.extraRam)
        soc.pokeRamWord(addr, SWord::of(value));

    std::vector<uint16_t> halts = haltAddresses(prog);
    std::sort(halts.begin(), halts.end());
    auto is_halt_pc = [&](SWord pc) {
        return pc.fullyKnown() &&
               std::binary_search(halts.begin(), halts.end(), pc.val);
    };

    GateRun r;
    if (activity && !activity->initialCaptured())
        activity->captureInitial(soc.sim());

    for (uint64_t c = 0; c < w.maxCycles; c++) {
        if (w.usesIrq) {
            bool pulse = c >= kIrqAtCycle &&
                         c < kIrqAtCycle + kIrqPulseCycles;
            soc.setIrqExt(pulse ? Logic::One : Logic::Zero);
        }
        soc.evalOnly();
        if (soc.stFetch() == Logic::One && is_halt_pc(soc.pc())) {
            r.halted = true;
            break;
        }
        if (toggles)
            toggles->observe(soc.sim());
        if (activity)
            activity->observe(soc.sim());
        if (per_cycle)
            per_cycle(soc.sim());
        soc.finishCycle();
        r.cycles = c + 1;
    }

    for (int i = 0; i < w.outputWords; i++) {
        r.out.push_back(soc.ramWord(
            static_cast<uint16_t>(kOutputBase + 2 * i)));
    }
    r.gpioOut = soc.gpioOut();
    r.ram = soc.ram();
    return r;
}

RunDiff
compareRuns(const IssRun &iss, const GateRun &gate, const Workload &w)
{
    RunDiff d;
    std::ostringstream os;
    if (iss.result != StepResult::Halted) {
        d.ok = false;
        os << "ISS did not halt; ";
    }
    if (!gate.halted) {
        d.ok = false;
        os << "gate-level run did not halt; ";
    }
    for (int i = 0; i < w.outputWords; i++) {
        SWord g = gate.out[i];
        if (!g.fullyKnown() || g.val != iss.out[i]) {
            d.ok = false;
            os << "out[" << i << "]: iss=0x" << std::hex << iss.out[i]
               << " gate=" << g.toString() << std::dec << "; ";
        }
    }
    if (!gate.gpioOut.fullyKnown() ||
        gate.gpioOut.val != iss.gpioOut) {
        d.ok = false;
        os << "gpio_out mismatch; ";
    }
    // Full RAM equivalence. Skipped for IRQ workloads: the interrupt
    // lands at different dynamic points on the ISS (instruction-based
    // schedule) vs. gate level (cycle-based schedule), so the stack
    // residue differs even though the architectural outputs match.
    if (w.usesIrq) {
        d.detail = os.str();
        return d;
    }
    for (size_t i = 0; i < gate.ram.size(); i++) {
        SWord g = gate.ram[i];
        uint16_t expect = static_cast<uint16_t>(
            iss.ram[2 * i] | (iss.ram[2 * i + 1] << 8));
        if (!g.fullyKnown() || g.val != expect) {
            d.ok = false;
            os << "ram[0x" << std::hex << (kRamBase + 2 * i)
               << "]: iss=0x" << expect << " gate=" << g.toString()
               << std::dec << "; ";
            break;  // one RAM diff is enough detail
        }
    }
    d.detail = os.str();
    return d;
}

} // namespace bespoke
