/**
 * @file
 * Workload run harness: executes a workload on the ISS golden model or
 * on a gate-level netlist (original or bespoke), with input injection,
 * interrupt scheduling, halt detection, and result extraction. Used by
 * the profiling study (Fig. 2), input-based verification (Table 3),
 * the power model (toggle collection), and the example programs.
 */

#ifndef BESPOKE_VERIFY_RUNNER_HH
#define BESPOKE_VERIFY_RUNNER_HH

#include <array>
#include <map>
#include <set>

#include "src/iss/iss.hh"
#include "src/sim/soc.hh"
#include "src/workloads/workload.hh"

namespace bespoke
{

/** Instruction addresses holding the `jmp .` halt idiom. */
std::vector<uint16_t> haltAddresses(const AsmProgram &prog);

/** Result of an ISS run. */
struct IssRun
{
    StepResult result = StepResult::Ok;
    std::vector<uint16_t> out;  ///< output-region words
    uint16_t gpioOut = 0;
    uint64_t instructions = 0;
    std::set<uint16_t> executedPCs;
    std::map<uint16_t, std::pair<bool, bool>> branchDirs;
    std::vector<uint8_t> ram;   ///< final RAM image
};

/**
 * Run a workload with a concrete input on the ISS. For IRQ-using
 * workloads, one external interrupt is injected early in the run (the
 * gate-level harness injects the equivalent pulse).
 */
IssRun runWorkloadIss(const Workload &w, const WorkloadInput &input,
                      uint64_t max_steps = 2'000'000);

/** Result of a gate-level run. */
struct GateRun
{
    bool halted = false;
    uint64_t cycles = 0;
    std::vector<SWord> out;  ///< output-region words
    SWord gpioOut;
    std::vector<SWord> ram;  ///< final RAM contents
};

/**
 * Run a workload with a concrete input on a netlist. Optional trackers
 * observe every cycle (ToggleCounter for power, ActivityTracker for
 * profiled unused gates, Fig. 2).
 *
 * @param prog must be the workload's assembled program (passed in so
 *        callers can reuse one assembly across runs).
 * @param ctx optional pre-built simulation context for `netlist`;
 *        callers running many inputs on one netlist pass it to skip
 *        the per-run levelization/port-resolution prep.
 */
GateRun runWorkloadGate(const Netlist &netlist, const Workload &w,
                        const AsmProgram &prog, const WorkloadInput &input,
                        ToggleCounter *toggles = nullptr,
                        ActivityTracker *activity = nullptr,
                        const std::function<void(const GateSim &)>
                            &per_cycle = nullptr,
                        std::shared_ptr<const SocContext> ctx = nullptr);

/**
 * Resolve the lane-batch plane width: an explicit positive value wins,
 * else the BESPOKE_PLANE_BITS environment override, else 64. Invalid
 * widths (anything but 64/128/256/512) resolve to 64.
 */
int resolvePlaneBits(int plane_bits);

/** Per-module idle-cycle counts (oracle power gating, Fig. 15). */
struct ModuleIdleCounts
{
    std::array<uint64_t, kNumModules> idle{};
    uint64_t totalCycles = 0;
};

/**
 * One scenario of a lane batch: a program image, an input, and an
 * optional private toggle counter (lane-per-mutant sweeps give every
 * mutant its own). All scenarios of a batch share one workload (input
 * model, cycle budget, IRQ schedule) and one netlist.
 */
struct GateScenario
{
    const AsmProgram *prog = nullptr;
    const WorkloadInput *input = nullptr;
    ToggleCounter *toggles = nullptr;  ///< per-scenario counter
};

/** Observers shared by every scenario of a batch. */
struct GateBatchObservers
{
    ToggleCounter *toggles = nullptr;
    ActivityTracker *activity = nullptr;
    ModuleIdleCounts *moduleIdle = nullptr;
};

/**
 * Run many scenarios of one workload lane-parallel, W per plane sweep
 * (W = resolvePlaneBits(plane_bits)). Results and every observer are
 * bit-identical to running the scenarios through runWorkloadGate()
 * sequentially in vector order with the same shared trackers — the
 * scalar path IS the fallback, taken whenever a batch is too small to
 * win from plane packing (fewer than kMinLaneBatch scenarios). Shared
 * counters see within-run transitions summed order-free plus the
 * cross-run boundary transitions replayed in sequential order
 * (ToggleCounter::ingestRun), so the committed power baselines do not
 * move.
 */
constexpr size_t kMinLaneBatch = 4;
std::vector<GateRun> runScenarioGateBatch(
    const Netlist &netlist, const Workload &w,
    const std::vector<GateScenario> &scenarios, int plane_bits = 0,
    const GateBatchObservers &obs = {},
    std::shared_ptr<const SocContext> ctx = nullptr);

/** Scenario batch with one shared program: the common verify shape. */
std::vector<GateRun> runWorkloadGateBatch(
    const Netlist &netlist, const Workload &w, const AsmProgram &prog,
    const std::vector<WorkloadInput> &inputs, int plane_bits = 0,
    const GateBatchObservers &obs = {},
    std::shared_ptr<const SocContext> ctx = nullptr);

/** Check a gate run against the ISS oracle; fatal-free, returns diff. */
struct RunDiff
{
    bool ok = true;
    std::string detail;
};
RunDiff compareRuns(const IssRun &iss, const GateRun &gate,
                    const Workload &w);

} // namespace bespoke

#endif // BESPOKE_VERIFY_RUNNER_HH
