#include "src/mutation/mutation.hh"

#include <cctype>
#include <map>
#include <sstream>

#include "src/util/logging.hh"

namespace bespoke
{

const char *
mutantTypeName(MutantType t)
{
    switch (t) {
      case MutantType::TypeI:
        return "Type I";
      case MutantType::TypeII:
        return "Type II";
      default:
        return "Type III";
    }
}

namespace
{

std::string
trim(const std::string &s)
{
    size_t a = s.find_first_not_of(" \t\r\n");
    if (a == std::string::npos)
        return "";
    size_t b = s.find_last_not_of(" \t\r\n");
    return s.substr(a, b - a + 1);
}

/** Complementary condition per mnemonic. */
const std::map<std::string, std::string> kComplement = {
    {"jeq", "jne"}, {"jne", "jeq"}, {"jz", "jnz"},   {"jnz", "jz"},
    {"jc", "jnc"},  {"jnc", "jc"},  {"jhs", "jlo"},  {"jlo", "jhs"},
    {"jge", "jl"},  {"jl", "jge"},  {"jn", "jge"},
};

/** Adjacent-relation substitution for loop conditions (i<n -> i!=n). */
const std::map<std::string, std::string> kAdjacent = {
    {"jl", "jne"},  {"jge", "jeq"}, {"jne", "jl"},
    {"jnz", "jge"}, {"jlo", "jne"}, {"jc", "jeq"},
};

/** Computation-operator substitutions. */
const std::map<std::string, std::string> kComputation = {
    {"add", "sub"},   {"sub", "add"},  {"addc", "subc"},
    {"subc", "addc"}, {"and", "bis"},  {"bis", "and"},
    {"xor", "bis"},   {"inc", "dec"},  {"dec", "inc"},
    {"incd", "decd"}, {"decd", "incd"}, {"rla", "rra"},
    {"rra", "rla"},
};

struct LineInfo
{
    int lineNo;           ///< 1-based
    std::string mnemonic; ///< lower-case, with .b suffix stripped
    std::string suffix;   ///< ".b" or ""
    std::string operands;
    size_t mnemonicPos;   ///< position of the mnemonic in the line
};

/** Extract the instruction (if any) on a source line. */
bool
parseLine(const std::string &line, LineInfo &info)
{
    std::string text = line;
    size_t sc = text.find(';');
    if (sc != std::string::npos)
        text = text.substr(0, sc);

    // Skip labels.
    size_t start = 0;
    while (true) {
        size_t colon = text.find(':', start);
        if (colon == std::string::npos)
            break;
        start = colon + 1;
    }
    std::string body = trim(text.substr(start));
    if (body.empty() || body[0] == '.')
        return false;

    size_t sp = body.find_first_of(" \t");
    std::string mn = sp == std::string::npos ? body : body.substr(0, sp);
    for (char &c : mn)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    info.mnemonic = mn;
    info.suffix = "";
    if (mn.size() > 2 && mn.substr(mn.size() - 2) == ".b") {
        info.suffix = ".b";
        info.mnemonic = mn.substr(0, mn.size() - 2);
    }
    info.operands =
        sp == std::string::npos ? "" : trim(body.substr(sp + 1));
    info.mnemonicPos = text.find(body.substr(0, sp == std::string::npos
                                                     ? body.size()
                                                     : sp),
                                 start);
    return true;
}

/** Replace the mnemonic on one line of the source. */
std::string
mutateSource(const std::string &source, int line_no,
             const std::string &from, const std::string &to)
{
    std::istringstream in(source);
    std::ostringstream out;
    std::string line;
    int n = 0;
    while (std::getline(in, line)) {
        n++;
        if (n == line_no) {
            LineInfo info;
            bespoke_assert(parseLine(line, info));
            size_t pos = info.mnemonicPos;
            line = line.substr(0, pos) + to + line.substr(pos +
                                                          from.size());
        }
        out << line << "\n";
    }
    return out.str();
}

} // namespace

std::vector<Mutant>
generateMutants(const Workload &w)
{
    // Need label addresses to classify branches as forward/backward.
    AsmProgram prog = w.assembleProgram();

    // Map source line -> instruction address (first word emitted).
    std::map<int, uint16_t> line_to_addr;
    for (const auto &[addr, line] : prog.addrToLine) {
        if (!line_to_addr.count(line))
            line_to_addr[line] = addr;
    }

    // Loop regions: [target, jump] spans of backward jumps. A branch
    // inside any loop body is a loop conditional (Type III), matching
    // Milu's C-level classification of loop-condition operators.
    std::vector<std::pair<uint16_t, uint16_t>> loop_regions;
    {
        std::istringstream scan(w.source);
        std::string l;
        int ln = 0;
        while (std::getline(scan, l)) {
            ln++;
            LineInfo info;
            if (!parseLine(l, info))
                continue;
            bool is_jump = info.mnemonic == "jmp" ||
                           kComplement.count(info.mnemonic);
            if (!is_jump)
                continue;
            auto it = line_to_addr.find(ln);
            auto sym = prog.symbols.find(trim(info.operands));
            if (it == line_to_addr.end() || sym == prog.symbols.end())
                continue;
            if (sym->second <= it->second)
                loop_regions.push_back({sym->second, it->second});
        }
    }
    auto in_loop = [&](uint16_t addr) {
        for (auto [lo, hi] : loop_regions) {
            if (addr >= lo && addr <= hi)
                return true;
        }
        return false;
    };

    std::vector<Mutant> mutants;
    std::istringstream in(w.source);
    std::string line;
    int line_no = 0;

    auto add_mutant = [&](MutantType type, int ln,
                          const std::string &from_mn,
                          const std::string &to_mn,
                          const std::string &from_text,
                          const std::string &to_text) {
        Mutant m{type, ln, from_mn, to_mn, w};
        m.workload.name =
            w.name + "-mut" + std::to_string(mutants.size()) + "-" +
            from_mn + "2" + to_mn;
        m.workload.source = mutateSource(w.source, ln, from_text,
                                         to_text);
        mutants.push_back(std::move(m));
    };

    while (std::getline(in, line)) {
        line_no++;
        LineInfo info;
        if (!parseLine(line, info))
            continue;

        const std::string &mn = info.mnemonic;
        bool is_cond_jump = kComplement.count(mn) != 0;
        if (is_cond_jump) {
            bool loop_cond = false;
            auto it = line_to_addr.find(line_no);
            if (it != line_to_addr.end())
                loop_cond = in_loop(it->second);
            MutantType type =
                loop_cond ? MutantType::TypeIII : MutantType::TypeI;
            add_mutant(type, line_no, mn, kComplement.at(mn), mn,
                       kComplement.at(mn));
            if (loop_cond) {
                auto adj = kAdjacent.find(mn);
                if (adj != kAdjacent.end()) {
                    add_mutant(MutantType::TypeIII, line_no, mn,
                               adj->second, mn, adj->second);
                }
            }
            continue;
        }

        auto comp = kComputation.find(mn);
        if (comp != kComputation.end()) {
            add_mutant(MutantType::TypeII, line_no, mn, comp->second,
                       mn + info.suffix, comp->second + info.suffix);
        }
    }
    return mutants;
}

bool
mutantSupported(const ActivityTracker &design_activity,
                const ActivityTracker &mutant_activity)
{
    const Netlist &nl = design_activity.netlist();
    bespoke_assert(&nl == &mutant_activity.netlist(),
                   "activities from different netlists");
    for (GateId i = 0; i < nl.size(); i++) {
        if (cellPseudo(nl.gate(i).type))
            continue;
        if (mutant_activity.toggled(i) && !design_activity.toggled(i))
            return false;
    }
    return true;
}

} // namespace bespoke
