/**
 * @file
 * Mutation engine for the in-field-update study (paper Sec. 5.3,
 * Tables 4/5, Fig. 14). Substitutes for the Milu mutation tool, which
 * operates on C; ours mutates the BSP430 assembly directly with the
 * same three mutant classes:
 *
 *  - Type I: logical conditional-operator mutants — the condition of a
 *    *forward* conditional branch is complemented (if/else logic);
 *  - Type II: computation-operator mutants — an arithmetic/logic
 *    instruction is replaced by a sibling (add->sub, and->bis, ...);
 *  - Type III: loop conditional-operator mutants — the condition of a
 *    *backward* conditional branch is complemented or replaced with an
 *    adjacent relation (i < n -> i != n).
 *
 * A mutant (an emulated in-field bug fix) is "supported" by a bespoke
 * processor iff the gates it can toggle are a subset of the gates the
 * original application can toggle (paper Sec. 3.5).
 */

#ifndef BESPOKE_MUTATION_MUTATION_HH
#define BESPOKE_MUTATION_MUTATION_HH

#include "src/analysis/activity_analysis.hh"
#include "src/workloads/workload.hh"

namespace bespoke
{

enum class MutantType
{
    TypeI,    ///< conditional-operator (forward branch)
    TypeII,   ///< computation-operator
    TypeIII,  ///< loop conditional-operator (backward branch)
};

const char *mutantTypeName(MutantType t);

struct Mutant
{
    MutantType type;
    int sourceLine;       ///< 1-based line in the workload source
    std::string from;     ///< original mnemonic
    std::string to;       ///< replacement mnemonic
    Workload workload;    ///< the mutated program (same input model)
};

/** Generate all mutants of a workload's program. */
std::vector<Mutant> generateMutants(const Workload &w);

/**
 * True iff every gate the mutant can toggle is toggleable by the
 * application set the bespoke design was built for.
 */
bool mutantSupported(const ActivityTracker &design_activity,
                     const ActivityTracker &mutant_activity);

} // namespace bespoke

#endif // BESPOKE_MUTATION_MUTATION_HH
