/**
 * @file
 * Lane-per-mutant concrete differential sweep.
 *
 * The in-field-update study (Tables 4/5) asks a static question — can
 * the bespoke design *host* a mutant — via activity analysis. This
 * sweep asks the complementary dynamic question for the same mutants:
 * does the mutant change observable behavior on concrete inputs, and
 * by how much does it move switching power? Both feed the
 * "mutant_detection" table.
 *
 * The execution shape is the one the batched gate runner was built
 * for: all mutants of one benchmark share the netlist, the workload's
 * input model, and all but a few ROM words. MutantPlanePrep compiles
 * that shared skeleton once — one SocContext (levelized eval program,
 * port resolution) plus the assembled base image — and represents each
 * mutant as a small ROM-word overlay on top of it. The base program
 * runs scalar first (a few halting runs suit the event-driven engine,
 * and their cycle counts size the adaptive cap); then every mutant x
 * input pair runs lane-per-run through one batch, so a handful of
 * plane sweeps evaluates the whole mutant population. Verdicts are
 * bit-identical to running every mutant through the scalar simulator
 * (pinned by tests/test_mutant_lane.cc).
 */

#ifndef BESPOKE_MUTATION_MUTANT_SWEEP_HH
#define BESPOKE_MUTATION_MUTANT_SWEEP_HH

#include "src/mutation/mutation.hh"
#include "src/sim/soc.hh"

namespace bespoke
{

class MutantPlanePrep
{
  public:
    /** One ROM word a mutant changes relative to the base image. */
    struct RomDelta
    {
        uint16_t addr = 0;      ///< byte address of the word
        uint16_t baseWord = 0;  ///< base image contents
        uint16_t mutWord = 0;   ///< mutant image contents
    };

    /**
     * Assemble the base program and every mutant, diff the ROM images
     * into per-mutant overlays, and build the shared simulation
     * context for `netlist`. The mutants' workloads must share the
     * base workload's input model (generateMutants guarantees this).
     */
    MutantPlanePrep(const Netlist &netlist, const Workload &w,
                    const std::vector<Mutant> &mutants);

    const Workload &workload() const { return *w_; }
    const AsmProgram &baseProgram() const { return base_; }
    size_t numMutants() const { return progs_.size(); }
    const AsmProgram &mutantProgram(size_t i) const
    {
        return progs_[i];
    }
    /** ROM words mutant i changes (empty = equivalent image). */
    const std::vector<RomDelta> &overlay(size_t i) const
    {
        return overlays_[i];
    }
    /** Shared levelized eval context, compiled once. */
    const std::shared_ptr<const SocContext> &context() const
    {
        return ctx_;
    }

  private:
    const Workload *w_;
    AsmProgram base_;
    std::vector<AsmProgram> progs_;
    std::vector<std::vector<RomDelta>> overlays_;
    std::shared_ptr<const SocContext> ctx_;
};

/** Dynamic verdict for one mutant across the swept inputs. */
struct MutantVerdict
{
    /**
     * True iff any swept input distinguishes the mutant from the base
     * program on architectural outputs: output words, GPIO word, or
     * halting behavior (exact three-valued equality; cycle counts are
     * deliberately not compared — a mutant that merely reschedules is
     * not an observable behavior change).
     */
    bool detected = false;
    /** Switching-power delta vs. base, percent (default PowerParams). */
    double powerDeltaPct = 0.0;
};

struct MutantSweepOptions
{
    int inputsPerMutant = 4;
    uint64_t seed = 99;
    /** Lane-plane width (0 = resolvePlaneBits default). */
    int planeBits = 0;
    /**
     * Cycle cap per mutant run, replacing the workload's maxCycles.
     * Mutants can loop forever; a cap turns them into exhausted runs,
     * which count as detected when the base halts. 0 (the default)
     * adapts the cap to the measured base runs — half again the
     * longest base halting time plus slack — so a looping mutant is
     * simulated only long enough to prove it outlived the base
     * program.
     */
    uint64_t maxCycles = 0;
    /**
     * Run every mutant through the scalar runWorkloadGate instead of
     * the lane path — the reference the equivalence tests pin the
     * lane verdicts against.
     */
    bool forceScalar = false;
};

/**
 * Sweep every mutant of `prep` against `opts.inputsPerMutant` inputs
 * drawn from the base workload's input model. Returns one verdict per
 * mutant, in prep order. Deterministic in (prep, opts.seed, inputs,
 * maxCycles); independent of planeBits/forceScalar.
 */
std::vector<MutantVerdict> mutantConcreteSweep(
    const MutantPlanePrep &prep, const MutantSweepOptions &opts = {});

} // namespace bespoke

#endif // BESPOKE_MUTATION_MUTANT_SWEEP_HH
