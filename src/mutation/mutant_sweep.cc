#include "src/mutation/mutant_sweep.hh"

#include <algorithm>

#include "src/power/power_model.hh"
#include "src/util/logging.hh"
#include "src/verify/runner.hh"

namespace bespoke
{

MutantPlanePrep::MutantPlanePrep(const Netlist &netlist,
                                 const Workload &w,
                                 const std::vector<Mutant> &mutants)
    : w_(&w), base_(w.assembleProgram()), ctx_(SocContext::make(netlist))
{
    progs_.reserve(mutants.size());
    overlays_.reserve(mutants.size());
    for (const Mutant &m : mutants) {
        AsmProgram prog = m.workload.assembleProgram();
        bespoke_assert(prog.rom.size() == base_.rom.size());
        std::vector<RomDelta> deltas;
        for (size_t off = 0; off + 1 < prog.rom.size(); off += 2) {
            uint16_t bw = static_cast<uint16_t>(
                base_.rom[off] | (base_.rom[off + 1] << 8));
            uint16_t mw = static_cast<uint16_t>(
                prog.rom[off] | (prog.rom[off + 1] << 8));
            if (bw != mw) {
                deltas.push_back(
                    {static_cast<uint16_t>(kRomBase + off), bw, mw});
            }
        }
        progs_.push_back(std::move(prog));
        overlays_.push_back(std::move(deltas));
    }
}

std::vector<MutantVerdict>
mutantConcreteSweep(const MutantPlanePrep &prep,
                    const MutantSweepOptions &opts)
{
    const size_t nmut = prep.numMutants();
    if (nmut == 0)
        return {};
    const Netlist &nl = prep.context()->netlist;
    Workload w = prep.workload();
    if (opts.maxCycles > 0)
        w.maxCycles = opts.maxCycles;

    Rng rng(opts.seed);
    std::vector<WorkloadInput> inputs;
    for (int i = 0; i < opts.inputsPerMutant; i++)
        inputs.push_back(w.genInput(rng));

    // Base runs go scalar first: a handful of halting runs is cheapest
    // on the event-driven engine, they are the detection reference for
    // every mutant, and their halting cycles size the adaptive cap for
    // the mutant batch (a looping mutant only needs to be simulated
    // long enough to prove it outlived the base program).
    ToggleCounter base_toggles(nl);
    std::vector<GateRun> base_runs;
    uint64_t base_max_cycles = 0;
    for (const WorkloadInput &in : inputs) {
        base_runs.push_back(runWorkloadGate(nl, w, prep.baseProgram(),
                                            in, &base_toggles, nullptr,
                                            nullptr, prep.context()));
        base_max_cycles =
            std::max(base_max_cycles, base_runs.back().cycles);
    }
    if (opts.maxCycles == 0) {
        w.maxCycles = std::min(
            w.maxCycles, base_max_cycles + base_max_cycles / 2 + 64);
    }

    // One toggle counter per mutant accumulates across all inputs.
    std::vector<std::unique_ptr<ToggleCounter>> mut_toggles;
    for (size_t i = 0; i < nmut; i++)
        mut_toggles.push_back(std::make_unique<ToggleCounter>(nl));

    // Every mutant x input pair goes through one batch, lane-per-run,
    // mutant-major: each mutant's runs stay consecutive, so its shared
    // counter ingests them in input order — the scalar loop's order.
    std::vector<GateScenario> scenarios;
    scenarios.reserve(nmut * inputs.size());
    for (size_t i = 0; i < nmut; i++) {
        for (const WorkloadInput &in : inputs)
            scenarios.push_back(
                {&prep.mutantProgram(i), &in, mut_toggles[i].get()});
    }

    std::vector<GateRun> runs;
    if (opts.forceScalar) {
        for (const GateScenario &s : scenarios) {
            runs.push_back(runWorkloadGate(nl, w, *s.prog, *s.input,
                                           s.toggles, nullptr, nullptr,
                                           prep.context()));
        }
    } else {
        runs = runScenarioGateBatch(nl, w, scenarios, opts.planeBits,
                                    {}, prep.context());
    }

    std::vector<MutantVerdict> verdicts(nmut);
    for (size_t i = 0; i < nmut; i++) {
        for (size_t j = 0; j < inputs.size(); j++) {
            const GateRun &r = runs[i * inputs.size() + j];
            const GateRun &base = base_runs[j];
            if (r.halted != base.halted || r.gpioOut != base.gpioOut ||
                r.out != base.out)
                verdicts[i].detected = true;
        }
    }

    double base_uw =
        computePower(nl, base_toggles, {}, {}).totalUW();
    for (size_t i = 0; i < nmut; i++) {
        double uw = computePower(nl, *mut_toggles[i], {}, {}).totalUW();
        verdicts[i].powerDeltaPct =
            100.0 * (uw - base_uw) / base_uw;
    }
    return verdicts;
}

} // namespace bespoke
