/**
 * @file
 * Embedded-sensor benchmarks (paper Table 1, from the suite of Zhai et
 * al. [73]): binSearch, div, inSort, intAVG, intFilt, mult, rle, tHold,
 * tea8. All written directly in BSP430 assembly; inputs are read from
 * the RAM input region (X under symbolic analysis) and results written
 * to the output region.
 */

#include "src/workloads/workloads_impl.hh"

namespace bespoke
{

std::string
wrapWorkload(const std::string &body, const std::string &extra)
{
    return "        .equ IN, 0x0300\n"
           "        .equ OUT, 0x0400\n"
           "        .org 0xf000\n"
           "start:  mov #0x0a00, sp\n" +
           body +
           "halt:   jmp halt\n" + extra +
           "        .org 0xfffe\n"
           "        .word start\n";
}

std::vector<Workload>
sensorWorkloads()
{
    std::vector<Workload> w;

    // ------------------------------------------------------------ binSearch
    w.push_back({
        "binSearch",
        "Binary search over a sorted 16-word array",
        wrapWorkload(R"(
        mov &IN+32, r10      ; key
        clr r4               ; lo
        mov #16, r5          ; hi (exclusive)
bsl:    cmp r5, r4
        jge notf             ; lo >= hi -> not found
        mov r4, r6
        add r5, r6
        rra r6               ; mid = (lo+hi)/2
        mov r6, r7
        rla r7
        mov IN(r7), r8       ; a[mid]
        cmp r10, r8
        jeq found
        jl  lower            ; a[mid] < key
        mov r6, r5           ; hi = mid
        jmp bsl
lower:  mov r6, r4
        inc r4               ; lo = mid + 1
        jmp bsl
found:  mov r6, &OUT
        jmp halt
notf:   mov #0xffff, &OUT
)"),
        WorkloadClass::Sensor,
        1,
        [](Rng &rng) {
            WorkloadInput in;
            uint16_t v = 0;
            for (int i = 0; i < 16; i++) {
                v = static_cast<uint16_t>(v + 1 + rng.below(100));
                in.ramWords.push_back(v);
            }
            // Key: half the time an element, half random.
            uint16_t key = rng.chance(1, 2)
                               ? in.ramWords[rng.below(16)]
                               : rng.word() & 0x7fff;
            in.ramWords.push_back(key);
            return in;
        },
        8000,
    });

    // ------------------------------------------------------------------ div
    w.push_back({
        "div",
        "Unsigned 16/16 restoring division",
        wrapWorkload(R"(
        mov &IN, r4          ; dividend
        mov &IN+2, r5        ; divisor
        clr r6               ; remainder
        clr r7               ; quotient
        mov #16, r8
dvl:    rla r4
        rlc r6
        rla r7
        cmp r5, r6
        jlo dskip            ; rem < divisor
        sub r5, r6
        bis #1, r7
dskip:  dec r8
        jnz dvl
        mov r7, &OUT
        mov r6, &OUT+2
)"),
        WorkloadClass::Sensor,
        2,
        [](Rng &rng) {
            WorkloadInput in;
            in.ramWords.push_back(rng.word());
            in.ramWords.push_back(
                static_cast<uint16_t>(1 + rng.below(0xfffe)));
            return in;
        },
        4000,
    });

    // --------------------------------------------------------------- inSort
    w.push_back({
        "inSort",
        "In-place insertion sort of 12 signed words",
        wrapWorkload(R"(
        mov #1, r4           ; i
outer:  cmp #12, r4
        jge copy
        mov r4, r5
        rla r5
        mov IN(r5), r10      ; key
        mov r4, r6           ; j
inner:  tst r6
        jz  place
        mov r6, r7
        rla r7
        mov IN-2(r7), r8     ; a[j-1]
        cmp r10, r8
        jl  place            ; a[j-1] < key -> stop shifting
        mov r8, IN(r7)
        dec r6
        jmp inner
place:  mov r6, r7
        rla r7
        mov r10, IN(r7)
        inc r4
        jmp outer
copy:   clr r4
cpl:    mov r4, r5
        rla r5
        mov IN(r5), OUT(r5)
        inc r4
        cmp #12, r4
        jnz cpl
)"),
        WorkloadClass::Sensor,
        12,
        [](Rng &rng) {
            WorkloadInput in;
            for (int i = 0; i < 12; i++)
                in.ramWords.push_back(rng.word());
            return in;
        },
        30000,
    });

    // --------------------------------------------------------------- intAVG
    w.push_back({
        "intAVG",
        "Signed 32-bit-accumulate average of 16 words",
        wrapWorkload(R"(
        clr r4               ; sum lo
        clr r5               ; sum hi
        clr r6               ; i
avl:    mov r6, r7
        rla r7
        mov IN(r7), r8
        clr r9
        tst r8
        jge pos
        mov #0xffff, r9      ; sign extension
pos:    add r8, r4
        addc r9, r5
        inc r6
        cmp #16, r6
        jnz avl
        mov #4, r7           ; >>4 (divide by 16, arithmetic)
shr:    rra r5
        rrc r4
        dec r7
        jnz shr
        mov r4, &OUT
        mov r5, &OUT+2
)"),
        WorkloadClass::Sensor,
        2,
        [](Rng &rng) {
            WorkloadInput in;
            for (int i = 0; i < 16; i++)
                in.ramWords.push_back(rng.word());
            return in;
        },
        6000,
    });

    // -------------------------------------------------------------- intFilt
    // Constant coefficients load the multiplier's op1 register with
    // fixed values, which is exactly the paper's observation that the
    // binary constrains ~half the multiplier gates.
    w.push_back({
        "intFilt",
        "4-tap signed FIR filter with constant coefficients",
        wrapWorkload(R"(
        clr r4               ; n
fl:     clr r10              ; acc lo
        clr r11              ; acc hi
        mov r4, r5
        rla r5
        mov #5, &0x0132      ; MPYS = c0
        mov IN(r5), &0x0134
        add &0x0136, r10
        addc &0x0138, r11
        mov #9, &0x0132      ; c1
        mov IN+2(r5), &0x0134
        add &0x0136, r10
        addc &0x0138, r11
        mov #13, &0x0132     ; c2
        mov IN+4(r5), &0x0134
        add &0x0136, r10
        addc &0x0138, r11
        mov #7, &0x0132      ; c3
        mov IN+6(r5), &0x0134
        add &0x0136, r10
        addc &0x0138, r11
        mov #3, r7           ; y = acc >> 3
fsh:    rra r11
        rrc r10
        dec r7
        jnz fsh
        mov r10, OUT(r5)
        inc r4
        cmp #13, r4
        jnz fl
)"),
        WorkloadClass::Sensor,
        13,
        [](Rng &rng) {
            WorkloadInput in;
            for (int i = 0; i < 16; i++)
                in.ramWords.push_back(rng.word());
            return in;
        },
        60000,
    });

    // ----------------------------------------------------------------- mult
    w.push_back({
        "mult",
        "Unsigned multiplication of 4 word pairs (HW multiplier)",
        wrapWorkload(R"(
        clr r4
        clr r9
ml:     mov r4, r5
        rla r5
        mov IN(r5), &0x0130  ; MPY (unsigned)
        mov IN+8(r5), &0x0134
        mov &0x0136, OUT(r5)
        mov &0x0138, r7
        add r7, r9
        inc r4
        cmp #4, r4
        jnz ml
        mov r9, &OUT+8
)"),
        WorkloadClass::Sensor,
        5,
        [](Rng &rng) {
            WorkloadInput in;
            for (int i = 0; i < 8; i++)
                in.ramWords.push_back(rng.word());
            return in;
        },
        4000,
    });

    // ------------------------------------------------------------------ rle
    w.push_back({
        "rle",
        "Run-length encoder over 16 bytes",
        wrapWorkload(R"(
        mov #IN, r4          ; src
        mov #OUT, r5         ; dst
        mov #IN+16, r11      ; end
        mov.b @r4+, r6       ; current value
        mov.b #1, r7         ; run count
rl:     cmp r11, r4
        jeq flush
        mov.b @r4+, r8
        cmp.b r8, r6
        jne emit
        inc.b r7
        jmp rl
emit:   mov.b r7, 0(r5)
        mov.b r6, 1(r5)
        incd r5
        mov.b r8, r6
        mov.b #1, r7
        jmp rl
flush:  mov.b r7, 0(r5)
        mov.b r6, 1(r5)
        incd r5
        mov.b #0, 0(r5)      ; terminator
)"),
        WorkloadClass::Sensor,
        8,
        [](Rng &rng) {
            WorkloadInput in;
            // Bytes with runs: few distinct values, repeated.
            uint8_t cur = static_cast<uint8_t>(rng.below(4));
            std::vector<uint8_t> bytes;
            while (bytes.size() < 16) {
                int run = 1 + static_cast<int>(rng.below(5));
                for (int i = 0; i < run && bytes.size() < 16; i++)
                    bytes.push_back(cur);
                cur = static_cast<uint8_t>(rng.below(4));
            }
            for (int i = 0; i < 16; i += 2) {
                in.ramWords.push_back(static_cast<uint16_t>(
                    bytes[i] | (bytes[i + 1] << 8)));
            }
            return in;
        },
        20000,
    });

    // ---------------------------------------------------------------- tHold
    w.push_back({
        "tHold",
        "Digital threshold detector with crossing counter",
        wrapWorkload(R"(
        mov &0x0000, r10     ; threshold from P1IN
        clr r4               ; i
        clr r5               ; samples above
        clr r6               ; crossings
        clr r7               ; previous above?
tl:     mov r4, r8
        rla r8
        mov IN(r8), r9
        cmp r10, r9
        jl  below
        inc r5
        tst r7
        jnz tnext
        inc r6
        mov #1, r7
        jmp tnext
below:  clr r7
tnext:  inc r4
        cmp #16, r4
        jnz tl
        mov r5, &OUT
        mov r6, &OUT+2
        mov r6, &0x0002      ; P1OUT
)"),
        WorkloadClass::Sensor,
        2,
        [](Rng &rng) {
            WorkloadInput in;
            for (int i = 0; i < 16; i++)
                in.ramWords.push_back(rng.below(1000));
            in.gpioIn = static_cast<uint16_t>(rng.below(1000));
            return in;
        },
        15000,
    });

    // ----------------------------------------------------------------- tea8
    // TEA encryption, 4 rounds, 32-bit arithmetic on a 16-bit core.
    // v0 = (r4:lo, r5:hi), v1 = (r6, r7), sum = (r8, r9),
    // t = (r10, r11), u = (r12, r13).
    w.push_back({
        "tea8",
        "TEA block encryption (32-bit ops on 16-bit datapath)",
        wrapWorkload(R"(
        .equ K0L, 0x2b7e
        .equ K0H, 0x1516
        .equ K1L, 0x28ae
        .equ K1H, 0xd2a6
        .equ K2L, 0xabf7
        .equ K2H, 0x1588
        .equ K3L, 0x09cf
        .equ K3H, 0x4f3c
        mov &IN, r4
        mov &IN+2, r5
        mov &IN+4, r6
        mov &IN+6, r7
        clr r8
        clr r9
        mov #4, r15          ; rounds
round:  add #0x79b9, r8      ; sum += delta
        addc #0x9e37, r9
        ; --- v0 += ((v1<<4)+k0) ^ (v1+sum) ^ ((v1>>5)+k1)
        mov r6, r10          ; t = v1
        mov r7, r11
        rla r10
        rlc r11
        rla r10
        rlc r11
        rla r10
        rlc r11
        rla r10
        rlc r11              ; t = v1 << 4
        add #K0L, r10
        addc #K0H, r11       ; t += k0
        mov r6, r12          ; u = v1
        mov r7, r13
        add r8, r12
        addc r9, r13         ; u += sum
        xor r12, r10
        xor r13, r11         ; t ^= u
        mov r6, r12          ; u = v1
        mov r7, r13
        clrc
        rrc r13
        rrc r12
        clrc
        rrc r13
        rrc r12
        clrc
        rrc r13
        rrc r12
        clrc
        rrc r13
        rrc r12
        clrc
        rrc r13
        rrc r12              ; u = v1 >> 5 (logical)
        add #K1L, r12
        addc #K1H, r13       ; u += k1
        xor r12, r10
        xor r13, r11
        add r10, r4
        addc r11, r5         ; v0 += t
        ; --- v1 += ((v0<<4)+k2) ^ (v0+sum) ^ ((v0>>5)+k3)
        mov r4, r10
        mov r5, r11
        rla r10
        rlc r11
        rla r10
        rlc r11
        rla r10
        rlc r11
        rla r10
        rlc r11
        add #K2L, r10
        addc #K2H, r11
        mov r4, r12
        mov r5, r13
        add r8, r12
        addc r9, r13
        xor r12, r10
        xor r13, r11
        mov r4, r12
        mov r5, r13
        clrc
        rrc r13
        rrc r12
        clrc
        rrc r13
        rrc r12
        clrc
        rrc r13
        rrc r12
        clrc
        rrc r13
        rrc r12
        clrc
        rrc r13
        rrc r12
        add #K3L, r12
        addc #K3H, r13
        xor r12, r10
        xor r13, r11
        add r10, r6
        addc r11, r7         ; v1 += t
        dec r15
        jnz round
        mov r4, &OUT
        mov r5, &OUT+2
        mov r6, &OUT+4
        mov r7, &OUT+6
)"),
        WorkloadClass::Sensor,
        4,
        [](Rng &rng) {
            WorkloadInput in;
            for (int i = 0; i < 4; i++)
                in.ramWords.push_back(rng.word());
            return in;
        },
        8000,
    });

    return w;
}

} // namespace bespoke
