/**
 * @file
 * Workloads for the extended core configuration (timer + UART
 * peripherals, CpuConfig::extended()). These demonstrate that the
 * bespoke flow scales to richer IP: more over-provisioned peripherals
 * mean more gates to strip for applications that don't use them, and
 * the peripherals themselves are fully exercised by these workloads.
 */

#include "src/workloads/workloads_impl.hh"

namespace bespoke
{

std::vector<Workload>
extCoreWorkloads()
{
    std::vector<Workload> w;

    // --------------------------------------------------------------- uartTx
    // Transmits 6 bytes with busy polling and checksums them. The ISS
    // models the UART as always-ready, so the final architectural
    // state matches the gate level even though the poll loops run for
    // different counts (no architectural side effects inside them).
    w.push_back({
        "uartTx",
        "UART transmission of 6 bytes with busy polling",
        wrapWorkload(R"(
        mov #1, &0x0050      ; UCTL: enable transmitter
        clr r6               ; checksum
        clr r4
utx:    mov r4, r5
        rla r5
        mov IN(r5), r7
        and #0xff, r7
        add r7, r6
        mov r7, &0x0052      ; UTXBUF: start transmission
uwait:  bit #0x0100, &0x0050 ; busy?
        jnz uwait
        inc r4
        cmp #6, r4
        jnz utx
        mov r6, &OUT
        mov &0x0052, r8      ; last byte readback
        mov r8, &OUT+2
)"),
        WorkloadClass::Extra,
        2,
        [](Rng &rng) {
            WorkloadInput in;
            for (int i = 0; i < 6; i++)
                in.ramWords.push_back(rng.below(256));
            return in;
        },
        20000,
    });

    // ------------------------------------------------------------ timerTick
    // Waits for three timer compare events by polling the sticky flag,
    // counting them and reporting the final counter value. Depends on
    // cycle-accurate timer behavior -> gate-level verification only.
    Workload timer_tick{
        "timerTick",
        "Timer compare polling, three events",
        wrapWorkload(R"(
        mov &IN, r7
        and #0x3f, r7
        add #20, r7          ; period 20..83 cycles
        mov r7, &0x0044      ; TACCR
        mov #0x0c, &0x0040   ; clear counter + flag
        mov #1, &0x0040      ; enable
        clr r6
ttl:    bit #0x0100, &0x0040 ; compare flag set?
        jz  ttl
        mov #0x09, &0x0040   ; keep enabled, clear flag
        inc r6
        cmp #3, r6
        jnz ttl
        mov r6, &OUT
        mov &0x0044, r8
        mov r8, &OUT+2
)"),
        WorkloadClass::Extra,
        2,
        [](Rng &rng) {
            WorkloadInput in;
            in.ramWords.push_back(rng.word());
            return in;
        },
        60000,
    };
    timer_tick.issComparable = false;
    w.push_back(std::move(timer_tick));

    return w;
}

} // namespace bespoke
