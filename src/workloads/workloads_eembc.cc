/**
 * @file
 * EEMBC-style kernels (paper Table 1): FFT, Viterbi, convEn, autocorr.
 * The originals are proprietary; these are functionally equivalent
 * fixed-point kernels written for BSP430 (see DESIGN.md substitutions).
 */

#include "src/workloads/workloads_impl.hh"

namespace bespoke
{

std::vector<Workload>
eembcWorkloads()
{
    std::vector<Workload> w;

    // ------------------------------------------------------------------ FFT
    // 8-point in-place radix-2 DIT FFT, Q8 twiddles, HW multiplier.
    // XR at IN..IN+15, XI at IN+16..IN+31; butterfly schedule in ROM.
    w.push_back({
        "FFT",
        "8-point fixed-point FFT (Q8, signed HW multiplier)",
        wrapWorkload(R"(
        ; bit-reversal swaps (1,4) and (3,6), real and imaginary
        mov &IN+2, r10
        mov &IN+8, r11
        mov r11, &IN+2
        mov r10, &IN+8
        mov &IN+18, r10
        mov &IN+24, r11
        mov r11, &IN+18
        mov r10, &IN+24
        mov &IN+6, r10
        mov &IN+12, r11
        mov r11, &IN+6
        mov r10, &IN+12
        mov &IN+22, r10
        mov &IN+28, r11
        mov r11, &IN+22
        mov r10, &IN+28
        mov #sched, r15
floop:  mov @r15+, r12       ; a offset
        cmp #0xffff, r12
        jeq fdone
        mov @r15+, r13       ; b offset
        mov @r15+, r14       ; twiddle offset
        call #bfly
        jmp floop
fdone:  clr r4               ; copy 16 result words to OUT
fcp:    mov r4, r5
        rla r5
        mov IN(r5), OUT(r5)
        inc r4
        cmp #16, r4
        jnz fcp
        jmp halt

        ; butterfly: t = W * x[b]; x[b] = x[a]-t; x[a] += t
bfly:   mov tw(r14), &0x0132     ; MPYS = wr
        mov IN(r13), &0x0134     ; xr[b]
        call #p16
        mov r10, r8              ; tr = wr*xr
        mov tw+2(r14), &0x0132   ; wi
        mov IN+16(r13), &0x0134  ; xi[b]
        call #p16
        sub r10, r8              ; tr -= wi*xi
        mov tw(r14), &0x0132
        mov IN+16(r13), &0x0134
        call #p16
        mov r10, r9              ; ti = wr*xi
        mov tw+2(r14), &0x0132
        mov IN(r13), &0x0134
        call #p16
        add r10, r9              ; ti += wi*xr
        mov IN(r12), r10
        mov r10, r11
        sub r8, r10
        mov r10, IN(r13)
        add r8, r11
        mov r11, IN(r12)
        mov IN+16(r12), r10
        mov r10, r11
        sub r9, r10
        mov r10, IN+16(r13)
        add r9, r11
        mov r11, IN+16(r12)
        ret

        ; p16: r10 = (RESHI:RESLO) >> 8 (Q8 product scaling)
p16:    mov &0x0136, r10
        swpb r10
        and #0x00ff, r10
        mov &0x0138, r11
        swpb r11
        and #0xff00, r11
        bis r11, r10
        ret

        ; (a, b, twiddle) byte offsets; 0xffff terminates
sched:  .word 0, 2, 0
        .word 4, 6, 0
        .word 8, 10, 0
        .word 12, 14, 0
        .word 0, 4, 0
        .word 2, 6, 8
        .word 8, 12, 0
        .word 10, 14, 8
        .word 0, 8, 0
        .word 2, 10, 4
        .word 4, 12, 8
        .word 6, 14, 12
        .word 0xffff
        ; W8^k, Q8: (cos, -sin) for k = 0..3
tw:     .word 256, 0
        .word 181, -181
        .word 0, -256
        .word -181, -181
)"),
        WorkloadClass::Eembc,
        16,
        [](Rng &rng) {
            WorkloadInput in;
            // Small signed samples keep Q8 products in range.
            for (int i = 0; i < 16; i++) {
                in.ramWords.push_back(static_cast<uint16_t>(
                    static_cast<int16_t>(rng.range(-1000, 1000))));
            }
            return in;
        },
        120000,
    });

    // -------------------------------------------------------------- Viterbi
    // Hard-decision Viterbi decoder, K=3 rate-1/2, 8 steps, 4 states.
    // Path metrics at 0x0500/0x0510, survivors at 0x0520.
    w.push_back({
        "viterbi",
        "Hard-decision Viterbi decoder (K=3, rate 1/2, 8 steps)",
        wrapWorkload(R"(
        .equ PM, 0x0500
        .equ PMN, 0x0510
        .equ SURV, 0x0520
        ; init: PM[0]=0, others large
        clr &PM
        mov #100, &PM+2
        mov #100, &PM+4
        mov #100, &PM+6
        clr r4               ; t
step:   mov r4, r5
        rla r5
        mov IN(r5), r10
        and #3, r10          ; received symbol
        clr r11              ; survivor bits for this step
        clr r5               ; ns
nsl:    mov r5, r6
        rra r6               ; p0 = ns >> 1
        ; branch metric from p0
        mov r5, r7
        and #1, r7           ; b = ns & 1
        mov r6, r8
        rla r8               ; exp index = (s*2 + b) * 2 bytes
        add r7, r8
        rla r8
        mov expt(r8), r9
        xor r10, r9
        rla r9
        mov hamt(r9), r9     ; ham(rcv ^ exp[p0][b])
        mov r6, r8
        rla r8
        add PM(r8), r9       ; m0
        ; branch metric from p1 = p0 + 2
        mov r6, r8
        add #2, r8
        rla r8               ; index (s*2+b)*2 with s = p0+2
        add r7, r8
        rla r8
        mov expt(r8), r12
        xor r10, r12
        rla r12
        mov hamt(r12), r12
        mov r6, r8
        add #2, r8
        rla r8
        add PM(r8), r12      ; m1
        cmp r9, r12          ; m1 - m0
        jge keep0            ; m1 >= m0 -> keep pred p0
        ; survivor = 1 (pred p0+2)
        mov r5, r8
        rla r8
        mov r12, PMN(r8)
        mov #1, r12
        mov r5, r13
        tst r13
        jz  sb0
ssh:    rla r12
        dec r13
        jnz ssh
sb0:    bis r12, r11
        jmp nsnext
keep0:  mov r5, r8
        rla r8
        mov r9, PMN(r8)
nsnext: inc r5
        cmp #4, r5
        jnz nsl
        ; store survivors, copy PMN -> PM
        mov r4, r8
        rla r8
        mov r11, SURV(r8)
        mov &PMN, &PM
        mov &PMN+2, &PM+2
        mov &PMN+4, &PM+4
        mov &PMN+6, &PM+6
        inc r4
        cmp #8, r4
        jnz step
        ; traceback from argmin state
        clr r5               ; best state
        mov &PM, r6
        mov #1, r7
argl:   mov r7, r8
        rla r8
        mov PM(r8), r9
        cmp r6, r9           ; PM[s] - best
        jge argn
        mov r9, r6
        mov r7, r5
argn:   inc r7
        cmp #4, r7
        jnz argl
        clr r9               ; decoded bits
        mov #7, r4           ; t = 7 .. 0
tb:     mov r4, r8
        rla r8
        mov SURV(r8), r10
        ; decoded bit (input at step t) = state & 1; step t carries
        ; data bit (7 - t) (msb transmitted first)
        mov r5, r11
        and #1, r11
        mov #7, r12
        sub r4, r12
        tst r12
        jz  ins
insl:   rla r11
        dec r12
        jnz insl
ins:    bis r11, r9
        ; survivor bit for current state
        mov r5, r12
        tst r12
        jz  sv0
svl:    rra r10
        dec r12
        jnz svl
sv0:    and #1, r10          ; 1 -> pred = (s>>1)+2
        mov r5, r6
        rra r6               ; pred low bit = state >> 1
        tst r10
        jz  nopl
        add #2, r6
nopl:   mov r6, r5
        dec r4
        cmp #0xffff, r4
        jnz tb
        mov r9, &OUT
        mov &PM, r10
        mov r5, &OUT+2       ; initial state (should be 0)
halt2:  jmp halt
        ; expected encoder output per (state, bit): g0g1
expt:   .word 0              ; s=0 b=0 -> 00
        .word 3              ; s=0 b=1 -> 11
        .word 2              ; s=1 b=0 -> 10  (g0=1,g1=0 -> 0b10)
        .word 1              ; s=1 b=1
        .word 3              ; s=2 b=0
        .word 0              ; s=2 b=1
        .word 1              ; s=3 b=0
        .word 2              ; s=3 b=1
hamt:   .word 0
        .word 1
        .word 1
        .word 2
)"),
        WorkloadClass::Eembc,
        2,
        [](Rng &rng) {
            WorkloadInput in;
            // Encode a random byte with the K=3 (7,5) code, then
            // optionally flip one bit (noise).
            uint8_t data = static_cast<uint8_t>(rng.word());
            int state = 0;
            std::vector<uint16_t> syms;
            for (int i = 7; i >= 0; i--) {
                int bit = (data >> i) & 1;
                int reg = ((state << 1) | bit) & 7;
                int g0 = ((reg >> 2) ^ (reg >> 1) ^ reg) & 1;
                int g1 = ((reg >> 2) ^ reg) & 1;
                syms.push_back(static_cast<uint16_t>((g0 << 1) | g1));
                state = reg & 3;
            }
            if (rng.chance(1, 3)) {
                syms[rng.below(8)] ^= static_cast<uint16_t>(
                    1u << rng.below(2));
            }
            in.ramWords = syms;
            return in;
        },
        250000,
    });

    // --------------------------------------------------------------- convEn
    w.push_back({
        "convEn",
        "Convolutional encoder K=3 (7,5) over 16 input bits",
        wrapWorkload(R"(
        mov &IN, r4          ; data word (msb first)
        clr r5               ; encoder state
        clr r6               ; output stream lo
        clr r7               ; output stream hi
        mov #16, r8
cl:     rla r4
        rlc r5
        and #7, r5
        mov r5, r9           ; g0 = b0^b1^b2
        mov r5, r10
        rra r10
        xor r10, r9
        rra r10
        xor r10, r9
        and #1, r9
        mov r5, r10          ; g1 = b0^b2
        bic #2, r10
        mov r10, r11
        rra r11
        rra r11
        xor r11, r10
        and #1, r10
        rla r6
        rlc r7
        bis r9, r6
        rla r6
        rlc r7
        bis r10, r6
        dec r8
        jnz cl
        mov r6, &OUT
        mov r7, &OUT+2
)"),
        WorkloadClass::Eembc,
        2,
        [](Rng &rng) {
            WorkloadInput in;
            in.ramWords.push_back(rng.word());
            return in;
        },
        25000,
    });

    // ------------------------------------------------------------- autocorr
    w.push_back({
        "autocorr",
        "Autocorrelation of 12 signed samples, lags 0..3",
        wrapWorkload(R"(
        clr r4               ; k
akl:    clr r10              ; acc lo
        clr r11              ; acc hi
        clr r5               ; i
ail:    mov r5, r6
        rla r6
        mov IN(r6), &0x0132  ; MPYS = x[i]
        mov r4, r7
        add r5, r7
        rla r7
        mov IN(r7), &0x0134  ; OP2 = x[i+k]
        add &0x0136, r10
        addc &0x0138, r11
        inc r5
        mov #12, r8
        sub r4, r8
        cmp r8, r5
        jnz ail
        mov r4, r6
        rla r6
        rla r6
        mov r10, OUT(r6)
        mov r11, OUT+2(r6)
        inc r4
        cmp #4, r4
        jnz akl
)"),
        WorkloadClass::Eembc,
        8,
        [](Rng &rng) {
            WorkloadInput in;
            for (int i = 0; i < 12; i++) {
                in.ramWords.push_back(static_cast<uint16_t>(
                    static_cast<int16_t>(rng.range(-5000, 5000))));
            }
            return in;
        },
        100000,
    });

    return w;
}

} // namespace bespoke
