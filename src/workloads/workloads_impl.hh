/**
 * @file
 * Internal interface between the workload registry and the per-suite
 * implementation files.
 */

#ifndef BESPOKE_WORKLOADS_WORKLOADS_IMPL_HH
#define BESPOKE_WORKLOADS_WORKLOADS_IMPL_HH

#include "src/workloads/workload.hh"

namespace bespoke
{

/** Standard prologue/epilogue wrapper (IN/OUT equs, SP init, vectors). */
std::string wrapWorkload(const std::string &body,
                         const std::string &extra = "");

std::vector<Workload> sensorWorkloads();
std::vector<Workload> eembcWorkloads();
std::vector<Workload> unitWorkloads();
std::vector<Workload> methodologyWorkloads();
std::vector<Workload> extCoreWorkloads();

} // namespace bespoke

#endif // BESPOKE_WORKLOADS_WORKLOADS_IMPL_HH
