/**
 * @file
 * Benchmark workload registry (paper Table 1).
 *
 * Each workload is a BSP430 assembly program plus an input model.
 * Application inputs live in a RAM region (and optionally the GPIO
 * input port): the symbolic activity analysis starts RAM and pins at X,
 * so "inputs" are automatically all-possible-values; concrete runs
 * (profiling, Fig. 2; input-based verification, Table 3) generate
 * values with the per-workload generator and poke them into RAM before
 * releasing reset.
 *
 * Conventions shared by all workloads:
 *  - inputs at 0x0300.., outputs at 0x0400.., stack top at 0x0a00
 *  - programs terminate with the `jmp .` halt idiom
 */

#ifndef BESPOKE_WORKLOADS_WORKLOAD_HH
#define BESPOKE_WORKLOADS_WORKLOAD_HH

#include <functional>
#include <string>
#include <vector>

#include "src/isa/assembler.hh"
#include "src/util/rng.hh"

namespace bespoke
{

/** RAM input base shared by the workload sources. */
constexpr uint16_t kInputBase = 0x0300;
/** RAM output base shared by the workload sources. */
constexpr uint16_t kOutputBase = 0x0400;

/** One concrete input assignment for a workload. */
struct WorkloadInput
{
    std::vector<uint16_t> ramWords;  ///< written at kInputBase
    uint16_t gpioIn = 0;
    /** Additional (address, value) RAM pokes outside the input region. */
    std::vector<std::pair<uint16_t, uint16_t>> extraRam;
};

/** Benchmark category, mirroring the paper's grouping. */
enum class WorkloadClass
{
    Sensor,   ///< embedded sensor benchmarks
    Eembc,    ///< EEMBC-style kernels
    Unit,     ///< processor unit tests (irq, dbg)
    Extra,    ///< methodology workloads (scrambled, subneg, OS)
};

struct Workload
{
    std::string name;
    std::string description;
    std::string source;
    WorkloadClass cls = WorkloadClass::Sensor;
    /** Number of output words (at kOutputBase) checked by verification. */
    int outputWords = 0;
    /** Generate one concrete input assignment. */
    std::function<WorkloadInput(Rng &)> genInput;
    /** Cycle guard for gate-level runs. */
    uint64_t maxCycles = 400000;
    /** Whether the workload arms the external interrupt during runs. */
    bool usesIrq = false;
    /**
     * False for workloads whose final state depends on cycle-accurate
     * peripheral behavior the ISS does not model (e.g. timer polling);
     * such workloads are verified at gate level only.
     */
    bool issComparable = true;

    /** Assemble (cached per call site; assembling is cheap). */
    AsmProgram assembleProgram() const
    {
        return assemble(source, name);
    }
};

/** The paper's benchmark suite (Table 1): 15 workloads. */
const std::vector<Workload> &workloads();

/** Extra methodology workloads (scrambled-intFilt, subneg, minios). */
const std::vector<Workload> &extraWorkloads();

/** Workloads requiring the extended core (timer/UART peripherals). */
const std::vector<Workload> &extendedWorkloads();

/** Look up a workload by name across both sets; fatal if missing. */
const Workload &workloadByName(const std::string &name);

/** Like workloadByName(), but returns null instead of dying. */
const Workload *findWorkload(const std::string &name);

} // namespace bespoke

#endif // BESPOKE_WORKLOADS_WORKLOAD_HH
