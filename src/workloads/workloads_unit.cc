/**
 * @file
 * Processor unit-test workloads (paper Table 1: irq, dbg) and the
 * methodology workloads: scrambled-intFilt (Fig. 4), the subneg
 * Turing-complete interpreter (Sec. 3.5/5.3), and minios, the
 * FreeRTOS-like cooperative kernel (Sec. 5.4).
 */

#include "src/workloads/workloads_impl.hh"

#include "src/util/logging.hh"

namespace bespoke
{

std::vector<Workload>
unitWorkloads()
{
    std::vector<Workload> w;

    // ------------------------------------------------------------------ irq
    // Exercises interrupt accept/return hardware. The external IRQ line
    // is X during symbolic analysis, so every cycle with GIE set forks.
    w.push_back({
        "irq",
        "External interrupt unit test (IE/IFG/GIE/RETI)",
        wrapWorkload(R"(
        mov #1, &0x0004      ; IE = external
        clr r10
        eint
        clr r5
wl:     inc r5
        cmp #40, r5
        jnz wl
        dint
        mov r10, &OUT
        mov r5, &OUT+2
)",
                     R"(
isr:    inc r10
        mov r10, &0x0002     ; pulse P1OUT
        reti
        .org 0xfff8
        .word isr
)"),
        WorkloadClass::Unit,
        2,
        [](Rng &rng) {
            WorkloadInput in;
            in.gpioIn = rng.word();
            return in;
        },
        20000,
        /*usesIrq=*/true,
    });

    // ------------------------------------------------------------------ dbg
    w.push_back({
        "dbg",
        "Debug unit test (watchpoint counter, capture register)",
        wrapWorkload(R"(
        mov #0x0440, &0x0032 ; DBGADDR
        mov #3, &0x0030      ; enable + clear counter
        mov &IN, r9
        clr r4
dl:     mov r4, r5
        add r9, r5
        mov r5, &0x0440      ; watched write
        mov &0x0440, r6      ; watched read
        mov r6, &0x0442      ; unwatched write
        inc r4
        cmp #8, r4
        jnz dl
        mov &0x0030, r7
        swpb r7
        and #0xff, r7        ; event count
        mov r7, &OUT
        mov &0x0034, &OUT+2  ; captured data
        mov &0x0020, r8      ; read CLKCTL too
        mov #0x05, &0x0020   ; program clock divider
        mov r8, &OUT+4
)"),
        WorkloadClass::Unit,
        3,
        [](Rng &rng) {
            WorkloadInput in;
            in.ramWords.push_back(rng.word());
            return in;
        },
        20000,
    });

    return w;
}

std::vector<Workload>
methodologyWorkloads()
{
    std::vector<Workload> w;

    // ---------------------------------------------------- scrambled intFilt
    // Same instruction mix as intFilt (same opcodes, same addressing
    // modes, same constants) but with taps computed in a different
    // order and different register assignment: paper Fig. 4 shows that
    // even identical instruction sets exercise different gates.
    w.push_back({
        "intFilt-scrambled",
        "intFilt with reordered computation (paper Fig. 4)",
        wrapWorkload(R"(
        clr r6               ; n
sfl:    clr r12              ; acc lo
        clr r13              ; acc hi
        mov r6, r9
        rla r9
        mov #7, &0x0132      ; c3 first
        mov IN+6(r9), &0x0134
        add &0x0136, r12
        addc &0x0138, r13
        mov #13, &0x0132
        mov IN+4(r9), &0x0134
        add &0x0136, r12
        addc &0x0138, r13
        mov #9, &0x0132
        mov IN+2(r9), &0x0134
        add &0x0136, r12
        addc &0x0138, r13
        mov #5, &0x0132
        mov IN(r9), &0x0134
        add &0x0136, r12
        addc &0x0138, r13
        mov #3, r5
ssh:    rra r13
        rrc r12
        dec r5
        jnz ssh
        mov r12, OUT(r9)
        inc r6
        cmp #13, r6
        jnz sfl
)"),
        WorkloadClass::Extra,
        13,
        [](Rng &rng) {
            WorkloadInput in;
            for (int i = 0; i < 16; i++)
                in.ramWords.push_back(rng.word());
            return in;
        },
        60000,
    });

    // --------------------------------------------------------------- subneg
    // Turing-complete update support (paper Sec. 3.5): an interpreter
    // for the subneg one-instruction machine whose program lives in RAM
    // (all X under analysis). Any future in-field update compiled to
    // subneg is therefore guaranteed supported by a bespoke processor
    // co-analyzed with this binary.
    w.push_back({
        "subneg",
        "subneg one-instruction interpreter (Turing-complete updates)",
        wrapWorkload(R"(
        ; The interpreter sandboxes every subneg address into the
        ; 1 KiB window 0x0400..0x07fe (word aligned) with AND/BIS so
        ; the region bits stay *known* under symbolic analysis:
        ; Turing-complete update support without granting updates
        ; access to the peripheral space.
        .equ PROG, 0x0480
snl0:   mov #PROG, r4        ; subneg instruction pointer
snl:    mov @r4+, r5         ; a
        and #0x03fe, r5
        bis #0x0400, r5
        mov @r4+, r6         ; b
        cmp #0xffff, r6
        jeq halt             ; b == -1 terminates
        and #0x03fe, r6
        bis #0x0400, r6
        mov @r4+, r7         ; c
        and #0x03fe, r7
        bis #0x0400, r7
        mov @r5, r8          ; mem[a]
        mov @r6, r9
        sub r8, r9           ; mem[b] -= mem[a]
        mov r9, 0(r6)
        jge snl              ; result >= 0: fall through
        mov r7, r4           ; result < 0: goto c
        jmp snl
)"),
        WorkloadClass::Extra,
        0,
        [](Rng &rng) {
            // A concrete subneg program: decrement a counter to below
            // zero, looping via an always-negative scratch cell, then
            // halt via the b == -1 sentinel.
            // The sandbox map (v & 0x3fe) | 0x400 is the identity for
            // addresses inside the window, so operands are stored as
            // plain addresses. Data cells at 0x5c0.., code at 0x480..
            WorkloadInput in;
            uint16_t count = static_cast<uint16_t>(1 + rng.below(6));
            in.extraRam = {
                // I0 @0x480: mem[count] -= mem[one]; if <0 goto I2
                {0x0480, 0x05c2}, {0x0482, 0x05c0}, {0x0484, 0x048c},
                // I1 @0x486: mem[negone] -= mem[zero]; always <0,
                // loops back to I0
                {0x0486, 0x05c4}, {0x0488, 0x05c6}, {0x048a, 0x0480},
                // I2 @0x48c: halt (raw b == 0xffff sentinel)
                {0x048c, 0x05c0}, {0x048e, 0xffff}, {0x0490, 0x0480},
                // data cells
                {0x05c0, count}, {0x05c2, 1}, {0x05c4, 0},
                {0x05c6, 0xffff},
            };
            return in;
        },
        60000,
    });

    // --------------------------------------------------------------- minios
    // Cooperative round-robin kernel with two tasks on separate stacks
    // (FreeRTOS substitution for Sec. 5.4): a sensor-average task and a
    // GPIO blink task, each yielding with a full callee context switch.
    w.push_back({
        "minios",
        "Cooperative two-task kernel (FreeRTOS-like, Sec. 5.4)",
        wrapWorkload(R"(
        .equ TCB0, 0x0500    ; saved SP, task 0
        .equ TCB1, 0x0502    ; saved SP, task 1
        .equ CUR, 0x0504     ; current task id
        .equ DONE, 0x0506    ; tasks completed mask
        .equ STK1, 0x0900    ; task 1 stack top
        ; Prepare task 1 context: stack holds [regs r4..r10, entry PC]
        mov #STK1, r14
        mov #task1, r13
        sub #2, r14
        mov r13, 0(r14)      ; return address = task entry
        sub #14, r14         ; room for r4..r10 (7 regs)
        mov r14, &TCB1
        clr &CUR
        clr &DONE
        ; run task 0 on the main stack
        call #task0
        ; task 0 returned: mark done, drain task 1 until it exits
        bis #1, &DONE
t0dn:   cmp #3, &DONE
        jeq alldn
        call #yield
        jmp t0dn
alldn:  mov &0x0410, r4      ; combine results
        add &0x0412, r4
        mov r4, &OUT
        jmp halt

        ; --- scheduler: save context, swap stacks, restore ---
        ; Once task 1 has exited (DONE bit 1), yield is a no-op: only
        ; task 0 remains runnable.
yield:  bit #2, &DONE
        jz  ysave
        ret
ysave:  push r4
        push r5
        push r6
        push r7
        push r8
        push r9
        push r10
        mov &CUR, r15
        tst r15
        jnz ysw1
        mov sp, &TCB0
        mov &TCB1, sp
        mov #1, &CUR
        jmp yrest
ysw1:   mov sp, &TCB1
        mov &TCB0, sp
        clr &CUR
yrest:  pop r4
        pop r5
        pop r6
        pop r7
        pop r8
        pop r9
        pop r10
        ret

        ; --- task 0: average 8 input words, yields each step ---
task0:  clr r4               ; sum
        clr r5               ; i
t0l:    mov r5, r6
        rla r6
        add IN(r6), r4
        call #yield
        inc r5
        cmp #8, r5
        jnz t0l
        mov #3, r6
t0s:    rra r4
        dec r6
        jnz t0s
        mov r4, &0x0410
        ret

        ; --- task 1: count down, pulsing P1OUT, then exit ---
task1:  mov #8, r4
t1l:    mov r4, &0x0002
        call #yield
        dec r4
        jnz t1l
        mov #0x55, &0x0412
        bis #2, &DONE
        ; task exit: restore task 0's context permanently (no park
        ; loop; this bounds the scheduler's state space)
        mov &TCB0, sp
        clr &CUR
        pop r4
        pop r5
        pop r6
        pop r7
        pop r8
        pop r9
        pop r10
        ret
)"),
        WorkloadClass::Extra,
        1,
        [](Rng &rng) {
            WorkloadInput in;
            for (int i = 0; i < 8; i++)
                in.ramWords.push_back(rng.below(1000));
            return in;
        },
        60000,
    });

    return w;
}

namespace
{

std::vector<Workload>
buildAll()
{
    std::vector<Workload> all = sensorWorkloads();
    for (auto &x : eembcWorkloads())
        all.push_back(x);
    for (auto &x : unitWorkloads())
        all.push_back(x);
    return all;
}

} // namespace

const std::vector<Workload> &
workloads()
{
    static const std::vector<Workload> all = buildAll();
    return all;
}

const std::vector<Workload> &
extraWorkloads()
{
    static const std::vector<Workload> extra = methodologyWorkloads();
    return extra;
}

const std::vector<Workload> &
extendedWorkloads()
{
    static const std::vector<Workload> ext = extCoreWorkloads();
    return ext;
}

const Workload *
findWorkload(const std::string &name)
{
    for (const Workload &w : workloads()) {
        if (w.name == name)
            return &w;
    }
    for (const Workload &w : extraWorkloads()) {
        if (w.name == name)
            return &w;
    }
    for (const Workload &w : extendedWorkloads()) {
        if (w.name == name)
            return &w;
    }
    return nullptr;
}

const Workload &
workloadByName(const std::string &name)
{
    const Workload *w = findWorkload(name);
    if (!w)
        bespoke_fatal("no workload named '", name, "'");
    return *w;
}

} // namespace bespoke
