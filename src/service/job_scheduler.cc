#include "src/service/job_scheduler.hh"

#include <chrono>
#include <cmath>
#include <fstream>
#include <sstream>

#include "src/bespoke/equiv_check.hh"
#include "src/cpu/bsp430.hh"
#include "src/io/netlist_json.hh"
#include "src/io/verilog_import.hh"
#include "src/mutation/mutant_sweep.hh"
#include "src/timing/sta.hh"
#include "src/util/logging.hh"
#include "src/workloads/workload.hh"

namespace bespoke
{

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) ==
               0;
}

bool
knownKind(const std::string &kind)
{
    return kind == "tailor" || kind == "verify" || kind == "check" ||
           kind == "mutant_sweep";
}

/** Read a whole file; false (with diagnostic) instead of dying. */
bool
readFileText(const std::string &path, std::string *out,
             std::string *err)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        *err = "cannot read '" + path + "'";
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    *out = ss.str();
    return true;
}

bool
buildCoreNetlist(const std::string &core, Netlist *out,
                 std::string *err)
{
    CpuConfig cfg;
    if (core == "extended") {
        cfg = CpuConfig::extended();
    } else if (!core.empty() && core != "default") {
        *err = "core must be 'default' or 'extended', got '" + core +
               "'";
        return false;
    }
    *out = buildBsp430(nullptr, cfg);
    return true;
}

/** Import a netlist file (.v/.json) or inline JSON text, non-fatally. */
bool
importNetlistText(const std::string &label, const std::string &text,
                  bool verilog, Netlist *out, std::string *err)
{
    if (verilog) {
        VerilogImportResult res = importVerilog(text);
        if (!res.ok) {
            *err = res.format(label);
            return false;
        }
        *out = std::move(res.netlist);
        return true;
    }
    NetlistJsonResult res = netlistFromJsonText(text);
    if (!res.ok) {
        *err = label + ": " + res.error;
        return false;
    }
    *out = std::move(res.netlist);
    return true;
}

/**
 * The baseline a job's spec names: inline JSON, a netlist file, or a
 * freshly built core. The netlist is returned unsized; flow-based
 * kinds size it in the BespokeFlow constructor.
 */
bool
loadBaseline(const JobSpec &spec, Netlist *out, std::string *err)
{
    if (!spec.netlistInline.empty()) {
        return importNetlistText("netlist_json", spec.netlistInline,
                                 false, out, err);
    }
    if (!spec.netlist.empty()) {
        std::string text;
        if (!readFileText(spec.netlist, &text, err))
            return false;
        return importNetlistText(spec.netlist, text,
                                 endsWith(spec.netlist, ".v"), out,
                                 err);
    }
    return buildCoreNetlist(spec.core, out, err);
}

} // namespace

bool
parseJobSpec(const JsonValue &doc, JobSpec *out, std::string *err)
{
    if (!doc.isObject()) {
        *err = "job spec must be a JSON object";
        return false;
    }
    JobSpec spec;
    auto want = [&](const JsonValue &v, JsonValue::Kind kind,
                    const std::string &key, const char *what) {
        if (v.kind() == kind)
            return true;
        *err = "job key '" + key + "' must be " + what;
        return false;
    };
    auto uintField = [&](const JsonValue &v, const std::string &key,
                         uint64_t *dst) {
        if (!want(v, JsonValue::Kind::Number, key,
                  "a non-negative integer"))
            return false;
        double n = v.asNumber();
        if (n < 0 || n != static_cast<double>(
                              static_cast<uint64_t>(n))) {
            *err = "job key '" + key +
                   "' must be a non-negative integer";
            return false;
        }
        *dst = static_cast<uint64_t>(n);
        return true;
    };
    for (const auto &[key, v] : doc.members()) {
        uint64_t u = 0;
        if (key == "id") {
            if (!want(v, JsonValue::Kind::String, key, "a string"))
                return false;
            spec.id = v.asString();
        } else if (key == "kind") {
            if (!want(v, JsonValue::Kind::String, key, "a string"))
                return false;
            spec.kind = v.asString();
        } else if (key == "app") {
            if (!want(v, JsonValue::Kind::String, key, "a string"))
                return false;
            spec.apps.push_back(v.asString());
        } else if (key == "apps") {
            if (!want(v, JsonValue::Kind::Array, key,
                      "an array of strings"))
                return false;
            for (const JsonValue &e : v.items()) {
                if (!want(e, JsonValue::Kind::String, key,
                          "an array of strings"))
                    return false;
                spec.apps.push_back(e.asString());
            }
        } else if (key == "netlist") {
            if (!want(v, JsonValue::Kind::String, key, "a string"))
                return false;
            spec.netlist = v.asString();
        } else if (key == "netlist_json") {
            if (!want(v, JsonValue::Kind::Object, key,
                      "an inline netlist object"))
                return false;
            spec.netlistInline = v.dump();
        } else if (key == "core") {
            if (!want(v, JsonValue::Kind::String, key, "a string"))
                return false;
            spec.core = v.asString();
        } else if (key == "against") {
            if (!want(v, JsonValue::Kind::String, key, "a string"))
                return false;
            spec.against = v.asString();
        } else if (key == "threads") {
            if (!uintField(v, key, &u))
                return false;
            spec.threads = static_cast<int>(u);
        } else if (key == "power_inputs") {
            if (!uintField(v, key, &u))
                return false;
            spec.powerInputs = static_cast<int>(u);
        } else if (key == "power_seed") {
            if (!uintField(v, key, &spec.powerSeed))
                return false;
        } else if (key == "inputs_per_mutant") {
            if (!uintField(v, key, &u))
                return false;
            spec.inputsPerMutant = static_cast<int>(u);
        } else if (key == "mutant_seed") {
            if (!uintField(v, key, &spec.mutantSeed))
                return false;
        } else if (key == "max_mutants") {
            if (!uintField(v, key, &u))
                return false;
            spec.maxMutants = static_cast<int>(u);
        } else if (key == "passes") {
            if (!want(v, JsonValue::Kind::String, key, "a string"))
                return false;
            spec.passes = v.asString();
            PassPipelineOptions probe;
            std::string perr;
            if (!parsePassList(spec.passes, &probe, &perr)) {
                *err = "job key 'passes': " + perr;
                return false;
            }
        } else if (key == "sat_depth") {
            if (!uintField(v, key, &u))
                return false;
            spec.satDepth = static_cast<int>(u);
        } else if (key == "sat_threads") {
            if (!uintField(v, key, &u))
                return false;
            spec.satThreads = static_cast<int>(u);
        } else {
            *err = "unknown job key '" + key + "'";
            return false;
        }
    }
    if (!knownKind(spec.kind)) {
        *err = spec.kind.empty()
                   ? "job needs a 'kind' (tailor | verify | check | "
                     "mutant_sweep)"
                   : "unknown job kind '" + spec.kind + "'";
        return false;
    }
    if (spec.apps.empty()) {
        *err = "job needs an 'app' (or 'apps') workload name";
        return false;
    }
    if (spec.kind != "tailor" && spec.apps.size() != 1) {
        *err = "kind '" + spec.kind + "' takes exactly one app";
        return false;
    }
    if (spec.kind == "check" && spec.netlist.empty() &&
        spec.netlistInline.empty()) {
        *err = "check needs a 'netlist' (or 'netlist_json') candidate";
        return false;
    }
    *out = std::move(spec);
    return true;
}

bool
parseJobList(const std::string &text, std::vector<JobSpec> *out,
             std::string *err)
{
    JsonValue doc;
    if (!JsonValue::parse(text, doc, *err))
        return false;
    const JsonValue *jobs = &doc;
    if (doc.isObject()) {
        jobs = doc.find("jobs");
        if (!jobs) {
            *err = "batch object needs a 'jobs' array";
            return false;
        }
    }
    if (!jobs->isArray()) {
        *err = "batch file must be a JSON array of job specs (or an "
               "object with a 'jobs' array)";
        return false;
    }
    std::vector<JobSpec> specs;
    for (size_t i = 0; i < jobs->items().size(); i++) {
        JobSpec spec;
        std::string perr;
        if (!parseJobSpec(jobs->items()[i], &spec, &perr)) {
            *err = "job " + std::to_string(i) + ": " + perr;
            return false;
        }
        specs.push_back(std::move(spec));
    }
    *out = std::move(specs);
    return true;
}

JsonValue
JobResult::deterministicJson() const
{
    JsonValue d = JsonValue::object();
    d.set("id", JsonValue::str(id));
    d.set("kind", JsonValue::str(kind));
    d.set("ok", JsonValue::boolean(ok));
    d.set("error", JsonValue::str(error));
    d.set("payload", payload);
    return d;
}

JsonValue
JobResult::toJson() const
{
    JsonValue d = deterministicJson();
    d.set("seconds", JsonValue::number(seconds));
    d.set("checkpoint_hits",
          JsonValue::number(static_cast<double>(checkpointHits)));
    d.set("checkpoint_misses",
          JsonValue::number(static_cast<double>(checkpointMisses)));
    d.set("threads_used",
          JsonValue::number(static_cast<double>(threadsUsed)));
    JsonValue st = JsonValue::array();
    for (const JobStage &s : stages) {
        JsonValue e = JsonValue::object();
        e.set("stage", JsonValue::str(s.stage));
        e.set("seconds", JsonValue::number(s.seconds));
        st.push(std::move(e));
    }
    d.set("stages", std::move(st));
    return d;
}

JobScheduler::JobScheduler(SchedulerOptions opts)
    : opts_(std::move(opts)),
      coord_(std::make_shared<CheckpointCoordinator>()),
      budget_(opts_.workerThreads)
{
    int n = opts_.jobThreads <= 0 ? 1 : opts_.jobThreads;
    runners_.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; i++)
        runners_.emplace_back([this] { runnerLoop(); });
}

JobScheduler::~JobScheduler()
{
    finish();
    {
        std::lock_guard<std::mutex> lk(m_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &t : runners_)
        t.join();
}

std::string
JobScheduler::submit(JobSpec spec)
{
    std::string id;
    {
        std::lock_guard<std::mutex> lk(m_);
        bespoke_assert(!stop_, "submit() on a stopping JobScheduler");
        id = submitLocked(std::move(spec));
    }
    wake_.notify_one();
    return id;
}

JobResult
backpressureRejection(const std::string &id, const std::string &kind,
                      size_t max_queued, const std::string &fallback_id)
{
    JobResult res;
    res.id = id.empty() ? fallback_id : id;
    res.kind = kind;
    res.ok = false;
    res.error = "rejected: backpressure (" +
                std::to_string(max_queued) + " outstanding jobs)";
    res.payload = JsonValue::object();
    return res;
}

bool
JobScheduler::trySubmit(JobSpec spec, std::string *id_out)
{
    {
        std::lock_guard<std::mutex> lk(m_);
        bespoke_assert(!stop_, "trySubmit() on a stopping JobScheduler");
        if (opts_.maxQueued > 0 && outstanding_ >= opts_.maxQueued)
            return false;
        std::string id = submitLocked(std::move(spec));
        if (id_out)
            *id_out = std::move(id);
    }
    wake_.notify_one();
    return true;
}

std::string
JobScheduler::submitLocked(JobSpec spec)
{
    size_t idx = specs_.size();
    if (spec.id.empty())
        spec.id = spec.kind + "-" + std::to_string(idx);
    std::string id = spec.id;
    specs_.push_back(std::move(spec));
    results_.emplace_back();
    resultReady_.push_back(false);
    queue_.push_back(idx);
    outstanding_++;
    return id;
}

std::vector<JobResult>
JobScheduler::finish()
{
    std::unique_lock<std::mutex> lk(m_);
    idle_.wait(lk, [this] { return outstanding_ == 0; });
    return results_;
}

size_t
JobScheduler::failures() const
{
    std::lock_guard<std::mutex> lk(m_);
    size_t n = 0;
    for (size_t i = 0; i < results_.size(); i++) {
        if (resultReady_[i] && !results_[i].ok)
            n++;
    }
    return n;
}

void
JobScheduler::emitProgress(const JsonValue &event)
{
    if (!opts_.progress)
        return;
    std::lock_guard<std::mutex> lk(progressM_);
    opts_.progress(event);
}

void
JobScheduler::runnerLoop()
{
    std::unique_lock<std::mutex> lk(m_);
    for (;;) {
        wake_.wait(lk, [this] { return stop_ || !queue_.empty(); });
        if (stop_ && queue_.empty())
            return;
        size_t idx = queue_.front();
        queue_.pop_front();
        JobSpec spec = specs_[idx];
        lk.unlock();

        JobResult res = runJob(spec);

        if (opts_.onResult) {
            std::lock_guard<std::mutex> plk(progressM_);
            opts_.onResult(res);
        }
        lk.lock();
        results_[idx] = std::move(res);
        resultReady_[idx] = true;
        outstanding_--;
        if (outstanding_ == 0)
            idle_.notify_all();
    }
}

JobResult
JobScheduler::runJob(const JobSpec &spec)
{
    auto t0 = std::chrono::steady_clock::now();
    JobResult res;
    res.id = spec.id;
    res.kind = spec.kind;
    res.payload = JsonValue::object();

    {
        JsonValue ev = JsonValue::object();
        ev.set("event", JsonValue::str("job_start"));
        ev.set("job", JsonValue::str(spec.id));
        ev.set("kind", JsonValue::str(spec.kind));
        emitProgress(ev);
    }

    // Stage records come from the flow's stageCallback (and the
    // scheduler's own verify/sweep stages below). The callback runs on
    // this runner thread only, so res needs no lock.
    auto addStage = [&](const std::string &stage, double seconds) {
        res.stages.push_back({stage, seconds});
        JsonValue ev = JsonValue::object();
        ev.set("event", JsonValue::str("stage"));
        ev.set("job", JsonValue::str(spec.id));
        ev.set("stage", JsonValue::str(stage));
        ev.set("seconds", JsonValue::number(seconds));
        emitProgress(ev);
    };
    auto fail = [&](const std::string &msg) {
        res.ok = false;
        res.error = msg;
    };

    // Resolve workloads up front: a typo fails the job, not the queue.
    std::vector<const Workload *> apps;
    for (const std::string &name : spec.apps) {
        const Workload *w = findWorkload(name);
        if (!w) {
            fail("no workload named '" + name + "'");
            apps.clear();
            break;
        }
        apps.push_back(w);
    }

    Netlist baseline;
    std::string err;
    if (!apps.empty() && !loadBaseline(spec, &baseline, &err))
        fail(err);

    if (res.error.empty()) {
        // Lease analysis workers from the shared budget (FIFO; blocks
        // until granted). 0 asks for the whole budget.
        int want = spec.threads <= 0 ? budget_.total() : spec.threads;
        ThreadLease lease = budget_.acquire(want);
        res.threadsUsed = lease.threads();

        if (spec.kind == "check") {
            Netlist reference;
            if (spec.against.empty()) {
                if (!buildCoreNetlist(spec.core, &reference, &err))
                    fail(err);
            } else {
                std::string text;
                if (!readFileText(spec.against, &text, &err) ||
                    !importNetlistText(spec.against, text,
                                       endsWith(spec.against, ".v"),
                                       &reference, &err)) {
                    fail(err);
                }
            }
            if (res.error.empty()) {
                sizeForLoads(reference, opts_.flow.timing);
                AnalysisOptions aopts = opts_.flow.analysis;
                aopts.threads = lease.threads();
                auto tc = std::chrono::steady_clock::now();
                EquivResult eq = checkSymbolicEquivalence(
                    reference, baseline, apps[0]->assembleProgram(),
                    aopts);
                addStage("check", secondsSince(tc));
                res.payload.set("app", JsonValue::str(apps[0]->name));
                res.payload.set("equivalent",
                                JsonValue::boolean(eq.equivalent));
                res.payload.set("completed",
                                JsonValue::boolean(eq.completed));
                if (!eq.completed)
                    fail("equivalence check hit its caps");
                else if (!eq.equivalent)
                    fail("not equivalent: " + eq.firstMismatch);
                else
                    res.ok = true;
            }
        } else if (spec.kind == "mutant_sweep") {
            const Workload &w = *apps[0];
            sizeForLoads(baseline, opts_.flow.timing);
            std::vector<Mutant> mutants = generateMutants(w);
            if (spec.maxMutants > 0 &&
                mutants.size() > static_cast<size_t>(spec.maxMutants))
                mutants.resize(static_cast<size_t>(spec.maxMutants));
            auto tc = std::chrono::steady_clock::now();
            MutantPlanePrep prep(baseline, w, mutants);
            MutantSweepOptions mo;
            mo.planeBits = opts_.flow.planeBits;
            if (spec.inputsPerMutant > 0)
                mo.inputsPerMutant = spec.inputsPerMutant;
            if (spec.mutantSeed != 0)
                mo.seed = spec.mutantSeed;
            std::vector<MutantVerdict> verdicts =
                mutantConcreteSweep(prep, mo);
            addStage("mutant_sweep", secondsSince(tc));
            size_t detected = 0;
            double sum_delta = 0.0;
            for (const MutantVerdict &v : verdicts) {
                if (v.detected)
                    detected++;
                sum_delta += std::abs(v.powerDeltaPct);
            }
            res.payload.set("app", JsonValue::str(w.name));
            res.payload.set(
                "mutants",
                JsonValue::number(static_cast<double>(verdicts.size())));
            res.payload.set(
                "detected",
                JsonValue::number(static_cast<double>(detected)));
            res.payload.set(
                "mean_abs_power_delta_pct",
                JsonValue::number(verdicts.empty()
                                      ? 0.0
                                      : sum_delta / verdicts.size()));
            res.ok = true;
        } else {
            // tailor / verify: the checkpointed flow on a per-job
            // options copy — own store instance, shared directory and
            // coordinator, workers leased above.
            FlowOptions fopts = opts_.flow;
            fopts.checkpointDir = opts_.checkpointDir;
            fopts.checkpointMaxBytes = opts_.checkpointMaxBytes;
            fopts.checkpointCoordinator = coord_;
            fopts.analysis.threads = lease.threads();
            if (spec.powerInputs > 0)
                fopts.powerInputsPerWorkload = spec.powerInputs;
            if (spec.powerSeed != 0)
                fopts.powerSeed = spec.powerSeed;
            if (!spec.passes.empty()) {
                std::string perr;
                // Validated at parse time; re-check defensively.
                if (!parsePassList(spec.passes, &fopts.passes, &perr))
                    fail("bad pass list: " + perr);
            }
            if (spec.satDepth > 0)
                fopts.passes.sat.depth = spec.satDepth;
            // SAT shard workers come out of the same lease as the
            // analysis workers — a job never oversubscribes its grant,
            // and the prover's verdicts don't depend on the count.
            fopts.passes.sat.threads =
                spec.satThreads > 0
                    ? std::min(spec.satThreads, lease.threads())
                    : lease.threads();
            fopts.stageCallback = addStage;
            BespokeFlow flow(fopts, std::move(baseline));

            BespokeDesign d;
            bool built = res.error.empty() &&
                         (apps.size() == 1
                              ? flow.tryTailor(*apps[0], &d, &err)
                              : flow.tryTailorMulti(apps, &d, &err));
            if (!built) {
                if (res.error.empty())
                    fail(err);
            } else {
                JsonValue names = JsonValue::array();
                for (const Workload *w : apps)
                    names.push(JsonValue::str(w->name));
                res.payload.set("apps", std::move(names));
                res.payload.set(
                    "gates_before",
                    JsonValue::number(
                        static_cast<double>(d.cut.gatesBefore)));
                res.payload.set(
                    "gates_after",
                    JsonValue::number(
                        static_cast<double>(d.cut.gatesAfter)));
                res.payload.set(
                    "flops", JsonValue::number(
                                 static_cast<double>(d.metrics.flops)));
                res.payload.set("area_um2",
                                JsonValue::number(d.metrics.areaUm2));
                res.payload.set(
                    "critical_path_ps",
                    JsonValue::number(d.metrics.criticalPathPs));
                res.payload.set("vmin",
                                JsonValue::number(d.metrics.vmin));
                res.payload.set(
                    "power_nominal_uw",
                    JsonValue::number(d.metrics.powerNominal.totalUW()));
                res.payload.set(
                    "power_vmin_uw",
                    JsonValue::number(d.metrics.powerAtVmin.totalUW()));
                if (fopts.passes.satNeverToggle) {
                    JsonValue satj = JsonValue::object();
                    satj.set("candidates",
                             JsonValue::number(static_cast<double>(
                                 d.pipeline.satCandidates)));
                    satj.set("proven",
                             JsonValue::number(static_cast<double>(
                                 d.pipeline.satProven)));
                    satj.set("refuted",
                             JsonValue::number(static_cast<double>(
                                 d.pipeline.satRefuted)));
                    satj.set("unknown",
                             JsonValue::number(static_cast<double>(
                                 d.pipeline.satUnknown)));
                    // Solver counters are shard-deterministic and
                    // thread-count-independent, so they belong in the
                    // bit-stable payload with the verdict counts.
                    satj.set("shards",
                             JsonValue::number(static_cast<double>(
                                 d.pipeline.satShards)));
                    satj.set("conflicts",
                             JsonValue::number(static_cast<double>(
                                 d.pipeline.satConflicts)));
                    satj.set("propagations",
                             JsonValue::number(static_cast<double>(
                                 d.pipeline.satPropagations)));
                    satj.set("learned_clauses",
                             JsonValue::number(static_cast<double>(
                                 d.pipeline.satLearned)));
                    satj.set("kept_clauses",
                             JsonValue::number(static_cast<double>(
                                 d.pipeline.satKept)));
                    satj.set("db_reductions",
                             JsonValue::number(static_cast<double>(
                                 d.pipeline.satReductions)));
                    res.payload.set("sat_never_toggle",
                                    std::move(satj));
                }
                if (spec.kind == "verify") {
                    AnalysisOptions aopts = fopts.analysis;
                    auto tv = std::chrono::steady_clock::now();
                    EquivResult eq = checkSymbolicEquivalence(
                        flow.baseline(), d.netlist,
                        apps[0]->assembleProgram(), aopts);
                    addStage("verify", secondsSince(tv));
                    res.payload.set("equivalent",
                                    JsonValue::boolean(eq.equivalent));
                    res.payload.set("completed",
                                    JsonValue::boolean(eq.completed));
                    if (!eq.completed)
                        fail("equivalence check hit its caps");
                    else if (!eq.equivalent)
                        fail("not equivalent: " + eq.firstMismatch);
                    else
                        res.ok = true;
                } else {
                    res.ok = true;
                }
            }
            res.checkpointHits = flow.checkpoints().hits();
            res.checkpointMisses = flow.checkpoints().misses();
        }
    }

    res.seconds = secondsSince(t0);
    {
        JsonValue ev = JsonValue::object();
        ev.set("event", JsonValue::str("job_done"));
        ev.set("job", JsonValue::str(spec.id));
        ev.set("ok", JsonValue::boolean(res.ok));
        if (!res.ok)
            ev.set("error", JsonValue::str(res.error));
        ev.set("seconds", JsonValue::number(res.seconds));
        ev.set("checkpoint_hits",
               JsonValue::number(
                   static_cast<double>(res.checkpointHits)));
        ev.set("checkpoint_misses",
               JsonValue::number(
                   static_cast<double>(res.checkpointMisses)));
        emitProgress(ev);
    }
    return res;
}

} // namespace bespoke
