/**
 * @file
 * Concurrent tailoring job scheduler ("tailoring as a service",
 * ROADMAP item; DESIGN.md section 11 has the full semantics).
 *
 * A JobSpec is a small JSON document naming one unit of flow work —
 * tailor / verify / check / mutant_sweep on a workload, against the
 * built-in core or an imported netlist. The scheduler runs submitted
 * specs on a fixed set of runner threads (`jobThreads`), with three
 * isolation/fairness properties:
 *
 *  - Per-job isolation: every job gets its own BespokeFlow (own
 *    FlowOptions, own CheckpointStore instance), so one job's options
 *    or failure never leak into another, and per-job checkpoint
 *    hit/miss counters are exact.
 *
 *  - Cross-job dedup: all stores share one checkpoint directory and
 *    one CheckpointCoordinator, and artifacts are keyed purely by
 *    content hashes — identical jobs (same netlist, program, options)
 *    land on the same stage artifacts. In-flight dedup is "first
 *    runner computes, the rest block in lockStage() then load the
 *    saved artifact", so concurrent duplicates cost one computation.
 *
 *  - Fair thread sharing: jobs lease their analysis workers from one
 *    global ThreadBudget (strict FIFO) instead of each spawning its
 *    own `--threads`; a wide job cannot be starved and the process
 *    never oversubscribes the budget.
 *
 * Results carry a deterministic payload — bit-identical across
 * jobThreads/workerThreads schedules, which is what the
 * serial-vs-concurrent tests pin — separated from volatile
 * observability (wall clock, checkpoint hits, computed stages).
 * A failed job (bad spec, unreadable netlist, capped analysis,
 * inequivalence) is reported in its result; it never aborts the queue.
 */

#ifndef BESPOKE_SERVICE_JOB_SCHEDULER_HH
#define BESPOKE_SERVICE_JOB_SCHEDULER_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/bespoke/flow.hh"
#include "src/util/json.hh"
#include "src/util/worker_pool.hh"

namespace bespoke
{

/** One unit of flow work, parsed from a JSON job spec. */
struct JobSpec
{
    std::string id;    ///< defaults to "<kind>-<submit index>"
    std::string kind;  ///< tailor | verify | check | mutant_sweep
    /** Workloads by name; one entry for all kinds but multi-tailor. */
    std::vector<std::string> apps;
    /** Baseline netlist file (.v/.json); "" = build the core. */
    std::string netlist;
    /** Inline canonical-JSON netlist document text; "" = none. */
    std::string netlistInline;
    /** Core flavor when no netlist is given: "" | default | extended. */
    std::string core;
    /** check only: reference netlist file ("" = build the core). */
    std::string against;
    /** Analysis workers to lease from the budget (0 = whole budget). */
    int threads = 1;
    /** Flow overrides; 0 keeps the scheduler's base FlowOptions. */
    int powerInputs = 0;
    uint64_t powerSeed = 0;
    /** mutant_sweep knobs; 0 = MutantSweepOptions defaults / all. */
    int inputsPerMutant = 0;
    uint64_t mutantSeed = 0;
    int maxMutants = 0;
    /** tailor/verify: pass list override (parsePassList names);
     *  "" keeps the scheduler's base FlowOptions pass selection. */
    std::string passes;
    /** SAT never-toggle unrolling depth override (0 = keep base). */
    int satDepth = 0;
    /** SAT prover worker threads (0 = the job's leased analysis
     *  workers; explicit values are capped by the lease). Verdicts are
     *  thread-count-independent, so this never affects the
     *  deterministic payload. */
    int satThreads = 0;
};

/**
 * Parse one job-spec JSON object. Unknown keys and type mismatches
 * fail with a diagnostic; semantic checks (does the workload exist,
 * is the file readable) happen when the job runs.
 */
bool parseJobSpec(const JsonValue &doc, JobSpec *out, std::string *err);

/**
 * Parse a batch file: either a JSON array of specs or an object with
 * a "jobs" array member.
 */
bool parseJobList(const std::string &text, std::vector<JobSpec> *out,
                  std::string *err);

/** One flow stage a job actually computed (checkpoint hits skip it). */
struct JobStage
{
    std::string stage;
    double seconds = 0.0;
};

struct JobResult
{
    std::string id;
    std::string kind;
    bool ok = false;
    std::string error;  ///< empty iff ok
    /**
     * Kind-specific result payload. Deterministic by construction:
     * bit-identical for the same spec at any jobThreads/workerThreads
     * setting (schedule-dependent counters live in the fields below).
     */
    JsonValue payload;

    /** @name Volatile observability (excluded from deterministicJson) */
    /// @{
    double seconds = 0.0;
    size_t checkpointHits = 0;
    size_t checkpointMisses = 0;
    int threadsUsed = 0;        ///< analysis workers actually leased
    std::vector<JobStage> stages;
    /// @}

    /** id/kind/ok/error/payload only — the bit-stable comparison key. */
    JsonValue deterministicJson() const;
    /** Everything, including the volatile fields. */
    JsonValue toJson() const;
};

struct SchedulerOptions
{
    /** Concurrent jobs (runner threads). */
    int jobThreads = 1;
    /** Global analysis-worker budget (0 = one per hardware thread). */
    int workerThreads = 0;
    /** Shared stage-artifact directory ("" disables checkpointing). */
    std::string checkpointDir;
    uint64_t checkpointMaxBytes = 0;
    /** Base flow configuration every job starts from. */
    FlowOptions flow;
    /**
     * Backpressure cap: maximum outstanding (queued + running) jobs a
     * trySubmit() may add. 0 = unlimited. submit() ignores the cap
     * (batch mode loads a whole file deliberately); serve mode uses
     * trySubmit() so a fast producer on stdin cannot queue unbounded
     * memory.
     */
    size_t maxQueued = 0;
    /**
     * Structured progress stream: one JSON object per event
     * (job_start / stage / job_done). Serialized — invoked under a
     * lock, never concurrently. Null disables.
     */
    std::function<void(const JsonValue &event)> progress;
    /**
     * Invoked (serialized) as each job completes, in completion
     * order — the serve mode's result stream. Null disables.
     */
    std::function<void(const JobResult &result)> onResult;
};

/**
 * Structured result for a submission refused by the backpressure cap:
 * ok == false, empty payload, and an error naming the cap so stream
 * consumers can tell a rejection from a job that ran and failed. This
 * is the result line `bespoke_io serve` emits for a trySubmit()
 * refusal (`fallback_id` labels specs that carried no id).
 */
JobResult backpressureRejection(const std::string &id,
                                const std::string &kind,
                                size_t max_queued,
                                const std::string &fallback_id);

class JobScheduler
{
  public:
    explicit JobScheduler(SchedulerOptions opts);
    /** Drains outstanding jobs, then joins the runners. */
    ~JobScheduler();

    JobScheduler(const JobScheduler &) = delete;
    JobScheduler &operator=(const JobScheduler &) = delete;

    /**
     * Enqueue a job; returns its id (spec.id, or the generated
     * default). Safe from any thread, including while running.
     */
    std::string submit(JobSpec spec);

    /**
     * Enqueue a job unless the maxQueued backpressure cap is reached.
     * Returns false (and does not take the job) when outstanding jobs
     * are at the cap; otherwise behaves like submit(), storing the id
     * in *id_out when given.
     */
    bool trySubmit(JobSpec spec, std::string *id_out = nullptr);

    /**
     * Block until every submitted job has completed and return all
     * results so far, in submission order. The scheduler stays usable:
     * more jobs may be submitted afterwards (serve mode drains once
     * per EOF, batch mode once per file).
     */
    std::vector<JobResult> finish();

    const SchedulerOptions &options() const { return opts_; }
    /** Jobs whose results so far have ok == false. */
    size_t failures() const;

  private:
    void runnerLoop();
    JobResult runJob(const JobSpec &spec);
    void emitProgress(const JsonValue &event);
    /** Shared submit body; caller holds m_ and notifies wake_. */
    std::string submitLocked(JobSpec spec);

    SchedulerOptions opts_;
    std::shared_ptr<CheckpointCoordinator> coord_;
    ThreadBudget budget_;
    std::vector<std::thread> runners_;

    mutable std::mutex m_;
    std::condition_variable wake_;  ///< runners: work available / stop
    std::condition_variable idle_;  ///< finish(): everything completed
    std::deque<size_t> queue_;      ///< indices into specs_
    std::vector<JobSpec> specs_;
    std::vector<JobResult> results_;  ///< results_[i] <-> specs_[i]
    std::vector<bool> resultReady_;
    size_t outstanding_ = 0;  ///< queued + running
    bool stop_ = false;

    std::mutex progressM_;  ///< serializes progress/onResult callbacks
};

} // namespace bespoke

#endif // BESPOKE_SERVICE_JOB_SCHEDULER_HH
