/**
 * @file
 * Standard-cell library: the cell types a netlist may instantiate plus
 * per-cell area / leakage / capacitance / delay models.
 *
 * The parameters are a synthetic but representative 65 nm general-purpose
 * library (the paper uses TSMC 65GP, which cannot be redistributed). All
 * results in this repository are relative (bespoke vs. baseline on the
 * same library), so only consistency and realistic ratios matter.
 */

#ifndef BESPOKE_NETLIST_CELL_LIBRARY_HH
#define BESPOKE_NETLIST_CELL_LIBRARY_HH

#include <cstdint>
#include <string>

#include "src/logic/logic.hh"

namespace bespoke
{

/** All cell types. INPUT/OUTPUT are zero-area netlist pseudo-cells. */
enum class CellType : uint8_t
{
    INPUT,   ///< primary input pseudo-cell (no fanin)
    OUTPUT,  ///< primary output pseudo-cell (one fanin)
    TIE0,    ///< constant-0 driver cell
    TIE1,    ///< constant-1 driver cell
    BUF,
    INV,
    AND2,
    AND3,
    OR2,
    OR3,
    NAND2,
    NAND3,
    NOR2,
    NOR3,
    XOR2,
    XNOR2,
    MUX2,    ///< in0 = a0, in1 = a1, in2 = sel; out = sel ? a1 : a0
    AOI21,   ///< out = !((in0 & in1) | in2)
    OAI21,   ///< out = !((in0 | in1) & in2)
    DFF,     ///< in0 = D; clocked implicitly by the single global clock
    DFFE,    ///< in0 = D, in1 = EN (enable low holds state)
    NumTypes,
};

constexpr int kNumCellTypes = static_cast<int>(CellType::NumTypes);

/** Drive strength variants used by the slack-driven downsizing pass. */
enum class Drive : uint8_t
{
    X1 = 0,
    X2 = 1,
    X4 = 2,
};

/** Electrical and physical parameters of one cell type at drive X1. */
struct CellParams
{
    const char *name;       ///< library cell name
    int numInputs;          ///< fanin count (0 for INPUT/TIE)
    double area;            ///< µm²
    double leakage;         ///< nW at 1.0 V, 25 C
    double inputCap;        ///< fF per input pin
    double intrinsicDelay;  ///< ps, unloaded
    double driveRes;        ///< ps per fF of load
    bool sequential;        ///< true for DFF/DFFE
};

/** Parameters of a cell type at drive X1. */
const CellParams &cellParams(CellType type);

/** Number of fanin pins for a cell type. */
int cellNumInputs(CellType type);

/** Library cell name, including drive suffix, e.g. "NAND2_X2". */
std::string cellName(CellType type, Drive drive);

/**
 * Reverse lookup of a library cell name as emitted by cellName()
 * ("NAND2_X2", "TIE0", ...). Returns false (outputs untouched) for
 * names outside the library; INPUT/OUTPUT pseudo-cells are accepted
 * (the JSON interchange format names them explicitly).
 */
bool cellByName(const std::string &name, CellType *type, Drive *drive);

/** Area in µm² at the given drive strength. */
double cellArea(CellType type, Drive drive);

/** Leakage in nW at 1.0 V at the given drive strength. */
double cellLeakage(CellType type, Drive drive);

/** Input pin capacitance in fF at the given drive strength. */
double cellInputCap(CellType type, Drive drive);

/** Unloaded delay in ps at the given drive strength. */
double cellIntrinsicDelay(CellType type, Drive drive);

/** Output resistance in ps/fF at the given drive strength. */
double cellDriveRes(CellType type, Drive drive);

/** True for DFF/DFFE. */
bool cellSequential(CellType type);

/** True for INPUT/OUTPUT pseudo-cells (not silicon). */
bool cellPseudo(CellType type);

/**
 * Evaluate the combinational function of a cell over three-valued
 * inputs. Only valid for combinational cell types (not DFF/DFFE/INPUT).
 * For TIE0/TIE1 returns the constant; for OUTPUT/BUF returns in0.
 */
Logic evalCell(CellType type, const Logic *in);

} // namespace bespoke

#endif // BESPOKE_NETLIST_CELL_LIBRARY_HH
