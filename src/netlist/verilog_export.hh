/**
 * @file
 * Structural Verilog export.
 *
 * Writes any netlist (baseline or bespoke) as a synthesizable gate-
 * level Verilog module over a small companion cell library, which is
 * what a licensee would hand to their physical-design flow after
 * tailoring (paper Fig. 6: the bespoke netlist proceeds to place &
 * route). `writeCellLibrary()` emits behavioral models of every cell
 * so the output is also directly simulable with any Verilog simulator.
 */

#ifndef BESPOKE_NETLIST_VERILOG_EXPORT_HH
#define BESPOKE_NETLIST_VERILOG_EXPORT_HH

#include <ostream>
#include <string>

#include "src/netlist/netlist.hh"

namespace bespoke
{

/**
 * Emit the netlist as one structural Verilog module.
 *
 * Ports: every named INPUT/OUTPUT pseudo-gate, plus `clk` and `rst_n`.
 * Flops are instantiated as DFF/DFFE cells with their reset values
 * encoded in the RVAL parameter.
 */
void exportVerilog(const Netlist &netlist, const std::string &module_name,
                   std::ostream &os);

/** Emit behavioral Verilog models for the full cell library. */
void writeCellLibrary(std::ostream &os);

} // namespace bespoke

#endif // BESPOKE_NETLIST_VERILOG_EXPORT_HH
