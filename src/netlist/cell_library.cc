#include "src/netlist/cell_library.hh"

#include "src/util/logging.hh"

namespace bespoke
{

namespace
{

// Synthetic but representative 65 nm GP library (see header comment).
//                         name      in  area  leak  cap  d0    R    seq
const CellParams kParams[kNumCellTypes] = {
    /* INPUT  */ {"INPUT",   0, 0.00,  0.0, 0.0,   0.0, 0.0, false},
    /* OUTPUT */ {"OUTPUT",  1, 0.00,  0.0, 0.5,   0.0, 0.0, false},
    /* TIE0   */ {"TIE0",    0, 0.72,  0.9, 0.0,   0.0, 0.0, false},
    /* TIE1   */ {"TIE1",    0, 0.72,  0.9, 0.0,   0.0, 0.0, false},
    /* BUF    */ {"BUF",     1, 1.44,  2.5, 1.5,  25.0, 5.5, false},
    /* INV    */ {"INV",     1, 1.08,  2.1, 1.6,  12.0, 6.0, false},
    /* AND2   */ {"AND2",    2, 1.80,  3.3, 1.7,  28.0, 6.0, false},
    /* AND3   */ {"AND3",    3, 2.16,  4.1, 1.8,  32.0, 6.5, false},
    /* OR2    */ {"OR2",     2, 1.80,  3.1, 1.7,  30.0, 6.0, false},
    /* OR3    */ {"OR3",     3, 2.16,  3.9, 1.8,  34.0, 6.5, false},
    /* NAND2  */ {"NAND2",   2, 1.44,  2.9, 1.8,  16.0, 7.0, false},
    /* NAND3  */ {"NAND3",   3, 1.80,  3.8, 1.9,  21.0, 9.0, false},
    /* NOR2   */ {"NOR2",    2, 1.44,  2.7, 1.8,  19.0, 8.0, false},
    /* NOR3   */ {"NOR3",    3, 1.80,  3.6, 1.9,  26.0, 10.0, false},
    /* XOR2   */ {"XOR2",    2, 2.88,  5.2, 2.4,  35.0, 9.0, false},
    /* XNOR2  */ {"XNOR2",   2, 2.88,  5.2, 2.4,  35.0, 9.0, false},
    /* MUX2   */ {"MUX2",    3, 2.52,  4.6, 2.0,  33.0, 8.0, false},
    /* AOI21  */ {"AOI21",   3, 1.80,  3.4, 1.9,  22.0, 9.0, false},
    /* OAI21  */ {"OAI21",   3, 1.80,  3.4, 1.9,  22.0, 9.0, false},
    /* DFF    */ {"DFF",     1, 4.68,  9.5, 2.2, 120.0, 7.0, true},
    /* DFFE   */ {"DFFE",    2, 5.40, 11.0, 2.2, 120.0, 7.0, true},
};

// Scaling of X1 parameters per drive strength.
struct DriveScale
{
    double area, leak, cap, d0, res;
};

const DriveScale kDriveScale[3] = {
    /* X1 */ {1.0, 1.0, 1.0, 1.00, 1.0},
    /* X2 */ {1.5, 1.9, 1.9, 0.95, 0.5},
    /* X4 */ {2.4, 3.6, 3.6, 0.90, 0.25},
};

const DriveScale &
scale(Drive d)
{
    return kDriveScale[static_cast<int>(d)];
}

const char *kDriveSuffix[3] = {"_X1", "_X2", "_X4"};

} // namespace

const CellParams &
cellParams(CellType type)
{
    bespoke_assert(type < CellType::NumTypes);
    return kParams[static_cast<int>(type)];
}

int
cellNumInputs(CellType type)
{
    return cellParams(type).numInputs;
}

std::string
cellName(CellType type, Drive drive)
{
    const CellParams &p = cellParams(type);
    if (cellPseudo(type) || type == CellType::TIE0 || type == CellType::TIE1)
        return p.name;
    return std::string(p.name) + kDriveSuffix[static_cast<int>(drive)];
}

bool
cellByName(const std::string &name, CellType *type, Drive *drive)
{
    std::string base = name;
    Drive d = Drive::X1;
    for (int s = 0; s < 3; s++) {
        size_t slen = 3;  // "_X1"
        if (name.size() > slen &&
            name.compare(name.size() - slen, slen, kDriveSuffix[s]) == 0) {
            base = name.substr(0, name.size() - slen);
            d = static_cast<Drive>(s);
            break;
        }
    }
    for (int t = 0; t < kNumCellTypes; t++) {
        if (base == kParams[t].name) {
            CellType ct = static_cast<CellType>(t);
            // Drive suffixes only exist on real, non-tie cells; reject
            // e.g. "TIE0_X2" or a bare "NAND2".
            bool suffixed = base != name;
            bool wants_suffix = !cellPseudo(ct) &&
                                ct != CellType::TIE0 &&
                                ct != CellType::TIE1;
            if (suffixed != wants_suffix)
                return false;
            *type = ct;
            *drive = d;
            return true;
        }
    }
    return false;
}

double
cellArea(CellType type, Drive drive)
{
    return cellParams(type).area * scale(drive).area;
}

double
cellLeakage(CellType type, Drive drive)
{
    return cellParams(type).leakage * scale(drive).leak;
}

double
cellInputCap(CellType type, Drive drive)
{
    return cellParams(type).inputCap * scale(drive).cap;
}

double
cellIntrinsicDelay(CellType type, Drive drive)
{
    return cellParams(type).intrinsicDelay * scale(drive).d0;
}

double
cellDriveRes(CellType type, Drive drive)
{
    return cellParams(type).driveRes * scale(drive).res;
}

bool
cellSequential(CellType type)
{
    return cellParams(type).sequential;
}

bool
cellPseudo(CellType type)
{
    return type == CellType::INPUT || type == CellType::OUTPUT;
}

Logic
evalCell(CellType type, const Logic *in)
{
    switch (type) {
      case CellType::TIE0:
        return Logic::Zero;
      case CellType::TIE1:
        return Logic::One;
      case CellType::BUF:
      case CellType::OUTPUT:
        return in[0];
      case CellType::INV:
        return logicNot(in[0]);
      case CellType::AND2:
        return logicAnd(in[0], in[1]);
      case CellType::AND3:
        return logicAnd(logicAnd(in[0], in[1]), in[2]);
      case CellType::OR2:
        return logicOr(in[0], in[1]);
      case CellType::OR3:
        return logicOr(logicOr(in[0], in[1]), in[2]);
      case CellType::NAND2:
        return logicNot(logicAnd(in[0], in[1]));
      case CellType::NAND3:
        return logicNot(logicAnd(logicAnd(in[0], in[1]), in[2]));
      case CellType::NOR2:
        return logicNot(logicOr(in[0], in[1]));
      case CellType::NOR3:
        return logicNot(logicOr(logicOr(in[0], in[1]), in[2]));
      case CellType::XOR2:
        return logicXor(in[0], in[1]);
      case CellType::XNOR2:
        return logicNot(logicXor(in[0], in[1]));
      case CellType::MUX2:
        return logicMux(in[2], in[0], in[1]);
      case CellType::AOI21:
        return logicNot(logicOr(logicAnd(in[0], in[1]), in[2]));
      case CellType::OAI21:
        return logicNot(logicAnd(logicOr(in[0], in[1]), in[2]));
      default:
        bespoke_panic("evalCell on non-combinational cell type ",
                      static_cast<int>(type));
    }
}

} // namespace bespoke
