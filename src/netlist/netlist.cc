#include "src/netlist/netlist.hh"

#include <algorithm>

#include "src/util/logging.hh"

namespace bespoke
{

const char *
moduleName(Module m)
{
    switch (m) {
      case Module::Frontend:
        return "frontend";
      case Module::Exec:
        return "execution_unit";
      case Module::Alu:
        return "alu";
      case Module::RF:
        return "register_file";
      case Module::Mult:
        return "multiplier";
      case Module::MemBB:
        return "mem_backbone";
      case Module::Sfr:
        return "sfr";
      case Module::Wdg:
        return "watchdog";
      case Module::Clock:
        return "clock_module";
      case Module::Dbg:
        return "dbg";
      case Module::Timer:
        return "timer";
      case Module::Uart:
        return "uart";
      case Module::Glue:
        return "glue";
      default:
        return "?";
    }
}

bool
moduleByName(const std::string &name, Module *out)
{
    for (int m = 0; m < kNumModules; m++) {
        if (name == moduleName(static_cast<Module>(m))) {
            *out = static_cast<Module>(m);
            return true;
        }
    }
    return false;
}

const char *
instanceKindName(InstanceKind k)
{
    switch (k) {
      case InstanceKind::Adder:
        return "adder";
      case InstanceKind::MuxTree:
        return "mux_tree";
      default:
        return "?";
    }
}

bool
instanceKindByName(const std::string &name, InstanceKind *out)
{
    if (name == "adder") {
        *out = InstanceKind::Adder;
        return true;
    }
    if (name == "mux_tree") {
        *out = InstanceKind::MuxTree;
        return true;
    }
    return false;
}

GateId
Netlist::addGate(CellType type, Module module, GateId in0, GateId in1,
                 GateId in2)
{
    Gate g;
    g.type = type;
    g.module = module;
    g.in = {in0, in1, in2};
    int n = cellNumInputs(type);
    for (int i = 0; i < n; i++) {
        bespoke_assert(g.in[i] != kNoGate,
                       "unconnected pin ", i, " on new ",
                       cellParams(type).name);
    }
    gates_.push_back(g);
    return static_cast<GateId>(gates_.size() - 1);
}

GateId
Netlist::addInput(const std::string &name, Module module)
{
    GateId id = addGate(CellType::INPUT, module);
    bespoke_assert(!ports_.count(name), "duplicate port ", name);
    ports_[name] = id;
    names_[id] = name;
    return id;
}

GateId
Netlist::addOutput(const std::string &name, GateId src, Module module)
{
    GateId id = addGate(CellType::OUTPUT, module, src);
    bespoke_assert(!ports_.count(name), "duplicate port ", name);
    ports_[name] = id;
    names_[id] = name;
    return id;
}

GateId
Netlist::tie(bool value, Module module)
{
    uint32_t key = (static_cast<uint32_t>(module) << 1) | (value ? 1 : 0);
    auto it = tieCache_.find(key);
    if (it != tieCache_.end())
        return it->second;
    GateId id = addGate(value ? CellType::TIE1 : CellType::TIE0, module);
    tieCache_[key] = id;
    return id;
}

GateId
Netlist::findTie(bool value, Module module) const
{
    uint32_t key = (static_cast<uint32_t>(module) << 1) | (value ? 1 : 0);
    auto it = tieCache_.find(key);
    return it == tieCache_.end() ? kNoGate : it->second;
}

void
Netlist::setResetValue(GateId id, bool value)
{
    bespoke_assert(cellSequential(gates_[id].type));
    gates_[id].resetValue = value;
}

void
Netlist::setName(GateId id, const std::string &name)
{
    names_[id] = name;
}

void
Netlist::setFanin(GateId id, int pin, GateId src)
{
    bespoke_assert(pin >= 0 && pin < gates_[id].numInputs());
    gates_[id].in[pin] = src;
}

void
Netlist::registerPort(const std::string &name, GateId id)
{
    bespoke_assert(!ports_.count(name), "duplicate port ", name);
    ports_[name] = id;
    names_[id] = name;
}

const std::string &
Netlist::name(GateId id) const
{
    static const std::string empty;
    auto it = names_.find(id);
    return it == names_.end() ? empty : it->second;
}

GateId
Netlist::port(const std::string &name) const
{
    auto it = ports_.find(name);
    if (it == ports_.end())
        bespoke_fatal("no port named '", name, "'");
    return it->second;
}

bool
Netlist::hasPort(const std::string &name) const
{
    return ports_.count(name) != 0;
}

std::vector<GateId>
Netlist::bus(const std::string &prefix, int width) const
{
    std::vector<GateId> ids(width);
    for (int i = 0; i < width; i++)
        ids[i] = port(prefix + "[" + std::to_string(i) + "]");
    return ids;
}

std::vector<GateId>
Netlist::inputIds() const
{
    std::vector<GateId> ids;
    for (GateId i = 0; i < gates_.size(); i++) {
        if (gates_[i].type == CellType::INPUT)
            ids.push_back(i);
    }
    return ids;
}

std::vector<GateId>
Netlist::outputIds() const
{
    std::vector<GateId> ids;
    for (GateId i = 0; i < gates_.size(); i++) {
        if (gates_[i].type == CellType::OUTPUT)
            ids.push_back(i);
    }
    return ids;
}

std::vector<GateId>
Netlist::sequentialIds() const
{
    std::vector<GateId> ids;
    for (GateId i = 0; i < gates_.size(); i++) {
        if (cellSequential(gates_[i].type))
            ids.push_back(i);
    }
    return ids;
}

std::vector<GateId>
Netlist::levelize() const
{
    // Kahn's algorithm over combinational edges only. Sources (INPUT,
    // TIE, DFF, DFFE) have their values available at the start of a
    // cycle and never appear in the order.
    auto is_source = [&](GateId id) {
        const Gate &g = gates_[id];
        return g.type == CellType::INPUT || g.type == CellType::TIE0 ||
               g.type == CellType::TIE1 || cellSequential(g.type);
    };

    std::vector<int> pending(gates_.size(), 0);
    std::vector<GateId> ready;
    for (GateId i = 0; i < gates_.size(); i++) {
        if (is_source(i))
            continue;
        const Gate &g = gates_[i];
        int n = g.numInputs();
        int deps = 0;
        for (int p = 0; p < n; p++) {
            if (!is_source(g.in[p]))
                deps++;
        }
        pending[i] = deps;
        if (deps == 0)
            ready.push_back(i);
    }

    // Combinational fanout lists (edges into non-source gates only).
    std::vector<std::vector<GateId>> comb_fanout(gates_.size());
    for (GateId i = 0; i < gates_.size(); i++) {
        if (is_source(i))
            continue;
        const Gate &g = gates_[i];
        for (int p = 0; p < g.numInputs(); p++) {
            if (!is_source(g.in[p]))
                comb_fanout[g.in[p]].push_back(i);
        }
    }

    std::vector<GateId> order;
    order.reserve(gates_.size());
    size_t head = 0;
    while (head < ready.size()) {
        GateId id = ready[head++];
        order.push_back(id);
        for (GateId out : comb_fanout[id]) {
            if (--pending[out] == 0)
                ready.push_back(out);
        }
    }

    size_t comb_total = 0;
    for (GateId i = 0; i < gates_.size(); i++) {
        if (!is_source(i))
            comb_total++;
    }
    if (order.size() != comb_total)
        bespoke_panic("combinational loop: levelized ", order.size(),
                      " of ", comb_total, " combinational gates");
    return order;
}

bool
Netlist::hasCombLoop(GateId *example) const
{
    // Kahn's algorithm over combinational edges, like levelize(), but
    // reporting instead of panicking.
    auto is_source = [&](GateId id) {
        const Gate &g = gates_[id];
        return g.type == CellType::INPUT || g.type == CellType::TIE0 ||
               g.type == CellType::TIE1 || cellSequential(g.type);
    };

    std::vector<int> pending(gates_.size(), 0);
    std::vector<GateId> ready;
    std::vector<std::vector<GateId>> comb_fanout(gates_.size());
    for (GateId i = 0; i < gates_.size(); i++) {
        if (is_source(i))
            continue;
        const Gate &g = gates_[i];
        int deps = 0;
        for (int p = 0; p < g.numInputs(); p++) {
            if (!is_source(g.in[p])) {
                deps++;
                comb_fanout[g.in[p]].push_back(i);
            }
        }
        pending[i] = deps;
        if (deps == 0)
            ready.push_back(i);
    }

    size_t head = 0;
    while (head < ready.size()) {
        GateId id = ready[head++];
        for (GateId out : comb_fanout[id]) {
            if (--pending[out] == 0)
                ready.push_back(out);
        }
    }

    for (GateId i = 0; i < gates_.size(); i++) {
        if (!is_source(i) && pending[i] > 0) {
            *example = i;
            return true;
        }
    }
    return false;
}

std::vector<std::vector<GateId>>
Netlist::fanouts() const
{
    std::vector<std::vector<GateId>> fo(gates_.size());
    for (GateId i = 0; i < gates_.size(); i++) {
        const Gate &g = gates_[i];
        for (int p = 0; p < g.numInputs(); p++)
            fo[g.in[p]].push_back(i);
    }
    return fo;
}

void
Netlist::validate() const
{
    for (GateId i = 0; i < gates_.size(); i++) {
        const Gate &g = gates_[i];
        int n = g.numInputs();
        for (int p = 0; p < n; p++) {
            bespoke_assert(g.in[p] != kNoGate, "gate ", i,
                           " has unconnected pin ", p);
            bespoke_assert(g.in[p] < gates_.size(), "gate ", i,
                           " pin ", p, " out of range");
        }
        for (int p = n; p < 3; p++) {
            bespoke_assert(g.in[p] == kNoGate, "gate ", i,
                           " has extra connection on pin ", p);
        }
    }
    levelize(); // panics on combinational loops
}

std::vector<GateId>
Netlist::canonicalOrder() const
{
    std::vector<GateId> order;
    order.reserve(gates_.size());
    std::vector<char> seen(gates_.size(), 0);
    // Canonical position of each gate, filled as the order grows.
    std::vector<uint32_t> pos(gates_.size(), 0);

    auto take = [&](GateId id) {
        seen[id] = 1;
        pos[id] = static_cast<uint32_t>(order.size());
        order.push_back(id);
    };

    // Pre-order DFS through fanins in pin order. The traversal is
    // anchored purely at port names and pin positions, so two
    // renumberings of the same graph walk it identically.
    std::vector<GateId> stack;
    auto visit = [&](GateId root) {
        stack.push_back(root);
        while (!stack.empty()) {
            GateId id = stack.back();
            stack.pop_back();
            if (seen[id])
                continue;
            take(id);
            const Gate &g = gates_[id];
            for (int p = g.numInputs() - 1; p >= 0; p--)
                stack.push_back(g.in[p]);
        }
    };

    std::vector<std::pair<std::string, GateId>> outs, ins;
    for (const auto &[name, id] : ports_) {
        (gates_[id].type == CellType::OUTPUT ? outs : ins)
            .emplace_back(name, id);
    }
    std::sort(outs.begin(), outs.end());
    std::sort(ins.begin(), ins.end());
    for (const auto &[name, id] : outs)
        visit(id);
    for (const auto &[name, id] : ins)
        visit(id);

    // Stragglers: gates feeding no output cone (dead logic). Number
    // them in rounds by a purely structural key so the order stays
    // renumbering-invariant; gates with identical keys are
    // interchangeable duplicates and may take either slot.
    using Key = std::vector<uint64_t>;
    while (order.size() < gates_.size()) {
        std::vector<std::pair<Key, GateId>> ready;
        for (GateId i = 0; i < gates_.size(); i++) {
            if (seen[i])
                continue;
            const Gate &g = gates_[i];
            bool fanins_done = true;
            for (int p = 0; p < g.numInputs(); p++)
                fanins_done = fanins_done && seen[g.in[p]];
            if (!fanins_done)
                continue;
            Key k{static_cast<uint64_t>(g.type),
                  static_cast<uint64_t>(g.drive),
                  static_cast<uint64_t>(g.module),
                  g.resetValue ? 1ull : 0ull};
            for (int p = 0; p < g.numInputs(); p++)
                k.push_back(pos[g.in[p]]);
            ready.emplace_back(std::move(k), i);
        }
        if (ready.empty()) {
            // Dead sequential cycles: break them by taking every
            // remaining flop, keyed without fanins.
            for (GateId i = 0; i < gates_.size(); i++) {
                if (seen[i] || !cellSequential(gates_[i].type))
                    continue;
                const Gate &g = gates_[i];
                ready.emplace_back(
                    Key{static_cast<uint64_t>(g.type),
                        static_cast<uint64_t>(g.drive),
                        static_cast<uint64_t>(g.module),
                        g.resetValue ? 1ull : 0ull},
                    i);
            }
        }
        if (ready.empty()) {
            // Combinational cycle (validate() rejects these); fall
            // back to original order so the function still returns.
            for (GateId i = 0; i < gates_.size(); i++) {
                if (!seen[i])
                    take(i);
            }
            break;
        }
        std::stable_sort(ready.begin(), ready.end(),
                         [](const auto &a, const auto &b) {
                             return a.first < b.first;
                         });
        for (const auto &[key, id] : ready)
            take(id);
    }
    return order;
}

uint64_t
Netlist::contentHash() const
{
    std::vector<GateId> order = canonicalOrder();
    std::vector<uint32_t> pos(gates_.size(), 0);
    for (size_t i = 0; i < order.size(); i++)
        pos[order[i]] = static_cast<uint32_t>(i);

    uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis
    auto mixByte = [&h](uint8_t b) {
        h ^= b;
        h *= 1099511628211ull;  // FNV-1a prime
    };
    auto mix32 = [&](uint32_t v) {
        for (int i = 0; i < 4; i++)
            mixByte(static_cast<uint8_t>(v >> (8 * i)));
    };

    mix32(static_cast<uint32_t>(gates_.size()));
    for (GateId id : order) {
        const Gate &g = gates_[id];
        mixByte(static_cast<uint8_t>(g.type));
        mixByte(static_cast<uint8_t>(g.drive));
        // Pseudo-gate module labels are bookkeeping the interchange
        // formats do not carry; keep them out of the identity.
        mixByte(cellPseudo(g.type) ? 0xff
                                   : static_cast<uint8_t>(g.module));
        mixByte(g.resetValue ? 1 : 0);
        for (int p = 0; p < g.numInputs(); p++)
            mix32(pos[g.in[p]]);
    }

    std::vector<std::pair<std::string, GateId>> sorted_ports(
        ports_.begin(), ports_.end());
    std::sort(sorted_ports.begin(), sorted_ports.end());
    for (const auto &[name, id] : sorted_ports) {
        for (char c : name)
            mixByte(static_cast<uint8_t>(c));
        mixByte(0);
        mixByte(gates_[id].type == CellType::INPUT ? 1 : 2);
        mix32(pos[id]);
    }
    return h;
}

NetlistStats
Netlist::stats() const
{
    NetlistStats s;
    for (const Gate &g : gates_) {
        if (cellPseudo(g.type))
            continue;
        s.numCells++;
        if (cellSequential(g.type))
            s.numSequential++;
        s.area += cellArea(g.type, g.drive);
        s.leakage += cellLeakage(g.type, g.drive);
    }
    return s;
}

NetlistStats
Netlist::moduleStats(Module m) const
{
    NetlistStats s;
    for (const Gate &g : gates_) {
        if (cellPseudo(g.type) || g.module != m)
            continue;
        s.numCells++;
        if (cellSequential(g.type))
            s.numSequential++;
        s.area += cellArea(g.type, g.drive);
        s.leakage += cellLeakage(g.type, g.drive);
    }
    return s;
}

} // namespace bespoke
