#include "src/netlist/netlist.hh"

#include <algorithm>

#include "src/util/logging.hh"

namespace bespoke
{

const char *
moduleName(Module m)
{
    switch (m) {
      case Module::Frontend:
        return "frontend";
      case Module::Exec:
        return "execution_unit";
      case Module::Alu:
        return "alu";
      case Module::RF:
        return "register_file";
      case Module::Mult:
        return "multiplier";
      case Module::MemBB:
        return "mem_backbone";
      case Module::Sfr:
        return "sfr";
      case Module::Wdg:
        return "watchdog";
      case Module::Clock:
        return "clock_module";
      case Module::Dbg:
        return "dbg";
      case Module::Timer:
        return "timer";
      case Module::Uart:
        return "uart";
      case Module::Glue:
        return "glue";
      default:
        return "?";
    }
}

GateId
Netlist::addGate(CellType type, Module module, GateId in0, GateId in1,
                 GateId in2)
{
    Gate g;
    g.type = type;
    g.module = module;
    g.in = {in0, in1, in2};
    int n = cellNumInputs(type);
    for (int i = 0; i < n; i++) {
        bespoke_assert(g.in[i] != kNoGate,
                       "unconnected pin ", i, " on new ",
                       cellParams(type).name);
    }
    gates_.push_back(g);
    return static_cast<GateId>(gates_.size() - 1);
}

GateId
Netlist::addInput(const std::string &name, Module module)
{
    GateId id = addGate(CellType::INPUT, module);
    bespoke_assert(!ports_.count(name), "duplicate port ", name);
    ports_[name] = id;
    names_[id] = name;
    return id;
}

GateId
Netlist::addOutput(const std::string &name, GateId src, Module module)
{
    GateId id = addGate(CellType::OUTPUT, module, src);
    bespoke_assert(!ports_.count(name), "duplicate port ", name);
    ports_[name] = id;
    names_[id] = name;
    return id;
}

GateId
Netlist::tie(bool value, Module module)
{
    uint32_t key = (static_cast<uint32_t>(module) << 1) | (value ? 1 : 0);
    auto it = tieCache_.find(key);
    if (it != tieCache_.end())
        return it->second;
    GateId id = addGate(value ? CellType::TIE1 : CellType::TIE0, module);
    tieCache_[key] = id;
    return id;
}

void
Netlist::setResetValue(GateId id, bool value)
{
    bespoke_assert(cellSequential(gates_[id].type));
    gates_[id].resetValue = value;
}

void
Netlist::setName(GateId id, const std::string &name)
{
    names_[id] = name;
}

void
Netlist::setFanin(GateId id, int pin, GateId src)
{
    bespoke_assert(pin >= 0 && pin < gates_[id].numInputs());
    gates_[id].in[pin] = src;
}

void
Netlist::registerPort(const std::string &name, GateId id)
{
    bespoke_assert(!ports_.count(name), "duplicate port ", name);
    ports_[name] = id;
    names_[id] = name;
}

const std::string &
Netlist::name(GateId id) const
{
    static const std::string empty;
    auto it = names_.find(id);
    return it == names_.end() ? empty : it->second;
}

GateId
Netlist::port(const std::string &name) const
{
    auto it = ports_.find(name);
    if (it == ports_.end())
        bespoke_fatal("no port named '", name, "'");
    return it->second;
}

bool
Netlist::hasPort(const std::string &name) const
{
    return ports_.count(name) != 0;
}

std::vector<GateId>
Netlist::bus(const std::string &prefix, int width) const
{
    std::vector<GateId> ids(width);
    for (int i = 0; i < width; i++)
        ids[i] = port(prefix + "[" + std::to_string(i) + "]");
    return ids;
}

std::vector<GateId>
Netlist::inputIds() const
{
    std::vector<GateId> ids;
    for (GateId i = 0; i < gates_.size(); i++) {
        if (gates_[i].type == CellType::INPUT)
            ids.push_back(i);
    }
    return ids;
}

std::vector<GateId>
Netlist::outputIds() const
{
    std::vector<GateId> ids;
    for (GateId i = 0; i < gates_.size(); i++) {
        if (gates_[i].type == CellType::OUTPUT)
            ids.push_back(i);
    }
    return ids;
}

std::vector<GateId>
Netlist::sequentialIds() const
{
    std::vector<GateId> ids;
    for (GateId i = 0; i < gates_.size(); i++) {
        if (cellSequential(gates_[i].type))
            ids.push_back(i);
    }
    return ids;
}

std::vector<GateId>
Netlist::levelize() const
{
    // Kahn's algorithm over combinational edges only. Sources (INPUT,
    // TIE, DFF, DFFE) have their values available at the start of a
    // cycle and never appear in the order.
    auto is_source = [&](GateId id) {
        const Gate &g = gates_[id];
        return g.type == CellType::INPUT || g.type == CellType::TIE0 ||
               g.type == CellType::TIE1 || cellSequential(g.type);
    };

    std::vector<int> pending(gates_.size(), 0);
    std::vector<GateId> ready;
    for (GateId i = 0; i < gates_.size(); i++) {
        if (is_source(i))
            continue;
        const Gate &g = gates_[i];
        int n = g.numInputs();
        int deps = 0;
        for (int p = 0; p < n; p++) {
            if (!is_source(g.in[p]))
                deps++;
        }
        pending[i] = deps;
        if (deps == 0)
            ready.push_back(i);
    }

    // Combinational fanout lists (edges into non-source gates only).
    std::vector<std::vector<GateId>> comb_fanout(gates_.size());
    for (GateId i = 0; i < gates_.size(); i++) {
        if (is_source(i))
            continue;
        const Gate &g = gates_[i];
        for (int p = 0; p < g.numInputs(); p++) {
            if (!is_source(g.in[p]))
                comb_fanout[g.in[p]].push_back(i);
        }
    }

    std::vector<GateId> order;
    order.reserve(gates_.size());
    size_t head = 0;
    while (head < ready.size()) {
        GateId id = ready[head++];
        order.push_back(id);
        for (GateId out : comb_fanout[id]) {
            if (--pending[out] == 0)
                ready.push_back(out);
        }
    }

    size_t comb_total = 0;
    for (GateId i = 0; i < gates_.size(); i++) {
        if (!is_source(i))
            comb_total++;
    }
    if (order.size() != comb_total)
        bespoke_panic("combinational loop: levelized ", order.size(),
                      " of ", comb_total, " combinational gates");
    return order;
}

std::vector<std::vector<GateId>>
Netlist::fanouts() const
{
    std::vector<std::vector<GateId>> fo(gates_.size());
    for (GateId i = 0; i < gates_.size(); i++) {
        const Gate &g = gates_[i];
        for (int p = 0; p < g.numInputs(); p++)
            fo[g.in[p]].push_back(i);
    }
    return fo;
}

void
Netlist::validate() const
{
    for (GateId i = 0; i < gates_.size(); i++) {
        const Gate &g = gates_[i];
        int n = g.numInputs();
        for (int p = 0; p < n; p++) {
            bespoke_assert(g.in[p] != kNoGate, "gate ", i,
                           " has unconnected pin ", p);
            bespoke_assert(g.in[p] < gates_.size(), "gate ", i,
                           " pin ", p, " out of range");
        }
        for (int p = n; p < 3; p++) {
            bespoke_assert(g.in[p] == kNoGate, "gate ", i,
                           " has extra connection on pin ", p);
        }
    }
    levelize(); // panics on combinational loops
}

NetlistStats
Netlist::stats() const
{
    NetlistStats s;
    for (const Gate &g : gates_) {
        if (cellPseudo(g.type))
            continue;
        s.numCells++;
        if (cellSequential(g.type))
            s.numSequential++;
        s.area += cellArea(g.type, g.drive);
        s.leakage += cellLeakage(g.type, g.drive);
    }
    return s;
}

NetlistStats
Netlist::moduleStats(Module m) const
{
    NetlistStats s;
    for (const Gate &g : gates_) {
        if (cellPseudo(g.type) || g.module != m)
            continue;
        s.numCells++;
        if (cellSequential(g.type))
            s.numSequential++;
        s.area += cellArea(g.type, g.drive);
        s.leakage += cellLeakage(g.type, g.drive);
    }
    return s;
}

} // namespace bespoke
