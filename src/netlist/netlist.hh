/**
 * @file
 * Gate-level netlist representation.
 *
 * A netlist is a flat array of gates; each gate drives exactly one net,
 * so nets are identified with their driving gate. Primary inputs and
 * outputs are pseudo-gates (CellType::INPUT / CellType::OUTPUT) so that
 * the whole design is one homogeneous graph. Sequential state is held in
 * DFF/DFFE cells, all clocked by a single implicit global clock; the
 * asynchronous reset is modeled as a per-flop reset value applied when
 * the simulator asserts reset (paper Algorithm 1, line 4).
 *
 * Every gate carries the openMSP430-style module label it belongs to
 * (frontend, execution unit, register file, multiplier, ...), which the
 * paper's per-module breakdowns (Figs. 3, 4, 10) and the power-gating
 * baseline (Fig. 15) rely on.
 */

#ifndef BESPOKE_NETLIST_NETLIST_HH
#define BESPOKE_NETLIST_NETLIST_HH

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/netlist/cell_library.hh"

namespace bespoke
{

using GateId = uint32_t;
constexpr GateId kNoGate = 0xffffffffu;

/** openMSP430-style module decomposition of the bsp430 core. */
enum class Module : uint8_t
{
    Frontend,  ///< fetch / decode / state machine
    Exec,      ///< execution unit glue, condition codes
    Alu,       ///< the ALU proper (subset of execution unit in the paper)
    RF,        ///< register file
    Mult,      ///< 16x16 hardware multiplier peripheral
    MemBB,     ///< memory backbone (bus mux / address decode)
    Sfr,       ///< special function registers (IE/IFG)
    Wdg,       ///< watchdog timer
    Clock,     ///< clock module (divider / control)
    Dbg,       ///< debug unit
    Timer,     ///< 16-bit timer w/ compare (extended core only)
    Uart,      ///< UART transmitter (extended core only)
    Glue,      ///< top-level glue
    NumModules,
};

constexpr int kNumModules = static_cast<int>(Module::NumModules);

/** Human-readable module name. */
const char *moduleName(Module m);

/** Reverse lookup of moduleName(); false for unknown names. */
bool moduleByName(const std::string &name, Module *out);

/** One gate instance. */
struct Gate
{
    CellType type = CellType::INPUT;
    Drive drive = Drive::X1;
    Module module = Module::Glue;
    /** Reset value for sequential cells. */
    bool resetValue = false;
    /** Fanin nets (= driving gate ids); kNoGate when unused. */
    std::array<GateId, 3> in = {kNoGate, kNoGate, kNoGate};

    int numInputs() const { return cellNumInputs(type); }
};

/** Kind of a recorded datapath instance. */
enum class InstanceKind : uint8_t
{
    Adder,    ///< adder/subtractor block (see AdderKind)
    MuxTree,  ///< N:1 mux tree
};

/**
 * Word-level datapath instance metadata, recorded by NetBuilder when it
 * emits an adder or mux tree and consumed by the cost-driven rewrite
 * search (src/transform/pass_pipeline). Pure side information: it names
 * the operand and result *nets* of the block, never its internal gates,
 * so it stays valid as long as those nets exist. Excluded from
 * contentHash() (two netlists that differ only in recorded instances
 * are the same design); remapped by Rewriter::compact() and carried by
 * the canonical JSON interchange format (Verilog export drops it).
 */
struct DatapathInstance
{
    InstanceKind kind = InstanceKind::Adder;
    Module module = Module::Glue;
    /** Adder: the AdderKind it was built as. MuxTree: 0. */
    uint8_t variant = 0;
    /** Adder: {width}. MuxTree: {selBits, choices, width}. */
    std::vector<uint32_t> shape;
    /**
     * Operand nets, external to the block. Adder: a[0..w) b[0..w)
     * carryIn. MuxTree: sel[0..s) then the choice buses flattened.
     */
    std::vector<GateId> inputs;
    /**
     * Result nets. Adder: sum[0..w) carries[0..w). MuxTree: the output
     * bus. Entries become kNoGate when rewriting folded that net away.
     */
    std::vector<GateId> outputs;
};

/** Human-readable instance kind name ("adder" / "mux_tree"). */
const char *instanceKindName(InstanceKind k);
/** Reverse lookup of instanceKindName(); false for unknown names. */
bool instanceKindByName(const std::string &name, InstanceKind *out);

/** Aggregate size/power numbers for a netlist (or one module of it). */
struct NetlistStats
{
    size_t numCells = 0;       ///< real silicon cells (excl. pseudo)
    size_t numSequential = 0;  ///< DFF/DFFE count
    double area = 0.0;         ///< µm² (cell area; see Power for layout)
    double leakage = 0.0;      ///< nW at 1.0 V
};

/**
 * The netlist graph. Construction is append-only; structural transforms
 * (cutting & stitching, resynthesis) build a new netlist and return a
 * gate-id mapping (see src/transform).
 */
class Netlist
{
  public:
    Netlist() = default;

    /** @name Construction */
    /// @{
    GateId addGate(CellType type, Module module, GateId in0 = kNoGate,
                   GateId in1 = kNoGate, GateId in2 = kNoGate);
    GateId addInput(const std::string &name, Module module = Module::Glue);
    GateId addOutput(const std::string &name, GateId src,
                     Module module = Module::Glue);
    /** Constant driver (TIE0/TIE1), shared per value per module. */
    GateId tie(bool value, Module module = Module::Glue);
    /** The shared tie for (value, module) if one exists, else kNoGate. */
    GateId findTie(bool value, Module module = Module::Glue) const;
    /** Set a flop's reset value (defaults to 0). */
    void setResetValue(GateId id, bool value);
    /** Attach a debug name to any gate. */
    void setName(GateId id, const std::string &name);
    /** Reconnect one fanin pin of a gate (used by transforms). */
    void setFanin(GateId id, int pin, GateId src);
    /**
     * Register an existing gate under a port name (used by transforms
     * that re-create OUTPUT pseudo-gates without addOutput).
     */
    void registerPort(const std::string &name, GateId id);
    /// @}

    /** @name Access */
    /// @{
    const Gate &gate(GateId id) const { return gates_[id]; }
    Gate &gateRef(GateId id) { return gates_[id]; }
    size_t size() const { return gates_.size(); }
    const std::vector<Gate> &gates() const { return gates_; }
    const std::string &name(GateId id) const;
    /// @}

    /** @name Ports */
    /// @{
    /** Look up a named INPUT/OUTPUT gate; fatal if missing. */
    GateId port(const std::string &name) const;
    /** True if a port with this name exists. */
    bool hasPort(const std::string &name) const;
    /** Look up bus ports "prefix[0]" .. "prefix[width-1]". */
    std::vector<GateId> bus(const std::string &prefix, int width) const;
    const std::unordered_map<std::string, GateId> &ports() const
    {
        return ports_;
    }
    /** All attached debug names (ports included), id -> name. */
    const std::unordered_map<GateId, std::string> &gateNames() const
    {
        return names_;
    }
    std::vector<GateId> inputIds() const;
    std::vector<GateId> outputIds() const;
    /// @}

    /** @name Analysis helpers */
    /// @{
    /**
     * Topological order of all combinational gates and OUTPUT
     * pseudo-gates. INPUT/TIE/DFF/DFFE are sources and do not appear.
     * Panics on a combinational loop.
     */
    std::vector<GateId> levelize() const;

    /** Per-gate fanout lists (indices of gates this gate feeds). */
    std::vector<std::vector<GateId>> fanouts() const;

    /** Ids of all sequential cells. */
    std::vector<GateId> sequentialIds() const;

    /** Check structural sanity (all pins wired, arities right). */
    void validate() const;

    /**
     * Non-panicking combinational loop detection. Interchange loaders
     * use this to reject bad input as a user error where levelize()
     * would treat it as a broken internal invariant. Returns true and
     * names one gate on a cycle through *example.
     */
    bool hasCombLoop(GateId *example) const;

    /**
     * Canonical gate ordering: a permutation of all gate ids that is
     * invariant under renumbering (two isomorphic netlists produce the
     * same canonical sequence of gates). Anchored at the named ports:
     * depth-first traversal from the output ports in name order,
     * descending through fanins in pin order (crossing flop
     * boundaries), then the input ports in name order, then any
     * remaining (dead) gates in a structurally determined order.
     * Returns canonical position -> gate id.
     */
    std::vector<GateId> canonicalOrder() const;

    /**
     * Content hash: FNV-1a over the canonical form (gate types,
     * drives, module labels, reset values, and fanin edges in
     * canonical numbering, plus the port bindings). Invariant under
     * gate renumbering, so import(export(N)) hashes identically to N;
     * module labels of INPUT/OUTPUT pseudo-gates are excluded (they
     * are bookkeeping that the interchange formats do not carry).
     */
    uint64_t contentHash() const;

    /** @name Datapath instances (side information; see DatapathInstance) */
    /// @{
    void addInstance(DatapathInstance inst)
    {
        instances_.push_back(std::move(inst));
    }
    const std::vector<DatapathInstance> &instances() const
    {
        return instances_;
    }
    /** Mutable access for transforms that remap or rebuild instances. */
    std::vector<DatapathInstance> &instancesRef() { return instances_; }
    /// @}

    /** Whole-design stats over real cells. */
    NetlistStats stats() const;
    /** Stats restricted to one module label. */
    NetlistStats moduleStats(Module m) const;
    /** Number of real silicon cells (excludes INPUT/OUTPUT pseudo). */
    size_t numCells() const { return stats().numCells; }
    /// @}

  private:
    std::vector<Gate> gates_;
    std::unordered_map<std::string, GateId> ports_;
    std::unordered_map<GateId, std::string> names_;
    /** Shared tie cells per (module, value). */
    std::unordered_map<uint32_t, GateId> tieCache_;
    std::vector<DatapathInstance> instances_;
};

} // namespace bespoke

#endif // BESPOKE_NETLIST_NETLIST_HH
