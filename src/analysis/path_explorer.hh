/**
 * @file
 * One worker of the activity-analysis exploration engine.
 *
 * A PathExplorer owns everything one worker needs to simulate paths
 * of the execution tree without synchronizing with anyone: its own
 * Soc (stamped out cheaply from the shared per-netlist SocContext),
 * its own ActivityTracker (merged into the final result via
 * ActivityTracker::mergeFrom, which is commutative), and its own
 * path/cycle/fork counters. Everything shared — the work frontier,
 * the conservative-widening tables, the global budgets — lives behind
 * the Frontier, which is the only object workers touch concurrently.
 *
 * run() is the worker loop: pop a state, explore the path until it
 * halts / forks continuations back onto the frontier / is pruned at a
 * merge point, repeat until the frontier reports the exploration is
 * over. With one worker this reproduces the historical serial engine
 * bit for bit (same LIFO order, same table discipline, same budget
 * checks at the same points).
 */

#ifndef BESPOKE_ANALYSIS_PATH_EXPLORER_HH
#define BESPOKE_ANALYSIS_PATH_EXPLORER_HH

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/analysis/frontier.hh"
#include "src/sim/lane_sim.hh"
#include "src/sim/sim_context.hh"

namespace bespoke
{

/**
 * Read-only state shared by all workers of one analysis: the resolved
 * per-netlist simulation context, the program, the (thread-resolved)
 * options, and the sorted halt-address table.
 */
struct ExplorationContext
{
    ExplorationContext(const Netlist &netlist, const AsmProgram &prog,
                       const AnalysisOptions &opts);

    std::shared_ptr<const SocContext> soc;
    const AsmProgram &prog;
    AnalysisOptions opts;
    /** Resolved LaneSim batch width (1 = scalar-only exploration). */
    int lanes;
    /** Resolved plane width in bits (64/128/256/512). */
    int planeWidth;
    /**
     * Frontier states one worker batches per sweep: `lanes` on 64-bit
     * planes, the full plane width above (a wider word exists to carry
     * more states; capping it at `lanes` would just simulate dead
     * lanes).
     */
    int batchLanes;
    /** Sorted `jmp .` addresses; membership via binary search. */
    std::vector<uint16_t> haltAddrs;

    bool isHaltPc(uint16_t pc) const;
};

class PathExplorer
{
  public:
    PathExplorer(const ExplorationContext &ctx, Frontier &frontier,
                 int worker_id);

    /**
     * Drive the Soc to the analysis entry state (all inputs X, IRQ
     * line per options, reset) and capture the reset-time values in
     * this worker's tracker. Deterministic: every worker captures the
     * identical initial state.
     */
    void prepare();

    /** The root work item (reset state, PC 0); push exactly one. */
    WorkItem initialItem();

    /** Worker loop: explore paths until the frontier is exhausted. */
    void run();

    ActivityTracker &tracker() { return tracker_; }

    /** @name Per-worker statistics */
    /// @{
    int workerId() const { return workerId_; }
    uint64_t pathsExplored() const { return paths_; }
    uint64_t cyclesSimulated() const { return cycles_; }
    uint64_t forks() const { return forks_; }
    /** Scalar gate evaluations plus lane-sim gate visits. */
    uint64_t gatesEvaluated() const;
    uint64_t laneSweeps() const { return laneSweeps_; }
    uint64_t laneCycles() const { return laneCycles_; }
    /// @}

  private:
    MachineState capture() const;
    void restore(const MachineState &s);

    /** First decision net that is X after evaluation, if any. */
    struct XDec
    {
        GateId net;
        uint8_t kind;  ///< DecKind, part of the merge-table key
    };
    std::optional<XDec> firstXDecision() const;
    bool resolveDecisions(bool &forked);
    void forkRec(const MachineState &pre,
                 const std::vector<std::pair<GateId, Logic>> &forces);
    void enumerateSymbolicPc(SWord pc, const MachineState &base,
                             uint32_t depth);
    void runPath(const MachineState &start);

    /** @name Lane-batched exploration (ctx.lanes > 1) */
    /// @{
    /**
     * Worker loop popping whole batches onto a lane engine whose
     * plane width is chosen per batch: the narrowest instantiated
     * width that fits the popped batch, capped by ctx.planeWidth.
     * Empty lanes cost plane words regardless of occupancy, so a
     * shallow frontier runs on 64-bit planes even at --plane-bits 512;
     * wide planes engage exactly when the frontier is deep enough to
     * fill them. Engines are built lazily and reused across batches.
     */
    void runLanes();
    /** Simulate one batch of frontier states lane-parallel. */
    template <int W>
    void laneSweep(LaneSocT<W> &ls, std::vector<WorkItem> batch);
    /**
     * Continue a path that was widened at a ctl-xfer merge point:
     * replays the scalar engine's post-widening tail (re-evaluate,
     * resolve any surfaced decisions, finish the cycle) and pushes the
     * post-latch state back to the frontier instead of looping inline.
     */
    void continueWidened(const MachineState &cur, uint32_t depth);
    /// @}

    /** Simulated one cycle to completion: charge both budgets. */
    void chargeCycle()
    {
        cycles_++;
        frontier_.chargeCycle();
    }

    const ExplorationContext &ctx_;
    Frontier &frontier_;
    const int workerId_;
    Soc soc_;
    ActivityTracker tracker_;
    /** Gate visits of this worker's (already destroyed) lane engine. */
    uint64_t laneGateVisits_ = 0;
    uint16_t lastFetchPc_ = 0;
    uint32_t curDepth_ = 0;  ///< fork depth of the current path
    uint64_t paths_ = 0;
    uint64_t cycles_ = 0;
    uint64_t forks_ = 0;
    uint64_t laneSweeps_ = 0;
    uint64_t laneCycles_ = 0;
};

} // namespace bespoke

#endif // BESPOKE_ANALYSIS_PATH_EXPLORER_HH
