/**
 * @file
 * One worker of the activity-analysis exploration engine.
 *
 * A PathExplorer owns everything one worker needs to simulate paths
 * of the execution tree without synchronizing with anyone: its own
 * Soc (stamped out cheaply from the shared per-netlist SocContext),
 * its own ActivityTracker (merged into the final result via
 * ActivityTracker::mergeFrom, which is commutative), and its own
 * path/cycle/fork counters. Everything shared — the work frontier,
 * the conservative-widening tables, the global budgets — lives behind
 * the Frontier, which is the only object workers touch concurrently.
 *
 * run() is the worker loop: pop a state, explore the path until it
 * halts / forks continuations back onto the frontier / is pruned at a
 * merge point, repeat until the frontier reports the exploration is
 * over. With one worker this reproduces the historical serial engine
 * bit for bit (same LIFO order, same table discipline, same budget
 * checks at the same points).
 */

#ifndef BESPOKE_ANALYSIS_PATH_EXPLORER_HH
#define BESPOKE_ANALYSIS_PATH_EXPLORER_HH

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/analysis/frontier.hh"
#include "src/sim/sim_context.hh"

namespace bespoke
{

/**
 * Read-only state shared by all workers of one analysis: the resolved
 * per-netlist simulation context, the program, the (thread-resolved)
 * options, and the sorted halt-address table.
 */
struct ExplorationContext
{
    ExplorationContext(const Netlist &netlist, const AsmProgram &prog,
                       const AnalysisOptions &opts);

    std::shared_ptr<const SocContext> soc;
    const AsmProgram &prog;
    AnalysisOptions opts;
    /** Sorted `jmp .` addresses; membership via binary search. */
    std::vector<uint16_t> haltAddrs;

    bool isHaltPc(uint16_t pc) const;
};

class PathExplorer
{
  public:
    PathExplorer(const ExplorationContext &ctx, Frontier &frontier,
                 int worker_id);

    /**
     * Drive the Soc to the analysis entry state (all inputs X, IRQ
     * line per options, reset) and capture the reset-time values in
     * this worker's tracker. Deterministic: every worker captures the
     * identical initial state.
     */
    void prepare();

    /** The root work item (reset state, PC 0); push exactly one. */
    WorkItem initialItem();

    /** Worker loop: explore paths until the frontier is exhausted. */
    void run();

    ActivityTracker &tracker() { return tracker_; }

    /** @name Per-worker statistics */
    /// @{
    int workerId() const { return workerId_; }
    uint64_t pathsExplored() const { return paths_; }
    uint64_t cyclesSimulated() const { return cycles_; }
    uint64_t forks() const { return forks_; }
    /// @}

  private:
    MachineState capture() const;
    void restore(const MachineState &s);

    /** First decision net that is X after evaluation, if any. */
    struct XDec
    {
        GateId net;
        uint8_t kind;  ///< DecKind, part of the merge-table key
    };
    std::optional<XDec> firstXDecision() const;
    bool resolveDecisions(bool &forked);
    void forkRec(const MachineState &pre,
                 const std::vector<std::pair<GateId, Logic>> &forces);
    void enumerateSymbolicPc(SWord pc);
    void runPath(const MachineState &start);

    /** Simulated one cycle to completion: charge both budgets. */
    void chargeCycle()
    {
        cycles_++;
        frontier_.chargeCycle();
    }

    const ExplorationContext &ctx_;
    Frontier &frontier_;
    const int workerId_;
    Soc soc_;
    ActivityTracker tracker_;
    uint16_t lastFetchPc_ = 0;
    uint32_t curDepth_ = 0;  ///< fork depth of the current path
    uint64_t paths_ = 0;
    uint64_t cycles_ = 0;
    uint64_t forks_ = 0;
};

} // namespace bespoke

#endif // BESPOKE_ANALYSIS_PATH_EXPLORER_HH
