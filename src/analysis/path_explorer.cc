#include "src/analysis/path_explorer.hh"

#include <algorithm>
#include <bit>

#include "src/util/logging.hh"
#include "src/verify/runner.hh"

namespace bespoke
{

namespace
{

/** Decision kinds, part of the conservative-table key. */
enum class DecKind : uint8_t
{
    Branch = 0,
    Irq0,
    Irq1,
    CtlXfer,
};

uint32_t
tableKey(uint16_t pc, DecKind kind)
{
    return (static_cast<uint32_t>(pc) << 2) |
           static_cast<uint32_t>(kind);
}

} // namespace

ExplorationContext::ExplorationContext(const Netlist &netlist,
                                       const AsmProgram &prog,
                                       const AnalysisOptions &opts)
    : soc(SocContext::make(netlist)), prog(prog), opts(opts),
      lanes(resolveAnalysisLanes(opts)),
      planeWidth(resolvePlaneBits(opts.planeBits)),
      batchLanes(lanes <= 1      ? 1
                 : planeWidth > 64 ? planeWidth
                                   : lanes),
      haltAddrs(haltAddresses(prog))
{
    std::sort(haltAddrs.begin(), haltAddrs.end());
}

bool
ExplorationContext::isHaltPc(uint16_t pc) const
{
    return std::binary_search(haltAddrs.begin(), haltAddrs.end(), pc);
}

PathExplorer::PathExplorer(const ExplorationContext &ctx,
                           Frontier &frontier, int worker_id)
    : ctx_(ctx), frontier_(frontier), workerId_(worker_id),
      soc_(ctx.soc, ctx.prog, /*ram_unknown=*/true, ctx.opts.simMode),
      tracker_(ctx.soc->netlist)
{
}

void
PathExplorer::prepare()
{
    soc_.setGpioIn(SWord::allX());
    soc_.setIrqExt(ctx_.opts.irqLineUnknown ? Logic::X : Logic::Zero);
    soc_.reset();
    tracker_.captureInitial(soc_.sim());
}

WorkItem
PathExplorer::initialItem()
{
    MachineState init = capture();
    init.lastFetchPc = 0;
    return WorkItem{std::move(init), 0};
}

void
PathExplorer::run()
{
    if (ctx_.lanes > 1) {
        runLanes();
        return;
    }
    WorkItem item;
    while (frontier_.pop(item)) {
        paths_++;
        curDepth_ = item.depth;
        runPath(item.state);
        frontier_.finishItem();
    }
}

uint64_t
PathExplorer::gatesEvaluated() const
{
    return soc_.sim().gatesEvaluatedTotal() + laneGateVisits_;
}

MachineState
PathExplorer::capture() const
{
    MachineState s;
    s.seq = soc_.sim().seqState();
    s.env = soc_.envState();
    s.lastFetchPc = lastFetchPc_;
    return s;
}

void
PathExplorer::restore(const MachineState &s)
{
    soc_.sim().restoreSeqState(s.seq);
    soc_.restoreEnvState(s.env);
    lastFetchPc_ = s.lastFetchPc;
}

std::optional<PathExplorer::XDec>
PathExplorer::firstXDecision() const
{
    if (soc_.decIrq0() == Logic::X) {
        return XDec{soc_.decIrq0Net(),
                    static_cast<uint8_t>(DecKind::Irq0)};
    }
    if (soc_.decIrq1() == Logic::X) {
        return XDec{soc_.decIrq1Net(),
                    static_cast<uint8_t>(DecKind::Irq1)};
    }
    if (soc_.decBranch() == Logic::X) {
        return XDec{soc_.decBranchNet(),
                    static_cast<uint8_t>(DecKind::Branch)};
    }
    return std::nullopt;
}

/**
 * Resolve X decisions for the current (already evaluated) cycle.
 * Returns false if the whole path was pruned at a merge point;
 * returns true with `forked` set if continuations were pushed.
 */
bool
PathExplorer::resolveDecisions(bool &forked)
{
    forked = false;
    auto d = firstXDecision();
    if (!d)
        return true;

    // Merge-check at the fork point.
    MachineState cur = capture();
    bool widened;
    if (frontier_.mergePoint(
            tableKey(lastFetchPc_, static_cast<DecKind>(d->kind)), cur,
            widened)) {
        return false;
    }
    if (widened) {
        restore(cur);
        soc_.evalOnly();
        tracker_.observe(soc_.sim());
    }

    // Fork: explore both decision values (recursively resolving
    // any further X decisions under each forcing).
    forks_++;
    forked = true;
    forkRec(cur, {});
    return true;
}

/**
 * Recursive forcing over the X decisions of this one cycle.
 * Invariant: with `forces` applied, evaluation leaves at least one
 * decision net at X.
 */
void
PathExplorer::forkRec(const MachineState &pre,
                      const std::vector<std::pair<GateId, Logic>> &forces)
{
    for (Logic v : {Logic::Zero, Logic::One}) {
        restore(pre);
        soc_.sim().clearForces();
        for (auto [g, val] : forces)
            soc_.sim().force(g, val);
        soc_.evalOnly();
        auto d = firstXDecision();
        bespoke_assert(d, "fork invariant violated");
        soc_.sim().force(d->net, v);
        soc_.evalOnly();
        tracker_.observe(soc_.sim());
        if (firstXDecision()) {
            std::vector<std::pair<GateId, Logic>> f = forces;
            f.push_back({d->net, v});
            soc_.sim().clearForces();
            forkRec(pre, f);
            continue;
        }
        // Decision complete: finish the cycle and enqueue the
        // post-latch continuation state.
        soc_.finishCycle();
        chargeCycle();
        soc_.sim().clearForces();
        frontier_.push(WorkItem{capture(), curDepth_ + 1});
    }
}

/**
 * Fetch-time PC with X bits: fork one continuation per concrete
 * candidate (known bits fixed, X bits enumerated), keeping only
 * candidates that are instruction heads of the binary. Patching
 * only the PC while the correlated state stays X is a sound
 * over-approximation.
 */
void
PathExplorer::enumerateSymbolicPc(SWord pc, const MachineState &base,
                                  uint32_t depth)
{
    const std::vector<int> &pc_seq_index = ctx_.soc->pcSeqIndex;
    int x_bits = 0;
    for (int b = 0; b < 16; b++) {
        if (pc.bit(b) == Logic::X) {
            x_bits++;
            bespoke_assert(pc_seq_index[b] >= 0,
                           "X PC bit ", b,
                           " is not a flop output; cannot "
                           "enumerate");
        }
    }
    auto push_candidate = [&](uint16_t cand) {
        // Candidate must be a real instruction head.
        if ((cand & 1) || !ctx_.prog.addrToLine.count(cand))
            return;
        MachineState s = base;
        for (int b = 0; b < 16; b++) {
            s.seq[pc_seq_index[b]] = static_cast<uint8_t>(
                (cand >> b) & 1 ? Logic::One : Logic::Zero);
        }
        s.lastFetchPc = cand;
        frontier_.push(WorkItem{std::move(s), depth + 1});
    };

    if (x_bits <= 8) {
        for (uint32_t combo = 0; combo < (1u << x_bits); combo++) {
            uint16_t cand = pc.val;
            int xi = 0;
            for (int b = 0; b < 16; b++) {
                if (pc.bit(b) != Logic::X)
                    continue;
                if (combo & (1u << xi))
                    cand |= static_cast<uint16_t>(1u << b);
                xi++;
            }
            push_candidate(cand);
        }
    } else {
        // Wide X PC (e.g. a fully merged return address): every
        // instruction head consistent with the known bits is a
        // possible successor.
        for (const auto &[addr, line] : ctx_.prog.addrToLine) {
            if (((addr ^ pc.val) & pc.known) == 0)
                push_candidate(addr);
        }
    }
}

void
PathExplorer::runPath(const MachineState &start)
{
    restore(start);
    while (true) {
        if (frontier_.cycles() >= ctx_.opts.maxTotalCycles)
            return;
        soc_.evalOnly();
        tracker_.observe(soc_.sim());

        // Track instruction boundaries and halting.
        if (soc_.stFetch() == Logic::One) {
            SWord pc = soc_.pc();
            if (!pc.fullyKnown()) {
                // Algorithm 1, line 29: enumerate the possible
                // concrete PCs (e.g. a merged return address on
                // the stack) and fork the tree per candidate.
                enumerateSymbolicPc(pc, capture(), curDepth_);
                return;
            }
            lastFetchPc_ = pc.val;
            if (ctx_.isHaltPc(pc.val)) {
                // Observe the steady halt loop, then end the path.
                for (int i = 0; i < 6; i++) {
                    soc_.finishCycle();
                    chargeCycle();
                    soc_.evalOnly();
                    tracker_.observe(soc_.sim());
                }
                return;
            }
        }

        bool forked = false;
        if (!resolveDecisions(forked))
            return;  // pruned
        if (forked)
            return;  // continuations pushed

        // Known control transfer: conservative-table discipline.
        if (soc_.ctlXfer() == Logic::One) {
            MachineState cur = capture();
            bool widened;
            if (frontier_.mergePoint(
                    tableKey(lastFetchPc_, DecKind::CtlXfer), cur,
                    widened)) {
                return;
            }
            if (widened) {
                // Re-evaluate from the widened state; widening can
                // surface new X decisions this very cycle.
                restore(cur);
                soc_.evalOnly();
                tracker_.observe(soc_.sim());
                bool forked2 = false;
                if (!resolveDecisions(forked2))
                    return;
                if (forked2)
                    return;
            }
        } else if (soc_.ctlXfer() == Logic::X) {
            bespoke_fatal("ctl_xfer is X outside a decision fork");
        }

        soc_.finishCycle();
        chargeCycle();
    }
}

void
PathExplorer::runLanes()
{
    const size_t cap = static_cast<size_t>(ctx_.batchLanes);
    // One lazily built engine per plane width; reused across batches
    // (construction allocates four planes per net).
    std::unique_ptr<LaneSocT<64>> ls64;
    std::unique_ptr<LaneSocT<128>> ls128;
    std::unique_ptr<LaneSocT<256>> ls256;
    std::unique_ptr<LaneSocT<512>> ls512;
    auto sweep = [&]<int W>(std::unique_ptr<LaneSocT<W>> &ls,
                            std::vector<WorkItem> b) {
        if (!ls) {
            ls = std::make_unique<LaneSocT<W>>(ctx_.soc, ctx_.prog);
            ls->setGpioIn(SWord::allX());
            ls->setIrqExt(ctx_.opts.irqLineUnknown ? Logic::X
                                                   : Logic::Zero);
        }
        laneSweep<W>(*ls, std::move(b));
    };
    std::vector<WorkItem> batch;
    while (frontier_.popBatch(cap, batch)) {
        paths_ += batch.size();
        if (batch.size() == 1) {
            // A lone state gains nothing from plane packing; the
            // scalar event-driven engine is faster for it.
            curDepth_ = batch[0].depth;
            runPath(batch[0].state);
            frontier_.finishItem();
            continue;
        }
        // Narrowest width that fits the batch (cap already limits the
        // batch to ctx.planeWidth, so the else arm is well-bounded).
        const size_t need = batch.size();
        if (need <= 64)
            sweep(ls64, std::move(batch));
        else if (need <= 128)
            sweep(ls128, std::move(batch));
        else if (need <= 256)
            sweep(ls256, std::move(batch));
        else
            sweep(ls512, std::move(batch));
    }
    laneGateVisits_ += (ls64 ? ls64->sim().gateVisitsTotal() : 0) +
                       (ls128 ? ls128->sim().gateVisitsTotal() : 0) +
                       (ls256 ? ls256->sim().gateVisitsTotal() : 0) +
                       (ls512 ? ls512->sim().gateVisitsTotal() : 0);
}

/**
 * Simulate a batch of independent frontier states, one per LaneSim
 * lane, until every lane has retired. Straight-line cycles (the vast
 * majority) run fully lane-parallel; the moment a lane reaches
 * anything that needs the fork/merge discipline — a symbolic PC, an X
 * decision, a taken control transfer that prunes or widens — its state
 * is captured and the event is handled by the exact scalar machinery,
 * so the exploration discipline is shared with the serial engine
 * rather than reimplemented. Freed lanes are refilled from the
 * frontier at the end of every cycle.
 */
template <int W>
void
PathExplorer::laneSweep(LaneSocT<W> &ls, std::vector<WorkItem> batch)
{
    using Mask = LaneMask<W>;
    // Refill up to this engine's own lane count (the batch may have
    // been sized for a wider plane than the one it landed on).
    const size_t width =
        std::min<size_t>(W, static_cast<size_t>(ctx_.batchLanes));
    std::array<uint32_t, W> depth{};
    std::array<int, W> haltCnt{};
    Mask active{};   ///< lanes being simulated and observed
    Mask control{};  ///< active lanes not in a halt countdown

    auto load = [&](int lane, WorkItem &it) {
        ls.loadLane(lane, it.state.seq, it.state.env,
                    it.state.lastFetchPc);
        depth[lane] = it.depth;
        haltCnt[lane] = -1;
        laneSet(active, lane);
        laneSet(control, lane);
    };
    for (size_t i = 0; i < batch.size(); i++)
        load(static_cast<int>(i), batch[i]);

    // Retiring a lane = this worker stops simulating it; whatever
    // continuation it has was already pushed to the frontier or run to
    // completion on the scalar engine.
    auto retire = [&](int lane) {
        laneClear(active, lane);
        laneClear(control, lane);
        frontier_.finishItem();
    };

    auto captureLane = [&](int lane) {
        MachineState s;
        s.seq = ls.seqLane(lane);
        s.env = ls.envLane(lane);
        s.lastFetchPc = ls.lastFetchPc(lane);
        return s;
    };

    while (laneAny(active)) {
        if (frontier_.cycles() >= ctx_.opts.maxTotalCycles) {
            // Abandon every in-flight lane. The batch may have drained
            // the whole stack, in which case nobody would be left to
            // notice the blown budget — declare it here.
            frontier_.declareCycleCap();
            const Mask doomed = active;  // retire() edits `active`
            forEachLane(doomed, [&](int lane) { retire(lane); });
            return;
        }

        ls.evalOnly();
        tracker_.observe(ls.sim(), active);
        laneSweeps_++;

        // Lanes whose 6-cycle halt observation window just completed
        // (the scalar engine observes the final eval and returns
        // without finishing that cycle; so do we).
        const Mask halting = active & ~control;
        forEachLane(halting, [&](int lane) {
            if (haltCnt[lane] == 0)
                retire(lane);
        });

        // Instruction fetch: symbolic PCs fork one continuation per
        // candidate; halt addresses start the observation countdown.
        const Mask fetch = ls.stFetchOneMask() & control;
        forEachLane(fetch, [&](int lane) {
            SWord pc = ls.pc(lane);
            if (!pc.fullyKnown()) {
                enumerateSymbolicPc(pc, captureLane(lane),
                                    depth[lane]);
                retire(lane);
                return;
            }
            ls.setLastFetchPc(lane, pc.val);
            if (ctx_.isHaltPc(pc.val)) {
                haltCnt[lane] = 6;
                laneClear(control, lane);
            }
        });

        // X control decisions: hand the lane over to the scalar
        // engine, which owns the fork/merge-table discipline.
        // runPath() restores and re-evaluates the captured state, so
        // it sees exactly what the lane saw (the repeated observation
        // is an idempotent OR into the toggle set) and carries the
        // path through fork resolution and beyond.
        const Mask deciding = ls.decisionXMask() & control;
        forEachLane(deciding, [&](int lane) {
            MachineState s = captureLane(lane);
            curDepth_ = depth[lane];
            runPath(s);
            retire(lane);
        });

        if (laneAny(ls.ctlXferXMask() & control))
            bespoke_fatal("ctl_xfer is X outside a decision fork");

        // Taken control transfers: the conservative-table discipline,
        // one shard-locked mergePoint per lane, same as serial.
        const Mask xfer = ls.ctlXferOneMask() & control;
        forEachLane(xfer, [&](int lane) {
            MachineState cur = captureLane(lane);
            bool widened;
            if (frontier_.mergePoint(
                    tableKey(ls.lastFetchPc(lane), DecKind::CtlXfer),
                    cur, widened)) {
                retire(lane);  // subsumed: prune
                return;
            }
            if (widened) {
                continueWidened(cur, depth[lane]);
                retire(lane);
            }
            // Neither pruned nor widened: the lane simply continues.
        });

        if (!laneAny(active))
            break;

        ls.finishCycle(active);
        uint64_t n = laneCount(active);
        cycles_ += n;
        laneCycles_ += n;
        frontier_.chargeCycles(n);
        const Mask counting = active & ~control;
        forEachLane(counting, [&](int lane) {
            if (haltCnt[lane] > 0)
                haltCnt[lane]--;
        });

        // Refill freed lanes so the batch stays as wide as the
        // frontier allows.
        size_t free = width - laneCount(active);
        if (free > 0) {
            batch.clear();
            frontier_.popMore(free, batch);
            paths_ += batch.size();
            int lane = 0;
            for (WorkItem &it : batch) {
                while (laneTest(active, lane))
                    lane++;
                load(lane, it);
            }
        }
    }
}

void
PathExplorer::continueWidened(const MachineState &cur, uint32_t depth)
{
    curDepth_ = depth;
    restore(cur);
    soc_.sim().clearForces();
    soc_.evalOnly();
    tracker_.observe(soc_.sim());
    bool forked = false;
    if (!resolveDecisions(forked))
        return;
    if (forked)
        return;
    // The scalar engine would loop straight into the next cycle here;
    // deferring the post-latch state through the frontier is the same
    // computation (work items are self-describing machine states).
    soc_.finishCycle();
    chargeCycle();
    frontier_.push(WorkItem{capture(), depth});
}

} // namespace bespoke
