#include "src/analysis/path_explorer.hh"

#include <algorithm>

#include "src/util/logging.hh"
#include "src/verify/runner.hh"

namespace bespoke
{

namespace
{

/** Decision kinds, part of the conservative-table key. */
enum class DecKind : uint8_t
{
    Branch = 0,
    Irq0,
    Irq1,
    CtlXfer,
};

uint32_t
tableKey(uint16_t pc, DecKind kind)
{
    return (static_cast<uint32_t>(pc) << 2) |
           static_cast<uint32_t>(kind);
}

} // namespace

ExplorationContext::ExplorationContext(const Netlist &netlist,
                                       const AsmProgram &prog,
                                       const AnalysisOptions &opts)
    : soc(SocContext::make(netlist)), prog(prog), opts(opts),
      haltAddrs(haltAddresses(prog))
{
    std::sort(haltAddrs.begin(), haltAddrs.end());
}

bool
ExplorationContext::isHaltPc(uint16_t pc) const
{
    return std::binary_search(haltAddrs.begin(), haltAddrs.end(), pc);
}

PathExplorer::PathExplorer(const ExplorationContext &ctx,
                           Frontier &frontier, int worker_id)
    : ctx_(ctx), frontier_(frontier), workerId_(worker_id),
      soc_(ctx.soc, ctx.prog, /*ram_unknown=*/true, ctx.opts.simMode),
      tracker_(ctx.soc->netlist)
{
}

void
PathExplorer::prepare()
{
    soc_.setGpioIn(SWord::allX());
    soc_.setIrqExt(ctx_.opts.irqLineUnknown ? Logic::X : Logic::Zero);
    soc_.reset();
    tracker_.captureInitial(soc_.sim());
}

WorkItem
PathExplorer::initialItem()
{
    MachineState init = capture();
    init.lastFetchPc = 0;
    return WorkItem{std::move(init), 0};
}

void
PathExplorer::run()
{
    WorkItem item;
    while (frontier_.pop(item)) {
        paths_++;
        curDepth_ = item.depth;
        runPath(item.state);
        frontier_.finishItem();
    }
}

MachineState
PathExplorer::capture() const
{
    MachineState s;
    s.seq = soc_.sim().seqState();
    s.env = soc_.envState();
    s.lastFetchPc = lastFetchPc_;
    return s;
}

void
PathExplorer::restore(const MachineState &s)
{
    soc_.sim().restoreSeqState(s.seq);
    soc_.restoreEnvState(s.env);
    lastFetchPc_ = s.lastFetchPc;
}

std::optional<PathExplorer::XDec>
PathExplorer::firstXDecision() const
{
    if (soc_.decIrq0() == Logic::X) {
        return XDec{soc_.decIrq0Net(),
                    static_cast<uint8_t>(DecKind::Irq0)};
    }
    if (soc_.decIrq1() == Logic::X) {
        return XDec{soc_.decIrq1Net(),
                    static_cast<uint8_t>(DecKind::Irq1)};
    }
    if (soc_.decBranch() == Logic::X) {
        return XDec{soc_.decBranchNet(),
                    static_cast<uint8_t>(DecKind::Branch)};
    }
    return std::nullopt;
}

/**
 * Resolve X decisions for the current (already evaluated) cycle.
 * Returns false if the whole path was pruned at a merge point;
 * returns true with `forked` set if continuations were pushed.
 */
bool
PathExplorer::resolveDecisions(bool &forked)
{
    forked = false;
    auto d = firstXDecision();
    if (!d)
        return true;

    // Merge-check at the fork point.
    MachineState cur = capture();
    bool widened;
    if (frontier_.mergePoint(
            tableKey(lastFetchPc_, static_cast<DecKind>(d->kind)), cur,
            widened)) {
        return false;
    }
    if (widened) {
        restore(cur);
        soc_.evalOnly();
        tracker_.observe(soc_.sim());
    }

    // Fork: explore both decision values (recursively resolving
    // any further X decisions under each forcing).
    forks_++;
    forked = true;
    forkRec(cur, {});
    return true;
}

/**
 * Recursive forcing over the X decisions of this one cycle.
 * Invariant: with `forces` applied, evaluation leaves at least one
 * decision net at X.
 */
void
PathExplorer::forkRec(const MachineState &pre,
                      const std::vector<std::pair<GateId, Logic>> &forces)
{
    for (Logic v : {Logic::Zero, Logic::One}) {
        restore(pre);
        soc_.sim().clearForces();
        for (auto [g, val] : forces)
            soc_.sim().force(g, val);
        soc_.evalOnly();
        auto d = firstXDecision();
        bespoke_assert(d, "fork invariant violated");
        soc_.sim().force(d->net, v);
        soc_.evalOnly();
        tracker_.observe(soc_.sim());
        if (firstXDecision()) {
            std::vector<std::pair<GateId, Logic>> f = forces;
            f.push_back({d->net, v});
            soc_.sim().clearForces();
            forkRec(pre, f);
            continue;
        }
        // Decision complete: finish the cycle and enqueue the
        // post-latch continuation state.
        soc_.finishCycle();
        chargeCycle();
        soc_.sim().clearForces();
        frontier_.push(WorkItem{capture(), curDepth_ + 1});
    }
}

/**
 * Fetch-time PC with X bits: fork one continuation per concrete
 * candidate (known bits fixed, X bits enumerated), keeping only
 * candidates that are instruction heads of the binary. Patching
 * only the PC while the correlated state stays X is a sound
 * over-approximation.
 */
void
PathExplorer::enumerateSymbolicPc(SWord pc)
{
    const std::vector<int> &pc_seq_index = ctx_.soc->pcSeqIndex;
    int x_bits = 0;
    for (int b = 0; b < 16; b++) {
        if (pc.bit(b) == Logic::X) {
            x_bits++;
            bespoke_assert(pc_seq_index[b] >= 0,
                           "X PC bit ", b,
                           " is not a flop output; cannot "
                           "enumerate");
        }
    }
    MachineState base = capture();
    auto push_candidate = [&](uint16_t cand) {
        // Candidate must be a real instruction head.
        if ((cand & 1) || !ctx_.prog.addrToLine.count(cand))
            return;
        MachineState s = base;
        for (int b = 0; b < 16; b++) {
            s.seq[pc_seq_index[b]] = static_cast<uint8_t>(
                (cand >> b) & 1 ? Logic::One : Logic::Zero);
        }
        s.lastFetchPc = cand;
        frontier_.push(WorkItem{std::move(s), curDepth_ + 1});
    };

    if (x_bits <= 8) {
        for (uint32_t combo = 0; combo < (1u << x_bits); combo++) {
            uint16_t cand = pc.val;
            int xi = 0;
            for (int b = 0; b < 16; b++) {
                if (pc.bit(b) != Logic::X)
                    continue;
                if (combo & (1u << xi))
                    cand |= static_cast<uint16_t>(1u << b);
                xi++;
            }
            push_candidate(cand);
        }
    } else {
        // Wide X PC (e.g. a fully merged return address): every
        // instruction head consistent with the known bits is a
        // possible successor.
        for (const auto &[addr, line] : ctx_.prog.addrToLine) {
            if (((addr ^ pc.val) & pc.known) == 0)
                push_candidate(addr);
        }
    }
}

void
PathExplorer::runPath(const MachineState &start)
{
    restore(start);
    while (true) {
        if (frontier_.cycles() >= ctx_.opts.maxTotalCycles)
            return;
        soc_.evalOnly();
        tracker_.observe(soc_.sim());

        // Track instruction boundaries and halting.
        if (soc_.stFetch() == Logic::One) {
            SWord pc = soc_.pc();
            if (!pc.fullyKnown()) {
                // Algorithm 1, line 29: enumerate the possible
                // concrete PCs (e.g. a merged return address on
                // the stack) and fork the tree per candidate.
                enumerateSymbolicPc(pc);
                return;
            }
            lastFetchPc_ = pc.val;
            if (ctx_.isHaltPc(pc.val)) {
                // Observe the steady halt loop, then end the path.
                for (int i = 0; i < 6; i++) {
                    soc_.finishCycle();
                    chargeCycle();
                    soc_.evalOnly();
                    tracker_.observe(soc_.sim());
                }
                return;
            }
        }

        bool forked = false;
        if (!resolveDecisions(forked))
            return;  // pruned
        if (forked)
            return;  // continuations pushed

        // Known control transfer: conservative-table discipline.
        if (soc_.ctlXfer() == Logic::One) {
            MachineState cur = capture();
            bool widened;
            if (frontier_.mergePoint(
                    tableKey(lastFetchPc_, DecKind::CtlXfer), cur,
                    widened)) {
                return;
            }
            if (widened) {
                // Re-evaluate from the widened state; widening can
                // surface new X decisions this very cycle.
                restore(cur);
                soc_.evalOnly();
                tracker_.observe(soc_.sim());
                bool forked2 = false;
                if (!resolveDecisions(forked2))
                    return;
                if (forked2)
                    return;
            }
        } else if (soc_.ctlXfer() == Logic::X) {
            bespoke_fatal("ctl_xfer is X outside a decision fork");
        }

        soc_.finishCycle();
        chargeCycle();
    }
}

} // namespace bespoke
