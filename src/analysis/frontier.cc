#include "src/analysis/frontier.hh"

#include "src/util/logging.hh"

namespace bespoke
{

Frontier::Frontier(const AnalysisOptions &opts)
    : maxPaths_(opts.maxPaths), maxTotalCycles_(opts.maxTotalCycles),
      concreteVisits_(opts.concreteVisits)
{
}

void
Frontier::push(WorkItem item)
{
    {
        std::lock_guard<std::mutex> lk(m_);
        if (item.depth > maxDepth_)
            maxDepth_ = item.depth;
        stack_.push_back(std::move(item));
        if (stack_.size() > peak_)
            peak_ = stack_.size();
    }
    cv_.notify_one();
}

bool
Frontier::pop(WorkItem &out)
{
    std::unique_lock<std::mutex> lk(m_);
    for (;;) {
        // Quiescence first (matching the serial engine, which only
        // consulted the budgets while work remained): all pushed work
        // explored and nobody left to push more means a clean finish.
        if (stack_.empty() && active_ == 0) {
            cv_.notify_all();
            return false;
        }
        if (stopped_)
            return false;
        if (!stack_.empty()) {
            if (paths_ >= maxPaths_ ||
                cycles_.load(std::memory_order_relaxed) >=
                    maxTotalCycles_) {
                bespoke_warn("activity analysis hit exploration cap");
                capped_.store(true, std::memory_order_relaxed);
                stopped_ = true;
                cv_.notify_all();
                return false;
            }
            out = std::move(stack_.back());
            stack_.pop_back();
            paths_++;
            active_++;
            return true;
        }
        cv_.wait(lk);
    }
}

bool
Frontier::popBatch(size_t max, std::vector<WorkItem> &out)
{
    out.clear();
    std::unique_lock<std::mutex> lk(m_);
    for (;;) {
        if (stack_.empty() && active_ == 0) {
            cv_.notify_all();
            return false;
        }
        if (stopped_)
            return false;
        if (!stack_.empty()) {
            if (paths_ >= maxPaths_ ||
                cycles_.load(std::memory_order_relaxed) >=
                    maxTotalCycles_) {
                bespoke_warn("activity analysis hit exploration cap");
                capped_.store(true, std::memory_order_relaxed);
                stopped_ = true;
                cv_.notify_all();
                return false;
            }
            while (out.size() < max && !stack_.empty() &&
                   paths_ < maxPaths_) {
                out.push_back(std::move(stack_.back()));
                stack_.pop_back();
                paths_++;
                active_++;
            }
            return true;
        }
        cv_.wait(lk);
    }
}

size_t
Frontier::popMore(size_t max, std::vector<WorkItem> &out)
{
    std::lock_guard<std::mutex> lk(m_);
    size_t n = 0;
    while (n < max && !stack_.empty() && !stopped_ &&
           paths_ < maxPaths_ &&
           cycles_.load(std::memory_order_relaxed) < maxTotalCycles_) {
        out.push_back(std::move(stack_.back()));
        stack_.pop_back();
        paths_++;
        active_++;
        n++;
    }
    return n;
}

void
Frontier::declareCycleCap()
{
    std::lock_guard<std::mutex> lk(m_);
    if (!stopped_)
        bespoke_warn("activity analysis hit exploration cap");
    capped_.store(true, std::memory_order_relaxed);
    stopped_ = true;
    cv_.notify_all();
}

void
Frontier::finishItem()
{
    std::lock_guard<std::mutex> lk(m_);
    bespoke_assert(active_ > 0, "finishItem() without a popped item");
    active_--;
    if (active_ == 0)
        cv_.notify_all();
}

bool
Frontier::mergePoint(uint32_t key, MachineState &cur, bool &widened)
{
    widened = false;
    uint64_t h = cur.hash();

    Shard &shard = shards_[key % kShards];
    std::lock_guard<std::mutex> lk(shard.m);
    KeyState &ks = shard.keys[key];

    if (!ks.exactSeen.insert(h).second)
        return true;  // exact state already explored here

    ks.visits++;
    if (ks.visits <= concreteVisits_)
        return false;  // still in the concrete-exploration budget

    if (!ks.hasConservative) {
        ks.conservative = cur;
        ks.hasConservative = true;
        return false;
    }
    if (cur.substateOf(ks.conservative))
        return true;
    merges_.fetch_add(1, std::memory_order_relaxed);
    ks.conservative = MachineState::merge(ks.conservative, cur);
    cur = ks.conservative;
    widened = true;
    return false;
}

} // namespace bespoke
