#include "src/analysis/activity_analysis.hh"

#include <chrono>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "src/util/logging.hh"
#include "src/verify/runner.hh"

namespace bespoke
{

namespace
{

uint64_t
mixHash(uint64_t h, uint64_t v)
{
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h;
}

} // namespace

bool
MachineState::substateOf(const MachineState &c) const
{
    if (lastFetchPc != c.lastFetchPc)
        return false;
    if (seq.size() != c.seq.size())
        return false;
    for (size_t i = 0; i < seq.size(); i++) {
        if (c.seq[i] == static_cast<uint8_t>(Logic::X))
            continue;
        if (seq[i] != c.seq[i])
            return false;
    }
    return env.substateOf(c.env);
}

MachineState
MachineState::merge(const MachineState &a, const MachineState &b)
{
    bespoke_assert(a.seq.size() == b.seq.size());
    MachineState m;
    m.lastFetchPc = a.lastFetchPc;
    m.seq.resize(a.seq.size());
    for (size_t i = 0; i < a.seq.size(); i++) {
        m.seq[i] = a.seq[i] == b.seq[i]
                       ? a.seq[i]
                       : static_cast<uint8_t>(Logic::X);
    }
    m.env = EnvState::merge(a.env, b.env);
    return m;
}

uint64_t
MachineState::hash() const
{
    uint64_t h = lastFetchPc;
    for (size_t i = 0; i < seq.size(); i++)
        h = mixHash(h, seq[i] + 3 * i);
    for (const SWord &w : env.ram)
        h = mixHash(h, (static_cast<uint64_t>(w.val) << 16) | w.known);
    h = mixHash(h, (static_cast<uint64_t>(env.rdata.val) << 16) |
                       env.rdata.known);
    return h;
}

namespace
{

/** Decision kinds, part of the conservative-table key. */
enum class DecKind : uint8_t
{
    Branch = 0,
    Irq0,
    Irq1,
    CtlXfer,
};

uint32_t
tableKey(uint16_t pc, DecKind kind)
{
    return (static_cast<uint32_t>(pc) << 2) |
           static_cast<uint32_t>(kind);
}

class AnalysisEngine
{
  public:
    AnalysisEngine(const Netlist &netlist, const AsmProgram &prog,
                   const AnalysisOptions &opts)
        : nl_(netlist), prog_(prog), opts_(opts),
          soc_(netlist, prog, /*ram_unknown=*/true, opts.simMode),
          haltAddrs_(haltAddresses(prog))
    {
    }

    AnalysisResult
    run()
    {
        auto t0 = std::chrono::steady_clock::now();
        AnalysisResult res;
        res.activity = std::make_unique<ActivityTracker>(nl_);

        soc_.setGpioIn(SWord::allX());
        soc_.setIrqExt(opts_.irqLineUnknown ? Logic::X : Logic::Zero);
        soc_.reset();
        res.activity->captureInitial(soc_.sim());

        MachineState init = capture();
        init.lastFetchPc = 0;
        work_.push_back(init);

        while (!work_.empty()) {
            if (res.pathsExplored >= opts_.maxPaths ||
                cycles_ >= opts_.maxTotalCycles) {
                bespoke_warn("activity analysis hit exploration cap");
                finish(res, t0, false);
                return res;
            }
            MachineState s = std::move(work_.back());
            work_.pop_back();
            res.pathsExplored++;
            runPath(std::move(s), *res.activity);
        }
        finish(res, t0, true);
        return res;
    }

  private:
    void
    finish(AnalysisResult &res,
           std::chrono::steady_clock::time_point t0, bool completed)
    {
        res.cyclesSimulated = cycles_;
        res.merges = merges_;
        res.forks = forks_;
        res.completed = completed;
        res.seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    }

    MachineState
    capture() const
    {
        MachineState s;
        s.seq = soc_.sim().seqState();
        s.env = soc_.envState();
        s.lastFetchPc = lastFetchPc_;
        return s;
    }

    void
    restore(const MachineState &s)
    {
        soc_.sim().restoreSeqState(s.seq);
        soc_.restoreEnvState(s.env);
        lastFetchPc_ = s.lastFetchPc;
    }

    bool
    isHaltPc(uint16_t pc) const
    {
        for (uint16_t h : haltAddrs_) {
            if (h == pc)
                return true;
        }
        return false;
    }

    /**
     * Consult/update the conservative table. Returns true if the path
     * is subsumed (prune). May replace `cur` with a widened state (the
     * caller must restore() it and re-evaluate).
     */
    bool
    mergePoint(uint32_t key, MachineState &cur, bool &widened)
    {
        widened = false;
        uint64_t h = cur.hash();
        auto &seen = exactSeen_[key];
        if (!seen.insert(h).second)
            return true;  // exact state already explored here

        int &visits = visitCount_[key];
        visits++;
        if (visits <= opts_.concreteVisits)
            return false;  // still in the concrete-exploration budget

        auto it = conservative_.find(key);
        if (it == conservative_.end()) {
            conservative_.emplace(key, cur);
            return false;
        }
        if (cur.substateOf(it->second))
            return true;
        merges_++;
        it->second = MachineState::merge(it->second, cur);
        cur = it->second;
        widened = true;
        return false;
    }

    /** First decision net that is X after evaluation, if any. */
    struct XDec
    {
        GateId net;
        DecKind kind;
    };

    std::optional<XDec>
    firstXDecision() const
    {
        if (soc_.decIrq0() == Logic::X)
            return XDec{soc_.decIrq0Net(), DecKind::Irq0};
        if (soc_.decIrq1() == Logic::X)
            return XDec{soc_.decIrq1Net(), DecKind::Irq1};
        if (soc_.decBranch() == Logic::X)
            return XDec{soc_.decBranchNet(), DecKind::Branch};
        return std::nullopt;
    }

    /**
     * Resolve X decisions for the current (already evaluated) cycle.
     * Returns false if the whole path was pruned at a merge point;
     * returns true with `forked` set if continuations were pushed.
     */
    bool
    resolveDecisions(ActivityTracker &tracker, bool &forked)
    {
        forked = false;
        auto d = firstXDecision();
        if (!d)
            return true;

        // Merge-check at the fork point.
        MachineState cur = capture();
        bool widened;
        if (mergePoint(tableKey(lastFetchPc_, d->kind), cur, widened))
            return false;
        if (widened) {
            restore(cur);
            soc_.evalOnly();
            tracker.observe(soc_.sim());
        }

        // Fork: explore both decision values (recursively resolving
        // any further X decisions under each forcing).
        forks_++;
        forked = true;
        forkRec(tracker, cur, {});
        return true;
    }

    /**
     * Recursive forcing over the X decisions of this one cycle.
     * Invariant: with `forces` applied, evaluation leaves at least one
     * decision net at X.
     */
    void
    forkRec(ActivityTracker &tracker, const MachineState &pre,
            const std::vector<std::pair<GateId, Logic>> &forces)
    {
        for (Logic v : {Logic::Zero, Logic::One}) {
            restore(pre);
            soc_.sim().clearForces();
            for (auto [g, val] : forces)
                soc_.sim().force(g, val);
            soc_.evalOnly();
            auto d = firstXDecision();
            bespoke_assert(d, "fork invariant violated");
            soc_.sim().force(d->net, v);
            soc_.evalOnly();
            tracker.observe(soc_.sim());
            if (firstXDecision()) {
                std::vector<std::pair<GateId, Logic>> f = forces;
                f.push_back({d->net, v});
                soc_.sim().clearForces();
                forkRec(tracker, pre, f);
                continue;
            }
            // Decision complete: finish the cycle and enqueue the
            // post-latch continuation state.
            soc_.finishCycle();
            cycles_++;
            soc_.sim().clearForces();
            work_.push_back(capture());
        }
    }

    /**
     * Fetch-time PC with X bits: fork one continuation per concrete
     * candidate (known bits fixed, X bits enumerated), keeping only
     * candidates that are instruction heads of the binary. Patching
     * only the PC while the correlated state stays X is a sound
     * over-approximation.
     */
    void
    enumerateSymbolicPc(SWord pc)
    {
        // Locate the PC flops through the pc_out port (valid on
        // original and transformed netlists alike).
        if (pcSeqIndex_.empty()) {
            const std::vector<GateId> &seq_ids = soc_.sim().seqIds();
            std::vector<GateId> pc_bus = nl_.bus("pc_out", 16);
            pcSeqIndex_.assign(16, -1);
            for (int b = 0; b < 16; b++) {
                GateId src = nl_.gate(pc_bus[b]).in[0];
                for (size_t i = 0; i < seq_ids.size(); i++) {
                    if (seq_ids[i] == src) {
                        pcSeqIndex_[b] = static_cast<int>(i);
                        break;
                    }
                }
            }
        }

        int x_bits = 0;
        for (int b = 0; b < 16; b++) {
            if (pc.bit(b) == Logic::X) {
                x_bits++;
                bespoke_assert(pcSeqIndex_[b] >= 0,
                               "X PC bit ", b,
                               " is not a flop output; cannot "
                               "enumerate");
            }
        }
        MachineState base = capture();
        auto push_candidate = [&](uint16_t cand) {
            // Candidate must be a real instruction head.
            if ((cand & 1) || !prog_.addrToLine.count(cand))
                return;
            MachineState s = base;
            for (int b = 0; b < 16; b++) {
                s.seq[pcSeqIndex_[b]] = static_cast<uint8_t>(
                    (cand >> b) & 1 ? Logic::One : Logic::Zero);
            }
            s.lastFetchPc = cand;
            work_.push_back(std::move(s));
        };

        if (x_bits <= 8) {
            for (uint32_t combo = 0; combo < (1u << x_bits); combo++) {
                uint16_t cand = pc.val;
                int xi = 0;
                for (int b = 0; b < 16; b++) {
                    if (pc.bit(b) != Logic::X)
                        continue;
                    if (combo & (1u << xi))
                        cand |= static_cast<uint16_t>(1u << b);
                    xi++;
                }
                push_candidate(cand);
            }
        } else {
            // Wide X PC (e.g. a fully merged return address): every
            // instruction head consistent with the known bits is a
            // possible successor.
            for (const auto &[addr, line] : prog_.addrToLine) {
                if (((addr ^ pc.val) & pc.known) == 0)
                    push_candidate(addr);
            }
        }
    }

    void
    runPath(MachineState start, ActivityTracker &tracker)
    {
        restore(start);
        while (true) {
            if (cycles_ >= opts_.maxTotalCycles)
                return;
            soc_.evalOnly();
            tracker.observe(soc_.sim());

            // Track instruction boundaries and halting.
            if (soc_.stFetch() == Logic::One) {
                SWord pc = soc_.pc();
                if (!pc.fullyKnown()) {
                    // Algorithm 1, line 29: enumerate the possible
                    // concrete PCs (e.g. a merged return address on
                    // the stack) and fork the tree per candidate.
                    enumerateSymbolicPc(pc);
                    return;
                }
                lastFetchPc_ = pc.val;
                if (isHaltPc(pc.val)) {
                    // Observe the steady halt loop, then end the path.
                    for (int i = 0; i < 6; i++) {
                        soc_.finishCycle();
                        cycles_++;
                        soc_.evalOnly();
                        tracker.observe(soc_.sim());
                    }
                    return;
                }
            }

            bool forked = false;
            if (!resolveDecisions(tracker, forked))
                return;  // pruned
            if (forked)
                return;  // continuations pushed

            // Known control transfer: conservative-table discipline.
            if (soc_.ctlXfer() == Logic::One) {
                MachineState cur = capture();
                bool widened;
                if (mergePoint(tableKey(lastFetchPc_, DecKind::CtlXfer),
                               cur, widened)) {
                    return;
                }
                if (widened) {
                    // Re-evaluate from the widened state; widening can
                    // surface new X decisions this very cycle.
                    restore(cur);
                    soc_.evalOnly();
                    tracker.observe(soc_.sim());
                    bool forked2 = false;
                    if (!resolveDecisions(tracker, forked2))
                        return;
                    if (forked2)
                        return;
                }
            } else if (soc_.ctlXfer() == Logic::X) {
                bespoke_fatal("ctl_xfer is X outside a decision fork");
            }

            soc_.finishCycle();
            cycles_++;
        }
    }

    const Netlist &nl_;
    const AsmProgram &prog_;
    AnalysisOptions opts_;
    Soc soc_;
    std::vector<uint16_t> haltAddrs_;
    std::vector<MachineState> work_;
    std::unordered_map<uint32_t, MachineState> conservative_;
    std::unordered_map<uint32_t, int> visitCount_;
    std::unordered_map<uint32_t, std::unordered_set<uint64_t>>
        exactSeen_;
    std::vector<int> pcSeqIndex_;
    uint16_t lastFetchPc_ = 0;
    uint64_t cycles_ = 0;
    uint64_t merges_ = 0;
    uint64_t forks_ = 0;
};

} // namespace

AnalysisResult
analyzeActivity(const Netlist &netlist, const AsmProgram &prog,
                const AnalysisOptions &opts)
{
    AnalysisEngine engine(netlist, prog, opts);
    return engine.run();
}

AnalysisResult
analyzeActivity(const Netlist &netlist, const Workload &w,
                const AnalysisOptions &opts)
{
    AsmProgram prog = w.assembleProgram();
    return analyzeActivity(netlist, prog, opts);
}

} // namespace bespoke
