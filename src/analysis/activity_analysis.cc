#include "src/analysis/activity_analysis.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "src/analysis/path_explorer.hh"
#include "src/util/logging.hh"
#include "src/util/worker_pool.hh"

namespace bespoke
{

namespace
{

uint64_t
mixHash(uint64_t h, uint64_t v)
{
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h;
}

} // namespace

bool
MachineState::substateOf(const MachineState &c) const
{
    if (lastFetchPc != c.lastFetchPc)
        return false;
    if (seq.size() != c.seq.size())
        return false;
    for (size_t i = 0; i < seq.size(); i++) {
        if (c.seq[i] == static_cast<uint8_t>(Logic::X))
            continue;
        if (seq[i] != c.seq[i])
            return false;
    }
    return env.substateOf(c.env);
}

MachineState
MachineState::merge(const MachineState &a, const MachineState &b)
{
    bespoke_assert(a.seq.size() == b.seq.size());
    MachineState m;
    m.lastFetchPc = a.lastFetchPc;
    m.seq.resize(a.seq.size());
    for (size_t i = 0; i < a.seq.size(); i++) {
        m.seq[i] = a.seq[i] == b.seq[i]
                       ? a.seq[i]
                       : static_cast<uint8_t>(Logic::X);
    }
    m.env = EnvState::merge(a.env, b.env);
    return m;
}

uint64_t
MachineState::hash() const
{
    uint64_t h = lastFetchPc;
    for (size_t i = 0; i < seq.size(); i++)
        h = mixHash(h, seq[i] + 3 * i);
    for (const SWord &w : env.ram)
        h = mixHash(h, (static_cast<uint64_t>(w.val) << 16) | w.known);
    h = mixHash(h, (static_cast<uint64_t>(env.rdata.val) << 16) |
                       env.rdata.known);
    return h;
}

int
resolveAnalysisThreads(const AnalysisOptions &opts)
{
    int threads = opts.threads;
    if (const char *env = std::getenv("BESPOKE_ANALYSIS_THREADS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v >= 0) {
            threads = static_cast<int>(std::min(v, 4096l));
        } else {
            bespoke_warn("ignoring invalid BESPOKE_ANALYSIS_THREADS=",
                         env);
        }
    }
    if (threads <= 0)
        threads = WorkerPool::defaultThreadCount();
    // More workers than this would only contend on the frontier.
    return std::min(threads, 256);
}

int
resolveAnalysisLanes(const AnalysisOptions &opts)
{
    int lanes = opts.laneWidth;
    if (const char *env = std::getenv("BESPOKE_ANALYSIS_LANES")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v >= 1) {
            lanes = static_cast<int>(std::min(v, 64l));
        } else {
            bespoke_warn("ignoring invalid BESPOKE_ANALYSIS_LANES=",
                         env);
        }
    }
    return std::clamp(lanes, 1, 64);
}

AnalysisResult
analyzeActivity(const Netlist &netlist, const AsmProgram &prog,
                const AnalysisOptions &opts)
{
    auto t0 = std::chrono::steady_clock::now();
    const int threads = resolveAnalysisThreads(opts);

    ExplorationContext ctx(netlist, prog, opts);
    Frontier frontier(opts);

    std::vector<std::unique_ptr<PathExplorer>> workers;
    workers.reserve(threads);
    for (int i = 0; i < threads; i++)
        workers.push_back(
            std::make_unique<PathExplorer>(ctx, frontier, i));
    for (auto &w : workers)
        w->prepare();

    frontier.push(workers[0]->initialItem());
    if (threads == 1) {
        // Run inline: bit-identical to the historical serial engine,
        // with no pool threads to perturb timing-sensitive callers.
        workers[0]->run();
    } else {
        WorkerPool pool(threads);
        pool.runPerWorker([&](int i) { workers[i]->run(); });
    }

    // Toggle observations are commutative ORs, so merging the
    // per-worker trackers in any order yields the same result.
    for (int i = 1; i < threads; i++)
        workers[0]->tracker().mergeFrom(workers[i]->tracker());

    AnalysisResult res;
    res.activity = std::make_unique<ActivityTracker>(
        std::move(workers[0]->tracker()));
    res.pathsExplored = frontier.pathsExplored();
    res.cyclesSimulated = frontier.cycles();
    res.merges = frontier.merges();
    res.completed = !frontier.capped();
    res.threadsUsed = threads;
    res.lanesUsed = ctx.lanes;
    res.frontierPeak = frontier.frontierPeak();
    res.maxForkDepth = frontier.maxForkDepth();
    res.workerStats.reserve(threads);
    for (auto &w : workers) {
        res.forks += w->forks();
        res.gatesEvaluated += w->gatesEvaluated();
        res.laneSweeps += w->laneSweeps();
        res.laneCycles += w->laneCycles();
        res.workerStats.push_back(
            WorkerStats{w->pathsExplored(), w->cyclesSimulated()});
    }
    res.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    bespoke_inform("activity analysis: ", res.pathsExplored, " paths, ",
                   res.cyclesSimulated, " cycles, ", res.forks,
                   " forks, ", res.merges, " merges on ", threads,
                   " thread(s) in ", res.seconds,
                   " s (frontier peak ", res.frontierPeak,
                   ", max fork depth ", res.maxForkDepth,
                   res.completed ? ")" : ", CAPPED)");
    return res;
}

AnalysisResult
analyzeActivity(const Netlist &netlist, const Workload &w,
                const AnalysisOptions &opts)
{
    AsmProgram prog = w.assembleProgram();
    return analyzeActivity(netlist, prog, opts);
}

} // namespace bespoke
