/**
 * @file
 * Input-independent gate activity analysis (paper Section 3.1,
 * Algorithm 1).
 *
 * The analysis symbolically executes the application binary on the
 * gate-level netlist with every input (GPIO pins, IRQ line, initial RAM
 * contents) set to X. It reports, for every gate, whether any input
 * assignment could ever toggle it; untoggled gates (with their proven
 * constant values) feed cutting & stitching (src/transform).
 *
 * Control decisions that depend on X (conditional-branch condition,
 * interrupt accept) fork the execution tree: the decision net is forced
 * to 0 and to 1 and both futures are explored. Termination for
 * unbounded control structures follows the paper's conservative-state
 * scheme: a table keyed by (instruction PC, decision kind) records the
 * most conservative machine state observed; a revisited state that is a
 * substate is pruned, otherwise the table entry is widened (differing
 * state bits -> X) and exploration continues from the widened state.
 *
 * One refinement over the bare algorithm: widening only begins after a
 * key has been visited `concreteVisits` times (exact-state revisits are
 * always pruned). This lets bounded concrete loops (e.g. a 16-iteration
 * shift-subtract divide) run to completion concretely, which the paper's
 * multi-hour per-benchmark analyses achieve by brute force, while still
 * guaranteeing termination on input-dependent or unbounded loops.
 */

#ifndef BESPOKE_ANALYSIS_ACTIVITY_ANALYSIS_HH
#define BESPOKE_ANALYSIS_ACTIVITY_ANALYSIS_HH

#include <memory>
#include <vector>

#include "src/sim/soc.hh"
#include "src/workloads/workload.hh"

namespace bespoke
{

/** Full machine state: netlist flops + behavioral environment. */
struct MachineState
{
    SeqState seq;
    EnvState env;
    uint16_t lastFetchPc = 0;

    bool substateOf(const MachineState &c) const;
    static MachineState merge(const MachineState &a,
                              const MachineState &b);
    uint64_t hash() const;
};

struct AnalysisOptions
{
    /** Visits of one merge key before widening begins. */
    int concreteVisits = 64;
    /** Hard cap on total simulated cycles across all paths. */
    uint64_t maxTotalCycles = 40'000'000;
    /** Hard cap on explored paths. */
    uint64_t maxPaths = 200'000;
    /** Drive the external IRQ line with X (paper footnote 1). */
    bool irqLineUnknown = true;
    /** Gate evaluator strategy for the exploration Soc. */
    GateSim::EvalMode simMode = GateSim::defaultMode();
    /**
     * Path-exploration worker threads. 1 (the default) reproduces the
     * historical serial engine bit for bit; 0 means one worker per
     * hardware thread. The BESPOKE_ANALYSIS_THREADS environment
     * variable, when set, overrides this field process-wide (same
     * spirit as BESPOKE_FULL_EVAL).
     */
    int threads = 1;
    /**
     * Frontier states simulated at once per worker, on the bit-plane
     * packed LaneSim (1..64). 1 (the default) keeps every path on the
     * scalar engine and reproduces it bit for bit; wider widths batch
     * independent frontier states into uint64_t lanes and hand a lane
     * back to the scalar engine only when it reaches a fork or merge
     * point. The toggle fixpoint is the same either way (pinned by
     * tests); path/cycle counters can differ from the serial schedule.
     * The BESPOKE_ANALYSIS_LANES environment variable, when set,
     * overrides this field process-wide.
     */
    int laneWidth = 1;
    /**
     * Lane-plane width in bits for the batched engine (64/128/256/512;
     * 0 resolves through BESPOKE_PLANE_BITS, defaulting to 64). Widths
     * above 64 widen each worker's batch to one frontier state per
     * plane bit, amortizing the per-gate-visit fixed costs across more
     * lanes. Like laneWidth/threads this is an execution knob, not an
     * input: the toggle fixpoint is width-independent, so it is
     * excluded from hashAnalysisOptions.
     */
    int planeBits = 0;
};

/**
 * The worker count analyzeActivity() will actually use for `opts`:
 * applies the BESPOKE_ANALYSIS_THREADS override, then resolves 0 to
 * the hardware thread count.
 */
int resolveAnalysisThreads(const AnalysisOptions &opts);

/**
 * The lane width analyzeActivity() will actually use for `opts`:
 * applies the BESPOKE_ANALYSIS_LANES override, clamped to [1, 64].
 */
int resolveAnalysisLanes(const AnalysisOptions &opts);

/** Per-worker share of one analysis, for load-balance observability. */
struct WorkerStats
{
    uint64_t pathsExplored = 0;
    uint64_t cyclesSimulated = 0;
};

struct AnalysisResult
{
    /** May-toggle flags for every gate; untoggled gates are provably
     *  constant for all inputs. */
    std::unique_ptr<ActivityTracker> activity;
    uint64_t pathsExplored = 0;
    uint64_t cyclesSimulated = 0;
    uint64_t merges = 0;
    uint64_t forks = 0;
    bool completed = false;  ///< false if a cap was hit
    double seconds = 0.0;

    /** @name Exploration observability */
    /// @{
    int threadsUsed = 1;
    /** Resolved LaneSim batch width (1 = pure scalar exploration). */
    int lanesUsed = 1;
    /**
     * Gate evaluations across all workers: scalar evaluations plus
     * lane-sim gate visits (one visit evaluates every lane at once).
     */
    uint64_t gatesEvaluated = 0;
    /** Full 64-lane evaluation sweeps performed. */
    uint64_t laneSweeps = 0;
    /** Lane-cycles simulated on the lane engine (sum of popcounts of
     *  the active-lane mask over all sweeps). */
    uint64_t laneCycles = 0;
    /** High-water mark of the pending-work frontier. */
    uint64_t frontierPeak = 0;
    /** Deepest fork nesting reached by any explored path. */
    uint32_t maxForkDepth = 0;
    /** One entry per worker; sums match the totals above. */
    std::vector<WorkerStats> workerStats;
    /// @}

    /** Untoggled real-cell count. */
    size_t untoggledCells() const
    {
        return activity->untoggledCellCount();
    }
};

/**
 * Run the analysis for one application on a netlist (the original
 * core, or a bespoke one during verification).
 */
AnalysisResult analyzeActivity(const Netlist &netlist,
                               const AsmProgram &prog,
                               const AnalysisOptions &opts = {});

/** Convenience overload assembling a workload. */
AnalysisResult analyzeActivity(const Netlist &netlist, const Workload &w,
                               const AnalysisOptions &opts = {});

} // namespace bespoke

#endif // BESPOKE_ANALYSIS_ACTIVITY_ANALYSIS_HH
