/**
 * @file
 * Shared state of one activity-analysis exploration: the work frontier
 * (unexplored machine states), the conservative-widening tables, and
 * the global exploration budgets. Many PathExplorer workers drive one
 * Frontier concurrently; everything here is internally synchronized.
 *
 * Structure:
 *  - The frontier proper is a LIFO stack guarded by one mutex + condvar
 *    (paths are thousands of cycles long, so pop/push contention is
 *    negligible). LIFO keeps single-worker exploration order identical
 *    to the historical serial engine, which the determinism tests pin.
 *  - The merge tables (exact-seen hashes, concrete-visit counts, and
 *    the conservative widened state per (PC, decision-kind) key) are
 *    sharded by key: all three tables for one key live in one shard,
 *    so a mergePoint() call takes exactly one shard lock and the
 *    serial per-key discipline is preserved verbatim under
 *    concurrency.
 *  - Budgets (maxPaths, maxTotalCycles) are atomics. Paths are charged
 *    at pop time under the frontier lock; cycles are charged by
 *    workers as they simulate. The first worker to observe a blown
 *    budget stops the exploration for everyone.
 *
 * Widening discipline under concurrency: MachineState::merge is
 * commutative and associative, and a conservative entry only ever
 * widens (bits go to X, never back), so the table converges to the
 * same fixpoint regardless of worker interleaving. Races between
 * pruning and widening can change HOW MANY paths are explored — a
 * state may be pruned against an entry that another worker just
 * widened past what the serial schedule would have seen — but never
 * soundness: a pruned state is always a substate of a widened entry
 * whose exploration (by whichever worker widened it) observes a
 * superset of the pruned state's toggles.
 */

#ifndef BESPOKE_ANALYSIS_FRONTIER_HH
#define BESPOKE_ANALYSIS_FRONTIER_HH

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/analysis/activity_analysis.hh"

namespace bespoke
{

/** One unit of exploration work: a machine state to continue from. */
struct WorkItem
{
    MachineState state;
    /** Forks (decision or symbolic-PC) between the root and here. */
    uint32_t depth = 0;
};

class Frontier
{
  public:
    explicit Frontier(const AnalysisOptions &opts);

    /** @name Work distribution */
    /// @{
    void push(WorkItem item);

    /**
     * Pop the next state to explore. Blocks while the stack is empty
     * but other workers may still push continuations. Returns false
     * when the exploration is over: all work done, or a budget was
     * hit (capped() distinguishes the two). A true return must be
     * balanced by finishItem() once the path has been explored.
     */
    bool pop(WorkItem &out);

    /** Mark the last popped item fully explored. */
    void finishItem();

    /**
     * Blocking batch pop: clears `out`, waits like pop() until work is
     * available (or the exploration is over — same false-return
     * conditions), then drains up to `max` items in one critical
     * section, in exact LIFO order. At threads = 1 this is identical
     * to pop() followed by popMore(max - 1); under concurrency it
     * fixes the under-fill those two separate lock acquisitions had at
     * the quiescence edge, where a second batching worker could wake
     * between them and leave both workers holding splinter batches of
     * a frontier that fit entirely in one (pinned, with drain order,
     * by tests/test_frontier_batch.cc). Every popped item must be
     * balanced by finishItem().
     */
    bool popBatch(size_t max, std::vector<WorkItem> &out);

    /**
     * Non-blocking bulk pop, used by lane-batching workers to refill
     * lanes freed mid-sweep (they hold live lanes, so they cannot
     * block): appends up to `max` items to `out`, stopping early when
     * the stack drains or a budget is reached (the next blocking
     * popBatch() then declares the cap, exactly as in the serial
     * engine). Every popped item must be balanced by finishItem().
     */
    size_t popMore(size_t max, std::vector<WorkItem> &out);
    /// @}

    /** @name Budgets */
    /// @{
    /** Charge one simulated cycle against the global budget. */
    void chargeCycle()
    {
        cycles_.fetch_add(1, std::memory_order_relaxed);
    }
    /** Charge n simulated cycles (one lane sweep charges per lane). */
    void chargeCycles(uint64_t n)
    {
        cycles_.fetch_add(n, std::memory_order_relaxed);
    }
    uint64_t cycles() const
    {
        return cycles_.load(std::memory_order_relaxed);
    }
    /** True once a budget stopped the exploration early. */
    bool capped() const
    {
        return capped_.load(std::memory_order_relaxed);
    }
    /**
     * Record that the cycle budget stopped the exploration. pop()
     * declares the cap on its own when work is still queued; a
     * lane-batching worker whose batch drained the stack must declare
     * it explicitly when it abandons in-flight lanes, or the frontier
     * would report a clean quiescent finish.
     */
    void declareCycleCap();
    /// @}

    /**
     * Consult/update the conservative table for one merge key (the
     * serial engine's discipline, atomically per key). Returns true if
     * the path is subsumed (prune). May replace `cur` with a widened
     * state (the caller must restore() it and re-evaluate).
     */
    bool mergePoint(uint32_t key, MachineState &cur, bool &widened);

    /** @name Exploration statistics */
    /// @{
    uint64_t pathsExplored() const { return paths_; }
    uint64_t merges() const
    {
        return merges_.load(std::memory_order_relaxed);
    }
    uint64_t frontierPeak() const { return peak_; }
    uint32_t maxForkDepth() const { return maxDepth_; }
    /// @}

  private:
    /** All widening state for one (PC, decision-kind) key. */
    struct KeyState
    {
        std::unordered_set<uint64_t> exactSeen;
        int visits = 0;
        bool hasConservative = false;
        MachineState conservative;
    };

    struct Shard
    {
        std::mutex m;
        std::unordered_map<uint32_t, KeyState> keys;
    };

    static constexpr uint32_t kShards = 64;

    const uint64_t maxPaths_;
    const uint64_t maxTotalCycles_;
    const int concreteVisits_;

    // Frontier stack + termination detection.
    std::mutex m_;
    std::condition_variable cv_;
    std::vector<WorkItem> stack_;
    int active_ = 0;          ///< popped-but-unfinished items
    bool stopped_ = false;
    uint64_t paths_ = 0;      ///< pops so far (= paths explored)
    uint64_t peak_ = 0;       ///< stack high-water mark
    uint32_t maxDepth_ = 0;   ///< deepest item ever pushed

    std::atomic<uint64_t> cycles_{0};
    std::atomic<uint64_t> merges_{0};
    std::atomic<bool> capped_{false};

    std::vector<Shard> shards_{kShards};
};

} // namespace bespoke

#endif // BESPOKE_ANALYSIS_FRONTIER_HH
