#include "src/iss/iss.hh"

#include "src/util/logging.hh"

namespace bespoke
{

Iss::Iss(const AsmProgram &prog)
    : prog_(prog)
{
    reset();
}

void
Iss::reset()
{
    regs_.fill(0);
    ram_.fill(0);
    gpioOut_ = 0;
    ie_ = ifg_ = 0;
    wdtctl_ = clkctl_ = 0;
    dbgctl_ = dbgaddr_ = dbgdata_ = dbgcount_ = 0;
    tactl_ = taccr_ = uctl_ = utxbuf_ = 0;
    mpyOp1_ = mpyOp2_ = 0;
    mpySigned_ = false;
    resLo_ = resHi_ = 0;
    trace_.clear();
    retired_ = 0;
    executedPCs_.clear();
    branchDirs_.clear();
    regs_[kRegPC] = prog_.entry();
}

uint16_t
Iss::reg(int n) const
{
    bespoke_assert(n >= 0 && n < 16);
    if (n == kRegCG)
        return 0;
    return regs_[n];
}

void
Iss::setReg(int n, uint16_t v)
{
    bespoke_assert(n >= 0 && n < 16);
    if (n == kRegCG)
        return;  // CG2 is not a real register
    regs_[n] = v;
}

void
Iss::raiseExternalIrq()
{
    ifg_ |= 1;
}

uint8_t
Iss::readByte(uint16_t addr) const
{
    if (isRamAddr(addr))
        return ram_[addr - kRamBase];
    if (isRomAddr(addr))
        return prog_.rom[addr - kRomBase];
    // Peripheral space: defined for word reads only; give low/high byte.
    uint16_t w = const_cast<Iss *>(this)->periphRead(addr & ~1u);
    return (addr & 1) ? static_cast<uint8_t>(w >> 8)
                      : static_cast<uint8_t>(w & 0xff);
}

uint16_t
Iss::readWord(uint16_t addr) const
{
    return static_cast<uint16_t>(readByte(addr) |
                                 (readByte(addr + 1) << 8));
}

void
Iss::pokeWord(uint16_t addr, uint16_t value)
{
    bespoke_assert(isRamAddr(addr) && (addr & 1) == 0);
    ram_[addr - kRamBase] = static_cast<uint8_t>(value & 0xff);
    ram_[addr - kRamBase + 1] = static_cast<uint8_t>(value >> 8);
}

uint16_t
Iss::busReadWord(uint16_t addr)
{
    bespoke_assert((addr & 1) == 0, "unaligned word read at 0x",
                   std::hex, addr);
    if (isPeriphAddr(addr))
        return periphRead(addr);
    if (isRamAddr(addr)) {
        if (dbgctl_ & 1) {
            if (addr == dbgaddr_) {
                dbgcount_ = static_cast<uint16_t>((dbgcount_ + 1) & 0xff);
                dbgdata_ = static_cast<uint16_t>(
                    ram_[addr - kRamBase] |
                    (ram_[addr - kRamBase + 1] << 8));
            }
        }
        return static_cast<uint16_t>(ram_[addr - kRamBase] |
                                     (ram_[addr - kRamBase + 1] << 8));
    }
    if (isRomAddr(addr))
        return prog_.romWord(addr);
    bespoke_fatal("read from unmapped address 0x", std::hex, addr);
}

uint8_t
Iss::busReadByte(uint16_t addr)
{
    bespoke_assert(!isPeriphAddr(addr),
                   "byte access to peripheral space at 0x", std::hex, addr);
    if (isRamAddr(addr)) {
        if ((dbgctl_ & 1) && (addr & ~1u) == dbgaddr_) {
            dbgcount_ = static_cast<uint16_t>((dbgcount_ + 1) & 0xff);
            dbgdata_ = static_cast<uint16_t>(
                ram_[(addr & ~1u) - kRamBase] |
                (ram_[(addr & ~1u) - kRamBase + 1] << 8));
        }
        return ram_[addr - kRamBase];
    }
    if (isRomAddr(addr))
        return prog_.rom[addr - kRomBase];
    bespoke_fatal("read from unmapped address 0x", std::hex, addr);
}

void
Iss::busWriteWord(uint16_t addr, uint16_t value)
{
    bespoke_assert((addr & 1) == 0, "unaligned word write at 0x",
                   std::hex, addr);
    if (isPeriphAddr(addr)) {
        periphWrite(addr, value, 0xffff);
        return;
    }
    if (isRamAddr(addr)) {
        if ((dbgctl_ & 1) && addr == dbgaddr_) {
            dbgcount_ = static_cast<uint16_t>((dbgcount_ + 1) & 0xff);
            dbgdata_ = value;
        }
        ram_[addr - kRamBase] = static_cast<uint8_t>(value & 0xff);
        ram_[addr - kRamBase + 1] = static_cast<uint8_t>(value >> 8);
        return;
    }
    bespoke_fatal("write to non-RAM address 0x", std::hex, addr);
}

void
Iss::busWriteByte(uint16_t addr, uint8_t value)
{
    bespoke_assert(!isPeriphAddr(addr),
                   "byte access to peripheral space at 0x", std::hex, addr);
    if (isRamAddr(addr)) {
        if ((dbgctl_ & 1) && (addr & ~1u) == dbgaddr_) {
            dbgcount_ = static_cast<uint16_t>((dbgcount_ + 1) & 0xff);
            uint16_t lo = (addr & 1) ? ram_[(addr & ~1u) - kRamBase]
                                     : value;
            uint16_t hi = (addr & 1)
                              ? value
                              : ram_[(addr | 1u) - kRamBase];
            dbgdata_ = static_cast<uint16_t>(lo | (hi << 8));
        }
        ram_[addr - kRamBase] = value;
        return;
    }
    bespoke_fatal("write to non-RAM address 0x", std::hex, addr);
}

uint16_t
Iss::periphRead(uint16_t addr)
{
    switch (addr) {
      case kAddrP1IN:
        return gpioIn_;
      case kAddrP1OUT:
        return gpioOut_;
      case kAddrIE:
        return ie_;
      case kAddrIFG:
        return ifg_;
      case kAddrWDTCTL:
        return wdtctl_;
      case kAddrCLKCTL:
        return clkctl_;
      case kAddrDBGCTL:
        return static_cast<uint16_t>((dbgctl_ & 0xff) | (dbgcount_ << 8));
      case kAddrDBGADDR:
        return dbgaddr_;
      case kAddrDBGDATA:
        return dbgdata_;
      // Extended-core peripherals. The ISS models their registers
      // but not their cycle behavior: TACNT reads 0 and the UART is
      // always ready (busy == 0); workloads using them must be
      // insensitive to those (poll loops terminate immediately).
      case kAddrTACTL:
        return tactl_;
      case kAddrTACNT:
        return 0;
      case kAddrTACCR:
        return taccr_;
      case kAddrUCTL:
        return uctl_;
      case kAddrUTXBUF:
        return utxbuf_;
      case kAddrMPY:
      case kAddrMPYS:
        return mpyOp1_;
      case kAddrOP2:
        return mpyOp2_;
      case kAddrRESLO:
        return resLo_;
      case kAddrRESHI:
        return resHi_;
      default:
        bespoke_fatal("read from unmapped peripheral 0x", std::hex, addr);
    }
}

void
Iss::periphWrite(uint16_t addr, uint16_t value, uint16_t byte_mask)
{
    bespoke_assert(byte_mask == 0xffff,
                   "peripheral registers are word-access only");
    switch (addr) {
      case kAddrP1IN:
        return;  // read-only; writes ignored
      case kAddrP1OUT:
        if (gpioOut_ != value)
            trace_.push_back({kAddrP1OUT, value});
        gpioOut_ = value;
        return;
      case kAddrIE:
        ie_ = value & 0x3;
        return;
      case kAddrIFG:
        ifg_ = value & 0x3;
        return;
      case kAddrWDTCTL:
        wdtctl_ = value & 0xff;  // 8-bit control register
        return;
      case kAddrCLKCTL:
        clkctl_ = value & 0xff;
        return;
      case kAddrDBGCTL:
        dbgctl_ = value & 0xff;
        if (value & 0x2)
            dbgcount_ = 0;  // bit1: clear event counter
        return;
      case kAddrDBGADDR:
        dbgaddr_ = value;
        return;
      case kAddrDBGDATA:
        dbgdata_ = value;
        return;
      case kAddrTACTL:
        tactl_ = value & 0x3;  // clear/flag-clear bits are momentary
        return;
      case kAddrTACCR:
        taccr_ = value;
        return;
      case kAddrUCTL:
        uctl_ = value & 0x1;
        return;
      case kAddrUTXBUF:
        utxbuf_ = value & 0xff;
        return;
      case kAddrMPY:
        mpyOp1_ = value;
        mpySigned_ = false;
        return;
      case kAddrMPYS:
        mpyOp1_ = value;
        mpySigned_ = true;
        return;
      case kAddrOP2: {
        mpyOp2_ = value;
        uint32_t product;
        if (mpySigned_) {
            int32_t p = static_cast<int32_t>(static_cast<int16_t>(mpyOp1_))
                        * static_cast<int16_t>(mpyOp2_);
            product = static_cast<uint32_t>(p);
        } else {
            product = static_cast<uint32_t>(mpyOp1_) * mpyOp2_;
        }
        resLo_ = static_cast<uint16_t>(product & 0xffff);
        resHi_ = static_cast<uint16_t>(product >> 16);
        return;
      }
      case kAddrRESLO:
        resLo_ = value;
        return;
      case kAddrRESHI:
        resHi_ = value;
        return;
      default:
        bespoke_fatal("write to unmapped peripheral 0x", std::hex, addr);
    }
}

uint16_t
Iss::fetchWord()
{
    uint16_t w = busReadWord(regs_[kRegPC]);
    regs_[kRegPC] = static_cast<uint16_t>(regs_[kRegPC] + 2);
    return w;
}

void
Iss::setFlag(uint16_t flag, bool v)
{
    if (v)
        regs_[kRegSR] |= flag;
    else
        regs_[kRegSR] = static_cast<uint16_t>(regs_[kRegSR] & ~flag);
}

void
Iss::setFlagsLogic(uint16_t result, bool byte_mode)
{
    uint16_t mask = byte_mode ? 0xff : 0xffff;
    uint16_t sign = byte_mode ? 0x80 : 0x8000;
    bool z = (result & mask) == 0;
    setFlag(kFlagZ, z);
    setFlag(kFlagN, (result & sign) != 0);
    setFlag(kFlagC, !z);
    setFlag(kFlagV, false);
}

bool
Iss::condTaken(JumpCond cond) const
{
    bool c = getFlag(kFlagC), z = getFlag(kFlagZ);
    bool n = getFlag(kFlagN), v = getFlag(kFlagV);
    switch (cond) {
      case JumpCond::JNE:
        return !z;
      case JumpCond::JEQ:
        return z;
      case JumpCond::JNC:
        return !c;
      case JumpCond::JC:
        return c;
      case JumpCond::JN:
        return n;
      case JumpCond::JGE:
        return n == v;
      case JumpCond::JL:
        return n != v;
      case JumpCond::JMP:
        return true;
    }
    return false;
}

void
Iss::serviceIrqIfPending()
{
    if (!getFlag(kFlagGIE))
        return;
    uint16_t pending = static_cast<uint16_t>(ie_ & ifg_ & 0x3);
    if (!pending)
        return;
    int irq = (pending & 1) ? 0 : 1;
    uint16_t vector = irq == 0 ? kVecIRQ0 : kVecIRQ1;
    // Push PC, push SR, clear SR (including GIE), clear the IFG bit.
    regs_[kRegSP] = static_cast<uint16_t>(regs_[kRegSP] - 2);
    busWriteWord(regs_[kRegSP], regs_[kRegPC]);
    regs_[kRegSP] = static_cast<uint16_t>(regs_[kRegSP] - 2);
    busWriteWord(regs_[kRegSP], regs_[kRegSR]);
    regs_[kRegSR] = 0;
    ifg_ = static_cast<uint16_t>(ifg_ & ~(1u << irq));
    regs_[kRegPC] = busReadWord(vector);
}

uint16_t
Iss::readSrc(const Instr &ins, bool &is_mem, uint16_t &mem_addr)
{
    is_mem = false;
    mem_addr = 0;
    if (ins.usesConstGen()) {
        uint16_t v = ins.constGenValue();
        return ins.byteMode ? static_cast<uint16_t>(v & 0xff) : v;
    }
    switch (ins.srcMode) {
      case AddrMode::Register: {
        uint16_t v = reg(ins.srcReg);
        return ins.byteMode ? static_cast<uint16_t>(v & 0xff) : v;
      }
      case AddrMode::Indexed: {
        uint16_t ext = fetchWord();
        uint16_t base = ins.srcReg == kRegSR ? 0 : reg(ins.srcReg);
        mem_addr = static_cast<uint16_t>(base + ext);
        is_mem = true;
        return ins.byteMode ? busReadByte(mem_addr)
                            : busReadWord(mem_addr);
      }
      case AddrMode::Indirect: {
        mem_addr = reg(ins.srcReg);
        is_mem = true;
        return ins.byteMode ? busReadByte(mem_addr)
                            : busReadWord(mem_addr);
      }
      case AddrMode::IndirectInc: {
        if (ins.srcReg == kRegPC) {
            // #immediate
            uint16_t v = fetchWord();
            return ins.byteMode ? static_cast<uint16_t>(v & 0xff) : v;
        }
        mem_addr = reg(ins.srcReg);
        is_mem = true;
        uint16_t v = ins.byteMode ? busReadByte(mem_addr)
                                  : busReadWord(mem_addr);
        int inc = ins.byteMode && ins.srcReg != kRegSP ? 1 : 2;
        setReg(ins.srcReg,
               static_cast<uint16_t>(reg(ins.srcReg) + inc));
        return v;
      }
    }
    bespoke_fatal("bad source mode");
}

uint16_t
Iss::resolveDstAddr(const Instr &ins)
{
    bespoke_assert(ins.dstMode == AddrMode::Indexed);
    uint16_t ext = fetchWord();
    uint16_t base = ins.dstReg == kRegSR ? 0 : reg(ins.dstReg);
    return static_cast<uint16_t>(base + ext);
}

StepResult
Iss::step()
{
    serviceIrqIfPending();

    uint16_t pc_before = regs_[kRegPC];
    executedPCs_.insert(pc_before);
    uint16_t word = fetchWord();
    Instr ins = decode(word);
    retired_++;

    if (ins.format == Format::Jump) {
        bool taken = condTaken(ins.cond);
        if (ins.cond != JumpCond::JMP) {
            auto &dirs = branchDirs_[pc_before];
            (taken ? dirs.first : dirs.second) = true;
        }
        if (taken) {
            uint16_t target = static_cast<uint16_t>(
                pc_before + 2 + 2 * ins.offset);
            regs_[kRegPC] = target;
            if (ins.cond == JumpCond::JMP && ins.offset == -1)
                return StepResult::Halted;
        }
        return StepResult::Ok;
    }

    if (ins.format == Format::Illegal)
        return StepResult::Illegal;

    return execute(ins);
}

StepResult
Iss::execute(const Instr &ins)
{
    const bool bm = ins.byteMode;
    const uint16_t mask = bm ? 0xff : 0xffff;
    const uint16_t sign = bm ? 0x80 : 0x8000;

    if (ins.format == Format::SingleOp) {
        if (ins.op2 == Op2::RETI) {
            regs_[kRegSR] = busReadWord(regs_[kRegSP]);
            regs_[kRegSP] = static_cast<uint16_t>(regs_[kRegSP] + 2);
            regs_[kRegPC] = busReadWord(regs_[kRegSP]);
            regs_[kRegSP] = static_cast<uint16_t>(regs_[kRegSP] + 2);
            return StepResult::Ok;
        }

        bool is_mem;
        uint16_t addr;
        uint16_t v = readSrc(ins, is_mem, addr);
        uint16_t result = 0;
        bool write_back = true;

        switch (ins.op2) {
          case Op2::RRC: {
            uint16_t cin = getFlag(kFlagC) ? sign : 0;
            setFlag(kFlagC, v & 1);
            result = static_cast<uint16_t>(((v & mask) >> 1) | cin);
            setFlag(kFlagZ, (result & mask) == 0);
            setFlag(kFlagN, (result & sign) != 0);
            setFlag(kFlagV, false);
            break;
          }
          case Op2::RRA: {
            setFlag(kFlagC, v & 1);
            result = static_cast<uint16_t>(
                ((v & mask) >> 1) | (v & sign));
            setFlag(kFlagZ, (result & mask) == 0);
            setFlag(kFlagN, (result & sign) != 0);
            setFlag(kFlagV, false);
            break;
          }
          case Op2::SWPB:
            result = static_cast<uint16_t>((v << 8) | (v >> 8));
            break;
          case Op2::SXT:
            result = static_cast<uint16_t>(
                (v & 0x80) ? (v | 0xff00) : (v & 0x00ff));
            setFlag(kFlagZ, result == 0);
            setFlag(kFlagN, (result & 0x8000) != 0);
            setFlag(kFlagC, result != 0);
            setFlag(kFlagV, false);
            break;
          case Op2::PUSH: {
            regs_[kRegSP] = static_cast<uint16_t>(regs_[kRegSP] - 2);
            busWriteWord(regs_[kRegSP],
                         static_cast<uint16_t>(v & mask));
            write_back = false;
            break;
          }
          case Op2::CALL: {
            regs_[kRegSP] = static_cast<uint16_t>(regs_[kRegSP] - 2);
            busWriteWord(regs_[kRegSP], regs_[kRegPC]);
            regs_[kRegPC] = v;
            write_back = false;
            break;
          }
          default:
            return StepResult::Illegal;
        }

        if (write_back) {
            if (is_mem) {
                if (bm) {
                    busWriteByte(addr, static_cast<uint8_t>(result));
                } else {
                    busWriteWord(addr, result);
                }
            } else {
                setReg(ins.srcReg, static_cast<uint16_t>(result & mask));
            }
        }
        return StepResult::Ok;
    }

    // Format I (double operand).
    bool src_is_mem;
    uint16_t src_addr;
    uint16_t src = readSrc(ins, src_is_mem, src_addr);
    src &= mask;

    bool dst_is_mem = ins.dstMode == AddrMode::Indexed;
    uint16_t dst_addr = 0;
    uint16_t dst = 0;
    if (dst_is_mem) {
        dst_addr = resolveDstAddr(ins);
        // MOV does not read its destination.
        if (ins.op1 != Op1::MOV)
            dst = bm ? busReadByte(dst_addr) : busReadWord(dst_addr);
    } else {
        dst = reg(ins.dstReg);
    }
    dst &= mask;

    uint16_t result = 0;
    bool write_back = true;
    bool flags_from_arith = false;
    uint32_t wide = 0;

    auto arith = [&](uint16_t a_src, bool carry_in) {
        // dst + src + cin, where subtraction passes ~src.
        wide = static_cast<uint32_t>(dst) + a_src + (carry_in ? 1 : 0);
        result = static_cast<uint16_t>(wide & mask);
        flags_from_arith = true;
    };

    bool sub_like = false;
    switch (ins.op1) {
      case Op1::MOV:
        result = src;
        write_back = true;
        break;
      case Op1::ADD:
        arith(src, false);
        break;
      case Op1::ADDC:
        arith(src, getFlag(kFlagC));
        break;
      case Op1::SUB:
        arith(static_cast<uint16_t>(~src & mask), true);
        sub_like = true;
        break;
      case Op1::SUBC:
        arith(static_cast<uint16_t>(~src & mask), getFlag(kFlagC));
        sub_like = true;
        break;
      case Op1::CMP:
        arith(static_cast<uint16_t>(~src & mask), true);
        sub_like = true;
        write_back = false;
        break;
      case Op1::BIT:
        result = static_cast<uint16_t>(src & dst);
        setFlagsLogic(result, bm);
        write_back = false;
        break;
      case Op1::AND:
        result = static_cast<uint16_t>(src & dst);
        setFlagsLogic(result, bm);
        break;
      case Op1::XOR:
        result = static_cast<uint16_t>(src ^ dst);
        setFlag(kFlagZ, (result & mask) == 0);
        setFlag(kFlagN, (result & sign) != 0);
        setFlag(kFlagC, (result & mask) != 0);
        setFlag(kFlagV, (src & sign) && (dst & sign));
        break;
      case Op1::BIC:
        result = static_cast<uint16_t>(dst & ~src);
        break;
      case Op1::BIS:
        result = static_cast<uint16_t>(dst | src);
        break;
      default:
        return StepResult::Illegal;
    }

    if (flags_from_arith) {
        // For sub-like ops the V computation uses the original operand.
        uint16_t eff_src = sub_like ? static_cast<uint16_t>(~src & mask)
                                    : src;
        setFlag(kFlagC, (wide >> (bm ? 8 : 16)) & 1);
        setFlag(kFlagZ, (result & mask) == 0);
        setFlag(kFlagN, (result & sign) != 0);
        bool v = ((eff_src & sign) == (dst & sign)) &&
                 ((result & sign) != (dst & sign));
        setFlag(kFlagV, v);
    }

    if (write_back) {
        if (dst_is_mem) {
            if (bm) {
                busWriteByte(dst_addr, static_cast<uint8_t>(result));
            } else {
                busWriteWord(dst_addr, result);
            }
        } else {
            // Byte ops on registers clear the upper byte.
            setReg(ins.dstReg, static_cast<uint16_t>(result & mask));
        }
    }
    return StepResult::Ok;
}

StepResult
Iss::run(uint64_t max_steps)
{
    for (uint64_t i = 0; i < max_steps; i++) {
        StepResult r = step();
        if (r != StepResult::Ok)
            return r;
    }
    return StepResult::Ok;
}

} // namespace bespoke
