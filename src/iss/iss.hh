/**
 * @file
 * Golden-model instruction-set simulator for BSP430.
 *
 * The ISS defines the architectural semantics the gate-level bsp430 core
 * must match; the test suite runs both in lock-step and compares
 * architectural state after every retired instruction. It also powers the
 * input-based verification harness (paper Table 3), recording line and
 * branch-direction coverage per run.
 *
 * Termination convention: a `jmp .` (offset -1 self-jump) is the halt
 * idiom used by every workload; step() reports it as Halted.
 */

#ifndef BESPOKE_ISS_ISS_HH
#define BESPOKE_ISS_ISS_HH

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "src/isa/assembler.hh"
#include "src/isa/isa.hh"

namespace bespoke
{

/** Result of executing one instruction. */
enum class StepResult
{
    Ok,
    Halted,       ///< executed the `jmp .` halt idiom
    Illegal,      ///< illegal opcode reached
};

/** One observable output event (change on an output port). */
struct OutputEvent
{
    uint16_t addr;   ///< peripheral register written (e.g. kAddrP1OUT)
    uint16_t value;
    bool operator==(const OutputEvent &) const = default;
};

/**
 * Architectural + peripheral state of the behavioral machine. The
 * gate-level testbench compares against regs/ram and the output trace.
 */
class Iss
{
  public:
    explicit Iss(const AsmProgram &prog);

    void reset();

    /** Execute one instruction (servicing a pending IRQ first). */
    StepResult step();

    /** Run until halt/illegal or max_steps; returns last result. */
    StepResult run(uint64_t max_steps = 2'000'000);

    /** @name Architectural state access */
    /// @{
    uint16_t reg(int n) const;
    void setReg(int n, uint16_t v);
    uint16_t pc() const { return regs_[kRegPC]; }
    uint16_t sr() const { return regs_[kRegSR]; }
    /** Byte read anywhere in the address space (RAM/ROM/periph). */
    uint8_t readByte(uint16_t addr) const;
    uint16_t readWord(uint16_t addr) const;
    /** Direct RAM poke for test setup. */
    void pokeWord(uint16_t addr, uint16_t value);
    const std::array<uint8_t, kRamSize> &ram() const { return ram_; }
    /// @}

    /** @name Environment */
    /// @{
    /** Drive the GPIO input port (application input). */
    void setGpioIn(uint16_t value) { gpioIn_ = value; }
    /** Assert the external IRQ line (latched into IFG bit 0). */
    void raiseExternalIrq();
    uint16_t gpioOut() const { return gpioOut_; }
    const std::vector<OutputEvent> &outputTrace() const { return trace_; }
    /// @}

    /** @name Statistics & coverage */
    /// @{
    uint64_t instructionsRetired() const { return retired_; }
    const std::set<uint16_t> &executedPCs() const { return executedPCs_; }
    /** For each conditional branch address: (seen taken, seen fall). */
    const std::map<uint16_t, std::pair<bool, bool>> &
    branchDirections() const
    {
        return branchDirs_;
    }
    /// @}

  private:
    uint16_t fetchWord();
    StepResult execute(const Instr &ins);
    void serviceIrqIfPending();

    /** Resolve the source operand; may consume an extension word. */
    uint16_t readSrc(const Instr &ins, bool &is_mem, uint16_t &mem_addr);
    /** Resolve the destination address (for non-register dst). */
    uint16_t resolveDstAddr(const Instr &ins);

    uint16_t busReadWord(uint16_t addr);
    uint8_t busReadByte(uint16_t addr);
    void busWriteWord(uint16_t addr, uint16_t value);
    void busWriteByte(uint16_t addr, uint8_t value);

    uint16_t periphRead(uint16_t addr);
    void periphWrite(uint16_t addr, uint16_t value, uint16_t byte_mask);

    void setFlagsLogic(uint16_t result, bool byte_mode);
    void setFlag(uint16_t flag, bool v);
    bool getFlag(uint16_t flag) const { return regs_[kRegSR] & flag; }
    bool condTaken(JumpCond cond) const;

    const AsmProgram &prog_;
    std::array<uint16_t, 16> regs_ = {};
    std::array<uint8_t, kRamSize> ram_ = {};

    // Peripheral state.
    uint16_t gpioIn_ = 0;
    uint16_t gpioOut_ = 0;
    uint16_t ie_ = 0;
    uint16_t ifg_ = 0;
    uint16_t wdtctl_ = 0;
    uint16_t clkctl_ = 0;
    uint16_t dbgctl_ = 0;
    uint16_t dbgaddr_ = 0;
    uint16_t dbgdata_ = 0;
    uint16_t dbgcount_ = 0;
    uint16_t tactl_ = 0;
    uint16_t taccr_ = 0;
    uint16_t uctl_ = 0;
    uint16_t utxbuf_ = 0;
    uint16_t mpyOp1_ = 0;
    uint16_t mpyOp2_ = 0;
    bool mpySigned_ = false;
    uint16_t resLo_ = 0;
    uint16_t resHi_ = 0;

    std::vector<OutputEvent> trace_;
    uint64_t retired_ = 0;
    std::set<uint16_t> executedPCs_;
    std::map<uint16_t, std::pair<bool, bool>> branchDirs_;
};

} // namespace bespoke

#endif // BESPOKE_ISS_ISS_HH
