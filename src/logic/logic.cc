#include "src/logic/logic.hh"

namespace bespoke
{

Logic
logicNot(Logic a)
{
    if (a == Logic::X)
        return Logic::X;
    return a == Logic::One ? Logic::Zero : Logic::One;
}

Logic
logicAnd(Logic a, Logic b)
{
    if (a == Logic::Zero || b == Logic::Zero)
        return Logic::Zero;
    if (a == Logic::One && b == Logic::One)
        return Logic::One;
    return Logic::X;
}

Logic
logicOr(Logic a, Logic b)
{
    if (a == Logic::One || b == Logic::One)
        return Logic::One;
    if (a == Logic::Zero && b == Logic::Zero)
        return Logic::Zero;
    return Logic::X;
}

Logic
logicXor(Logic a, Logic b)
{
    if (a == Logic::X || b == Logic::X)
        return Logic::X;
    return logicOf(a != b);
}

Logic
logicMux(Logic sel, Logic a0, Logic a1)
{
    if (sel == Logic::Zero)
        return a0;
    if (sel == Logic::One)
        return a1;
    // Unknown select: result known only if both data inputs agree.
    if (a0 == a1 && a0 != Logic::X)
        return a0;
    return Logic::X;
}

char
logicChar(Logic v)
{
    switch (v) {
      case Logic::Zero:
        return '0';
      case Logic::One:
        return '1';
      default:
        return 'X';
    }
}

std::string
logicString(Logic v)
{
    return std::string(1, logicChar(v));
}

std::string
SWord::toString() const
{
    std::string s;
    for (int i = 15; i >= 0; i--)
        s += logicChar(bit(i));
    return s;
}

} // namespace bespoke
