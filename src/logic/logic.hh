/**
 * @file
 * Three-valued (Kleene) logic used throughout the symbolic simulator.
 *
 * A signal is 0, 1, or X (unknown). X models an input-dependent value
 * during input-independent gate activity analysis: any gate whose output
 * can become X may toggle for some input assignment and must be retained
 * in a bespoke design (paper Section 3.1).
 */

#ifndef BESPOKE_LOGIC_LOGIC_HH
#define BESPOKE_LOGIC_LOGIC_HH

#include <cstdint>
#include <string>

namespace bespoke
{

/** One three-valued signal. Encoding chosen so 0/1 match their values. */
enum class Logic : uint8_t
{
    Zero = 0,
    One = 1,
    X = 2,
};

/** Make a Logic from a bool. */
inline Logic
logicOf(bool b)
{
    return b ? Logic::One : Logic::Zero;
}

inline bool isKnown(Logic v) { return v != Logic::X; }

/** Value of a known signal; caller must ensure isKnown(). */
inline bool
knownValue(Logic v)
{
    return v == Logic::One;
}

Logic logicNot(Logic a);
Logic logicAnd(Logic a, Logic b);
Logic logicOr(Logic a, Logic b);
Logic logicXor(Logic a, Logic b);

/** 2:1 multiplexer with X-aware select: sel==X yields a==b ? a : X. */
Logic logicMux(Logic sel, Logic a0, Logic a1);

char logicChar(Logic v);
std::string logicString(Logic v);

/**
 * A 16-bit word of three-valued signals, packed as (val, known) bit
 * planes: bit i is X iff known bit i is 0; when known, its value is the
 * val bit. Used by behavioral memory and peripheral models and by the
 * symbolic machine state.
 */
struct SWord
{
    uint16_t val = 0;
    uint16_t known = 0;

    SWord() = default;
    SWord(uint16_t value, uint16_t known_mask)
        : val(static_cast<uint16_t>(value & known_mask)), known(known_mask)
    {}

    /** A fully known word. */
    static SWord of(uint16_t value) { return SWord(value, 0xffff); }

    /** A fully unknown word. */
    static SWord allX() { return SWord(0, 0); }

    bool fullyKnown() const { return known == 0xffff; }
    bool anyX() const { return known != 0xffff; }

    Logic
    bit(int i) const
    {
        uint16_t m = static_cast<uint16_t>(1u << i);
        if (!(known & m))
            return Logic::X;
        return (val & m) ? Logic::One : Logic::Zero;
    }

    void
    setBit(int i, Logic v)
    {
        uint16_t m = static_cast<uint16_t>(1u << i);
        if (v == Logic::X) {
            known = static_cast<uint16_t>(known & ~m);
            val = static_cast<uint16_t>(val & ~m);
        } else {
            known = static_cast<uint16_t>(known | m);
            val = static_cast<uint16_t>(v == Logic::One ? (val | m)
                                                        : (val & ~m));
        }
    }

    /** Low byte as an 8-bit symbolic quantity (upper byte known zero). */
    SWord
    lowByte() const
    {
        return SWord(val & 0xff,
                     static_cast<uint16_t>((known & 0xff) | 0xff00));
    }

    bool operator==(const SWord &o) const = default;

    /**
     * Widen toward the most conservative common state: bits that differ
     * in value or knownness become X (paper Algorithm 1 superstate).
     */
    static SWord
    merge(SWord a, SWord b)
    {
        uint16_t both_known = a.known & b.known;
        uint16_t agree = static_cast<uint16_t>(~(a.val ^ b.val));
        uint16_t k = both_known & agree;
        return SWord(a.val & k, k);
    }

    /**
     * True if this state is covered by (is a substate of) the
     * conservative state c: wherever c is known, this must be known and
     * equal.
     */
    bool
    substateOf(const SWord &c) const
    {
        if ((c.known & known) != c.known)
            return false;
        return ((val ^ c.val) & c.known) == 0;
    }

    std::string toString() const;
};

} // namespace bespoke

#endif // BESPOKE_LOGIC_LOGIC_HH
