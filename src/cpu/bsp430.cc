#include "src/cpu/bsp430.hh"

#include "src/isa/isa.hh"
#include "src/transform/rewrite.hh"
#include "src/util/logging.hh"

namespace bespoke
{

namespace
{

constexpr int kStateBits = 5;

/**
 * Generator context. Registers are created first with placeholder BUF
 * drivers (every feedback cycle goes through a flop), combinational
 * logic is built reading only flop outputs and primary inputs, and the
 * placeholders are bound at the end. stripBuffers() then removes the
 * scaffolding.
 */
class CpuGen
{
  public:
    explicit CpuGen(const CpuConfig &config)
        : cfg(config), b(nl, Module::Glue)
    {}

    Netlist build(CpuProbes *probes);

  private:
    /** Placeholder net to be bound later. */
    GateId
    ph()
    {
        GateId id = b.buf(b.tie0());
        unbound_.push_back(id);
        return id;
    }

    Bus
    phBus(int w)
    {
        Bus r(w);
        for (int i = 0; i < w; i++)
            r[i] = ph();
        return r;
    }

    void
    bind(GateId placeholder, GateId real)
    {
        nl.setFanin(placeholder, 0, real);
        for (size_t i = 0; i < unbound_.size(); i++) {
            if (unbound_[i] == placeholder) {
                unbound_.erase(unbound_.begin() +
                               static_cast<long>(i));
                return;
            }
        }
        bespoke_panic("double bind of placeholder ", placeholder);
    }

    void
    bindBus(const Bus &placeholders, const Bus &real)
    {
        bespoke_assert(placeholders.size() == real.size());
        for (size_t i = 0; i < real.size(); i++)
            bind(placeholders[i], real[i]);
    }

    /** One-hot select over (sel, value) cases; 0 when none selected. */
    Bus
    onehotMux(const std::vector<std::pair<GateId, Bus>> &cases)
    {
        bespoke_assert(!cases.empty());
        Bus acc = b.maskBus(cases[0].second, cases[0].first);
        for (size_t i = 1; i < cases.size(); i++)
            acc = b.orBus(acc, b.maskBus(cases[i].second,
                                         cases[i].first));
        return acc;
    }

    GateId
    onehotMuxBit(const std::vector<std::pair<GateId, GateId>> &cases)
    {
        GateId acc = b.and2(cases[0].second, cases[0].first);
        for (size_t i = 1; i < cases.size(); i++)
            acc = b.or2(acc, b.and2(cases[i].second, cases[i].first));
        return acc;
    }

    /** 8:1 single-bit mux. */
    GateId
    mux8(const Bus &sel3, const std::array<GateId, 8> &in)
    {
        std::vector<Bus> choices;
        for (GateId g : in)
            choices.push_back(Bus{g});
        return b.muxTree(sel3, choices)[0];
    }

    /** 32-bit product of two 16-bit operands (unsigned array mult). */
    Bus multiply16(const Bus &a, const Bus &bb);

    CpuConfig cfg;
    Netlist nl;
    NetBuilder b;
    std::vector<GateId> unbound_;
};

Bus
CpuGen::multiply16(const Bus &a, const Bus &bb)
{
    Bus prod;
    Bus acc = b.maskBus(a, bb[0]);
    GateId carry_prev = b.tie0();
    for (int i = 1; i < 16; i++) {
        prod.push_back(acc[0]);
        Bus shifted = NetBuilder::slice(acc, 1, 15);
        shifted.push_back(carry_prev);
        AddResult r = b.adder(shifted, b.maskBus(a, bb[i]), b.tie0());
        acc = r.sum;
        carry_prev = r.carryOut;
    }
    for (GateId g : acc)
        prod.push_back(g);
    prod.push_back(carry_prev);
    bespoke_assert(prod.size() == 32);
    return prod;
}

Netlist
CpuGen::build(CpuProbes *probes)
{
    // ------------------------------------------------------------------
    // Primary inputs
    // ------------------------------------------------------------------
    b.setModule(Module::MemBB);
    Bus in_mem_rdata = b.inputBus("mem_rdata", 16);
    b.setModule(Module::Sfr);
    Bus in_gpio = b.inputBus("gpio_in", 16);
    GateId in_irq_ext = nl.addInput("irq_ext", Module::Sfr);

    // ------------------------------------------------------------------
    // Registers (placeholder D/EN nets, bound at the end)
    // ------------------------------------------------------------------
    b.setModule(Module::Frontend);
    Bus state_d = phBus(kStateBits);
    Bus state_q = b.regBusAlways(state_d,
                                 static_cast<uint32_t>(CpuState::Reset0));
    Bus pc_d = phBus(16);
    GateId pc_en = ph();
    Bus pc_q = b.regBus(pc_d, pc_en, 0);
    Bus ir_d = phBus(16);
    GateId ir_en = ph();
    Bus ir_q = b.regBus(ir_d, ir_en, 0);
    GateId irqwhich_d = ph(), irqwhich_en = ph();
    GateId irqwhich_q = b.dffe(irqwhich_d, irqwhich_en);

    b.setModule(Module::Exec);
    Bus srcval_d = phBus(16);
    GateId srcval_en = ph();
    Bus srcval_q = b.regBus(srcval_d, srcval_en, 0);
    Bus dstval_d = phBus(16);
    GateId dstval_en = ph();
    Bus dstval_q = b.regBus(dstval_d, dstval_en, 0);
    Bus mar_d = phBus(16);
    GateId mar_en = ph();
    Bus mar_q = b.regBus(mar_d, mar_en, 0);
    GateId flagC_d = ph(), flagZ_d = ph(), flagN_d = ph();
    GateId flagGIE_d = ph(), flagV_d = ph();
    GateId flagC_q = b.dff(flagC_d);
    GateId flagZ_q = b.dff(flagZ_d);
    GateId flagN_q = b.dff(flagN_d);
    GateId flagGIE_q = b.dff(flagGIE_d);
    GateId flagV_q = b.dff(flagV_d);

    // Register file: r1 (SP) and r4..r15 are real flops.
    b.setModule(Module::RF);
    Bus rf_wdata = phBus(16);
    Bus rf_wsel = phBus(4);
    GateId rf_wen = ph();
    std::array<Bus, 16> rf_q;
    for (int r = 0; r < 16; r++) {
        if (r == kRegPC || r == kRegSR || r == kRegCG)
            continue;
        GateId wen_r = b.and2(rf_wen,
                              b.equalsConst(rf_wsel,
                                            static_cast<uint32_t>(r)));
        rf_q[r] = b.regBus(rf_wdata, wen_r, 0);
    }

    // SFR + GPIO.
    b.setModule(Module::Sfr);
    Bus p1out_d = phBus(16);
    GateId p1out_en = ph();
    Bus p1out_q = b.regBus(p1out_d, p1out_en, 0);
    Bus ie_d = phBus(2);
    GateId ie_en = ph();
    Bus ie_q = b.regBus(ie_d, ie_en, 0);
    GateId ifg0_d = ph(), ifg1_d = ph();
    GateId ifg0_q = b.dff(ifg0_d);
    GateId ifg1_q = b.dff(ifg1_d);
    GateId irqsync_ph = ph();
    GateId irq_sync_q = b.dff(irqsync_ph);  // irq line synchronizer

    // Watchdog.
    b.setModule(Module::Wdg);
    Bus wdtctl_d = phBus(8);
    GateId wdtctl_en = ph();
    Bus wdtctl_q = b.regBus(wdtctl_d, wdtctl_en, 0);
    Bus wdtcnt_d = phBus(16);
    Bus wdtcnt_q = b.regBusAlways(wdtcnt_d, 0);
    GateId wdttap_d = ph();
    GateId wdttap_q = b.dff(wdttap_d);

    // Clock module.
    b.setModule(Module::Clock);
    Bus clkctl_d = phBus(8);
    GateId clkctl_en = ph();
    Bus clkctl_q = b.regBus(clkctl_d, clkctl_en, 0);
    Bus clkdiv_d = phBus(8);
    Bus clkdiv_q = b.regBusAlways(clkdiv_d, 0);

    // Debug unit.
    b.setModule(Module::Dbg);
    Bus dbgctl_d = phBus(8);
    GateId dbgctl_en = ph();
    Bus dbgctl_q = b.regBus(dbgctl_d, dbgctl_en, 0);
    Bus dbgaddr_d = phBus(16);
    GateId dbgaddr_en = ph();
    Bus dbgaddr_q = b.regBus(dbgaddr_d, dbgaddr_en, 0);
    Bus dbgdata_d = phBus(16);
    GateId dbgdata_en = ph();
    Bus dbgdata_q = b.regBus(dbgdata_d, dbgdata_en, 0);
    Bus dbgcnt_d = phBus(8);
    Bus dbgcnt_q = b.regBusAlways(dbgcnt_d, 0);
    GateId dbgrd_d = ph();
    GateId dbgrd_q = b.dff(dbgrd_d);  // delayed read-hit strobe

    // Multiplier peripheral.
    b.setModule(Module::Mult);
    Bus mpyop1_d = phBus(16);
    GateId mpyop1_en = ph();
    Bus mpyop1_q = b.regBus(mpyop1_d, mpyop1_en, 0);
    GateId mpymode_d = ph(), mpymode_en = ph();
    GateId mpymode_q = b.dffe(mpymode_d, mpymode_en);
    Bus mpyop2_d = phBus(16);
    GateId mpyop2_en = ph();
    Bus mpyop2_q = b.regBus(mpyop2_d, mpyop2_en, 0);
    GateId mpytrig_d = ph();
    GateId mpytrig_q = b.dff(mpytrig_d);
    Bus reslo_d = phBus(16);
    GateId reslo_en = ph();
    Bus reslo_q = b.regBus(reslo_d, reslo_en, 0);
    Bus reshi_d = phBus(16);
    GateId reshi_en = ph();
    Bus reshi_q = b.regBus(reshi_d, reshi_en, 0);

    // Memory backbone read-routing state.
    b.setModule(Module::MemBB);
    GateId selper_d = ph(), selper_en = ph();
    GateId selper_q = b.dffe(selper_d, selper_en);
    Bus laddr_d = phBus(8);  // latched addr[8:1] for peripheral reads
    GateId laddr_en = ph();
    Bus laddr_q = b.regBus(laddr_d, laddr_en, 0);

    // Optional peripherals (extended configuration).
    Bus tactl_d, tacnt_d, taccr_d, tactl_q, tacnt_q, taccr_q;
    GateId tactl_en = kNoGate, taccr_en = kNoGate;
    GateId taflag_d = kNoGate, taflag_q = kNoGate;
    if (cfg.timer) {
        b.setModule(Module::Timer);
        tactl_d = phBus(4);
        tactl_en = ph();
        tactl_q = b.regBus(tactl_d, tactl_en, 0);
        tacnt_d = phBus(16);
        tacnt_q = b.regBusAlways(tacnt_d, 0);
        taccr_d = phBus(16);
        taccr_en = ph();
        taccr_q = b.regBus(taccr_d, taccr_en, 0);
        taflag_d = ph();
        taflag_q = b.dff(taflag_d);
    }
    Bus utxbuf_d, ushift_d, ubaud_d, ubitcnt_d;
    Bus utxbuf_q, ushift_q, ubaud_q, ubitcnt_q;
    GateId uctl_d = kNoGate, uctl_en = kNoGate, uctl_q = kNoGate;
    GateId ubusy_d = kNoGate, ubusy_q = kNoGate;
    GateId utxbuf_en = kNoGate;
    if (cfg.uart) {
        b.setModule(Module::Uart);
        uctl_d = ph();
        uctl_en = ph();
        uctl_q = b.dffe(uctl_d, uctl_en);
        utxbuf_d = phBus(8);
        utxbuf_en = ph();
        utxbuf_q = b.regBus(utxbuf_d, utxbuf_en, 0);
        ushift_d = phBus(10);
        ushift_q = b.regBusAlways(ushift_d, 0x3ff);
        ubaud_d = phBus(3);
        ubaud_q = b.regBusAlways(ubaud_d, 0);
        ubitcnt_d = phBus(4);
        ubitcnt_q = b.regBusAlways(ubitcnt_d, 0);
        ubusy_d = ph();
        ubusy_q = b.dff(ubusy_d);
    }

    // ------------------------------------------------------------------
    // FSM state decode
    // ------------------------------------------------------------------
    b.setModule(Module::Frontend);
    const int kNumStates = static_cast<int>(CpuState::NumStates);
    Bus st_all(kNumStates);
    for (int s = 0; s < kNumStates; s++)
        st_all[s] = b.equalsConst(state_q, static_cast<uint32_t>(s));
    auto st = [&](CpuState s) { return st_all[static_cast<int>(s)]; };
    GateId st_fetch = st(CpuState::Fetch);
    GateId st_decode = st(CpuState::Decode);
    GateId st_exec = st(CpuState::Exec);

    // ------------------------------------------------------------------
    // Memory backbone: peripheral read mux and mdata
    // ------------------------------------------------------------------
    b.setModule(Module::MemBB);
    // Peripheral register word indices (addr[8:1]).
    auto reg_idx = [](uint16_t byte_addr) {
        return static_cast<uint32_t>((byte_addr >> 1) & 0xff);
    };
    Bus ie16 = b.resize(Bus{ie_q[0], ie_q[1]}, 16);
    Bus ifg16 = b.resize(Bus{ifg0_q, ifg1_q}, 16);
    Bus wdt16 = b.resize(wdtctl_q, 16);
    Bus clk16 = b.resize(clkctl_q, 16);
    Bus dbgctl16 = NetBuilder::concat(dbgctl_q, dbgcnt_q);
    std::vector<std::pair<uint32_t, Bus>> readable = {
        {reg_idx(kAddrP1IN), in_gpio},
        {reg_idx(kAddrP1OUT), p1out_q},
        {reg_idx(kAddrIE), ie16},
        {reg_idx(kAddrIFG), ifg16},
        {reg_idx(kAddrWDTCTL), wdt16},
        {reg_idx(kAddrCLKCTL), clk16},
        {reg_idx(kAddrDBGCTL), dbgctl16},
        {reg_idx(kAddrDBGADDR), dbgaddr_q},
        {reg_idx(kAddrDBGDATA), dbgdata_q},
        {reg_idx(kAddrMPY), mpyop1_q},
        {reg_idx(kAddrMPYS), mpyop1_q},
        {reg_idx(kAddrOP2), mpyop2_q},
        {reg_idx(kAddrRESLO), reslo_q},
        {reg_idx(kAddrRESHI), reshi_q},
    };
    if (cfg.timer) {
        Bus tactl16 = b.resize(tactl_q, 16);
        tactl16[8] = taflag_q;  // compare flag readable in bit 8
        readable.push_back({reg_idx(kAddrTACTL), tactl16});
        readable.push_back({reg_idx(kAddrTACNT), tacnt_q});
        readable.push_back({reg_idx(kAddrTACCR), taccr_q});
    }
    if (cfg.uart) {
        Bus uctl16 = b.resize(Bus{uctl_q}, 16);
        uctl16[8] = ubusy_q;  // busy readable in bit 8
        readable.push_back({reg_idx(kAddrUCTL), uctl16});
        readable.push_back({reg_idx(kAddrUTXBUF),
                            b.resize(utxbuf_q, 16)});
    }
    std::vector<std::pair<GateId, Bus>> per_cases;
    for (auto &[idx, value] : readable)
        per_cases.push_back({b.equalsConst(laddr_q, idx), value});
    Bus per_dout = onehotMux(per_cases);
    // Memory data as seen by the core this cycle.
    Bus mdata = b.muxBus(selper_q, in_mem_rdata, per_dout);

    // ------------------------------------------------------------------
    // Instruction decode (from IR, or from mdata during DECODE)
    // ------------------------------------------------------------------
    b.setModule(Module::Frontend);
    Bus ir_cur = b.muxBus(st_decode, ir_q, mdata);

    GateId ir15 = ir_cur[15], ir14 = ir_cur[14], ir13 = ir_cur[13];
    GateId fmt_two = b.or2(ir15, ir14);
    GateId fmt_jump = b.and3(b.inv(ir15), b.inv(ir14), ir13);
    // 000100 prefix.
    GateId fmt_single = b.and4(b.inv(ir15), b.inv(ir14),
                               b.and2(b.inv(ir13), ir_cur[12]),
                               b.and2(b.inv(ir_cur[11]),
                                      b.inv(ir_cur[10])));

    Bus op1_bits = NetBuilder::slice(ir_cur, 12, 4);
    Bus op2_bits = NetBuilder::slice(ir_cur, 7, 3);
    auto op1_is = [&](Op1 o) {
        return b.and2(fmt_two,
                      b.equalsConst(op1_bits,
                                    static_cast<uint32_t>(o)));
    };
    auto op2_is = [&](Op2 o) {
        return b.and2(fmt_single,
                      b.equalsConst(op2_bits,
                                    static_cast<uint32_t>(o)));
    };
    GateId op_mov = op1_is(Op1::MOV);
    GateId op_add = op1_is(Op1::ADD);
    GateId op_addc = op1_is(Op1::ADDC);
    GateId op_subc = op1_is(Op1::SUBC);
    GateId op_sub = op1_is(Op1::SUB);
    GateId op_cmp = op1_is(Op1::CMP);
    GateId op_bit = op1_is(Op1::BIT);
    GateId op_bic = op1_is(Op1::BIC);
    GateId op_bis = op1_is(Op1::BIS);
    GateId op_xor = op1_is(Op1::XOR);
    GateId op_and = op1_is(Op1::AND);
    GateId is_rrc = op2_is(Op2::RRC);
    GateId is_swpb = op2_is(Op2::SWPB);
    GateId is_rra = op2_is(Op2::RRA);
    GateId is_sxt = op2_is(Op2::SXT);
    GateId is_push = op2_is(Op2::PUSH);
    GateId is_call = op2_is(Op2::CALL);
    GateId is_reti = op2_is(Op2::RETI);

    Bus srcsel = b.muxBus(fmt_single, NetBuilder::slice(ir_cur, 8, 4),
                          NetBuilder::slice(ir_cur, 0, 4));
    Bus dstsel = NetBuilder::slice(ir_cur, 0, 4);
    GateId ad_bit = ir_cur[7];
    GateId bm = ir_cur[6];
    Bus as_bits = NetBuilder::slice(ir_cur, 4, 2);
    Bus cond_bits = NetBuilder::slice(ir_cur, 10, 3);

    GateId src_is_r3 = b.equalsConst(srcsel, 3);
    GateId src_is_r2 = b.equalsConst(srcsel, 2);
    GateId src_is_r0 = b.equalsConst(srcsel, 0);
    GateId src_is_sp = b.equalsConst(srcsel, 1);
    GateId is_cg = b.or2(src_is_r3, b.and2(src_is_r2, as_bits[1]));
    GateId as_eq0 = b.and2(b.inv(as_bits[1]), b.inv(as_bits[0]));
    GateId as_eq1 = b.and2(b.inv(as_bits[1]), as_bits[0]);
    GateId as_eq3 = b.and2(as_bits[1], as_bits[0]);
    GateId src_is_imm = b.and2(as_eq3, src_is_r0);
    GateId src_needs_ext = b.and2(b.inv(is_cg),
                                  b.or2(as_eq1, src_is_imm));
    GateId src_is_ind = b.and3(as_bits[1], b.inv(is_cg),
                               b.inv(src_is_imm));
    GateId as_postinc = b.and2(src_is_ind, as_bits[0]);
    GateId src_is_reg = b.and2(as_eq0, b.inv(src_is_r3));
    GateId src_is_abs = b.and2(src_is_r2, as_eq1);
    GateId src_is_memop = b.or2(src_is_ind,
                                b.and2(src_needs_ext,
                                       b.inv(src_is_imm)));
    GateId dst_mem = b.and2(fmt_two, ad_bit);
    GateId fmt2_memop = b.and2(fmt_single, src_is_memop);

    GateId wb_fmt1 = b.and2(fmt_two,
                            b.inv(b.or2(op_cmp, op_bit)));
    GateId wb_fmt2 = b.or4(is_rrc, is_rra, is_swpb, is_sxt);
    GateId writeback = b.or2(wb_fmt1, wb_fmt2);
    GateId dst_is_reg = b.or2(b.and2(fmt_two, b.inv(ad_bit)),
                              b.and2(fmt_single, src_is_reg));
    Bus dstsel_eff = dstsel;  // format II operand reg == ir[3:0] too

    // Constant generator value.
    b.setModule(Module::Exec);
    Bus cg_r3 = b.muxTree(as_bits,
                          {b.busConst(0, 16), b.busConst(1, 16),
                           b.busConst(2, 16), b.busConst(0xffff, 16)});
    Bus cg_r2 = b.muxBus(as_bits[0], b.busConst(4, 16),
                         b.busConst(8, 16));
    Bus cg_val = b.muxBus(src_is_r3, cg_r2, cg_r3);

    // ------------------------------------------------------------------
    // Register read ports
    // ------------------------------------------------------------------
    b.setModule(Module::Exec);
    Bus sr_val = b.busConst(0, 16);
    sr_val[0] = flagC_q;
    sr_val[1] = flagZ_q;
    sr_val[2] = flagN_q;
    sr_val[3] = flagGIE_q;
    sr_val[8] = flagV_q;

    b.setModule(Module::RF);
    std::vector<Bus> reg_views(16);
    for (int r = 0; r < 16; r++) {
        if (r == kRegPC) {
            reg_views[r] = pc_q;
        } else if (r == kRegSR) {
            reg_views[r] = sr_val;
        } else if (r == kRegCG) {
            reg_views[r] = b.busConst(0, 16);
        } else {
            reg_views[r] = rf_q[r];
        }
    }
    Bus read_src = b.muxTree(srcsel, reg_views);
    Bus read_dst = b.muxTree(dstsel_eff, reg_views);

    // ------------------------------------------------------------------
    // Address computation
    // ------------------------------------------------------------------
    b.setModule(Module::Exec);
    Bus src_base = b.maskBus(read_src, b.inv(src_is_abs));
    Bus src_addr = b.adder(mdata, src_base, b.tie0()).sum;
    GateId dst_is_abs = b.equalsConst(dstsel, 2);
    Bus dst_base = b.maskBus(read_dst, b.inv(dst_is_abs));
    Bus dst_addr = b.adder(mdata, dst_base, b.tie0()).sum;

    Bus sp_q = rf_q[kRegSP];
    Bus sp_m2 = b.adder(sp_q, b.busConst(0xfffe, 16), b.tie0()).sum;
    Bus sp_p2 = b.adder(sp_q, b.busConst(2, 16), b.tie0()).sum;

    b.setModule(Module::Frontend);
    Bus pc_p2 = b.adder(pc_q, b.busConst(2, 16), b.tie0()).sum;
    // Jump target: PC(+2 already) + sign-extended word offset * 2.
    Bus off2(16);
    off2[0] = b.tie0();
    for (int i = 0; i < 10; i++)
        off2[i + 1] = ir_cur[i];
    for (int i = 11; i < 16; i++)
        off2[i] = ir_cur[9];
    Bus jump_target = b.adder(pc_q, off2, b.tie0()).sum;

    // ------------------------------------------------------------------
    // ALU
    // ------------------------------------------------------------------
    b.setModule(Module::Alu);
    // Operand A: constant generator / register / loaded value.
    Bus a_raw = b.muxBus(src_is_reg, srcval_q, read_src);
    a_raw = b.muxBus(is_cg, a_raw, cg_val);
    GateId bm_inv = b.inv(bm);
    Bus opA = a_raw;
    for (int i = 8; i < 16; i++)
        opA[i] = b.and2(a_raw[i], bm_inv);
    Bus b_raw = b.muxBus(dst_mem, read_dst, dstval_q);
    Bus opB = b_raw;
    for (int i = 8; i < 16; i++)
        opB[i] = b.and2(b_raw[i], bm_inv);

    GateId op_sublike = b.or3(op_sub, op_subc, op_cmp);
    GateId op_arith = b.or2(b.or3(op_add, op_addc, op_sub),
                            b.or2(op_subc, op_cmp));
    Bus add_a = b.muxBus(op_sublike, opA, b.invBus(opA));
    GateId use_carry = b.or2(op_addc, op_subc);
    GateId cin_base = b.or2(op_sub, op_cmp);
    GateId cin = b.mux2(use_carry, cin_base, flagC_q);
    AddResult sum = b.adder(opB, add_a, cin);

    Bus and_r = b.andBus(opA, opB);
    Bus bic_r = b.andBus(opB, b.invBus(opA));
    Bus bis_r = b.orBus(opA, opB);
    Bus xor_r = b.xorBus(opA, opB);

    // Rotate right (RRA arithmetic, RRC through carry).
    GateId rr_msb_in = b.mux2(is_rrc,
                              b.mux2(bm, opA[15], opA[7]),  // RRA sign
                              flagC_q);
    Bus rr_res(16);
    for (int i = 0; i < 15; i++)
        rr_res[i] = opA[i + 1];
    rr_res[15] = rr_msb_in;
    rr_res[7] = b.mux2(bm, opA[8], rr_msb_in);

    Bus swpb_res = NetBuilder::concat(
        NetBuilder::slice(a_raw, 8, 8), NetBuilder::slice(a_raw, 0, 8));
    Bus sxt_res(16);
    for (int i = 0; i < 8; i++)
        sxt_res[i] = a_raw[i];
    for (int i = 8; i < 16; i++)
        sxt_res[i] = a_raw[7];

    GateId res_is_mov = b.or3(op_mov, is_push, is_call);
    GateId res_is_rr = b.or2(is_rra, is_rrc);
    Bus alu_res = onehotMux({
        {res_is_mov, opA},
        {op_arith, sum.sum},
        {b.or2(op_and, op_bit), and_r},
        {op_bic, bic_r},
        {op_bis, bis_r},
        {op_xor, xor_r},
        {res_is_rr, rr_res},
        {is_swpb, swpb_res},
        {is_sxt, sxt_res},
    });

    // Flags.
    GateId res_sign = b.mux2(bm, alu_res[15], alu_res[7]);
    GateId low_nz = b.reduceOr(NetBuilder::slice(alu_res, 0, 8));
    GateId high_nz = b.reduceOr(NetBuilder::slice(alu_res, 8, 8));
    GateId res_nz = b.or2(low_nz, b.and2(bm_inv, high_nz));
    GateId flag_z_new = b.inv(res_nz);
    GateId flag_n_new = res_sign;
    GateId carry_out = b.mux2(bm, sum.carries[15], sum.carries[7]);
    GateId logic_flag_op = b.or4(op_and, op_bit, op_xor, is_sxt);
    GateId flag_c_new = onehotMuxBit({
        {op_arith, carry_out},
        {logic_flag_op, res_nz},
        {res_is_rr, opA[0]},
    });
    GateId a_sign = b.mux2(bm, add_a[15], add_a[7]);
    GateId b_sign = b.mux2(bm, opB[15], opB[7]);
    GateId v_arith = b.and2(b.xnor2(a_sign, b_sign),
                            b.xor2(res_sign, b_sign));
    GateId a_orig_sign = b.mux2(bm, opA[15], opA[7]);
    GateId v_xor = b.and2(a_orig_sign, b_sign);
    GateId flag_v_new = onehotMuxBit({
        {op_arith, v_arith},
        {op_xor, v_xor},
    });
    GateId flag_update_op = b.or2(
        b.or4(op_add, op_addc, op_sub, op_subc),
        b.or4(b.or2(op_cmp, op_and), b.or2(op_bit, op_xor),
              b.or2(is_rra, is_rrc), is_sxt));

    // ------------------------------------------------------------------
    // Interrupt logic (decision nets)
    // ------------------------------------------------------------------
    b.setModule(Module::Frontend);
    GateId irq0_req = b.and2(ie_q[0], ifg0_q);
    GateId irq1_req = b.and2(ie_q[1], ifg1_q);
    GateId dec_irq0_net = b.and3(st_fetch, flagGIE_q, irq0_req);
    GateId dec_irq1_net = b.and4(st_fetch, flagGIE_q, irq1_req,
                                 b.inv(irq0_req));
    GateId irq_take = b.or2(dec_irq0_net, dec_irq1_net);

    // Branch decision net (X here => fork the execution tree).
    GateId nxv = b.xor2(flagN_q, flagV_q);
    GateId cond_taken = mux8(cond_bits,
                             {b.inv(flagZ_q), flagZ_q, b.inv(flagC_q),
                              flagC_q, flagN_q, b.inv(nxv), nxv,
                              b.tie1()});
    GateId dec_branch_net = b.and3(st_decode, fmt_jump, cond_taken);

    // ------------------------------------------------------------------
    // Next-state logic
    // ------------------------------------------------------------------
    auto SC = [&](CpuState s) {
        return b.busConst(static_cast<uint32_t>(s), kStateBits);
    };
    Bus after_src = b.muxBus(dst_mem, SC(CpuState::Exec),
                             SC(CpuState::DstExt));
    Bus ns_decode = after_src;
    ns_decode = b.muxBus(src_is_memop, ns_decode, SC(CpuState::SrcRd));
    ns_decode = b.muxBus(src_needs_ext, ns_decode, SC(CpuState::SrcExt));
    ns_decode = b.muxBus(is_reti, ns_decode, SC(CpuState::Reti1));
    ns_decode = b.muxBus(fmt_jump, ns_decode, SC(CpuState::Fetch));
    Bus ns_fetch = b.muxBus(irq_take, SC(CpuState::Decode),
                            SC(CpuState::Irq1));
    Bus ns_srcextld = b.muxBus(src_is_imm, SC(CpuState::SrcLd),
                               after_src);
    Bus ns_dstextld = b.muxBus(op_mov, SC(CpuState::DstLd),
                               SC(CpuState::Exec));
    Bus next_state = onehotMux({
        {st(CpuState::Reset0), SC(CpuState::Reset1)},
        {st(CpuState::Reset1), SC(CpuState::Fetch)},
        {st_fetch, ns_fetch},
        {st_decode, ns_decode},
        {st(CpuState::SrcExt), SC(CpuState::SrcExtLd)},
        {st(CpuState::SrcExtLd), ns_srcextld},
        {st(CpuState::SrcRd), SC(CpuState::SrcLd)},
        {st(CpuState::SrcLd), after_src},
        {st(CpuState::DstExt), SC(CpuState::DstExtLd)},
        {st(CpuState::DstExtLd), ns_dstextld},
        {st(CpuState::DstLd), SC(CpuState::Exec)},
        {st_exec, SC(CpuState::Fetch)},
        {st(CpuState::Reti1), SC(CpuState::Reti2)},
        {st(CpuState::Reti2), SC(CpuState::Reti3)},
        {st(CpuState::Reti3), SC(CpuState::Fetch)},
        {st(CpuState::Irq1), SC(CpuState::Irq2)},
        {st(CpuState::Irq2), SC(CpuState::Irq3)},
        {st(CpuState::Irq3), SC(CpuState::Irq4)},
        {st(CpuState::Irq4), SC(CpuState::Fetch)},
    });
    bindBus(state_d, next_state);

    // ------------------------------------------------------------------
    // Memory request
    // ------------------------------------------------------------------
    b.setModule(Module::MemBB);
    GateId exec_wr_mem = b.or2(
        b.and2(writeback, b.or2(b.and2(fmt_two, dst_mem), fmt2_memop)),
        b.or2(is_push, is_call));
    GateId exec_sp_wr = b.or2(is_push, is_call);
    Bus exec_addr = b.muxBus(exec_sp_wr, mar_q, sp_m2);
    Bus irq_vec = b.muxBus(irqwhich_q, b.busConst(kVecIRQ1, 16),
                           b.busConst(kVecIRQ0, 16));

    GateId en_fetch = b.and2(st_fetch, b.inv(irq_take));
    GateId en_srcextld = b.and2(st(CpuState::SrcExtLd),
                                b.inv(src_is_imm));
    GateId en_dstextld = b.and2(st(CpuState::DstExtLd), b.inv(op_mov));
    GateId en_exec = b.and2(st_exec, exec_wr_mem);

    Bus addr_req = onehotMux({
        {st(CpuState::Reset0), b.busConst(kVecReset, 16)},
        {en_fetch, pc_q},
        {st(CpuState::SrcExt), pc_q},
        {st(CpuState::DstExt), pc_q},
        {en_srcextld, src_addr},
        {st(CpuState::SrcRd), read_src},
        {st(CpuState::DstExtLd), dst_addr},
        {en_exec, exec_addr},
        {st(CpuState::Reti1), sp_q},
        {st(CpuState::Reti2), sp_q},
        {st(CpuState::Irq1), sp_m2},
        {st(CpuState::Irq2), sp_m2},
        {st(CpuState::Irq3), irq_vec},
    });

    GateId mem_en = b.or4(
        b.or4(st(CpuState::Reset0), en_fetch, st(CpuState::SrcExt),
              st(CpuState::DstExt)),
        b.or4(en_srcextld, st(CpuState::SrcRd), en_dstextld, en_exec),
        b.or4(st(CpuState::Reti1), st(CpuState::Reti2),
              st(CpuState::Irq1), st(CpuState::Irq2)),
        st(CpuState::Irq3));

    GateId mem_we = b.or3(en_exec, st(CpuState::Irq1),
                          st(CpuState::Irq2));
    GateId byte_wr = b.and4(st_exec, bm,
                            b.or2(b.and2(fmt_two, dst_mem), fmt2_memop),
                            b.inv(is_push));
    GateId wen0 = b.and2(mem_we, b.or2(b.inv(byte_wr),
                                       b.inv(addr_req[0])));
    GateId wen1 = b.and2(mem_we, b.or2(b.inv(byte_wr), addr_req[0]));

    Bus res_lo8 = NetBuilder::slice(alu_res, 0, 8);
    Bus wdata_exec_mem = b.muxBus(byte_wr, alu_res,
                                  NetBuilder::concat(res_lo8, res_lo8));
    Bus wdata_exec = b.muxBus(is_push, wdata_exec_mem, opA);
    wdata_exec = b.muxBus(is_call, wdata_exec, pc_q);
    Bus mem_wdata = onehotMux({
        {en_exec, wdata_exec},
        {st(CpuState::Irq1), pc_q},
        {st(CpuState::Irq2), sr_val},
    });

    // MemBB read-routing registers.
    GateId rd_req = b.and2(mem_en, b.inv(mem_we));
    GateId addr_is_per = b.isZero(NetBuilder::slice(addr_req, 9, 7));
    bind(selper_d, b.and2(addr_is_per, rd_req));
    bind(selper_en, rd_req);
    bindBus(laddr_d, NetBuilder::slice(addr_req, 1, 8));
    bind(laddr_en, rd_req);

    // Peripheral write strobes.
    GateId per_wr = b.and3(mem_en, wen0, addr_is_per);
    Bus waddr_idx = NetBuilder::slice(addr_req, 1, 8);
    auto per_we = [&](uint16_t byte_addr) {
        return b.and2(per_wr, b.equalsConst(waddr_idx,
                                            reg_idx(byte_addr)));
    };
    GateId we_p1out = per_we(kAddrP1OUT);
    GateId we_ie = per_we(kAddrIE);
    GateId we_ifg = per_we(kAddrIFG);
    GateId we_wdt = per_we(kAddrWDTCTL);
    GateId we_clk = per_we(kAddrCLKCTL);
    GateId we_dbgctl = per_we(kAddrDBGCTL);
    GateId we_dbgaddr = per_we(kAddrDBGADDR);
    GateId we_dbgdata = per_we(kAddrDBGDATA);
    GateId we_mpy = per_we(kAddrMPY);
    GateId we_mpys = per_we(kAddrMPYS);
    GateId we_op2 = per_we(kAddrOP2);
    GateId we_reslo = per_we(kAddrRESLO);
    GateId we_reshi = per_we(kAddrRESHI);

    // ------------------------------------------------------------------
    // PC
    // ------------------------------------------------------------------
    b.setModule(Module::Frontend);
    GateId exec_pc_wr = b.and2(st_exec,
                               b.or2(is_call,
                                     b.and3(writeback, dst_is_reg,
                                            b.equalsConst(dstsel_eff,
                                                          kRegPC))));
    Bus exec_pc_val = b.muxBus(is_call, alu_res, opA);
    GateId pc_adv = b.or3(en_fetch, st(CpuState::SrcExt),
                          st(CpuState::DstExt));
    GateId pc_we = b.or4(
        b.or2(st(CpuState::Reset1), pc_adv),
        dec_branch_net, exec_pc_wr,
        b.or2(st(CpuState::Reti3), st(CpuState::Irq4)));
    Bus pc_next = onehotMux({
        {st(CpuState::Reset1), mdata},
        {pc_adv, pc_p2},
        {dec_branch_net, jump_target},
        {exec_pc_wr, exec_pc_val},
        {st(CpuState::Reti3), mdata},
        {st(CpuState::Irq4), mdata},
    });
    bindBus(pc_d, pc_next);
    bind(pc_en, pc_we);

    // IR.
    bindBus(ir_d, mdata);
    bind(ir_en, st_decode);

    // irq_which: which interrupt vector to take.
    bind(irqwhich_d, dec_irq0_net);
    bind(irqwhich_en, irq_take);

    // ------------------------------------------------------------------
    // Operand registers
    // ------------------------------------------------------------------
    b.setModule(Module::Exec);
    Bus mdata_swap = NetBuilder::concat(NetBuilder::slice(mdata, 8, 8),
                                        NetBuilder::slice(mdata, 0, 8));
    GateId load_hi = b.and3(st(CpuState::SrcLd), bm, mar_q[0]);
    Bus srcval_in = b.muxBus(load_hi, mdata, mdata_swap);
    bindBus(srcval_d, srcval_in);
    bind(srcval_en, b.or2(st(CpuState::SrcLd),
                          b.and2(st(CpuState::SrcExtLd), src_is_imm)));

    GateId dload_hi = b.and3(st(CpuState::DstLd), bm, mar_q[0]);
    bindBus(dstval_d, b.muxBus(dload_hi, mdata, mdata_swap));
    bind(dstval_en, st(CpuState::DstLd));

    bindBus(mar_d, onehotMux({
        {en_srcextld, src_addr},
        {st(CpuState::SrcRd), read_src},
        {st(CpuState::DstExtLd), dst_addr},
    }));
    bind(mar_en, b.or3(en_srcextld, st(CpuState::SrcRd),
                       st(CpuState::DstExtLd)));

    // ------------------------------------------------------------------
    // Register-file write port
    // ------------------------------------------------------------------
    b.setModule(Module::RF);
    GateId exec_rf_wr = b.and4(st_exec, writeback, dst_is_reg,
                               b.inv(b.or3(
                                   b.equalsConst(dstsel_eff, kRegPC),
                                   b.equalsConst(dstsel_eff, kRegSR),
                                   b.equalsConst(dstsel_eff, kRegCG))));
    GateId postinc_now = b.and2(st(CpuState::SrcRd), as_postinc);
    GateId sp_mod_m2 = b.or3(b.and2(st_exec, exec_sp_wr),
                             st(CpuState::Irq1), st(CpuState::Irq2));
    GateId sp_mod_p2 = b.or2(st(CpuState::Reti1), st(CpuState::Reti2));

    // Post-increment amount: 1 for byte ops (except SP), else 2.
    GateId inc_one = b.and2(bm, b.inv(src_is_sp));
    Bus inc_bus = b.busConst(0, 16);
    inc_bus[0] = inc_one;
    inc_bus[1] = b.inv(inc_one);
    Bus postinc_val = b.adder(read_src, inc_bus, b.tie0()).sum;

    Bus res_wr = alu_res;
    for (int i = 8; i < 16; i++)
        res_wr[i] = b.and2(alu_res[i], bm_inv);

    bindBus(rf_wdata, onehotMux({
        {exec_rf_wr, res_wr},
        {postinc_now, postinc_val},
        {sp_mod_m2, sp_m2},
        {sp_mod_p2, sp_p2},
    }));
    bindBus(rf_wsel, onehotMux({
        {exec_rf_wr, dstsel_eff},
        {postinc_now, srcsel},
        {b.or2(sp_mod_m2, sp_mod_p2), b.busConst(kRegSP, 4)},
    }));
    bind(rf_wen, b.or4(exec_rf_wr, postinc_now, sp_mod_m2, sp_mod_p2));

    // ------------------------------------------------------------------
    // Flags
    // ------------------------------------------------------------------
    b.setModule(Module::Exec);
    GateId sr_wr_exec = b.and4(st_exec, writeback, dst_is_reg,
                               b.equalsConst(dstsel_eff, kRegSR));
    GateId flag_we = b.and3(st_exec, flag_update_op, b.inv(sr_wr_exec));
    auto flag_next = [&](GateId q, GateId alu_new, int sr_bit,
                         bool clear_on_irq) {
        GateId d = b.mux2(flag_we, q, alu_new);
        d = b.mux2(sr_wr_exec, d, alu_res[sr_bit]);
        d = b.mux2(st(CpuState::Reti2), d, mdata[sr_bit]);
        if (clear_on_irq)
            d = b.and2(d, b.inv(st(CpuState::Irq2)));
        return d;
    };
    bind(flagC_d, flag_next(flagC_q, flag_c_new, 0, true));
    bind(flagZ_d, flag_next(flagZ_q, flag_z_new, 1, true));
    bind(flagN_d, flag_next(flagN_q, flag_n_new, 2, true));
    bind(flagV_d, flag_next(flagV_q, flag_v_new, 8, true));
    // GIE has no ALU source; keep the same priority structure.
    GateId gie_d = b.mux2(sr_wr_exec, flagGIE_q, alu_res[3]);
    gie_d = b.mux2(st(CpuState::Reti2), gie_d, mdata[3]);
    gie_d = b.and2(gie_d, b.inv(st(CpuState::Irq2)));
    bind(flagGIE_d, gie_d);

    // ------------------------------------------------------------------
    // SFR: GPIO out, IE, IFG
    // ------------------------------------------------------------------
    b.setModule(Module::Sfr);
    bindBus(p1out_d, mem_wdata);
    bind(p1out_en, we_p1out);
    bindBus(ie_d, NetBuilder::slice(mem_wdata, 0, 2));
    bind(ie_en, we_ie);
    bind(irqsync_ph, in_irq_ext);
    GateId svc0 = b.and2(st(CpuState::Irq4), irqwhich_q);
    GateId svc1 = b.and2(st(CpuState::Irq4), b.inv(irqwhich_q));
    GateId ifg0_set = b.or2(irq_sync_q, ifg0_q);
    GateId ifg0_nxt = b.mux2(we_ifg, ifg0_set, mem_wdata[0]);
    bind(ifg0_d, b.and2(ifg0_nxt, b.inv(svc0)));

    // ------------------------------------------------------------------
    // Timer (extended configuration)
    // ------------------------------------------------------------------
    GateId timer_fire = b.tie0();
    if (cfg.timer) {
        b.setModule(Module::Timer);
        GateId we_tactl = per_we(kAddrTACTL);
        GateId we_taccr = per_we(kAddrTACCR);
        bindBus(tactl_d, NetBuilder::slice(mem_wdata, 0, 4));
        bind(tactl_en, we_tactl);
        bindBus(taccr_d, mem_wdata);
        bind(taccr_en, we_taccr);
        GateId ta_en = tactl_q[0];
        GateId ta_clr = b.and2(we_tactl, mem_wdata[2]);
        GateId ta_match = b.and2(b.equal(tacnt_q, taccr_q), ta_en);
        Bus ta_inc = b.incrementer(tacnt_q).sum;
        Bus ta_next = b.muxBus(ta_en, tacnt_q, ta_inc);
        // Up mode: the counter resets on compare match (Timer_A
        // style), giving a periodic event every TACCR+1 cycles.
        ta_next = b.maskBus(ta_next, b.inv(b.or2(ta_clr, ta_match)));
        bindBus(tacnt_d, ta_next);
        // Sticky compare flag; cleared by writing TACTL bit 3.
        GateId flag_clr = b.and2(we_tactl, mem_wdata[3]);
        GateId flag_next = b.or2(taflag_q, ta_match);
        bind(taflag_d, b.and2(flag_next, b.inv(flag_clr)));
        timer_fire = b.and2(ta_match, tactl_q[1]);  // IRQ1 source
    }

    // ------------------------------------------------------------------
    // UART transmitter (extended configuration)
    // ------------------------------------------------------------------
    if (cfg.uart) {
        b.setModule(Module::Uart);
        GateId we_uctl = per_we(kAddrUCTL);
        GateId we_utx = per_we(kAddrUTXBUF);
        bind(uctl_d, mem_wdata[0]);
        bind(uctl_en, we_uctl);
        bindBus(utxbuf_d, NetBuilder::slice(mem_wdata, 0, 8));
        bind(utxbuf_en, we_utx);
        GateId u_en = uctl_q;
        GateId start = b.and3(we_utx, u_en, b.inv(ubusy_q));
        GateId tick = b.and2(ubusy_q, b.equalsConst(ubaud_q, 7));
        // Baud counter: reset on start, count while busy.
        Bus baud_next = b.muxBus(ubusy_q, ubaud_q,
                                 b.incrementer(ubaud_q).sum);
        baud_next = b.maskBus(baud_next, b.inv(start));
        bindBus(ubaud_d, baud_next);
        // Shift register: {stop=1, data[7:0], start=0}, LSB first.
        Bus load(10);
        load[0] = b.tie0();
        for (int i = 0; i < 8; i++)
            load[i + 1] = mem_wdata[i];
        load[9] = b.tie1();
        Bus shifted = NetBuilder::slice(ushift_q, 1, 9);
        shifted.push_back(b.tie1());
        Bus shift_next = b.muxBus(tick, ushift_q, shifted);
        shift_next = b.muxBus(start, shift_next, load);
        bindBus(ushift_d, shift_next);
        // Bit counter: 10 on start, decrement per tick.
        Bus dec = b.adder(ubitcnt_q, b.busConst(0xf, 4),
                          b.tie0()).sum;  // -1 mod 16
        Bus bit_next = b.muxBus(tick, ubitcnt_q, dec);
        bit_next = b.muxBus(start, bit_next, b.busConst(10, 4));
        bindBus(ubitcnt_d, bit_next);
        GateId last_bit = b.and2(tick, b.equalsConst(ubitcnt_q, 1));
        bind(ubusy_d, b.and2(b.or2(start, ubusy_q),
                             b.inv(last_bit)));
        GateId tx = b.mux2(ubusy_q, b.tie1(), ushift_q[0]);
        nl.addOutput("uart_tx", tx, Module::Uart);
    }

    // ------------------------------------------------------------------
    // Watchdog
    // ------------------------------------------------------------------
    b.setModule(Module::Wdg);
    bindBus(wdtctl_d, NetBuilder::slice(mem_wdata, 0, 8));
    bind(wdtctl_en, we_wdt);
    GateId wdt_clear = b.and2(we_wdt, mem_wdata[3]);
    Bus wdt_inc = b.incrementer(wdtcnt_q).sum;
    Bus wdt_cnt_next = b.muxBus(wdtctl_q[0], wdtcnt_q, wdt_inc);
    wdt_cnt_next = b.maskBus(wdt_cnt_next, b.inv(wdt_clear));
    bindBus(wdtcnt_d, wdt_cnt_next);
    GateId wdt_tap = b.muxTree(
        NetBuilder::slice(wdtctl_q, 1, 2),
        {Bus{wdtcnt_q[6]}, Bus{wdtcnt_q[9]}, Bus{wdtcnt_q[12]},
         Bus{wdtcnt_q[15]}})[0];
    bind(wdttap_d, wdt_tap);
    GateId wdg_fire_real = b.and3(wdt_tap, b.inv(wdttap_q),
                                  wdtctl_q[0]);

    b.setModule(Module::Sfr);
    GateId ifg1_set = b.or3(wdg_fire_real, timer_fire, ifg1_q);
    GateId ifg1_nxt = b.mux2(we_ifg, ifg1_set, mem_wdata[1]);
    bind(ifg1_d, b.and2(ifg1_nxt, b.inv(svc1)));

    // ------------------------------------------------------------------
    // Clock module
    // ------------------------------------------------------------------
    b.setModule(Module::Clock);
    bindBus(clkctl_d, NetBuilder::slice(mem_wdata, 0, 8));
    bind(clkctl_en, we_clk);
    bindBus(clkdiv_d, b.incrementer(clkdiv_q).sum);
    GateId clk_tap = b.muxTree(
        NetBuilder::slice(clkctl_q, 0, 2),
        {Bus{clkdiv_q[3]}, Bus{clkdiv_q[4]}, Bus{clkdiv_q[5]},
         Bus{clkdiv_q[6]}})[0];
    GateId clk_aux = b.and2(clk_tap, clkctl_q[2]);

    // ------------------------------------------------------------------
    // Debug unit
    // ------------------------------------------------------------------
    b.setModule(Module::Dbg);
    bindBus(dbgctl_d, NetBuilder::slice(mem_wdata, 0, 8));
    bind(dbgctl_en, we_dbgctl);
    bindBus(dbgaddr_d, mem_wdata);
    bind(dbgaddr_en, we_dbgaddr);
    // RAM region: 0x0200 <= addr < 0x0a00.
    GateId ge_200 = b.reduceOr(NetBuilder::slice(addr_req, 9, 7));
    GateId lt_a00 = b.inv(b.or2(
        b.reduceOr(NetBuilder::slice(addr_req, 12, 4)),
        b.and2(addr_req[11], b.or2(addr_req[10], addr_req[9]))));
    GateId is_ram = b.and2(ge_200, lt_a00);
    GateId dbg_match = b.equal(NetBuilder::slice(addr_req, 1, 15),
                               NetBuilder::slice(dbgaddr_q, 1, 15));
    GateId dbg_hit = b.and4(dbgctl_q[0], mem_en, is_ram, dbg_match);
    GateId dbg_hit_rd = b.and2(dbg_hit, b.inv(mem_we));
    bind(dbgrd_d, dbg_hit_rd);
    GateId cnt_clr = b.and2(we_dbgctl, mem_wdata[1]);
    Bus cnt_inc = b.incrementer(dbgcnt_q).sum;
    Bus cnt_next = b.muxBus(dbg_hit, dbgcnt_q, cnt_inc);
    cnt_next = b.maskBus(cnt_next, b.inv(cnt_clr));
    bindBus(dbgcnt_d, cnt_next);
    // Capture: writes capture wdata at request; reads capture mdata one
    // cycle later. Priority (last wins in program order): software
    // write > write-hit > pending read capture.
    GateId dbg_wr_hit = b.and2(dbg_hit, mem_we);
    Bus dbgdata_nxt = b.muxBus(dbgrd_q, dbgdata_q, mdata);
    dbgdata_nxt = b.muxBus(dbg_wr_hit, dbgdata_nxt, mem_wdata);
    dbgdata_nxt = b.muxBus(we_dbgdata, dbgdata_nxt, mem_wdata);
    bindBus(dbgdata_d, dbgdata_nxt);
    bind(dbgdata_en, b.or3(dbg_wr_hit, dbgrd_q, we_dbgdata));

    // ------------------------------------------------------------------
    // Hardware multiplier
    // ------------------------------------------------------------------
    b.setModule(Module::Mult);
    bindBus(mpyop1_d, mem_wdata);
    bind(mpyop1_en, b.or2(we_mpy, we_mpys));
    bind(mpymode_d, we_mpys);
    bind(mpymode_en, b.or2(we_mpy, we_mpys));
    bindBus(mpyop2_d, mem_wdata);
    bind(mpyop2_en, we_op2);
    bind(mpytrig_d, we_op2);
    Bus product = multiply16(mpyop1_q, mpyop2_q);
    Bus prod_lo = NetBuilder::slice(product, 0, 16);
    Bus prod_hi = NetBuilder::slice(product, 16, 16);
    // Signed correction: hi -= (a15 ? b : 0) + (b15 ? a : 0).
    Bus corr1 = b.subtractor(prod_hi,
                             b.maskBus(mpyop2_q, mpyop1_q[15])).sum;
    Bus corr2 = b.subtractor(corr1,
                             b.maskBus(mpyop1_q, mpyop2_q[15])).sum;
    Bus hi_eff = b.muxBus(mpymode_q, prod_hi, corr2);
    bindBus(reslo_d, b.muxBus(mpytrig_q, mem_wdata, prod_lo));
    bind(reslo_en, b.or2(mpytrig_q, we_reslo));
    bindBus(reshi_d, b.muxBus(mpytrig_q, mem_wdata, hi_eff));
    bind(reshi_en, b.or2(mpytrig_q, we_reshi));

    // ------------------------------------------------------------------
    // Control-transfer marker (for the conservative-state table)
    // ------------------------------------------------------------------
    b.setModule(Module::Frontend);
    GateId ctl_xfer = b.or4(b.and2(st_decode, fmt_jump), exec_pc_wr,
                            st(CpuState::Reti3), irq_take);

    // ------------------------------------------------------------------
    // Primary outputs
    // ------------------------------------------------------------------
    b.setModule(Module::MemBB);
    b.outputBus("mem_addr", addr_req);
    b.outputBus("mem_wdata", mem_wdata);
    nl.addOutput("mem_wen[0]", wen0, Module::MemBB);
    nl.addOutput("mem_wen[1]", wen1, Module::MemBB);
    nl.addOutput("mem_en", mem_en, Module::MemBB);
    b.setModule(Module::Sfr);
    b.outputBus("gpio_out", p1out_q);
    nl.addOutput("clk_aux", clk_aux, Module::Clock);
    b.setModule(Module::Frontend);
    b.outputBus("pc_out", pc_q);
    nl.addOutput("st_fetch", st_fetch, Module::Frontend);
    nl.addOutput("ctl_xfer", ctl_xfer, Module::Frontend);
    nl.addOutput("dec_branch", dec_branch_net, Module::Frontend);
    nl.addOutput("dec_irq0", dec_irq0_net, Module::Frontend);
    nl.addOutput("dec_irq1", dec_irq1_net, Module::Frontend);

    bespoke_assert(unbound_.empty(), unbound_.size(),
                   " unbound placeholder nets remain");
    nl.validate();

    // Strip the placeholder buffers; remap probe ids.
    RewriteResult rr = stripBuffers(nl);
    rr.netlist.validate();
    if (probes) {
        auto rb = [&](const Bus &bus) {
            Bus out(bus.size());
            for (size_t i = 0; i < bus.size(); i++)
                out[i] = rr.remap(bus[i]);
            return out;
        };
        probes->pc = rb(pc_q);
        probes->stateReg = rb(state_q);
        probes->ir = rb(ir_q);
        for (int r = 0; r < 16; r++) {
            if (!rf_q[r].empty())
                probes->regs[r] = rb(rf_q[r]);
        }
        probes->flagC = rr.remap(flagC_q);
        probes->flagZ = rr.remap(flagZ_q);
        probes->flagN = rr.remap(flagN_q);
        probes->flagGIE = rr.remap(flagGIE_q);
        probes->flagV = rr.remap(flagV_q);
    }
    return std::move(rr.netlist);
}

} // namespace

Netlist
buildBsp430(CpuProbes *probes, const CpuConfig &config)
{
    CpuGen gen(config);
    return gen.build(probes);
}

} // namespace bespoke
