/**
 * @file
 * Gate-level bsp430 microcontroller generator.
 *
 * buildBsp430() constructs, from structural primitives, a complete
 * MSP430-class microcontroller netlist organized into the same modules
 * openMSP430 reports (paper Figs. 3/4/10): frontend, execution unit +
 * ALU, register file, 16x16 hardware multiplier, memory backbone, SFR
 * (+GPIO), watchdog, clock module, and debug unit. Program ROM and data
 * RAM are behavioral simulator models attached at the ports (memories
 * are macros, not standard cells, in the paper's flow too).
 *
 * The core is a multi-cycle FSM (2 cycles for jumps, 3 for reg-reg ops,
 * up to 7 for mem-to-mem) with synchronous, 1-cycle-latency memory.
 *
 * ## Ports
 *
 * Inputs:
 *  - `mem_rdata[16]`  memory read data (ROM or RAM), valid 1 cycle
 *                     after a read request
 *  - `gpio_in[16]`    application input port (P1IN)
 *  - `irq_ext`        external interrupt request line
 *
 * Outputs:
 *  - `mem_addr[16]`   byte address of the current memory request
 *  - `mem_wdata[16]`  write data
 *  - `mem_wen[2]`     byte-lane write enables
 *  - `mem_en`         request strobe (read or write)
 *  - `gpio_out[16]`   P1OUT
 *  - `clk_aux`        divided clock output from the clock module
 *  - `pc_out[16]`     architectural PC (= current instruction address
 *                     while `st_fetch` is high)
 *  - `st_fetch`       FSM is in the FETCH state
 *  - `ctl_xfer`       this cycle resolves a control transfer
 *  - `dec_branch`     decision net: conditional-branch taken (gated; 0
 *                     outside the deciding cycle). X here means the
 *                     activity analysis must fork (paper Sec. 3.1).
 *  - `dec_irq0`/`dec_irq1`  decision nets: interrupt 0/1 accepted
 */

#ifndef BESPOKE_CPU_BSP430_HH
#define BESPOKE_CPU_BSP430_HH

#include <array>

#include "src/builder/net_builder.hh"
#include "src/netlist/netlist.hh"

namespace bespoke
{

/** FSM state encoding (5-bit binary). */
enum class CpuState : uint8_t
{
    Reset0 = 0,
    Reset1,
    Fetch,
    Decode,
    SrcExt,
    SrcExtLd,
    SrcRd,
    SrcLd,
    DstExt,
    DstExtLd,
    DstLd,
    Exec,
    Reti1,
    Reti2,
    Reti3,
    Irq1,
    Irq2,
    Irq3,
    Irq4,
    NumStates,
};

/**
 * Internal probe points for white-box tests (gate ids into the built
 * netlist). Only valid for the original netlist, not for transformed
 * copies.
 */
struct CpuProbes
{
    Bus pc;                      ///< PC register Q
    Bus stateReg;                ///< FSM state register Q
    Bus ir;                      ///< instruction register Q
    /** RF registers; entries for r0/r2/r3 are empty (not RF flops). */
    std::array<Bus, 16> regs;
    GateId flagC = kNoGate;
    GateId flagZ = kNoGate;
    GateId flagN = kNoGate;
    GateId flagGIE = kNoGate;
    GateId flagV = kNoGate;
};

/**
 * Core configuration. The default matches the paper's evaluation
 * vehicle; the extended configuration adds a 16-bit timer with compare
 * (TACTL/TACNT/TACCR, firing IRQ1) and a UART transmitter
 * (UCTL/UTXBUF, `uart_tx` pin) — more over-provisioning for the
 * bespoke flow to strip when unused.
 */
struct CpuConfig
{
    bool timer = false;
    bool uart = false;

    static CpuConfig extended() { return {true, true}; }
};

/** Build the bsp430 netlist. Probes are optional. */
Netlist buildBsp430(CpuProbes *probes = nullptr,
                    const CpuConfig &config = {});

} // namespace bespoke

#endif // BESPOKE_CPU_BSP430_HH
