/**
 * @file
 * Activity-based power model (replaces Synopsys PrimeTime in the
 * paper's flow).
 *
 * Total power = dynamic switching power + clock-network power +
 * leakage:
 *  - switching: 0.5 x alpha_g x C_load(g) x V^2 x f per gate, where
 *    alpha_g is the per-cycle output toggle rate measured by a concrete
 *    representative run (ToggleCounter);
 *  - clock: every flop's clock pin sees two transitions per cycle,
 *    C_clk per flop (the clock tree scales with flop count, so removing
 *    flops in a bespoke design saves clock power);
 *  - leakage: summed from the cell library.
 *
 * Voltage scaling (Table 2): switching and clock power scale with V^2;
 * leakage is modeled as scaling with V^2 as well (DIBL-dominated
 * approximation; only relative numbers are reported).
 */

#ifndef BESPOKE_POWER_POWER_MODEL_HH
#define BESPOKE_POWER_POWER_MODEL_HH

#include "src/sim/gate_sim.hh"
#include "src/timing/sta.hh"

namespace bespoke
{

struct PowerParams
{
    double frequencyMHz = 100.0;
    double voltage = 1.0;
    double clockPinCap = 1.2;    ///< fF per flop clock pin
    double clockTreeFactor = 1.35;  ///< wire + buffer overhead
};

struct PowerReport
{
    double switchingUW = 0.0;  ///< combinational + data-pin switching
    double clockUW = 0.0;
    double leakageUW = 0.0;
    double totalUW() const { return switchingUW + clockUW + leakageUW; }
};

/**
 * Compute power for a netlist given measured toggle activity. The
 * counter must come from a run on this same netlist.
 */
PowerReport computePower(const Netlist &netlist,
                         const ToggleCounter &toggles,
                         const PowerParams &params = {},
                         const TimingParams &timing = {});

/** Rescale a nominal-voltage report to a different supply voltage. */
PowerReport scaleToVoltage(const PowerReport &nominal, double v,
                           const PowerParams &params = {});

} // namespace bespoke

#endif // BESPOKE_POWER_POWER_MODEL_HH
