#include "src/power/power_model.hh"

#include "src/util/logging.hh"

namespace bespoke
{

PowerReport
computePower(const Netlist &nl, const ToggleCounter &toggles,
             const PowerParams &p, const TimingParams &tp)
{
    bespoke_assert(toggles.cycles() > 0, "no cycles observed");

    // Output load per gate (same model as STA).
    std::vector<double> load(nl.size(), 0.0);
    for (GateId i = 0; i < nl.size(); i++) {
        const Gate &g = nl.gate(i);
        if (g.type == CellType::OUTPUT) {
            load[g.in[0]] += tp.outputPortCap;
            continue;
        }
        int n = g.numInputs();
        for (int pin = 0; pin < n; pin++) {
            load[g.in[pin]] +=
                cellInputCap(g.type, g.drive) + tp.wireCapPerFanout;
        }
    }

    PowerReport rep;
    double cycles = static_cast<double>(toggles.cycles());
    double v2 = p.voltage * p.voltage;
    double f_hz = p.frequencyMHz * 1e6;
    size_t flops = 0;

    for (GateId i = 0; i < nl.size(); i++) {
        const Gate &g = nl.gate(i);
        if (cellPseudo(g.type))
            continue;
        rep.leakageUW += cellLeakage(g.type, g.drive) * 1e-3 * v2;
        if (cellSequential(g.type))
            flops++;
        double alpha = static_cast<double>(toggles.count(i)) / cycles;
        // 0.5 * alpha * C * V^2 * f; C in fF -> W x 1e-15 -> uW x 1e-9.
        rep.switchingUW +=
            0.5 * alpha * load[i] * v2 * f_hz * 1e-9;
    }

    rep.clockUW = 0.5 * 2.0 * p.clockPinCap * p.clockTreeFactor *
                  static_cast<double>(flops) * v2 * f_hz * 1e-9;
    return rep;
}

PowerReport
scaleToVoltage(const PowerReport &nominal, double v, const PowerParams &p)
{
    double s = (v * v) / (p.voltage * p.voltage);
    PowerReport r;
    r.switchingUW = nominal.switchingUW * s;
    r.clockUW = nominal.clockUW * s;
    r.leakageUW = nominal.leakageUW * s;
    return r;
}

} // namespace bespoke
