#include "src/bespoke/checkpoint.hh"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "src/bespoke/flow.hh"
#include "src/io/netlist_json.hh"
#include "src/util/logging.hh"

namespace bespoke
{

namespace
{

constexpr uint64_t kFnvPrime = 1099511628211ull;

/** Incremental FNV-1a over typed fields. */
struct Fnv
{
    uint64_t h = kHashBasis;

    void byte(uint8_t b)
    {
        h ^= b;
        h *= kFnvPrime;
    }
    void bytes(const uint8_t *p, size_t n)
    {
        for (size_t i = 0; i < n; i++)
            byte(p[i]);
    }
    void u64(uint64_t v)
    {
        for (int i = 0; i < 8; i++)
            byte(static_cast<uint8_t>(v >> (8 * i)));
    }
    void f64(double v)
    {
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }
};

std::string
hashHex(uint64_t h)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

/** Common artifact envelope. */
JsonValue
stageDoc(const char *stage)
{
    JsonValue doc = JsonValue::object();
    doc.set("format", JsonValue::str("bespoke-checkpoint"));
    doc.set("version", JsonValue::number(1));
    doc.set("stage", JsonValue::str(stage));
    return doc;
}

bool
checkEnvelope(const JsonValue &doc, const char *stage, std::string *err)
{
    if (!doc.isObject()) {
        *err = "artifact is not a JSON object";
        return false;
    }
    const JsonValue *fmt = doc.find("format");
    if (!fmt || !fmt->isString() ||
        fmt->asString() != "bespoke-checkpoint") {
        *err = "not a bespoke-checkpoint document";
        return false;
    }
    const JsonValue *ver = doc.find("version");
    if (!ver || !ver->isNumber() || ver->asNumber() != 1) {
        *err = "unsupported checkpoint version";
        return false;
    }
    const JsonValue *st = doc.find("stage");
    if (!st || !st->isString() || st->asString() != stage) {
        *err = std::string("expected stage \"") + stage + "\"";
        return false;
    }
    return true;
}

/** Fetch a non-negative integral number field. */
bool
getCount(const JsonValue &doc, const char *name, uint64_t *out,
         std::string *err)
{
    const JsonValue *v = doc.find(name);
    if (!v || !v->isNumber() || v->asNumber() < 0) {
        *err = std::string("missing or malformed \"") + name + "\"";
        return false;
    }
    *out = static_cast<uint64_t>(v->asNumber());
    return true;
}

bool
getDouble(const JsonValue &doc, const char *name, double *out,
          std::string *err)
{
    const JsonValue *v = doc.find(name);
    if (!v || !v->isNumber()) {
        *err = std::string("missing or malformed \"") + name + "\"";
        return false;
    }
    *out = v->asNumber();
    return true;
}

JsonValue
powerToJson(const PowerReport &p)
{
    JsonValue jp = JsonValue::object();
    jp.set("switching_uw", JsonValue::number(p.switchingUW));
    jp.set("clock_uw", JsonValue::number(p.clockUW));
    jp.set("leakage_uw", JsonValue::number(p.leakageUW));
    return jp;
}

bool
powerFromJson(const JsonValue &doc, const char *name, PowerReport *out,
              std::string *err)
{
    const JsonValue *jp = doc.find(name);
    if (!jp || !jp->isObject()) {
        *err = std::string("missing \"") + name + "\" object";
        return false;
    }
    return getDouble(*jp, "switching_uw", &out->switchingUW, err) &&
           getDouble(*jp, "clock_uw", &out->clockUW, err) &&
           getDouble(*jp, "leakage_uw", &out->leakageUW, err);
}

/**
 * Mark an artifact as just-used. Explicit (rather than relying on the
 * kernel updating atime on read) so LRU order survives noatime and
 * relatime mounts; mtime is left alone.
 */
void
touchAccess(const std::string &path)
{
    timespec times[2];
    times[0].tv_sec = 0;
    times[0].tv_nsec = UTIME_NOW;
    times[1].tv_sec = 0;
    times[1].tv_nsec = UTIME_OMIT;
    ::utimensat(AT_FDCWD, path.c_str(), times, 0);
}

} // namespace

void
StageLock::release()
{
    if (coord_ && !path_.empty()) {
        {
            std::lock_guard<std::mutex> lk(coord_->m);
            coord_->inflight.erase(path_);
        }
        coord_->done.notify_all();
    }
    coord_.reset();
    path_.clear();
}

CheckpointStore::CheckpointStore(
    const std::string &dir, uint64_t maxBytes,
    std::shared_ptr<CheckpointCoordinator> coord)
    : dir_(dir), maxBytes_(maxBytes), coord_(std::move(coord))
{
    if (dir_.empty())
        return;
    if (!coord_)
        coord_ = std::make_shared<CheckpointCoordinator>();
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
        bespoke_warn("checkpoint dir '", dir_,
                     "' cannot be created (", ec.message(),
                     "); checkpointing disabled");
        dir_.clear();
    }
}

StageLock
CheckpointStore::lockStage(const CheckpointKey &key,
                           const std::string &stage) const
{
    if (!enabled())
        return {};
    std::string p = path(key, stage);
    bool waited = false;
    std::unique_lock<std::mutex> lk(coord_->m);
    while (coord_->inflight.count(p)) {
        waited = true;
        coord_->done.wait(lk);
    }
    coord_->inflight.insert(p);
    return StageLock(coord_, std::move(p), waited);
}

std::string
CheckpointStore::path(const CheckpointKey &key,
                      const std::string &stage) const
{
    return dir_ + "/" + hashHex(key.netlist) + "-" +
           hashHex(key.program) + "-" + hashHex(key.options) + "." +
           stage + ".json";
}

bool
CheckpointStore::load(const CheckpointKey &key, const std::string &stage,
                      JsonValue *doc) const
{
    if (!enabled())
        return false;
    std::ifstream in(path(key, stage), std::ios::binary);
    if (!in) {
        misses_++;
        return false;
    }
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    std::string err;
    if (!JsonValue::parse(text, *doc, err)) {
        bespoke_warn("checkpoint ", path(key, stage), ": ", err);
        misses_++;
        return false;
    }
    touchAccess(path(key, stage));
    hits_++;
    return true;
}

void
CheckpointStore::save(const CheckpointKey &key, const std::string &stage,
                      const JsonValue &doc) const
{
    if (!enabled())
        return;
    std::string final_path = path(key, stage);
    // Writer-unique temp name: two concurrent savers of the same key
    // must each write their own complete file, not interleave into a
    // shared one that a racing rename would expose half-written.
    static std::atomic<uint64_t> save_seq{0};
    std::string tmp_path = final_path + ".tmp." +
                           std::to_string(static_cast<long>(::getpid())) +
                           "." + std::to_string(save_seq.fetch_add(1));
    {
        std::ofstream out(tmp_path, std::ios::binary);
        if (!out) {
            bespoke_warn("checkpoint ", tmp_path, ": cannot write");
            return;
        }
        out << doc.dump(1) << "\n";
        if (!out) {
            bespoke_warn("checkpoint ", tmp_path, ": write failed");
            std::error_code rmec;
            std::filesystem::remove(tmp_path, rmec);
            return;
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp_path, final_path, ec);
    if (ec) {
        bespoke_warn("checkpoint ", final_path, ": rename failed (",
                     ec.message(), ")");
        return;
    }
    touchAccess(final_path);
    if (maxBytes_ > 0)
        sweep(final_path);
}

void
CheckpointStore::sweep(const std::string &keep) const
{
    // One sweep at a time per directory: concurrent savers would
    // otherwise double-count sizes and double-evict.
    std::lock_guard<std::mutex> sweep_lk(coord_->sweepM);
    struct Entry
    {
        std::string path;
        struct timespec atime;
        uint64_t size;
    };
    std::vector<Entry> victims;
    uint64_t total = 0;
    std::error_code ec;
    for (const auto &e :
         std::filesystem::directory_iterator(dir_, ec)) {
        const std::string p = e.path().string();
        if (!e.is_regular_file() ||
            e.path().extension() != ".json")
            continue;
        struct stat st;
        if (::stat(p.c_str(), &st) != 0)
            continue;
        total += static_cast<uint64_t>(st.st_size);
        if (p != keep)
            victims.push_back(
                {p, st.st_atim, static_cast<uint64_t>(st.st_size)});
    }
    if (ec || total <= maxBytes_)
        return;
    std::sort(victims.begin(), victims.end(),
              [](const Entry &a, const Entry &b) {
                  if (a.atime.tv_sec != b.atime.tv_sec)
                      return a.atime.tv_sec < b.atime.tv_sec;
                  if (a.atime.tv_nsec != b.atime.tv_nsec)
                      return a.atime.tv_nsec < b.atime.tv_nsec;
                  return a.path < b.path;
              });
    for (const Entry &v : victims) {
        if (total <= maxBytes_)
            break;
        std::error_code rmec;
        if (std::filesystem::remove(v.path, rmec)) {
            total -= v.size;
            evictions_++;
            bespoke_inform("checkpoint LRU: evicted ", v.path, " (",
                           v.size, " bytes)");
        }
    }
}

uint64_t
hashCombine(uint64_t h, uint64_t v)
{
    Fnv f;
    f.h = h;
    f.u64(v);
    return f.h;
}

uint64_t
hashProgram(const AsmProgram &prog)
{
    Fnv f;
    f.u64(prog.rom.size());
    f.bytes(prog.rom.data(), prog.rom.size());
    return f.h;
}

uint64_t
hashAnalysisOptions(const AnalysisOptions &opts)
{
    Fnv f;
    f.u64(static_cast<uint64_t>(opts.concreteVisits));
    f.u64(opts.maxTotalCycles);
    f.u64(opts.maxPaths);
    f.byte(opts.irqLineUnknown ? 1 : 0);
    return f.h;
}

uint64_t
hashFlowOptions(const FlowOptions &opts)
{
    Fnv f;
    f.u64(hashAnalysisOptions(opts.analysis));
    f.u64(static_cast<uint64_t>(opts.powerInputsPerWorkload));
    f.u64(opts.powerSeed);
    const TimingParams &t = opts.timing;
    f.f64(t.wireCapPerFanout);
    f.f64(t.outputPortCap);
    f.f64(t.clkToQ);
    f.f64(t.setup);
    f.f64(t.x2LoadThreshold);
    f.f64(t.x4LoadThreshold);
    f.f64(t.vNominal);
    f.f64(t.vThreshold);
    f.f64(t.alpha);
    f.f64(t.vMinFloor);
    f.f64(t.pvtMargin);
    const PowerParams &p = opts.power;
    f.f64(p.frequencyMHz);
    f.f64(p.voltage);
    f.f64(p.clockPinCap);
    f.f64(p.clockTreeFactor);
    f.u64(hashPassPipelineOptions(opts.passes));
    return f.h;
}

JsonValue
analysisToJson(const AnalysisResult &r)
{
    bespoke_assert(r.completed && r.activity &&
                       r.activity->initialCaptured(),
                   "only completed analyses are checkpointed");
    const Netlist &nl = r.activity->netlist();

    JsonValue doc = stageDoc("analysis");
    std::string initial(nl.size(), '?');
    std::string toggled(nl.size(), '?');
    for (GateId i = 0; i < nl.size(); i++) {
        Logic v = r.activity->initialValue(i);
        initial[i] = v == Logic::Zero ? '0' : v == Logic::One ? '1' : 'x';
        toggled[i] = r.activity->toggled(i) ? '1' : '0';
    }
    doc.set("gates", JsonValue::number(static_cast<double>(nl.size())));
    doc.set("initial", JsonValue::str(std::move(initial)));
    doc.set("toggled", JsonValue::str(std::move(toggled)));

    doc.set("paths", JsonValue::number(
                         static_cast<double>(r.pathsExplored)));
    doc.set("cycles", JsonValue::number(
                          static_cast<double>(r.cyclesSimulated)));
    doc.set("merges",
            JsonValue::number(static_cast<double>(r.merges)));
    doc.set("forks", JsonValue::number(static_cast<double>(r.forks)));
    doc.set("seconds", JsonValue::number(r.seconds));
    doc.set("threads",
            JsonValue::number(static_cast<double>(r.threadsUsed)));
    doc.set("frontier_peak",
            JsonValue::number(static_cast<double>(r.frontierPeak)));
    doc.set("max_fork_depth",
            JsonValue::number(static_cast<double>(r.maxForkDepth)));
    JsonValue workers = JsonValue::array();
    for (const WorkerStats &w : r.workerStats) {
        JsonValue jw = JsonValue::array();
        jw.push(JsonValue::number(static_cast<double>(w.pathsExplored)));
        jw.push(
            JsonValue::number(static_cast<double>(w.cyclesSimulated)));
        workers.push(std::move(jw));
    }
    doc.set("workers", std::move(workers));
    return doc;
}

bool
analysisFromJson(const JsonValue &doc, const Netlist &netlist,
                 AnalysisResult *out, std::string *err)
{
    if (!checkEnvelope(doc, "analysis", err))
        return false;

    uint64_t gates = 0;
    if (!getCount(doc, "gates", &gates, err))
        return false;
    if (gates != netlist.size()) {
        *err = "artifact is for a " + std::to_string(gates) +
               "-gate netlist, this one has " +
               std::to_string(netlist.size());
        return false;
    }

    const JsonValue *initial = doc.find("initial");
    const JsonValue *toggled = doc.find("toggled");
    if (!initial || !initial->isString() || !toggled ||
        !toggled->isString() ||
        initial->asString().size() != netlist.size() ||
        toggled->asString().size() != netlist.size()) {
        *err = "malformed \"initial\"/\"toggled\" state strings";
        return false;
    }
    std::vector<uint8_t> init_v(netlist.size());
    std::vector<uint8_t> tog_v(netlist.size());
    for (GateId i = 0; i < netlist.size(); i++) {
        char c = initial->asString()[i];
        if (c == '0')
            init_v[i] = static_cast<uint8_t>(Logic::Zero);
        else if (c == '1')
            init_v[i] = static_cast<uint8_t>(Logic::One);
        else if (c == 'x')
            init_v[i] = static_cast<uint8_t>(Logic::X);
        else {
            *err = "bad character in \"initial\"";
            return false;
        }
        char t = toggled->asString()[i];
        if (t != '0' && t != '1') {
            *err = "bad character in \"toggled\"";
            return false;
        }
        // An X initial value has no proven constant; it must be marked
        // toggleable or the cut would tie it to a bogus constant.
        if (c == 'x' && t != '1') {
            *err = "gate with X initial value not marked toggled";
            return false;
        }
        tog_v[i] = t == '1' ? 1 : 0;
    }

    AnalysisResult r;
    if (!getCount(doc, "paths", &r.pathsExplored, err) ||
        !getCount(doc, "cycles", &r.cyclesSimulated, err) ||
        !getCount(doc, "merges", &r.merges, err) ||
        !getCount(doc, "forks", &r.forks, err) ||
        !getDouble(doc, "seconds", &r.seconds, err) ||
        !getCount(doc, "frontier_peak", &r.frontierPeak, err))
        return false;
    uint64_t threads = 0, depth = 0;
    if (!getCount(doc, "threads", &threads, err) ||
        !getCount(doc, "max_fork_depth", &depth, err))
        return false;
    r.threadsUsed = static_cast<int>(threads);
    r.maxForkDepth = static_cast<uint32_t>(depth);
    if (const JsonValue *workers = doc.find("workers")) {
        if (!workers->isArray()) {
            *err = "\"workers\" is not an array";
            return false;
        }
        for (const JsonValue &jw : workers->items()) {
            if (!jw.isArray() || jw.items().size() != 2 ||
                !jw.items()[0].isNumber() || !jw.items()[1].isNumber()) {
                *err = "malformed \"workers\" entry";
                return false;
            }
            WorkerStats w;
            w.pathsExplored =
                static_cast<uint64_t>(jw.items()[0].asNumber());
            w.cyclesSimulated =
                static_cast<uint64_t>(jw.items()[1].asNumber());
            r.workerStats.push_back(w);
        }
    }
    r.completed = true;
    r.activity = std::make_unique<ActivityTracker>(netlist);
    r.activity->restore(std::move(init_v), std::move(tog_v));
    *out = std::move(r);
    return true;
}

namespace
{

JsonValue
pipelineToJson(const PipelineReport &rep)
{
    JsonValue jp = JsonValue::object();
    JsonValue passes = JsonValue::array();
    for (const PassStats &s : rep.passes) {
        JsonValue js = JsonValue::array();
        js.push(JsonValue::str(s.name));
        js.push(JsonValue::number(static_cast<double>(s.changes)));
        js.push(JsonValue::number(static_cast<double>(s.gatesBefore)));
        js.push(JsonValue::number(static_cast<double>(s.gatesAfter)));
        js.push(JsonValue::number(s.powerBeforeUW));
        js.push(JsonValue::number(s.powerAfterUW));
        js.push(JsonValue::number(s.depthBeforePs));
        js.push(JsonValue::number(s.depthAfterPs));
        js.push(JsonValue::number(s.wallMs));
        passes.push(std::move(js));
    }
    jp.set("passes", std::move(passes));
    jp.set("rewritten",
           JsonValue::number(static_cast<double>(rep.rewrittenInstances)));
    JsonValue jg = JsonValue::object();
    jg.set("candidate_banks",
           JsonValue::number(
               static_cast<double>(rep.gating.candidateBanks)));
    jg.set("cycles", JsonValue::number(static_cast<double>(
                         rep.gating.cyclesObserved)));
    jg.set("saved_uw", JsonValue::number(rep.gating.savedClockUW));
    JsonValue banks = JsonValue::array();
    for (const GatedBank &b : rep.gating.banks) {
        JsonValue jb = JsonValue::array();
        jb.push(JsonValue::number(static_cast<double>(b.enable)));
        jb.push(JsonValue::number(static_cast<double>(b.flops)));
        jb.push(JsonValue::number(b.duty));
        jb.push(JsonValue::number(b.savedUW));
        banks.push(std::move(jb));
    }
    jg.set("banks", std::move(banks));
    jp.set("gating", std::move(jg));
    return jp;
}

bool
pipelineFromJson(const JsonValue &jp, PipelineReport *out,
                 std::string *err)
{
    if (!jp.isObject()) {
        *err = "\"pipeline\" is not an object";
        return false;
    }
    PipelineReport rep;
    const JsonValue *passes = jp.find("passes");
    if (!passes || !passes->isArray()) {
        *err = "pipeline: missing \"passes\" array";
        return false;
    }
    for (const JsonValue &js : passes->items()) {
        if (!js.isArray() || js.items().size() != 9 ||
            !js.items()[0].isString()) {
            *err = "pipeline: malformed pass entry";
            return false;
        }
        for (size_t i = 1; i < 9; i++) {
            if (!js.items()[i].isNumber()) {
                *err = "pipeline: malformed pass entry";
                return false;
            }
        }
        PassStats s;
        s.name = js.items()[0].asString();
        s.changes = static_cast<size_t>(js.items()[1].asNumber());
        s.gatesBefore = static_cast<size_t>(js.items()[2].asNumber());
        s.gatesAfter = static_cast<size_t>(js.items()[3].asNumber());
        s.powerBeforeUW = js.items()[4].asNumber();
        s.powerAfterUW = js.items()[5].asNumber();
        s.depthBeforePs = js.items()[6].asNumber();
        s.depthAfterPs = js.items()[7].asNumber();
        s.wallMs = js.items()[8].asNumber();
        rep.passes.push_back(std::move(s));
    }
    uint64_t rewritten = 0;
    if (!getCount(jp, "rewritten", &rewritten, err))
        return false;
    rep.rewrittenInstances = static_cast<size_t>(rewritten);
    const JsonValue *jg = jp.find("gating");
    if (!jg || !jg->isObject()) {
        *err = "pipeline: missing \"gating\" object";
        return false;
    }
    uint64_t cand = 0, cycles = 0;
    if (!getCount(*jg, "candidate_banks", &cand, err) ||
        !getCount(*jg, "cycles", &cycles, err) ||
        !getDouble(*jg, "saved_uw", &rep.gating.savedClockUW, err))
        return false;
    rep.gating.candidateBanks = static_cast<size_t>(cand);
    rep.gating.cyclesObserved = cycles;
    const JsonValue *banks = jg->find("banks");
    if (!banks || !banks->isArray()) {
        *err = "pipeline: missing \"banks\" array";
        return false;
    }
    for (const JsonValue &jb : banks->items()) {
        if (!jb.isArray() || jb.items().size() != 4) {
            *err = "pipeline: malformed bank entry";
            return false;
        }
        for (const JsonValue &v : jb.items()) {
            if (!v.isNumber()) {
                *err = "pipeline: malformed bank entry";
                return false;
            }
        }
        GatedBank b;
        b.enable = static_cast<GateId>(jb.items()[0].asNumber());
        b.flops = static_cast<size_t>(jb.items()[1].asNumber());
        b.duty = jb.items()[2].asNumber();
        b.savedUW = jb.items()[3].asNumber();
        rep.gating.banks.push_back(b);
    }
    *out = std::move(rep);
    return true;
}

} // namespace

JsonValue
designToJson(const Netlist &sized, const CutStats &cut,
             const PipelineReport *pipeline)
{
    JsonValue doc = stageDoc("design");
    JsonValue jc = JsonValue::object();
    jc.set("gates_before",
           JsonValue::number(static_cast<double>(cut.gatesBefore)));
    jc.set("gates_cut_direct",
           JsonValue::number(static_cast<double>(cut.gatesCutDirect)));
    jc.set("gates_after",
           JsonValue::number(static_cast<double>(cut.gatesAfter)));
    doc.set("cut", std::move(jc));
    if (pipeline)
        doc.set("pipeline", pipelineToJson(*pipeline));
    doc.set("netlist", netlistToJson(sized));
    return doc;
}

bool
designFromJson(const JsonValue &doc, Netlist *netlist, CutStats *cut,
               std::string *err, PipelineReport *pipeline)
{
    if (!checkEnvelope(doc, "design", err))
        return false;
    const JsonValue *jc = doc.find("cut");
    if (!jc || !jc->isObject()) {
        *err = "missing \"cut\" object";
        return false;
    }
    uint64_t before = 0, direct = 0, after = 0;
    if (!getCount(*jc, "gates_before", &before, err) ||
        !getCount(*jc, "gates_cut_direct", &direct, err) ||
        !getCount(*jc, "gates_after", &after, err))
        return false;
    // Pre-pipeline artifacts have no "pipeline" section: restore an
    // empty report rather than failing the load.
    PipelineReport rep;
    const JsonValue *jp = doc.find("pipeline");
    if (jp && !pipelineFromJson(*jp, &rep, err))
        return false;
    const JsonValue *jn = doc.find("netlist");
    if (!jn) {
        *err = "missing \"netlist\"";
        return false;
    }
    NetlistJsonResult res = netlistFromJson(*jn);
    if (!res.ok) {
        *err = res.error;
        return false;
    }
    cut->gatesBefore = static_cast<size_t>(before);
    cut->gatesCutDirect = static_cast<size_t>(direct);
    cut->gatesAfter = static_cast<size_t>(after);
    if (pipeline)
        *pipeline = std::move(rep);
    *netlist = std::move(res.netlist);
    return true;
}

JsonValue
metricsToJson(const DesignMetrics &m)
{
    JsonValue doc = stageDoc("metrics");
    doc.set("gates", JsonValue::number(static_cast<double>(m.gates)));
    doc.set("flops", JsonValue::number(static_cast<double>(m.flops)));
    doc.set("area_um2", JsonValue::number(m.areaUm2));
    doc.set("critical_path_ps", JsonValue::number(m.criticalPathPs));
    doc.set("slack_fraction", JsonValue::number(m.slackFraction));
    doc.set("power_nominal", powerToJson(m.powerNominal));
    doc.set("vmin", JsonValue::number(m.vmin));
    doc.set("power_at_vmin", powerToJson(m.powerAtVmin));
    return doc;
}

bool
metricsFromJson(const JsonValue &doc, DesignMetrics *out,
                std::string *err)
{
    if (!checkEnvelope(doc, "metrics", err))
        return false;
    DesignMetrics m;
    uint64_t gates = 0, flops = 0;
    if (!getCount(doc, "gates", &gates, err) ||
        !getCount(doc, "flops", &flops, err) ||
        !getDouble(doc, "area_um2", &m.areaUm2, err) ||
        !getDouble(doc, "critical_path_ps", &m.criticalPathPs, err) ||
        !getDouble(doc, "slack_fraction", &m.slackFraction, err) ||
        !powerFromJson(doc, "power_nominal", &m.powerNominal, err) ||
        !getDouble(doc, "vmin", &m.vmin, err) ||
        !powerFromJson(doc, "power_at_vmin", &m.powerAtVmin, err))
        return false;
    m.gates = static_cast<size_t>(gates);
    m.flops = static_cast<size_t>(flops);
    *out = m;
    return true;
}

} // namespace bespoke
