#include "src/bespoke/flow.hh"

#include "src/cpu/bsp430.hh"
#include "src/util/table.hh"
#include "src/util/logging.hh"
#include "src/verify/runner.hh"

namespace bespoke
{

namespace
{

/** Key material for a workload set, order-sensitive. */
uint64_t
hashApps(const std::vector<const Workload *> &apps)
{
    uint64_t h = kHashBasis;
    for (const Workload *w : apps)
        h = hashCombine(h, hashProgram(w->assembleProgram()));
    return h;
}

} // namespace

BespokeFlow::BespokeFlow(FlowOptions opts)
    : opts_(std::move(opts)), baseline_(buildBsp430()),
      store_(opts_.checkpointDir, opts_.checkpointMaxBytes)
{
    sizeForLoads(baseline_, opts_.timing);
    TimingReport rep = analyzeTiming(baseline_, opts_.timing);
    // The baseline is "optimized to minimize area and power for
    // operation at" its achievable frequency (paper Sec. 4.2): hold
    // every design to the baseline's critical path plus a small margin.
    clockPeriodPs_ = rep.criticalPathPs * 1.02;
    // Checkpoint keys hash the *sized* baseline: every stage artifact
    // is derived from the netlist as the flow actually analyzes it.
    baselineHash_ = baseline_.contentHash();
    analysisOptsHash_ = hashAnalysisOptions(opts_.analysis);
    flowOptsHash_ = hashFlowOptions(opts_);
    bespoke_inform("baseline: ", baseline_.numCells(), " cells, ",
                   formatFixed(rep.criticalPathPs, 0), " ps critical (",
                   formatFixed(1e6 / clockPeriodPs_, 1), " MHz)");
}

DesignMetrics
BespokeFlow::measure(const Netlist &netlist,
                     const std::vector<const Workload *> &apps)
{
    CheckpointKey key;
    if (store_.enabled()) {
        key = {netlist.contentHash(), hashApps(apps), flowOptsHash_};
        JsonValue doc;
        if (store_.load(key, "metrics", &doc)) {
            DesignMetrics cached;
            std::string err;
            if (metricsFromJson(doc, &cached, &err))
                return cached;
            bespoke_warn("checkpoint metrics: ", err, "; re-measuring");
        }
    }

    DesignMetrics m;
    NetlistStats stats = netlist.stats();
    m.gates = stats.numCells;
    m.flops = stats.numSequential;
    m.areaUm2 = stats.area;

    TimingReport rep = analyzeTiming(netlist, opts_.timing);
    m.criticalPathPs = rep.criticalPathPs;
    m.slackFraction =
        (clockPeriodPs_ - rep.criticalPathPs) / clockPeriodPs_;

    // Switching activity from concrete representative runs, replayed
    // lane-parallel per app (bit-identical to the sequential loop: the
    // batch runner replays cross-run counter boundaries in run order).
    // One simulation context serves every run on this netlist.
    std::shared_ptr<const SocContext> ctx = SocContext::make(netlist);
    ToggleCounter toggles(netlist);
    GateBatchObservers obs;
    obs.toggles = &toggles;
    Rng rng(opts_.powerSeed);
    for (const Workload *w : apps) {
        AsmProgram prog = w->assembleProgram();
        std::vector<WorkloadInput> inputs;
        for (int i = 0; i < opts_.powerInputsPerWorkload; i++)
            inputs.push_back(w->genInput(rng));
        std::vector<GateRun> runs = runWorkloadGateBatch(
            netlist, *w, prog, inputs, opts_.planeBits, obs, ctx);
        for (const GateRun &run : runs) {
            if (!run.halted) {
                bespoke_warn("power run of ", w->name,
                             " did not halt within its cycle budget");
            }
        }
    }
    m.powerNominal =
        computePower(netlist, toggles, opts_.power, opts_.timing);
    m.vmin = vminForPeriod(rep.criticalPathPs, clockPeriodPs_,
                           opts_.timing);
    m.powerAtVmin =
        scaleToVoltage(m.powerNominal, m.vmin, opts_.power);

    if (store_.enabled())
        store_.save(key, "metrics", metricsToJson(m));
    return m;
}

DesignMetrics
BespokeFlow::measureBaseline(const std::vector<const Workload *> &apps)
{
    return measure(baseline_, apps);
}

AnalysisResult
BespokeFlow::analyze(const Workload &app)
{
    return analyzeProgram(app.assembleProgram(), app.name);
}

AnalysisResult
BespokeFlow::analyzeProgram(const AsmProgram &prog,
                            const std::string &name)
{
    CheckpointKey key{baselineHash_, hashProgram(prog),
                      analysisOptsHash_};
    if (store_.enabled()) {
        JsonValue doc;
        if (store_.load(key, "analysis", &doc)) {
            AnalysisResult cached;
            std::string err;
            if (analysisFromJson(doc, baseline_, &cached, &err))
                return cached;
            bespoke_warn("checkpoint analysis for ", name, ": ", err,
                         "; re-analyzing");
        }
    }
    AnalysisResult r = analyzeActivity(baseline_, prog, opts_.analysis);
    // Capped (incomplete) runs are never checkpointed: a rerun with
    // higher caps must not resume from a partial toggle set.
    if (store_.enabled() && r.completed)
        store_.save(key, "analysis", analysisToJson(r));
    return r;
}

Netlist
BespokeFlow::obtainDesign(uint64_t program_hash, const char *stage,
                          CutStats *cut,
                          const std::function<Netlist(CutStats *)> &build)
{
    CheckpointKey key{baselineHash_, program_hash, flowOptsHash_};
    if (store_.enabled()) {
        JsonValue doc;
        if (store_.load(key, stage, &doc)) {
            Netlist cached;
            std::string err;
            if (designFromJson(doc, &cached, cut, &err))
                return cached;
            bespoke_warn("checkpoint ", stage, ": ", err,
                         "; re-cutting");
        }
    }
    Netlist netlist = build(cut);
    // Re-size for the (smaller) loads: the paper's slack-driven
    // replacement with smaller cells falls out of re-running sizing.
    sizeForLoads(netlist, opts_.timing);
    if (store_.enabled())
        store_.save(key, stage, designToJson(netlist, *cut));
    return netlist;
}

BespokeDesign
BespokeFlow::tailor(const Workload &app)
{
    AsmProgram prog = app.assembleProgram();
    AnalysisResult analysis = analyzeProgram(prog, app.name);
    bespoke_assert(analysis.completed,
                   "analysis hit caps for ", app.name);
    CutStats cut;
    Netlist bespoke_nl =
        obtainDesign(hashProgram(prog), "design", &cut,
                     [&](CutStats *c) {
                         return cutAndStitch(baseline_,
                                             *analysis.activity, c);
                     });
    BespokeDesign d{std::move(bespoke_nl), cut, {},
                    std::move(analysis)};
    d.metrics = measure(d.netlist, {&app});
    return d;
}

BespokeDesign
BespokeFlow::tailorMulti(const std::vector<const Workload *> &apps)
{
    bespoke_assert(!apps.empty());
    ActivityTracker merged(baseline_);
    AnalysisResult last;
    uint64_t progs = kHashBasis;
    for (const Workload *w : apps) {
        AsmProgram prog = w->assembleProgram();
        progs = hashCombine(progs, hashProgram(prog));
        AnalysisResult r = analyzeProgram(prog, w->name);
        bespoke_assert(r.completed, "analysis hit caps for ", w->name);
        if (!merged.initialCaptured()) {
            merged = std::move(*r.activity);
        } else {
            merged.mergeFrom(*r.activity);
        }
        last = std::move(r);
    }
    CutStats cut;
    Netlist bespoke_nl =
        obtainDesign(progs, "design", &cut, [&](CutStats *c) {
            return cutAndStitch(baseline_, merged, c);
        });
    // Keep the merged tracker with the result for callers that need it.
    last.activity = std::make_unique<ActivityTracker>(std::move(merged));
    BespokeDesign d{std::move(bespoke_nl), cut, {}, std::move(last)};
    d.metrics = measure(d.netlist, apps);
    return d;
}

BespokeDesign
BespokeFlow::tailorCoarse(const Workload &app)
{
    AsmProgram prog = app.assembleProgram();
    AnalysisResult analysis = analyzeProgram(prog, app.name);
    bespoke_assert(analysis.completed,
                   "analysis hit caps for ", app.name);
    CutStats cut;
    // Module-level cutting shares the flow options with the
    // fine-grained design, so the artifact lives under its own stage.
    Netlist coarse =
        obtainDesign(hashProgram(prog), "coarse", &cut,
                     [&](CutStats *c) {
                         return cutWholeModules(baseline_,
                                                *analysis.activity, c);
                     });
    BespokeDesign d{std::move(coarse), cut, {}, std::move(analysis)};
    d.metrics = measure(d.netlist, {&app});
    return d;
}

} // namespace bespoke
