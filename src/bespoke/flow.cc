#include "src/bespoke/flow.hh"

#include "src/cpu/bsp430.hh"
#include "src/util/table.hh"
#include "src/util/logging.hh"
#include "src/verify/runner.hh"

namespace bespoke
{

BespokeFlow::BespokeFlow(FlowOptions opts)
    : opts_(std::move(opts)), baseline_(buildBsp430())
{
    sizeForLoads(baseline_, opts_.timing);
    TimingReport rep = analyzeTiming(baseline_, opts_.timing);
    // The baseline is "optimized to minimize area and power for
    // operation at" its achievable frequency (paper Sec. 4.2): hold
    // every design to the baseline's critical path plus a small margin.
    clockPeriodPs_ = rep.criticalPathPs * 1.02;
    bespoke_inform("baseline: ", baseline_.numCells(), " cells, ",
                   formatFixed(rep.criticalPathPs, 0), " ps critical (",
                   formatFixed(1e6 / clockPeriodPs_, 1), " MHz)");
}

DesignMetrics
BespokeFlow::measure(const Netlist &netlist,
                     const std::vector<const Workload *> &apps)
{
    DesignMetrics m;
    NetlistStats stats = netlist.stats();
    m.gates = stats.numCells;
    m.flops = stats.numSequential;
    m.areaUm2 = stats.area;

    TimingReport rep = analyzeTiming(netlist, opts_.timing);
    m.criticalPathPs = rep.criticalPathPs;
    m.slackFraction =
        (clockPeriodPs_ - rep.criticalPathPs) / clockPeriodPs_;

    // Switching activity from concrete representative runs. One
    // simulation context serves every run on this netlist.
    std::shared_ptr<const SocContext> ctx = SocContext::make(netlist);
    ToggleCounter toggles(netlist);
    Rng rng(opts_.powerSeed);
    for (const Workload *w : apps) {
        AsmProgram prog = w->assembleProgram();
        for (int i = 0; i < opts_.powerInputsPerWorkload; i++) {
            WorkloadInput in = w->genInput(rng);
            GateRun run = runWorkloadGate(netlist, *w, prog, in,
                                          &toggles, nullptr, nullptr,
                                          ctx);
            if (!run.halted) {
                bespoke_warn("power run of ", w->name,
                             " did not halt within its cycle budget");
            }
        }
    }
    m.powerNominal =
        computePower(netlist, toggles, opts_.power, opts_.timing);
    m.vmin = vminForPeriod(rep.criticalPathPs, clockPeriodPs_,
                           opts_.timing);
    m.powerAtVmin =
        scaleToVoltage(m.powerNominal, m.vmin, opts_.power);
    return m;
}

DesignMetrics
BespokeFlow::measureBaseline(const std::vector<const Workload *> &apps)
{
    return measure(baseline_, apps);
}

AnalysisResult
BespokeFlow::analyze(const Workload &app)
{
    AsmProgram prog = app.assembleProgram();
    return analyzeActivity(baseline_, prog, opts_.analysis);
}

BespokeDesign
BespokeFlow::finishDesign(Netlist netlist, CutStats cut,
                          AnalysisResult analysis,
                          const std::vector<const Workload *> &apps)
{
    // Re-size for the (smaller) loads: the paper's slack-driven
    // replacement with smaller cells falls out of re-running sizing.
    sizeForLoads(netlist, opts_.timing);
    BespokeDesign d{std::move(netlist), cut, {}, std::move(analysis)};
    d.metrics = measure(d.netlist, apps);
    return d;
}

BespokeDesign
BespokeFlow::tailor(const Workload &app)
{
    AnalysisResult analysis = analyze(app);
    bespoke_assert(analysis.completed,
                   "analysis hit caps for ", app.name);
    CutStats cut;
    Netlist bespoke_nl =
        cutAndStitch(baseline_, *analysis.activity, &cut);
    return finishDesign(std::move(bespoke_nl), cut, std::move(analysis),
                        {&app});
}

BespokeDesign
BespokeFlow::tailorMulti(const std::vector<const Workload *> &apps)
{
    bespoke_assert(!apps.empty());
    ActivityTracker merged(baseline_);
    AnalysisResult last;
    for (const Workload *w : apps) {
        AnalysisResult r = analyze(*w);
        bespoke_assert(r.completed, "analysis hit caps for ", w->name);
        if (!merged.initialCaptured()) {
            merged = std::move(*r.activity);
        } else {
            merged.mergeFrom(*r.activity);
        }
        last = std::move(r);
    }
    CutStats cut;
    Netlist bespoke_nl = cutAndStitch(baseline_, merged, &cut);
    // Keep the merged tracker with the result for callers that need it.
    last.activity = std::make_unique<ActivityTracker>(std::move(merged));
    return finishDesign(std::move(bespoke_nl), cut, std::move(last),
                        apps);
}

BespokeDesign
BespokeFlow::tailorCoarse(const Workload &app)
{
    AnalysisResult analysis = analyze(app);
    bespoke_assert(analysis.completed,
                   "analysis hit caps for ", app.name);
    CutStats cut;
    Netlist coarse =
        cutWholeModules(baseline_, *analysis.activity, &cut);
    return finishDesign(std::move(coarse), cut, std::move(analysis),
                        {&app});
}

} // namespace bespoke
